// On-line bottleneck search in the Paradyn style (§3.2): the W3 search
// dynamically inserts a minimal amount of instrumentation to answer "why is
// this program slow?" and "where?", while the adaptive cost model keeps the
// instrumentation system's own overhead under a budget.
//
// The "program" is an 8-node synthetic system with a communication-bound
// hot spot on node 5.
#include <cstdio>

#include "paradyn/cost_model.hpp"
#include "paradyn/providers.hpp"
#include "paradyn/rocc_model.hpp"
#include "paradyn/w3_search.hpp"

int main() {
  using namespace prism::paradyn;
  using prism::stats::Rng;

  // --- The program under study -------------------------------------------
  SyntheticMetricProvider program(8, Rng(7), /*noise=*/0.03);
  for (std::uint32_t n = 0; n < 8; ++n) {
    program.set_level(n, MetricId::kCpuUtilization, 0.45);
    program.set_level(n, MetricId::kSyncWaitFraction, 0.10);
    program.set_level(n, MetricId::kCommFraction, 0.38);
  }
  program.set_level(5, MetricId::kCommFraction, 0.85);  // the hot spot

  // --- The W3 search -------------------------------------------------------
  W3Config cfg;
  cfg.samples_per_test = 24;
  W3Search search(cfg);
  const auto diagnosis = search.run(program);

  if (diagnosis.why) {
    std::printf("diagnosis: %s", std::string(to_string(*diagnosis.why)).c_str());
    if (diagnosis.where) std::printf(" at node %u", *diagnosis.where);
    std::printf(" (evidence: sampled mean %.2f)\n", diagnosis.evidence);
  } else {
    std::printf("diagnosis: no bottleneck hypothesis held\n");
  }
  std::printf("instrumentation cost: %llu insertions, %llu samples; at most "
              "%zu probes were ever enabled concurrently\n\n",
              static_cast<unsigned long long>(diagnosis.insertions),
              static_cast<unsigned long long>(diagnosis.samples_used),
              program.max_concurrent_enabled());

  // --- The adaptive cost model regulating the daemon ----------------------
  AdaptiveCostModel cost(/*prior=*/0.02, /*smoothing=*/0.3);
  SamplingRateDecay decay(/*initial=*/50.0, /*max=*/800.0, /*growth=*/1.4);
  std::printf("adaptive cost model (target overhead 2%%, 8 processes):\n");
  double period = 50.0;
  for (unsigned k = 0; k < 6; ++k) {
    // Pretend the daemon measured: 0.12 ms/sample true cost.
    cost.observe(/*cpu_ms=*/0.12 * 8, /*samples=*/8, /*wall_ms=*/period);
    period = cost.recommended_period_ms(0.02, 8);
    std::printf("  interval %u: learned %.3f ms/sample, observed overhead "
                "%.2f%%, recommended period %.0f ms (decay schedule: %.0f "
                "ms)\n",
                k, cost.per_sample_cost_ms(), 100 * cost.observed_overhead(),
                period, decay.period_ms(k));
  }

  // --- The what-if the paper's ROCC model answers --------------------------
  std::printf("\nROCC what-if: daemon interference at the recommended period "
              "vs an aggressive 50 ms period (8 app processes, 60 s run):\n");
  ParadynRoccParams p;
  for (double candidate : {50.0, period}) {
    p.sampling_period_ms = candidate;
    const auto m = run_paradyn_rocc(p, Rng(99));
    std::printf("  period %6.0f ms -> Pd interference %7.0f ms, "
                "utilizationPd %.2f%%\n",
                candidate, m.pd_interference_ms, m.pd_cpu_utilization_pct);
  }
  return 0;
}
