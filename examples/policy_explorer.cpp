// Policy explorer: the paper's Figure 1 loop as an interactive CLI.
//
// Give it your deployment's parameters and it evaluates the PICL-style
// buffer-management alternatives analytically AND by simulation, then
// recommends a policy — "what-if analyses to investigate various parameters
// and policies" (§5), before a line of the production IS is written.
//
// Usage: ./policy_explorer [l] [alpha] [P] [flush_base] [flush_per_record]
//   l                buffer capacity in records       (default 50)
//   alpha            event arrival rate per time unit (default 0.007)
//   P                number of nodes                  (default 8)
//   flush_base       f(l) intercept                   (default 100)
//   flush_per_record f(l) slope                       (default 10)
#include <cstdio>
#include <cstdlib>

#include "picl/analytic_model.hpp"
#include "picl/flush_sim.hpp"

int main(int argc, char** argv) {
  using namespace prism;

  picl::PiclModelParams p;
  if (argc > 1) p.buffer_capacity = static_cast<unsigned>(std::atoi(argv[1]));
  if (argc > 2) p.arrival_rate = std::atof(argv[2]);
  if (argc > 3) p.nodes = static_cast<unsigned>(std::atoi(argv[3]));
  if (argc > 4) p.flush_cost_base = std::atof(argv[4]);
  if (argc > 5) p.flush_cost_per_record = std::atof(argv[5]);
  p.validate();

  std::printf("== IS policy exploration ==\n");
  std::printf("buffer capacity l=%u, arrival rate alpha=%g, nodes P=%u, "
              "flush cost f(l)=%g\n\n",
              p.buffer_capacity, p.arrival_rate, p.nodes, p.flush_cost());

  std::printf("analytic model (Table 3):\n");
  std::printf("  expected trace stopping time: FOF %.4g, FAOF %.4g "
              "(pooled bound %.4g)\n",
              picl::fof_expected_stopping_time(p),
              picl::faof_expected_stopping_time(p),
              picl::faof_stopping_time_lower_bound(p));
  std::printf("  flushing frequency (per arrival): FOF %.4g, FAOF %.4g\n",
              picl::fof_flushing_frequency(p),
              picl::faof_flushing_frequency_exact(p));
  std::printf("  program interruptions per time unit: FOF %.4g, FAOF %.4g\n",
              picl::fof_interruption_rate(p),
              picl::faof_interruption_rate(p));
  std::printf("  time fraction spent flushing: FOF %.4f, FAOF %.4f\n\n",
              picl::fof_flush_time_fraction(p),
              picl::faof_flush_time_fraction(p));

  std::printf("simulation check (2000 regenerative cycles, common random "
              "numbers):\n");
  const auto fof = picl::simulate_fof(p, 2000, stats::Rng(1));
  const auto faof = picl::simulate_faof(p, 2000, stats::Rng(1));
  const auto fof_ci = fof.frequency_estimator.ratio_ci(0.90);
  const auto faof_ci = faof.frequency_estimator.ratio_ci(0.90);
  std::printf("  FOF : freq %.4g (90%% CI +-%.2g), interruptions/time %.4g\n",
              fof.flushing_frequency, fof_ci.half_width,
              fof.interruption_rate);
  std::printf("  FAOF: freq %.4g (90%% CI +-%.2g), interruptions/time %.4g\n\n",
              faof.flushing_frequency, faof_ci.half_width,
              faof.interruption_rate);

  // The recommendation logic the paper's evaluation supports: FAOF wins on
  // flush frequency and interruption rate, but requires gang-flush
  // coordination; FOF is trivial to implement but perturbs more often.
  const double freq_ratio =
      picl::fof_flushing_frequency(p) / picl::faof_flushing_frequency_bound(p);
  const double intr_ratio =
      picl::fof_interruption_rate(p) / picl::faof_interruption_rate(p);
  std::printf("recommendation: ");
  if (freq_ratio > 1.5 || intr_ratio > 3.0) {
    std::printf(
        "FAOF — it flushes %.1fx less often per record and interrupts the "
        "program %.1fx less often; budget for gang-flush coordination "
        "(context-switching all processes, as Pablo/CM-5 and TAM/Paragon "
        "do).\n",
        freq_ratio, intr_ratio);
  } else {
    std::printf(
        "FOF — at this arrival rate the policies are nearly "
        "indistinguishable (frequency ratio %.2f), so take the simpler "
        "implementation; PICL already supports it.\n",
        freq_ratio);
  }
  std::printf("note: the PICL authors advise against FOF at high arrival "
              "rates because mid-run per-node flushes can severely perturb "
              "program behavior (S3.1.3).\n");
  return 0;
}
