// SPI-style event-action rules + Pablo-style adaptive tracing, live.
//
// A rules file (inline here) watches the ISM's ordered output; an adaptive
// throttle in front of one node's LIS protects the IS from event bursts —
// the two "application-specific" IS technologies of Table 8, running
// together in one integrated environment.
#include <cstdio>
#include <memory>

#include "core/environment.hpp"
#include "core/throttle.hpp"
#include "spi/machine.hpp"
#include "workload/thread_apps.hpp"

int main() {
  using namespace prism;

  core::EnvironmentConfig cfg;
  cfg.nodes = 3;
  cfg.lis_style = core::LisStyle::kForwarding;
  cfg.ism.causal_ordering = true;
  core::IntegratedEnvironment env(cfg);

  // Event-action rules over the processed stream.
  const char* spec = R"(
    # message-plane accounting
    rule sends:      when kind = send                     do count
    rule recvs:      when kind = recv                     do count
    # node 1's traffic, captured for inspection
    rule node1_msgs: when node = 1 && (kind = send || kind = recv) do mark n1
    # a steering-style trigger on round-completion markers
    rule rounds:     when kind = user && tag = 2          do trigger
  )";
  int rounds_seen = 0;
  auto machine = std::make_shared<spi::EventActionMachine>(
      spi::parse_spec(spec),
      [&rounds_seen](const std::string&, const trace::EventRecord&) {
        ++rounds_seen;
      });
  env.attach_tool(machine);
  env.start();

  // An adaptive throttle guarding a high-frequency probe on node 0: under a
  // burst it degrades from full tracing to sampling/counting.
  core::ThrottleConfig tcfg;
  tcfg.escalate_rate = 5e5;
  tcfg.deescalate_rate = 5e4;
  tcfg.dwell_ns = 100'000;
  core::TracingThrottle throttle(
      tcfg, [&env](trace::EventRecord r) { env.record(r); });

  const auto app = workload::run_ring_threads(env, 100, 5'000);

  // Burst 20k probe events through the throttle (their own process stream,
  // so the ISM's causal ordering treats them independently).
  trace::EventRecord burst;
  burst.node = 0;
  burst.process = 1;
  burst.kind = trace::EventKind::kUserEvent;
  burst.tag = 77;
  for (std::uint64_t i = 0; i < 20'000; ++i) {
    burst.timestamp = core::now_ns();
    burst.seq = i;
    throttle.offer(burst);
  }
  (void)app;

  env.stop();

  std::printf("%s\n", machine->report().c_str());
  std::printf("throttle: offered %llu, forwarded %llu, suppressed %llu, "
              "level now %s after %llu transitions\n",
              static_cast<unsigned long long>(throttle.offered()),
              static_cast<unsigned long long>(throttle.forwarded()),
              static_cast<unsigned long long>(throttle.suppressed()),
              std::string(core::to_string(throttle.level())).c_str(),
              static_cast<unsigned long long>(throttle.level_changes()));
  std::printf("ring rounds observed via trigger rule: %d\n", rounds_seen);
  std::printf("node-1 messages captured: %zu\n",
              machine->marked("n1").size());
  const auto ism = env.ism().stats();
  std::printf("ISM: %llu dispatched, mean latency %.1f us, p95 %.1f us\n",
              static_cast<unsigned long long>(ism.records_dispatched),
              ism.processing_latency_ns.mean() / 1e3,
              ism.processing_latency_p95_ns / 1e3);
  return 0;
}
