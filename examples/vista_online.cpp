// On-line integrated environment in the Vista style (§3.3): event-forwarding
// LISes, a configurable ISM (P'RISM), causal ordering with logical
// timestamps, and heterogeneous tools — run live in both the SISO and MISO
// configurations so the measurements can drive the configuration decision,
// exactly the testbed workflow the paper describes.
#include <cstdio>

#include "vista/ism_model.hpp"
#include "vista/testbed.hpp"

int main() {
  using namespace prism;

  std::printf("== live P'RISM testbed: SISO vs MISO on real threads ==\n");
  for (auto input : {core::InputConfig::kSiso, core::InputConfig::kMiso}) {
    vista::TestbedParams p;
    p.input = input;
    p.nodes = 4;
    p.rounds = 150;
    p.work_iters_per_hop = 10'000;
    const auto rep = vista::run_prism_testbed(p);
    std::printf(
        "  %s: %llu events, processing latency %.1f us, dispatch %.1f us, "
        "hold-back %.4f, causally ordered output: %s\n",
        input == core::InputConfig::kSiso ? "SISO" : "MISO",
        static_cast<unsigned long long>(rep.records_dispatched),
        rep.mean_processing_latency_us, rep.mean_dispatch_latency_us,
        rep.hold_back_ratio, rep.causally_ordered_output ? "yes" : "NO");
  }

  std::printf("\n== model-guided what-if before deploying (Fig. 10 model) ==\n");
  vista::VistaIsmParams mp;
  mp.horizon_ms = 20'000;
  for (double ia : {10.0, 50.0}) {
    mp.mean_interarrival_ms = ia;
    mp.miso = false;
    const auto siso = vista::run_vista_ism(mp, stats::Rng(31));
    mp.miso = true;
    const auto miso = vista::run_vista_ism(mp, stats::Rng(31));
    std::printf("  inter-arrival %3.0f ms: latency SISO %.2f ms vs MISO "
                "%.2f ms; input buffers %.1f vs %.1f -> choose %s\n",
                ia, siso.mean_processing_latency_ms,
                miso.mean_processing_latency_ms,
                siso.mean_input_buffer_length, miso.mean_input_buffer_length,
                siso.mean_processing_latency_ms <=
                        miso.mean_processing_latency_ms
                    ? "SISO"
                    : "MISO");
  }
  std::printf("\n(the paper's §3.3.3 decision: event-driven arrivals can "
              "surge, so Vista adopted SISO)\n");
  return 0;
}
