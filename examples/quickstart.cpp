// Quickstart: instrument a live multi-threaded program with PRISM.
//
//   1. Configure an integrated environment (4 nodes, buffered LIS with the
//      FOF policy, causally ordering ISM).
//   2. Attach analysis tools (statistics + ASCII timeline).
//   3. Run an instrumented workload (a token ring over real threads).
//   4. Inspect what the instrumentation system collected and what it cost.
//
// Build & run:  ./quickstart
#include <cstdio>
#include <iostream>
#include <memory>

#include "core/environment.hpp"
#include "workload/thread_apps.hpp"

int main() {
  using namespace prism;

  // 1. The IS configuration (Fig. 2 of the paper: LIS + ISM + TP).
  core::EnvironmentConfig cfg;
  cfg.nodes = 4;
  cfg.lis_style = core::LisStyle::kBuffered;   // PICL-style local buffers
  cfg.flush_policy = core::FlushPolicyKind::kFof;
  cfg.local_buffer_capacity = 64;
  cfg.ism.input = core::InputConfig::kSiso;    // single input buffer
  cfg.ism.causal_ordering = true;              // logical timestamps

  core::IntegratedEnvironment env(cfg);

  // 2. Tools consume the ISM's ordered output stream.
  auto stats = std::make_shared<core::StatsTool>();
  auto timeline = std::make_shared<core::TimelineTool>(2048);
  env.attach_tool(stats);
  env.attach_tool(timeline);
  env.start();

  // 3. An instrumented workload: 30 ring circulations over 4 threads.
  const auto app = workload::run_ring_threads(env, /*rounds=*/30,
                                              /*work_iters=*/20'000);

  env.stop();

  // 4. What did the IS see, and what did it cost?
  std::printf("workload: %llu messages, %llu instrumentation events, "
              "%.2f ms wall\n",
              static_cast<unsigned long long>(app.messages),
              static_cast<unsigned long long>(app.events_recorded),
              static_cast<double>(app.wall_ns) / 1e6);

  const auto lis = env.total_lis_stats();
  std::printf("LIS:      %llu recorded, %llu flush batches, %.1f us total "
              "flush time\n",
              static_cast<unsigned long long>(lis.recorded),
              static_cast<unsigned long long>(lis.flushes),
              static_cast<double>(lis.flush_time_ns) / 1e3);

  const auto ism = env.ism().stats();
  std::printf("ISM:      %llu dispatched, mean processing latency %.1f us, "
              "hold-back ratio %.4f\n\n",
              static_cast<unsigned long long>(ism.records_dispatched),
              ism.processing_latency_ns.mean() / 1e3, ism.hold_back_ratio);

  stats->report(std::cout);
  std::printf("\n%s", timeline->render(72).c_str());
  return 0;
}
