// Off-line tracing with the PICL-style library (the paper's §3.1 scenario):
// run an instrumented message-passing application on the simulated
// multicomputer, flush per-node buffers under a chosen policy, merge into a
// single trace file at the host, and post-process it — including removing
// the modeled flush perturbation (Malony-style compensation).
//
// Usage: ./picl_trace_demo [fof|faof] [nodes] [iterations]
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>

#include "picl/library.hpp"
#include "stats/distributions.hpp"
#include "trace/file.hpp"
#include "trace/perturbation.hpp"
#include "workload/apps.hpp"

int main(int argc, char** argv) {
  using namespace prism;

  const bool faof = argc > 1 && std::strcmp(argv[1], "faof") == 0;
  const unsigned nodes = argc > 2 ? std::stoul(argv[2]) : 8;
  const unsigned iterations = argc > 3 ? std::stoul(argv[3]) : 40;

  // The target machine and the instrumented application.
  sim::Engine eng;
  workload::Multicomputer mc(eng, nodes, /*latency_base=*/0.3,
                             /*latency_per_byte=*/0.0002);
  picl::PiclConfig cfg;
  cfg.buffer_capacity = 64;
  cfg.flush_all_on_fill = faof;
  cfg.flush_cost_base = 5.0;        // modeled f(l) = 5 + 0.1 l engine ms
  cfg.flush_cost_per_record = 0.1;
  picl::PiclInstrumentation picl(mc, cfg);

  stats::Exponential compute(1.5);
  const auto app =
      workload::run_stencil_app(mc, iterations, compute, stats::Rng(2026));

  std::printf("ran %u-node stencil: %llu messages, makespan %.1f ms "
              "(simulated)\n",
              nodes, static_cast<unsigned long long>(app.messages),
              app.makespan);

  // Per-node IS accounting (the overheads the paper's model predicts).
  std::printf("policy %s:\n", faof ? "FAOF" : "FOF");
  for (unsigned n = 0; n < nodes; ++n) {
    const auto r = picl.node_report(n);
    std::printf("  node %u: %llu records, %llu flushes, %llu dropped\n", n,
                static_cast<unsigned long long>(r.records),
                static_cast<unsigned long long>(r.flushes),
                static_cast<unsigned long long>(r.dropped));
  }

  // Merge at the host and write the trace file + CSV.
  const auto dir = std::filesystem::temp_directory_path();
  const auto trc = dir / "picl_demo.trc";
  const auto csv = dir / "picl_demo.csv";
  const auto count = picl.write_trace(trc);
  trace::TraceFileReader reader(trc);
  trace::write_csv(csv, reader.records());
  std::printf("merged trace: %llu records -> %s (+ %s)\n",
              static_cast<unsigned long long>(count), trc.c_str(),
              csv.c_str());

  // Post-processing 1: ParaGraph-style summary from the trace.
  std::map<unsigned, unsigned> sends_per_node;
  unsigned flush_markers = 0;
  for (const auto& r : reader.records()) {
    if (r.kind == trace::EventKind::kSend) ++sends_per_node[r.node];
    if (r.kind == trace::EventKind::kFlushBegin) ++flush_markers;
  }
  std::printf("trace summary: flush intervals recorded %u; sends/node:",
              flush_markers);
  for (auto& [n, c] : sends_per_node) std::printf(" %u", c);
  std::printf("\n");

  // Post-processing 2: remove the modeled flush perturbation.
  auto records = reader.records();
  trace::PerturbationModel model;
  model.remove_flush_intervals = true;
  const auto rep = trace::compensate(records, model);
  std::printf("compensation: %llu timestamps adjusted, %.3f ms of modeled "
              "IS overhead removed, %llu recv constraints re-enforced\n",
              static_cast<unsigned long long>(rep.adjusted),
              static_cast<double>(rep.total_overhead_removed) / 1e6,
              static_cast<unsigned long long>(rep.recv_constraints_applied));
  return 0;
}
