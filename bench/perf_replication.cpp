// Performance-trajectory benchmark for the parallel replication harness and
// the engine calendar.  Times the paper's three replicated case-study
// workloads (PICL Fig. 5 flushing sweep, Paradyn ROCC Fig. 9a sweep, Vista
// ISM Fig. 11 sweep) serially and at 2 and N worker threads, verifies that
// every parallel run is bit-identical to the serial run, measures the
// engine's schedule/step, cancel, and reschedule hot loops, and writes
// BENCH_replication.json so future PRs have a comparable perf record.
// (BENCH_*.json field documentation lives in README.md.)
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "obs/json_check.hpp"
#include "obs/obs.hpp"
#include "obs/prof/alloc.hpp"
#include "obs/prof/amdahl.hpp"
#include "obs/prof/prof.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "picl/analytic_model.hpp"
#include "picl/flush_sim.hpp"
#include "paradyn/rocc_model.hpp"
#include "sim/engine.hpp"
#include "sim/replication.hpp"
#include "sim/thread_pool.hpp"
#include "vista/ism_model.hpp"

using namespace prism;

namespace {

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// ---- diagnosis probes (DESIGN.md §13) --------------------------------------
//
// Each thread-count leg of a workload is bracketed by a registry snapshot
// (engine event counts, WorkerClock busy/idle publishes, queue-wait
// histogram), a process-wide allocation scope, a calling-thread counter
// scope, and a process-wide rusage read.  The deltas feed the per-workload
// `diagnosis` block so the BENCH file states *why* a leg scaled or didn't.

std::uint64_t counter_value(const obs::MetricsSnapshot& s,
                            const std::string& name) {
  for (const auto& c : s.counters)
    if (c.name == name) return c.value;
  return 0;
}

double histogram_sum(const obs::MetricsSnapshot& s, const std::string& name) {
  for (const auto& h : s.histograms)
    if (h.name == name) return h.sum;
  return 0;
}

/// Process-wide context switches (voluntary + involuntary, all threads).
std::uint64_t process_ctx_switches() {
  struct rusage ru{};
  if (::getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_nvcsw) +
         static_cast<std::uint64_t>(ru.ru_nivcsw);
}

/// One replicated case-study workload, parameterized on the thread count.
/// Returns a deterministic fingerprint (sum of every metric mean over every
/// scenario) used to assert serial/parallel bit-identity.
using Workload = std::function<double(const sim::ReplicateOptions&)>;

double run_fig05_sweep(const sim::ReplicateOptions& opts, unsigned reps,
                       unsigned fof_cycles, unsigned faof_cycles) {
  double fingerprint = 0;
  const std::vector<double> alphas{0.0008, 0.007, 2.0};
  for (std::size_t a = 0; a < alphas.size(); ++a) {
    for (unsigned l = 10; l <= 100; l += 10) {
      picl::PiclModelParams p;
      p.buffer_capacity = l;
      p.arrival_rate = alphas[a];
      p.nodes = 8;
      const auto rr = sim::replicate(
          reps, /*base_seed=*/0xF1605, /*scenario_tag=*/100 * a + l,
          [&p, fof_cycles, faof_cycles](stats::Rng& rng) -> sim::Responses {
            const auto fof = picl::simulate_fof(p, fof_cycles, rng.split());
            const auto faof = picl::simulate_faof(p, faof_cycles, rng.split());
            return {{"fof_freq", fof.flushing_frequency},
                    {"faof_freq", faof.flushing_frequency},
                    {"fof_stop", fof.stopping_time.mean()}};
          },
          opts);
      for (const auto& m : rr.metrics()) fingerprint += rr.summary(m).mean();
    }
  }
  return fingerprint;
}

double run_rocc_sweep(const sim::ReplicateOptions& opts, unsigned reps) {
  paradyn::ParadynRoccParams base;
  base.horizon_ms = 20'000;
  const auto pts = paradyn::sweep_sampling_period(
      base, {50, 200, 500}, reps, /*seed=*/0x5EED, opts);
  double fingerprint = 0;
  for (const auto& pt : pts)
    fingerprint += pt.interference.mean + pt.utilization_pct.mean +
                   pt.queueing_delay.mean;
  return fingerprint;
}

double run_vista_sweep(const sim::ReplicateOptions& opts, unsigned reps) {
  vista::VistaIsmParams base;
  base.horizon_ms = 10'000;
  const auto pts =
      vista::sweep_interarrival(base, {10, 50, 100}, reps, /*seed=*/0xF16, opts);
  double fingerprint = 0;
  for (const auto& pt : pts)
    fingerprint += pt.latency_siso.mean + pt.latency_miso.mean +
                   pt.buffer_siso.mean + pt.buffer_miso.mean;
  return fingerprint;
}

struct ThreadsResult {
  unsigned threads = 0;
  double ms = 0;
  double speedup = 1;
  bool identical = true;
  bool oversubscribed = false;  ///< threads > hardware_concurrency

  // Diagnosis probes for this leg (all-zero with PRISM_OBS=OFF).
  obs::prof::CounterDelta counters;  ///< calling thread (exact at threads=1)
  /// Process-wide allocation delta for the leg, read from the sharded
  /// tallies after replicate() has joined its pool — so allocations made on
  /// worker threads are attributed to this leg's row, not silently dropped
  /// the way a thread-local scope on the submitting thread would drop them.
  obs::prof::AllocStats alloc;
  std::uint64_t events = 0;          ///< sim.engine.events_executed delta
  std::uint64_t pool_busy_ns = 0;    ///< WorkerClock publishes, all pools
  std::uint64_t pool_idle_ns = 0;
  double queue_wait_ms = 0;          ///< submission-to-start lag, summed
  std::uint64_t ctx_switches = 0;    ///< process-wide (rusage), all threads

  double pool_utilization() const {
    const double total =
        static_cast<double>(pool_busy_ns) + static_cast<double>(pool_idle_ns);
    return total > 0 ? static_cast<double>(pool_busy_ns) / total : 0;
  }
};

/// Times `work` at each thread count; threads=1 is the baseline.
std::vector<ThreadsResult> time_workload(const Workload& work,
                                         const std::vector<unsigned>& counts,
                                         unsigned hw) {
  std::vector<ThreadsResult> out;
  double serial_ms = 0, serial_fp = 0;
  for (unsigned t : counts) {
    sim::ReplicateOptions opts;
    opts.threads = t;
    double fp = 0;
    const auto snap0 = obs::Registry::instance().snapshot();
    const std::uint64_t csw0 = process_ctx_switches();
    const obs::prof::ProcessAllocScope alloc_scope;
    const obs::prof::CounterScope counter_scope;
    const double ms = wall_ms([&] { fp = work(opts); });
    ThreadsResult r;
    r.counters = counter_scope.delta();
    r.alloc = alloc_scope.delta();
    r.ctx_switches = process_ctx_switches() - csw0;
    const auto snap1 = obs::Registry::instance().snapshot();
    r.events = counter_value(snap1, "sim.engine.events_executed") -
               counter_value(snap0, "sim.engine.events_executed");
    r.pool_busy_ns = counter_value(snap1, "sim.pool.worker.busy_ns") -
                     counter_value(snap0, "sim.pool.worker.busy_ns");
    r.pool_idle_ns = counter_value(snap1, "sim.pool.worker.idle_ns") -
                     counter_value(snap0, "sim.pool.worker.idle_ns");
    r.queue_wait_ms = (histogram_sum(snap1, "sim.pool.queue_wait_ns") -
                       histogram_sum(snap0, "sim.pool.queue_wait_ns")) *
                      1e-6;
    r.threads = t;
    r.ms = ms;
    r.oversubscribed = t > hw;
    if (t == 1) {
      serial_ms = ms;
      serial_fp = fp;
      r.speedup = 1.0;
      r.identical = true;
    } else {
      r.speedup = ms > 0 ? serial_ms / ms : 1.0;
      r.identical = fp == serial_fp;  // bit-identical merge, so == is exact
    }
    out.push_back(r);
  }
  return out;
}

/// Attributes the workload's scaling outcome to one dominant cause.  The
/// verdict looks at the best parallel leg: if even the best one failed to
/// beat serial, the probes say why — oversubscription (more workers than
/// cores: wall time measures time-slicing), queue-wait dominance (workers
/// starved behind the submission lock), a high Amdahl serial fraction
/// (the workload itself is serialized), or residual pool overhead.
struct Verdict {
  std::string code;
  std::string detail;
};

Verdict diagnose(const std::vector<ThreadsResult>& rows,
                 const obs::prof::AmdahlFit& fit, unsigned hw) {
  const ThreadsResult* best = nullptr;
  for (const auto& r : rows)
    if (r.threads > 1 && (!best || r.speedup > best->speedup)) best = &r;
  char buf[256];
  if (!best) return {"serial_only", "no parallel legs were timed"};
  if (best->speedup >= 1.05) {
    std::snprintf(buf, sizeof buf,
                  "threads=%u reached %.2fx over serial (pool utilization "
                  "%.0f%%)",
                  best->threads, best->speedup,
                  100 * best->pool_utilization());
    return {"parallel_ok", buf};
  }
  if (best->oversubscribed) {
    std::snprintf(buf, sizeof buf,
                  "%u worker threads on %u hardware thread%s: wall time "
                  "measures time-slicing, not scaling (%llu context switches "
                  "in the best parallel leg)",
                  best->threads, hw, hw == 1 ? "" : "s",
                  static_cast<unsigned long long>(best->ctx_switches));
    return {"oversubscribed", buf};
  }
  const double busy_ms = static_cast<double>(best->pool_busy_ns) * 1e-6;
  if (busy_ms > 0 && best->queue_wait_ms > 0.5 * busy_ms) {
    std::snprintf(buf, sizeof buf,
                  "queue wait (%.1f ms summed) is %.0f%% of worker busy time "
                  "(%.1f ms): tasks starve behind the submission path",
                  best->queue_wait_ms, 100 * best->queue_wait_ms / busy_ms,
                  busy_ms);
    return {"queue_wait_dominant", buf};
  }
  if (fit.valid && fit.serial_fraction >= 0.5) {
    std::snprintf(buf, sizeof buf,
                  "Amdahl serial fraction s=%.2f (s>1 means parallelism adds "
                  "cost beyond full serialization)",
                  fit.serial_fraction);
    return {"serial_fraction_dominant", buf};
  }
  std::snprintf(buf, sizeof buf,
                "speedup %.2fx at threads=%u with utilization %.0f%%: pool "
                "overhead exceeds the per-replication work",
                best->speedup, best->threads, 100 * best->pool_utilization());
  return {"parallel_overhead", buf};
}

/// Per-workload diagnosis block (DESIGN.md §13 documents the schema).  The
/// whole subtree is additive telemetry: scripts/bench_gate.py skips keys
/// under `diagnosis` for both gating and missing-metric checks.
bench::JsonValue diagnosis_to_json(const std::vector<ThreadsResult>& rows,
                                   unsigned hw) {
  std::vector<std::pair<unsigned, double>> sweep;
  for (const auto& r : rows) sweep.emplace_back(r.threads, r.ms);
  const auto fit = obs::prof::fit_amdahl(sweep);
  const auto verdict = diagnose(rows, fit, hw);

  auto out_rows = bench::JsonValue::array();
  for (const auto& r : rows) {
    const double events = static_cast<double>(r.events);
    auto row = bench::JsonValue::object();
    row.add("threads", bench::JsonValue::integer(r.threads));
    row.add("oversubscribed", bench::JsonValue::boolean(r.oversubscribed));
    row.add("pool_busy_ms",
            bench::JsonValue::number(static_cast<double>(r.pool_busy_ns) *
                                     1e-6));
    row.add("pool_idle_ms",
            bench::JsonValue::number(static_cast<double>(r.pool_idle_ns) *
                                     1e-6));
    row.add("pool_utilization", bench::JsonValue::number(r.pool_utilization()));
    row.add("queue_wait_ms", bench::JsonValue::number(r.queue_wait_ms));
    row.add("events_executed",
            bench::JsonValue::integer(static_cast<std::int64_t>(r.events)));
    row.add("allocs",
            bench::JsonValue::integer(
                static_cast<std::int64_t>(r.alloc.allocs)));
    row.add("alloc_bytes",
            bench::JsonValue::integer(
                static_cast<std::int64_t>(r.alloc.bytes)));
    // A zero event count is genuine for engine-free workloads (the fig05
    // PICL sweep is pure Monte Carlo — it never schedules on sim::Engine),
    // so the ratio is *undefined* there, not zero: emit JSON null rather
    // than a fake perfect score the alloc gate would anchor on.
    if (events > 0) {
      row.add("allocs_per_event",
              bench::JsonValue::number(static_cast<double>(r.alloc.allocs) /
                                       events));
    } else {
      row.add("allocs_per_event", bench::JsonValue::null());
    }
    row.add("ctx_switches",
            bench::JsonValue::integer(
                static_cast<std::int64_t>(r.ctx_switches)));
    // Calling-thread counter scope: exact for the workload at threads=1 (the
    // serial path runs in the caller); at threads>1 it measures the
    // submitting/waiting thread, so only the serial row divides per event.
    row.add("main_cpu_fraction",
            bench::JsonValue::number(r.counters.cpu_fraction()));
    if (r.counters.hw_valid && r.threads == 1 && events > 0) {
      row.add("instructions_per_event",
              bench::JsonValue::number(
                  static_cast<double>(r.counters.instructions) / events));
      row.add("cycles_per_event",
              bench::JsonValue::number(
                  static_cast<double>(r.counters.cycles) / events));
      row.add("cache_misses_per_event",
              bench::JsonValue::number(
                  static_cast<double>(r.counters.cache_misses) / events));
      row.add("ipc", bench::JsonValue::number(r.counters.ipc()));
    }
    out_rows.push(std::move(row));
  }

  auto amdahl = bench::JsonValue::object();
  amdahl.add("valid", bench::JsonValue::boolean(fit.valid));
  amdahl.add("serial_fraction", bench::JsonValue::number(fit.serial_fraction));
  amdahl.add("t1_ms", bench::JsonValue::number(fit.t1_ms));
  amdahl.add("rmse_ms", bench::JsonValue::number(fit.rmse_ms));
  amdahl.add("points", bench::JsonValue::integer(fit.points));

  auto diag = bench::JsonValue::object();
  diag.add("profiling_backend",
           bench::JsonValue::string(
               obs::prof::backend_name(obs::prof::backend())));
  diag.add("rows", std::move(out_rows));
  diag.add("amdahl", std::move(amdahl));
  diag.add("verdict", bench::JsonValue::string(verdict.code));
  diag.add("detail", bench::JsonValue::string(verdict.detail));
  std::printf("  diagnosis: %s — %s", verdict.code.c_str(),
              verdict.detail.c_str());
  if (fit.valid)
    std::printf(" (Amdahl s=%.2f over %u points)", fit.serial_fraction,
                fit.points);
  std::printf("\n");
  return diag;
}

bench::JsonValue to_json(const std::string& name, unsigned reps, unsigned hw,
                         const std::vector<ThreadsResult>& results,
                         bool* all_identical) {
  auto arr = bench::JsonValue::array();
  for (const auto& r : results) {
    auto row = bench::JsonValue::object();
    row.add("threads", bench::JsonValue::integer(r.threads));
    row.add("wall_ms", bench::JsonValue::number(r.ms));
    row.add("speedup_vs_serial", bench::JsonValue::number(r.speedup));
    row.add("bit_identical_to_serial", bench::JsonValue::boolean(r.identical));
    row.add("oversubscribed", bench::JsonValue::boolean(r.oversubscribed));
    *all_identical = *all_identical && r.identical;
    arr.push(std::move(row));
  }
  auto wl = bench::JsonValue::object();
  wl.add("name", bench::JsonValue::string(name));
  wl.add("replications_per_scenario", bench::JsonValue::integer(reps));
  wl.add("results", std::move(arr));
  wl.add("diagnosis", diagnosis_to_json(results, hw));
  return wl;
}

/// Embeds a MetricsSnapshot as the BENCH metrics block (same shape as
/// obs::json_report; bench_json cannot depend on prism, so the conversion
/// lives here).
bench::JsonValue metrics_to_json(const obs::MetricsSnapshot& snap) {
  auto counters = bench::JsonValue::object();
  for (const auto& c : snap.counters)
    counters.add(c.name, bench::JsonValue::integer(
                             static_cast<std::int64_t>(c.value)));
  auto gauges = bench::JsonValue::object();
  for (const auto& g : snap.gauges)
    gauges.add(g.name, bench::JsonValue::integer(g.value));
  auto histograms = bench::JsonValue::object();
  for (const auto& h : snap.histograms) {
    auto hv = bench::JsonValue::object();
    hv.add("count",
           bench::JsonValue::integer(static_cast<std::int64_t>(h.count)));
    hv.add("sum", bench::JsonValue::number(h.sum));
    auto bounds = bench::JsonValue::array();
    for (double b : h.bounds) bounds.push(bench::JsonValue::number(b));
    hv.add("bounds", std::move(bounds));
    auto buckets = bench::JsonValue::array();
    for (std::uint64_t b : h.buckets)
      buckets.push(bench::JsonValue::integer(static_cast<std::int64_t>(b)));
    hv.add("buckets", std::move(buckets));
    histograms.add(h.name, std::move(hv));
  }
  auto obj = bench::JsonValue::object();
  obj.add("obs_compiled_in", bench::JsonValue::boolean(obs::compiled_in()));
  obj.add("counters", std::move(counters));
  obj.add("gauges", std::move(gauges));
  obj.add("histograms", std::move(histograms));
  return obj;
}

/// Per-replication execution telemetry from one representative parallel run
/// (satellite of the metrics block: rep-time spread and pool utilization).
bench::JsonValue replication_telemetry(unsigned reps, unsigned threads) {
  picl::PiclModelParams p;
  p.buffer_capacity = 40;
  p.arrival_rate = 0.007;
  p.nodes = 8;
  sim::ReplicateOptions opts;
  opts.threads = threads;
  const auto rr = sim::replicate(
      reps, /*base_seed=*/0xF1605, /*scenario_tag=*/7,
      [&p](stats::Rng& rng) -> sim::Responses {
        const auto fof = picl::simulate_fof(p, 400, rng);
        return {{"freq", fof.flushing_frequency}};
      },
      opts);
  auto obj = bench::JsonValue::object();
  obj.add("replications", bench::JsonValue::integer(rr.replications()));
  obj.add("threads_used", bench::JsonValue::integer(rr.threads_used()));
  obj.add("wall_ms", bench::JsonValue::number(rr.wall_ms()));
  obj.add("rep_time_ms_mean", bench::JsonValue::number(rr.rep_time_ms().mean()));
  obj.add("rep_time_ms_min", bench::JsonValue::number(rr.rep_time_ms().min()));
  obj.add("rep_time_ms_max", bench::JsonValue::number(rr.rep_time_ms().max()));
  obj.add("worker_utilization",
          bench::JsonValue::number(rr.worker_utilization()));
  // DESIGN.md §13 execution telemetry (zero with PRISM_OBS=OFF): wall >>
  // cpu per replication is the oversubscription signature.
  if (rr.rep_cpu_ms().count() > 0)
    obj.add("rep_cpu_ms_mean", bench::JsonValue::number(rr.rep_cpu_ms().mean()));
  if (rr.rep_allocs().count() > 0)
    obj.add("rep_allocs_mean", bench::JsonValue::number(rr.rep_allocs().mean()));
  // Whole-call allocation footprint including pool-worker allocations
  // (ReplicationResult::workload_alloc — sharded tallies snapshotted after
  // the pool joined).
  obj.add("workload_allocs",
          bench::JsonValue::integer(
              static_cast<std::int64_t>(rr.workload_alloc().allocs)));
  obj.add("workload_alloc_bytes",
          bench::JsonValue::integer(
              static_cast<std::int64_t>(rr.workload_alloc().bytes)));
  obj.add("pool_busy_ms",
          bench::JsonValue::number(static_cast<double>(rr.pool().busy_ns) *
                                   1e-6));
  obj.add("pool_idle_ms",
          bench::JsonValue::number(static_cast<double>(rr.pool().idle_ns) *
                                   1e-6));
  obj.add("pool_queue_wait_ms",
          bench::JsonValue::number(
              static_cast<double>(rr.pool().queue_wait_ns) * 1e-6));
  return obj;
}

/// Engine calendar hot loops, in events (or operations) per second.  Each
/// loop runs a short untimed warm-up pass on the same engine first, so the
/// timed pass measures the steady state (slot vector, heap, and EventFn
/// storage already faulted in), not first-touch growth.
bench::JsonValue engine_micro() {
  auto obj = bench::JsonValue::object();

  // schedule_at + step through a large FEL, the simulator's core loop.
  {
    constexpr int kEvents = 200'000;
    constexpr int kWarm = 10'000;
    sim::Engine e;
    volatile int sink = 0;
    stats::Rng rng(42);
    for (int i = 0; i < kWarm; ++i)
      e.schedule_at(rng.next_double() * 1e6, [&sink] { sink = sink + 1; });
    e.run();
    const double ms = wall_ms([&] {
      for (int i = 0; i < kEvents; ++i)
        e.schedule_at(e.now() + rng.next_double() * 1e6,
                      [&sink] { sink = sink + 1; });
      e.run();
    });
    obj.add("schedule_step_events_per_sec",
            bench::JsonValue::number(kEvents / (ms / 1000.0)));
  }

  // schedule + cancel churn: the timeout pattern (almost every timeout is
  // cancelled before it fires).
  {
    constexpr int kOps = 200'000;
    constexpr int kWarm = 10'000;
    sim::Engine e;
    for (int i = 0; i < kWarm; ++i)
      e.cancel(e.schedule_at(static_cast<double>(i + 1), [] {}));
    e.run();
    const double ms = wall_ms([&] {
      for (int i = 0; i < kOps; ++i) {
        auto h = e.schedule_at(e.now() + static_cast<double>(i + 1), [] {});
        e.cancel(h);
      }
      e.run();
    });
    obj.add("schedule_cancel_pairs_per_sec",
            bench::JsonValue::number(kOps / (ms / 1000.0)));
  }

  // Periodic event rescheduling itself via its handle (no callable
  // re-allocation per period).
  {
    constexpr int kTicks = 200'000;
    constexpr int kWarm = 10'000;
    sim::Engine e;
    int warm_ticks = 0;
    sim::EventHandle wh;
    wh = e.schedule_at(1.0, [&] {
      if (++warm_ticks < kWarm) wh = e.reschedule(wh, e.now() + 1.0);
    });
    e.run();
    int ticks = 0;
    sim::EventHandle h;
    h = e.schedule_at(e.now() + 1.0, [&] {
      if (++ticks < kTicks) h = e.reschedule(h, e.now() + 1.0);
    });
    const double ms = wall_ms([&] { e.run(); });
    obj.add("periodic_reschedule_ticks_per_sec",
            bench::JsonValue::number(kTicks / (ms / 1000.0)));
  }
  return obj;
}

}  // namespace

int main(int argc, char** argv) {
  // Optional args: perf_replication [--quick] [--no-trace] [reps] (keeps CI
  // wall time bounded; --no-trace skips the span tracer and the trace-file
  // write; --quick shrinks reps and thread counts for perf-gate runs and is
  // recorded in the JSON so baselines compare like-for-like).
  bool trace = true;
  bool quick = false;
  unsigned reps = 12;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-trace") {
      trace = false;
      continue;
    }
    if (arg == "--quick") {
      quick = true;
      trace = false;
      reps = 4;
      continue;
    }
    const int parsed = std::atoi(arg.c_str());
    if (parsed < 1) {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--no-trace] [reps>=1]  (got '%s')\n",
                   argv[0], arg.c_str());
      return 2;
    }
    reps = static_cast<unsigned>(parsed);
  }
  const unsigned hw = sim::ThreadPool::default_threads();
  std::vector<unsigned> counts{1, 2};
  if (!quick) counts.push_back(4);
  if (!quick && hw > 4) counts.push_back(hw);
  for (unsigned t : counts) {
    if (t <= hw) continue;
    std::fprintf(stderr,
                 "WARNING: timing threads=%u on hardware_concurrency=%u — "
                 "these legs measure oversubscription (time-slicing), not "
                 "scaling; their speedup_vs_serial is flagged "
                 "oversubscribed and skipped by scripts/bench_gate.py\n",
                 t, hw);
  }

  // Self-telemetry: trace the run (spans ride along with the timings below)
  // and scrape the metrics registry into the BENCH file at the end.
  if (trace) {
    obs::Tracer::instance().set_ring_capacity(1 << 16);
    obs::Tracer::instance().set_enabled(true);
  }

  auto root = bench::JsonValue::object();
  root.add("bench", bench::JsonValue::string("replication_harness"));
  root.add("schema_version", bench::JsonValue::integer(1));
  root.add("quick", bench::JsonValue::boolean(quick));
  root.add("hardware_concurrency", bench::JsonValue::integer(hw));
  root.add("profiling_backend",
           bench::JsonValue::string(
               obs::prof::backend_name(obs::prof::backend())));
  std::printf("perf_replication: hardware_concurrency=%u, r=%u per scenario, "
              "profiling backend=%s\n",
              hw, reps, obs::prof::backend_name(obs::prof::backend()));

  bool all_identical = true;
  auto workloads = bench::JsonValue::array();

  {
    std::printf("timing fig05 PICL flushing sweep (3 alphas x 10 capacities)"
                "...\n");
    const auto res = time_workload(
        [&](const sim::ReplicateOptions& o) {
          return run_fig05_sweep(o, reps, 400, 250);
        },
        counts, hw);
    workloads.push(to_json("fig05_picl_flushing_sweep", reps, hw, res,
                           &all_identical));
    for (const auto& r : res)
      std::printf("  threads=%u  wall=%8.1f ms  speedup=%.2fx  identical=%s\n",
                  r.threads, r.ms, r.speedup, r.identical ? "yes" : "NO");
  }
  {
    std::printf("timing fig09 Paradyn ROCC period sweep...\n");
    const auto res = time_workload(
        [&](const sim::ReplicateOptions& o) { return run_rocc_sweep(o, reps); },
        counts, hw);
    workloads.push(to_json("fig09_rocc_period_sweep", reps, hw, res,
                           &all_identical));
    for (const auto& r : res)
      std::printf("  threads=%u  wall=%8.1f ms  speedup=%.2fx  identical=%s\n",
                  r.threads, r.ms, r.speedup, r.identical ? "yes" : "NO");
  }
  {
    std::printf("timing fig11 Vista ISM interarrival sweep...\n");
    const auto res = time_workload(
        [&](const sim::ReplicateOptions& o) { return run_vista_sweep(o, reps); },
        counts, hw);
    workloads.push(to_json("fig11_vista_ism_sweep", reps, hw, res,
                           &all_identical));
    for (const auto& r : res)
      std::printf("  threads=%u  wall=%8.1f ms  speedup=%.2fx  identical=%s\n",
                  r.threads, r.ms, r.speedup, r.identical ? "yes" : "NO");
  }

  root.add("workloads", std::move(workloads));

  std::printf("timing engine calendar hot loops...\n");
  root.add("engine_calendar", engine_micro());

  std::printf("collecting replication telemetry (r=%u, threads=%u)...\n",
              reps, hw);
  root.add("replication_telemetry", replication_telemetry(reps, hw));

  const auto snap = obs::Registry::instance().snapshot();
  root.add("metrics", metrics_to_json(snap));
  std::printf("---- telemetry snapshot ----\n%s",
              obs::text_report(snap).c_str());

  if (trace) {
    // Validate before writing: a malformed trace file silently breaks the
    // Perfetto import much later, far from the bug.
    const std::string trace_path = "perf_replication.trace.json";
    const std::string trace_json = obs::Tracer::instance().chrome_json();
    if (!obs::jsonlite::valid(trace_json)) {
      std::fprintf(stderr, "ERROR: generated trace JSON failed validation; "
                           "not writing %s\n", trace_path.c_str());
      return 1;
    }
    obs::Tracer::instance().write_chrome_json(trace_path);
    std::printf("wrote %s (%zu events, %llu dropped, JSON validated) — open "
                "at https://ui.perfetto.dev\n",
                trace_path.c_str(), obs::Tracer::instance().snapshot().size(),
                static_cast<unsigned long long>(
                    obs::Tracer::instance().dropped()));
  } else {
    std::printf("trace disabled (--no-trace)\n");
  }

  const std::string path = "BENCH_replication.json";
  bench::write_json_file(path, root);
  std::printf("wrote %s\n", path.c_str());
  std::printf("parallel-vs-serial bit-identity: %s\n",
              all_identical ? "OK" : "VIOLATION");
  return all_identical ? 0 : 1;
}
