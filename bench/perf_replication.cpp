// Performance-trajectory benchmark for the parallel replication harness and
// the engine calendar.  Times the paper's three replicated case-study
// workloads (PICL Fig. 5 flushing sweep, Paradyn ROCC Fig. 9a sweep, Vista
// ISM Fig. 11 sweep) serially and at 2 and N worker threads, verifies that
// every parallel run is bit-identical to the serial run, measures the
// engine's schedule/step, cancel, and reschedule hot loops, and writes
// BENCH_replication.json so future PRs have a comparable perf record.
// (BENCH_*.json field documentation lives in README.md.)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "obs/json_check.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "picl/analytic_model.hpp"
#include "picl/flush_sim.hpp"
#include "paradyn/rocc_model.hpp"
#include "sim/engine.hpp"
#include "sim/replication.hpp"
#include "sim/thread_pool.hpp"
#include "vista/ism_model.hpp"

using namespace prism;

namespace {

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// One replicated case-study workload, parameterized on the thread count.
/// Returns a deterministic fingerprint (sum of every metric mean over every
/// scenario) used to assert serial/parallel bit-identity.
using Workload = std::function<double(const sim::ReplicateOptions&)>;

double run_fig05_sweep(const sim::ReplicateOptions& opts, unsigned reps,
                       unsigned fof_cycles, unsigned faof_cycles) {
  double fingerprint = 0;
  const std::vector<double> alphas{0.0008, 0.007, 2.0};
  for (std::size_t a = 0; a < alphas.size(); ++a) {
    for (unsigned l = 10; l <= 100; l += 10) {
      picl::PiclModelParams p;
      p.buffer_capacity = l;
      p.arrival_rate = alphas[a];
      p.nodes = 8;
      const auto rr = sim::replicate(
          reps, /*base_seed=*/0xF1605, /*scenario_tag=*/100 * a + l,
          [&p, fof_cycles, faof_cycles](stats::Rng& rng) -> sim::Responses {
            const auto fof = picl::simulate_fof(p, fof_cycles, rng.split());
            const auto faof = picl::simulate_faof(p, faof_cycles, rng.split());
            return {{"fof_freq", fof.flushing_frequency},
                    {"faof_freq", faof.flushing_frequency},
                    {"fof_stop", fof.stopping_time.mean()}};
          },
          opts);
      for (const auto& m : rr.metrics()) fingerprint += rr.summary(m).mean();
    }
  }
  return fingerprint;
}

double run_rocc_sweep(const sim::ReplicateOptions& opts, unsigned reps) {
  paradyn::ParadynRoccParams base;
  base.horizon_ms = 20'000;
  const auto pts = paradyn::sweep_sampling_period(
      base, {50, 200, 500}, reps, /*seed=*/0x5EED, opts);
  double fingerprint = 0;
  for (const auto& pt : pts)
    fingerprint += pt.interference.mean + pt.utilization_pct.mean +
                   pt.queueing_delay.mean;
  return fingerprint;
}

double run_vista_sweep(const sim::ReplicateOptions& opts, unsigned reps) {
  vista::VistaIsmParams base;
  base.horizon_ms = 10'000;
  const auto pts =
      vista::sweep_interarrival(base, {10, 50, 100}, reps, /*seed=*/0xF16, opts);
  double fingerprint = 0;
  for (const auto& pt : pts)
    fingerprint += pt.latency_siso.mean + pt.latency_miso.mean +
                   pt.buffer_siso.mean + pt.buffer_miso.mean;
  return fingerprint;
}

struct ThreadsResult {
  unsigned threads = 0;
  double ms = 0;
  double speedup = 1;
  bool identical = true;
};

/// Times `work` at each thread count; threads=1 is the baseline.
std::vector<ThreadsResult> time_workload(const Workload& work,
                                         const std::vector<unsigned>& counts) {
  std::vector<ThreadsResult> out;
  double serial_ms = 0, serial_fp = 0;
  for (unsigned t : counts) {
    sim::ReplicateOptions opts;
    opts.threads = t;
    double fp = 0;
    const double ms = wall_ms([&] { fp = work(opts); });
    ThreadsResult r;
    r.threads = t;
    r.ms = ms;
    if (t == 1) {
      serial_ms = ms;
      serial_fp = fp;
      r.speedup = 1.0;
      r.identical = true;
    } else {
      r.speedup = ms > 0 ? serial_ms / ms : 1.0;
      r.identical = fp == serial_fp;  // bit-identical merge, so == is exact
    }
    out.push_back(r);
  }
  return out;
}

bench::JsonValue to_json(const std::string& name, unsigned reps,
                         const std::vector<ThreadsResult>& results,
                         bool* all_identical) {
  auto arr = bench::JsonValue::array();
  for (const auto& r : results) {
    auto row = bench::JsonValue::object();
    row.add("threads", bench::JsonValue::integer(r.threads));
    row.add("wall_ms", bench::JsonValue::number(r.ms));
    row.add("speedup_vs_serial", bench::JsonValue::number(r.speedup));
    row.add("bit_identical_to_serial", bench::JsonValue::boolean(r.identical));
    *all_identical = *all_identical && r.identical;
    arr.push(std::move(row));
  }
  auto wl = bench::JsonValue::object();
  wl.add("name", bench::JsonValue::string(name));
  wl.add("replications_per_scenario", bench::JsonValue::integer(reps));
  wl.add("results", std::move(arr));
  return wl;
}

/// Embeds a MetricsSnapshot as the BENCH metrics block (same shape as
/// obs::json_report; bench_json cannot depend on prism, so the conversion
/// lives here).
bench::JsonValue metrics_to_json(const obs::MetricsSnapshot& snap) {
  auto counters = bench::JsonValue::object();
  for (const auto& c : snap.counters)
    counters.add(c.name, bench::JsonValue::integer(
                             static_cast<std::int64_t>(c.value)));
  auto gauges = bench::JsonValue::object();
  for (const auto& g : snap.gauges)
    gauges.add(g.name, bench::JsonValue::integer(g.value));
  auto histograms = bench::JsonValue::object();
  for (const auto& h : snap.histograms) {
    auto hv = bench::JsonValue::object();
    hv.add("count",
           bench::JsonValue::integer(static_cast<std::int64_t>(h.count)));
    hv.add("sum", bench::JsonValue::number(h.sum));
    auto bounds = bench::JsonValue::array();
    for (double b : h.bounds) bounds.push(bench::JsonValue::number(b));
    hv.add("bounds", std::move(bounds));
    auto buckets = bench::JsonValue::array();
    for (std::uint64_t b : h.buckets)
      buckets.push(bench::JsonValue::integer(static_cast<std::int64_t>(b)));
    hv.add("buckets", std::move(buckets));
    histograms.add(h.name, std::move(hv));
  }
  auto obj = bench::JsonValue::object();
  obj.add("obs_compiled_in", bench::JsonValue::boolean(obs::compiled_in()));
  obj.add("counters", std::move(counters));
  obj.add("gauges", std::move(gauges));
  obj.add("histograms", std::move(histograms));
  return obj;
}

/// Per-replication execution telemetry from one representative parallel run
/// (satellite of the metrics block: rep-time spread and pool utilization).
bench::JsonValue replication_telemetry(unsigned reps, unsigned threads) {
  picl::PiclModelParams p;
  p.buffer_capacity = 40;
  p.arrival_rate = 0.007;
  p.nodes = 8;
  sim::ReplicateOptions opts;
  opts.threads = threads;
  const auto rr = sim::replicate(
      reps, /*base_seed=*/0xF1605, /*scenario_tag=*/7,
      [&p](stats::Rng& rng) -> sim::Responses {
        const auto fof = picl::simulate_fof(p, 400, rng);
        return {{"freq", fof.flushing_frequency}};
      },
      opts);
  auto obj = bench::JsonValue::object();
  obj.add("replications", bench::JsonValue::integer(rr.replications()));
  obj.add("threads_used", bench::JsonValue::integer(rr.threads_used()));
  obj.add("wall_ms", bench::JsonValue::number(rr.wall_ms()));
  obj.add("rep_time_ms_mean", bench::JsonValue::number(rr.rep_time_ms().mean()));
  obj.add("rep_time_ms_min", bench::JsonValue::number(rr.rep_time_ms().min()));
  obj.add("rep_time_ms_max", bench::JsonValue::number(rr.rep_time_ms().max()));
  obj.add("worker_utilization",
          bench::JsonValue::number(rr.worker_utilization()));
  return obj;
}

/// Engine calendar hot loops, in events (or operations) per second.
bench::JsonValue engine_micro() {
  auto obj = bench::JsonValue::object();

  // schedule_at + step through a large FEL, the simulator's core loop.
  {
    constexpr int kEvents = 200'000;
    sim::Engine e;
    volatile int sink = 0;
    stats::Rng rng(42);
    const double ms = wall_ms([&] {
      for (int i = 0; i < kEvents; ++i)
        e.schedule_at(rng.next_double() * 1e6, [&sink] { sink = sink + 1; });
      e.run();
    });
    obj.add("schedule_step_events_per_sec",
            bench::JsonValue::number(kEvents / (ms / 1000.0)));
  }

  // schedule + cancel churn: the timeout pattern (almost every timeout is
  // cancelled before it fires).
  {
    constexpr int kOps = 200'000;
    sim::Engine e;
    const double ms = wall_ms([&] {
      for (int i = 0; i < kOps; ++i) {
        auto h = e.schedule_at(static_cast<double>(i + 1), [] {});
        e.cancel(h);
      }
      e.run();
    });
    obj.add("schedule_cancel_pairs_per_sec",
            bench::JsonValue::number(kOps / (ms / 1000.0)));
  }

  // Periodic event rescheduling itself via its handle (no std::function
  // re-allocation per period).
  {
    constexpr int kTicks = 200'000;
    sim::Engine e;
    int ticks = 0;
    sim::EventHandle h;
    h = e.schedule_at(1.0, [&] {
      if (++ticks < kTicks) h = e.reschedule(h, e.now() + 1.0);
    });
    const double ms = wall_ms([&] { e.run(); });
    obj.add("periodic_reschedule_ticks_per_sec",
            bench::JsonValue::number(kTicks / (ms / 1000.0)));
  }
  return obj;
}

}  // namespace

int main(int argc, char** argv) {
  // Optional args: perf_replication [--quick] [--no-trace] [reps] (keeps CI
  // wall time bounded; --no-trace skips the span tracer and the trace-file
  // write; --quick shrinks reps and thread counts for perf-gate runs and is
  // recorded in the JSON so baselines compare like-for-like).
  bool trace = true;
  bool quick = false;
  unsigned reps = 12;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-trace") {
      trace = false;
      continue;
    }
    if (arg == "--quick") {
      quick = true;
      trace = false;
      reps = 4;
      continue;
    }
    const int parsed = std::atoi(arg.c_str());
    if (parsed < 1) {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--no-trace] [reps>=1]  (got '%s')\n",
                   argv[0], arg.c_str());
      return 2;
    }
    reps = static_cast<unsigned>(parsed);
  }
  const unsigned hw = sim::ThreadPool::default_threads();
  std::vector<unsigned> counts{1, 2};
  if (!quick) counts.push_back(4);
  if (!quick && hw > 4) counts.push_back(hw);

  // Self-telemetry: trace the run (spans ride along with the timings below)
  // and scrape the metrics registry into the BENCH file at the end.
  if (trace) {
    obs::Tracer::instance().set_ring_capacity(1 << 16);
    obs::Tracer::instance().set_enabled(true);
  }

  auto root = bench::JsonValue::object();
  root.add("bench", bench::JsonValue::string("replication_harness"));
  root.add("schema_version", bench::JsonValue::integer(1));
  root.add("quick", bench::JsonValue::boolean(quick));
  root.add("hardware_concurrency", bench::JsonValue::integer(hw));
  std::printf("perf_replication: hardware_concurrency=%u, r=%u per scenario\n",
              hw, reps);

  bool all_identical = true;
  auto workloads = bench::JsonValue::array();

  {
    std::printf("timing fig05 PICL flushing sweep (3 alphas x 10 capacities)"
                "...\n");
    const auto res = time_workload(
        [&](const sim::ReplicateOptions& o) {
          return run_fig05_sweep(o, reps, 400, 250);
        },
        counts);
    workloads.push(to_json("fig05_picl_flushing_sweep", reps, res,
                           &all_identical));
    for (const auto& r : res)
      std::printf("  threads=%u  wall=%8.1f ms  speedup=%.2fx  identical=%s\n",
                  r.threads, r.ms, r.speedup, r.identical ? "yes" : "NO");
  }
  {
    std::printf("timing fig09 Paradyn ROCC period sweep...\n");
    const auto res = time_workload(
        [&](const sim::ReplicateOptions& o) { return run_rocc_sweep(o, reps); },
        counts);
    workloads.push(to_json("fig09_rocc_period_sweep", reps, res,
                           &all_identical));
    for (const auto& r : res)
      std::printf("  threads=%u  wall=%8.1f ms  speedup=%.2fx  identical=%s\n",
                  r.threads, r.ms, r.speedup, r.identical ? "yes" : "NO");
  }
  {
    std::printf("timing fig11 Vista ISM interarrival sweep...\n");
    const auto res = time_workload(
        [&](const sim::ReplicateOptions& o) { return run_vista_sweep(o, reps); },
        counts);
    workloads.push(to_json("fig11_vista_ism_sweep", reps, res,
                           &all_identical));
    for (const auto& r : res)
      std::printf("  threads=%u  wall=%8.1f ms  speedup=%.2fx  identical=%s\n",
                  r.threads, r.ms, r.speedup, r.identical ? "yes" : "NO");
  }

  root.add("workloads", std::move(workloads));

  std::printf("timing engine calendar hot loops...\n");
  root.add("engine_calendar", engine_micro());

  std::printf("collecting replication telemetry (r=%u, threads=%u)...\n",
              reps, hw);
  root.add("replication_telemetry", replication_telemetry(reps, hw));

  const auto snap = obs::Registry::instance().snapshot();
  root.add("metrics", metrics_to_json(snap));
  std::printf("---- telemetry snapshot ----\n%s",
              obs::text_report(snap).c_str());

  if (trace) {
    // Validate before writing: a malformed trace file silently breaks the
    // Perfetto import much later, far from the bug.
    const std::string trace_path = "perf_replication.trace.json";
    const std::string trace_json = obs::Tracer::instance().chrome_json();
    if (!obs::jsonlite::valid(trace_json)) {
      std::fprintf(stderr, "ERROR: generated trace JSON failed validation; "
                           "not writing %s\n", trace_path.c_str());
      return 1;
    }
    obs::Tracer::instance().write_chrome_json(trace_path);
    std::printf("wrote %s (%zu events, %llu dropped, JSON validated) — open "
                "at https://ui.perfetto.dev\n",
                trace_path.c_str(), obs::Tracer::instance().snapshot().size(),
                static_cast<unsigned long long>(
                    obs::Tracer::instance().dropped()));
  } else {
    std::printf("trace disabled (--no-trace)\n");
  }

  const std::string path = "BENCH_replication.json";
  bench::write_json_file(path, root);
  std::printf("wrote %s\n", path.c_str());
  std::printf("parallel-vs-serial bit-identity: %s\n",
              all_identical ? "OK" : "VIOLATION");
  return all_identical ? 0 : 1;
}
