// Pipe-vs-socket transport benchmark for the live TP tier (DESIGN.md §11).
//
// Runs the same seeded workload through every data-plane backend from one
// binary — in-process links (tp = pipe), AF_UNIX sockets, and TCP loopback —
// comparing wall time and events/sec, then repeats a kTpSend-only chaos plan
// on the pipe and socket backends and requires their loss ledgers to be
// bit-identical (fault lanes key on the batch's source node, so a plan that
// never touches the wire sites is transport-independent).  Writes
// BENCH_tp_transport.json and exits nonzero when conservation, equivalence,
// or wire accounting fails, so the bench doubles as a soak gate.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "bench_json.hpp"
#include "core/environment.hpp"
#include "core/socket_link.hpp"
#include "core/tool.hpp"
#include "fault/fault.hpp"
#include "obs/pipeline.hpp"

using namespace prism;

namespace {

constexpr std::uint64_t kRecords = 40'000;
constexpr std::uint32_t kNodes = 4;
constexpr std::uint64_t kSeed = 0x7A9B5;

struct WireCounters {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes = 0;
};

struct RunResult {
  obs::LineageReport lineage;
  core::DegradationReport degradation;
  double wall_ms = 0;
  std::optional<WireCounters> wire;  ///< socket backends only
};

RunResult run_once(core::TpFlavor flavor, core::SocketDomain domain,
                   fault::FaultInjector* inj) {
  core::EnvironmentConfig cfg;
  cfg.nodes = kNodes;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.flush_policy = core::FlushPolicyKind::kFof;
  cfg.local_buffer_capacity = 32;  // ~1250 frames hit the transport
  cfg.link_capacity = 8192;
  cfg.tp_flavor = flavor;
  cfg.socket.domain = domain;
  cfg.ism.input = core::InputConfig::kSiso;
  cfg.ism.causal_ordering = true;
  core::IntegratedEnvironment env(cfg);
  env.attach_tool(std::make_shared<core::StatsTool>());
  obs::PipelineObserver obs;
  env.set_observer(&obs);
  fault::RetryPolicy rp;
  rp.base_backoff_ns = 200;
  if (inj) env.set_fault(inj, rp);
  env.start();

  const auto t0 = std::chrono::steady_clock::now();
  trace::EventRecord r;
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    r.node = static_cast<std::uint32_t>(i % kNodes);
    r.seq = i / kNodes;
    r.timestamp = i;
    env.record(r);
  }
  env.stop();  // includes the socket drain/quiesce — measured on purpose
  const auto t1 = std::chrono::steady_clock::now();

  RunResult out;
  out.lineage = obs.lineage.report();
  out.degradation = env.degradation();
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (auto* st = env.tp().socket_transport()) {
    WireCounters w;
    for (std::size_t i = 0; i < st->link_count(); ++i) {
      const auto& l = st->link(i);
      w.frames_sent += l.frames_sent();
      w.frames_delivered += l.frames_delivered();
      w.writes += l.writes();
      w.bytes += l.bytes_sent();
    }
    out.wire = w;
  }
  return out;
}

bool same_ledger(const RunResult& a, const RunResult& b) {
  return a.lineage.admitted == b.lineage.admitted &&
         a.lineage.completed == b.lineage.completed &&
         a.lineage.lost == b.lineage.lost &&
         a.lineage.lost_at == b.lineage.lost_at &&
         a.degradation.lises_dead == b.degradation.lises_dead &&
         a.degradation.records_lost_send == b.degradation.records_lost_send &&
         a.degradation.records_lost_dead == b.degradation.records_lost_dead;
}

/// A plan confined to the in-process kTpSend site: it consults the same
/// per-node lanes in the same order on every backend, so the resulting
/// ledgers must match across transports.
fault::FaultPlan tp_only_plan() {
  fault::FaultPlan plan;
  plan.crash(fault::FaultSite::kTpSend, 50, /*node=*/kNodes - 1);
  plan.send_failure(fault::FaultSite::kTpSend, 0.02);
  return plan;
}

bool check_clean(const char* label, const RunResult& r, bool* ok) {
  bool good = true;
  if (!r.lineage.conserved() || r.lineage.in_flight != 0) {
    std::printf("FAIL: %s lineage not conserved\n", label);
    good = false;
  }
  if (r.degradation.degraded() || r.lineage.completed != kRecords) {
    std::printf("FAIL: %s fault-free run degraded\n", label);
    good = false;
  }
  if (!good) *ok = false;
  return good;
}

bench::JsonValue backend_json(const RunResult& r) {
  auto o = bench::JsonValue::object();
  o.add("wall_ms", bench::JsonValue::number(r.wall_ms))
      .add("events_per_sec",
           bench::JsonValue::number(r.wall_ms > 0 ? 1e3 * kRecords / r.wall_ms
                                                  : 0))
      .add("completed", bench::JsonValue::integer(static_cast<std::int64_t>(
                            r.lineage.completed)));
  if (r.wire) {
    o.add("frames_sent", bench::JsonValue::integer(static_cast<std::int64_t>(
                             r.wire->frames_sent)))
        .add("wire_writes", bench::JsonValue::integer(
                                static_cast<std::int64_t>(r.wire->writes)))
        .add("wire_bytes", bench::JsonValue::integer(
                               static_cast<std::int64_t>(r.wire->bytes)))
        .add("coalesce_factor",
             bench::JsonValue::number(
                 r.wire->writes > 0 ? static_cast<double>(r.wire->frames_sent) /
                                          static_cast<double>(r.wire->writes)
                                    : 0));
  }
  return o;
}

}  // namespace

int main() {
  bool ok = true;

  const RunResult pipe =
      run_once(core::TpFlavor::kPipe, core::SocketDomain::kUnix, nullptr);
  const RunResult unx =
      run_once(core::TpFlavor::kSocket, core::SocketDomain::kUnix, nullptr);
  const RunResult tcp = run_once(core::TpFlavor::kSocket,
                                 core::SocketDomain::kTcpLoopback, nullptr);

  std::printf("tp_transport: %llu records, %u nodes, seed %#llx\n",
              static_cast<unsigned long long>(kRecords), kNodes,
              static_cast<unsigned long long>(kSeed));
  std::printf("  pipe:        %8.1f ms  (%.0f ev/s)\n", pipe.wall_ms,
              1e3 * kRecords / pipe.wall_ms);
  std::printf("  socket/unix: %8.1f ms  (%.0f ev/s)\n", unx.wall_ms,
              1e3 * kRecords / unx.wall_ms);
  std::printf("  socket/tcp:  %8.1f ms  (%.0f ev/s)\n", tcp.wall_ms,
              1e3 * kRecords / tcp.wall_ms);

  check_clean("pipe", pipe, &ok);
  check_clean("socket/unix", unx, &ok);
  check_clean("socket/tcp", tcp, &ok);
  for (const RunResult* r : {&unx, &tcp}) {
    if (!r->wire || r->wire->frames_sent != r->wire->frames_delivered) {
      std::printf("FAIL: fault-free socket run dropped frames on the wire\n");
      ok = false;
    }
    if (r->wire && r->wire->writes > r->wire->frames_sent) {
      std::printf("FAIL: more writes than frames (coalescing inverted)\n");
      ok = false;
    }
  }

  // The equivalence leg: the same seeded kTpSend-only chaos on both
  // backends must produce the same ledger, and the socket run must not
  // attribute anything to the wire.
  fault::FaultInjector inj_pipe(tp_only_plan(), kSeed);
  const RunResult chaos_pipe =
      run_once(core::TpFlavor::kPipe, core::SocketDomain::kUnix, &inj_pipe);
  fault::FaultInjector inj_sock(tp_only_plan(), kSeed);
  const RunResult chaos_sock =
      run_once(core::TpFlavor::kSocket, core::SocketDomain::kUnix, &inj_sock);

  std::printf("\nchaos (kTpSend-only, seed %#llx):\n%s",
              static_cast<unsigned long long>(kSeed),
              chaos_sock.degradation.to_string().c_str());
  for (const RunResult* r : {&chaos_pipe, &chaos_sock}) {
    if (!r->lineage.conserved() || r->lineage.in_flight != 0) {
      std::printf("FAIL: chaos lineage not conserved\n");
      ok = false;
    }
  }
  if (!chaos_pipe.degradation.degraded() ||
      chaos_pipe.degradation.lises_dead == 0) {
    std::printf("FAIL: chaos plan injected nothing\n");
    ok = false;
  }
  if (!same_ledger(chaos_pipe, chaos_sock)) {
    std::printf("FAIL: pipe and socket ledgers diverged for the same seed\n");
    ok = false;
  }
  if (chaos_sock.degradation.records_lost_wire != 0) {
    std::printf("FAIL: kTpSend-only plan leaked losses onto the wire\n");
    ok = false;
  }

  auto root = bench::JsonValue::object();
  root.add("bench", bench::JsonValue::string("tp_transport"))
      .add("records", bench::JsonValue::integer(kRecords))
      .add("nodes", bench::JsonValue::integer(kNodes))
      .add("seed", bench::JsonValue::integer(static_cast<std::int64_t>(kSeed)))
      .add("pipe", backend_json(pipe))
      .add("socket_unix", backend_json(unx))
      .add("socket_tcp", backend_json(tcp))
      .add("socket_vs_pipe_slowdown",
           bench::JsonValue::number(
               pipe.wall_ms > 0 ? unx.wall_ms / pipe.wall_ms : 0))
      .add("chaos_lost", bench::JsonValue::integer(static_cast<std::int64_t>(
                             chaos_sock.lineage.lost)))
      .add("chaos_ledgers_match",
           bench::JsonValue::boolean(same_ledger(chaos_pipe, chaos_sock)))
      .add("conserved",
           bench::JsonValue::boolean(chaos_pipe.lineage.conserved() &&
                                     chaos_sock.lineage.conserved()));
  bench::write_json_file("BENCH_tp_transport.json", root);
  std::printf("\nwrote BENCH_tp_transport.json\n");

  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
