// Three-way transport benchmark for the live TP tier (DESIGN.md §11, §12).
//
// Two tiers of measurement from one binary:
//
//  1. Environment legs: the same seeded workload through every data-plane
//     backend — in-process links (tp = pipe), AF_UNIX sockets, TCP loopback,
//     and shared-memory rings (tp = shm) — comparing wall time and
//     events/sec end to end (LIS -> TP -> ISM -> tool).  On small machines
//     these converge to the ISM drain rate, so they answer "does the
//     transport keep up", not "how fast is the transport".
//
//  2. Raw data-plane legs: the transport primitives alone, stripped of the
//     pipeline — the framed pipe(2) wire (the PosixPipeLink path: syscalls
//     plus kernel copies), a socketpair doing the same, an ShmRing frame
//     write/read (two memcpys, two release stores, no kernel), and a
//     Channel<Message> push/pop (the in-process reference point, one heap
//     message per frame) — with a pinned thread and a warm-up pass before
//     timing (SNIPPETS.md idiom).  This is where the shm design goal is
//     enforced: raw shm throughput must beat the pipe wire >= 5x at
//     batch=1.
//
// A seeded kTpSend-only chaos plan then runs on pipe, socket, and shm, and
// the three loss ledgers must be bit-identical (fault lanes key on the
// batch's source node, so a plan that never touches the wire sites is
// transport-independent).  Writes BENCH_tp_transport.json and exits nonzero
// when conservation, equivalence, wire accounting, or the raw speedup gate
// fails, so the bench doubles as a soak gate.  --quick shrinks the workload
// for CI perf-gate runs (recorded in the JSON so baselines compare
// like-for-like).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#ifdef __linux__
#include <sched.h>
#endif
#include <unistd.h>

#include "bench_json.hpp"
#include "core/environment.hpp"
#include "core/io_loop.hpp"
#include "core/shm_link.hpp"
#include "core/shm_ring.hpp"
#include "core/socket_link.hpp"
#include "core/tool.hpp"
#include "fault/fault.hpp"
#include "obs/pipeline.hpp"

using namespace prism;

namespace {

std::uint64_t g_records = 40'000;      // env legs (--quick: 8'000)
std::uint64_t g_raw_frames = 200'000;  // raw legs (--quick: 40'000)
constexpr std::uint32_t kNodes = 4;
constexpr std::uint64_t kSeed = 0x7A9B5;

/// Best-effort pin of the calling thread (SNIPPETS.md: benchmarks pin
/// threads to cores).  A refusal — or a single-CPU box — is not an error;
/// the point is stable numbers where the OS allows them.
void pin_to_cpu(unsigned cpu) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  (void)sched_setaffinity(0, sizeof set, &set);
#else
  (void)cpu;
#endif
}

struct WireCounters {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t writes = 0;  ///< socket only (shm has no write syscalls)
  std::uint64_t bytes = 0;
};

struct RunResult {
  obs::LineageReport lineage;
  core::DegradationReport degradation;
  double wall_ms = 0;
  std::optional<WireCounters> wire;  ///< real backends (socket / shm) only
};

RunResult run_once(core::TpFlavor flavor, core::SocketDomain domain,
                   fault::FaultInjector* inj) {
  core::EnvironmentConfig cfg;
  cfg.nodes = kNodes;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.flush_policy = core::FlushPolicyKind::kFof;
  cfg.local_buffer_capacity = 32;  // ~g_records/32 frames hit the transport
  cfg.link_capacity = 8192;
  cfg.tp_flavor = flavor;
  cfg.socket.domain = domain;
  cfg.ism.input = core::InputConfig::kSiso;
  cfg.ism.causal_ordering = true;
  core::IntegratedEnvironment env(cfg);
  env.attach_tool(std::make_shared<core::StatsTool>());
  obs::PipelineObserver obs;
  env.set_observer(&obs);
  fault::RetryPolicy rp;
  rp.base_backoff_ns = 200;
  if (inj) env.set_fault(inj, rp);
  env.start();

  const auto t0 = std::chrono::steady_clock::now();
  trace::EventRecord r;
  for (std::uint64_t i = 0; i < g_records; ++i) {
    r.node = static_cast<std::uint32_t>(i % kNodes);
    r.seq = i / kNodes;
    r.timestamp = i;
    env.record(r);
  }
  env.stop();  // includes the wire drain/quiesce — measured on purpose
  const auto t1 = std::chrono::steady_clock::now();

  RunResult out;
  out.lineage = obs.lineage.report();
  out.degradation = env.degradation();
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (auto* st = env.tp().socket_transport()) {
    WireCounters w;
    for (std::size_t i = 0; i < st->link_count(); ++i) {
      const auto& l = st->link(i);
      w.frames_sent += l.frames_sent();
      w.frames_delivered += l.frames_delivered();
      w.writes += l.writes();
      w.bytes += l.bytes_sent();
    }
    out.wire = w;
  } else if (auto* sh = env.tp().shm_transport()) {
    WireCounters w;
    for (std::size_t i = 0; i < sh->link_count(); ++i) {
      const auto& l = sh->link(i);
      w.frames_sent += l.frames_sent();
      w.frames_delivered += l.frames_delivered();
      w.bytes += l.bytes_sent();
    }
    out.wire = w;
  }
  return out;
}

bool same_ledger(const RunResult& a, const RunResult& b) {
  return a.lineage.admitted == b.lineage.admitted &&
         a.lineage.completed == b.lineage.completed &&
         a.lineage.lost == b.lineage.lost &&
         a.lineage.lost_at == b.lineage.lost_at &&
         a.degradation.lises_dead == b.degradation.lises_dead &&
         a.degradation.records_lost_send == b.degradation.records_lost_send &&
         a.degradation.records_lost_dead == b.degradation.records_lost_dead;
}

/// A plan confined to the in-process kTpSend site: it consults the same
/// per-node lanes in the same order on every backend, so the resulting
/// ledgers must match across pipe, socket, and shm.
fault::FaultPlan tp_only_plan() {
  fault::FaultPlan plan;
  plan.crash(fault::FaultSite::kTpSend, 50, /*node=*/kNodes - 1);
  plan.send_failure(fault::FaultSite::kTpSend, 0.02);
  return plan;
}

bool check_clean(const char* label, const RunResult& r, bool* ok) {
  bool good = true;
  if (!r.lineage.conserved() || r.lineage.in_flight != 0) {
    std::printf("FAIL: %s lineage not conserved\n", label);
    good = false;
  }
  if (r.degradation.degraded() || r.lineage.completed != g_records) {
    std::printf("FAIL: %s fault-free run degraded\n", label);
    good = false;
  }
  if (!good) *ok = false;
  return good;
}

bench::JsonValue backend_json(const RunResult& r) {
  auto o = bench::JsonValue::object();
  o.add("wall_ms", bench::JsonValue::number(r.wall_ms))
      .add("events_per_sec",
           bench::JsonValue::number(
               r.wall_ms > 0 ? 1e3 * static_cast<double>(g_records) / r.wall_ms
                             : 0))
      .add("completed", bench::JsonValue::integer(static_cast<std::int64_t>(
                            r.lineage.completed)));
  if (r.wire) {
    o.add("frames_sent", bench::JsonValue::integer(static_cast<std::int64_t>(
                             r.wire->frames_sent)))
        .add("wire_bytes", bench::JsonValue::integer(
                               static_cast<std::int64_t>(r.wire->bytes)));
    if (r.wire->writes > 0)
      o.add("wire_writes",
            bench::JsonValue::integer(
                static_cast<std::int64_t>(r.wire->writes)))
          .add("coalesce_factor",
               bench::JsonValue::number(
                   static_cast<double>(r.wire->frames_sent) /
                   static_cast<double>(r.wire->writes)));
  }
  return o;
}

// ---- Raw data-plane legs ------------------------------------------------------
//
// Each leg moves the same record stream, frame by frame, through one
// transport primitive with producer and consumer alternating on the pinned
// thread: no pipeline, no pipeline threads, so the number is the data-plane
// cost itself (message allocation + locking for the channel, memcpys +
// release stores for the ring, syscalls + kernel copies for the socket).

double raw_channel_ms(std::uint64_t frames, std::size_t batch_size) {
  // The tp=pipe flavor's *in-process* plane: one heap-allocated Message
  // (DataBatch with its records vector) per frame through a mutex/condvar
  // channel.  Never crosses a kernel boundary, so it is the in-memory
  // reference point, not the wire baseline.
  core::DataLink link(1024);
  const std::vector<trace::EventRecord> payload(batch_size);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < frames; ++i) {
    core::DataBatch b;
    b.source_node = 0;
    b.t_sent_ns = i;
    b.records = payload;  // the per-frame copy every push really pays
    link.push(core::Message(std::move(b)));
    auto msg = link.pop();
    if (!msg) std::abort();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double raw_shm_ms(std::uint64_t frames, std::size_t batch_size) {
  // The shm flavor's data plane: header + records memcpy'd into the ring,
  // memcpy'd back out.  Steady state allocates nothing.
  core::MappedSegment seg(core::ShmRing::segment_bytes(1 << 20));
  core::ShmRing prod = core::ShmRing::create(seg.data(), 1 << 20);
  core::ShmRing cons = core::ShmRing::attach(seg.data());
  const std::vector<trace::EventRecord> payload(batch_size);
  std::vector<trace::EventRecord> sink(batch_size);
  const std::size_t payload_bytes = batch_size * sizeof(trace::EventRecord);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < frames; ++i) {
    core::FrameHeader hdr;
    hdr.source_node = 0;
    hdr.t_sent_ns = i;
    hdr.record_count = batch_size;
    if (!prod.try_write2(&hdr, sizeof hdr, payload.data(), payload_bytes))
      std::abort();
    core::FrameHeader in;
    if (!cons.try_read(&in, sizeof in)) std::abort();
    if (!cons.try_read(sink.data(), payload_bytes)) std::abort();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// One framed wire round trip per iteration over a pair of fds — shared by
/// the pipe(2) and socketpair legs, which differ only in what the kernel
/// object between the fds is.
double raw_fd_ms(int read_fd, int write_fd, std::uint64_t frames,
                 std::size_t batch_size) {
  const std::vector<trace::EventRecord> payload(batch_size);
  std::vector<trace::EventRecord> sink(batch_size);
  const std::size_t payload_bytes = batch_size * sizeof(trace::EventRecord);
  std::vector<char> wire(sizeof(core::FrameHeader) + payload_bytes);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < frames; ++i) {
    core::FrameHeader hdr;
    hdr.source_node = 0;
    hdr.t_sent_ns = i;
    hdr.record_count = batch_size;
    std::memcpy(wire.data(), &hdr, sizeof hdr);
    std::memcpy(wire.data() + sizeof hdr, payload.data(), payload_bytes);
    if (core::io_write_all(write_fd, wire.data(), wire.size()) != wire.size())
      std::abort();
    core::FrameHeader in;
    if (core::io_read_full(read_fd, &in, sizeof in) != sizeof in) std::abort();
    if (core::io_read_full(read_fd, sink.data(), payload_bytes) !=
        payload_bytes)
      std::abort();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double raw_pipe_ms(std::uint64_t frames, std::size_t batch_size) {
  // The pipe *wire* (the PosixPipeLink framing path): one write(2) and two
  // read(2)s per frame through a kernel pipe — the kernel-copy baseline the
  // shm ring's "zero syscalls, zero kernel copies" is measured against.
  int fds[2];
  if (::pipe(fds) != 0) std::abort();
  const double ms = raw_fd_ms(fds[0], fds[1], frames, batch_size);
  ::close(fds[0]);
  ::close(fds[1]);
  return ms;
}

double raw_socket_ms(std::uint64_t frames, std::size_t batch_size) {
  // The socket flavor's data plane: the same frame through an AF_UNIX pair.
  auto [read_fd, write_fd] = core::make_socket_pair(core::SocketDomain::kUnix);
  const double ms = raw_fd_ms(read_fd, write_fd, frames, batch_size);
  ::close(read_fd);
  ::close(write_fd);
  return ms;
}

struct RawRow {
  std::size_t batch_size = 0;
  double pipe_eps = 0, shm_eps = 0, socket_eps = 0, channel_eps = 0;
  double shm_vs_pipe = 0;
};

RawRow run_raw_legs(std::size_t batch_size) {
  const std::uint64_t frames =
      std::max<std::uint64_t>(g_raw_frames / std::max<std::size_t>(batch_size, 1),
                              10'000);
  // Warm-up pass at a tenth of the load: faults in page mappings, kernel
  // buffers, and the branch predictor get paid before the clock starts.
  (void)raw_pipe_ms(frames / 10, batch_size);
  (void)raw_shm_ms(frames / 10, batch_size);
  (void)raw_socket_ms(frames / 10, batch_size);
  (void)raw_channel_ms(frames / 10, batch_size);

  const double pipe = raw_pipe_ms(frames, batch_size);
  const double shm = raw_shm_ms(frames, batch_size);
  const double sock = raw_socket_ms(frames, batch_size);
  const double chan = raw_channel_ms(frames, batch_size);
  const double events = static_cast<double>(frames * batch_size);
  RawRow row;
  row.batch_size = batch_size;
  row.pipe_eps = pipe > 0 ? 1e3 * events / pipe : 0;
  row.shm_eps = shm > 0 ? 1e3 * events / shm : 0;
  row.socket_eps = sock > 0 ? 1e3 * events / sock : 0;
  row.channel_eps = chan > 0 ? 1e3 * events / chan : 0;
  row.shm_vs_pipe = row.pipe_eps > 0 ? row.shm_eps / row.pipe_eps : 0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }
  if (quick) {
    g_records = 8'000;
    g_raw_frames = 40'000;
  }
  pin_to_cpu(0);
  bool ok = true;

  const RunResult pipe =
      run_once(core::TpFlavor::kPipe, core::SocketDomain::kUnix, nullptr);
  const RunResult unx =
      run_once(core::TpFlavor::kSocket, core::SocketDomain::kUnix, nullptr);
  const RunResult tcp = run_once(core::TpFlavor::kSocket,
                                 core::SocketDomain::kTcpLoopback, nullptr);
  const RunResult shm =
      run_once(core::TpFlavor::kShm, core::SocketDomain::kUnix, nullptr);

  std::printf("tp_transport: %llu records, %u nodes, seed %#llx%s\n",
              static_cast<unsigned long long>(g_records), kNodes,
              static_cast<unsigned long long>(kSeed),
              quick ? " (quick)" : "");
  std::printf("  pipe:        %8.1f ms  (%.0f ev/s)\n", pipe.wall_ms,
              1e3 * g_records / pipe.wall_ms);
  std::printf("  socket/unix: %8.1f ms  (%.0f ev/s)\n", unx.wall_ms,
              1e3 * g_records / unx.wall_ms);
  std::printf("  socket/tcp:  %8.1f ms  (%.0f ev/s)\n", tcp.wall_ms,
              1e3 * g_records / tcp.wall_ms);
  std::printf("  shm:         %8.1f ms  (%.0f ev/s)\n", shm.wall_ms,
              1e3 * g_records / shm.wall_ms);

  check_clean("pipe", pipe, &ok);
  check_clean("socket/unix", unx, &ok);
  check_clean("socket/tcp", tcp, &ok);
  check_clean("shm", shm, &ok);
  for (const RunResult* r : {&unx, &tcp, &shm}) {
    if (!r->wire || r->wire->frames_sent != r->wire->frames_delivered) {
      std::printf("FAIL: fault-free run dropped frames on the wire\n");
      ok = false;
    }
    if (r->wire && r->wire->writes > r->wire->frames_sent) {
      std::printf("FAIL: more writes than frames (coalescing inverted)\n");
      ok = false;
    }
  }

  // Raw data-plane comparison (pinned, warmed) and the shm design gate.
  std::printf("\nraw data plane (%llu frame budget, pinned, warmed):\n",
              static_cast<unsigned long long>(g_raw_frames));
  std::vector<RawRow> raw;
  for (const std::size_t bs : {std::size_t{1}, std::size_t{8}, std::size_t{32}})
    raw.push_back(run_raw_legs(bs));
  for (const auto& row : raw)
    std::printf("  batch=%2zu  pipe %9.0f ev/s   socket %9.0f ev/s   "
                "channel %11.0f ev/s   shm %11.0f ev/s   shm/pipe %.1fx\n",
                row.batch_size, row.pipe_eps, row.socket_eps, row.channel_eps,
                row.shm_eps, row.shm_vs_pipe);
  const double shm_speedup = raw.front().shm_vs_pipe;  // batch=1 leg
  if (shm_speedup < 5.0) {
    std::printf("FAIL: raw shm plane only %.1fx the pipe wire (need >= 5x)\n",
                shm_speedup);
    ok = false;
  }

  // The equivalence leg: the same seeded kTpSend-only chaos on all three
  // backends must produce the same ledger, and the real-wire runs must not
  // attribute anything to the wire.
  fault::FaultInjector inj_pipe(tp_only_plan(), kSeed);
  const RunResult chaos_pipe =
      run_once(core::TpFlavor::kPipe, core::SocketDomain::kUnix, &inj_pipe);
  fault::FaultInjector inj_sock(tp_only_plan(), kSeed);
  const RunResult chaos_sock =
      run_once(core::TpFlavor::kSocket, core::SocketDomain::kUnix, &inj_sock);
  fault::FaultInjector inj_shm(tp_only_plan(), kSeed);
  const RunResult chaos_shm =
      run_once(core::TpFlavor::kShm, core::SocketDomain::kUnix, &inj_shm);

  std::printf("\nchaos (kTpSend-only, seed %#llx):\n%s\n",
              static_cast<unsigned long long>(kSeed),
              chaos_shm.degradation.to_string().c_str());
  for (const RunResult* r : {&chaos_pipe, &chaos_sock, &chaos_shm}) {
    if (!r->lineage.conserved() || r->lineage.in_flight != 0) {
      std::printf("FAIL: chaos lineage not conserved\n");
      ok = false;
    }
  }
  if (!chaos_pipe.degradation.degraded() ||
      chaos_pipe.degradation.lises_dead == 0) {
    std::printf("FAIL: chaos plan injected nothing\n");
    ok = false;
  }
  if (!same_ledger(chaos_pipe, chaos_sock) ||
      !same_ledger(chaos_pipe, chaos_shm)) {
    std::printf("FAIL: transport ledgers diverged for the same seed\n");
    ok = false;
  }
  if (chaos_sock.degradation.records_lost_wire != 0 ||
      chaos_shm.degradation.records_lost_wire != 0) {
    std::printf("FAIL: kTpSend-only plan leaked losses onto the wire\n");
    ok = false;
  }

  auto raw_arr = bench::JsonValue::array();
  for (const auto& row : raw) {
    auto o = bench::JsonValue::object();
    o.add("batch_size", bench::JsonValue::integer(
              static_cast<std::int64_t>(row.batch_size)))
        .add("pipe_events_per_sec", bench::JsonValue::number(row.pipe_eps))
        .add("socket_events_per_sec", bench::JsonValue::number(row.socket_eps))
        .add("channel_events_per_sec",
             bench::JsonValue::number(row.channel_eps))
        .add("shm_events_per_sec", bench::JsonValue::number(row.shm_eps))
        .add("shm_vs_pipe_speedup", bench::JsonValue::number(row.shm_vs_pipe));
    raw_arr.push(std::move(o));
  }

  auto root = bench::JsonValue::object();
  root.add("bench", bench::JsonValue::string("tp_transport"))
      .add("quick", bench::JsonValue::boolean(quick))
      .add("records", bench::JsonValue::integer(
               static_cast<std::int64_t>(g_records)))
      .add("nodes", bench::JsonValue::integer(kNodes))
      .add("seed", bench::JsonValue::integer(static_cast<std::int64_t>(kSeed)))
      .add("pipe", backend_json(pipe))
      .add("socket_unix", backend_json(unx))
      .add("socket_tcp", backend_json(tcp))
      .add("shm", backend_json(shm))
      .add("socket_vs_pipe_slowdown",
           bench::JsonValue::number(
               pipe.wall_ms > 0 ? unx.wall_ms / pipe.wall_ms : 0))
      .add("raw_data_plane", std::move(raw_arr))
      .add("raw_shm_vs_pipe_speedup", bench::JsonValue::number(shm_speedup))
      .add("chaos_lost", bench::JsonValue::integer(static_cast<std::int64_t>(
                             chaos_shm.lineage.lost)))
      .add("chaos_ledgers_match",
           bench::JsonValue::boolean(same_ledger(chaos_pipe, chaos_sock) &&
                                     same_ledger(chaos_pipe, chaos_shm)))
      .add("conserved",
           bench::JsonValue::boolean(chaos_pipe.lineage.conserved() &&
                                     chaos_sock.lineage.conserved() &&
                                     chaos_shm.lineage.conserved()));
  bench::write_json_file("BENCH_tp_transport.json", root);
  std::printf("\nwrote BENCH_tp_transport.json\n");

  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
