// Table 3 reproduction: PICL IS management-policy summary.
//
// Prints, for a grid of (l, alpha, P), the analytic Table 3 quantities —
// trace-stopping-time distribution points, expected stopping times (FOF
// exact, FAOF exact + the paper's lower bound), and long-term flushing
// frequencies — side by side with Monte-Carlo simulation estimates, plus the
// validation verdicts ("compared and validated with simulation", §3.1.3).
#include <cstdio>

#include "picl/analytic_model.hpp"
#include "picl/flush_sim.hpp"

using namespace prism;

namespace {

void row(unsigned l, double alpha, unsigned P, unsigned cycles,
         std::uint64_t seed) {
  picl::PiclModelParams p;
  p.buffer_capacity = l;
  p.arrival_rate = alpha;
  p.nodes = P;

  const double fof_exp = picl::fof_expected_stopping_time(p);
  const double faof_exp = picl::faof_expected_stopping_time(p);
  const double faof_lb = picl::faof_stopping_time_lower_bound(p);
  const double fof_freq = picl::fof_flushing_frequency(p);
  const double faof_bound = picl::faof_flushing_frequency_bound(p);
  const double faof_exact = picl::faof_flushing_frequency_exact(p);

  const auto fof_sim = picl::simulate_fof(p, cycles, stats::Rng(seed));
  const auto faof_sim = picl::simulate_faof(p, cycles, stats::Rng(seed + 1));

  std::printf(
      "l=%3u alpha=%-7g P=%u | E[tau] FOF: model %10.4g sim %10.4g | "
      "E[tau] FAOF: model %10.4g sim %10.4g (bound %10.4g)\n",
      l, alpha, P, fof_exp, fof_sim.stopping_time.mean(), faof_exp,
      faof_sim.stopping_time.mean(), faof_lb);
  std::printf(
      "%26s| omega  FOF: model %10.4g sim %10.4g | omega  FAOF: exact "
      "%10.4g sim %10.4g (paper curve %10.4g)\n",
      "", fof_freq, fof_sim.flushing_frequency, faof_exact,
      faof_sim.flushing_frequency, faof_bound);

  const bool ok_fof_tau =
      std::abs(fof_sim.stopping_time.mean() - fof_exp) < 0.05 * fof_exp;
  const bool ok_faof_tau =
      std::abs(faof_sim.stopping_time.mean() - faof_exp) < 0.05 * faof_exp;
  const bool ok_fof_freq =
      std::abs(fof_sim.flushing_frequency - fof_freq) < 0.05 * fof_freq;
  const bool ok_faof_freq =
      std::abs(faof_sim.flushing_frequency - faof_exact) < 0.05 * faof_exact;
  const bool ok_bound = faof_sim.stopping_time.mean() >= faof_lb;
  std::printf(
      "%26s| validation: E[tau]FOF %s  E[tau]FAOF %s  omegaFOF %s  "
      "omegaFAOF %s  bound %s\n\n",
      "", ok_fof_tau ? "OK" : "FAIL", ok_faof_tau ? "OK" : "FAIL",
      ok_fof_freq ? "OK" : "FAIL", ok_faof_freq ? "OK" : "FAIL",
      ok_bound ? "OK" : "FAIL");
}

}  // namespace

int main() {
  std::printf(
      "== Table 3: PICL IS management policies — analytic model vs "
      "simulation ==\n");
  std::printf(
      "   (model: Erlang(l, alpha) fill times at P nodes; flush cost f(l) = "
      "100 + 10 l time units)\n\n");

  // Distribution check: P[tau <= t] at selected quantile points.
  {
    picl::PiclModelParams p;
    p.buffer_capacity = 50;
    p.arrival_rate = 0.007;
    p.nodes = 8;
    std::printf("Stopping-time distribution (l=50, alpha=0.007, P=8):\n");
    std::printf("  %-10s %-18s %-18s\n", "t", "FOF P[tau<=t]",
                "FAOF P[tau>t]");
    for (double t : {4000.0, 6000.0, 7143.0, 8000.0, 10000.0}) {
      std::printf("  %-10g %-18.6f %-18.6f\n", t,
                  picl::fof_stopping_time_cdf(p, t),
                  picl::faof_stopping_time_tail(p, t));
    }
    std::printf("\n");
  }

  for (double alpha : {0.0008, 0.007, 2.0}) {
    for (unsigned l : {10u, 50u, 100u}) {
      row(l, alpha, 8, 3000, 0xC0FFEE + l);
    }
  }

  std::printf(
      "Extension: program-interruption view (l=50, P=8) — the operational "
      "reason developers favour FAOF (S3.1.3):\n");
  for (double alpha : {0.0008, 0.007, 2.0}) {
    picl::PiclModelParams p;
    p.buffer_capacity = 50;
    p.arrival_rate = alpha;
    p.nodes = 8;
    std::printf(
        "  alpha=%-7g interruptions/time: FOF %10.4g  FAOF %10.4g  "
        "(flush-state fraction: FOF %6.4f FAOF %6.4f)\n",
        alpha, picl::fof_interruption_rate(p), picl::faof_interruption_rate(p),
        picl::fof_flush_time_fraction(p), picl::faof_flush_time_fraction(p));
  }
  return 0;
}
