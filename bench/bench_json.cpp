#include "bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace prism::bench {

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::integer(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kInteger;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::null() {
  JsonValue v;
  v.kind_ = Kind::kNull;
  return v;
}

JsonValue& JsonValue::add(const std::string& key, JsonValue v) {
  if (kind_ != Kind::kObject)
    throw std::logic_error("JsonValue::add on non-object");
  members_.emplace_back(key, std::move(v));
  return *this;
}

JsonValue& JsonValue::push(JsonValue v) {
  if (kind_ != Kind::kArray)
    throw std::logic_error("JsonValue::push on non-array");
  elements_.push_back(std::move(v));
  return *this;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {  // JSON has no inf/nan; null is the convention
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  // Prefer the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.*g", prec, d);
    double back = 0;
    std::sscanf(probe, "%lf", &back);
    if (back == d) {
      out += probe;
      return;
    }
  }
  out += buf;
}

}  // namespace

void JsonValue::render(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad_in;
        append_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.render(out, indent + 1);
        if (i + 1 < members_.size()) out += ',';
        out += '\n';
      }
      out += pad + "}";
      return;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        out += pad_in;
        elements_[i].render(out, indent + 1);
        if (i + 1 < elements_.size()) out += ',';
        out += '\n';
      }
      out += pad + "]";
      return;
    }
    case Kind::kNumber: append_number(out, num_); return;
    case Kind::kInteger: out += std::to_string(int_); return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kString: append_escaped(out, str_); return;
    case Kind::kNull: out += "null"; return;
  }
}

std::string JsonValue::dump() const {
  std::string out;
  render(out, 0);
  out += '\n';
  return out;
}

void write_json_file(const std::string& path, const JsonValue& v) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("bench_json: cannot open " + path);
  f << v.dump();
  if (!f) throw std::runtime_error("bench_json: write failed for " + path);
}

}  // namespace prism::bench
