// Minimal JSON emitter for benchmark trajectories.
//
// Benchmarks write flat BENCH_*.json files (an object of scalars, arrays,
// and one level of nested objects) so successive PRs can diff wall times,
// events/sec, and speedups without parsing stdout.  This is a writer only —
// no parsing, no DOM — and it depends on nothing but the standard library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace prism::bench {

/// Builds a JSON value tree and renders it with stable formatting: object
/// keys appear in insertion order and doubles use shortest round-trip form,
/// so byte-wise diffs across runs reflect real changes only.
class JsonValue {
 public:
  static JsonValue object();
  static JsonValue array();
  static JsonValue number(double v);
  static JsonValue integer(std::int64_t v);
  static JsonValue boolean(bool v);
  static JsonValue string(std::string v);
  /// JSON null — for fields that are genuinely undefined (e.g. a per-event
  /// ratio when the workload executed zero events), as opposed to 0.
  static JsonValue null();

  /// Adds (or replaces nothing — keys are not deduplicated; callers add each
  /// key once) a member to an object value.
  JsonValue& add(const std::string& key, JsonValue v);
  /// Appends an element to an array value.
  JsonValue& push(JsonValue v);

  /// Renders with 2-space indentation and a trailing newline at top level.
  std::string dump() const;

 private:
  enum class Kind { kObject, kArray, kNumber, kInteger, kBool, kString, kNull };
  void render(std::string& out, int indent) const;

  Kind kind_ = Kind::kObject;
  double num_ = 0;
  std::int64_t int_ = 0;
  bool bool_ = false;
  std::string str_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> elements_;
};

/// Writes `v.dump()` to `path` atomically enough for a bench harness
/// (truncate + write).  Throws std::runtime_error on I/O failure.
void write_json_file(const std::string& path, const JsonValue& v);

}  // namespace prism::bench
