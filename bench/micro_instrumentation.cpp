// Micro-benchmarks of the live instrumentation system's hot paths
// (google-benchmark): probe event emission, trace-buffer append/drain,
// channel operations, k-way merging, causal reordering, perturbation
// compensation, and the simulation engine's calendar (schedule/step,
// cancel churn, periodic rescheduling).  These quantify the per-event costs
// the models parameterize and the cost of running the models themselves.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/channel.hpp"
#include "core/sensor.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "stats/rng.hpp"
#include "trace/buffer.hpp"
#include "trace/causal.hpp"
#include "trace/merge.hpp"
#include "trace/perturbation.hpp"

using namespace prism;

namespace {

void BM_ProbeEventEnabled(benchmark::State& state) {
  std::uint64_t sink_count = 0;
  core::Probe probe("bench", 1, 0, 0,
                    [&](trace::EventRecord) { ++sink_count; });
  for (auto _ : state) probe.event(42);
  benchmark::DoNotOptimize(sink_count);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProbeEventEnabled);

void BM_ProbeEventDisabled(benchmark::State& state) {
  // The cost of instrumentation that W3 has dynamically removed.
  core::Probe probe("bench", 1, 0, 0, [](trace::EventRecord) {}, false);
  for (auto _ : state) probe.event(42);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProbeEventDisabled);

void BM_TraceBufferAppend(benchmark::State& state) {
  trace::TraceBuffer buf(static_cast<std::size_t>(state.range(0)));
  trace::EventRecord r;
  for (auto _ : state) {
    if (buf.full()) {
      auto drained = buf.drain();
      benchmark::DoNotOptimize(drained);
    }
    buf.append(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceBufferAppend)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ChannelPushPop(benchmark::State& state) {
  core::Channel<trace::EventRecord> ch(1024);
  trace::EventRecord r;
  for (auto _ : state) {
    ch.try_push(r);
    benchmark::DoNotOptimize(ch.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelPushPop);

void BM_KWayMerge(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t per = 20000 / k;
  std::vector<std::vector<trace::EventRecord>> streams(k);
  std::uint64_t ts = 0;
  for (std::size_t i = 0; i < per; ++i)
    for (std::size_t s = 0; s < k; ++s) {
      trace::EventRecord r;
      r.timestamp = ts++;
      r.node = static_cast<std::uint32_t>(s);
      streams[s].push_back(r);
    }
  for (auto _ : state) {
    auto merged = trace::merge_sorted(streams);
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(state.iterations() * per * k);
}
BENCHMARK(BM_KWayMerge)->Arg(2)->Arg(8)->Arg(32);

void BM_CausalReordererInOrder(benchmark::State& state) {
  // Best case: already-ordered stream.
  for (auto _ : state) {
    state.PauseTiming();
    std::uint64_t released = 0;
    trace::CausalReorderer r([&](const trace::EventRecord&) { ++released; });
    std::vector<trace::EventRecord> events(8192);
    for (std::size_t i = 0; i < events.size(); ++i) {
      events[i].node = static_cast<std::uint32_t>(i % 4);
      events[i].seq = i / 4;
    }
    state.ResumeTiming();
    for (const auto& e : events) r.offer(e);
    benchmark::DoNotOptimize(released);
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_CausalReordererInOrder);

void BM_CausalReordererShuffled(benchmark::State& state) {
  // Worst-ish case: fully shuffled arrivals force hold-back and rescans.
  stats::Rng rng(7);
  std::vector<trace::EventRecord> events(4096);
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].node = static_cast<std::uint32_t>(i % 4);
    events[i].seq = i / 4;
  }
  for (std::size_t i = events.size(); i > 1; --i)
    std::swap(events[i - 1], events[rng.next_below(i)]);
  for (auto _ : state) {
    std::uint64_t released = 0;
    trace::CausalReorderer r([&](const trace::EventRecord&) { ++released; });
    for (const auto& e : events) r.offer(e);
    benchmark::DoNotOptimize(released);
  }
  state.SetItemsProcessed(state.iterations() * events.size());
}
BENCHMARK(BM_CausalReordererShuffled);

void BM_PerturbationCompensate(benchmark::State& state) {
  std::vector<trace::EventRecord> clean(8192);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    clean[i].node = static_cast<std::uint32_t>(i % 8);
    clean[i].seq = i / 8;
    clean[i].timestamp = 1000 * (i / 8) + (i % 8);
  }
  trace::PerturbationModel model;
  model.per_event_overhead = 50;
  const auto perturbed = trace::apply_perturbation(clean, model);
  for (auto _ : state) {
    auto copy = perturbed;
    auto rep = trace::compensate(copy, model);
    benchmark::DoNotOptimize(rep);
  }
  state.SetItemsProcessed(state.iterations() * clean.size());
}
BENCHMARK(BM_PerturbationCompensate);

void BM_EngineScheduleStep(benchmark::State& state) {
  // The simulator's core loop: fill the calendar with randomly-timed events,
  // then drain it in time order.
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine e;
    stats::Rng rng(42);
    state.ResumeTiming();
    int sink = 0;
    for (int i = 0; i < n; ++i)
      e.schedule_at(rng.next_double() * 1e6, [&sink] { ++sink; });
    e.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleStep)->Arg(1024)->Arg(16384);

void BM_EngineScheduleCancel(benchmark::State& state) {
  // The timeout pattern: nearly every scheduled event is cancelled before it
  // fires.  The slot-vector calendar makes cancel O(1) and keeps the heap
  // compacted, where the seed implementation grew a cancelled-id set.
  sim::Engine e;
  double t = 1.0;
  for (auto _ : state) {
    auto h = e.schedule_at(t, [] {});
    benchmark::DoNotOptimize(e.cancel(h));
    t += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineScheduleCancel);

void BM_EnginePeriodicReschedule(benchmark::State& state) {
  // Periodic event re-armed via its handle: the callback state is moved, not
  // re-allocated, each period.
  const auto ticks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine e;
    int count = 0;
    sim::EventHandle h;
    h = e.schedule_at(1.0, [&] {
      if (++count < ticks) h = e.reschedule(h, e.now() + 1.0);
    });
    state.ResumeTiming();
    e.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * ticks);
}
BENCHMARK(BM_EnginePeriodicReschedule)->Arg(16384);

void BM_EnginePeriodicRespawn(benchmark::State& state) {
  // The same periodic pattern written the pre-reschedule way (a fresh
  // std::function every period), for comparison against the fast path.
  const auto ticks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine e;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < ticks) e.schedule_after(1.0, tick);
    };
    e.schedule_at(1.0, tick);
    state.ResumeTiming();
    e.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * ticks);
}
BENCHMARK(BM_EnginePeriodicRespawn)->Arg(16384);

// ---- obs_overhead: the self-telemetry layer measuring itself -------------
//
// BM_EngineScheduleStep above doubles as the cross-build anchor for the
// kill switch: built with -DPRISM_OBS=OFF its hook macros compile away, and
// the ISSUE's acceptance bar is that the OFF build stays within 2% of a
// build that never had probes.

void BM_ObsCounterAdd(benchmark::State& state) {
  // One sharded counter hammered from N threads: with per-thread shards the
  // multithreaded rate should scale, not collapse onto one cache line.
  static obs::Counter counter;
  for (auto _ : state) counter.inc();
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterAdd)->Threads(1)->Threads(4);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Histogram hist(obs::Histogram::latency_bounds_ns());
  double v = 1.0;
  for (auto _ : state) {
    hist.record(v);
    v = v < 1e9 ? v * 1.1 : 1.0;  // walk the buckets
  }
  benchmark::DoNotOptimize(hist.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ObsMacroCountHit(benchmark::State& state) {
  // The macro path the engine and pipeline hooks use: function-local static
  // handle + one relaxed fetch_add.  In a -DPRISM_OBS=OFF build this loop is
  // empty — compare against BM_ObsBaselineLoop there.
  for (auto _ : state) {
    PRISM_OBS_COUNT("bench.obs.macro_hit");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsMacroCountHit);

void BM_ObsBaselineLoop(benchmark::State& state) {
  // Empty-loop baseline: what BM_ObsMacroCountHit must cost when the layer
  // is compiled out.
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsBaselineLoop);

void BM_ObsSpanDisabled(benchmark::State& state) {
  // Tracer off (the default): a SpanScope is one relaxed load and a branch.
  obs::Tracer::instance().set_enabled(false);
  for (auto _ : state) {
    obs::SpanScope span("bench.span", "bench");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  // Tracer on: two clock reads plus a ring push under a per-thread mutex.
  auto& tracer = obs::Tracer::instance();
  tracer.set_enabled(true);
  for (auto _ : state) {
    obs::SpanScope span("bench.span", "bench");
    benchmark::DoNotOptimize(&span);
  }
  tracer.set_enabled(false);
  tracer.clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanEnabled);

}  // namespace

BENCHMARK_MAIN();
