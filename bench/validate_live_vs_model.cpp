// Live-vs-model validation bench ("benchmarking of ISs to validate that
// requirements are met", §5): the real thread-based daemon IS must show the
// same qualitative trend the ROCC model predicts for Fig. 9(b) — the
// daemon's share of the machine falls as application threads multiply, and
// application-side blocking appears when pipes back up.
#include <cstdio>
#include <vector>

#include "paradyn/live.hpp"
#include "paradyn/rocc_model.hpp"

using namespace prism;

int main() {
  std::printf("== Live daemon IS vs ROCC model: daemon share vs app count ==\n");

  std::printf("model (ROCC, r=10):\n");
  paradyn::ParadynRoccParams mp;
  mp.horizon_ms = 20'000;
  const auto model_pts =
      paradyn::sweep_app_processes(mp, {1, 4, 16}, 10, 0xAB);
  for (const auto& pt : model_pts)
    std::printf("  n=%2.0f  utilizationPd %.3f%%\n", pt.x,
                pt.utilization_pct.mean);
  const bool model_decreasing =
      model_pts.front().utilization_pct.mean >
      model_pts.back().utilization_pct.mean;

  std::printf("live (thread daemon, 150 ms runs):\n");
  std::vector<double> live_util;
  for (unsigned n : {1u, 4u, 16u}) {
    paradyn::LiveDaemonParams lp;
    lp.app_threads = n;
    lp.duration_ms = 150;
    lp.samples_per_sec_per_thread = 2000.0 / n;  // fixed total sample load
    const auto rep = paradyn::run_live_daemon_experiment(lp);
    live_util.push_back(rep.daemon_utilization_pct);
    std::printf("  n=%2u  daemon busy %.3f%% of wall  events %llu  "
                "app-block %.2f ms\n",
                n, rep.daemon_utilization_pct,
                static_cast<unsigned long long>(rep.events_recorded),
                static_cast<double>(rep.app_block_ns) / 1e6);
  }

  // On a time-shared single core the live trend is noisy; assert only the
  // model's direction and report the live numbers for eyeballing.
  std::printf("\nmodel trend (decreasing): %s\n",
              model_decreasing ? "OK" : "VIOLATION");
  return model_decreasing ? 0 : 1;
}
