// Ablation bench: design choices called out in DESIGN.md, measured on the
// *live* IS (not the models) under a common thread workload.
//
//   A. LIS style: buffered vs per-event forwarding vs daemon sampling —
//      what local buffering buys in forwarded-batch count.
//   B. Flush policy for the buffered LIS: FOF vs FAOF vs adaptive.
//   C. ISM input configuration: SISO vs MISO, live latency.
//   D. Causal ordering on/off: the processing cost of ordered delivery.
//
// Each row prints events, batches shipped, ISM processing latency, and the
// application-visible cost (wall time of the identical workload).
#include <chrono>
#include <cstdio>
#include <memory>

#include "core/clock.hpp"
#include "core/environment.hpp"
#include "core/throttle.hpp"
#include "picl/flush_sim.hpp"
#include "sim/replication.hpp"
#include "sim/thread_pool.hpp"
#include "vista/testbed.hpp"
#include "workload/thread_apps.hpp"

using namespace prism;

namespace {

struct RowResult {
  std::uint64_t events = 0;
  std::uint64_t batches = 0;
  double latency_us = 0;
  double wall_ms = 0;
};

RowResult run_config(core::EnvironmentConfig cfg, unsigned rounds,
                     std::uint64_t work) {
  core::IntegratedEnvironment env(cfg);
  auto stats_tool = std::make_shared<core::StatsTool>();
  env.attach_tool(stats_tool);
  env.start();
  const auto rep = workload::run_ring_threads(env, rounds, work);
  const auto lis = env.total_lis_stats();
  env.stop();
  RowResult r;
  r.events = rep.events_recorded;
  r.batches = lis.flushes;
  r.latency_us = env.ism().stats().processing_latency_ns.mean() / 1e3;
  r.wall_ms = static_cast<double>(rep.wall_ns) / 1e6;
  return r;
}

void print_row(const char* label, const RowResult& r) {
  std::printf("  %-28s events %7llu  batches %6llu  ism-latency %9.1f us  "
              "wall %8.2f ms\n",
              label, static_cast<unsigned long long>(r.events),
              static_cast<unsigned long long>(r.batches), r.latency_us,
              r.wall_ms);
}

core::EnvironmentConfig base_config() {
  core::EnvironmentConfig cfg;
  cfg.nodes = 4;
  cfg.local_buffer_capacity = 64;
  cfg.ism.causal_ordering = false;
  return cfg;
}

}  // namespace

int main() {
  const unsigned rounds = 200;
  const std::uint64_t work = 5'000;

  std::printf("== A. LIS style (identical ring workload) ==\n");
  {
    auto cfg = base_config();
    cfg.lis_style = core::LisStyle::kBuffered;
    print_row("buffered (FOF, cap 64)", run_config(cfg, rounds, work));
    cfg.lis_style = core::LisStyle::kForwarding;
    print_row("forwarding (per event)", run_config(cfg, rounds, work));
    cfg.lis_style = core::LisStyle::kDaemon;
    cfg.sampling_period_ns = 1'000'000;
    print_row("daemon (1 ms sampling)", run_config(cfg, rounds, work));
  }

  std::printf("\n== B. Flush policy (buffered LIS) ==\n");
  {
    auto cfg = base_config();
    cfg.lis_style = core::LisStyle::kBuffered;
    cfg.flush_policy = core::FlushPolicyKind::kFof;
    print_row("FOF", run_config(cfg, rounds, work));
    cfg.flush_policy = core::FlushPolicyKind::kFaof;
    print_row("FAOF", run_config(cfg, rounds, work));
    cfg.flush_policy = core::FlushPolicyKind::kThreshold;
    cfg.flush_threshold_fraction = 0.5;
    print_row("threshold 0.5", run_config(cfg, rounds, work));
    cfg.flush_policy = core::FlushPolicyKind::kAdaptive;
    cfg.adaptive_target_flush_ns = 5'000'000;
    print_row("adaptive (5 ms target)", run_config(cfg, rounds, work));
  }

  std::printf("\n== C. ISM input configuration (live P'RISM testbed) ==\n");
  {
    vista::TestbedParams p;
    p.nodes = 4;
    p.rounds = 200;
    p.work_iters_per_hop = work;
    p.input = core::InputConfig::kSiso;
    const auto siso = vista::run_prism_testbed(p);
    p.input = core::InputConfig::kMiso;
    const auto miso = vista::run_prism_testbed(p);
    std::printf("  %-28s latency %9.1f us  dispatch %9.1f us  hold-back %.4f\n",
                "SISO", siso.mean_processing_latency_us,
                siso.mean_dispatch_latency_us, siso.hold_back_ratio);
    std::printf("  %-28s latency %9.1f us  dispatch %9.1f us  hold-back %.4f\n",
                "MISO", miso.mean_processing_latency_us,
                miso.mean_dispatch_latency_us, miso.hold_back_ratio);
  }

  std::printf("\n== D. Causal ordering cost (forwarding LIS) ==\n");
  {
    auto cfg = base_config();
    cfg.lis_style = core::LisStyle::kForwarding;
    cfg.ism.causal_ordering = false;
    print_row("ordering off", run_config(cfg, rounds, work));
    cfg.ism.causal_ordering = true;
    print_row("ordering on", run_config(cfg, rounds, work));
  }

  std::printf("\n== E. Adaptive tracing levels (Pablo-style throttle, "
              "100k-event burst) ==\n");
  {
    for (auto lvl : {core::TraceLevel::kFull, core::TraceLevel::kSampled,
                     core::TraceLevel::kCounting, core::TraceLevel::kOff}) {
      std::uint64_t delivered = 0;
      core::ThrottleConfig tcfg;
      core::TracingThrottle throttle(
          tcfg, [&delivered](trace::EventRecord) { ++delivered; });
      throttle.pin(lvl);
      trace::EventRecord r;
      const std::uint64_t t0 = core::now_ns();
      for (std::uint64_t i = 0; i < 100'000; ++i) {
        r.timestamp = core::now_ns();
        r.seq = i;
        throttle.offer(r);
      }
      const double ms = static_cast<double>(core::now_ns() - t0) / 1e6;
      std::printf("  level %-10s delivered %6llu of 100000 in %7.2f ms "
                  "(%.0f ns/event)\n",
                  std::string(core::to_string(lvl)).c_str(),
                  static_cast<unsigned long long>(delivered), ms,
                  ms * 1e6 / 100'000);
    }
  }

  std::printf("\n== F. PICL flush policies under bursty (non-Poisson) "
              "arrivals ==\n");
  {
    picl::PiclModelParams p;
    p.buffer_capacity = 40;
    p.nodes = 8;
    p.arrival_rate = 1.0 / 37.6;  // matches the hyperexponential mean below
    prism::stats::Exponential smooth(1.0 / 37.6);
    prism::stats::Hyperexponential bursty(0.4, 1.0 / 4.0, 1.0 / 60.0);
    for (const auto* label : {"smooth", "bursty"}) {
      const bool is_bursty = label[0] == 'b';
      const prism::stats::Distribution& gap =
          is_bursty ? static_cast<const prism::stats::Distribution&>(bursty)
                    : smooth;
      const auto fof =
          picl::simulate_fof_renewal(p, 1500, gap, prism::stats::Rng(77));
      const auto faof =
          picl::simulate_faof_renewal(p, 1500, gap, prism::stats::Rng(77));
      std::printf("  %-7s arrivals: interruptions/time FOF %.5f vs FAOF "
                  "%.5f (FAOF wins %.1fx); freq/arrival FOF %.5f FAOF %.5f\n",
                  label, fof.interruption_rate, faof.interruption_rate,
                  fof.interruption_rate / faof.interruption_rate,
                  fof.flushing_frequency, faof.flushing_frequency);
    }
    std::printf("  (the FAOF advantage is not an artifact of the Poisson "
                "assumption)\n");
  }

  std::printf("\n== G. Experiment execution: serial vs pooled replications "
              "(PICL FOF/FAOF, r=16) ==\n");
  {
    picl::PiclModelParams p;
    p.buffer_capacity = 40;
    p.nodes = 8;
    p.arrival_rate = 0.007;
    const auto model = [&p](prism::stats::Rng& rng) -> sim::Responses {
      const auto fof = picl::simulate_fof(p, 600, rng.split());
      const auto faof = picl::simulate_faof(p, 400, rng.split());
      return {{"fof", fof.flushing_frequency},
              {"faof", faof.flushing_frequency}};
    };
    const auto timed = [&model](unsigned threads, double* freq_sum) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto rr = sim::replicate(16, 0xAB1A7E, 1, model,
                                     sim::ReplicateOptions{threads});
      const auto t1 = std::chrono::steady_clock::now();
      *freq_sum = rr.summary("fof").mean() + rr.summary("faof").mean();
      return std::chrono::duration<double, std::milli>(t1 - t0).count();
    };
    double serial_sum = 0, pooled_sum = 0;
    const double serial_ms = timed(1, &serial_sum);
    const unsigned workers = sim::ThreadPool::default_threads();
    const double pooled_ms = timed(workers, &pooled_sum);
    std::printf("  serial (1 thread)   %8.2f ms\n", serial_ms);
    std::printf("  pooled (%u threads)  %8.2f ms  speedup %.2fx  "
                "bit-identical %s\n",
                workers, pooled_ms,
                pooled_ms > 0 ? serial_ms / pooled_ms : 1.0,
                pooled_sum == serial_sum ? "yes" : "NO");
  }
  return 0;
}
