// Figure 11 reproduction: "Comparison between the SISO and MISO ISMs in
// terms of average data processing latencies and input buffer lengths" over
// mean inter-arrival times 10..100 ms, with 90% CIs from replications
// (the paper's 2^k r factorial design is printed afterwards).
//
// Published shape: at short inter-arrival times (high rates) SISO shows
// lower latency and shorter buffers; at long inter-arrival times the
// configurations become statistically indistinguishable (wide, overlapping
// CIs); buffer length falls as inter-arrival time grows; the factorial
// analysis names the inter-arrival rate the dominant factor.
#include <cstdio>
#include <vector>

#include "obs/pipeline.hpp"
#include "sim/replication.hpp"
#include "sim/thread_pool.hpp"
#include "vista/analytic.hpp"
#include "vista/ism_model.hpp"

using namespace prism;

int main() {
  vista::VistaIsmParams base;  // defaults documented in the header
  base.horizon_ms = 30'000;
  const unsigned r = 30;
  const std::uint64_t seed = 0xF16;
  // Replications run on the worker pool (bit-identical to serial).
  const sim::ReplicateOptions par{};

  std::printf("== Figure 11: SISO vs MISO ISM (P = %u processes, r = %u, "
              "90%% CI, %u worker threads) ==\n",
              base.processes, r, sim::ThreadPool::default_threads());
  std::printf(
      "interarrival_ms,lat_siso,lat_siso_ci,lat_miso,lat_miso_ci,"
      "buf_siso,buf_siso_ci,buf_miso,buf_miso_ci\n");
  const std::vector<double> ias{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  const auto pts = vista::sweep_interarrival(base, ias, r, seed, par);
  for (const auto& pt : pts) {
    std::printf("%g,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n",
                pt.mean_interarrival_ms, pt.latency_siso.mean,
                pt.latency_siso.half_width, pt.latency_miso.mean,
                pt.latency_miso.half_width, pt.buffer_siso.mean,
                pt.buffer_siso.half_width, pt.buffer_miso.mean,
                pt.buffer_miso.half_width);
  }

  const auto& hi = pts.front();   // shortest inter-arrival (highest rate)
  const auto& lo = pts.back();    // longest inter-arrival (lowest rate)
  const bool siso_wins_hi = hi.latency_siso.mean < hi.latency_miso.mean &&
                            hi.buffer_siso.mean < hi.buffer_miso.mean;
  const bool indistinct_lo = lo.latency_siso.overlaps(lo.latency_miso);
  const bool buffers_fall = lo.buffer_siso.mean < hi.buffer_siso.mean &&
                            lo.buffer_miso.mean < hi.buffer_miso.mean;
  const bool variance_grows =
      lo.latency_siso.half_width / lo.latency_siso.mean >
      hi.latency_siso.half_width / hi.latency_siso.mean;
  std::printf("\nshape: SISO better at high rate %s; indistinguishable at "
              "low rate %s; buffers fall with inter-arrival %s; relative "
              "latency noise grows with inter-arrival %s\n\n",
              siso_wins_hi ? "OK" : "VIOLATION",
              indistinct_lo ? "OK" : "VIOLATION",
              buffers_fall ? "OK" : "VIOLATION",
              variance_grows ? "OK" : "VIOLATION");

  std::printf("== 2^k r factorial analysis (k=2: config SISO/MISO, "
              "inter-arrival 10/100 ms; r=%u) ==\n", r);
  for (const char* response : {"latency", "buffer_length"}) {
    const auto res =
        vista::vista_factorial(base, 10.0, 100.0, r, response, seed + 1);
    std::printf("response: %s (dominant effect: %s)\n%s\n", response,
                res.effect_names[res.dominant_effect()].c_str(),
                res.to_string().c_str());
  }

  std::printf("== analytic cross-check (M/G/1 + hold-back renewal "
              "approximation; see vista/analytic.hpp) ==\n");
  std::printf("interarrival_ms,config,analytic_latency,analytic_buffer,"
              "rho\n");
  for (double ia : {10.0, 50.0, 100.0}) {
    for (int miso = 0; miso < 2; ++miso) {
      vista::VistaIsmParams p = base;
      p.mean_interarrival_ms = ia;
      p.miso = miso == 1;
      const auto a = vista::predict_vista_ism(p);
      std::printf("%g,%s,%.2f,%.2f,%.2f\n", ia, miso ? "MISO" : "SISO",
                  a.mean_latency_ms, a.mean_input_buffer,
                  a.processor_utilization);
    }
  }

  // Model-time observability (DESIGN.md §9): lineage-trace one high-rate
  // SISO run — every record's generation -> forward -> ISM arrival ->
  // release -> tool consumption on the simulated clock, with the per-stage
  // deltas telescoping exactly to the end-to-end monitoring latency.
  std::printf("== model-time lineage: record pipeline (SISO, "
              "inter-arrival 10 ms) ==\n");
  {
    vista::VistaIsmParams p = base;
    p.mean_interarrival_ms = 10;
    obs::PipelineObserver observer(/*lineage_stride=*/1);
    observer.timeline_interval = 50.0;  // ms between queue probes
    stats::Rng rng(stats::Rng::hash_seed(seed, 0x0B5, 0));
    (void)vista::run_vista_ism(p, rng, &observer);
    const obs::LineageReport rep = observer.lineage.report();
    std::printf("%s", rep.to_string().c_str());
    std::printf("lineage conserved: %s\n", rep.conserved() ? "yes" : "NO");
  }

  // Cross-replication lineage: replicate_observed() merges per-rep tracers
  // in index order, so the summed breakdown is bit-identical for any worker
  // count.
  std::printf("== cross-replication lineage summary (r = 10, SISO vs MISO, "
              "inter-arrival 10 ms) ==\n");
  std::printf("config,records,mean_e2e_ms,mean_ism_wait_ms,"
              "mean_tool_wait_ms\n");
  for (int cfg = 0; cfg < 2; ++cfg) {
    vista::VistaIsmParams p = base;
    p.mean_interarrival_ms = 10;
    p.miso = cfg == 1;
    const auto ores = sim::replicate_observed(
        10, seed, /*scenario_tag=*/0x11,
        [&p](stats::Rng& rng, obs::PipelineObserver& o) -> sim::Responses {
          const auto m = vista::run_vista_ism(p, rng, &o);
          return {{"latency", m.mean_processing_latency_ms}};
        },
        par, /*lineage_stride=*/4);
    std::printf("%s,%llu,%.2f,%.2f,%.2f\n", cfg ? "MISO" : "SISO",
                static_cast<unsigned long long>(ores.lineage.completed),
                ores.lineage.end_to_end.mean(),
                ores.lineage.stage[3].mean(),   // kIsmInput -> kIsmProcessed
                ores.lineage.stage[4].mean());  // kIsmProcessed -> dispatch
  }

  const bool ok = siso_wins_hi && indistinct_lo && buffers_fall;
  std::printf("\n== Figure 11 overall: %s ==\n",
              ok ? "REPRODUCED" : "VIOLATION");
  return ok ? 0 : 1;
}
