// Extension bench: the full Figure 7 cluster model — P daemons forwarding
// over a shared network into the centralized main-Paradyn-process ISM.
// Answers the scalability what-if the paper's single-node ROCC runs leave
// open: where does centralization become the bottleneck?
#include <cstdio>
#include <vector>

#include "paradyn/cluster_model.hpp"

using namespace prism;

int main() {
  paradyn::ClusterModelParams base;
  base.horizon_ms = 60'000;
  base.ism_per_sample_ms = 0.4;  // saturation within the swept range

  std::printf("== Fig. 7 cluster model: centralized ISM scalability ==\n");
  std::printf("   (%u app processes/node, %.0f ms sampling period, ISM "
              "%.2f ms/sample, r = 10, 90%% CI)\n",
              base.app_processes_per_node, base.sampling_period_ms,
              base.ism_per_sample_ms);
  std::printf("nodes,latency_ms,latency_ci,ism_util,net_util\n");
  const std::vector<unsigned> counts{2, 4, 8, 16, 24, 32, 48};
  const auto pts = paradyn::sweep_cluster_size(base, counts, 10, 0x715);
  double knee = 0;
  for (const auto& pt : pts) {
    std::printf("%u,%.2f,%.2f,%.3f,%.3f\n", pt.nodes, pt.latency.mean,
                pt.latency.half_width, pt.ism_utilization.mean,
                pt.network_utilization.mean);
    if (knee == 0 && pt.ism_utilization.mean > 0.9) knee = pt.nodes;
  }
  if (knee > 0) {
    std::printf("\ncentralized ISM saturates around %g nodes at these "
                "parameters — the scaling argument for hierarchical or "
                "distributed ISMs (TAM's spanning tree, §4).\n",
                knee);
  } else {
    std::printf("\nISM below saturation across the sweep.\n");
  }

  std::printf("\n== hierarchical aggregation (TAM-style spanning tree) at "
              "48 nodes ==\n");
  std::printf("   (per-batch-overhead-dominated ISM: 2.0 ms/batch, "
              "0.02 ms/sample — the regime aggregation targets)\n");
  std::printf("config,latency_ms,ism_util,net_util,stable\n");
  for (unsigned fanout : {0u, 4u, 8u}) {
    paradyn::ClusterModelParams p = base;
    p.nodes = 48;
    p.ism_per_batch_ms = 2.0;
    p.ism_per_sample_ms = 0.02;
    p.aggregator_fanout = fanout;
    const auto m = paradyn::run_cluster_model(p, stats::Rng(0x7A11));
    std::printf("%s,%.2f,%.3f,%.3f,%s\n",
                fanout == 0 ? "flat" :
                (fanout == 4 ? "tree fanout 4" : "tree fanout 8"),
                m.mean_sample_latency_ms, m.ism_utilization,
                m.network_utilization, m.stable ? "yes" : "NO");
  }
  std::printf("(aggregation amortizes the ISM's per-batch overhead and "
              "unloads the shared network; it cannot help when the ISM is "
              "per-sample bound, as in the sweep above)\n");
  return 0;
}
