// Federation scaling benchmark for the sharded IS tier (DESIGN.md §16).
//
// Two tiers of measurement from one binary:
//
//  1. Scaling legs: the same seeded workload — 200 buffered LIS nodes
//     recording round-robin — through the two-level federation at 1, 2, 4
//     and 8 aggregator shards, comparing end-to-end wall time and
//     records/sec (LIS -> cluster TP -> aggregator -> root TP -> root ISM
//     -> tool).  The curve is the §3.2.2 story quantified: how much the
//     pre-reducing aggregator tier relieves the logically centralized ISM.
//     On a small box the legs converge to the root drain rate; the gated
//     question is "does the federated pipeline keep up", per shard count.
//
//  2. Chaos legs: one seeded fault plan — LIS-level send failures, uplink
//     send failures with a bounded retry budget, and an aggregator crash —
//     run over pipe, AF_UNIX sockets and shared-memory rings.  The four
//     resulting ledgers (pipe twice for same-transport determinism, then
//     socket and shm) must be bit-identical: fault lanes key on the source
//     node / shard, uplink batches are fixed-size, and the tombstone drain
//     keeps post-crash accounting schedule-independent, so nothing in the
//     ledger may depend on which transport carried the bytes.
//
// Every leg asserts the federation-wide conservation identity
//   recorded == dispatched + in_flight + lost   (each loss at exactly one
// site, at every level).  Writes BENCH_ism_sharding.json — including the
// per-shard degradation subtree from the chaos run — and exits nonzero on
// any conservation, delivery or determinism failure, so the bench doubles
// as a soak gate.  --quick shrinks the workload for CI perf-gate runs
// (recorded in the JSON so baselines compare like-for-like).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/federation.hpp"
#include "core/tool.hpp"
#include "fault/fault.hpp"

using namespace prism;

namespace {

bool g_quick = false;
std::uint64_t g_scale_records_per_node = 1'500;  // --quick: 300
std::uint64_t g_chaos_records_per_node = 400;    // --quick: 150

constexpr std::uint32_t kScaleNodes = 200;
constexpr std::uint32_t kChaosNodes = 48;
constexpr std::uint32_t kChaosShards = 4;
constexpr std::uint64_t kChaosSeed = 0x51AB3;

int g_failures = 0;

void fail(const std::string& what) {
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  ++g_failures;
}

/// The federation-wide exactness check (the tests' invariant, summarized to
/// one predicate): every accepted record is dispatched, parked at a named
/// stage, or lost at exactly one site — and the two level boundaries agree.
bool conserved(core::FederatedEnvironment& env, std::string& why) {
  const core::LisStats lis = env.total_lis_stats();
  const std::uint64_t wire = env.degradation().records_lost_wire;
  std::uint64_t agg_received = 0, agg_forwarded = 0, agg_sunk = 0;
  for (std::uint32_t s = 0; s < env.shards(); ++s) {
    const core::AggregatorStats as = env.aggregator_stats(s);
    if (!as.conserved()) {
      why = "aggregator shard " + std::to_string(s) + " leaks";
      return false;
    }
    agg_received += as.records_received;
    agg_forwarded += as.records_forwarded;
    agg_sunk += as.lost_uplink + as.lost_dead + as.still_held + as.staged;
  }
  const core::IsmStats root = env.root_ism().stats();
  if (!root.conserved()) {
    why = "root ISM leaks";
    return false;
  }
  if (wire == 0 && lis.records_forwarded != agg_received) {
    why = "cluster-level delivery leak";
    return false;
  }
  if (wire == 0 && agg_forwarded != root.records_received) {
    why = "federation boundary double-count";
    return false;
  }
  const std::uint64_t accounted = root.records_dispatched + root.still_held +
                                  root.in_output + lis.buffered +
                                  lis.lost_send + lis.lost_dead + agg_sunk +
                                  wire;
  if (lis.recorded != accounted) {
    why = "pipeline identity: recorded=" + std::to_string(lis.recorded) +
          " accounted=" + std::to_string(accounted);
    return false;
  }
  return true;
}

// ------------------------------------------------------------- scaling legs

struct ScalingLeg {
  std::uint32_t shards = 0;
  double wall_ms = 0;
  double records_per_sec = 0;
  std::uint64_t uplink_batches = 0;
  std::uint64_t root_held_back = 0;
};

ScalingLeg run_scaling_leg(std::uint32_t shards) {
  core::EnvironmentConfig cfg;
  cfg.nodes = kScaleNodes;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.flush_policy = core::FlushPolicyKind::kFof;
  cfg.local_buffer_capacity = 64;
  cfg.link_capacity = 8192;
  cfg.ism.input = core::InputConfig::kMiso;
  cfg.federation.shards = shards;
  core::FederatedEnvironment env(cfg);
  auto tool = std::make_shared<core::StatsTool>();
  env.attach_tool(tool);
  env.start();

  const std::uint64_t total = g_scale_records_per_node * kScaleNodes;
  const auto t0 = std::chrono::steady_clock::now();
  trace::EventRecord r;
  for (std::uint64_t i = 0; i < g_scale_records_per_node; ++i) {
    r.seq = i;
    for (std::uint32_t n = 0; n < kScaleNodes; ++n) {
      r.node = n;
      r.timestamp = i * kScaleNodes + n;
      env.record(r);
    }
  }
  env.stop();  // includes aggregator + root drain — measured on purpose
  const auto t1 = std::chrono::steady_clock::now();

  ScalingLeg leg;
  leg.shards = shards;
  leg.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  leg.records_per_sec = total / (leg.wall_ms / 1e3);
  for (std::uint32_t s = 0; s < shards; ++s)
    leg.uplink_batches += env.aggregator_stats(s).batches_forwarded;
  leg.root_held_back = env.root_ism().stats().held_back;

  if (tool->total() != total)
    fail("scaling shards=" + std::to_string(shards) + ": dispatched " +
         std::to_string(tool->total()) + " of " + std::to_string(total));
  std::string why;
  if (!conserved(env, why))
    fail("scaling shards=" + std::to_string(shards) + ": " + why);
  if (env.degradation().degraded())
    fail("scaling shards=" + std::to_string(shards) +
         ": degraded on a fault-free run");
  return leg;
}

// --------------------------------------------------------------- chaos legs

struct ChaosRun {
  std::string ledger;  ///< the full bit-comparable accounting string
  std::vector<core::DegradationReport> per_shard;
  core::DegradationReport total;
};

ChaosRun run_chaos(core::TpFlavor flavor) {
  core::EnvironmentConfig cfg;
  cfg.nodes = kChaosNodes;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.flush_policy = core::FlushPolicyKind::kFof;
  cfg.local_buffer_capacity = 32;
  cfg.link_capacity = 4096;
  cfg.tp_flavor = flavor;
  cfg.shm.ring_capacity = 1 << 16;
  cfg.ism.input = core::InputConfig::kMiso;
  cfg.federation.shards = kChaosShards;
  cfg.federation.assign = core::ShardAssign::kModulo;
  cfg.federation.agg_batch_records = 64;

  fault::FaultPlan plan;
  plan.send_failure(fault::FaultSite::kTpSend, 0.10);
  plan.send_failure(fault::FaultSite::kAggForward, 0.20);
  plan.crash(fault::FaultSite::kAggForward, /*at_op=*/5, /*node=*/2);
  fault::FaultInjector inj(plan, kChaosSeed);
  fault::RetryPolicy retry;
  retry.max_attempts = 2;
  retry.base_backoff_ns = 200;

  core::FederatedEnvironment env(cfg);
  env.attach_tool(std::make_shared<core::StatsTool>());
  env.set_fault(&inj, retry);
  env.start();
  trace::EventRecord r;
  for (std::uint64_t i = 0; i < g_chaos_records_per_node; ++i) {
    r.seq = i;
    for (std::uint32_t n = 0; n < kChaosNodes; ++n) {
      r.node = n;
      r.timestamp = i * kChaosNodes + n;
      env.record(r);
    }
  }
  env.stop();

  std::string why;
  if (!conserved(env, why))
    fail("chaos " + std::string(core::to_string(flavor)) + ": " + why);

  // The comparable ledger is the *conservation* ledger: admissions, level
  // boundaries and every loss site.  The root's dispatched/still_held split
  // is deliberately excluded — after an uplink batch is destroyed, which
  // streams gap at the root depends on the pre-reducer's arrival
  // interleaving (uplink batches mix member nodes), so the count of records
  // stranded behind the gap is schedule-dependent even though every loss
  // counter and boundary total is not (DESIGN.md §16).
  ChaosRun run;
  std::ostringstream led;
  const core::LisStats lis = env.total_lis_stats();
  led << "lis recorded=" << lis.recorded
      << " forwarded=" << lis.records_forwarded
      << " lost_send=" << lis.lost_send << " lost_dead=" << lis.lost_dead
      << '\n';
  for (std::uint32_t s = 0; s < env.shards(); ++s) {
    const core::AggregatorStats as = env.aggregator_stats(s);
    led << "shard " << s << " received=" << as.records_received
        << " forwarded=" << as.records_forwarded
        << " lost_uplink=" << as.lost_uplink << " lost_dead=" << as.lost_dead
        << " dead=" << (env.aggregator(s).dead() ? 1 : 0) << '\n';
    run.per_shard.push_back(env.shard_degradation(s));
  }
  const core::DegradationReport d = env.degradation();
  led << "root received=" << env.root_ism().stats().records_received << '\n';
  led << "losses send=" << d.records_lost_send
      << " dead=" << d.records_lost_dead << " wire=" << d.records_lost_wire
      << " uplink=" << d.records_lost_uplink << " agg=" << d.records_lost_agg
      << " lises_dead=" << d.lises_dead << " shards_dead=" << d.shards_dead
      << '\n';
  run.ledger = led.str();
  run.total = d;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) g_quick = true;
  }
  if (g_quick) {
    g_scale_records_per_node = 300;
    g_chaos_records_per_node = 150;
  }

  auto json = bench::JsonValue::object();
  json.add("bench", bench::JsonValue::string("ism_sharding"));
  json.add("quick", bench::JsonValue::boolean(g_quick));
  json.add("hardware_concurrency",
           bench::JsonValue::integer(static_cast<std::int64_t>(
               std::thread::hardware_concurrency())));

  // --- scaling curve: root throughput at 1..8 shards, >= 200 LIS nodes.
  auto scaling = bench::JsonValue::object();
  scaling.add("nodes", bench::JsonValue::integer(kScaleNodes));
  scaling.add("records_per_node", bench::JsonValue::integer(
                                      static_cast<std::int64_t>(
                                          g_scale_records_per_node)));
  auto legs = bench::JsonValue::array();
  std::printf("%-8s %12s %16s %14s %10s\n", "shards", "wall_ms",
              "records_per_sec", "uplink_batches", "held_back");
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    const ScalingLeg leg = run_scaling_leg(shards);
    std::printf("%-8u %12.2f %16.0f %14llu %10llu\n", leg.shards, leg.wall_ms,
                leg.records_per_sec,
                static_cast<unsigned long long>(leg.uplink_batches),
                static_cast<unsigned long long>(leg.root_held_back));
    auto j = bench::JsonValue::object();
    j.add("shards", bench::JsonValue::integer(leg.shards));
    j.add("wall_ms", bench::JsonValue::number(leg.wall_ms));
    j.add("records_per_sec", bench::JsonValue::number(leg.records_per_sec));
    j.add("uplink_batches", bench::JsonValue::integer(
                                static_cast<std::int64_t>(leg.uplink_batches)));
    j.add("root_held_back", bench::JsonValue::integer(
                                static_cast<std::int64_t>(leg.root_held_back)));
    legs.push(std::move(j));
  }
  scaling.add("legs", std::move(legs));
  json.add("scaling", std::move(scaling));

  // --- chaos determinism: pipe twice, then socket and shm, one seed.
  const ChaosRun pipe1 = run_chaos(core::TpFlavor::kPipe);
  const ChaosRun pipe2 = run_chaos(core::TpFlavor::kPipe);
  const ChaosRun sock = run_chaos(core::TpFlavor::kSocket);
  const ChaosRun shm = run_chaos(core::TpFlavor::kShm);
  if (pipe1.ledger != pipe2.ledger)
    fail("chaos ledger differs across same-seed pipe runs:\n" + pipe1.ledger +
         "--- vs ---\n" + pipe2.ledger);
  if (pipe1.ledger != sock.ledger)
    fail("chaos ledger differs pipe vs socket:\n" + pipe1.ledger +
         "--- vs ---\n" + sock.ledger);
  if (pipe1.ledger != shm.ledger)
    fail("chaos ledger differs pipe vs shm:\n" + pipe1.ledger +
         "--- vs ---\n" + shm.ledger);
  if (pipe1.total.shards_dead != 1)
    fail("chaos: expected exactly one dead shard, got " +
         std::to_string(pipe1.total.shards_dead));

  auto chaos = bench::JsonValue::object();
  chaos.add("nodes", bench::JsonValue::integer(kChaosNodes));
  chaos.add("shards", bench::JsonValue::integer(kChaosShards));
  chaos.add("records_per_node", bench::JsonValue::integer(
                                    static_cast<std::int64_t>(
                                        g_chaos_records_per_node)));
  chaos.add("ledgers_identical",
            bench::JsonValue::boolean(pipe1.ledger == pipe2.ledger &&
                                      pipe1.ledger == sock.ledger &&
                                      pipe1.ledger == shm.ledger));
  chaos.add("shards_dead",
            bench::JsonValue::integer(pipe1.total.shards_dead));
  chaos.add("records_lost_uplink",
            bench::JsonValue::integer(static_cast<std::int64_t>(
                pipe1.total.records_lost_uplink)));
  chaos.add("records_lost_agg",
            bench::JsonValue::integer(static_cast<std::int64_t>(
                pipe1.total.records_lost_agg)));
  auto per_shard = bench::JsonValue::array();
  for (std::size_t s = 0; s < pipe1.per_shard.size(); ++s) {
    const core::DegradationReport& d = pipe1.per_shard[s];
    auto j = bench::JsonValue::object();
    j.add("shard", bench::JsonValue::integer(static_cast<std::int64_t>(s)));
    j.add("shard_dead", bench::JsonValue::boolean(d.shards_dead != 0));
    j.add("lises_dead", bench::JsonValue::integer(d.lises_dead));
    j.add("records_lost_send", bench::JsonValue::integer(
                                   static_cast<std::int64_t>(
                                       d.records_lost_send)));
    j.add("records_lost_uplink", bench::JsonValue::integer(
                                     static_cast<std::int64_t>(
                                         d.records_lost_uplink)));
    j.add("records_lost_agg", bench::JsonValue::integer(
                                  static_cast<std::int64_t>(
                                      d.records_lost_agg)));
    j.add("holdback_expired", bench::JsonValue::integer(
                                  static_cast<std::int64_t>(
                                      d.holdback_expired)));
    per_shard.push(std::move(j));
  }
  chaos.add("per_shard", std::move(per_shard));
  json.add("chaos", std::move(chaos));

  bench::write_json_file("BENCH_ism_sharding.json", json);
  std::printf("\nchaos ledger (pipe == pipe == socket == shm):\n%s",
              pipe1.ledger.c_str());
  if (g_failures) {
    std::fprintf(stderr, "\nism_sharding: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("\nism_sharding: all legs conserved, ledgers bit-identical\n");
  return 0;
}
