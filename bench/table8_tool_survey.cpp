// Table 8 reproduction: "Summary of IS features of some representative
// parallel tools" — rendered from the queryable registry, followed by the
// cross-cutting queries the paper's classification (§2.4) enables.
#include <cstdio>

#include "core/tool_registry.hpp"

using namespace prism::core;

int main() {
  const auto reg = ToolRegistry::paper_table8();
  std::printf("== Table 8: IS features of representative parallel tools ==\n");
  std::printf("%s\n", reg.render().c_str());

  auto names = [](const std::vector<ToolSurveyEntry>& v) {
    std::string out;
    for (const auto& e : v) {
      if (!out.empty()) out += ", ";
      out += e.name;
    }
    return out.empty() ? std::string("(none)") : out;
  };

  std::printf("Queries over the classification dimensions (S2.4):\n");
  std::printf("  off-line only ............ %s\n",
              names(reg.with_analysis(AnalysisSupport::kOffline)).c_str());
  std::printf("  on-line only ............. %s\n",
              names(reg.with_analysis(AnalysisSupport::kOnline)).c_str());
  std::printf("  on-/off-line ............. %s\n",
              names(reg.with_analysis(AnalysisSupport::kOnOffline)).c_str());
  std::printf("  static management ........ %s\n",
              names(reg.with_management(ManagementApproach::kStatic)).c_str());
  std::printf("  adaptive management ...... %s\n",
              names(reg.with_management(ManagementApproach::kAdaptive)).c_str());
  std::printf(
      "  application-specific ..... %s\n",
      names(reg.with_management(ManagementApproach::kApplicationSpecific))
          .c_str());
  std::printf("  no integral evaluation ... %s\n",
              names(reg.with_evaluation(EvaluationApproach::kNone)).c_str());
  std::printf(
      "\nThe paper's observation: \"a majority of the ISs in current tool "
      "environments have been developed in a manner that can best be "
      "described as ad hoc, with insufficient or no evaluation of their "
      "overheads\" — %zu of %zu surveyed tools have no integral evaluation "
      "approach.\n",
      reg.with_evaluation(EvaluationApproach::kNone).size(),
      reg.entries().size());
  return 0;
}
