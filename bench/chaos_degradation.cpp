// Seeded chaos benchmark for the live IS fault plane (DESIGN.md §10).
//
// Drives an integrated environment under a fault plan (probabilistic send
// failures plus a deterministic node crash), runs the same seed twice to
// verify that the loss ledger is bit-identical, runs a null-injector
// baseline to measure the fault plane's hot-path overhead, and writes
// BENCH_chaos.json.  Exits nonzero when conservation or determinism fails,
// so the bench harness doubles as a soak gate.
//
// With --telemetry (PRISM_OBS builds) a fourth leg reruns the chaos seed
// with the live telemetry plane on (DESIGN.md §14) — sampler + AF_UNIX
// scrape endpoint — scraping it mid-run.  The leg must produce the exact
// same loss ledger as the plain chaos run (telemetry observes, never
// perturbs) and every mid-run snapshot must conserve; its wall time lands
// in a `telemetry` subtree of BENCH_chaos.json, which
// scripts/telemetry_overhead.py gates against chaos_wall_ms.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>

#include "bench_json.hpp"
#include "core/environment.hpp"
#include "core/tool.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "obs/pipeline.hpp"

#if PRISM_OBS_ENABLED
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/live/flight.hpp"
#include "obs/live/health.hpp"
#include "obs/live/sampler.hpp"
#endif

using namespace prism;

namespace {

constexpr std::uint64_t kRecords = 40'000;
constexpr std::uint32_t kNodes = 8;
constexpr std::uint64_t kSeed = 0xC4A05;

struct RunResult {
  obs::LineageReport lineage;
  core::LisStats lis;
  core::IsmStats ism;
  core::DegradationReport degradation;
  double wall_ms = 0;
  // --telemetry leg only.
  std::uint64_t scrapes = 0;
  std::uint64_t scrape_bytes = 0;
  std::uint64_t samples = 0;
  std::uint64_t flight_events = 0;
  bool snapshots_conserved = true;
};

#if PRISM_OBS_ENABLED
/// Minimal blocking AF_UNIX GET: returns response bytes read (0 = failed).
/// The endpoint speaks HTTP/1.0 + Connection: close, so EOF delimits.
std::size_t scrape_unix(const std::string& path, std::string_view target) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return 0;
  }
  const std::string req =
      "GET " + std::string(target) + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    // MSG_NOSIGNAL: the server may close first during shutdown, and this
    // process may never have installed the transports' SIGPIPE ignore.
    const ssize_t n =
        ::send(fd, req.data() + sent, req.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::size_t total = 0;
  char buf[4096];
  for (ssize_t n; (n = ::recv(fd, buf, sizeof buf, 0)) > 0;)
    total += static_cast<std::size_t>(n);
  ::close(fd);
  return total;
}
#endif

RunResult run_once(fault::FaultInjector* inj, bool telemetry = false) {
  core::EnvironmentConfig cfg;
  cfg.nodes = kNodes;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.flush_policy = core::FlushPolicyKind::kFof;
  cfg.local_buffer_capacity = 64;
  cfg.link_capacity = 8192;
  cfg.ism.input = core::InputConfig::kSiso;
  cfg.ism.causal_ordering = true;
  if (telemetry) {
    cfg.telemetry.mode = core::TelemetryMode::kUnix;
    cfg.telemetry.endpoint =
        "/tmp/prism.chaos_bench." + std::to_string(::getpid()) + ".sock";
    cfg.telemetry.period_ms = 10;
  }
  core::IntegratedEnvironment env(cfg);
  env.attach_tool(std::make_shared<core::StatsTool>());
  obs::PipelineObserver obs;
  env.set_observer(&obs);
  fault::RetryPolicy rp;
  rp.base_backoff_ns = 200;
  if (inj) env.set_fault(inj, rp);
  env.start();

  RunResult out;
#if PRISM_OBS_ENABLED
  // Mid-run scraper, the way Prometheus would do it: a separate client
  // hitting the endpoint on a cadence while the workload runs untouched.
  // Every snapshot read back off the live pipeline must satisfy
  // admitted == completed + lost + in_flight on every stage.  The workload
  // wall below therefore measures the plane's *interference* (sampler
  // thread + endpoint pump + scrape handling), which is what the 5%
  // overhead gate bounds — not the client's own blocking round trips.
  std::atomic<bool> scraper_stop{false};
  std::thread scraper;
  if (telemetry) {
    scraper = std::thread([&] {
      while (!scraper_stop.load(std::memory_order_relaxed)) {
        out.scrape_bytes +=
            scrape_unix(env.telemetry_address(), "/metrics");
        ++out.scrapes;
        // ::prism::obs, not obs:: — the local PipelineObserver shadows
        // the namespace here.
        ::prism::obs::live::HealthSnapshot hs;
        if (env.telemetry_sampler()->read(hs) && !hs.conserved())
          out.snapshots_conserved = false;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }
#endif
  const auto t0 = std::chrono::steady_clock::now();
  trace::EventRecord r;
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    r.node = static_cast<std::uint32_t>(i % kNodes);
    r.seq = i / kNodes;
    r.timestamp = i;
    env.record(r);
  }
  env.stop();
  const auto t1 = std::chrono::steady_clock::now();
#if PRISM_OBS_ENABLED
  if (scraper.joinable()) {
    scraper_stop.store(true, std::memory_order_relaxed);
    scraper.join();
  }
#endif

#if PRISM_OBS_ENABLED
  if (telemetry) {
    out.samples = env.telemetry_sampler()->samples();
    out.flight_events =
        ::prism::obs::live::FlightRecorder::instance().recorded();
    ::prism::obs::live::HealthSnapshot hs;
    if (!env.telemetry_sampler()->read(hs) || !hs.conserved())
      out.snapshots_conserved = false;
  }
#endif
  out.lineage = obs.lineage.report();
  out.lis = env.total_lis_stats();
  out.ism = env.ism().stats();
  out.degradation = env.degradation();
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

bool same_ledger(const RunResult& a, const RunResult& b) {
  return a.lineage.admitted == b.lineage.admitted &&
         a.lineage.completed == b.lineage.completed &&
         a.lineage.lost == b.lineage.lost &&
         a.lineage.lost_at == b.lineage.lost_at &&
         a.lis.records_forwarded == b.lis.records_forwarded &&
         a.lis.lost_send == b.lis.lost_send &&
         a.lis.lost_dead == b.lis.lost_dead &&
         a.ism.records_dispatched == b.ism.records_dispatched;
}

fault::FaultPlan chaos_plan() {
  fault::FaultPlan plan;
  // Crash first: the at_op trigger is one-shot and the first matching spec
  // wins, so a Bernoulli landing on the same consult must not mask it.
  // Each node ships ~78 batches (kRecords / kNodes / buffer capacity), so
  // op 50 lands about two thirds of the way through node 7's run.
  plan.crash(fault::FaultSite::kTpSend, 50, /*node=*/kNodes - 1);
  plan.send_failure(fault::FaultSite::kTpSend, 0.02);
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  bool ok = true;
  bool want_telemetry = false;
  for (int i = 1; i < argc; ++i)
    if (std::string_view(argv[i]) == "--telemetry") want_telemetry = true;
  if (want_telemetry && !obs::compiled_in()) {
    std::printf("chaos_degradation: --telemetry ignored (PRISM_OBS=OFF "
                "build)\n");
    want_telemetry = false;
  }

  fault::FaultInjector inj_a(chaos_plan(), kSeed);
  const RunResult chaos_a = run_once(&inj_a);
  fault::FaultInjector inj_b(chaos_plan(), kSeed);
  const RunResult chaos_b = run_once(&inj_b);
  const RunResult baseline = run_once(nullptr);

  std::printf("chaos_degradation: %llu records, %u nodes, seed %#llx\n",
              static_cast<unsigned long long>(kRecords), kNodes,
              static_cast<unsigned long long>(kSeed));
  std::printf("  chaos:    %.1f ms  |  baseline: %.1f ms\n", chaos_a.wall_ms,
              baseline.wall_ms);
  std::printf("%s", chaos_a.degradation.to_string().c_str());
  std::printf("\n%s", chaos_a.lineage.to_string().c_str());

  if (!chaos_a.lineage.conserved() || chaos_a.lineage.in_flight != 0) {
    std::printf("FAIL: chaos lineage not conserved\n");
    ok = false;
  }
  if (!chaos_a.lis.conserved() || !chaos_a.ism.conserved()) {
    std::printf("FAIL: chaos LIS/ISM ledger not conserved\n");
    ok = false;
  }
  if (!same_ledger(chaos_a, chaos_b)) {
    std::printf("FAIL: same-seed chaos runs diverged\n");
    ok = false;
  }
  if (!chaos_a.degradation.degraded() || chaos_a.degradation.lises_dead == 0) {
    std::printf("FAIL: fault plan injected nothing\n");
    ok = false;
  }
  if (baseline.degradation.degraded() || baseline.lineage.lost != 0) {
    std::printf("FAIL: fault-free baseline degraded\n");
    ok = false;
  }

  // --telemetry: same chaos seed with the live plane on and scraped mid-run.
  RunResult chaos_t;
  if (want_telemetry) {
    fault::FaultInjector inj_t(chaos_plan(), kSeed);
    chaos_t = run_once(&inj_t, /*telemetry=*/true);
    std::printf("  telemetry: %.1f ms  (%llu scrapes, %llu bytes, %llu "
                "samples, %llu flight events)\n",
                chaos_t.wall_ms,
                static_cast<unsigned long long>(chaos_t.scrapes),
                static_cast<unsigned long long>(chaos_t.scrape_bytes),
                static_cast<unsigned long long>(chaos_t.samples),
                static_cast<unsigned long long>(chaos_t.flight_events));
    if (!same_ledger(chaos_a, chaos_t)) {
      std::printf("FAIL: telemetry perturbed the chaos ledger\n");
      ok = false;
    }
    if (!chaos_t.snapshots_conserved) {
      std::printf("FAIL: a mid-run telemetry snapshot broke conservation\n");
      ok = false;
    }
    if (chaos_t.scrapes == 0 || chaos_t.scrape_bytes == 0) {
      std::printf("FAIL: telemetry endpoint served no scrapes\n");
      ok = false;
    }
  }

  auto loss_sites = bench::JsonValue::object();
  for (std::size_t i = 0; i < obs::kLossSiteCount; ++i) {
    if (chaos_a.lineage.lost_at[i] == 0) continue;
    loss_sites.add(std::string(obs::to_string(static_cast<obs::LossSite>(i))),
                   bench::JsonValue::integer(static_cast<std::int64_t>(
                       chaos_a.lineage.lost_at[i])));
  }
  auto root = bench::JsonValue::object();
  root.add("bench", bench::JsonValue::string("chaos_degradation"))
      .add("records", bench::JsonValue::integer(kRecords))
      .add("nodes", bench::JsonValue::integer(kNodes))
      .add("seed", bench::JsonValue::integer(static_cast<std::int64_t>(kSeed)))
      .add("chaos_wall_ms", bench::JsonValue::number(chaos_a.wall_ms))
      .add("baseline_wall_ms", bench::JsonValue::number(baseline.wall_ms))
      .add("baseline_events_per_sec",
           bench::JsonValue::number(baseline.wall_ms > 0
                                        ? 1e3 * kRecords / baseline.wall_ms
                                        : 0))
      .add("admitted", bench::JsonValue::integer(
                           static_cast<std::int64_t>(chaos_a.lineage.admitted)))
      .add("completed",
           bench::JsonValue::integer(
               static_cast<std::int64_t>(chaos_a.lineage.completed)))
      .add("lost", bench::JsonValue::integer(
                       static_cast<std::int64_t>(chaos_a.lineage.lost)))
      .add("lost_at", std::move(loss_sites))
      .add("lises_dead", bench::JsonValue::integer(static_cast<std::int64_t>(
                             chaos_a.degradation.lises_dead)))
      .add("holdback_expired",
           bench::JsonValue::integer(static_cast<std::int64_t>(
               chaos_a.degradation.holdback_expired)))
      .add("deterministic", bench::JsonValue::boolean(same_ledger(chaos_a,
                                                                  chaos_b)))
      .add("conserved", bench::JsonValue::boolean(chaos_a.lineage.conserved()));
  // Additive subtree (bench_gate.py exempts "telemetry" like "diagnosis");
  // scripts/telemetry_overhead.py gates wall_ms against chaos_wall_ms.
  if (want_telemetry) {
    auto telemetry = bench::JsonValue::object();
    telemetry
        .add("enabled", bench::JsonValue::boolean(true))
        .add("wall_ms", bench::JsonValue::number(chaos_t.wall_ms))
        .add("scrapes", bench::JsonValue::integer(
                            static_cast<std::int64_t>(chaos_t.scrapes)))
        .add("scrape_bytes",
             bench::JsonValue::integer(
                 static_cast<std::int64_t>(chaos_t.scrape_bytes)))
        .add("samples", bench::JsonValue::integer(
                            static_cast<std::int64_t>(chaos_t.samples)))
        .add("flight_events",
             bench::JsonValue::integer(
                 static_cast<std::int64_t>(chaos_t.flight_events)))
        .add("snapshots_conserved",
             bench::JsonValue::boolean(chaos_t.snapshots_conserved))
        .add("ledger_identical",
             bench::JsonValue::boolean(same_ledger(chaos_a, chaos_t)));
    root.add("telemetry", std::move(telemetry));
  }
  bench::write_json_file("BENCH_chaos.json", root);
  std::printf("\nwrote BENCH_chaos.json\n");

  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
