// Seeded chaos benchmark for the live IS fault plane (DESIGN.md §10).
//
// Drives an integrated environment under a fault plan (probabilistic send
// failures plus a deterministic node crash), runs the same seed twice to
// verify that the loss ledger is bit-identical, runs a null-injector
// baseline to measure the fault plane's hot-path overhead, and writes
// BENCH_chaos.json.  Exits nonzero when conservation or determinism fails,
// so the bench harness doubles as a soak gate.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.hpp"
#include "core/environment.hpp"
#include "core/tool.hpp"
#include "fault/fault.hpp"
#include "obs/pipeline.hpp"

using namespace prism;

namespace {

constexpr std::uint64_t kRecords = 40'000;
constexpr std::uint32_t kNodes = 8;
constexpr std::uint64_t kSeed = 0xC4A05;

struct RunResult {
  obs::LineageReport lineage;
  core::LisStats lis;
  core::IsmStats ism;
  core::DegradationReport degradation;
  double wall_ms = 0;
};

RunResult run_once(fault::FaultInjector* inj) {
  core::EnvironmentConfig cfg;
  cfg.nodes = kNodes;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.flush_policy = core::FlushPolicyKind::kFof;
  cfg.local_buffer_capacity = 64;
  cfg.link_capacity = 8192;
  cfg.ism.input = core::InputConfig::kSiso;
  cfg.ism.causal_ordering = true;
  core::IntegratedEnvironment env(cfg);
  env.attach_tool(std::make_shared<core::StatsTool>());
  obs::PipelineObserver obs;
  env.set_observer(&obs);
  fault::RetryPolicy rp;
  rp.base_backoff_ns = 200;
  if (inj) env.set_fault(inj, rp);
  env.start();

  const auto t0 = std::chrono::steady_clock::now();
  trace::EventRecord r;
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    r.node = static_cast<std::uint32_t>(i % kNodes);
    r.seq = i / kNodes;
    r.timestamp = i;
    env.record(r);
  }
  env.stop();
  const auto t1 = std::chrono::steady_clock::now();

  RunResult out;
  out.lineage = obs.lineage.report();
  out.lis = env.total_lis_stats();
  out.ism = env.ism().stats();
  out.degradation = env.degradation();
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

bool same_ledger(const RunResult& a, const RunResult& b) {
  return a.lineage.admitted == b.lineage.admitted &&
         a.lineage.completed == b.lineage.completed &&
         a.lineage.lost == b.lineage.lost &&
         a.lineage.lost_at == b.lineage.lost_at &&
         a.lis.records_forwarded == b.lis.records_forwarded &&
         a.lis.lost_send == b.lis.lost_send &&
         a.lis.lost_dead == b.lis.lost_dead &&
         a.ism.records_dispatched == b.ism.records_dispatched;
}

fault::FaultPlan chaos_plan() {
  fault::FaultPlan plan;
  // Crash first: the at_op trigger is one-shot and the first matching spec
  // wins, so a Bernoulli landing on the same consult must not mask it.
  // Each node ships ~78 batches (kRecords / kNodes / buffer capacity), so
  // op 50 lands about two thirds of the way through node 7's run.
  plan.crash(fault::FaultSite::kTpSend, 50, /*node=*/kNodes - 1);
  plan.send_failure(fault::FaultSite::kTpSend, 0.02);
  return plan;
}

}  // namespace

int main() {
  bool ok = true;

  fault::FaultInjector inj_a(chaos_plan(), kSeed);
  const RunResult chaos_a = run_once(&inj_a);
  fault::FaultInjector inj_b(chaos_plan(), kSeed);
  const RunResult chaos_b = run_once(&inj_b);
  const RunResult baseline = run_once(nullptr);

  std::printf("chaos_degradation: %llu records, %u nodes, seed %#llx\n",
              static_cast<unsigned long long>(kRecords), kNodes,
              static_cast<unsigned long long>(kSeed));
  std::printf("  chaos:    %.1f ms  |  baseline: %.1f ms\n", chaos_a.wall_ms,
              baseline.wall_ms);
  std::printf("%s", chaos_a.degradation.to_string().c_str());
  std::printf("\n%s", chaos_a.lineage.to_string().c_str());

  if (!chaos_a.lineage.conserved() || chaos_a.lineage.in_flight != 0) {
    std::printf("FAIL: chaos lineage not conserved\n");
    ok = false;
  }
  if (!chaos_a.lis.conserved() || !chaos_a.ism.conserved()) {
    std::printf("FAIL: chaos LIS/ISM ledger not conserved\n");
    ok = false;
  }
  if (!same_ledger(chaos_a, chaos_b)) {
    std::printf("FAIL: same-seed chaos runs diverged\n");
    ok = false;
  }
  if (!chaos_a.degradation.degraded() || chaos_a.degradation.lises_dead == 0) {
    std::printf("FAIL: fault plan injected nothing\n");
    ok = false;
  }
  if (baseline.degradation.degraded() || baseline.lineage.lost != 0) {
    std::printf("FAIL: fault-free baseline degraded\n");
    ok = false;
  }

  auto loss_sites = bench::JsonValue::object();
  for (std::size_t i = 0; i < obs::kLossSiteCount; ++i) {
    if (chaos_a.lineage.lost_at[i] == 0) continue;
    loss_sites.add(std::string(obs::to_string(static_cast<obs::LossSite>(i))),
                   bench::JsonValue::integer(static_cast<std::int64_t>(
                       chaos_a.lineage.lost_at[i])));
  }
  auto root = bench::JsonValue::object();
  root.add("bench", bench::JsonValue::string("chaos_degradation"))
      .add("records", bench::JsonValue::integer(kRecords))
      .add("nodes", bench::JsonValue::integer(kNodes))
      .add("seed", bench::JsonValue::integer(static_cast<std::int64_t>(kSeed)))
      .add("chaos_wall_ms", bench::JsonValue::number(chaos_a.wall_ms))
      .add("baseline_wall_ms", bench::JsonValue::number(baseline.wall_ms))
      .add("baseline_events_per_sec",
           bench::JsonValue::number(baseline.wall_ms > 0
                                        ? 1e3 * kRecords / baseline.wall_ms
                                        : 0))
      .add("admitted", bench::JsonValue::integer(
                           static_cast<std::int64_t>(chaos_a.lineage.admitted)))
      .add("completed",
           bench::JsonValue::integer(
               static_cast<std::int64_t>(chaos_a.lineage.completed)))
      .add("lost", bench::JsonValue::integer(
                       static_cast<std::int64_t>(chaos_a.lineage.lost)))
      .add("lost_at", std::move(loss_sites))
      .add("lises_dead", bench::JsonValue::integer(static_cast<std::int64_t>(
                             chaos_a.degradation.lises_dead)))
      .add("holdback_expired",
           bench::JsonValue::integer(static_cast<std::int64_t>(
               chaos_a.degradation.holdback_expired)))
      .add("deterministic", bench::JsonValue::boolean(same_ledger(chaos_a,
                                                                  chaos_b)))
      .add("conserved", bench::JsonValue::boolean(chaos_a.lineage.conserved()));
  bench::write_json_file("BENCH_chaos.json", root);
  std::printf("\nwrote BENCH_chaos.json\n");

  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
