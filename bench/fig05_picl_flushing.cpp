// Figure 5 reproduction: "Comparison of buffer flushing frequencies of the
// FOF and FAOF policies for three arrival rates, (a) alpha=0.0008,
// (b) alpha=0.007, and (c) alpha=2", over buffer capacity l = 10..100,
// P = 8 nodes, f(l) = 100 + 10 l.
//
// Prints each panel as a CSV series (analytic curves, which is what the
// paper plots, plus simulation spot checks), then verifies the published
// shape: frequency decreases with l; FAOF <= FOF everywhere; the FOF/FAOF
// gap grows with alpha (indistinguishable at 0.0008, wide at 2).
#include <cstdio>
#include <vector>

#include "picl/analytic_model.hpp"
#include "picl/flush_sim.hpp"
#include "sim/replication.hpp"

using namespace prism;

namespace {

/// Replicated simulation spot check: mean flushing frequency over `reps`
/// independent replications, run on the worker pool (bit-identical to a
/// serial run; see sim/replication.hpp).
double sim_spot_check(const picl::PiclModelParams& p, bool faof,
                      unsigned cycles, std::uint64_t tag) {
  const unsigned reps = 8;
  const auto rr = sim::replicate(
      reps, /*base_seed=*/0xF1605, tag,
      [&p, faof, cycles](stats::Rng& rng) -> sim::Responses {
        const auto res = faof ? picl::simulate_faof(p, cycles, rng)
                              : picl::simulate_fof(p, cycles, rng);
        return {{"freq", res.flushing_frequency}};
      },
      sim::ReplicateOptions{});
  return rr.summary("freq").mean();
}

}  // namespace

int main() {
  const unsigned P = 8;
  const std::vector<double> alphas{0.0008, 0.007, 2.0};
  const char* panels[] = {"(a)", "(b)", "(c)"};

  bool shape_ok = true;
  double prev_gap = 1.0;

  for (std::size_t a = 0; a < alphas.size(); ++a) {
    const double alpha = alphas[a];
    std::printf("== Figure 5%s: alpha = %g ==\n", panels[a], alpha);
    std::printf("l,fof_frequency,faof_frequency,fof_sim,faof_sim\n");
    double prev_fof = 1e99, prev_faof = 1e99;
    bool panel_monotone = true, panel_order = true;
    for (unsigned l = 10; l <= 100; l += 10) {
      picl::PiclModelParams p;
      p.buffer_capacity = l;
      p.arrival_rate = alpha;
      p.nodes = P;
      const double fof = picl::fof_flushing_frequency(p);
      const double faof = picl::faof_flushing_frequency_bound(p);
      // Simulation spot checks at the panel corners.
      double fof_sim = 0, faof_sim = 0;
      if (l == 10 || l == 50 || l == 100) {
        fof_sim = sim_spot_check(p, /*faof=*/false, 1500, 10 * l + a);
        faof_sim = sim_spot_check(p, /*faof=*/true, 800, 20 * l + a);
        std::printf("%u,%.6g,%.6g,%.6g,%.6g\n", l, fof, faof, fof_sim,
                    faof_sim);
      } else {
        std::printf("%u,%.6g,%.6g,,\n", l, fof, faof);
      }
      panel_monotone &= fof < prev_fof && faof < prev_faof;
      panel_order &= faof <= fof;
      prev_fof = fof;
      prev_faof = faof;
    }
    // Gap at l = 50 for the cross-panel comparison.
    picl::PiclModelParams mid;
    mid.buffer_capacity = 50;
    mid.arrival_rate = alpha;
    mid.nodes = P;
    const double gap = picl::fof_flushing_frequency(mid) /
                       picl::faof_flushing_frequency_bound(mid);
    std::printf("shape: monotone-decreasing %s, FAOF<=FOF %s, "
                "FOF/FAOF gap at l=50: %.3f\n\n",
                panel_monotone ? "OK" : "VIOLATION",
                panel_order ? "OK" : "VIOLATION", gap);
    shape_ok &= panel_monotone && panel_order && gap >= prev_gap;
    prev_gap = gap;
  }

  std::printf("== Figure 5 overall shape: %s ==\n",
              shape_ok ? "REPRODUCED (freq decreasing in l; FAOF <= FOF; "
                         "gap grows with alpha)"
                       : "VIOLATION");
  return shape_ok ? 0 : 1;
}
