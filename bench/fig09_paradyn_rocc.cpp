// Figure 9 reproduction: "Interference and utilization metrics calculated
// with the ROCC model."
//
//   (a) Pd interference (ms of daemon CPU time over the run) vs sampling
//       period, 50..500 ms — superlinear decrease that levels off;
//   (b) CPU utilization by the daemon (% of consumed CPU) vs number of
//       application processes, 1..32 — decreasing toward zero.
//
// Both sweeps report 90% confidence intervals from independent replications
// (the paper used a 2^k r design with k=2, r=50; the factorial analysis is
// printed afterwards with the same r).
#include <cstdio>
#include <vector>

#include "obs/pipeline.hpp"
#include "paradyn/rocc_model.hpp"
#include "sim/thread_pool.hpp"

using namespace prism;

int main() {
  paradyn::ParadynRoccParams base;  // defaults documented in the header
  const unsigned r = 30;
  const std::uint64_t seed = 0x5EED;
  // Replications run on the worker pool (results are bit-identical to
  // serial; see sim/replication.hpp).
  const sim::ReplicateOptions par{};

  std::printf("== Figure 9(a): Pd interference vs sampling period ==\n");
  std::printf("   (n_app = %u, horizon = %g ms, r = %u, 90%% CI, "
              "%u worker threads)\n",
              base.app_processes, base.horizon_ms, r,
              sim::ThreadPool::default_threads());
  std::printf("period_ms,interference_ms,ci_half,queueing_delay_ms\n");
  const std::vector<double> periods{50, 100, 150, 200, 250,
                                    300, 350, 400, 450, 500};
  const auto sweep_a =
      paradyn::sweep_sampling_period(base, periods, r, seed, par);
  bool monotone = true;
  for (std::size_t i = 0; i < sweep_a.size(); ++i) {
    const auto& pt = sweep_a[i];
    std::printf("%g,%.1f,%.1f,%.2f\n", pt.x, pt.interference.mean,
                pt.interference.half_width, pt.queueing_delay.mean);
    if (i > 0) monotone &= pt.interference.mean <
                           sweep_a[i - 1].interference.mean;
  }
  const double early_drop =
      sweep_a[0].interference.mean - sweep_a[2].interference.mean;
  const double late_drop =
      sweep_a[7].interference.mean - sweep_a[9].interference.mean;
  std::printf("shape: monotone-decreasing %s; superlinear-then-level %s "
              "(drop 50->150: %.0f ms, drop 400->500: %.0f ms)\n\n",
              monotone ? "OK" : "VIOLATION",
              early_drop > 2 * late_drop ? "OK" : "VIOLATION", early_drop,
              late_drop);

  std::printf("== Figure 9(b): daemon CPU utilization vs #app processes ==\n");
  std::printf("   (period = %g ms, r = %u, 90%% CI)\n",
              base.sampling_period_ms, r);
  std::printf("n_app,utilization_pct,ci_half,queueing_delay_ms\n");
  const std::vector<unsigned> counts{1, 2, 4, 8, 12, 16, 20, 24, 28, 32};
  const auto sweep_b =
      paradyn::sweep_app_processes(base, counts, r, seed + 1, par);
  bool decreasing = true;
  for (std::size_t i = 0; i < sweep_b.size(); ++i) {
    const auto& pt = sweep_b[i];
    std::printf("%g,%.3f,%.3f,%.2f\n", pt.x, pt.utilization_pct.mean,
                pt.utilization_pct.half_width, pt.queueing_delay.mean);
    if (i > 0)
      decreasing &= pt.utilization_pct.mean <=
                    sweep_b[i - 1].utilization_pct.mean + 1e-9;
  }
  std::printf("shape: utilization decreasing %s (%.2f%% at n=1 -> %.2f%% at "
              "n=32); daemon starvation visible as rising queueing delay "
              "(%.1f ms -> %.1f ms)\n\n",
              decreasing ? "OK" : "VIOLATION",
              sweep_b.front().utilization_pct.mean,
              sweep_b.back().utilization_pct.mean,
              sweep_b.front().queueing_delay.mean,
              sweep_b.back().queueing_delay.mean);

  std::printf("== 2^k r factorial analysis (k=2: period 50/500, procs 2/16; "
              "r=%u) ==\n", r);
  for (const char* response : {"interference", "utilization_pct"}) {
    const auto res = paradyn::paradyn_factorial(base, 50, 500, 2, 16, r,
                                                response, seed + 2);
    std::printf("response: %s\n%s\n", response, res.to_string().c_str());
  }

  // Model-time observability (DESIGN.md §9): lineage-trace one saturated
  // run.  A tick-dropping daemon (max_outstanding = 1) under heavy CPU
  // contention loses wakeups to local backpressure; the tracer attributes
  // every loss to a named stage and breaks the surviving samples' latency
  // into per-stage transitions on the simulated clock.
  std::printf("== model-time lineage: daemon wakeup pipeline "
              "(n_app = 24, max_outstanding = 1) ==\n");
  {
    paradyn::ParadynRoccParams p = base;
    p.app_processes = 24;
    p.horizon_ms = 20'000;
    p.daemon_max_outstanding = 1;
    obs::PipelineObserver observer(/*lineage_stride=*/1);
    observer.timeline_interval = 100.0;  // ms between occupancy probes
    stats::Rng rng(stats::Rng::hash_seed(seed, 0x0B5, 0));
    (void)paradyn::run_paradyn_rocc(p, rng, &observer);
    const obs::LineageReport rep = observer.lineage.report();
    std::printf("%s", rep.to_string().c_str());
    std::printf("loss attribution: %.0f%% of %llu lost wakeups named; "
                "lineage conserved: %s\n",
                100.0 * rep.attributed_loss_fraction(),
                static_cast<unsigned long long>(rep.lost),
                rep.conserved() ? "yes" : "NO");
    observer.timeline.write_csv("fig09_timeline.csv");
    std::printf("wrote fig09_timeline.csv (%zu points across %zu series — "
                "CPU/network occupancy trajectory on the simulated clock)\n",
                observer.timeline.total_points(),
                observer.timeline.series_names().size());
    observer.timeline.write_chrome_json("fig09_timeline.trace.json");
    std::printf("wrote fig09_timeline.trace.json — open at "
                "https://ui.perfetto.dev (counters on simulated time)\n");
  }
  return 0;
}
