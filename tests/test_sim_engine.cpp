// Discrete-event engine: ordering, ties, cancellation, run_until, stop.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/engine.hpp"

namespace prism::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, SimultaneousEventsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    e.schedule_at(5.0, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine e;
  double fired_at = -1;
  e.schedule_at(10.0, [&] {
    e.schedule_after(5.0, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Engine, RejectsPastScheduling) {
  Engine e;
  e.schedule_at(10.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(e.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  auto h = e.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(h));
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelInvalidHandle) {
  Engine e;
  EXPECT_FALSE(e.cancel(EventHandle{}));
  EXPECT_FALSE(e.cancel(EventHandle{9999}));
}

TEST(Engine, CancelledEventDoesNotBlockOthers) {
  Engine e;
  std::vector<int> order;
  auto h = e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.cancel(h);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(Engine, RunUntilAdvancesClockExactly) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(5.0, [&] { ++fired; });
  e.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  e.run_until(10.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(Engine, RunUntilIncludesBoundary) {
  Engine e;
  bool ran = false;
  e.schedule_at(3.0, [&] { ran = true; });
  e.run_until(3.0);
  EXPECT_TRUE(ran);
}

TEST(Engine, StopHaltsRun) {
  Engine e;
  int count = 0;
  for (int i = 1; i <= 100; ++i)
    e.schedule_at(i, [&] {
      ++count;
      if (count == 10) e.stop();
    });
  e.run();
  EXPECT_EQ(count, 10);
  EXPECT_TRUE(e.stopped());
  e.resume();
  e.run();
  EXPECT_EQ(count, 100);
}

TEST(Engine, MaxEventsBound) {
  Engine e;
  int count = 0;
  for (int i = 1; i <= 50; ++i)
    e.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(e.run(20), 20u);
  EXPECT_EQ(count, 20);
}

TEST(Engine, SelfPerpetuatingProcessTerminatesViaRunUntil) {
  Engine e;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    e.schedule_after(1.0, tick);
  };
  e.schedule_after(1.0, tick);
  e.run_until(100.5);
  EXPECT_EQ(ticks, 100);
}

TEST(Engine, EventsExecutedCounter) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(i + 1.0, [] {});
  e.run();
  EXPECT_EQ(e.events_executed(), 7u);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, CancelAfterExecutionReturnsFalse) {
  // A handle whose event already ran must be rejected — and rejected
  // without recording anything, so stale cancels cannot accumulate state
  // (the seed implementation grew its cancelled-id set forever here).
  Engine e;
  auto h = e.schedule_at(1.0, [] {});
  e.run();
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(e.cancel(h));
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine e;
  auto h = e.schedule_at(1.0, [] {});
  EXPECT_TRUE(e.cancel(h));
  EXPECT_FALSE(e.cancel(h));
  e.run();
  EXPECT_FALSE(e.cancel(h));
}

TEST(Engine, PendingExcludesCancelledEvents) {
  Engine e;
  auto a = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  e.schedule_at(3.0, [] {});
  EXPECT_EQ(e.pending(), 3u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 2u);
  EXPECT_FALSE(e.empty());
  e.run();
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, ScheduleCancelChurnStaysBounded) {
  // Heavy schedule/cancel churn: every event is cancelled before it fires.
  // Executes fine and leaves an empty calendar (the tombstone compaction
  // keeps the heap proportional to the live count, not the churn count).
  Engine e;
  for (int i = 0; i < 100'000; ++i) {
    auto h = e.schedule_at(static_cast<double>(i + 1), [] {});
    EXPECT_TRUE(e.cancel(h));
  }
  EXPECT_EQ(e.pending(), 0u);
  bool ran = false;
  e.schedule_at(200'000.0, [&] { ran = true; });
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(e.events_executed(), 1u);
}

TEST(Engine, RunUntilSkipsCancelledFrontWithoutOverrunning) {
  // A cancelled event at the top of the calendar must not let run_until
  // execute a live event beyond t.
  Engine e;
  bool late_ran = false;
  auto front = e.schedule_at(2.0, [] {});
  e.schedule_at(10.0, [&] { late_ran = true; });
  e.cancel(front);
  e.run_until(3.0);
  EXPECT_FALSE(late_ran);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, ReschedulePendingEventMovesIt) {
  Engine e;
  std::vector<int> order;
  auto h = e.schedule_at(5.0, [&] { order.push_back(1); });
  e.schedule_at(3.0, [&] { order.push_back(2); });
  auto h2 = e.reschedule(h, 1.0);
  ASSERT_TRUE(h2.valid());
  EXPECT_FALSE(e.cancel(h));  // the old handle is dead
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.events_executed(), 2u);
  EXPECT_FALSE(e.cancel(h2));  // executed
}

TEST(Engine, RescheduleInvalidHandleReturnsInvalid) {
  Engine e;
  EXPECT_FALSE(e.reschedule(EventHandle{}, 1.0).valid());
  EXPECT_FALSE(e.reschedule(EventHandle{9999}, 1.0).valid());
  auto h = e.schedule_at(1.0, [] {});
  e.cancel(h);
  EXPECT_FALSE(e.reschedule(h, 2.0).valid());
}

TEST(Engine, RescheduleRunningEventActsAsPeriodicTimer) {
  // The fast path for periodic events: the executing callback re-arms
  // itself via its handle; the engine moves the callback back rather than
  // building a fresh std::function each period.
  Engine e;
  int ticks = 0;
  EventHandle h;
  h = e.schedule_at(1.0, [&] {
    ++ticks;
    if (e.now() < 100.0) h = e.reschedule(h, e.now() + 1.0);
  });
  e.run();
  EXPECT_EQ(ticks, 100);
  EXPECT_DOUBLE_EQ(e.now(), 100.0);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, RearmCancelledBeforeFiringIsDropped) {
  // Re-arm, then cancel the re-arm handle from a later event: the held
  // callback must be discarded, not resurrected.
  Engine e;
  int ticks = 0;
  EventHandle h;
  h = e.schedule_at(1.0, [&] {
    ++ticks;
    h = e.reschedule(h, e.now() + 10.0);
  });
  e.schedule_at(5.0, [&] { EXPECT_TRUE(e.cancel(h)); });
  e.run();
  EXPECT_EQ(ticks, 1);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, RescheduleKeepsFifoSemantics) {
  // A rescheduled event lands *after* events already scheduled for the same
  // instant (it is logically a cancel + fresh schedule).
  Engine e;
  std::vector<int> order;
  auto h = e.schedule_at(9.0, [&] { order.push_back(1); });
  e.schedule_at(5.0, [&] { order.push_back(2); });
  e.reschedule(h, 5.0);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Engine, RunUntilOnStoppedEngineDoesNotAdvanceClock) {
  // Regression: a stopped engine must not silently jump its clock to t past
  // events that never executed.
  Engine e;
  int fired = 0;
  for (int i = 1; i <= 5; ++i)
    e.schedule_at(i, [&] {
      ++fired;
      if (fired == 2) e.stop();
    });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  // Stopped: run_until must neither run events nor advance the clock.
  e.run_until(100.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  EXPECT_EQ(e.pending(), 3u);
  // After resume the same call catches up and then advances exactly to t.
  e.resume();
  e.run_until(100.0);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(e.now(), 100.0);
}

TEST(Engine, StopDuringRunUntilPreservesEventClock) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(2.0, [&] {
    ++fired;
    e.stop();
  });
  e.schedule_at(3.0, [&] { ++fired; });
  e.run_until(10.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);  // not silently bumped to 10
  e.resume();
  e.run_until(10.0);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(Engine, NestedSchedulingAtSameTime) {
  // An event scheduling another event at the current instant runs it before
  // later times.
  Engine e;
  std::vector<int> order;
  e.schedule_at(1.0, [&] {
    order.push_back(1);
    e.schedule_at(1.0, [&] { order.push_back(2); });
  });
  e.schedule_at(2.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// Hammers cancel/reschedule until tombstone compaction has triggered many
// times over, asserting the lazy-deletion heap stays bounded by O(pending())
// throughout and that the surviving events execute in a deterministic order.
// Regression guard for the compaction threshold: without compaction this
// churn would grow the heap to ~6x the live set.
TEST(Engine, ChurnKeepsCalendarBoundedAndDeterministic) {
  auto run_churn = [](std::vector<int>& order) -> std::size_t {
    Engine e;
    std::size_t max_entries = 0;
    std::vector<EventHandle> live;
    int victim = 0;  // deterministic churn pattern, no RNG needed
    for (int round = 0; round < 40; ++round) {
      // Schedule a wave, cancel most of it, reschedule the rest repeatedly:
      // every cancel and every reschedule leaves a tombstone behind.
      for (int i = 0; i < 100; ++i) {
        const int tag = round * 100 + i;
        live.push_back(e.schedule_at(1000.0 + tag,
                                     [&order, tag] { order.push_back(tag); }));
      }
      for (auto& h : live) {
        if (++victim % 4 != 0) {
          EXPECT_TRUE(e.cancel(h));
          h = EventHandle{};
        } else {
          for (int k = 0; k < 3; ++k) h = e.reschedule(h, 2000.0 + victim + k);
          EXPECT_TRUE(h.valid());
        }
      }
      live.erase(std::remove_if(live.begin(), live.end(),
                                [](const EventHandle& h) { return !h.valid(); }),
                 live.end());
      max_entries = std::max(max_entries, e.calendar_entries());
      // The compaction invariant: entries (live + tombstones) never exceed
      // twice the live set once past the small-heap threshold.  Compaction
      // runs on push, so cancels issued since the last push (at most the
      // pattern's run of 3) can sit briefly on top of the bound.
      EXPECT_LE(e.calendar_entries(),
                std::max<std::size_t>(64, 2 * e.pending() + 8));
    }
    e.run();
    EXPECT_EQ(e.pending(), 0u);
    return max_entries;
  };

  std::vector<int> first, second;
  const std::size_t max_a = run_churn(first);
  const std::size_t max_b = run_churn(second);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);   // identical churn -> identical execution order
  EXPECT_EQ(max_a, max_b);    // and identical heap trajectory
}

}  // namespace
}  // namespace prism::sim
