// Discrete-event engine: ordering, ties, cancellation, run_until, stop.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace prism::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, SimultaneousEventsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    e.schedule_at(5.0, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine e;
  double fired_at = -1;
  e.schedule_at(10.0, [&] {
    e.schedule_after(5.0, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Engine, RejectsPastScheduling) {
  Engine e;
  e.schedule_at(10.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(e.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  auto h = e.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(h));
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelInvalidHandle) {
  Engine e;
  EXPECT_FALSE(e.cancel(EventHandle{}));
  EXPECT_FALSE(e.cancel(EventHandle{9999}));
}

TEST(Engine, CancelledEventDoesNotBlockOthers) {
  Engine e;
  std::vector<int> order;
  auto h = e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.cancel(h);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(Engine, RunUntilAdvancesClockExactly) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(5.0, [&] { ++fired; });
  e.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  e.run_until(10.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(Engine, RunUntilIncludesBoundary) {
  Engine e;
  bool ran = false;
  e.schedule_at(3.0, [&] { ran = true; });
  e.run_until(3.0);
  EXPECT_TRUE(ran);
}

TEST(Engine, StopHaltsRun) {
  Engine e;
  int count = 0;
  for (int i = 1; i <= 100; ++i)
    e.schedule_at(i, [&] {
      ++count;
      if (count == 10) e.stop();
    });
  e.run();
  EXPECT_EQ(count, 10);
  EXPECT_TRUE(e.stopped());
  e.resume();
  e.run();
  EXPECT_EQ(count, 100);
}

TEST(Engine, MaxEventsBound) {
  Engine e;
  int count = 0;
  for (int i = 1; i <= 50; ++i)
    e.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(e.run(20), 20u);
  EXPECT_EQ(count, 20);
}

TEST(Engine, SelfPerpetuatingProcessTerminatesViaRunUntil) {
  Engine e;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    e.schedule_after(1.0, tick);
  };
  e.schedule_after(1.0, tick);
  e.run_until(100.5);
  EXPECT_EQ(ticks, 100);
}

TEST(Engine, EventsExecutedCounter) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(i + 1.0, [] {});
  e.run();
  EXPECT_EQ(e.events_executed(), 7u);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, NestedSchedulingAtSameTime) {
  // An event scheduling another event at the current instant runs it before
  // later times.
  Engine e;
  std::vector<int> order;
  e.schedule_at(1.0, [&] {
    order.push_back(1);
    e.schedule_at(1.0, [&] { order.push_back(2); });
  });
  e.schedule_at(2.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace prism::sim
