// Working PICL-style instrumentation library on the simulated multicomputer:
// capture, FOF/FAOF flushing, merged trace production, flush markers.
#include <gtest/gtest.h>

#include <filesystem>

#include "picl/library.hpp"
#include "stats/distributions.hpp"
#include "trace/causal.hpp"
#include "trace/file.hpp"
#include "trace/merge.hpp"
#include "workload/apps.hpp"

namespace prism::picl {
namespace {

namespace fs = std::filesystem;

TEST(PiclLibrary, CapturesRingAppAndMergesOrdered) {
  sim::Engine eng;
  workload::Multicomputer mc(eng, 4, 0.5, 0.001);
  PiclConfig cfg;
  cfg.buffer_capacity = 16;
  PiclInstrumentation picl(mc, cfg);
  stats::Exponential compute(1.0);
  const auto app = workload::run_ring_app(mc, 10, compute, stats::Rng(1));
  auto merged = picl.finalize();
  // Every send/recv/user event captured: ring emits 2 per message + users.
  EXPECT_GE(merged.size(), 2 * app.messages);
  EXPECT_TRUE(trace::is_time_ordered(merged));
  EXPECT_EQ(picl.total_records_captured(), merged.size());
}

TEST(PiclLibrary, FofFlushesPerNode) {
  sim::Engine eng;
  workload::Multicomputer mc(eng, 2, 0.1, 0.0);
  PiclConfig cfg;
  cfg.buffer_capacity = 4;
  cfg.flush_all_on_fill = false;
  PiclInstrumentation picl(mc, cfg);
  // 10 user events on node 0 only: node 0 flushes twice (at 4 and 8),
  // node 1 never.
  for (int i = 0; i < 10; ++i) mc.user_event(0, 1);
  EXPECT_EQ(picl.node_report(0).flushes, 2u);
  EXPECT_EQ(picl.node_report(1).flushes, 0u);
}

TEST(PiclLibrary, FaofGangFlushes) {
  sim::Engine eng;
  workload::Multicomputer mc(eng, 3, 0.1, 0.0);
  PiclConfig cfg;
  cfg.buffer_capacity = 4;
  cfg.flush_all_on_fill = true;
  PiclInstrumentation picl(mc, cfg);
  mc.user_event(1, 1);  // node 1 holds one record
  for (int i = 0; i < 4; ++i) mc.user_event(0, 1);  // node 0 fills
  // Gang flush: nodes 0 and 1 both flushed; node 2 was empty (no-op).
  EXPECT_EQ(picl.node_report(0).flushes, 1u);
  EXPECT_EQ(picl.node_report(1).flushes, 1u);
  EXPECT_EQ(picl.node_report(2).flushes, 0u);
}

TEST(PiclLibrary, FlushMarkersBracketSegments) {
  sim::Engine eng;
  workload::Multicomputer mc(eng, 1, 0.1, 0.0);
  PiclConfig cfg;
  cfg.buffer_capacity = 2;
  cfg.flush_cost_base = 5.0;  // engine units
  cfg.flush_cost_per_record = 1.0;
  PiclInstrumentation picl(mc, cfg);
  mc.user_event(0, 1);
  mc.user_event(0, 1);  // fills -> flush with markers
  auto merged = picl.finalize();
  int begins = 0, ends = 0;
  for (const auto& r : merged) {
    if (r.kind == trace::EventKind::kFlushBegin) ++begins;
    if (r.kind == trace::EventKind::kFlushEnd) ++ends;
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
  // End marker models f(l) = 5 + 1*2 = 7 engine units after begin.
  std::uint64_t t_begin = 0, t_end = 0;
  for (const auto& r : merged) {
    if (r.kind == trace::EventKind::kFlushBegin) t_begin = r.timestamp;
    if (r.kind == trace::EventKind::kFlushEnd) t_end = r.timestamp;
  }
  EXPECT_EQ(t_end - t_begin, static_cast<std::uint64_t>(7.0 * 1e6));
}

TEST(PiclLibrary, WriteTraceRoundTrips) {
  const auto path = fs::temp_directory_path() / "prism_picl_trace.trc";
  sim::Engine eng;
  workload::Multicomputer mc(eng, 3, 0.2, 0.0);
  PiclInstrumentation picl(mc, PiclConfig{});
  stats::Exponential compute(0.5);
  workload::run_stencil_app(mc, 5, compute, stats::Rng(3));
  const auto n = picl.write_trace(path);
  EXPECT_GT(n, 0u);
  trace::TraceFileReader r(path);
  EXPECT_EQ(r.record_count(), n);
  EXPECT_TRUE(trace::is_time_ordered(r.records()));
  fs::remove(path);
}

TEST(PiclLibrary, StencilTraceIsCausallyValidPerMergeOrder) {
  sim::Engine eng;
  workload::Multicomputer mc(eng, 4, 0.3, 0.0001);
  PiclInstrumentation picl(mc, PiclConfig{});
  stats::Exponential compute(0.4);
  workload::run_stencil_app(mc, 6, compute, stats::Rng(4));
  auto merged = picl.finalize();
  EXPECT_LT(trace::first_causal_violation(merged), 0);
}

TEST(PiclLibrary, SmallBuffersNeverDropWithFlushing) {
  sim::Engine eng;
  workload::Multicomputer mc(eng, 4, 0.3, 0.0);
  PiclConfig cfg;
  cfg.buffer_capacity = 2;  // tiny: stresses the flush path
  PiclInstrumentation picl(mc, cfg);
  stats::Exponential compute(0.4);
  const auto app = workload::run_ring_app(mc, 20, compute, stats::Rng(5));
  (void)app;
  for (std::uint32_t n = 0; n < 4; ++n)
    EXPECT_EQ(picl.node_report(n).dropped, 0u);
  EXPECT_GT(picl.total_flushes(), 0u);
}

TEST(PiclLibrary, RejectsZeroCapacity) {
  sim::Engine eng;
  workload::Multicomputer mc(eng, 1, 0.1, 0.0);
  PiclConfig cfg;
  cfg.buffer_capacity = 0;
  EXPECT_THROW(PiclInstrumentation(mc, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace prism::picl
