// Adaptive cost model and sampling-rate decay.
#include <gtest/gtest.h>

#include "paradyn/cost_model.hpp"

namespace prism::paradyn {
namespace {

TEST(AdaptiveCostModel, LearnsPerSampleCost) {
  AdaptiveCostModel m(/*prior=*/1.0, /*smoothing=*/0.5);
  // Observed: 0.2 ms per sample.
  for (int i = 0; i < 20; ++i) m.observe(2.0, 10, 100.0);
  EXPECT_NEAR(m.per_sample_cost_ms(), 0.2, 0.01);
  EXPECT_EQ(m.observations(), 20u);
}

TEST(AdaptiveCostModel, FirstObservationReplacesPrior) {
  AdaptiveCostModel m(5.0, 0.1);
  m.observe(1.0, 10, 100.0);
  EXPECT_NEAR(m.per_sample_cost_ms(), 0.1, 1e-12);
}

TEST(AdaptiveCostModel, TracksObservedOverhead) {
  AdaptiveCostModel m(0.1, 1.0);  // no smoothing memory
  m.observe(5.0, 10, 100.0);
  EXPECT_NEAR(m.observed_overhead(), 0.05, 1e-12);
}

TEST(AdaptiveCostModel, PredictsOverheadFraction) {
  AdaptiveCostModel m(0.5, 0.2);
  // 0.5 ms per sample, 8 samples per 100 ms period -> 4%.
  EXPECT_NEAR(m.predicted_overhead(100.0, 8), 0.04, 1e-12);
}

TEST(AdaptiveCostModel, RecommendedPeriodMeetsTarget) {
  AdaptiveCostModel m(0.5, 0.2);
  const double period = m.recommended_period_ms(/*target=*/0.02, /*procs=*/8);
  // At the recommended period, predicted overhead == target.
  EXPECT_NEAR(m.predicted_overhead(period, 8), 0.02, 1e-9);
  // A shorter period would overshoot the budget.
  EXPECT_GT(m.predicted_overhead(period / 2, 8), 0.02);
}

TEST(AdaptiveCostModel, RegulationLoopConverges) {
  // Closed loop: model drives the period; observed cost follows; the
  // overhead settles at the 2% target.
  AdaptiveCostModel m(0.01, 0.3);  // bad prior: 10x too low
  const double true_cost = 0.1;    // ms per sample
  const unsigned procs = 4;
  double period = m.recommended_period_ms(0.02, procs);
  for (int step = 0; step < 30; ++step) {
    const double cpu = true_cost * procs;  // one sample per proc per period
    m.observe(cpu, procs, period);
    period = m.recommended_period_ms(0.02, procs);
  }
  EXPECT_NEAR(m.per_sample_cost_ms(), true_cost, 0.01);
  EXPECT_NEAR(true_cost * procs / period, 0.02, 0.002);
}

TEST(AdaptiveCostModel, RejectsBadInputs) {
  EXPECT_THROW(AdaptiveCostModel(-1.0), std::invalid_argument);
  EXPECT_THROW(AdaptiveCostModel(0.1, 0.0), std::invalid_argument);
  AdaptiveCostModel m(0.1);
  EXPECT_THROW(m.observe(-1.0, 1, 10.0), std::invalid_argument);
  EXPECT_THROW(m.observe(1.0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(m.predicted_overhead(0.0, 1), std::invalid_argument);
  EXPECT_THROW(m.recommended_period_ms(0.0, 1), std::invalid_argument);
  EXPECT_THROW(m.recommended_period_ms(0.1, 0), std::invalid_argument);
}

TEST(SamplingRateDecay, GrowsGeometricallyToCap) {
  SamplingRateDecay d(10.0, 100.0, 2.0);
  EXPECT_DOUBLE_EQ(d.period_ms(0), 10.0);
  EXPECT_DOUBLE_EQ(d.period_ms(1), 20.0);
  EXPECT_DOUBLE_EQ(d.period_ms(2), 40.0);
  EXPECT_DOUBLE_EQ(d.period_ms(10), 100.0);  // capped
}

TEST(SamplingRateDecay, RateDecreasesMonotonically) {
  // "The rate of sampling of data progressively decreases over time."
  SamplingRateDecay d(5.0, 500.0, 1.3);
  for (unsigned k = 1; k < 20; ++k)
    EXPECT_GE(d.period_ms(k), d.period_ms(k - 1));
}

TEST(SamplingRateDecay, RejectsBadConfig) {
  EXPECT_THROW(SamplingRateDecay(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(SamplingRateDecay(10.0, 5.0), std::invalid_argument);
  EXPECT_THROW(SamplingRateDecay(1.0, 10.0, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace prism::paradyn
