// PICL flush-policy simulation validated against the analytic model
// ("compared and validated with simulation", §3.1.3).
#include <gtest/gtest.h>

#include "picl/analytic_model.hpp"
#include "picl/flush_sim.hpp"

namespace prism::picl {
namespace {

PiclModelParams params(unsigned l, double alpha, unsigned P = 8) {
  PiclModelParams p;
  p.buffer_capacity = l;
  p.arrival_rate = alpha;
  p.nodes = P;
  return p;
}

TEST(FofSim, StoppingTimeMatchesErlangMean) {
  const auto p = params(50, 0.007);
  const auto r = simulate_fof(p, 4000, stats::Rng(11));
  const double expected = fof_expected_stopping_time(p);
  EXPECT_NEAR(r.stopping_time.mean(), expected,
              4 * r.stopping_time.std_error());
}

TEST(FofSim, FlushingFrequencyMatchesFormula) {
  const auto p = params(50, 0.007);
  const auto r = simulate_fof(p, 4000, stats::Rng(12));
  const double formula = fof_flushing_frequency(p);
  EXPECT_NEAR(r.flushing_frequency, formula, 0.05 * formula);
  // The regenerative CI must cover the analytic value.
  EXPECT_TRUE(r.frequency_estimator.ratio_ci(0.99).contains(formula));
}

TEST(FofSim, FlushTimeFractionMatchesSmithsTheorem) {
  const auto p = params(20, 0.1);
  const auto r = simulate_fof(p, 4000, stats::Rng(13));
  EXPECT_NEAR(r.flush_time_fraction, fof_flush_time_fraction(p), 0.02);
}

TEST(FaofSim, StoppingTimeMatchesMinErlangMean) {
  const auto p = params(30, 0.05, 8);
  const auto r = simulate_faof(p, 2000, stats::Rng(14));
  const double exact = faof_expected_stopping_time(p);
  EXPECT_NEAR(r.stopping_time.mean(), exact, 4 * r.stopping_time.std_error());
}

TEST(FaofSim, StoppingTimeRespectsPaperBound) {
  const auto p = params(30, 0.05, 8);
  const auto r = simulate_faof(p, 2000, stats::Rng(15));
  EXPECT_GE(r.stopping_time.mean(), faof_stopping_time_lower_bound(p));
}

TEST(FaofSim, FrequencyMatchesExactModel) {
  const auto p = params(30, 0.05, 8);
  const auto r = simulate_faof(p, 2000, stats::Rng(16));
  const double exact = faof_flushing_frequency_exact(p);
  EXPECT_NEAR(r.flushing_frequency, exact, 0.05 * exact);
}

TEST(FaofSim, FrequencyAtOrAbovePaperBoundExpression) {
  // The published curve 1/(l + P alpha f(l)) uses l fill arrivals per
  // cycle; the simulated average buffer fills less than that, so the
  // simulated per-buffer frequency sits at or above the curve.
  const auto p = params(30, 0.05, 8);
  const auto r = simulate_faof(p, 2000, stats::Rng(17));
  EXPECT_GE(r.flushing_frequency,
            faof_flushing_frequency_bound(p) * 0.999);
}

TEST(PolicyComparison, FaofInterruptsLessOftenOnCommonRandomNumbers) {
  // Same seed => common random numbers for a sharp comparison.
  for (double alpha : {0.007, 2.0}) {
    const auto p = params(50, alpha);
    const auto fof = simulate_fof(p, 1500, stats::Rng(99));
    const auto faof = simulate_faof(p, 1500, stats::Rng(99));
    EXPECT_LT(faof.interruption_rate, fof.interruption_rate)
        << "alpha=" << alpha;
  }
}

TEST(PolicyComparison, FaofStoppingTimeBelowFof) {
  const auto p = params(40, 0.02, 8);
  const auto fof = simulate_fof(p, 1500, stats::Rng(7));
  const auto faof = simulate_faof(p, 1500, stats::Rng(7));
  EXPECT_LT(faof.stopping_time.mean(), fof.stopping_time.mean());
}

TEST(FlushSim, ArrivalAccountingConsistent) {
  const auto p = params(25, 0.1, 4);
  const auto r = simulate_faof(p, 500, stats::Rng(21));
  // Every cycle flushes P buffers.
  EXPECT_EQ(r.total_flushes, 500u * 4u);
  EXPECT_GT(r.total_arrivals, 0u);
  EXPECT_GT(r.simulated_time, 0.0);
}

TEST(FlushSim, DeterministicGivenSeed) {
  const auto p = params(25, 0.1, 4);
  const auto a = simulate_faof(p, 200, stats::Rng(5));
  const auto b = simulate_faof(p, 200, stats::Rng(5));
  EXPECT_DOUBLE_EQ(a.flushing_frequency, b.flushing_frequency);
  EXPECT_DOUBLE_EQ(a.stopping_time.mean(), b.stopping_time.mean());
}

TEST(FlushSim, RejectsZeroCycles) {
  EXPECT_THROW(simulate_fof(params(10, 1.0), 0, stats::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(simulate_faof(params(10, 1.0), 0, stats::Rng(1)),
               std::invalid_argument);
}

// ---- renewal (non-Poisson) robustness variants -----------------------------

TEST(RenewalSim, ExponentialGapsMatchPoissonPath) {
  // The renewal simulator with exponential gaps must agree with the native
  // Poisson simulator's analytics.
  const auto p = params(40, 0.05, 8);
  stats::Exponential gap(0.05);
  const auto r = simulate_fof_renewal(p, 2000, gap, stats::Rng(31));
  EXPECT_NEAR(r.stopping_time.mean(), fof_expected_stopping_time(p),
              4 * r.stopping_time.std_error());
  const double formula = fof_flushing_frequency(p);
  EXPECT_NEAR(r.flushing_frequency, formula, 0.05 * formula);
}

TEST(RenewalSim, FaofAdvantageSurvivesBurstyArrivals) {
  // Hyperexponential gaps (CV ~ 2): the paper's Poisson assumption broken;
  // FAOF still interrupts the program less often than FOF.
  const auto p = params(40, 0.05, 8);
  // A fast phase (mean 4) mixed with a slow phase (mean 60): CV well
  // above 1.  Both policies see the identical renewal process.
  stats::Hyperexponential gap(0.4, 1.0 / 4.0, 1.0 / 60.0);
  ASSERT_NEAR(gap.mean(), 0.4 * 4.0 + 0.6 * 60.0, 1e-9);
  const auto fof = simulate_fof_renewal(p, 1200, gap, stats::Rng(32));
  const auto faof = simulate_faof_renewal(p, 1200, gap, stats::Rng(32));
  EXPECT_LT(faof.interruption_rate, fof.interruption_rate);
  EXPECT_LT(faof.flushing_frequency, fof.flushing_frequency * 1.5);
}

TEST(RenewalSim, BurstyStoppingTimeMoreVariable) {
  const auto p = params(40, 0.05, 1);
  stats::Exponential smooth(0.05);
  stats::Hyperexponential bursty(0.1, 0.05 * 8, 0.05 * 0.55);
  const auto s = simulate_fof_renewal(p, 1500, smooth, stats::Rng(33));
  const auto b = simulate_fof_renewal(p, 1500, bursty, stats::Rng(33));
  EXPECT_GT(b.stopping_time.cov(), s.stopping_time.cov());
}

TEST(RenewalSim, RejectsZeroCycles) {
  stats::Exponential gap(1.0);
  EXPECT_THROW(simulate_fof_renewal(params(10, 1.0), 0, gap, stats::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(simulate_faof_renewal(params(10, 1.0), 0, gap, stats::Rng(1)),
               std::invalid_argument);
}

// Property sweep over the Figure 5 grid: simulation reproduces the
// analytic FOF curve within 10% everywhere.
class Fig5SimSweep : public ::testing::TestWithParam<double> {};

TEST_P(Fig5SimSweep, FofSimTracksFormulaAcrossCapacities) {
  const double alpha = GetParam();
  for (unsigned l = 10; l <= 100; l += 30) {
    const auto p = params(l, alpha);
    const auto r = simulate_fof(p, 800, stats::Rng(1000 + l));
    const double formula = fof_flushing_frequency(p);
    EXPECT_NEAR(r.flushing_frequency, formula, 0.1 * formula)
        << "alpha=" << alpha << " l=" << l;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperRates, Fig5SimSweep,
                         ::testing::Values(0.0008, 0.007, 2.0));

}  // namespace
}  // namespace prism::picl
