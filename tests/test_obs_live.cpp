// The live telemetry plane (DESIGN.md §14): HealthSnapshot conservation
// arithmetic, the HealthBoard seqlock (readers never see a torn snapshot),
// the FlightRecorder ring (order, wraparound, concurrent producers, JSON
// dump), the Prometheus text exposition (golden strings: names, HELP/TYPE
// lines, label escaping, cumulative buckets), the health JSON schema, and
// the TelemetrySampler (deltas, final sample on stop).  The registry
// torn-read stress lives here too — run this binary under
// -DPRISM_SANITIZE=thread for the TSan pass.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_check.hpp"
#include "obs/live/expo.hpp"
#include "obs/live/flight.hpp"
#include "obs/live/health.hpp"
#include "obs/live/sampler.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"

namespace prism {
namespace {

using obs::live::CounterHealth;
using obs::live::HealthBoard;
using obs::live::HealthSnapshot;
using obs::live::StageHealth;
using obs::live::TelemetrySampler;

// ---- HealthSnapshot ----------------------------------------------------------

TEST(HealthSnapshot, AddStageDerivesInFlightFromTheIdentity) {
  HealthSnapshot s;
  const StageHealth* row = s.add_stage("lis", 100, 70, 10);
  ASSERT_NE(row, nullptr);
  EXPECT_STREQ(row->name, "lis");
  EXPECT_EQ(row->in_flight, 20u);
  EXPECT_EQ(row->torn, 0u);
  EXPECT_TRUE(row->conserved());
  EXPECT_TRUE(s.conserved());
  EXPECT_EQ(s.stage("lis"), row);
  EXPECT_EQ(s.stage("nope"), nullptr);
}

TEST(HealthSnapshot, NegativeResidueLatchesTornInsteadOfWrapping) {
  HealthSnapshot s;
  // completed + lost > admitted: only possible when the collector read the
  // counters in the wrong order.
  const StageHealth* row = s.add_stage("ism", 5, 4, 2);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->in_flight, 0u);
  EXPECT_EQ(row->torn, 1u);
  EXPECT_FALSE(row->conserved());
  EXPECT_FALSE(s.conserved());
}

TEST(HealthSnapshot, StageTableOverflowReturnsNull) {
  HealthSnapshot s;
  for (std::uint32_t i = 0; i < HealthSnapshot::kMaxStages; ++i)
    ASSERT_NE(s.add_stage("s" + std::to_string(i), i, i, 0), nullptr);
  EXPECT_EQ(s.add_stage("one-too-many", 1, 0, 0), nullptr);
  EXPECT_EQ(s.stage_count, HealthSnapshot::kMaxStages);
}

TEST(HealthSnapshot, LongStageNamesTruncateNulTerminated) {
  HealthSnapshot s;
  const StageHealth* row =
      s.add_stage("a-very-long-stage-name-indeed", 1, 1, 0);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(std::strlen(row->name), sizeof row->name - 1);
  EXPECT_EQ(std::string_view(row->name), "a-very-long-sta");
}

// ---- HealthBoard seqlock -----------------------------------------------------

TEST(HealthBoard, ReadBeforeAnyPublishReturnsFalse) {
  HealthBoard b;
  HealthSnapshot out;
  EXPECT_FALSE(b.read(out));
  EXPECT_EQ(b.published(), 0u);
}

TEST(HealthBoard, RoundTripsTheLatestSnapshot) {
  HealthBoard b;
  HealthSnapshot in;
  in.seq = 7;
  in.add_stage("lis", 42, 40, 1);
  in.records_lost_send = 1;
  b.publish(in);
  in.seq = 8;
  b.publish(in);

  HealthSnapshot out;
  ASSERT_TRUE(b.read(out));
  EXPECT_EQ(out.seq, 8u);
  EXPECT_EQ(out.version, obs::live::kHealthSnapshotVersion);
  ASSERT_NE(out.stage("lis"), nullptr);
  EXPECT_EQ(out.stage("lis")->admitted, 42u);
  EXPECT_EQ(out.stage("lis")->in_flight, 1u);
  EXPECT_EQ(out.records_lost_send, 1u);
  EXPECT_EQ(b.published(), 2u);
}

// Writer publishes self-consistent snapshots as fast as it can; readers must
// never observe a mixture of two publishes.  Every field in the payload is a
// function of seq, so one cross-check per read proves atomicity.
TEST(HealthBoard, ConcurrentReadersNeverSeeATornSnapshot) {
  HealthBoard b;
  std::atomic<bool> stop{false};
  constexpr int kReaders = 3;

  std::thread writer([&] {
    HealthSnapshot s;
    for (std::uint64_t i = 1; !stop.load(std::memory_order_relaxed); ++i) {
      s.seq = i;
      s.stage_count = 0;
      s.add_stage("a", i * 3, i * 2, i);       // in_flight == 0
      s.add_stage("b", i * 7, i * 5, 0);       // in_flight == 2i
      s.records_lost_send = i * 11;
      s.alloc_bytes = i * 13;
      b.publish(s);
    }
  });

  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> reads{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      HealthSnapshot out;
      std::uint64_t last_seq = 0;
      while (reads.fetch_add(1, std::memory_order_relaxed) < 20000) {
        if (!b.read(out)) continue;
        const std::uint64_t i = out.seq;
        ASSERT_GE(i, last_seq);  // publishes are monotone
        last_seq = i;
        const StageHealth* a = out.stage("a");
        const StageHealth* bb = out.stage("b");
        ASSERT_NE(a, nullptr);
        ASSERT_NE(bb, nullptr);
        ASSERT_EQ(a->admitted, i * 3);
        ASSERT_EQ(a->completed, i * 2);
        ASSERT_EQ(a->lost, i);
        ASSERT_EQ(bb->admitted, i * 7);
        ASSERT_EQ(bb->in_flight, i * 2);
        ASSERT_EQ(out.records_lost_send, i * 11);
        ASSERT_EQ(out.alloc_bytes, i * 13);
        ASSERT_TRUE(out.conserved());
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

// ---- FlightRecorder ----------------------------------------------------------

#if PRISM_OBS_ENABLED

using obs::live::FlightEvent;
using obs::live::FlightRecorder;

TEST(FlightRecorder, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(FlightRecorder(0), std::invalid_argument);
  EXPECT_THROW(FlightRecorder(3), std::invalid_argument);
  EXPECT_NO_THROW(FlightRecorder(8));
}

TEST(FlightRecorder, TailReturnsEventsOldestFirst) {
  FlightRecorder rec(16);
  rec.record("fault", "crash@tp_send", 2, 0);
  rec.record("send_loss", "retry_exhausted", 1, 5);
  rec.record("wire_loss", "frame_corrupt", 0, 3);
  EXPECT_EQ(rec.recorded(), 3u);

  const auto events = rec.tail();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].category, "fault");
  EXPECT_STREQ(events[0].detail, "crash@tp_send");
  EXPECT_EQ(events[0].node, 2u);
  EXPECT_STREQ(events[1].category, "send_loss");
  EXPECT_EQ(events[1].count, 5u);
  EXPECT_STREQ(events[2].category, "wire_loss");
  // Timestamps are monotone within one thread.
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
  EXPECT_LE(events[1].t_ns, events[2].t_ns);

  // tail(max) keeps the most recent events.
  const auto last2 = rec.tail(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_STREQ(last2[0].category, "send_loss");
  EXPECT_STREQ(last2[1].category, "wire_loss");
}

TEST(FlightRecorder, WrapsAroundKeepingTheMostRecentCapacityEvents) {
  FlightRecorder rec(8);
  for (int i = 0; i < 20; ++i)
    rec.record("fault", std::to_string(i), 0, static_cast<std::uint64_t>(i));
  EXPECT_EQ(rec.recorded(), 20u);
  const auto events = rec.tail();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].count, 12 + i);  // 12..19, oldest first
}

TEST(FlightRecorder, CategoryQueriesSumCountsAndCountEvents) {
  FlightRecorder rec(16);
  rec.record("wire_loss", "a", 0, 3);
  rec.record("wire_loss", "b", 1, 4);
  rec.record("lis_crash", "tp_send", 2, 1);
  EXPECT_EQ(rec.count_in_category("wire_loss"), 7u);
  EXPECT_EQ(rec.events_in_category("wire_loss"), 2u);
  EXPECT_EQ(rec.events_in_category("lis_crash"), 1u);
  EXPECT_EQ(rec.count_in_category("nothing"), 0u);
}

TEST(FlightRecorder, ResetHidesOlderEvents) {
  FlightRecorder rec(16);
  rec.record("fault", "before", 0, 0);
  rec.reset();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.tail().empty());
  rec.record("fault", "after", 0, 0);
  const auto events = rec.tail();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].detail, "after");
}

TEST(FlightRecorder, LongNamesTruncateInsideTheFixedSlot) {
  FlightRecorder rec(8);
  rec.record("category-name-much-too-long-to-fit",
             "detail-string-also-much-too-long-to-fit", 9, 1);
  const auto events = rec.tail();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::strlen(events[0].category),
            sizeof(FlightEvent{}.category) - 1);
  EXPECT_EQ(std::strlen(events[0].detail), sizeof(FlightEvent{}.detail) - 1);
}

TEST(FlightRecorder, DumpJsonIsValidAndCarriesTheEvents) {
  FlightRecorder rec(16);
  rec.record("stream_corrupt", "needs\"escaping\\here", 3, 0);
  rec.record("retry", "tp_send", 1, 2);
  const std::string json = rec.dump_json();
  const auto doc = obs::jsonlite::parse(json);
  ASSERT_TRUE(doc.has_value()) << json;
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->find("recorded")->num, 2);
  EXPECT_EQ(doc->find("capacity")->num, 16);
  const auto* events = doc->find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->arr.size(), 2u);
  EXPECT_EQ(events->arr[0].find("category")->str, "stream_corrupt");
  EXPECT_EQ(events->arr[0].find("detail")->str, "needs\"escaping\\here");
  EXPECT_EQ(events->arr[1].find("count")->num, 2);
  EXPECT_EQ(events->arr[1].find("node")->num, 1);
}

// Many producers hammer one ring; the dump must stay internally consistent
// (every kept slot is a complete event, never a splice of two).
TEST(FlightRecorder, ConcurrentProducersNeverTearASlot) {
  FlightRecorder rec(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&rec, t] {
      const std::string cat = "cat" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i)
        rec.record(cat, "detail", static_cast<std::uint32_t>(t),
                   static_cast<std::uint64_t>(t + 1));
      });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& ev : rec.tail()) {
        // category determines both node and count: a torn slot would break
        // the correspondence.
        ASSERT_EQ(std::string_view(ev.category).substr(0, 3), "cat");
        const unsigned t = static_cast<unsigned>(ev.category[3] - '0');
        ASSERT_LT(t, static_cast<unsigned>(kThreads));
        ASSERT_EQ(ev.node, t);
        ASSERT_EQ(ev.count, t + 1);
      }
    }
  });
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(rec.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

#endif  // PRISM_OBS_ENABLED

// ---- Prometheus exposition ---------------------------------------------------

TEST(Exposition, PrometheusNameSanitizes) {
  using obs::live::prometheus_name;
  EXPECT_EQ(prometheus_name("ism.records_received"), "ism_records_received");
  EXPECT_EQ(prometheus_name("lis/flush-time"), "lis_flush_time");
  EXPECT_EQ(prometheus_name("ok_name:subsystem"), "ok_name:subsystem");
  EXPECT_EQ(prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(prometheus_name(""), "");
}

TEST(Exposition, EscapeLabelValue) {
  using obs::live::escape_label_value;
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
}

// Golden test over a hand-built snapshot: the exposition must be byte-stable
// (scrapers and the CI gate parse it), so this string is the contract.
TEST(Exposition, GoldenRegistryFamilies) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"ism.records", 12});
  snap.gauges.push_back({"queue.depth", -3});
  obs::HistogramSample h;
  h.name = "flush.ns";
  h.count = 6;
  h.sum = 250;
  h.bounds = {10, 100};
  h.buckets = {1, 3, 2};  // last = overflow
  snap.histograms.push_back(h);

  const std::string expo = obs::live::prometheus_exposition(snap);
  const std::string expected =
      "# HELP prism_ism_records_total registry counter ism.records\n"
      "# TYPE prism_ism_records_total counter\n"
      "prism_ism_records_total 12\n"
      "# HELP prism_queue_depth registry gauge queue.depth\n"
      "# TYPE prism_queue_depth gauge\n"
      "prism_queue_depth -3\n"
      "# HELP prism_flush_ns registry histogram flush.ns\n"
      "# TYPE prism_flush_ns histogram\n"
      "prism_flush_ns_bucket{le=\"10\"} 1\n"
      "prism_flush_ns_bucket{le=\"100\"} 4\n"
      "prism_flush_ns_bucket{le=\"+Inf\"} 6\n"
      "prism_flush_ns_sum 250\n"
      "prism_flush_ns_count 6\n";
  EXPECT_EQ(expo, expected);
}

TEST(Exposition, GoldenHealthBlock) {
  obs::MetricsSnapshot empty;
  HealthSnapshot hs;
  hs.seq = 4;
  hs.t_wall_ns = 1000;
  hs.add_stage("lis", 10, 7, 1);
  hs.lises_dead = 1;
  hs.records_lost_send = 1;
  hs.degraded = 1;
  hs.alloc_count = 5;
  hs.alloc_bytes = 320;
  hs.flight_events = 2;

  const std::string expo =
      obs::live::prometheus_exposition(empty, &hs, /*now_ns=*/1500);
  const std::string expected =
      "# HELP prism_pipeline_records pipeline conservation ledger per stage\n"
      "# TYPE prism_pipeline_records gauge\n"
      "prism_pipeline_records{stage=\"lis\",state=\"admitted\"} 10\n"
      "prism_pipeline_records{stage=\"lis\",state=\"completed\"} 7\n"
      "prism_pipeline_records{stage=\"lis\",state=\"lost\"} 1\n"
      "prism_pipeline_records{stage=\"lis\",state=\"in_flight\"} 2\n"
      "prism_pipeline_records{stage=\"lis\",state=\"refused\"} 0\n"
      "# HELP prism_pipeline_conserved 1 when admitted == completed + lost + "
      "in_flight\n"
      "# TYPE prism_pipeline_conserved gauge\n"
      "prism_pipeline_conserved{stage=\"lis\"} 1\n"
      "# HELP prism_degradation degradation ledger (DegradationReport "
      "mirror)\n"
      "# TYPE prism_degradation gauge\n"
      "prism_degradation{kind=\"lises_dead\"} 1\n"
      "prism_degradation{kind=\"tools_failed\"} 0\n"
      "prism_degradation{kind=\"records_lost_send\"} 1\n"
      "prism_degradation{kind=\"records_lost_dead\"} 0\n"
      "prism_degradation{kind=\"records_lost_wire\"} 0\n"
      "prism_degradation{kind=\"control_dropped\"} 0\n"
      "prism_degradation{kind=\"holdback_expired\"} 0\n"
      "# HELP prism_degraded 1 when any degradation field is nonzero\n"
      "# TYPE prism_degraded gauge\n"
      "prism_degraded 1\n"
      "# HELP prism_alloc_bytes_total bytes allocated (prof interposition)\n"
      "# TYPE prism_alloc_bytes_total counter\n"
      "prism_alloc_bytes_total 320\n"
      "# HELP prism_alloc_count_total allocations (prof interposition)\n"
      "# TYPE prism_alloc_count_total counter\n"
      "prism_alloc_count_total 5\n"
      "# HELP prism_flight_events_total flight-recorder events recorded\n"
      "# TYPE prism_flight_events_total counter\n"
      "prism_flight_events_total 2\n"
      "# HELP prism_health_sample_seq sample number of this snapshot\n"
      "# TYPE prism_health_sample_seq counter\n"
      "prism_health_sample_seq 4\n"
      "# HELP prism_health_sample_age_ns steady-clock age of this snapshot\n"
      "# TYPE prism_health_sample_age_ns gauge\n"
      "prism_health_sample_age_ns 500\n";
  EXPECT_EQ(expo, expected);
}

TEST(Exposition, SampleAgeClampsAtZero) {
  obs::MetricsSnapshot empty;
  HealthSnapshot hs;
  hs.t_wall_ns = 2000;
  const std::string expo =
      obs::live::prometheus_exposition(empty, &hs, /*now_ns=*/1000);
  EXPECT_NE(expo.find("prism_health_sample_age_ns 0\n"), std::string::npos);
}

TEST(Exposition, HealthJsonIsValidAndComplete) {
  HealthSnapshot hs;
  hs.seq = 9;
  hs.add_stage("lis", 20, 15, 2);
  hs.add_stage("ism", 15, 15, 0);
  hs.records_lost_send = 2;
  hs.degraded = 1;
  hs.counter_count = 1;
  HealthSnapshot::copy_name(hs.counters[0].name, sizeof hs.counters[0].name,
                            "ism.records");
  hs.counters[0].value = 15;
  hs.counters[0].delta = 5;

  const std::string json = obs::live::health_json(hs);
  const auto doc = obs::jsonlite::parse(json);
  ASSERT_TRUE(doc.has_value()) << json;
  EXPECT_EQ(doc->find("version")->num, obs::live::kHealthSnapshotVersion);
  EXPECT_EQ(doc->find("seq")->num, 9);
  EXPECT_TRUE(doc->find("degraded")->b);
  EXPECT_EQ(doc->find("degradation")->find("records_lost_send")->num, 2);
  const auto* stages = doc->find("stages");
  ASSERT_TRUE(stages->is_array());
  ASSERT_EQ(stages->arr.size(), 2u);
  EXPECT_EQ(stages->arr[0].find("name")->str, "lis");
  EXPECT_EQ(stages->arr[0].find("in_flight")->num, 3);
  EXPECT_TRUE(stages->arr[0].find("conserved")->b);
  const auto* counters = doc->find("counters");
  ASSERT_TRUE(counters->is_array());
  ASSERT_EQ(counters->arr.size(), 1u);
  EXPECT_EQ(counters->arr[0].find("name")->str, "ism.records");
  EXPECT_EQ(counters->arr[0].find("delta")->num, 5);
}

// ---- TelemetrySampler --------------------------------------------------------

TEST(TelemetrySampler, RejectsZeroPeriod) {
  EXPECT_THROW(TelemetrySampler({.period_ms = 0}, nullptr),
               std::invalid_argument);
}

TEST(TelemetrySampler, CollectorFillsStagesAndDegradedIsDerived) {
  TelemetrySampler sampler({.period_ms = 60'000, .include_registry = false},
                           [](HealthSnapshot& s) {
                             s.add_stage("lis", 10, 8, 1);
                             s.records_lost_wire = 1;
                           });
  sampler.sample_now();
  HealthSnapshot hs;
  ASSERT_TRUE(sampler.read(hs));
  EXPECT_GE(hs.seq, 1u);
  EXPECT_GT(hs.t_wall_ns, 0u);
  ASSERT_NE(hs.stage("lis"), nullptr);
  EXPECT_EQ(hs.stage("lis")->in_flight, 1u);
  EXPECT_EQ(hs.degraded, 1u);  // derived from records_lost_wire
  EXPECT_TRUE(hs.conserved());
}

TEST(TelemetrySampler, RegistryCountersCarryDeltas) {
  auto& c = obs::Registry::instance().counter("live_test.delta_counter");
  c.reset();
  c.add(5);
  TelemetrySampler sampler({.period_ms = 60'000}, nullptr);
  sampler.sample_now();
  HealthSnapshot hs;
  ASSERT_TRUE(sampler.read(hs));
  const CounterHealth* row = hs.counter("live_test.delta_counter");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->value, 5u);
  EXPECT_EQ(row->delta, 5u);  // first sample: delta == value

  c.add(3);
  sampler.sample_now();
  ASSERT_TRUE(sampler.read(hs));
  row = hs.counter("live_test.delta_counter");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->value, 8u);
  EXPECT_EQ(row->delta, 3u);
}

TEST(TelemetrySampler, StopPublishesAFinalSample) {
  // Period far longer than the test: the only samples are the final one
  // stop() forces (plus any sample_now calls).
  TelemetrySampler sampler({.period_ms = 60'000, .include_registry = false},
                           nullptr);
  sampler.stop();
  EXPECT_GE(sampler.samples(), 1u);
  HealthSnapshot hs;
  EXPECT_TRUE(sampler.read(hs));
  sampler.stop();  // idempotent
}

TEST(TelemetrySampler, PeriodicSamplesAdvanceTheSeq) {
  TelemetrySampler sampler({.period_ms = 1, .include_registry = false},
                           nullptr);
  HealthSnapshot hs;
  for (int i = 0; i < 200 && sampler.samples() < 3; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  sampler.stop();
  EXPECT_GE(sampler.samples(), 3u);
  ASSERT_TRUE(sampler.read(hs));
  EXPECT_EQ(hs.seq, sampler.samples());
}

// ---- report.cpp satellite: prof + flight planes ------------------------------

TEST(ReportOptions, TextReportAppendsProfAndFlight) {
  obs::MetricsSnapshot snap;
  obs::ReportOptions opts;
  opts.include_prof = true;
  opts.flight_tail = 4;
#if PRISM_OBS_ENABLED
  FlightRecorder::instance().reset();
  FlightRecorder::instance().record("fault", "report_test", 1, 2);
#endif
  const std::string text = obs::text_report(snap, opts);
  EXPECT_NE(text.find("prof:"), std::string::npos);
#if PRISM_OBS_ENABLED
  EXPECT_NE(text.find("flight: recorded=1"), std::string::npos);
  EXPECT_NE(text.find("report_test"), std::string::npos);
#endif
}

TEST(ReportOptions, JsonReportSplicesExtraKeysAndStaysValid) {
  obs::MetricsSnapshot snap;
  obs::ReportOptions opts;
  opts.include_prof = true;
  opts.flight_tail = 4;
  const std::string json = obs::json_report(snap, opts);
  const auto doc = obs::jsonlite::parse(json);
  ASSERT_TRUE(doc.has_value()) << json;
  ASSERT_NE(doc->find("prof"), nullptr);
  EXPECT_NE(doc->find("prof")->find("allocs"), nullptr);
#if PRISM_OBS_ENABLED
  ASSERT_NE(doc->find("flight"), nullptr);
  EXPECT_NE(doc->find("flight")->find("events"), nullptr);
#endif
  // Base keys survive the splice untouched.
  EXPECT_NE(doc->find("counters"), nullptr);
  EXPECT_NE(doc->find("histograms"), nullptr);
}

// ---- Registry torn-read stress (satellite) -----------------------------------
// Run under -DPRISM_SANITIZE=thread: record() and snapshot() race by design,
// and the contract is (a) no data race (all atomics), (b) count <= sum of
// buckets in every snapshot (record orders bucket-before-count), (c) counter
// sums are monotone non-decreasing across snapshots.

TEST(RegistryTornRead, HistogramSnapshotNeverUndercountsBuckets) {
  auto& reg = obs::Registry::instance();
  auto& h = reg.histogram("live_test.torn_hist", {1.0, 2.0, 4.0, 8.0});
  h.reset();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&h, &stop, t] {
      double v = 0.5 * (t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        h.record(v);
        v = v > 16 ? 0.25 : v * 1.7;
      }
    });
  }
  for (int i = 0; i < 300; ++i) {
    // Read order matters and mirrors Registry::snapshot(): count first
    // (acquire), buckets second — every counted sample is visible in a
    // bucket, so count <= sum(buckets) even mid-record.
    const std::uint64_t count = h.count();
    const auto buckets = h.bucket_counts();
    std::uint64_t sum = 0;
    for (const auto b : buckets) sum += b;
    ASSERT_LE(count, sum) << "snapshot " << i;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
  // Quiescent: the identity is exact.
  std::uint64_t sum = 0;
  for (const auto b : h.bucket_counts()) sum += b;
  EXPECT_EQ(h.count(), sum);
}

TEST(RegistryTornRead, CounterScrapesAreMonotoneUnderConcurrentAdds) {
  auto& reg = obs::Registry::instance();
  auto& c = reg.counter("live_test.torn_counter");
  c.reset();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&c, &stop] {
      while (!stop.load(std::memory_order_relaxed)) c.add(1);
    });
  }
  std::uint64_t last = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = c.value();
    ASSERT_GE(v, last);
    last = v;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
}

TEST(RegistryTornRead, FullSnapshotUnderConcurrentRecordingIsConsistent) {
  auto& reg = obs::Registry::instance();
  auto& h = reg.histogram("live_test.torn_snap_hist", {10.0, 100.0});
  auto& c = reg.counter("live_test.torn_snap_counter");
  h.reset();
  c.reset();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    double v = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      h.record(v);
      c.add(2);
      v = v > 500 ? 1 : v * 3;
    }
  });
  std::uint64_t last_counter = 0;
  for (int i = 0; i < 200; ++i) {
    const auto snap = reg.snapshot();
    const auto* hist = snap.histogram("live_test.torn_snap_hist");
    ASSERT_NE(hist, nullptr);
    std::uint64_t sum = 0;
    for (const auto b : hist->buckets) sum += b;
    ASSERT_LE(hist->count, sum);
    const auto* counter = snap.counter("live_test.torn_snap_counter");
    ASSERT_NE(counter, nullptr);
    ASSERT_GE(counter->value, last_counter);
    last_counter = counter->value;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

}  // namespace
}  // namespace prism
