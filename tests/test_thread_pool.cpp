// Worker pool: task execution, drain-on-wait, exception propagation, and
// clean shutdown.  Runs under `ctest -L sanitize` with -DPRISM_SANITIZE=
// thread to check the synchronization under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "sim/thread_pool.hpp"

namespace prism::sim {
namespace {

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::default_threads());
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  std::atomic<int> sum{0};
  {
    ThreadPool pool(4);
    for (int i = 1; i <= 100; ++i)
      pool.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
    pool.wait();
    EXPECT_EQ(sum.load(), 5050);
  }
}

TEST(ThreadPool, WaitMakesResultsVisibleWithoutAtomics) {
  // wait() is a synchronization point: plain writes made by tasks must be
  // visible to the caller afterwards.
  std::vector<int> results(64, 0);
  ThreadPool pool(4);
  for (int i = 0; i < 64; ++i)
    pool.submit([&results, i] { results[static_cast<std::size_t>(i)] = i + 1; });
  pool.wait();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], i + 1);
}

TEST(ThreadPool, PropagatesFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  for (int i = 0; i < 16; ++i)
    pool.submit([&completed, i] {
      if (i == 5) throw std::runtime_error("replication 5 failed");
      completed.fetch_add(1, std::memory_order_relaxed);
    });
  EXPECT_THROW(
      {
        try {
          pool.wait();
        } catch (const std::runtime_error& err) {
          EXPECT_STREQ(err.what(), "replication 5 failed");
          throw;
        }
      },
      std::runtime_error);
  // The pool drained the remaining tasks and stays usable.
  EXPECT_EQ(completed.load(), 15);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait();  // no stale exception resurfaces
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorDrainsOutstandingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 32; ++i)
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    // No wait(): the destructor must still run everything before joining.
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, StressManySmallTasks) {
  // TSan-friendly churn across several pool lifetimes.
  for (int round = 0; round < 4; ++round) {
    std::atomic<std::uint64_t> sum{0};
    ThreadPool pool(4);
    for (std::uint64_t i = 0; i < 2000; ++i)
      pool.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
    pool.wait();
    EXPECT_EQ(sum.load(), 2000ull * 1999ull / 2);
  }
}

}  // namespace
}  // namespace prism::sim
