// SPI event-action machine: the specification language (lexer/parser) and
// the runtime machine, including integration with a live ISM.
#include <gtest/gtest.h>

#include <memory>

#include "core/environment.hpp"
#include "spi/machine.hpp"
#include "spi/spec.hpp"
#include "stats/rng.hpp"

namespace prism::spi {
namespace {

trace::EventRecord ev(trace::EventKind kind, std::uint32_t node = 0,
                      std::uint16_t tag = 0, std::uint64_t payload = 0) {
  trace::EventRecord r;
  r.kind = kind;
  r.node = node;
  r.tag = tag;
  r.payload = payload;
  return r;
}

// ---- parser ---------------------------------------------------------------

TEST(SpecParser, SingleRule) {
  auto rules = parse_spec("rule r1: when kind = send do count");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].name, "r1");
  EXPECT_EQ(rules[0].action, ActionKind::kCount);
  EXPECT_TRUE(rules[0].when(ev(trace::EventKind::kSend)));
  EXPECT_FALSE(rules[0].when(ev(trace::EventKind::kRecv)));
}

TEST(SpecParser, AllComparisonOperators) {
  auto rules = parse_spec(
      "rule eq:  when payload = 5  do count\n"
      "rule ne:  when payload != 5 do count\n"
      "rule lt:  when payload < 5  do count\n"
      "rule le:  when payload <= 5 do count\n"
      "rule gt:  when payload > 5  do count\n"
      "rule ge:  when payload >= 5 do count\n");
  ASSERT_EQ(rules.size(), 6u);
  auto at = [&](std::uint64_t v) {
    std::vector<bool> hits;
    for (auto& r : rules) hits.push_back(r.when(ev(trace::EventKind::kUserEvent, 0, 0, v)));
    return hits;
  };
  EXPECT_EQ(at(5), (std::vector<bool>{true, false, false, true, false, true}));
  EXPECT_EQ(at(4), (std::vector<bool>{false, true, true, true, false, false}));
  EXPECT_EQ(at(6), (std::vector<bool>{false, true, false, false, true, true}));
}

TEST(SpecParser, BooleanCombinatorsAndPrecedence) {
  // && binds tighter than ||.
  auto rules = parse_spec(
      "rule r: when kind = send && node = 1 || kind = recv do count");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_TRUE(rules[0].when(ev(trace::EventKind::kSend, 1)));
  EXPECT_FALSE(rules[0].when(ev(trace::EventKind::kSend, 2)));
  EXPECT_TRUE(rules[0].when(ev(trace::EventKind::kRecv, 2)));
}

TEST(SpecParser, ParensAndNegation) {
  auto rules = parse_spec(
      "rule r: when !(kind = send || kind = recv) && node = 0 do count");
  EXPECT_TRUE(rules[0].when(ev(trace::EventKind::kUserEvent, 0)));
  EXPECT_FALSE(rules[0].when(ev(trace::EventKind::kSend, 0)));
  EXPECT_FALSE(rules[0].when(ev(trace::EventKind::kUserEvent, 1)));
}

TEST(SpecParser, SampleValueField) {
  auto rules = parse_spec("rule hot: when kind = sample && value > 0.75 do trigger");
  auto hot = ev(trace::EventKind::kSample, 0, 3, trace::pack_double(0.9));
  auto cold = ev(trace::EventKind::kSample, 0, 3, trace::pack_double(0.5));
  EXPECT_TRUE(rules[0].when(hot));
  EXPECT_FALSE(rules[0].when(cold));
  EXPECT_EQ(rules[0].action, ActionKind::kTrigger);
}

TEST(SpecParser, MarkActionWithLabel) {
  auto rules = parse_spec("rule m: when node = 3 do mark suspicious");
  EXPECT_EQ(rules[0].action, ActionKind::kMark);
  EXPECT_EQ(rules[0].mark_label, "suspicious");
}

TEST(SpecParser, CommentsAndMultipleRules) {
  auto rules = parse_spec(
      "# watch the message plane\n"
      "rule sends: when kind = send do count   # every send\n"
      "rule recvs: when kind = recv do count\n");
  EXPECT_EQ(rules.size(), 2u);
}

TEST(SpecParser, ErrorsCarryLineNumbers) {
  try {
    parse_spec("rule ok: when kind = send do count\nrule bad: when bogus = 1 do count");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(SpecParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_spec("rule r when kind = send do count"), SpecError);
  EXPECT_THROW(parse_spec("rule r: when kind = nosuchkind do count"), SpecError);
  EXPECT_THROW(parse_spec("rule r: when kind = send do explode"), SpecError);
  EXPECT_THROW(parse_spec("rule r: when kind = send do"), SpecError);
  EXPECT_THROW(parse_spec("rule r: when (kind = send do count"), SpecError);
  EXPECT_THROW(parse_spec("rule r: when kind > do count"), SpecError);
  EXPECT_THROW(parse_spec("@"), SpecError);
}

TEST(SpecParser, OverflowingNumberLiteralIsASpecError) {
  // "1e999" overflows double; std::stod would leak a bare std::out_of_range
  // out of the lexer.  It must be a SpecError carrying the offending line.
  try {
    parse_spec(
        "rule ok: when kind = send do count\n"
        "rule hot: when value > 1e999 do count\n");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
  EXPECT_THROW(parse_spec("rule r: when value > 1.2.3 do count"), SpecError);
}

TEST(SpecParser, EmptySpecIsEmpty) {
  EXPECT_TRUE(parse_spec("").empty());
  EXPECT_TRUE(parse_spec("  # only a comment\n").empty());
}

TEST(SpecParser, NeverCrashesOnGarbage) {
  // Robustness: arbitrary byte soup must either parse or throw SpecError,
  // never crash or loop.
  stats::Rng rng(0xF00D);
  const std::string alphabet =
      "rule when do count trigger mark kind node = != < > ( ) ! && || "
      "send recv 0123456789 . \n # _abcxyz";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const std::size_t len = 1 + rng.next_below(120);
    for (std::size_t i = 0; i < len; ++i)
      text += alphabet[rng.next_below(alphabet.size())];
    try {
      auto rules = parse_spec(text);
      // If it parsed, the rules must be executable.
      for (auto& r : rules) {
        trace::EventRecord e;
        (void)r.when(e);
      }
    } catch (const SpecError&) {
      // expected for most garbage
    }
  }
  SUCCEED();
}

// ---- combinators -----------------------------------------------------------

TEST(Combinators, ComposeCorrectly) {
  auto p = p_and(match_kind(trace::EventKind::kSend),
                 p_or(match_node(1), payload_above(100)));
  EXPECT_TRUE(p(ev(trace::EventKind::kSend, 1, 0, 0)));
  EXPECT_TRUE(p(ev(trace::EventKind::kSend, 9, 0, 200)));
  EXPECT_FALSE(p(ev(trace::EventKind::kSend, 9, 0, 50)));
  EXPECT_FALSE(p(ev(trace::EventKind::kRecv, 1, 0, 200)));
  EXPECT_TRUE(p_not(match_tag(3))(ev(trace::EventKind::kSend, 0, 4)));
  EXPECT_TRUE(sample_value_above(0.5)(
      ev(trace::EventKind::kSample, 0, 0, trace::pack_double(0.6))));
}

// ---- machine ----------------------------------------------------------------

TEST(Machine, CountsMatches) {
  auto m = EventActionMachine::from_spec(
      "rule sends: when kind = send do count\n"
      "rule node1: when node = 1 do count\n");
  m.consume(ev(trace::EventKind::kSend, 1));
  m.consume(ev(trace::EventKind::kSend, 0));
  m.consume(ev(trace::EventKind::kRecv, 1));
  EXPECT_EQ(m.count("sends"), 2u);
  EXPECT_EQ(m.count("node1"), 2u);
  EXPECT_EQ(m.count("unknown"), 0u);
  EXPECT_EQ(m.events_seen(), 3u);
}

TEST(Machine, TriggersInvokeCallback) {
  std::vector<std::string> fired;
  auto m = EventActionMachine::from_spec(
      "rule hot: when kind = sample && value > 0.8 do trigger",
      [&](const std::string& rule, const trace::EventRecord&) {
        fired.push_back(rule);
      });
  m.consume(ev(trace::EventKind::kSample, 0, 0, trace::pack_double(0.9)));
  m.consume(ev(trace::EventKind::kSample, 0, 0, trace::pack_double(0.2)));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "hot");
  EXPECT_EQ(m.triggers("hot"), 1u);
}

TEST(Machine, MarkCapturesRecordsBounded) {
  auto m = EventActionMachine(
      {Rule{"m", match_node(2), ActionKind::kMark, "grabbed"}}, nullptr,
      /*max_marked=*/3);
  for (int i = 0; i < 10; ++i) m.consume(ev(trace::EventKind::kUserEvent, 2));
  EXPECT_EQ(m.marked("grabbed").size(), 3u);
  EXPECT_EQ(m.count("m"), 10u);
  EXPECT_TRUE(m.marked("nothing").empty());
}

TEST(Machine, RejectsInvalidRules) {
  EXPECT_THROW(EventActionMachine({Rule{"x", nullptr, ActionKind::kCount, ""}}),
               std::invalid_argument);
  EXPECT_THROW(
      EventActionMachine({Rule{"x", match_node(0), ActionKind::kMark, ""}}),
      std::invalid_argument);
}

TEST(Machine, ReportListsRules) {
  auto m = EventActionMachine::from_spec(
      "rule a: when kind = send do count\nrule b: when node = 1 do mark grab");
  m.consume(ev(trace::EventKind::kSend, 1));
  const auto rep = m.report();
  EXPECT_NE(rep.find("rule a"), std::string::npos);
  EXPECT_NE(rep.find("rule b"), std::string::npos);
  EXPECT_NE(rep.find("mark grab"), std::string::npos);
}

TEST(Machine, AttachesToLiveIsmAsTool) {
  core::EnvironmentConfig cfg;
  cfg.nodes = 2;
  cfg.lis_style = core::LisStyle::kForwarding;
  cfg.ism.causal_ordering = false;
  core::IntegratedEnvironment env(cfg);
  auto machine = std::make_shared<EventActionMachine>(parse_spec(
      "rule all: when seq >= 0 do count\n"
      "rule big: when payload > 500 do mark big_payloads"));
  env.attach_tool(machine);
  env.start();
  for (std::uint64_t s = 0; s < 20; ++s) {
    trace::EventRecord r;
    r.node = static_cast<std::uint32_t>(s % 2);
    r.seq = s / 2;
    r.payload = s * 100;
    env.record(r);
  }
  env.stop();
  EXPECT_EQ(machine->count("all"), 20u);
  EXPECT_EQ(machine->count("big"), 14u);  // payloads 600..1900
  EXPECT_EQ(machine->marked("big_payloads").size(), 14u);
}

}  // namespace
}  // namespace prism::spi
