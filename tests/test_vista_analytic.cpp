// Analytic approximation of the Vista ISM vs the simulation: bracketing
// accuracy, orderings, stability detection, and the straggle-excess moment.
#include <gtest/gtest.h>

#include <cmath>

#include "vista/analytic.hpp"

namespace prism::vista {
namespace {

VistaIsmParams base(double ia, bool miso = false) {
  VistaIsmParams p;
  p.horizon_ms = 30'000;
  p.mean_interarrival_ms = ia;
  p.miso = miso;
  return p;
}

double sim_latency(const VistaIsmParams& p, int reps = 5) {
  double acc = 0;
  for (int r = 0; r < reps; ++r)
    acc += run_vista_ism(p, stats::Rng(300 + r)).mean_processing_latency_ms;
  return acc / reps;
}

TEST(VistaAnalytic, BracketsSimulationAcrossRates) {
  for (double ia : {10.0, 30.0, 100.0}) {
    const auto p = base(ia);
    const auto a = predict_vista_ism(p);
    const double sim = sim_latency(p);
    EXPECT_TRUE(a.stable);
    EXPECT_NEAR(a.mean_latency_ms, sim, 0.6 * sim + 0.5)
        << "inter-arrival " << ia;
  }
}

TEST(VistaAnalytic, BufferPredictionTracksLittle) {
  for (double ia : {10.0, 30.0}) {
    const auto p = base(ia);
    const auto a = predict_vista_ism(p);
    double sim = 0;
    for (int r = 0; r < 5; ++r)
      sim += run_vista_ism(p, stats::Rng(400 + r)).mean_input_buffer_length / 5;
    EXPECT_NEAR(a.mean_input_buffer, sim, 0.6 * sim + 0.5);
  }
}

TEST(VistaAnalytic, PreservesSisoMisoOrdering) {
  const auto siso = predict_vista_ism(base(10.0, false));
  const auto miso = predict_vista_ism(base(10.0, true));
  EXPECT_LT(siso.mean_latency_ms, miso.mean_latency_ms);
  EXPECT_LT(siso.processor_utilization, miso.processor_utilization);
}

TEST(VistaAnalytic, LatencyMonotoneInRate) {
  double prev = 1e99;
  for (double ia : {10.0, 20.0, 50.0, 100.0}) {
    const auto a = predict_vista_ism(base(ia));
    EXPECT_LT(a.mean_latency_ms, prev);
    prev = a.mean_latency_ms;
  }
}

TEST(VistaAnalytic, DetectsOverload) {
  auto p = base(10.0, true);
  p.proc_service_mean_ms = 2.0;  // rho > 1 at aggregate rate 0.8/ms
  const auto a = predict_vista_ism(p);
  EXPECT_FALSE(a.stable);
  EXPECT_TRUE(std::isinf(a.mean_latency_ms));
}

TEST(VistaAnalytic, ExcessMomentProperties) {
  const auto p = base(10.0);
  // Decreasing in the gap; zero past the cap.
  const double m10 = straggle_excess_second_moment(p, 10.0);
  const double m100 = straggle_excess_second_moment(p, 100.0);
  const double m_cap = straggle_excess_second_moment(p, p.straggle_cap_ms);
  EXPECT_GT(m10, m100);
  EXPECT_GT(m100, 0.0);
  EXPECT_DOUBLE_EQ(m_cap, 0.0);
  // Gaps below the Pareto scale (the deterministic head strip) still order.
  EXPECT_GT(straggle_excess_second_moment(p, 2.0), m10);
}

TEST(VistaAnalytic, ExcessMomentMatchesMonteCarlo) {
  const auto p = base(10.0);
  const double gap = 25.0;
  stats::Rng rng(5);
  double acc = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double d = std::min(
        p.straggle_cap_ms,
        p.straggle_scale_ms *
            std::pow(rng.next_double_open(), -1.0 / p.straggle_shape));
    const double ex = d > gap ? d - gap : 0.0;
    acc += ex * ex;
  }
  const double mc = acc / n;
  EXPECT_NEAR(straggle_excess_second_moment(p, gap), mc, 0.05 * mc);
}

TEST(VistaAnalytic, HoldbackVanishesWithoutStragglers) {
  auto p = base(30.0);
  p.straggle_prob = 0.0;
  const auto a = predict_vista_ism(p);
  EXPECT_DOUBLE_EQ(a.mean_holdback_ms, 0.0);
}

}  // namespace
}  // namespace prism::vista
