// Simulated multicomputer: latency model, delivery, instrumentation hook.
#include <gtest/gtest.h>

#include <vector>

#include "workload/multicomputer.hpp"

namespace prism::workload {
namespace {

TEST(Multicomputer, DeliversAfterModeledLatency) {
  sim::Engine eng;
  Multicomputer mc(eng, 2, /*base=*/2.0, /*per_byte=*/0.01);
  std::vector<SimMessage> got;
  mc.set_receiver(1, [&](const SimMessage& m) { got.push_back(m); });
  mc.send(0, 1, 7, /*bytes=*/100);
  eng.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0].t_delivered, 3.0);  // 2 + 0.01*100
  EXPECT_EQ(got[0].from, 0u);
  EXPECT_EQ(got[0].tag, 7u);
  EXPECT_EQ(mc.messages_sent(), 1u);
  EXPECT_EQ(mc.messages_delivered(), 1u);
  EXPECT_EQ(mc.bytes_sent(), 100u);
}

TEST(Multicomputer, InstrumentationHookSeesSendAndRecv) {
  sim::Engine eng;
  Multicomputer mc(eng, 2, 1.0, 0.0);
  std::vector<trace::EventRecord> events;
  mc.set_instrumentation([&](const trace::EventRecord& r) {
    events.push_back(r);
  });
  mc.send(0, 1, 3, 64);
  eng.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, trace::EventKind::kSend);
  EXPECT_EQ(events[0].node, 0u);
  EXPECT_EQ(events[0].peer, 1u);
  EXPECT_EQ(events[1].kind, trace::EventKind::kRecv);
  EXPECT_EQ(events[1].node, 1u);
  EXPECT_EQ(events[1].peer, 0u);
  // Timestamps scaled: 1 engine ms = 1e6 ns by default.
  EXPECT_EQ(events[1].timestamp, 1'000'000u);
}

TEST(Multicomputer, PerNodeSequenceNumbers) {
  sim::Engine eng;
  Multicomputer mc(eng, 2, 1.0, 0.0);
  std::vector<trace::EventRecord> events;
  mc.set_instrumentation([&](const trace::EventRecord& r) {
    events.push_back(r);
  });
  mc.user_event(0, 1);
  mc.user_event(0, 2);
  mc.user_event(1, 3);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[2].seq, 0u);  // node 1's own stream
}

TEST(Multicomputer, NoHookNoCrash) {
  sim::Engine eng;
  Multicomputer mc(eng, 2, 1.0, 0.0);
  mc.set_receiver(1, [](const SimMessage&) {});
  mc.send(0, 1, 0, 8);
  eng.run();
  SUCCEED();
}

TEST(Multicomputer, SelfSendAllowed) {
  sim::Engine eng;
  Multicomputer mc(eng, 1, 0.5, 0.0);
  int got = 0;
  mc.set_receiver(0, [&](const SimMessage&) { ++got; });
  mc.send(0, 0, 0, 8);
  eng.run();
  EXPECT_EQ(got, 1);
}

TEST(Multicomputer, RejectsBadArguments) {
  sim::Engine eng;
  EXPECT_THROW(Multicomputer(eng, 0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Multicomputer(eng, 2, -1.0, 0.0), std::invalid_argument);
  Multicomputer mc(eng, 2, 1.0, 0.0);
  EXPECT_THROW(mc.send(0, 5, 0, 1), std::out_of_range);
  EXPECT_THROW(mc.user_event(9, 0), std::out_of_range);
}

TEST(Multicomputer, MessagesOnSameRouteKeepFifoOrder) {
  sim::Engine eng;
  Multicomputer mc(eng, 2, 1.0, 0.0);
  std::vector<std::uint64_t> payloads;
  mc.set_receiver(1, [&](const SimMessage& m) { payloads.push_back(m.payload); });
  for (std::uint64_t i = 0; i < 10; ++i) mc.send(0, 1, 0, 8, i);
  eng.run();
  ASSERT_EQ(payloads.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(payloads[i], i);
}

}  // namespace
}  // namespace prism::workload
