// MonotonicArena / ArenaAllocator (DESIGN.md §15): frame-structured reuse,
// chunk retention across reset(), interposition-visible steady state.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "obs/prof/alloc.hpp"
#include "sim/arena.hpp"
#include "sim/engine.hpp"
#include "sim/replication.hpp"

namespace prism::sim {
namespace {

TEST(Arena, ResetReusesIdenticalPointers) {
  MonotonicArena a(1024);
  std::vector<void*> first;
  for (int i = 0; i < 64; ++i) first.push_back(a.allocate(40, 8));
  a.reset();
  // The identical allocation sequence lands on the identical addresses:
  // the chunks were kept, only the cursors rewound.
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.allocate(40, 8), first[i]);
  EXPECT_EQ(a.stats().resets, 1u);
}

TEST(Arena, ResetKeepsChunksAndStopsAllocating) {
  MonotonicArena a(256);
  for (int i = 0; i < 100; ++i) a.allocate(64);
  const auto warmed = a.stats();
  EXPECT_GT(warmed.chunk_allocations, 1u);
  a.reset();
  for (int i = 0; i < 100; ++i) a.allocate(64);
  // Same footprint, zero new chunks: the steady-state contract.
  EXPECT_EQ(a.stats().chunk_allocations, warmed.chunk_allocations);
  EXPECT_EQ(a.stats().chunks, warmed.chunks);
}

TEST(Arena, FrameRewindsForReuse) {
  MonotonicArena a(512);
  void* outer = a.allocate(32);
  void* inner_first = nullptr;
  {
    const MonotonicArena::Frame f(a);
    inner_first = a.allocate(128);
    a.allocate(400);  // force a second chunk inside the frame
  }
  {
    const MonotonicArena::Frame f(a);
    EXPECT_EQ(a.allocate(128), inner_first);  // frame storage was recycled
  }
  // The pre-frame allocation was never disturbed.
  EXPECT_LT(outer, inner_first);
}

TEST(Arena, NestedFramesUnwindInOrder) {
  MonotonicArena a(256);
  const auto used0 = a.used_bytes();
  {
    const MonotonicArena::Frame f1(a);
    a.allocate(64);
    const auto used1 = a.used_bytes();
    {
      const MonotonicArena::Frame f2(a);
      a.allocate(1024);  // spills to an oversized chunk
    }
    EXPECT_EQ(a.used_bytes(), used1);
  }
  EXPECT_EQ(a.used_bytes(), used0);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  MonotonicArena a(128);
  void* small = a.allocate(16);
  void* huge = a.allocate(64 * 1024);  // far beyond the chunk size
  ASSERT_NE(huge, nullptr);
  EXPECT_NE(small, huge);
  // Small allocations keep working after the oversized one.
  EXPECT_NE(a.allocate(16), nullptr);
  EXPECT_GE(a.stats().reserved_bytes, 64u * 1024u);
}

TEST(Arena, CreateConstructsInPlace) {
  MonotonicArena a;
  struct Pod {
    std::uint64_t x;
    std::uint32_t y;
  };
  Pod* p = a.create<Pod>(Pod{42, 7});
  EXPECT_EQ(p->x, 42u);
  EXPECT_EQ(p->y, 7u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(Pod), 0u);
}

TEST(Arena, AllocatorWorksWithStdContainers) {
  MonotonicArena a;
  using Alloc = ArenaAllocator<std::pair<const int, int>>;
  std::map<int, int, std::less<int>, Alloc> m{Alloc(&a)};
  std::vector<double, ArenaAllocator<double>> v{ArenaAllocator<double>(&a)};
  for (int i = 0; i < 200; ++i) {
    m.emplace(i, i * i);
    v.push_back(i * 0.5);
  }
  EXPECT_EQ(m.at(13), 169);
  EXPECT_DOUBLE_EQ(v[100], 50.0);
  EXPECT_GT(a.used_bytes(), 200u * sizeof(double));
}

TEST(Arena, ArenaOnlyLegInterposesZeroAfterWarmup) {
  if (!obs::prof::alloc_tracking_compiled_in())
    GTEST_SKIP() << "PRISM_OBS=OFF build: no interposition to observe";
  MonotonicArena a(4096);
  auto leg = [&a] {
    for (int i = 0; i < 500; ++i) a.allocate(24, 8);
  };
  leg();  // warm-up replication: faults the chunks in
  a.reset();
  const obs::prof::AllocScope scope;
  leg();  // steady-state replication
  EXPECT_EQ(scope.delta().allocs, 0u)
      << "an arena-only leg must not reach operator new after warm-up";
}

TEST(Arena, EngineSteadyStateSchedulesWithoutHeap) {
  if (!obs::prof::alloc_tracking_compiled_in())
    GTEST_SKIP() << "PRISM_OBS=OFF build: no interposition to observe";
  Engine e;
  volatile int sink = 0;
  // Warm-up: grow the slot vector and the calendar heap, register the obs
  // counters this path touches.
  for (int i = 0; i < 2000; ++i)
    e.schedule_after(static_cast<double>(i % 17) + 1.0,
                     [&sink] { sink = sink + 1; });
  e.run();
  const obs::prof::AllocScope scope;
  for (int i = 0; i < 2000; ++i)
    e.schedule_after(static_cast<double>(i % 17) + 1.0,
                     [&sink] { sink = sink + 1; });
  e.run();
  // EventFn keeps every model-sized closure inline and the calendar's
  // vectors are already grown: the whole schedule/step loop is malloc-free.
  EXPECT_EQ(scope.delta().allocs, 0u);
}

TEST(Arena, RepArenaIsThreadLocalAndResets) {
  MonotonicArena& a = rep_arena();
  const auto resets0 = a.stats().resets;
  void* p = a.allocate(64);
  a.reset();
  EXPECT_EQ(a.allocate(64), p);
  EXPECT_EQ(a.stats().resets, resets0 + 1);
}

// Satellite of the diagnosis-misattribution fix: allocations made *by pool
// workers* must land in the workload's own ledger.  A thread-local scope on
// the submitting thread would read ~0 here; workload_alloc() reads the
// sharded process tallies after the pool joined, so it sees them.
TEST(Arena, WorkerAllocationsAttributedToWorkload) {
  if (!obs::prof::alloc_tracking_compiled_in())
    GTEST_SKIP() << "PRISM_OBS=OFF build: no interposition to observe";
  constexpr unsigned kReps = 8;
  ReplicateOptions opts;
  opts.threads = 2;
  const auto rr = sim::replicate(
      kReps, /*base_seed=*/99, /*scenario_tag=*/1,
      [](stats::Rng& rng) -> Responses {
        std::vector<double> big(4096, rng.next_double());  // worker-side heap
        return {{"x", big[0]}};
      },
      opts);
  EXPECT_EQ(rr.threads_used(), 2u);
  // Every replication allocated at least its 32 KiB vector on a worker.
  EXPECT_GE(rr.workload_alloc().allocs, static_cast<std::uint64_t>(kReps));
  EXPECT_GE(rr.workload_alloc().bytes, kReps * 4096ull * sizeof(double));
}

}  // namespace
}  // namespace prism::sim
