// Replication harness: determinism, stream isolation, CI behaviour, and
// serial/parallel bit-identity.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "paradyn/rocc_model.hpp"
#include "picl/flush_sim.hpp"
#include "sim/replication.hpp"
#include "vista/ism_model.hpp"

namespace prism::sim {
namespace {

TEST(Replicate, DeterministicForSameSeedAndTag) {
  auto model = [](stats::Rng& rng) -> Responses {
    return {{"x", rng.next_double()}};
  };
  auto a = replicate(20, 1, 7, model);
  auto b = replicate(20, 1, 7, model);
  EXPECT_DOUBLE_EQ(a.summary("x").mean(), b.summary("x").mean());
}

TEST(Replicate, DifferentTagsGiveDifferentStreams) {
  auto model = [](stats::Rng& rng) -> Responses {
    return {{"x", rng.next_double()}};
  };
  auto a = replicate(20, 1, 7, model);
  auto b = replicate(20, 1, 8, model);
  EXPECT_NE(a.summary("x").mean(), b.summary("x").mean());
}

TEST(Replicate, CommonRandomNumbers) {
  // Two "policies" sharing a scenario tag see identical random inputs.
  std::vector<double> draws_a, draws_b;
  replicate(10, 5, 99, [&](stats::Rng& rng) -> Responses {
    draws_a.push_back(rng.next_double());
    return {};
  });
  replicate(10, 5, 99, [&](stats::Rng& rng) -> Responses {
    draws_b.push_back(rng.next_double());
    return {};
  });
  EXPECT_EQ(draws_a, draws_b);
}

TEST(Replicate, ReplicationsAreIndependent) {
  std::vector<double> firsts;
  replicate(50, 3, 4, [&](stats::Rng& rng) -> Responses {
    firsts.push_back(rng.next_double());
    return {};
  });
  // All 50 first draws distinct (independent streams).
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(std::adjacent_find(firsts.begin(), firsts.end()), firsts.end());
}

TEST(ReplicationResult, MetricsAndCis) {
  auto model = [](stats::Rng& rng) -> Responses {
    return {{"a", rng.next_double()}, {"b", 5.0}};
  };
  auto r = replicate(50, 11, 0, model);
  EXPECT_EQ(r.replications(), 50u);
  EXPECT_EQ(r.metrics(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(r.ci("a", 0.95).contains(0.5));
  EXPECT_NEAR(r.ci("b", 0.95).half_width, 0.0, 1e-12);
  EXPECT_THROW(r.summary("nope"), std::out_of_range);
}

TEST(Replicate, RejectsZeroReplications) {
  EXPECT_THROW(
      replicate(0, 1, 1, [](stats::Rng&) -> Responses { return {}; }),
      std::invalid_argument);
  EXPECT_THROW(replicate(0, 1, 1,
                         [](stats::Rng&) -> Responses { return {}; },
                         ReplicateOptions{4}),
               std::invalid_argument);
}

// Asserts that parallel execution reproduces the serial run bit-for-bit on
// every metric: same mean, same variance accumulator state, same extremes.
void expect_bit_identical(const ReplicationResult& serial,
                          const ReplicationResult& parallel) {
  ASSERT_EQ(serial.replications(), parallel.replications());
  ASSERT_EQ(serial.metrics(), parallel.metrics());
  for (const auto& m : serial.metrics()) {
    const auto& a = serial.summary(m);
    const auto& b = parallel.summary(m);
    EXPECT_EQ(a.mean(), b.mean()) << m;
    EXPECT_EQ(a.variance(), b.variance()) << m;
    EXPECT_EQ(a.sum(), b.sum()) << m;
    EXPECT_EQ(a.min(), b.min()) << m;
    EXPECT_EQ(a.max(), b.max()) << m;
  }
}

TEST(Replicate, ParallelBitIdenticalToSerial) {
  auto model = [](stats::Rng& rng) -> Responses {
    // Several draws so per-replication streams interleave nontrivially.
    double x = 0;
    for (int i = 0; i < 100; ++i) x += rng.next_double();
    return {{"x", x}, {"y", rng.next_double_open()}};
  };
  const auto serial = replicate(37, 123, 9, model, ReplicateOptions{1});
  const auto parallel = replicate(37, 123, 9, model, ReplicateOptions{4});
  expect_bit_identical(serial, parallel);
}

TEST(Replicate, ParallelBitIdenticalForCaseStudyModels) {
  // The acceptance bar for the harness: PICL, ROCC, and Vista replications
  // merge to bit-identical summaries at any thread count.
  {
    picl::PiclModelParams p;
    p.buffer_capacity = 20;
    p.nodes = 4;
    p.arrival_rate = 0.007;
    auto model = [&p](stats::Rng& rng) -> Responses {
      const auto r = picl::simulate_fof(p, 150, rng);
      return {{"freq", r.flushing_frequency},
              {"stop", r.stopping_time.mean()},
              {"interrupt", r.interruption_rate}};
    };
    expect_bit_identical(replicate(8, 77, 1, model, ReplicateOptions{1}),
                         replicate(8, 77, 1, model, ReplicateOptions{4}));
  }
  {
    paradyn::ParadynRoccParams p;
    p.horizon_ms = 4'000;
    auto model = [&p](stats::Rng& rng) -> Responses {
      const auto m = paradyn::run_paradyn_rocc(p, rng);
      return {{"interference", m.pd_interference_ms},
              {"utilization_pct", m.pd_cpu_utilization_pct},
              {"delay", m.mean_cpu_queueing_delay_ms},
              {"requests", static_cast<double>(m.app_requests)}};
    };
    expect_bit_identical(replicate(8, 77, 2, model, ReplicateOptions{1}),
                         replicate(8, 77, 2, model, ReplicateOptions{4}));
  }
  {
    vista::VistaIsmParams p;
    p.horizon_ms = 3'000;
    auto model = [&p](stats::Rng& rng) -> Responses {
      const auto m = vista::run_vista_ism(p, rng);
      return {{"latency", m.mean_processing_latency_ms},
              {"buffer", m.mean_input_buffer_length},
              {"holdback", m.hold_back_ratio}};
    };
    expect_bit_identical(replicate(8, 77, 3, model, ReplicateOptions{1}),
                         replicate(8, 77, 3, model, ReplicateOptions{4}));
  }
}

TEST(ReplicationResult, SurfacesExecutionTelemetry) {
  auto model = [](stats::Rng& rng) -> Responses {
    double acc = 0;
    for (int i = 0; i < 10'000; ++i) acc += rng.next_double();
    return {{"acc", acc}};
  };
  const auto serial = replicate(12, 1, 1, model, ReplicateOptions{1});
  EXPECT_EQ(serial.rep_time_ms().count(), 12u);
  EXPECT_GE(serial.rep_time_ms().min(), 0.0);
  EXPECT_GT(serial.wall_ms(), 0.0);
  EXPECT_EQ(serial.threads_used(), 1u);
  // Serial: all wall time is replication time (minus harness overhead).
  EXPECT_GT(serial.worker_utilization(), 0.0);
  EXPECT_LE(serial.worker_utilization(), 1.0);

  const auto parallel = replicate(12, 1, 1, model, ReplicateOptions{4});
  EXPECT_EQ(parallel.rep_time_ms().count(), 12u);
  EXPECT_GT(parallel.wall_ms(), 0.0);
  EXPECT_EQ(parallel.threads_used(), 4u);
  EXPECT_GT(parallel.worker_utilization(), 0.0);
  EXPECT_LE(parallel.worker_utilization(), 1.0);

  // More replications than threads clamps the pool.
  const auto clamped = replicate(3, 1, 1, model, ReplicateOptions{8});
  EXPECT_EQ(clamped.threads_used(), 3u);

  // A fresh result reports no execution until replicate() fills it.
  ReplicationResult empty;
  EXPECT_EQ(empty.threads_used(), 0u);
  EXPECT_EQ(empty.worker_utilization(), 0.0);
}

TEST(Replicate, ThreadsZeroMeansHardwareConcurrency) {
  auto model = [](stats::Rng& rng) -> Responses {
    return {{"x", rng.next_double()}};
  };
  expect_bit_identical(replicate(16, 5, 6, model, ReplicateOptions{1}),
                       replicate(16, 5, 6, model, ReplicateOptions{0}));
}

TEST(Replicate, ParallelPropagatesModelException) {
  std::atomic<int> calls{0};
  auto throwing = [&calls](stats::Rng&) -> Responses {
    const int n = calls.fetch_add(1, std::memory_order_relaxed);
    if (n == 7) throw std::runtime_error("model blew up");
    return {{"x", 1.0}};
  };
  EXPECT_THROW(replicate(16, 1, 2, throwing, ReplicateOptions{4}),
               std::runtime_error);
}

TEST(Replicate, ParallelSmokeManyReplications) {
  // TSan-friendly smoke: plenty of concurrent replications, all state local
  // to the worker, merged summaries checked against the serial run.
  auto model = [](stats::Rng& rng) -> Responses {
    double acc = 0;
    for (int i = 0; i < 500; ++i) acc += rng.next_double();
    return {{"acc", acc}};
  };
  const auto serial = replicate(64, 9, 4, model, ReplicateOptions{1});
  const auto parallel = replicate(64, 9, 4, model, ReplicateOptions{4});
  expect_bit_identical(serial, parallel);
  EXPECT_NEAR(parallel.summary("acc").mean(), 250.0, 5.0);
}

}  // namespace
}  // namespace prism::sim
