// Replication harness: determinism, stream isolation, and CI behaviour.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/replication.hpp"

namespace prism::sim {
namespace {

TEST(Replicate, DeterministicForSameSeedAndTag) {
  auto model = [](stats::Rng& rng) -> Responses {
    return {{"x", rng.next_double()}};
  };
  auto a = replicate(20, 1, 7, model);
  auto b = replicate(20, 1, 7, model);
  EXPECT_DOUBLE_EQ(a.summary("x").mean(), b.summary("x").mean());
}

TEST(Replicate, DifferentTagsGiveDifferentStreams) {
  auto model = [](stats::Rng& rng) -> Responses {
    return {{"x", rng.next_double()}};
  };
  auto a = replicate(20, 1, 7, model);
  auto b = replicate(20, 1, 8, model);
  EXPECT_NE(a.summary("x").mean(), b.summary("x").mean());
}

TEST(Replicate, CommonRandomNumbers) {
  // Two "policies" sharing a scenario tag see identical random inputs.
  std::vector<double> draws_a, draws_b;
  replicate(10, 5, 99, [&](stats::Rng& rng) -> Responses {
    draws_a.push_back(rng.next_double());
    return {};
  });
  replicate(10, 5, 99, [&](stats::Rng& rng) -> Responses {
    draws_b.push_back(rng.next_double());
    return {};
  });
  EXPECT_EQ(draws_a, draws_b);
}

TEST(Replicate, ReplicationsAreIndependent) {
  std::vector<double> firsts;
  replicate(50, 3, 4, [&](stats::Rng& rng) -> Responses {
    firsts.push_back(rng.next_double());
    return {};
  });
  // All 50 first draws distinct (independent streams).
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(std::adjacent_find(firsts.begin(), firsts.end()), firsts.end());
}

TEST(ReplicationResult, MetricsAndCis) {
  auto model = [](stats::Rng& rng) -> Responses {
    return {{"a", rng.next_double()}, {"b", 5.0}};
  };
  auto r = replicate(50, 11, 0, model);
  EXPECT_EQ(r.replications(), 50u);
  EXPECT_EQ(r.metrics(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(r.ci("a", 0.95).contains(0.5));
  EXPECT_NEAR(r.ci("b", 0.95).half_width, 0.0, 1e-12);
  EXPECT_THROW(r.summary("nope"), std::out_of_range);
}

TEST(Replicate, RejectsZeroReplications) {
  EXPECT_THROW(
      replicate(0, 1, 1, [](stats::Rng&) -> Responses { return {}; }),
      std::invalid_argument);
}

}  // namespace
}  // namespace prism::sim
