// MSER-5 warm-up truncation.
#include <gtest/gtest.h>

#include <vector>

#include "sim/collectors.hpp"
#include "stats/rng.hpp"

namespace prism::sim {
namespace {

TEST(Mser5, ShortSequencesKeepEverything) {
  EXPECT_EQ(mser5_truncation_index({}), 0u);
  EXPECT_EQ(mser5_truncation_index({1, 2, 3}), 0u);
  EXPECT_EQ(mser5_truncation_index(std::vector<double>(9, 1.0)), 0u);
}

TEST(Mser5, StationarySequenceKeepsMost) {
  stats::Rng rng(1);
  std::vector<double> obs;
  for (int i = 0; i < 500; ++i) obs.push_back(rng.next_double());
  // No warm-up bias: truncation should be small.
  EXPECT_LE(mser5_truncation_index(obs), 50u);
}

TEST(Mser5, DetectsInitialTransient) {
  // Strong decaying transient over the first 100 observations, then
  // stationary noise.
  stats::Rng rng(2);
  std::vector<double> obs;
  for (int i = 0; i < 100; ++i)
    obs.push_back(100.0 * std::exp(-i / 20.0) + rng.next_double());
  for (int i = 0; i < 400; ++i) obs.push_back(rng.next_double());
  const auto cut = mser5_truncation_index(obs);
  EXPECT_GE(cut, 40u);   // removes the bulk of the transient
  EXPECT_LE(cut, 250u);  // never more than half the run
}

TEST(Mser5, NeverDeletesMoreThanHalf) {
  // Monotone ramp: the statistic keeps wanting to cut, the convention caps
  // it at half the batches.
  std::vector<double> obs;
  for (int i = 0; i < 200; ++i) obs.push_back(static_cast<double>(i));
  EXPECT_LE(mser5_truncation_index(obs), 100u);
}

TEST(Mser5, TruncationImprovesSteadyEstimate) {
  stats::Rng rng(3);
  std::vector<double> obs;
  for (int i = 0; i < 50; ++i) obs.push_back(50.0 - i);  // transient
  for (int i = 0; i < 450; ++i) obs.push_back(5.0 + rng.next_double());
  const auto cut = mser5_truncation_index(obs);
  double full = 0, trunc = 0;
  for (double x : obs) full += x;
  full /= obs.size();
  for (std::size_t i = cut; i < obs.size(); ++i) trunc += obs[i];
  trunc /= (obs.size() - cut);
  // True steady mean ~5.5; the truncated estimate must be closer.
  EXPECT_LT(std::fabs(trunc - 5.5), std::fabs(full - 5.5));
}

}  // namespace
}  // namespace prism::sim
