// Closed-loop steering (tool -> ISM -> control plane -> LIS) and
// trace-driven model calibration.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "core/clock.hpp"
#include "core/environment.hpp"
#include "core/steering.hpp"
#include "picl/calibrate.hpp"
#include "stats/distributions.hpp"

namespace prism {
namespace {

trace::EventRecord sample(std::uint32_t node, std::uint32_t process,
                          std::uint16_t tag, double value,
                          std::uint64_t seq) {
  trace::EventRecord r;
  r.timestamp = core::now_ns();
  r.node = node;
  r.process = process;
  r.kind = trace::EventKind::kSample;
  r.tag = tag;
  r.payload = trace::pack_double(value);
  r.seq = seq;
  return r;
}

TEST(Steering, FiresAfterConsecutiveCrossings) {
  core::EnvironmentConfig cfg;
  cfg.nodes = 1;
  cfg.lis_style = core::LisStyle::kForwarding;
  cfg.ism.causal_ordering = false;
  core::IntegratedEnvironment env(cfg);
  core::SteeringPolicy policy;
  policy.metric_tag = 9;
  policy.high_threshold = 0.8;
  policy.low_threshold = 0.2;
  policy.consecutive_needed = 3;
  policy.high_action = {core::ControlKind::kSetSamplingPeriod, 0, 5e6};
  policy.low_action = core::ControlMessage{
      core::ControlKind::kSetSamplingPeriod, 0, 1e6};
  auto steer = std::make_shared<core::SteeringTool>(env.ism(), policy);
  env.attach_tool(steer);
  env.start();

  std::uint64_t seq = 0;
  // Two crossings then a dip: not enough.
  env.record(sample(0, 0, 9, 0.9, seq++));
  env.record(sample(0, 0, 9, 0.9, seq++));
  env.record(sample(0, 0, 9, 0.5, seq++));
  // Three consecutive: fires.
  env.record(sample(0, 0, 9, 0.9, seq++));
  env.record(sample(0, 0, 9, 0.95, seq++));
  env.record(sample(0, 0, 9, 0.85, seq++));
  // Recovery: three below low threshold fires the low action.
  env.record(sample(0, 0, 9, 0.1, seq++));
  env.record(sample(0, 0, 9, 0.1, seq++));
  env.record(sample(0, 0, 9, 0.1, seq++));
  env.stop();

  EXPECT_EQ(steer->high_actions_fired(), 1u);
  EXPECT_EQ(steer->low_actions_fired(), 1u);
  EXPECT_FALSE(steer->engaged());
  // Both control messages reached the LIS control link.
  auto& link = env.tp().control_link(0);
  auto m1 = link.try_pop();
  auto m2 = link.try_pop();
  ASSERT_TRUE(m1 && m2);
  EXPECT_DOUBLE_EQ(m1->value, 5e6);
  EXPECT_DOUBLE_EQ(m2->value, 1e6);
}

TEST(Steering, IgnoresOtherTagsAndKinds) {
  core::EnvironmentConfig cfg;
  cfg.nodes = 1;
  cfg.lis_style = core::LisStyle::kForwarding;
  cfg.ism.causal_ordering = false;
  core::IntegratedEnvironment env(cfg);
  core::SteeringPolicy policy;
  policy.metric_tag = 9;
  policy.high_threshold = 0.5;
  policy.consecutive_needed = 1;
  auto steer = std::make_shared<core::SteeringTool>(env.ism(), policy);
  env.attach_tool(steer);
  env.start();
  env.record(sample(0, 0, 8, 0.9, 0));  // wrong tag
  trace::EventRecord user;
  user.timestamp = core::now_ns();
  user.kind = trace::EventKind::kUserEvent;
  user.tag = 9;
  user.payload = trace::pack_double(0.9);
  user.seq = 1;
  env.record(user);  // wrong kind
  env.stop();
  EXPECT_EQ(steer->high_actions_fired(), 0u);
}

TEST(Steering, ClosedLoopAdjustsDaemonPeriod) {
  // Full loop: sample stream -> SteeringTool -> control link -> DaemonLis
  // adopts the new sampling period.
  core::EnvironmentConfig cfg;
  cfg.nodes = 1;
  cfg.processes_per_node = 1;
  cfg.lis_style = core::LisStyle::kDaemon;
  cfg.sampling_period_ns = 1'000'000;
  cfg.ism.causal_ordering = false;
  core::IntegratedEnvironment env(cfg);
  core::SteeringPolicy policy;
  policy.metric_tag = 1;
  policy.high_threshold = 0.7;
  policy.consecutive_needed = 2;
  policy.high_action = {core::ControlKind::kSetSamplingPeriod, 0, 8'000'000};
  auto steer = std::make_shared<core::SteeringTool>(env.ism(), policy);
  env.attach_tool(steer);
  env.start();
  for (std::uint64_t s = 0; s < 4; ++s)
    env.record(sample(0, 0, 1, 0.9, s));
  // Give the daemon a few wakeups to drain the pipe and see the control.
  auto* daemon = dynamic_cast<core::DaemonLis*>(&env.lis(0));
  ASSERT_NE(daemon, nullptr);
  for (int spin = 0; spin < 100 && daemon->sampling_period_ns() != 8'000'000;
       ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(daemon->sampling_period_ns(), 8'000'000u);
  env.stop();
}

TEST(Steering, RejectsBadPolicy) {
  core::EnvironmentConfig cfg;
  core::IntegratedEnvironment env(cfg);
  core::SteeringPolicy p;
  p.consecutive_needed = 0;
  EXPECT_THROW(core::SteeringTool(env.ism(), p), std::invalid_argument);
  p = core::SteeringPolicy{};
  p.high_threshold = 0.1;
  p.low_threshold = 0.5;
  EXPECT_THROW(core::SteeringTool(env.ism(), p), std::invalid_argument);
}

// ---- calibration ------------------------------------------------------------

TEST(Calibrate, RecoversPoissonRateFromTrace) {
  // Synthesize a Poisson trace at rate 0.02/ns-unit per node, 4 nodes.
  stats::Rng rng(42);
  stats::Exponential gap(0.02);
  std::vector<trace::EventRecord> records;
  for (std::uint32_t n = 0; n < 4; ++n) {
    std::uint64_t ts = 0;
    for (std::uint64_t s = 0; s < 3000; ++s) {
      ts += static_cast<std::uint64_t>(gap.sample(rng)) + 1;
      trace::EventRecord r;
      r.node = n;
      r.seq = s;
      r.timestamp = ts;
      records.push_back(r);
    }
  }
  const auto rep =
      picl::calibrate_picl_model(records, 100, 4, 100.0, 10.0);
  EXPECT_NEAR(rep.params.arrival_rate, 0.02, 0.002);
  EXPECT_EQ(rep.params.nodes, 4u);
  EXPECT_EQ(rep.params.buffer_capacity, 100u);
  EXPECT_TRUE(rep.poisson_plausible);
  // The calibrated model is immediately usable.
  EXPECT_GT(picl::fof_flushing_frequency(rep.params), 0.0);
}

TEST(Calibrate, FlagsNonPoissonWorkload) {
  // Deterministic arrivals: CV ~ 0 -> not Poisson-plausible.
  std::vector<trace::EventRecord> records;
  for (std::uint64_t s = 0; s < 1000; ++s) {
    trace::EventRecord r;
    r.seq = s;
    r.timestamp = s * 50;
    records.push_back(r);
  }
  const auto rep = picl::calibrate_picl_model(records, 10, 1, 0, 1);
  EXPECT_FALSE(rep.poisson_plausible);
}

TEST(Calibrate, RejectsDegenerateTraces) {
  EXPECT_THROW(picl::calibrate_picl_model({}, 10, 1, 0, 1),
               std::invalid_argument);
  std::vector<trace::EventRecord> one(1);
  EXPECT_THROW(picl::calibrate_picl_model(one, 10, 1, 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace prism
