// Real kernel-pipe TP link: framing round trips, EOF handling, concurrent
// writers, and end-to-end integration with the ISM.
#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <memory>
#include <thread>

#include "core/clock.hpp"
#include "core/ism.hpp"
#include "core/posix_pipe.hpp"
#include "fault/fault.hpp"
#include "obs/pipeline.hpp"

namespace prism::core {
namespace {

trace::EventRecord ev(std::uint32_t node, std::uint64_t seq) {
  trace::EventRecord r;
  r.timestamp = now_ns();
  r.node = node;
  r.seq = seq;
  return r;
}

DataBatch batch(std::uint32_t node, std::size_t count,
                std::uint64_t seq0 = 0) {
  DataBatch b;
  b.source_node = node;
  b.t_sent_ns = now_ns();
  for (std::size_t i = 0; i < count; ++i)
    b.records.push_back(ev(node, seq0 + i));
  return b;
}

TEST(PosixPipe, RoundTripsOneBatch) {
  DataLink sink(16);
  PosixPipeLink link(sink);
  ASSERT_TRUE(link.send(batch(3, 5, 100)));
  auto msg = sink.pop();
  ASSERT_TRUE(msg.has_value());
  auto* b = std::get_if<DataBatch>(&*msg);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->source_node, 3u);
  ASSERT_EQ(b->records.size(), 5u);
  EXPECT_EQ(b->records[0].seq, 100u);
  EXPECT_EQ(b->records[4].seq, 104u);
  EXPECT_EQ(link.messages_sent(), 1u);
  EXPECT_GT(link.bytes_sent(), 5 * sizeof(trace::EventRecord));
}

TEST(PosixPipe, EmptyBatchAllowed) {
  DataLink sink(16);
  PosixPipeLink link(sink);
  ASSERT_TRUE(link.send(batch(1, 0)));
  auto msg = sink.pop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(std::get_if<DataBatch>(&*msg)->records.empty());
}

TEST(PosixPipe, ManyBatchesPreserveOrder) {
  DataLink sink(256);
  PosixPipeLink link(sink);
  for (std::uint64_t i = 0; i < 100; ++i)
    ASSERT_TRUE(link.send(batch(0, 3, i * 10)));
  for (std::uint64_t i = 0; i < 100; ++i) {
    auto msg = sink.pop();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get_if<DataBatch>(&*msg)->records[0].seq, i * 10);
  }
  EXPECT_EQ(link.frames_delivered(), 100u);
}

TEST(PosixPipe, SendAfterCloseFails) {
  DataLink sink(16);
  PosixPipeLink link(sink);
  link.close_writer();
  EXPECT_FALSE(link.send(batch(0, 1)));
}

TEST(PosixPipe, ConcurrentWritersDeliverEverything) {
  DataLink sink(4096);
  PosixPipeLink link(sink);
  constexpr int kThreads = 4, kPerThread = 50;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&link, t] {
      for (int i = 0; i < kPerThread; ++i)
        link.send(batch(static_cast<std::uint32_t>(t), 2));
    });
  }
  for (auto& w : writers) w.join();
  link.close_writer();
  std::size_t frames = 0, records = 0;
  while (auto msg = sink.pop_for(std::chrono::seconds(5))) {
    ++frames;
    records += std::get_if<DataBatch>(&*msg)->records.size();
    if (frames == kThreads * kPerThread) break;
  }
  EXPECT_EQ(frames, static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(records, static_cast<std::size_t>(kThreads * kPerThread * 2));
}

TEST(PosixPipe, FeedsIsmEndToEnd) {
  // LIS threads -> kernel pipe -> ISM -> tool: the full Paradyn-style TP.
  TransferProtocol tp(TpFlavor::kPipe, 1, 1, 256);
  IsmConfig cfg;
  cfg.causal_ordering = false;
  Ism ism(tp, cfg);
  auto stats_tool = std::make_shared<StatsTool>();
  ism.attach_tool(stats_tool);
  ism.start();

  {
    PosixPipeLink pipe(tp.data_link(0));
    std::thread producer([&pipe] {
      for (std::uint64_t i = 0; i < 50; ++i) pipe.send(batch(0, 4, i * 4));
    });
    producer.join();
    pipe.close_writer();
    // Destructor joins the reader after it drains the kernel buffer.
  }
  ism.stop();
  EXPECT_EQ(stats_tool->total(), 200u);
}

// ---- Corruption handling (the wire is untrusted input) ----------------------

/// Mirrors the on-wire frame header layout (24 bytes).
struct WireHeader {
  std::uint32_t magic = 0x50495045;  // "PIPE"
  std::uint32_t source_node = 0;
  std::uint64_t t_sent_ns = 0;
  std::uint64_t record_count = 0;
};
static_assert(sizeof(WireHeader) == 24);

/// Polls `f` until true or ~2 s elapse (the reader latches corruption
/// asynchronously).
template <typename F>
bool eventually(F&& f) {
  for (int i = 0; i < 2000; ++i) {
    if (f()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return f();
}

TEST(PosixPipeCorruption, TruncatedHeaderDeclaresStreamCorrupt) {
  DataLink sink(16);
  PosixPipeLink link(sink);
  WireHeader hdr;
  ASSERT_TRUE(link.inject_raw(&hdr, sizeof(hdr) / 2));  // writer dies mid-header
  link.close_writer();
  EXPECT_TRUE(eventually([&] { return link.stream_corrupt(); }));
  EXPECT_EQ(link.frames_corrupt(), 1u);
  EXPECT_EQ(link.frames_delivered(), 0u);
}

TEST(PosixPipeCorruption, BadMagicDeclaresStreamCorrupt) {
  DataLink sink(16);
  PosixPipeLink link(sink);
  WireHeader hdr;
  hdr.magic = 0xDEADBEEF;
  ASSERT_TRUE(link.inject_raw(&hdr, sizeof hdr));
  EXPECT_TRUE(eventually([&] { return link.stream_corrupt(); }));
  EXPECT_EQ(link.frames_corrupt(), 1u);
}

TEST(PosixPipeCorruption, OversizedRecordCountRejectedBeforeAllocation) {
  // Regression: an insane wire count used to drive a multi-GB resize in the
  // reader before a single payload byte arrived.
  DataLink sink(16);
  PosixPipeLink link(sink);
  WireHeader hdr;
  hdr.record_count = 1ull << 40;  // ~48 TB of claimed payload
  ASSERT_TRUE(link.inject_raw(&hdr, sizeof hdr));
  EXPECT_TRUE(eventually([&] { return link.stream_corrupt(); }));
  EXPECT_EQ(link.frames_corrupt(), 1u);
  EXPECT_EQ(link.frames_delivered(), 0u);
}

TEST(PosixPipeCorruption, BoundaryRecordCountStillAccepted) {
  DataLink sink(16);
  PosixPipeLink link(sink, /*max_frame_records=*/4);
  ASSERT_TRUE(link.send(batch(0, 4)));  // exactly at the bound
  auto msg = sink.pop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::get_if<DataBatch>(&*msg)->records.size(), 4u);
  EXPECT_FALSE(link.stream_corrupt());
}

TEST(PosixPipeCorruption, WriterDeathMidFrameDetected) {
  DataLink sink(16);
  PosixPipeLink link(sink);
  WireHeader hdr;
  hdr.record_count = 10;  // header promises 10 records...
  ASSERT_TRUE(link.inject_raw(&hdr, sizeof hdr));
  trace::EventRecord partial[3] = {ev(0, 0), ev(0, 1), ev(0, 2)};
  ASSERT_TRUE(link.inject_raw(partial, sizeof partial));  // ...only 3 arrive
  link.close_writer();
  EXPECT_TRUE(eventually([&] { return link.stream_corrupt(); }));
  EXPECT_EQ(link.frames_corrupt(), 1u);
  EXPECT_EQ(link.frames_delivered(), 0u);
}

TEST(PosixPipeCorruption, ValidFramesBeforeCorruptionStillDelivered) {
  DataLink sink(16);
  PosixPipeLink link(sink);
  ASSERT_TRUE(link.send(batch(1, 2)));
  WireHeader hdr;
  hdr.magic = 0;
  ASSERT_TRUE(link.inject_raw(&hdr, sizeof hdr));
  EXPECT_TRUE(eventually([&] { return link.stream_corrupt(); }));
  EXPECT_EQ(link.frames_delivered(), 1u);  // the good frame landed
  auto msg = sink.pop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::get_if<DataBatch>(&*msg)->records.size(), 2u);
}

TEST(PosixPipeCorruption, SendFailsCleanlyAfterReaderDeclaredCorrupt) {
  // The reader closes its end on corruption, so a blocked writer gets EPIPE
  // instead of hanging; subsequent sends fail without desyncing further.
  DataLink sink(16);
  PosixPipeLink link(sink);
  WireHeader hdr;
  hdr.magic = 0xBAD;
  ASSERT_TRUE(link.inject_raw(&hdr, sizeof hdr));
  ASSERT_TRUE(eventually([&] { return link.stream_corrupt(); }));
  EXPECT_FALSE(link.send(batch(0, 1)));
  EXPECT_EQ(link.frames_delivered(), 0u);
}

// ---- SIGPIPE discipline ------------------------------------------------------

TEST(PosixPipeSignals, LaterLinksDoNotReclobberApplicationHandler) {
  // Regression: the disposition is installed exactly once per process; the
  // old per-instance ::signal() call overwrote any handler the application
  // installed between link constructions.
  DataLink sink(16);
  {
    PosixPipeLink first(sink);  // guarantees the call_once has fired
  }
  struct sigaction custom {};
  custom.sa_handler = [](int) {};
  struct sigaction saved {};
  ASSERT_EQ(::sigaction(SIGPIPE, &custom, &saved), 0);
  {
    PosixPipeLink second(sink);
    ASSERT_TRUE(second.send(batch(0, 1)));
    struct sigaction now {};
    ASSERT_EQ(::sigaction(SIGPIPE, nullptr, &now), 0);
    EXPECT_EQ(now.sa_handler, custom.sa_handler);
  }
  // Restore SIG_IGN: the rest of the suite depends on EPIPE semantics.
  struct sigaction ign {};
  ign.sa_handler = SIG_IGN;
  ASSERT_EQ(::sigaction(SIGPIPE, &ign, nullptr), 0);
  while (sink.try_pop()) {
  }
}

// ---- Injected faults ---------------------------------------------------------

TEST(PosixPipeFaults, TransientSendFailureRetriedAndDelivered) {
  DataLink sink(16);
  PosixPipeLink link(sink);
  fault::FaultPlan plan;
  fault::FaultSpec s;
  s.site = fault::FaultSite::kPipeSend;
  s.kind = fault::FaultKind::kSendFail;
  s.at_op = 1;  // first attempt fails, the retry goes through
  plan.add(s);
  fault::FaultInjector inj(plan, 31);
  fault::RetryPolicy rp;
  rp.base_backoff_ns = 100;
  link.set_fault(&inj, rp);

  ASSERT_TRUE(link.send(batch(2, 3)));
  EXPECT_EQ(link.send_failures(), 1u);
  EXPECT_EQ(link.messages_sent(), 1u);
  auto msg = sink.pop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::get_if<DataBatch>(&*msg)->records.size(), 3u);
}

TEST(PosixPipeFaults, InjectedFrameCorruptionDetectedAndAttributed) {
  DataLink sink(16);
  PosixPipeLink link(sink);
  obs::PipelineObserver obs;
  link.set_observer(&obs);
  fault::FaultPlan plan;
  fault::FaultSpec s;
  s.site = fault::FaultSite::kPipeFrame;
  s.kind = fault::FaultKind::kFrameCorrupt;
  s.at_op = 1;
  plan.add(s);
  fault::FaultInjector inj(plan, 77);
  link.set_fault(&inj);

  DataBatch b = batch(1, 4);
  const auto t = static_cast<double>(now_ns());
  for (const auto& r : b.records)
    obs.lineage.offer(obs::lineage_key(r.node, r.process, r.seq), t);
  EXPECT_FALSE(link.send(b));
  EXPECT_EQ(link.frames_aborted(), 1u);
  EXPECT_TRUE(eventually([&] { return link.frames_corrupt() == 1; }));
  const auto rep = obs.lineage.report();
  EXPECT_EQ(rep.lost_at[static_cast<std::size_t>(obs::LossSite::kFrameCorrupt)],
            4u);
  EXPECT_EQ(rep.in_flight, 0u);
}

TEST(PosixPipeFaults, InjectedPartialFrameClosesWriterAndAttributes) {
  // Satellite regression: a mid-frame send failure must close the writer,
  // latch stream_corrupt, and attribute the records — not leave a half
  // frame on a wire that later frames would silently desync against.
  DataLink sink(16);
  PosixPipeLink link(sink);
  obs::PipelineObserver obs;
  link.set_observer(&obs);
  fault::FaultPlan plan;
  plan.partial_frame(/*at_op=*/1);
  fault::FaultInjector inj(plan, 13);
  link.set_fault(&inj);

  DataBatch b = batch(0, 6);
  const auto t = static_cast<double>(now_ns());
  for (const auto& r : b.records)
    obs.lineage.offer(obs::lineage_key(r.node, r.process, r.seq), t);
  EXPECT_FALSE(link.send(b));
  EXPECT_TRUE(link.stream_corrupt());
  EXPECT_EQ(link.frames_aborted(), 1u);
  EXPECT_FALSE(link.send(batch(0, 1)));  // writer is closed for good
  EXPECT_TRUE(eventually([&] { return link.frames_corrupt() == 1; }));
  const auto rep = obs.lineage.report();
  EXPECT_EQ(rep.lost_at[static_cast<std::size_t>(obs::LossSite::kFrameCorrupt)],
            6u);
}

}  // namespace
}  // namespace prism::core
