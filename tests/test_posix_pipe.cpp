// Real kernel-pipe TP link: framing round trips, EOF handling, concurrent
// writers, and end-to-end integration with the ISM.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "core/clock.hpp"
#include "core/ism.hpp"
#include "core/posix_pipe.hpp"

namespace prism::core {
namespace {

trace::EventRecord ev(std::uint32_t node, std::uint64_t seq) {
  trace::EventRecord r;
  r.timestamp = now_ns();
  r.node = node;
  r.seq = seq;
  return r;
}

DataBatch batch(std::uint32_t node, std::size_t count,
                std::uint64_t seq0 = 0) {
  DataBatch b;
  b.source_node = node;
  b.t_sent_ns = now_ns();
  for (std::size_t i = 0; i < count; ++i)
    b.records.push_back(ev(node, seq0 + i));
  return b;
}

TEST(PosixPipe, RoundTripsOneBatch) {
  DataLink sink(16);
  PosixPipeLink link(sink);
  ASSERT_TRUE(link.send(batch(3, 5, 100)));
  auto msg = sink.pop();
  ASSERT_TRUE(msg.has_value());
  auto* b = std::get_if<DataBatch>(&*msg);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->source_node, 3u);
  ASSERT_EQ(b->records.size(), 5u);
  EXPECT_EQ(b->records[0].seq, 100u);
  EXPECT_EQ(b->records[4].seq, 104u);
  EXPECT_EQ(link.messages_sent(), 1u);
  EXPECT_GT(link.bytes_sent(), 5 * sizeof(trace::EventRecord));
}

TEST(PosixPipe, EmptyBatchAllowed) {
  DataLink sink(16);
  PosixPipeLink link(sink);
  ASSERT_TRUE(link.send(batch(1, 0)));
  auto msg = sink.pop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(std::get_if<DataBatch>(&*msg)->records.empty());
}

TEST(PosixPipe, ManyBatchesPreserveOrder) {
  DataLink sink(256);
  PosixPipeLink link(sink);
  for (std::uint64_t i = 0; i < 100; ++i)
    ASSERT_TRUE(link.send(batch(0, 3, i * 10)));
  for (std::uint64_t i = 0; i < 100; ++i) {
    auto msg = sink.pop();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get_if<DataBatch>(&*msg)->records[0].seq, i * 10);
  }
  EXPECT_EQ(link.frames_delivered(), 100u);
}

TEST(PosixPipe, SendAfterCloseFails) {
  DataLink sink(16);
  PosixPipeLink link(sink);
  link.close_writer();
  EXPECT_FALSE(link.send(batch(0, 1)));
}

TEST(PosixPipe, ConcurrentWritersDeliverEverything) {
  DataLink sink(4096);
  PosixPipeLink link(sink);
  constexpr int kThreads = 4, kPerThread = 50;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&link, t] {
      for (int i = 0; i < kPerThread; ++i)
        link.send(batch(static_cast<std::uint32_t>(t), 2));
    });
  }
  for (auto& w : writers) w.join();
  link.close_writer();
  std::size_t frames = 0, records = 0;
  while (auto msg = sink.pop_for(std::chrono::seconds(5))) {
    ++frames;
    records += std::get_if<DataBatch>(&*msg)->records.size();
    if (frames == kThreads * kPerThread) break;
  }
  EXPECT_EQ(frames, static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(records, static_cast<std::size_t>(kThreads * kPerThread * 2));
}

TEST(PosixPipe, FeedsIsmEndToEnd) {
  // LIS threads -> kernel pipe -> ISM -> tool: the full Paradyn-style TP.
  TransferProtocol tp(TpFlavor::kPipe, 1, 1, 256);
  IsmConfig cfg;
  cfg.causal_ordering = false;
  Ism ism(tp, cfg);
  auto stats_tool = std::make_shared<StatsTool>();
  ism.attach_tool(stats_tool);
  ism.start();

  {
    PosixPipeLink pipe(tp.data_link(0));
    std::thread producer([&pipe] {
      for (std::uint64_t i = 0; i < 50; ++i) pipe.send(batch(0, 4, i * 4));
    });
    producer.join();
    pipe.close_writer();
    // Destructor joins the reader after it drains the kernel buffer.
  }
  ism.stop();
  EXPECT_EQ(stats_tool->total(), 200u);
}

}  // namespace
}  // namespace prism::core
