// Pablo-style adaptive tracing throttle: level transitions, sampling,
// counting aggregation, pinning.
#include <gtest/gtest.h>

#include <vector>

#include "core/throttle.hpp"
#include "obs/obs.hpp"

namespace prism::core {
namespace {

#if PRISM_OBS_ENABLED
/// Current value of a telemetry counter (0 if nothing registered it yet);
/// tests assert deltas, since the registry is process-global.
std::uint64_t obs_count(std::string_view name) {
  const auto snap = ::prism::obs::Registry::instance().snapshot();
  const auto* c = snap.counter(name);
  return c ? c->value : 0;
}
#endif

trace::EventRecord ev(std::uint64_t ts, std::uint64_t payload = 0) {
  trace::EventRecord r;
  r.timestamp = ts;
  r.payload = payload;
  return r;
}

ThrottleConfig quick_config() {
  ThrottleConfig c;
  c.escalate_rate = 1e6;     // > 1 event/us escalates
  c.deescalate_rate = 1e4;   // < 1 event/100us de-escalates
  c.smoothing = 0.5;
  c.dwell_ns = 0;            // no dwell for unit tests
  c.sample_stride = 4;
  c.counting_window_ns = 1000;
  return c;
}

TEST(Throttle, FullLevelPassesEverything) {
  std::vector<trace::EventRecord> out;
  TracingThrottle t(quick_config(),
                    [&](trace::EventRecord r) { out.push_back(r); });
  // Slow events (10 us apart = 1e5/s, between the thresholds): stay kFull.
  for (std::uint64_t i = 0; i < 10; ++i) t.offer(ev(i * 10'000));
  EXPECT_EQ(t.level(), TraceLevel::kFull);
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(t.suppressed(), 0u);
}

TEST(Throttle, EscalatesUnderBurst) {
  std::vector<trace::EventRecord> out;
  TracingThrottle t(quick_config(),
                    [&](trace::EventRecord r) { out.push_back(r); });
  // 100 ns gaps = 1e7 events/s >> escalate threshold.
  for (std::uint64_t i = 0; i < 50; ++i) t.offer(ev(i * 100));
  EXPECT_GE(static_cast<int>(t.level()), static_cast<int>(TraceLevel::kSampled));
  EXPECT_GT(t.level_changes(), 0u);
  EXPECT_LT(out.size(), 50u);  // something was sampled away
}

TEST(Throttle, SampledLevelKeepsOneInN) {
  auto cfg = quick_config();
  std::vector<trace::EventRecord> out;
  TracingThrottle t(cfg, [&](trace::EventRecord r) { out.push_back(r); });
  t.pin(TraceLevel::kSampled);
#if PRISM_OBS_ENABLED
  const std::uint64_t suppressed_before = obs_count("core.throttle.suppressed");
#endif
  for (std::uint64_t i = 0; i < 40; ++i) t.offer(ev(i * 10'000));
  EXPECT_EQ(out.size(), 10u);  // stride 4
  EXPECT_EQ(t.forwarded(), 10u);
  EXPECT_EQ(t.suppressed(), 30u);
#if PRISM_OBS_ENABLED
  // The sampled-away records also surfaced through the telemetry counter.
  EXPECT_EQ(obs_count("core.throttle.suppressed") - suppressed_before, 30u);
#endif
}

TEST(Throttle, CountingAggregatesWindows) {
  auto cfg = quick_config();
  cfg.counting_window_ns = 1000;
  std::vector<trace::EventRecord> out;
  TracingThrottle t(cfg, [&](trace::EventRecord r) { out.push_back(r); });
  t.pin(TraceLevel::kCounting);
  // 10 events 200 ns apart: windows of 1000 ns -> aggregates of ~5.
  for (std::uint64_t i = 1; i <= 10; ++i) t.offer(ev(i * 200));
  ASSERT_GE(out.size(), 1u);
  for (const auto& r : out) {
    EXPECT_EQ(r.kind, trace::EventKind::kSample);
    EXPECT_EQ(r.tag, cfg.counting_tag);
    EXPECT_GE(r.payload, 1u);
  }
  std::uint64_t total = 0;
  for (const auto& r : out) total += r.payload;
  EXPECT_LE(total, 10u);  // aggregates never invent events
}

TEST(Throttle, OffDropsEverything) {
  std::vector<trace::EventRecord> out;
  TracingThrottle t(quick_config(),
                    [&](trace::EventRecord r) { out.push_back(r); });
  t.pin(TraceLevel::kOff);
#if PRISM_OBS_ENABLED
  const std::uint64_t suppressed_before = obs_count("core.throttle.suppressed");
#endif
  for (std::uint64_t i = 0; i < 20; ++i) t.offer(ev(i * 100));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(t.suppressed(), 20u);
#if PRISM_OBS_ENABLED
  EXPECT_EQ(obs_count("core.throttle.suppressed") - suppressed_before, 20u);
#endif
}

TEST(Throttle, DeescalatesWhenQuiet) {
  auto cfg = quick_config();
  std::vector<trace::EventRecord> out;
  TracingThrottle t(cfg, [&](trace::EventRecord r) { out.push_back(r); });
  t.pin(TraceLevel::kSampled);
  t.unpin();
  // Long gaps (1 ms = 1e3/s < deescalate threshold): back toward kFull.
  std::uint64_t ts = 0;
  for (int i = 0; i < 20; ++i) t.offer(ev(ts += 1'000'000));
  EXPECT_EQ(t.level(), TraceLevel::kFull);
}

TEST(Throttle, DwellPreventsFlapping) {
  auto cfg = quick_config();
  cfg.dwell_ns = 1'000'000'000;  // 1 s dwell
  TracingThrottle t(cfg, [](trace::EventRecord) {});
  for (std::uint64_t i = 0; i < 100; ++i) t.offer(ev(i * 100));
  // At most one transition can have happened within the dwell window.
  EXPECT_LE(t.level_changes(), 1u);
}

TEST(Throttle, RateEstimateTracksInput) {
  TracingThrottle t(quick_config(), [](trace::EventRecord) {});
  for (std::uint64_t i = 0; i < 50; ++i) t.offer(ev(i * 10'000));  // 1e5/s
  EXPECT_NEAR(t.estimated_rate_per_sec(), 1e5, 2e4);
}

TEST(Throttle, RejectsBadConfig) {
  auto sink = [](trace::EventRecord) {};
  EXPECT_THROW(TracingThrottle(quick_config(), nullptr),
               std::invalid_argument);
  auto c = quick_config();
  c.escalate_rate = c.deescalate_rate;
  EXPECT_THROW(TracingThrottle(c, sink), std::invalid_argument);
  c = quick_config();
  c.sample_stride = 0;
  EXPECT_THROW(TracingThrottle(c, sink), std::invalid_argument);
  c = quick_config();
  c.smoothing = 0;
  EXPECT_THROW(TracingThrottle(c, sink), std::invalid_argument);
  c = quick_config();
  c.counting_window_ns = 0;
  EXPECT_THROW(TracingThrottle(c, sink), std::invalid_argument);
}

}  // namespace
}  // namespace prism::core
