// Histogram binning, CDF and quantiles.
#include <gtest/gtest.h>

#include "stats/histogram.hpp"
#include "stats/rng.hpp"

namespace prism::stats {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(0.9);
  h.add(5.5);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderAndOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // right edge is exclusive
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(2.0, 6.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 6.0);
}

TEST(Histogram, CdfMonotone) {
  Histogram h(0.0, 1.0, 20);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) h.add(rng.next_double());
  double prev = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    const double c = h.cdf_at_bin(b);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(h.cdf_at_bin(19), 1.0, 1e-12);
}

TEST(Histogram, QuantileOfUniform) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) h.add(rng.next_double());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantileEmptyReturnsLo) {
  Histogram h(3.0, 5.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RejectsBadQuantile) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.1), std::invalid_argument);
}

}  // namespace
}  // namespace prism::stats
