// Special functions and confidence intervals against known reference values.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/confidence.hpp"
#include "stats/rng.hpp"
#include "stats/special.hpp"
#include "stats/summary.hpp"

namespace prism::stats {
namespace {

TEST(LogGamma, IntegerFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-10);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-10);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-9);
  EXPECT_NEAR(log_gamma(11.0), std::log(3628800.0), 1e-8);
}

TEST(LogGamma, HalfInteger) {
  // Gamma(1/2) = sqrt(pi).
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(3.14159265358979323846), 1e-9);
}

TEST(LogGamma, RejectsNonPositive) {
  EXPECT_THROW(log_gamma(0.0), std::domain_error);
  EXPECT_THROW(log_gamma(-1.0), std::domain_error);
}

TEST(GammaP, KnownValues) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 1.0, 3.0, 10.0})
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10);
  // P(a, 0) = 0; Q(a, 0) = 1.
  EXPECT_DOUBLE_EQ(gamma_p(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma_q(3.0, 0.0), 1.0);
}

TEST(GammaP, ComplementIdentity) {
  for (double a : {0.5, 1.0, 2.0, 10.0, 50.0})
    for (double x : {0.1, 1.0, 5.0, 20.0, 80.0})
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-10);
}

TEST(GammaP, MedianOfErlangNearMean) {
  // For Erlang(k, 1), median ~ k - 1/3: P(k, k - 1/3) ~ 0.5.
  for (double k : {5.0, 20.0, 100.0})
    EXPECT_NEAR(gamma_p(k, k - 1.0 / 3.0), 0.5, 0.01);
}

TEST(GammaP, Monotone) {
  double prev = -1;
  for (double x = 0; x <= 20; x += 0.5) {
    const double v = gamma_p(4.0, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(NormalCdf, StandardValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
  EXPECT_NEAR(normal_cdf(1.0), 0.841344746, 1e-6);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999})
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-8);
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(normal_quantile(0.95), 1.644853627, 1e-6);
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
}

TEST(NormalQuantile, RejectsOutOfRange) {
  EXPECT_THROW(normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(normal_quantile(1.0), std::domain_error);
}

TEST(TCritical, MatchesTableValues) {
  // Two-sided critical values from standard t tables.
  EXPECT_NEAR(t_critical(0.95, 10), 2.228, 0.01);
  EXPECT_NEAR(t_critical(0.90, 10), 1.812, 0.01);
  EXPECT_NEAR(t_critical(0.95, 30), 2.042, 0.01);
  EXPECT_NEAR(t_critical(0.90, 49), 1.677, 0.01);  // the paper's r=50 case
  EXPECT_NEAR(t_critical(0.99, 20), 2.845, 0.02);
}

TEST(TCritical, ConvergesToNormal) {
  EXPECT_NEAR(t_critical(0.95, 100000), 1.959963985, 1e-3);
}

TEST(TCritical, DecreasesWithDof) {
  EXPECT_GT(t_critical(0.95, 3), t_critical(0.95, 10));
  EXPECT_GT(t_critical(0.95, 10), t_critical(0.95, 100));
}

TEST(TCritical, RejectsBadInputs) {
  EXPECT_THROW(t_critical(0.0, 5), std::domain_error);
  EXPECT_THROW(t_critical(1.0, 5), std::domain_error);
  EXPECT_THROW(t_critical(0.9, 0), std::domain_error);
}

// ---- ConfidenceInterval -----------------------------------------------------

TEST(ConfidenceInterval, BasicProperties) {
  Summary s;
  for (double x : {10.0, 12.0, 11.0, 9.0, 13.0}) s.add(x);
  const auto ci = confidence_interval(s, 0.90);
  EXPECT_DOUBLE_EQ(ci.mean, s.mean());
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_TRUE(ci.contains(s.mean()));
  EXPECT_LT(ci.lo(), ci.hi());
}

TEST(ConfidenceInterval, WiderAtHigherConfidence) {
  Summary s;
  for (int i = 0; i < 20; ++i) s.add(i % 5);
  EXPECT_LT(confidence_interval(s, 0.90).half_width,
            confidence_interval(s, 0.99).half_width);
}

TEST(ConfidenceInterval, OverlapLogic) {
  ConfidenceInterval a{10.0, 1.0, 0.9, 5};
  ConfidenceInterval b{11.5, 1.0, 0.9, 5};
  ConfidenceInterval c{20.0, 1.0, 0.9, 5};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(ConfidenceInterval, RequiresTwoObservations) {
  Summary s;
  s.add(1);
  EXPECT_THROW(confidence_interval(s, 0.9), std::invalid_argument);
}

TEST(ConfidenceInterval, CoverageIsApproximatelyNominal) {
  // Monte-Carlo coverage check: 90% CIs built from n=10 normal samples
  // should contain the true mean ~90% of the time.
  Rng rng(2024);
  int covered = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    Summary s;
    for (int i = 0; i < 10; ++i) {
      // Standard normal via Box-Muller.
      const double u1 = rng.next_double_open();
      const double u2 = rng.next_double();
      s.add(std::sqrt(-2 * std::log(u1)) *
            std::cos(2 * 3.14159265358979323846 * u2));
    }
    if (confidence_interval(s, 0.90).contains(0.0)) ++covered;
  }
  EXPECT_NEAR(static_cast<double>(covered) / trials, 0.90, 0.025);
}

}  // namespace
}  // namespace prism::stats
