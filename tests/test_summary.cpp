// Welford summaries and time-weighted averages.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/summary.hpp"

namespace prism::stats {
namespace {

TEST(Summary, EmptyIsZeroish) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(Summary, SingleObservation) {
  Summary s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(Summary, KnownValues) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, MergeEqualsSequential) {
  Summary a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, empty;
  a.add(1);
  a.add(3);
  Summary before = a;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), before.mean());
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Summary, StdErrorShrinksWithN) {
  Summary small, big;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) big.add(i % 3);
  EXPECT_GT(small.std_error(), big.std_error());
}

TEST(Summary, NumericalStabilityWithLargeOffset) {
  // Naive sum-of-squares would lose everything at offset 1e9.
  Summary s;
  for (double x : {1e9 + 1, 1e9 + 2, 1e9 + 3}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Summary, ResetClears) {
  Summary s;
  s.add(5);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

// ---- TimeWeighted ----------------------------------------------------------

TEST(TimeWeighted, PiecewiseConstantAverage) {
  TimeWeighted tw(0.0, 0.0);
  tw.set(0.0, 2.0);   // 2 on [0, 4)
  tw.set(4.0, 6.0);   // 6 on [4, 6)
  tw.advance(6.0);
  // integral = 2*4 + 6*2 = 20 over span 6.
  EXPECT_NEAR(tw.time_average(), 20.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(tw.max(), 6.0);
}

TEST(TimeWeighted, InitialValueCounts) {
  TimeWeighted tw(0.0, 3.0);
  tw.advance(10.0);
  EXPECT_DOUBLE_EQ(tw.time_average(), 3.0);
}

TEST(TimeWeighted, AddDelta) {
  TimeWeighted tw(0.0, 0.0);
  tw.add(1.0, +2.0);
  tw.add(2.0, +1.0);
  tw.add(3.0, -3.0);
  EXPECT_DOUBLE_EQ(tw.value(), 0.0);
  // 0 on [0,1), 2 on [1,2), 3 on [2,3): integral 5 over 3.
  EXPECT_NEAR(tw.time_average_until(3.0), 5.0 / 3.0, 1e-12);
}

TEST(TimeWeighted, ZeroSpanReturnsCurrentValue) {
  TimeWeighted tw(5.0, 7.0);
  EXPECT_DOUBLE_EQ(tw.time_average(), 7.0);
}

TEST(TimeWeighted, NonDecreasingTimeAccepted) {
  TimeWeighted tw;
  tw.set(1.0, 1.0);
  tw.set(1.0, 2.0);  // same instant: ok, no span elapses
  tw.advance(2.0);
  EXPECT_NEAR(tw.time_average(), 1.0, 1e-12);  // value 2 over [1,2), 0 on [0,1)
}

TEST(TimeWeighted, NonZeroStart) {
  TimeWeighted tw(10.0, 4.0);
  tw.advance(20.0);
  EXPECT_DOUBLE_EQ(tw.time_average(), 4.0);
  EXPECT_DOUBLE_EQ(tw.integral(), 40.0);
}

}  // namespace
}  // namespace prism::stats
