// Cross-module integration: full pipelines combining the simulated
// multicomputer, the PICL library, perturbation compensation, the live IS,
// and the modeling layer.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "core/clock.hpp"
#include "core/environment.hpp"
#include "core/steering.hpp"
#include "core/views.hpp"
#include "spi/machine.hpp"
#include "paradyn/rocc_model.hpp"
#include "picl/analytic_model.hpp"
#include "picl/library.hpp"
#include "stats/distributions.hpp"
#include "trace/causal.hpp"
#include "trace/file.hpp"
#include "trace/perturbation.hpp"
#include "vista/ism_model.hpp"
#include "workload/apps.hpp"
#include "workload/thread_apps.hpp"

namespace prism {
namespace {

namespace fs = std::filesystem;

TEST(Integration, SimulatedAppToTraceFileToCompensation) {
  // 1. Run an instrumented simulated app under PICL with flush costs.
  sim::Engine eng;
  workload::Multicomputer mc(eng, 4, 0.3, 0.0001);
  picl::PiclConfig cfg;
  cfg.buffer_capacity = 32;
  cfg.flush_cost_base = 2.0;
  cfg.flush_cost_per_record = 0.05;
  picl::PiclInstrumentation instr(mc, cfg);
  stats::Exponential compute(0.5);
  workload::run_stencil_app(mc, 8, compute, stats::Rng(42));

  // 2. Write + read back the merged trace.
  const auto path = fs::temp_directory_path() / "prism_integration.trc";
  const auto n = instr.write_trace(path);
  trace::TraceFileReader reader(path);
  ASSERT_EQ(reader.record_count(), n);

  // 3. Compensate the modeled flush intervals out of the trace.
  auto records = reader.records();
  trace::PerturbationModel model;
  model.remove_flush_intervals = true;
  const auto rep = trace::compensate(records, model);
  EXPECT_GT(rep.total_overhead_removed, 0u);
  fs::remove(path);
}

TEST(Integration, LiveIsFeedsOfflineAnalysis) {
  // Live threads -> forwarding LIS -> ISM with storage -> off-line reader.
  const auto path = fs::temp_directory_path() / "prism_live_store.trc";
  std::uint64_t recorded = 0;
  {
    core::EnvironmentConfig cfg;
    cfg.nodes = 3;
    cfg.lis_style = core::LisStyle::kForwarding;
    cfg.ism.causal_ordering = true;
    cfg.ism.storage_path = path;
    core::IntegratedEnvironment env(cfg);
    auto stats_tool = std::make_shared<core::StatsTool>();
    env.attach_tool(stats_tool);
    env.start();
    const auto rep = workload::run_ring_threads(env, 15, 200);
    env.stop();
    recorded = rep.events_recorded;
    EXPECT_EQ(stats_tool->total(), recorded);
    // Record conservation end to end: every record the apps offered is
    // forwarded/dropped/buffered at the LIS tier, and every record the TP
    // delivered is dispatched/held/queued at the ISM (exact at quiescence).
    EXPECT_TRUE(env.total_lis_stats().conserved());
    EXPECT_TRUE(env.ism().stats().conserved());
  }
  trace::TraceFileReader reader(path);
  EXPECT_EQ(reader.record_count(), recorded);
  // The stored stream is the ISM's release order: causally consistent.
  EXPECT_LT(trace::first_causal_violation(reader.records()), 0);
  fs::remove(path);
}

TEST(Integration, ModelGuidedConfigurationChoice) {
  // The paper's workflow: evaluate both ISM configs on the model, pick the
  // winner for the deployment regime (high arrival rate -> SISO).
  vista::VistaIsmParams p;
  p.horizon_ms = 10'000;
  p.mean_interarrival_ms = 10.0;
  p.miso = false;
  const auto siso = vista::run_vista_ism(p, stats::Rng(1));
  p.miso = true;
  const auto miso = vista::run_vista_ism(p, stats::Rng(1));
  const bool choose_siso =
      siso.mean_processing_latency_ms <= miso.mean_processing_latency_ms;
  EXPECT_TRUE(choose_siso);  // the paper's §3.3.3 design decision
}

TEST(Integration, PiclPolicyChoiceMatchesAnalyticPrediction) {
  // The model predicts FAOF interrupts the program less often; verify the
  // working library's behaviour is consistent: for the same workload, FAOF
  // performs at most as many flush *operations* in gangs triggered at most
  // as often as FOF triggers per-node flushes.
  auto run_with = [](bool faof) {
    sim::Engine eng;
    workload::Multicomputer mc(eng, 4, 0.3, 0.0);
    picl::PiclConfig cfg;
    cfg.buffer_capacity = 8;
    cfg.flush_all_on_fill = faof;
    picl::PiclInstrumentation instr(mc, cfg);
    stats::Exponential compute(0.5);
    workload::run_ring_app(mc, 30, compute, stats::Rng(9));
    return instr.total_flushes();
  };
  // FAOF flushes more buffers per trigger but triggers less often overall;
  // with a shared event stream its total flush count is bounded by P times
  // the FOF trigger count.  Sanity check both complete and capture all data.
  EXPECT_GT(run_with(false), 0u);
  EXPECT_GT(run_with(true), 0u);
}

TEST(Integration, RoccModelAgreesWithLiveTrendDirection) {
  // Model: daemon share falls as app processes grow.  (The live analogue is
  // exercised in test_paradyn_live; here we pin the model's direction with
  // tighter replication.)
  paradyn::ParadynRoccParams p;
  p.horizon_ms = 8'000;
  const auto pts = paradyn::sweep_app_processes(p, {2, 16}, 6, 4242);
  EXPECT_GT(pts[0].utilization_pct.mean, pts[1].utilization_pct.mean);
}

TEST(Integration, EnvironmentSupportsHeterogeneousToolSet) {
  // "An integrated environment supports multiple, possibly heterogeneous,
  // tools ... carrying out one or more analyses of the same program."
  core::EnvironmentConfig cfg;
  cfg.nodes = 2;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.local_buffer_capacity = 16;
  cfg.ism.causal_ordering = false;
  core::IntegratedEnvironment env(cfg);
  auto stats_tool = std::make_shared<core::StatsTool>();
  auto timeline = std::make_shared<core::TimelineTool>(256);
  int steering_triggers = 0;
  auto watcher = std::make_shared<core::ThresholdWatchTool>(
      1, 50.0, [&](const trace::EventRecord&, double) { ++steering_triggers; });
  env.attach_tool(stats_tool);
  env.attach_tool(timeline);
  env.attach_tool(watcher);
  env.start();
  for (std::uint64_t s = 0; s < 20; ++s) {
    trace::EventRecord r;
    r.timestamp = core::now_ns();
    r.node = static_cast<std::uint32_t>(s % 2);
    r.kind = trace::EventKind::kSample;
    r.tag = 1;
    r.payload = trace::pack_double(s * 10.0);  // crosses 50 at s=6
    r.seq = s / 2;
    env.record(r);
  }
  env.stop();
  EXPECT_EQ(stats_tool->total(), 20u);
  EXPECT_FALSE(timeline->records().empty());
  EXPECT_GT(steering_triggers, 0);
  EXPECT_TRUE(env.total_lis_stats().conserved());
  EXPECT_TRUE(env.ism().stats().conserved());
}

TEST(Integration, ViewsThresholdSteeringComposition) {
  // Falcon-style composition: raw samples -> windowed mean view -> the view
  // stream feeds both an SPI rule and a steering policy, which sends a
  // control message back through the TP.  Everything lives in one
  // integrated environment.
  core::EnvironmentConfig cfg;
  cfg.nodes = 1;
  cfg.lis_style = core::LisStyle::kForwarding;
  cfg.ism.causal_ordering = false;
  core::IntegratedEnvironment env(cfg);

  // Steering consumes the *derived* view samples (tag 200).
  core::SteeringPolicy policy;
  policy.metric_tag = 200;
  policy.high_threshold = 0.7;
  policy.consecutive_needed = 2;
  policy.high_action = {core::ControlKind::kSetSamplingPeriod, 0, 9e6};
  auto steer = std::make_shared<core::SteeringTool>(env.ism(), policy);

  // SPI rule also watches the derived stream.
  auto machine = std::make_shared<spi::EventActionMachine>(spi::parse_spec(
      "rule hot_view: when kind = sample && tag = 200 && value > 0.7 do count"));

  // The view tool aggregates raw tag-1 samples into 1 ms windows and fans
  // the derived records out to both consumers directly.
  core::ViewDef def;
  def.name = "load";
  def.source_tag = 1;
  def.aggregate = core::ViewAggregate::kMean;
  def.window_ns = 1'000'000;
  def.output_tag = 200;
  auto views = std::make_shared<core::MetricViewTool>(
      std::vector<core::ViewDef>{def},
      [steer, machine](const trace::EventRecord& r) {
        steer->consume(r);
        machine->consume(r);
      });
  env.attach_tool(views);
  env.start();

  // Raw samples: three windows averaging ~0.9.
  std::uint64_t seq = 0;
  for (int w = 0; w < 3; ++w) {
    for (int i = 0; i < 4; ++i) {
      trace::EventRecord r;
      r.timestamp = static_cast<std::uint64_t>(w) * 1'000'000 +
                    static_cast<std::uint64_t>(i) * 200'000;
      r.node = 0;
      r.kind = trace::EventKind::kSample;
      r.tag = 1;
      r.payload = trace::pack_double(0.9);
      r.seq = seq++;
      env.record(r);
    }
  }
  env.stop();  // finish() flushes the last view window

  EXPECT_GE(views->windows_emitted("load"), 2u);
  EXPECT_GE(machine->count("hot_view"), 2u);
  EXPECT_EQ(steer->high_actions_fired(), 1u);
  auto msg = env.tp().control_link(0).try_pop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_DOUBLE_EQ(msg->value, 9e6);
}

TEST(Integration, PaperWorkflowEndToEnd) {
  // Figure 1's loop in miniature: requirements -> model -> evaluation ->
  // decision -> synthesis (live run with the chosen policy).
  // Requirement: flush interruptions must be rare for a bursty workload.
  picl::PiclModelParams model;
  model.buffer_capacity = 64;
  model.arrival_rate = 0.5;
  model.nodes = 4;
  const bool prefer_faof = picl::faof_interruption_rate(model) <
                           picl::fof_interruption_rate(model);
  // Synthesis: configure the working library accordingly and run.
  sim::Engine eng;
  workload::Multicomputer mc(eng, 4, 0.2, 0.0);
  picl::PiclConfig cfg;
  cfg.buffer_capacity = 64;
  cfg.flush_all_on_fill = prefer_faof;
  picl::PiclInstrumentation instr(mc, cfg);
  stats::Exponential compute(0.3);
  workload::run_master_worker_app(mc, 50, compute, stats::Rng(11));
  auto merged = instr.finalize();
  EXPECT_FALSE(merged.empty());
  EXPECT_TRUE(prefer_faof);  // the analysis favours FAOF, as in the paper
}

}  // namespace
}  // namespace prism
