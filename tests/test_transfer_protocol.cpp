// Transfer protocol wiring: SISO/MISO link layouts, routing, broadcast,
// shutdown.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/transfer_protocol.hpp"
#include "fault/fault.hpp"

namespace prism::core {
namespace {

TEST(TransferProtocol, SisoSharesOneDataLink) {
  TransferProtocol tp(TpFlavor::kPipe, 4, 1, 16);
  EXPECT_EQ(tp.data_link_count(), 1u);
  EXPECT_EQ(&tp.data_link_for(0), &tp.data_link_for(3));
}

TEST(TransferProtocol, MisoGivesEachNodeItsOwnLink) {
  TransferProtocol tp(TpFlavor::kSocket, 4, 4, 16);
  EXPECT_EQ(tp.data_link_count(), 4u);
  EXPECT_NE(&tp.data_link_for(0), &tp.data_link_for(1));
  EXPECT_EQ(&tp.data_link_for(2), &tp.data_link(2));
}

TEST(TransferProtocol, RejectsInvalidLayouts) {
  EXPECT_THROW(TransferProtocol(TpFlavor::kPipe, 0, 1, 16),
               std::invalid_argument);
  EXPECT_THROW(TransferProtocol(TpFlavor::kPipe, 4, 2, 16),
               std::invalid_argument);
  EXPECT_THROW(TransferProtocol(TpFlavor::kPipe, 4, 0, 16),
               std::invalid_argument);
}

TEST(TransferProtocol, RejectsBadNodeLookup) {
  TransferProtocol tp(TpFlavor::kPipe, 2, 1, 16);
  EXPECT_THROW(tp.data_link_for(2), std::out_of_range);
  EXPECT_THROW(tp.control_link(2), std::out_of_range);
}

TEST(TransferProtocol, DataBatchRoundTrip) {
  TransferProtocol tp(TpFlavor::kPipe, 2, 1, 16);
  DataBatch b;
  b.source_node = 1;
  b.t_sent_ns = 12345;
  trace::EventRecord r;
  r.timestamp = 7;
  b.records.push_back(r);
  tp.data_link_for(1).push(Message(std::move(b)));
  auto msg = tp.data_link(0).try_pop();
  ASSERT_TRUE(msg.has_value());
  auto* batch = std::get_if<DataBatch>(&*msg);
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->source_node, 1u);
  EXPECT_EQ(batch->records.size(), 1u);
  EXPECT_EQ(batch->records[0].timestamp, 7u);
}

TEST(TransferProtocol, BroadcastReachesEveryNodeWithItsId) {
  TransferProtocol tp(TpFlavor::kRpc, 3, 1, 16);
  tp.broadcast(ControlMessage{ControlKind::kFlushAll, 0, 0.0});
  for (std::uint32_t n = 0; n < 3; ++n) {
    auto m = tp.control_link(n).try_pop();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->kind, ControlKind::kFlushAll);
    EXPECT_EQ(m->target_node, n);
  }
}

TEST(TransferProtocol, CloseAllEofsEverything) {
  TransferProtocol tp(TpFlavor::kCustom, 2, 2, 16);
  tp.close_all();
  EXPECT_FALSE(tp.data_link(0).pop().has_value());
  EXPECT_FALSE(tp.data_link(1).pop().has_value());
  EXPECT_FALSE(tp.control_link(0).pop().has_value());
}

TEST(TransferProtocol, NamesForDisplay) {
  EXPECT_EQ(to_string(TpFlavor::kPipe), "pipe");
  EXPECT_EQ(to_string(TpFlavor::kSocket), "socket");
  EXPECT_EQ(to_string(TpFlavor::kRpc), "rpc");
  EXPECT_EQ(to_string(ControlKind::kFlushAll), "flush_all");
  EXPECT_EQ(to_string(ControlKind::kSetSamplingPeriod),
            "set_sampling_period");
}

// ---- Reliable control path ----------------------------------------------------

TEST(ControlPlane, LifecycleCriticalKindsAreExactlyShutdownFlushAllStop) {
  EXPECT_TRUE(lifecycle_critical(ControlKind::kShutdown));
  EXPECT_TRUE(lifecycle_critical(ControlKind::kFlushAll));
  EXPECT_TRUE(lifecycle_critical(ControlKind::kStop));
  EXPECT_FALSE(lifecycle_critical(ControlKind::kStart));
  EXPECT_FALSE(lifecycle_critical(ControlKind::kSetSamplingPeriod));
  EXPECT_FALSE(lifecycle_critical(ControlKind::kEnableInstrumentation));
  EXPECT_FALSE(lifecycle_critical(ControlKind::kDisableInstrumentation));
}

TEST(ControlPlane, CriticalBroadcastBlocksUntilConsumerDrains) {
  // Regression: kShutdown on a full link used to be a silent try_push drop —
  // the receiver's threads leaked.  Now it blocks (bounded) for the consumer.
  TransferProtocol tp(TpFlavor::kPipe, 1, 1, 1);
  ASSERT_TRUE(
      tp.control_link(0).try_push(ControlMessage{ControlKind::kStart, 0, 0}));
  std::thread consumer([&tp] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    tp.control_link(0).pop();  // frees the slot
  });
  tp.broadcast(ControlMessage{ControlKind::kShutdown, 0, 0});
  consumer.join();
  EXPECT_EQ(tp.control_dropped_total(), 0u);
  auto m = tp.control_link(0).try_pop();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->kind, ControlKind::kShutdown);
}

TEST(ControlPlane, NonCriticalDropOnFullLinkAttributedPerKind) {
  TransferProtocol tp(TpFlavor::kPipe, 1, 1, 1);
  ASSERT_TRUE(
      tp.control_link(0).try_push(ControlMessage{ControlKind::kStart, 0, 0}));
  tp.broadcast(ControlMessage{ControlKind::kSetSamplingPeriod, 0, 1e6});
  EXPECT_EQ(tp.control_dropped(ControlKind::kSetSamplingPeriod), 1u);
  EXPECT_EQ(tp.control_dropped(ControlKind::kShutdown), 0u);
  EXPECT_EQ(tp.control_dropped_total(), 1u);
}

TEST(ControlPlane, CriticalTimeoutIsAttributedNotSilent) {
  TransferProtocol tp(TpFlavor::kPipe, 1, 1, 1);
  ASSERT_TRUE(
      tp.control_link(0).try_push(ControlMessage{ControlKind::kStart, 0, 0}));
  tp.set_control_send_timeout_ns(1'000'000);  // 1 ms; nobody ever drains
  tp.broadcast(ControlMessage{ControlKind::kShutdown, 0, 0});
  EXPECT_EQ(tp.control_dropped(ControlKind::kShutdown), 1u);
}

TEST(ControlPlane, InjectedFailureRetriedForCriticalKinds) {
  TransferProtocol tp(TpFlavor::kPipe, 2, 1, 16);
  fault::FaultPlan plan;
  fault::FaultSpec s;
  s.site = fault::FaultSite::kTpControl;
  s.kind = fault::FaultKind::kSendFail;
  s.at_op = 1;  // first delivery attempt per node fails
  plan.add(s);
  fault::FaultInjector inj(plan, 4);
  fault::RetryPolicy rp;
  rp.base_backoff_ns = 100;
  tp.set_fault(&inj, rp);
  tp.broadcast(ControlMessage{ControlKind::kFlushAll, 0, 0});
  EXPECT_EQ(tp.control_dropped_total(), 0u);
  for (std::uint32_t n = 0; n < 2; ++n) {
    auto m = tp.control_link(n).try_pop();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->kind, ControlKind::kFlushAll);
  }
}

TEST(ControlPlane, InjectedFailureDropsNonCriticalWithoutRetry) {
  TransferProtocol tp(TpFlavor::kPipe, 1, 1, 16);
  fault::FaultPlan plan;
  fault::FaultSpec s;
  s.site = fault::FaultSite::kTpControl;
  s.kind = fault::FaultKind::kSendFail;
  s.every_n = 1;  // every attempt fails
  plan.add(s);
  fault::FaultInjector inj(plan, 4);
  tp.set_fault(&inj);
  tp.broadcast(ControlMessage{ControlKind::kSetSamplingPeriod, 0, 5e5});
  EXPECT_EQ(tp.control_dropped(ControlKind::kSetSamplingPeriod), 1u);
  EXPECT_FALSE(tp.control_link(0).try_pop().has_value());
  // Exactly one consult: non-critical kinds never burn retry budget.
  EXPECT_EQ(inj.stats().consults, 1u);
}

}  // namespace
}  // namespace prism::core
