// Transfer protocol wiring: SISO/MISO link layouts, routing, broadcast,
// shutdown.
#include <gtest/gtest.h>

#include "core/transfer_protocol.hpp"

namespace prism::core {
namespace {

TEST(TransferProtocol, SisoSharesOneDataLink) {
  TransferProtocol tp(TpFlavor::kPipe, 4, 1, 16);
  EXPECT_EQ(tp.data_link_count(), 1u);
  EXPECT_EQ(&tp.data_link_for(0), &tp.data_link_for(3));
}

TEST(TransferProtocol, MisoGivesEachNodeItsOwnLink) {
  TransferProtocol tp(TpFlavor::kSocket, 4, 4, 16);
  EXPECT_EQ(tp.data_link_count(), 4u);
  EXPECT_NE(&tp.data_link_for(0), &tp.data_link_for(1));
  EXPECT_EQ(&tp.data_link_for(2), &tp.data_link(2));
}

TEST(TransferProtocol, RejectsInvalidLayouts) {
  EXPECT_THROW(TransferProtocol(TpFlavor::kPipe, 0, 1, 16),
               std::invalid_argument);
  EXPECT_THROW(TransferProtocol(TpFlavor::kPipe, 4, 2, 16),
               std::invalid_argument);
  EXPECT_THROW(TransferProtocol(TpFlavor::kPipe, 4, 0, 16),
               std::invalid_argument);
}

TEST(TransferProtocol, RejectsBadNodeLookup) {
  TransferProtocol tp(TpFlavor::kPipe, 2, 1, 16);
  EXPECT_THROW(tp.data_link_for(2), std::out_of_range);
  EXPECT_THROW(tp.control_link(2), std::out_of_range);
}

TEST(TransferProtocol, DataBatchRoundTrip) {
  TransferProtocol tp(TpFlavor::kPipe, 2, 1, 16);
  DataBatch b;
  b.source_node = 1;
  b.t_sent_ns = 12345;
  trace::EventRecord r;
  r.timestamp = 7;
  b.records.push_back(r);
  tp.data_link_for(1).push(Message(std::move(b)));
  auto msg = tp.data_link(0).try_pop();
  ASSERT_TRUE(msg.has_value());
  auto* batch = std::get_if<DataBatch>(&*msg);
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->source_node, 1u);
  EXPECT_EQ(batch->records.size(), 1u);
  EXPECT_EQ(batch->records[0].timestamp, 7u);
}

TEST(TransferProtocol, BroadcastReachesEveryNodeWithItsId) {
  TransferProtocol tp(TpFlavor::kRpc, 3, 1, 16);
  tp.broadcast(ControlMessage{ControlKind::kFlushAll, 0, 0.0});
  for (std::uint32_t n = 0; n < 3; ++n) {
    auto m = tp.control_link(n).try_pop();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->kind, ControlKind::kFlushAll);
    EXPECT_EQ(m->target_node, n);
  }
}

TEST(TransferProtocol, CloseAllEofsEverything) {
  TransferProtocol tp(TpFlavor::kCustom, 2, 2, 16);
  tp.close_all();
  EXPECT_FALSE(tp.data_link(0).pop().has_value());
  EXPECT_FALSE(tp.data_link(1).pop().has_value());
  EXPECT_FALSE(tp.control_link(0).pop().has_value());
}

TEST(TransferProtocol, NamesForDisplay) {
  EXPECT_EQ(to_string(TpFlavor::kPipe), "pipe");
  EXPECT_EQ(to_string(TpFlavor::kSocket), "socket");
  EXPECT_EQ(to_string(TpFlavor::kRpc), "rpc");
  EXPECT_EQ(to_string(ControlKind::kFlushAll), "flush_all");
  EXPECT_EQ(to_string(ControlKind::kSetSamplingPeriod),
            "set_sampling_period");
}

}  // namespace
}  // namespace prism::core
