// The scrape endpoint and its IntegratedEnvironment wiring (DESIGN.md §14):
// the HTTP/1.0 pump over AF_UNIX and TCP loopback, untrusted-input handling
// (oversize, non-GET, unknown path), a fork-based scrape round trip, and the
// live acceptance properties — a chaos run scraped mid-run shows
// admitted == completed + lost + in_flight in every snapshot, the flight
// recorder's attribution matches the DegradationReport, and turning
// telemetry on does not change what the pipeline computes.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <charconv>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/environment.hpp"
#include "core/tool.hpp"
#include "fault/fault.hpp"
#include "obs/json_check.hpp"
#include "obs/obs.hpp"

#if PRISM_OBS_ENABLED
#include "obs/live/endpoint.hpp"
#include "obs/live/flight.hpp"
#include "obs/live/health.hpp"
#include "obs/live/sampler.hpp"
#endif

namespace prism {
namespace {

using core::EnvironmentConfig;
using core::IntegratedEnvironment;
using core::TelemetryMode;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultSite;
using fault::RetryPolicy;

trace::EventRecord rec(std::uint32_t node, std::uint64_t seq) {
  trace::EventRecord r;
  r.node = node;
  r.seq = seq;
  r.timestamp = seq;
  return r;
}

/// Tool that counts what it consumed.
class CountTool final : public core::Tool {
 public:
  std::string_view name() const override { return "count"; }
  void consume(const trace::EventRecord&) override {
    seen_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t seen() const { return seen_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> seen_{0};
};

// ---- raw scrape client --------------------------------------------------------

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(const std::string& host_port) {
  const auto colon = host_port.rfind(':');
  if (colon == std::string::npos) return -1;
  std::uint16_t port = 0;
  const std::string p = host_port.substr(colon + 1);
  if (std::from_chars(p.data(), p.data() + p.size(), port).ec != std::errc{})
    return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Sends `request` and reads the full response (the server speaks HTTP/1.0
/// with Connection: close, so EOF delimits).  Bounded by a poll timeout so a
/// broken server fails the test instead of hanging it.
std::string raw_round_trip(int fd, std::string_view request) {
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return {};
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 5000) <= 0) break;  // timeout or error: give up
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;  // EOF = response complete
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response;
}

std::string http_get(const std::string& address, bool is_unix,
                     const std::string& path) {
  const int fd = is_unix ? connect_unix(address) : connect_tcp(address);
  if (fd < 0) return {};
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::string response = raw_round_trip(fd, req);
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const auto split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string{}
                                    : response.substr(split + 4);
}

std::string scratch_sock(const char* tag) {
  return "/tmp/prism.test." + std::string(tag) + "." +
         std::to_string(::getpid()) + ".sock";
}

#if PRISM_OBS_ENABLED

using obs::live::EndpointKind;
using obs::live::EndpointOptions;
using obs::live::FlightRecorder;
using obs::live::TelemetryServer;

TelemetryServer make_server(EndpointOptions eo) {
  return TelemetryServer(
      std::move(eo),
      [](std::string_view path, std::string& content_type, std::string& body) {
        if (path != "/metrics") return false;
        content_type = "text/plain; version=0.0.4";
        body = "prism_up 1\n";
        return true;
      });
}

// ---- TelemetryServer over AF_UNIX --------------------------------------------

TEST(TelemetryServer, ServesOverUnixSocket) {
  const std::string path = scratch_sock("serve");
  auto server = make_server({EndpointKind::kUnix, path});
  EXPECT_EQ(server.address(), path);

  const std::string response = http_get(path, true, "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_EQ(body_of(response), "prism_up 1\n");
  // Content-Length matches the body exactly.
  EXPECT_NE(response.find("Content-Length: 11"), std::string::npos);
  EXPECT_EQ(server.requests(), 1u);

  server.stop();
  // The unix path is unlinked on stop.
  EXPECT_LT(connect_unix(path), 0);
}

TEST(TelemetryServer, UnknownPathIs404) {
  const std::string path = scratch_sock("404");
  auto server = make_server({EndpointKind::kUnix, path});
  const std::string response = http_get(path, true, "/nope");
  EXPECT_NE(response.find("HTTP/1.0 404"), std::string::npos) << response;
}

TEST(TelemetryServer, NonGetIs400) {
  const std::string path = scratch_sock("post");
  auto server = make_server({EndpointKind::kUnix, path});
  const int fd = connect_unix(path);
  ASSERT_GE(fd, 0);
  const std::string response =
      raw_round_trip(fd, "POST /metrics HTTP/1.0\r\n\r\n");
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.0 400"), std::string::npos) << response;
}

TEST(TelemetryServer, OversizeRequestIs400NotAnUnboundedBuffer) {
  const std::string path = scratch_sock("big");
  auto server = make_server({EndpointKind::kUnix, path});
  const int fd = connect_unix(path);
  ASSERT_GE(fd, 0);
  // No terminator anywhere: only the size cap can end this request.
  const std::string garbage(TelemetryServer::kMaxRequestBytes + 64, 'x');
  const std::string response = raw_round_trip(fd, garbage);
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.0 400"), std::string::npos) << response;
}

TEST(TelemetryServer, BarePathProbeWithoutHttpVersionWorks) {
  // `GET /metrics` + newline, no HTTP/x.y — the netcat/debug form.
  const std::string path = scratch_sock("bare");
  auto server = make_server({EndpointKind::kUnix, path});
  const int fd = connect_unix(path);
  ASSERT_GE(fd, 0);
  const std::string response = raw_round_trip(fd, "GET /metrics\n");
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos) << response;
  EXPECT_EQ(body_of(response), "prism_up 1\n");
}

TEST(TelemetryServer, TcpEphemeralPortReportsRealAddress) {
  auto server = make_server({EndpointKind::kTcp, "0"});
  const std::string& addr = server.address();
  ASSERT_EQ(addr.rfind("127.0.0.1:", 0), 0u) << addr;
  ASSERT_NE(addr, "127.0.0.1:0");  // the real bound port, not the request
  const std::string response = http_get(addr, false, "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos) << response;
  EXPECT_EQ(body_of(response), "prism_up 1\n");
}

TEST(TelemetryServer, ServesManySequentialScrapes) {
  const std::string path = scratch_sock("many");
  auto server = make_server({EndpointKind::kUnix, path});
  for (int i = 0; i < 20; ++i) {
    const std::string response = http_get(path, true, "/metrics");
    ASSERT_NE(response.find("200 OK"), std::string::npos) << "scrape " << i;
  }
  EXPECT_EQ(server.requests(), 20u);
}

// ---- fork-based scrape round trip --------------------------------------------

TEST(TelemetryScrape, ForkedChildScrapesALiveEnvironmentOverUnix) {
  const std::string path = scratch_sock("fork");
  EnvironmentConfig cfg;
  cfg.nodes = 2;
  cfg.telemetry.mode = TelemetryMode::kUnix;
  cfg.telemetry.endpoint = path;
  cfg.telemetry.period_ms = 5;
  IntegratedEnvironment env(cfg);
  auto tool = std::make_shared<CountTool>();
  env.attach_tool(tool);
  env.start();
  for (std::uint64_t i = 0; i < 64; ++i) env.record(rec(i % 2, i));

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: plain POSIX scrape, no gtest, no atexit — report via exit code.
    const std::string response = http_get(path, true, "/metrics");
    const bool ok =
        response.find("HTTP/1.0 200 OK") != std::string::npos &&
        response.find("prism_pipeline_records{stage=\"lis\","
                      "state=\"admitted\"}") != std::string::npos &&
        response.find("# TYPE prism_pipeline_conserved gauge") !=
            std::string::npos;
    ::_exit(ok ? 0 : 1);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child scrape failed";
  env.stop();
}

// ---- live environment integration --------------------------------------------

TEST(TelemetryLive, EnvironmentServesMetricsHealthAndFlight) {
  EnvironmentConfig cfg;
  cfg.nodes = 2;
  cfg.telemetry.mode = TelemetryMode::kUnix;
  cfg.telemetry.endpoint = scratch_sock("env");
  IntegratedEnvironment env(cfg);
  auto tool = std::make_shared<CountTool>();
  env.attach_tool(tool);
  env.start();
  ASSERT_NE(env.telemetry_sampler(), nullptr);
  ASSERT_NE(env.telemetry_server(), nullptr);
  EXPECT_EQ(env.telemetry_address(), cfg.telemetry.endpoint);

  // Per-node contiguous seqs: the causal reorderer must not hold anything.
  for (std::uint64_t i = 0; i < 32; ++i) env.record(rec(i % 2, i / 2));

  const std::string metrics =
      body_of(http_get(env.telemetry_address(), true, "/metrics"));
  EXPECT_NE(metrics.find("# TYPE prism_pipeline_records gauge"),
            std::string::npos);
  EXPECT_NE(metrics.find("prism_health_sample_seq"), std::string::npos);

  const std::string health =
      body_of(http_get(env.telemetry_address(), true, "/health"));
  const auto doc = obs::jsonlite::parse(health);
  ASSERT_TRUE(doc.has_value()) << health;
  EXPECT_EQ(doc->find("version")->num, obs::live::kHealthSnapshotVersion);

  const std::string flight =
      body_of(http_get(env.telemetry_address(), true, "/flight"));
  EXPECT_TRUE(obs::jsonlite::valid(flight)) << flight;

  env.stop();
  EXPECT_EQ(tool->seen(), 32u);
}

// The acceptance criterion: a chaotic run is scrapeable mid-run, and every
// scrape satisfies the conservation identity on every stage.
TEST(TelemetryLive, MidChaosScrapesConserveOnEveryStage) {
  EnvironmentConfig cfg;
  cfg.nodes = 2;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.local_buffer_capacity = 8;
  // Lossy run: without causal ordering, a seq gap from a lost send does not
  // strand every later record of that node in the reorderer — the terminal
  // drain can then empty the pipeline row completely.
  cfg.ism.causal_ordering = false;
  cfg.telemetry.mode = TelemetryMode::kUnix;
  cfg.telemetry.endpoint = scratch_sock("chaos");
  cfg.telemetry.period_ms = 2;
  IntegratedEnvironment env(cfg);
  auto tool = std::make_shared<CountTool>();
  env.attach_tool(tool);

  FaultPlan plan;
  plan.send_failure(FaultSite::kTpSend, 0.10);
  FaultInjector inj(plan, 1234);
  RetryPolicy rp;
  rp.max_attempts = 2;  // one retry
  env.set_fault(&inj, rp);
  env.start();

  std::uint64_t last_admitted = 0;
  int scrapes = 0;
  for (std::uint64_t i = 0; i < 4000; ++i) {
    env.record(rec(i % 2, i / 2));
    if (i % 400 != 399) continue;
    const std::string health =
        body_of(http_get(env.telemetry_address(), true, "/health"));
    const auto doc = obs::jsonlite::parse(health);
    ASSERT_TRUE(doc.has_value()) << health;
    const auto* stages = doc->find("stages");
    ASSERT_NE(stages, nullptr);
    ASSERT_TRUE(stages->is_array());
    ASSERT_FALSE(stages->arr.empty());
    for (const auto& s : stages->arr) {
      const auto admitted = static_cast<std::uint64_t>(s.find("admitted")->num);
      const auto completed =
          static_cast<std::uint64_t>(s.find("completed")->num);
      const auto lost = static_cast<std::uint64_t>(s.find("lost")->num);
      const auto in_flight =
          static_cast<std::uint64_t>(s.find("in_flight")->num);
      EXPECT_TRUE(s.find("conserved")->b)
          << s.find("name")->str << " at scrape " << scrapes;
      EXPECT_EQ(admitted, completed + lost + in_flight) << s.find("name")->str;
      if (s.find("name")->str == "lis") {
        // Admissions are monotone scrape over scrape.
        EXPECT_GE(admitted, last_admitted);
        last_admitted = admitted;
      }
    }
    ++scrapes;
  }
  EXPECT_EQ(scrapes, 10);
  env.stop();

  // The terminal (post-drain) sample conserves too, with nothing in flight
  // on the pipeline row.
  obs::live::HealthSnapshot hs;
  ASSERT_TRUE(env.telemetry_sampler()->read(hs));
  EXPECT_TRUE(hs.conserved());
  const auto* pipeline = hs.stage("pipeline");
  ASSERT_NE(pipeline, nullptr);
  EXPECT_EQ(pipeline->in_flight, 0u);
  EXPECT_EQ(pipeline->completed, tool->seen());
}

// The flight recorder's attribution must agree with the DegradationReport:
// same losses, same categories, independently accounted.
TEST(TelemetryLive, FlightRecorderMatchesDegradationReport) {
  FlightRecorder::instance().reset();
  EnvironmentConfig cfg;
  cfg.nodes = 2;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.local_buffer_capacity = 4;
  IntegratedEnvironment env(cfg);
  auto tool = std::make_shared<CountTool>();
  env.attach_tool(tool);

  FaultPlan plan;
  plan.send_failure(FaultSite::kTpSend, 0.15);
  plan.crash(FaultSite::kTpSend, 120, 1);  // node 1 dies on its 120th consult
  FaultInjector inj(plan, 77);
  RetryPolicy rp;
  rp.max_attempts = 1;  // no retries: every failed send is a loss
  env.set_fault(&inj, rp);
  env.start();
  for (std::uint64_t i = 0; i < 1000; ++i) env.record(rec(i % 2, i / 2));
  env.stop();

  const auto deg = env.degradation();
  ASSERT_TRUE(deg.degraded());  // the plan guarantees losses at these odds
  const auto& fr = FlightRecorder::instance();
  EXPECT_EQ(fr.count_in_category("send_loss"), deg.records_lost_send);
  EXPECT_EQ(fr.count_in_category("dead_loss"), deg.records_lost_dead);
  EXPECT_EQ(fr.count_in_category("wire_loss"), deg.records_lost_wire);
  EXPECT_EQ(fr.events_in_category("lis_crash"), deg.lises_dead);
  EXPECT_EQ(fr.events_in_category("tool_isolated"), deg.tools_failed);
  EXPECT_EQ(fr.events_in_category("control_drop"), deg.control_dropped);
}

// Telemetry must observe, never perturb: the same seeded chaos run computes
// the same ledger with the plane on and off.
TEST(TelemetryLive, SameSeedSameLedgerWithTelemetryOnAndOff) {
  struct Ledger {
    core::LisStats lis;
    std::uint64_t dispatched = 0;
    std::uint64_t seen = 0;
    core::DegradationReport deg;
  };
  auto run = [&](TelemetryMode mode) {
    EnvironmentConfig cfg;
    cfg.nodes = 2;
    cfg.lis_style = core::LisStyle::kBuffered;
    cfg.local_buffer_capacity = 8;
    cfg.telemetry.mode = mode;
    cfg.telemetry.period_ms = 1;  // sample as aggressively as possible
    if (mode == TelemetryMode::kUnix)
      cfg.telemetry.endpoint = scratch_sock("ab");
    IntegratedEnvironment env(cfg);
    auto tool = std::make_shared<CountTool>();
    env.attach_tool(tool);
    FaultPlan plan;
    plan.send_failure(FaultSite::kTpSend, 0.2);
    FaultInjector inj(plan, 4242);
    RetryPolicy rp;
    rp.max_attempts = 1;  // no retries: losses are frequent, never zero
    env.set_fault(&inj, rp);
    env.start();
    for (std::uint64_t i = 0; i < 2000; ++i) {
      env.record(rec(i % 2, i / 2));
      if (mode == TelemetryMode::kUnix && i % 500 == 499)
        http_get(env.telemetry_address(), true, "/metrics");  // live scrapes
    }
    env.stop();
    Ledger l;
    l.lis = env.total_lis_stats();
    l.dispatched = env.ism().stats().records_dispatched;
    l.seen = tool->seen();
    l.deg = env.degradation();
    return l;
  };

  const Ledger off = run(TelemetryMode::kOff);
  const Ledger on = run(TelemetryMode::kUnix);
  EXPECT_EQ(off.lis.recorded, on.lis.recorded);
  EXPECT_EQ(off.lis.records_forwarded, on.lis.records_forwarded);
  EXPECT_EQ(off.lis.lost_send, on.lis.lost_send);
  EXPECT_EQ(off.lis.lost_dead, on.lis.lost_dead);
  EXPECT_EQ(off.lis.dropped, on.lis.dropped);
  EXPECT_EQ(off.dispatched, on.dispatched);
  EXPECT_EQ(off.seen, on.seen);
  EXPECT_EQ(off.deg.records_lost_send, on.deg.records_lost_send);
  EXPECT_EQ(off.deg.lises_dead, on.deg.lises_dead);
  // And losses actually happened, so the comparison is not vacuous.
  EXPECT_GT(off.deg.records_lost_send, 0u);
}

TEST(TelemetryLive, OffModeStartsNoTelemetryMachinery) {
  EnvironmentConfig cfg;  // telemetry.mode defaults to kOff
  IntegratedEnvironment env(cfg);
  env.start();
  EXPECT_EQ(env.telemetry_sampler(), nullptr);
  EXPECT_EQ(env.telemetry_server(), nullptr);
  EXPECT_EQ(env.telemetry_address(), "");
  env.stop();
}

#else  // !PRISM_OBS_ENABLED

TEST(TelemetryLive, RequestingTelemetryInAnObsOffBuildThrows) {
  EnvironmentConfig cfg;
  cfg.telemetry.mode = TelemetryMode::kUnix;
  IntegratedEnvironment env(cfg);
  EXPECT_THROW(env.start(), std::runtime_error);
}

#endif  // PRISM_OBS_ENABLED

// ---- config keys --------------------------------------------------------------

TEST(TelemetryConfig, ParsesTheTelemetryKeys) {
  const auto cfg = core::parse_environment_config(
      "telemetry = tcp\n"
      "telemetry_period_ms = 25\n"
      "telemetry_endpoint = 9109\n");
  EXPECT_EQ(cfg.telemetry.mode, TelemetryMode::kTcp);
  EXPECT_EQ(cfg.telemetry.period_ms, 25u);
  EXPECT_EQ(cfg.telemetry.endpoint, "9109");
}

TEST(TelemetryConfig, DefaultsToOff) {
  const auto cfg = core::parse_environment_config("nodes = 2\n");
  EXPECT_EQ(cfg.telemetry.mode, TelemetryMode::kOff);
  EXPECT_EQ(cfg.telemetry.period_ms, 100u);
}

TEST(TelemetryConfig, RejectsBadModeAndZeroPeriod) {
  EXPECT_THROW(core::parse_environment_config("telemetry = loud\n"),
               core::ConfigError);
  EXPECT_THROW(core::parse_environment_config("telemetry_period_ms = 0\n"),
               core::ConfigError);
}

TEST(TelemetryConfig, RoundTripsThroughSerialize) {
  EnvironmentConfig cfg;
  cfg.telemetry.mode = TelemetryMode::kUnix;
  cfg.telemetry.period_ms = 7;
  cfg.telemetry.endpoint = "/tmp/x.sock";
  const auto back =
      core::parse_environment_config(core::serialize_environment_config(cfg));
  EXPECT_EQ(back.telemetry.mode, TelemetryMode::kUnix);
  EXPECT_EQ(back.telemetry.period_ms, 7u);
  EXPECT_EQ(back.telemetry.endpoint, "/tmp/x.sock");
}

}  // namespace
}  // namespace prism
