// Off-line trace analysis: activity breakdowns, message matching, critical
// path, and arrival characterization.
#include <gtest/gtest.h>

#include "stats/distributions.hpp"
#include "trace/analysis.hpp"
#include "trace/merge.hpp"
#include "workload/apps.hpp"
#include "workload/multicomputer.hpp"

namespace prism::trace {
namespace {

EventRecord ev(std::uint32_t node, std::uint64_t seq, std::uint64_t ts,
               EventKind kind = EventKind::kUserEvent, std::uint32_t peer = 0,
               std::uint16_t tag = 0, std::uint64_t payload = 0) {
  EventRecord r;
  r.node = node;
  r.seq = seq;
  r.timestamp = ts;
  r.kind = kind;
  r.peer = peer;
  r.tag = tag;
  r.payload = payload;
  return r;
}

TEST(AnalyzeTrace, EmptyTrace) {
  const auto a = analyze_trace({});
  EXPECT_TRUE(a.nodes.empty());
  EXPECT_TRUE(a.messages.empty());
  EXPECT_EQ(a.span, 0u);
}

TEST(AnalyzeTrace, CountsAndSpan) {
  std::vector<EventRecord> t{ev(0, 0, 100), ev(1, 0, 150), ev(0, 1, 400)};
  const auto a = analyze_trace(t);
  ASSERT_EQ(a.nodes.size(), 2u);
  EXPECT_EQ(a.nodes[0].events, 2u);
  EXPECT_EQ(a.nodes[1].events, 1u);
  EXPECT_EQ(a.nodes[0].active_span, 300u);
  EXPECT_EQ(a.span, 300u);
}

TEST(AnalyzeTrace, MatchesMessagesAndLatency) {
  std::vector<EventRecord> t{
      ev(0, 0, 100, EventKind::kSend, 1, 3, 512),
      ev(1, 0, 160, EventKind::kRecv, 0, 3),
      ev(0, 1, 200, EventKind::kSend, 1, 3, 256),
      ev(1, 1, 290, EventKind::kRecv, 0, 3),
  };
  const auto a = analyze_trace(t);
  ASSERT_EQ(a.messages.size(), 2u);
  EXPECT_EQ(a.messages[0].latency(), 60u);
  EXPECT_EQ(a.messages[1].latency(), 90u);
  EXPECT_DOUBLE_EQ(a.message_latency.mean(), 75.0);
  EXPECT_EQ(a.nodes[0].bytes_sent, 768u);
  EXPECT_EQ(a.comm_matrix[0][1], 2u);
  EXPECT_EQ(a.comm_matrix[1][0], 0u);
  EXPECT_EQ(a.unmatched_sends, 0u);
  EXPECT_EQ(a.unmatched_recvs, 0u);
}

TEST(AnalyzeTrace, UnmatchedTrafficCounted) {
  std::vector<EventRecord> t{
      ev(0, 0, 100, EventKind::kSend, 1, 1),
      ev(1, 0, 150, EventKind::kRecv, 2, 1),  // from node 2: no send
  };
  const auto a = analyze_trace(t);
  EXPECT_EQ(a.unmatched_sends, 1u);
  EXPECT_EQ(a.unmatched_recvs, 1u);
}

TEST(AnalyzeTrace, BlockAndFlushTime) {
  std::vector<EventRecord> t{
      ev(0, 0, 100, EventKind::kBlockBegin),
      ev(0, 1, 300, EventKind::kBlockEnd),
      ev(0, 2, 400, EventKind::kFlushBegin),
      ev(0, 3, 450, EventKind::kFlushEnd),
  };
  const auto a = analyze_trace(t);
  EXPECT_EQ(a.nodes[0].block_time, 200u);
  EXPECT_EQ(a.nodes[0].flush_time, 50u);
}

TEST(AnalyzeTrace, ToStringMentionsNodes) {
  std::vector<EventRecord> t{ev(0, 0, 1), ev(1, 0, 2)};
  const auto s = analyze_trace(t).to_string();
  EXPECT_NE(s.find("node 0"), std::string::npos);
  EXPECT_NE(s.find("node 1"), std::string::npos);
}

TEST(CriticalPath, SingleStreamIsWholeSpan) {
  std::vector<EventRecord> t{ev(0, 0, 100), ev(0, 1, 300), ev(0, 2, 700)};
  const auto cp = critical_path(t);
  EXPECT_EQ(cp.duration, 600u);
  EXPECT_EQ(cp.events, 3u);
  EXPECT_EQ(cp.message_hops, 0u);
}

TEST(CriticalPath, CrossesMessages) {
  // node 0: e@0, send@100; node 1: recv@250, e@400.  Path: 0->100->250->400.
  std::vector<EventRecord> t{
      ev(0, 0, 0), ev(0, 1, 100, EventKind::kSend, 1, 1),
      ev(1, 0, 250, EventKind::kRecv, 0, 1), ev(1, 1, 400)};
  const auto cp = critical_path(t);
  EXPECT_EQ(cp.duration, 400u);
  EXPECT_EQ(cp.events, 4u);
  EXPECT_EQ(cp.message_hops, 1u);
}

TEST(CriticalPath, PicksLongerOfLocalVsMessage) {
  // Receiver has a long local history; the message edge is shorter.
  std::vector<EventRecord> t{
      ev(1, 0, 0), ev(1, 1, 500, EventKind::kRecv, 0, 1),
      ev(0, 0, 450, EventKind::kSend, 1, 1)};
  const auto cp = critical_path(t);
  // Local chain on node 1: 0 -> 500 (500) beats send chain (50).
  EXPECT_EQ(cp.duration, 500u);
  EXPECT_EQ(cp.message_hops, 0u);
}

TEST(CriticalPath, RingAppPathSpansMakespan) {
  sim::Engine eng;
  workload::Multicomputer mc(eng, 4, 0.5, 0.0);
  std::vector<EventRecord> events;
  mc.set_instrumentation([&](const EventRecord& r) { events.push_back(r); });
  stats::Deterministic compute(1.0);
  const auto app = workload::run_ring_app(mc, 10, compute, stats::Rng(1));
  auto merged = merge_any({events});
  const auto cp = critical_path(merged);
  // The ring is one long chain: its critical path covers nearly the whole
  // trace span (first send to last recv).  Message hops may be absorbed by
  // equivalent program-order edges (every node is active all run), so only
  // the duration is asserted here.
  const auto a = analyze_trace(merged);
  EXPECT_GT(cp.duration, a.span * 9 / 10);
  (void)app;
}

TEST(CriticalPath, RelayChainCountsMessageHops) {
  // node 0 -> 1 -> 2 -> 3, each hop via one message; each node has exactly
  // two events, so the only long chain crosses the messages.
  std::vector<EventRecord> t;
  std::uint64_t ts = 0;
  for (std::uint32_t n = 0; n < 3; ++n) {
    t.push_back(ev(n, n == 0 ? 0 : 1, ts += 10, EventKind::kSend, n + 1, 1));
    t.push_back(ev(n + 1, 0, ts += 40, EventKind::kRecv, n, 1));
  }
  const auto cp = critical_path(t);
  EXPECT_EQ(cp.message_hops, 3u);
  EXPECT_EQ(cp.duration, 140u);  // 150 - first event at 10
  EXPECT_EQ(cp.events, 6u);
}

TEST(CharacterizeArrivals, PoissonLikeStream) {
  std::vector<EventRecord> t;
  stats::Rng rng(5);
  stats::Exponential gap(0.01);  // mean 100
  std::uint64_t ts = 0;
  for (std::uint64_t s = 0; s < 5000; ++s) {
    ts += static_cast<std::uint64_t>(gap.sample(rng));
    t.push_back(ev(0, s, ts));
  }
  const auto c = characterize_arrivals(t);
  EXPECT_EQ(c.streams, 1u);
  EXPECT_NEAR(c.inter_arrival.mean(), 100.0, 5.0);
  EXPECT_NEAR(c.cv, 1.0, 0.1);          // exponential: CV = 1
  EXPECT_NEAR(c.burstiness, 0.39, 0.05);  // P[gap < mean/2] = 1 - e^-0.5
  EXPECT_NEAR(c.rate, 0.01, 0.001);
}

TEST(CharacterizeArrivals, DeterministicStreamHasZeroCv) {
  std::vector<EventRecord> t;
  for (std::uint64_t s = 0; s < 100; ++s) t.push_back(ev(0, s, s * 50));
  const auto c = characterize_arrivals(t);
  EXPECT_NEAR(c.cv, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(c.burstiness, 0.0);
  EXPECT_NEAR(c.inter_arrival.mean(), 50.0, 1e-9);
}

TEST(CharacterizeArrivals, MultipleStreamsSeparated) {
  // Two streams with offset timestamps: gaps are within-stream only.
  std::vector<EventRecord> t;
  for (std::uint64_t s = 0; s < 50; ++s) {
    t.push_back(ev(0, s, s * 100));
    t.push_back(ev(1, s, s * 100 + 1));  // would be 1-gap if pooled
  }
  const auto c = characterize_arrivals(t);
  EXPECT_EQ(c.streams, 2u);
  EXPECT_NEAR(c.inter_arrival.mean(), 100.0, 1e-9);
}

}  // namespace
}  // namespace prism::trace
