// Span tracer: RAII scopes, begin/end pairs, instants, ring wrap-around,
// concurrent recording (exercised under TSan via `ctest -L sanitize`),
// Chrome trace-event JSON round trip, and folded flamegraph output.
//
// The Tracer is a process-wide singleton, so every test disables it and
// clears the rings on exit; tests in this file must not assume an empty
// tracer beyond what their own clear() established.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_check.hpp"
#include "obs/trace.hpp"

namespace prism::obs {
namespace {

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& t = Tracer::instance();
    t.set_enabled(true);
    t.clear();
  }
  void TearDown() override {
    auto& t = Tracer::instance();
    t.set_enabled(false);
    t.clear();
  }
};

std::size_t count_phase(const std::vector<TraceEvent>& evs, char phase) {
  return static_cast<std::size_t>(std::count_if(
      evs.begin(), evs.end(),
      [phase](const TraceEvent& e) { return e.phase == phase; }));
}

TEST_F(TracerTest, SpanScopeRecordsCompleteEvent) {
  {
    SpanScope span("unit.span", "test");
  }
  const auto evs = Tracer::instance().snapshot();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].phase, 'X');
  EXPECT_STREQ(evs[0].name, "unit.span");
  EXPECT_STREQ(evs[0].cat, "test");
  EXPECT_LE(evs[0].t0_ns, evs[0].t1_ns);
}

TEST_F(TracerTest, BeginEndAndInstant) {
  auto& t = Tracer::instance();
  t.begin("phase.a", "test");
  t.instant("marker", "test");
  t.end("phase.a", "test");
  const auto evs = t.snapshot();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(count_phase(evs, 'B'), 1u);
  EXPECT_EQ(count_phase(evs, 'E'), 1u);
  EXPECT_EQ(count_phase(evs, 'i'), 1u);
  // snapshot() is time-ordered: B before i before E.
  EXPECT_EQ(evs[0].phase, 'B');
  EXPECT_EQ(evs[2].phase, 'E');
}

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  auto& t = Tracer::instance();
  t.set_enabled(false);
  {
    SpanScope span("ignored", "test");
  }
  t.instant("ignored", "test");
  EXPECT_TRUE(t.snapshot().empty());
}

TEST_F(TracerTest, RingWrapKeepsNewestAndCountsDropped) {
  auto& t = Tracer::instance();
  t.set_ring_capacity(8);
  // This thread's ring may predate the capacity change (rings are created on
  // first use per thread), so record from a fresh thread.
  std::thread([&t] {
    for (int i = 0; i < 20; ++i)
      t.complete("wrap", "test", static_cast<std::uint64_t>(i),
                 static_cast<std::uint64_t>(i) + 1);
  }).join();
  const auto evs = t.snapshot();
  ASSERT_EQ(evs.size(), 8u);
  EXPECT_GE(t.dropped(), 12u);
  // Oldest events were overwritten: the survivors are the last 8 (t0 12..19).
  EXPECT_EQ(evs.front().t0_ns, 12u);
  EXPECT_EQ(evs.back().t0_ns, 19u);
  t.set_ring_capacity(1 << 14);
}

TEST_F(TracerTest, ConcurrentSpansFromManyThreads) {
  auto& t = Tracer::instance();
  constexpr unsigned kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> workers;
  for (unsigned i = 0; i < kThreads; ++i)
    workers.emplace_back([] {
      for (int s = 0; s < kSpansPerThread; ++s) {
        SpanScope span("mt.span", "test");
      }
    });
  for (auto& w : workers) w.join();
  const auto evs = t.snapshot();
  EXPECT_EQ(evs.size() + t.dropped(), kThreads * kSpansPerThread);
  // Every thread got its own tid.
  std::vector<std::uint32_t> tids;
  for (const auto& e : evs) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), kThreads);
}

TEST_F(TracerTest, ChromeJsonIsValidAndRoundTrips) {
  auto& t = Tracer::instance();
  {
    SpanScope outer("outer", "test");
    SpanScope inner("inner", "test");
  }
  t.instant("tick", "test");
  const std::string json = t.chrome_json();
  const auto doc = jsonlite::parse(json);
  ASSERT_TRUE(doc.has_value()) << json;
  ASSERT_TRUE(doc->is_object());
  const auto* unit = doc->find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->str, "ms");
  const auto* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->arr.size(), 3u);
  std::size_t complete = 0, instants = 0;
  for (const auto& e : events->arr) {
    ASSERT_TRUE(e.is_object());
    const auto* ph = e.find("ph");
    const auto* name = e.find("name");
    const auto* ts = e.find("ts");
    const auto* pid = e.find("pid");
    const auto* tid = e.find("tid");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    EXPECT_TRUE(ts->is_number());
    if (ph->str == "X") {
      ++complete;
      const auto* dur = e.find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(dur->num, 0.0);
    } else if (ph->str == "i") {
      ++instants;
      // Perfetto requires a scope on instants.
      ASSERT_NE(e.find("s"), nullptr);
    }
  }
  EXPECT_EQ(complete, 2u);
  EXPECT_EQ(instants, 1u);
}

TEST_F(TracerTest, WriteChromeJsonProducesLoadableFile) {
  auto& t = Tracer::instance();
  {
    SpanScope span("file.span", "test");
  }
  const std::string path = ::testing::TempDir() + "obs_trace_test.trace.json";
  t.write_chrome_json(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_TRUE(jsonlite::valid(ss.str()));
  std::remove(path.c_str());
}

TEST_F(TracerTest, FoldedTextReflectsNesting) {
  auto& t = Tracer::instance();
  // Deterministic spans via explicit timestamps: outer [0,100] contains
  // inner [10,40]; sibling [200,250] stands alone.
  t.complete("outer", "test", 0, 100);
  t.complete("inner", "test", 10, 40);
  t.complete("sibling", "test", 200, 250);
  const std::string folded = t.folded_text();
  EXPECT_NE(folded.find("outer;inner 30"), std::string::npos) << folded;
  // outer's self time excludes inner: 100 - 30.
  EXPECT_NE(folded.find("outer 70"), std::string::npos) << folded;
  EXPECT_NE(folded.find("sibling 50"), std::string::npos) << folded;
}

TEST_F(TracerTest, ClearEmptiesRingsButKeepsThreads) {
  auto& t = Tracer::instance();
  {
    SpanScope span("pre.clear", "test");
  }
  ASSERT_FALSE(t.snapshot().empty());
  t.clear();
  EXPECT_TRUE(t.snapshot().empty());
  EXPECT_EQ(t.dropped(), 0u);
  {
    SpanScope span("post.clear", "test");
  }
  EXPECT_EQ(t.snapshot().size(), 1u);
}

}  // namespace
}  // namespace prism::obs
