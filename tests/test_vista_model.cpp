// Vista ISM queueing model: Figure 11 shape targets, hold-back behaviour,
// stability, and the factorial finding (inter-arrival rate dominates).
#include <gtest/gtest.h>

#include "vista/ism_model.hpp"

namespace prism::vista {
namespace {

VistaIsmParams fast_params() {
  VistaIsmParams p;
  p.horizon_ms = 20'000;
  return p;
}

TEST(VistaModel, SingleRunSane) {
  const auto m = run_vista_ism(fast_params(), stats::Rng(1));
  EXPECT_GT(m.records, 0u);
  EXPECT_GT(m.released, 0u);
  EXPECT_LE(m.released, m.records);
  EXPECT_GT(m.mean_processing_latency_ms, 0.0);
  EXPECT_GE(m.p95_processing_latency_ms, m.mean_processing_latency_ms * 0.5);
  EXPECT_GE(m.hold_back_ratio, 0.0);
  EXPECT_LE(m.hold_back_ratio, 1.0);
  EXPECT_LE(m.processor_utilization, 1.0 + 1e-9);
}

TEST(VistaModel, DeterministicGivenSeed) {
  const auto a = run_vista_ism(fast_params(), stats::Rng(3));
  const auto b = run_vista_ism(fast_params(), stats::Rng(3));
  EXPECT_DOUBLE_EQ(a.mean_processing_latency_ms, b.mean_processing_latency_ms);
  EXPECT_EQ(a.records, b.records);
}

TEST(VistaModel, StragglersCauseHoldBack) {
  auto p = fast_params();
  p.mean_interarrival_ms = 20.0;
  const auto m = run_vista_ism(p, stats::Rng(4));
  EXPECT_GT(m.hold_back_ratio, 0.01);
  // Without stragglers or delay spread nothing arrives out of order.
  p.straggle_prob = 0.0;
  p.network_delay_mean_ms = 0.0;
  const auto m0 = run_vista_ism(p, stats::Rng(4));
  EXPECT_DOUBLE_EQ(m0.hold_back_ratio, 0.0);
}

TEST(VistaModel, BufferLengthGrowsWithArrivalRate) {
  auto p = fast_params();
  p.mean_interarrival_ms = 100.0;
  const auto slow = run_vista_ism(p, stats::Rng(5));
  p.mean_interarrival_ms = 10.0;
  const auto fast = run_vista_ism(p, stats::Rng(5));
  EXPECT_GT(fast.mean_input_buffer_length, slow.mean_input_buffer_length);
}

TEST(VistaModel, MisoCostsMoreAtHighRates) {
  // Fig. 11 at short inter-arrival times: SISO lower latency & buffers.
  auto p = fast_params();
  p.mean_interarrival_ms = 10.0;
  p.miso = false;
  const auto siso = run_vista_ism(p, stats::Rng(6));
  p.miso = true;
  const auto miso = run_vista_ism(p, stats::Rng(6));
  EXPECT_LT(siso.mean_processing_latency_ms, miso.mean_processing_latency_ms);
  EXPECT_LT(siso.mean_input_buffer_length, miso.mean_input_buffer_length);
}

TEST(VistaModel, Fig11SweepShapes) {
  const auto pts = sweep_interarrival(fast_params(), {10, 30, 60, 100},
                                      /*replications=*/8, /*seed=*/77);
  ASSERT_EQ(pts.size(), 4u);
  // (1) At the highest rate, SISO beats MISO on both metrics.
  EXPECT_LT(pts[0].latency_siso.mean, pts[0].latency_miso.mean);
  EXPECT_LT(pts[0].buffer_siso.mean, pts[0].buffer_miso.mean);
  // (2) At the lowest rate the configurations are statistically
  //     indistinguishable (overlapping 90% CIs) — the paper's "less
  //     distinguishable" regime.
  EXPECT_TRUE(pts[3].latency_siso.overlaps(pts[3].latency_miso));
  // (3) Buffer length decreases with inter-arrival time for both configs.
  //     Heavy-tailed hold-back makes adjacent points noisy (exactly the
  //     published curves' jitter), so the trend is asserted end-to-end.
  EXPECT_LT(pts.back().buffer_siso.mean, pts.front().buffer_siso.mean);
  EXPECT_LT(pts.back().buffer_miso.mean, pts.front().buffer_miso.mean);
  // (4) Latency noise *relative to the signal* grows as arrivals thin out —
  //     the operational content of "higher variance at longer inter-arrival
  //     times ... making them less distinguishable".  (Absolute CI width
  //     peaks at high rates in our model because queueing noise dominates
  //     there; see EXPERIMENTS.md.)
  const double cv_lo = pts[3].latency_siso.half_width / pts[3].latency_siso.mean;
  const double cv_hi = pts[0].latency_siso.half_width / pts[0].latency_siso.mean;
  EXPECT_GT(cv_lo, cv_hi);
}

TEST(VistaModel, FactorialInterarrivalDominatesLatency) {
  // "We analyzed these results ... and found that the inter-arrival rate is
  // the dominant factor that affects data processing latency and average
  // buffer length."
  const auto res =
      vista_factorial(fast_params(), 10.0, 100.0, /*r=*/8, "latency", 101);
  EXPECT_EQ(res.effect_names[res.dominant_effect()], "interarrival");
}

TEST(VistaModel, FactorialInterarrivalDominatesBufferLength) {
  const auto res = vista_factorial(fast_params(), 10.0, 100.0, 8,
                                   "buffer_length", 102);
  EXPECT_EQ(res.effect_names[res.dominant_effect()], "interarrival");
}

TEST(VistaModel, FactorialRejectsUnknownResponse) {
  EXPECT_THROW(vista_factorial(fast_params(), 10, 100, 2, "bogus", 1),
               std::invalid_argument);
}

TEST(VistaModel, ValidatesParameters) {
  VistaIsmParams p;
  p.processes = 0;
  EXPECT_THROW(run_vista_ism(p, stats::Rng(1)), std::invalid_argument);
  p = VistaIsmParams{};
  p.mean_interarrival_ms = 0;
  EXPECT_THROW(run_vista_ism(p, stats::Rng(1)), std::invalid_argument);
  p = VistaIsmParams{};
  p.network_delay_mean_ms = -1;
  EXPECT_THROW(run_vista_ism(p, stats::Rng(1)), std::invalid_argument);
}

TEST(VistaModel, ReleasesRespectPerProcessOrder) {
  // hold_back_ratio > 0 yet released records == per-process contiguous
  // prefix: every released seq must be below the per-process release count.
  auto p = fast_params();
  p.network_delay_mean_ms = 15.0;
  const auto m = run_vista_ism(p, stats::Rng(8));
  // The model releases a record only when all predecessors released, so
  // released <= arrivals always; strict inequality when the tail is held.
  EXPECT_LE(m.released, m.records);
}

}  // namespace
}  // namespace prism::vista
