// Every distribution's sample statistics must match its analytic moments —
// the foundation the simulation results stand on.  Parameterized across
// distributions where the check is uniform.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "stats/distributions.hpp"
#include "stats/summary.hpp"

namespace prism::stats {
namespace {

Summary sample_many(const Distribution& d, int n, std::uint64_t seed) {
  Rng rng(seed);
  Summary s;
  for (int i = 0; i < n; ++i) s.add(d.sample(rng));
  return s;
}

// ---- parameterized moment checks -----------------------------------------

struct DistCase {
  std::shared_ptr<Distribution> dist;
  const char* name;
};

class MomentTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(MomentTest, SampleMeanMatchesAnalytic) {
  const auto& d = *GetParam().dist;
  const auto s = sample_many(d, 200000, 1234);
  const double tol = 4.0 * std::sqrt(d.variance() / 200000.0) + 1e-12;
  EXPECT_NEAR(s.mean(), d.mean(), tol + 0.01 * d.mean());
}

TEST_P(MomentTest, SampleVarianceMatchesAnalytic) {
  const auto& d = *GetParam().dist;
  const auto s = sample_many(d, 200000, 987);
  EXPECT_NEAR(s.variance(), d.variance(),
              0.05 * d.variance() + 1e-9);
}

TEST_P(MomentTest, SamplesNonNegative) {
  const auto& d = *GetParam().dist;
  Rng rng(555);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(d.sample(rng), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, MomentTest,
    ::testing::Values(
        DistCase{std::make_shared<Exponential>(0.5), "exp_rate_half"},
        DistCase{std::make_shared<Exponential>(4.0), "exp_rate_4"},
        DistCase{std::make_shared<Uniform>(2.0, 8.0), "uniform"},
        DistCase{std::make_shared<TruncatedNormal>(50.0, 5.0), "normal"},
        DistCase{std::make_shared<Erlang>(1, 2.0), "erlang_1"},
        DistCase{std::make_shared<Erlang>(10, 0.25), "erlang_10"},
        DistCase{std::make_shared<Erlang>(64, 8.0), "erlang_64"},
        DistCase{std::make_shared<Hyperexponential>(0.3, 1.0, 0.1), "hyper"},
        DistCase{std::make_shared<Shifted>(
                     std::make_shared<Exponential>(1.0), 3.0),
                 "shifted"}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      return info.param.name;
    });

// ---- distribution-specific behaviour --------------------------------------

TEST(Deterministic, AlwaysSameValue) {
  Deterministic d(3.5);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 3.5);
  EXPECT_DOUBLE_EQ(d.mean(), 3.5);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
}

TEST(Exponential, FromMeanInvertsRate) {
  const auto d = Exponential::from_mean(25.0);
  EXPECT_DOUBLE_EQ(d.mean(), 25.0);
  EXPECT_DOUBLE_EQ(d.rate(), 0.04);
}

TEST(Exponential, MemorylessTailRatio) {
  // P[X > a+b] / P[X > a] == P[X > b]: check empirically.
  Exponential d(1.0);
  Rng rng(42);
  int gt1 = 0, gt2 = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    if (x > 1.0) ++gt1;
    if (x > 2.0) ++gt2;
  }
  const double ratio = static_cast<double>(gt2) / gt1;
  EXPECT_NEAR(ratio, std::exp(-1.0), 0.01);
}

TEST(Erlang, IsSumOfExponentials) {
  // Erlang(k) sample ~ sum of k Exponential samples in distribution: check
  // first two moments of explicit sums against the class.
  Rng rng(77);
  Exponential e(0.5);
  Summary sums;
  for (int i = 0; i < 50000; ++i) {
    double acc = 0;
    for (int k = 0; k < 5; ++k) acc += e.sample(rng);
    sums.add(acc);
  }
  Erlang d(5, 0.5);
  EXPECT_NEAR(sums.mean(), d.mean(), 0.1);
  EXPECT_NEAR(sums.variance(), d.variance(), 0.8);
}

TEST(Hyperexponential, CoefficientOfVariationExceedsOne) {
  Hyperexponential d(0.1, 10.0, 0.1);
  const double cv2 = d.variance() / (d.mean() * d.mean());
  EXPECT_GT(cv2, 1.0);
}

TEST(Empirical, MatchesWeights) {
  Empirical d({{1.0, 1.0}, {2.0, 3.0}});
  Rng rng(5);
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (d.sample(rng) == 1.0) ++ones;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.25, 0.01);
  EXPECT_NEAR(d.mean(), 1.75, 1e-12);
}

TEST(Empirical, VarianceMatchesSamples) {
  Empirical d({{0.0, 1.0}, {10.0, 1.0}});
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
  EXPECT_DOUBLE_EQ(d.variance(), 25.0);
}

TEST(Shifted, NeverBelowShift) {
  Shifted d(std::make_shared<Exponential>(2.0), 1.5);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(d.sample(rng), 1.5);
}

// ---- argument validation ---------------------------------------------------

TEST(DistributionValidation, RejectsBadParameters) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
  EXPECT_THROW(Uniform(5.0, 4.0), std::invalid_argument);
  EXPECT_THROW(Uniform(-1.0, 4.0), std::invalid_argument);
  EXPECT_THROW(Erlang(0, 1.0), std::invalid_argument);
  EXPECT_THROW(Erlang(3, 0.0), std::invalid_argument);
  EXPECT_THROW(Hyperexponential(1.5, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Hyperexponential(0.5, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Deterministic(-1.0), std::invalid_argument);
  EXPECT_THROW(Empirical({}), std::invalid_argument);
  EXPECT_THROW(Empirical({{1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(Shifted(nullptr, 1.0), std::invalid_argument);
  EXPECT_THROW(TruncatedNormal(1.0, -1.0), std::invalid_argument);
}

TEST(DistributionDescribe, NonEmpty) {
  EXPECT_FALSE(Exponential(1.0).describe().empty());
  EXPECT_FALSE(Erlang(2, 1.0).describe().empty());
  EXPECT_FALSE(Uniform(0, 1).describe().empty());
  EXPECT_FALSE(TruncatedNormal(1, 0.1).describe().empty());
  EXPECT_FALSE(Hyperexponential(0.5, 1, 2).describe().empty());
  EXPECT_FALSE(Deterministic(1).describe().empty());
}

// ---- Poisson sampler --------------------------------------------------------

TEST(Poisson, SmallMeanMatchesMoments) {
  Rng rng(111);
  Summary s;
  for (int i = 0; i < 200000; ++i)
    s.add(static_cast<double>(poisson_sample(rng, 3.0)));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.variance(), 3.0, 0.1);
}

TEST(Poisson, LargeMeanMatchesMoments) {
  Rng rng(222);
  Summary s;
  for (int i = 0; i < 100000; ++i)
    s.add(static_cast<double>(poisson_sample(rng, 400.0)));
  EXPECT_NEAR(s.mean(), 400.0, 1.0);
  EXPECT_NEAR(s.variance(), 400.0, 12.0);
}

TEST(Poisson, ZeroMeanIsZero) {
  Rng rng(333);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(poisson_sample(rng, 0.0), 0u);
}

TEST(Poisson, RejectsNegativeMean) {
  Rng rng(1);
  EXPECT_THROW(poisson_sample(rng, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace prism::stats
