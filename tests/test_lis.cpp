// The three LIS styles: buffered (FOF/FAOF + coordinator), forwarding, and
// daemon (sampling, pipes, control plane).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/lis.hpp"
#include "obs/obs.hpp"

namespace prism::core {
namespace {

#if PRISM_OBS_ENABLED
/// Current value of a telemetry counter (0 if nothing registered it yet);
/// overflow tests assert deltas, since the registry is process-global.
std::uint64_t obs_count(std::string_view name) {
  const auto snap = ::prism::obs::Registry::instance().snapshot();
  const auto* c = snap.counter(name);
  return c ? c->value : 0;
}
#endif

trace::EventRecord rec(std::uint32_t node = 0, std::uint32_t process = 0,
                       std::uint64_t seq = 0) {
  trace::EventRecord r;
  r.node = node;
  r.process = process;
  r.seq = seq;
  return r;
}

/// Drains every currently queued batch from a link.
std::vector<DataBatch> drain(DataLink& link) {
  std::vector<DataBatch> out;
  while (auto m = link.try_pop()) {
    if (auto* b = std::get_if<DataBatch>(&*m)) out.push_back(std::move(*b));
  }
  return out;
}

// ---- BufferedLis --------------------------------------------------------------

TEST(BufferedLis, FofFlushesOwnBufferWhenFull) {
  DataLink link(16);
  BufferedLis lis(0, 3, std::make_unique<FlushOnFill>(), link);
  lis.record(rec(0, 0, 0));
  lis.record(rec(0, 0, 1));
  EXPECT_TRUE(drain(link).empty());
  lis.record(rec(0, 0, 2));  // fills -> flush
  auto batches = drain(link);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].records.size(), 3u);
  EXPECT_EQ(batches[0].source_node, 0u);
  const auto s = lis.stats();
  EXPECT_EQ(s.recorded, 3u);
  EXPECT_EQ(s.flushes, 1u);
  EXPECT_EQ(s.records_forwarded, 3u);
  EXPECT_TRUE(s.conserved());
}

TEST(BufferedLis, ManualFlushShipsPartialBuffer) {
  DataLink link(16);
  BufferedLis lis(1, 100, std::make_unique<FlushOnFill>(), link);
  lis.record(rec(1));
  lis.flush();
  auto batches = drain(link);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].records.size(), 1u);
}

TEST(BufferedLis, EmptyFlushIsNoop) {
  DataLink link(16);
  BufferedLis lis(0, 4, std::make_unique<FlushOnFill>(), link);
  lis.flush();
  EXPECT_TRUE(drain(link).empty());
  EXPECT_EQ(lis.stats().flushes, 0u);
}

TEST(BufferedLis, StopFlushesAndRefusesFurtherRecords) {
  DataLink link(16);
  BufferedLis lis(0, 100, std::make_unique<FlushOnFill>(), link);
  lis.record(rec());
  lis.stop();
  EXPECT_EQ(drain(link).size(), 1u);
  lis.record(rec());
  EXPECT_EQ(lis.stats().recorded, 1u);
}

TEST(BufferedLis, FaofRequiresCoordinator) {
  DataLink link(16);
  EXPECT_THROW(
      BufferedLis(0, 4, std::make_unique<FlushAllOnFill>(), link, nullptr),
      std::invalid_argument);
}

TEST(BufferedLis, FaofGangFlushesAllMembers) {
  DataLink link(64);
  FlushCoordinator coord;
  BufferedLis a(0, 3, std::make_unique<FlushAllOnFill>(), link, &coord);
  BufferedLis b(1, 3, std::make_unique<FlushAllOnFill>(), link, &coord);
  // b holds one record; filling a must flush BOTH.
  b.record(rec(1, 0, 0));
  a.record(rec(0, 0, 0));
  a.record(rec(0, 0, 1));
  a.record(rec(0, 0, 2));  // fills a -> gang flush
  auto batches = drain(link);
  ASSERT_EQ(batches.size(), 2u);
  std::size_t total = 0;
  for (auto& batch : batches) total += batch.records.size();
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(coord.gang_flushes(), 1u);
  EXPECT_EQ(b.stats().flushes, 1u);  // flushed although not full
}

TEST(BufferedLis, DropsWhenFullAndPolicySilent) {
  // Threshold policy at 1.0 never fires below full; use a buffer that the
  // policy ignores by filling then dropping one (policy fires at full, so
  // use a policy that never triggers to observe drops).
  class NeverFlush final : public FlushPolicy {
   public:
    bool should_flush(const trace::TraceBuffer&) override { return false; }
    std::string_view name() const override { return "never"; }
  };
  DataLink link(16);
  BufferedLis lis(0, 2, std::make_unique<NeverFlush>(), link);
#if PRISM_OBS_ENABLED
  const std::uint64_t dropped_before = obs_count("core.lis.dropped");
#endif
  lis.record(rec());
  lis.record(rec());
  lis.record(rec());  // dropped
  EXPECT_EQ(lis.stats().dropped, 1u);
  EXPECT_EQ(lis.stats().recorded, 2u);
#if PRISM_OBS_ENABLED
  // The overflow also surfaced through the telemetry counter.
  EXPECT_EQ(obs_count("core.lis.dropped") - dropped_before, 1u);
#endif
}

// ---- ForwardingLis --------------------------------------------------------------

TEST(ForwardingLis, OneBatchPerEvent) {
  DataLink link(16);
  ForwardingLis lis(2, link);
  lis.record(rec(2, 0, 0));
  lis.record(rec(2, 0, 1));
  auto batches = drain(link);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].records.size(), 1u);
  EXPECT_EQ(batches[1].records.size(), 1u);
  EXPECT_EQ(lis.stats().records_forwarded, 2u);
}

TEST(ForwardingLis, StopSilences) {
  DataLink link(16);
  ForwardingLis lis(0, link);
  lis.stop();
  lis.record(rec());
  EXPECT_TRUE(drain(link).empty());
  EXPECT_EQ(lis.stats().recorded, 0u);
}

// ---- DaemonLis ------------------------------------------------------------------

TEST(DaemonLis, SamplesPipesAndForwards) {
  DataLink link(1024);
  DaemonLis lis(0, /*n_processes=*/2, /*pipe_capacity=*/64,
                /*sampling_period_ns=*/1'000'000, link);
  for (std::uint64_t i = 0; i < 10; ++i) {
    lis.record(rec(0, 0, i));
    lis.record(rec(0, 1, i));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  lis.stop();
  auto batches = drain(link);
  std::size_t total = 0;
  for (auto& b : batches) total += b.records.size();
  EXPECT_EQ(total, 20u);
  EXPECT_EQ(lis.stats().recorded, 20u);
  EXPECT_GT(lis.daemon_busy_ns(), 0u);
}

TEST(DaemonLis, RejectsUnknownProcess) {
  DataLink link(16);
  DaemonLis lis(0, 1, 8, 1'000'000, link);
  EXPECT_THROW(lis.record(rec(0, 5, 0)), std::out_of_range);
  lis.stop();
}

TEST(DaemonLis, NonBlockingModeDropsOnFullPipe) {
  DataLink link(16);
#if PRISM_OBS_ENABLED
  const std::uint64_t dropped_before = obs_count("core.lis.dropped");
#endif
  DaemonLis lis(0, 1, /*pipe_capacity=*/4, /*period=*/500'000'000, link,
                nullptr, /*block=*/false);
  for (std::uint64_t i = 0; i < 10; ++i) lis.record(rec(0, 0, i));
  const auto s = lis.stats();
  EXPECT_EQ(s.recorded + s.dropped, 10u);
  EXPECT_GE(s.dropped, 6u);  // capacity 4 and a sleepy daemon
#if PRISM_OBS_ENABLED
  EXPECT_GE(obs_count("core.lis.dropped") - dropped_before, 6u);
#endif
  lis.stop();
}

TEST(DaemonLis, ControlPlaneAdjustsSamplingPeriod) {
  DataLink link(64);
  ControlLink control(8);
  DaemonLis lis(0, 1, 64, /*period=*/1'000'000, link, &control);
  control.push(
      ControlMessage{ControlKind::kSetSamplingPeriod, 0, 5'000'000.0});
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_EQ(lis.sampling_period_ns(), 5'000'000u);
  lis.stop();
}

TEST(DaemonLis, ShutdownControlStopsDaemon) {
  DataLink link(64);
  ControlLink control(8);
  DaemonLis lis(0, 1, 64, /*period=*/1'000'000, link, &control);
  control.push(ControlMessage{ControlKind::kShutdown, 0, 0});
  // The daemon notices the shutdown within a few wakeups and exits; stop()
  // then joins without hanging.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  lis.stop();
  SUCCEED();
}

TEST(DaemonLis, StopIsIdempotent) {
  DataLink link(16);
  DaemonLis lis(0, 1, 8, 1'000'000, link);
  lis.stop();
  lis.stop();
  SUCCEED();
}

TEST(DaemonLis, RejectsBadConstruction) {
  DataLink link(16);
  EXPECT_THROW(DaemonLis(0, 0, 8, 1000, link), std::invalid_argument);
  EXPECT_THROW(DaemonLis(0, 1, 8, 0, link), std::invalid_argument);
}

// ---- Record conservation (DESIGN.md §9) -----------------------------------
//
// records_in == records_forwarded + dropped + buffered, exact at quiescence:
// every record the application offered is accounted for by name.

TEST(LisConservation, BufferedHoldsThenForwards) {
  DataLink link(16);
  BufferedLis lis(0, 8, std::make_unique<FlushOnFill>(), link);
  lis.record(rec(0, 0, 0));
  lis.record(rec(0, 0, 1));
  auto s = lis.stats();
  EXPECT_EQ(s.buffered, 2u);
  EXPECT_TRUE(s.conserved());  // held locally, not yet forwarded
  lis.flush();
  s = lis.stats();
  EXPECT_EQ(s.buffered, 0u);
  EXPECT_EQ(s.records_forwarded, 2u);
  EXPECT_TRUE(s.conserved());
}

TEST(LisConservation, BufferedCountsDropsAsLosses) {
  class NeverFlush final : public FlushPolicy {
   public:
    bool should_flush(const trace::TraceBuffer&) override { return false; }
    std::string_view name() const override { return "never"; }
  };
  DataLink link(16);
  BufferedLis lis(0, 2, std::make_unique<NeverFlush>(), link);
  for (std::uint64_t i = 0; i < 5; ++i) lis.record(rec(0, 0, i));
  const auto s = lis.stats();
  EXPECT_EQ(s.records_in(), 5u);
  EXPECT_EQ(s.dropped, 3u);
  EXPECT_EQ(s.buffered, 2u);
  EXPECT_TRUE(s.conserved());
}

TEST(LisConservation, ForwardingNeverBuffers) {
  DataLink link(16);
  ForwardingLis lis(0, link);
  for (std::uint64_t i = 0; i < 4; ++i) lis.record(rec(0, 0, i));
  const auto s = lis.stats();
  EXPECT_EQ(s.buffered, 0u);
  EXPECT_EQ(s.records_forwarded, 4u);
  EXPECT_TRUE(s.conserved());
}

TEST(LisConservation, DaemonExactAfterStop) {
  DataLink link(1024);
  DaemonLis lis(0, 2, 64, /*sampling_period_ns=*/1'000'000, link);
  for (std::uint64_t i = 0; i < 25; ++i) lis.record(rec(0, i % 2, i));
  lis.stop();  // drains the pipes
  const auto s = lis.stats();
  EXPECT_EQ(s.records_in(), 25u);
  EXPECT_TRUE(s.conserved());
}

TEST(LisConservation, ForwardingClosedLinkNoDoubleCount) {
  // Regression: record() into a closed link used to bump `recorded` up
  // front AND `dropped` on the failed push, so records_in() double-counted
  // and conserved() failed.
  DataLink link(4);
  link.close();
  ForwardingLis lis(0, link);
  for (std::uint64_t i = 0; i < 3; ++i) lis.record(rec(0, 0, i));
  const auto s = lis.stats();
  EXPECT_EQ(s.recorded, 0u);
  EXPECT_EQ(s.dropped, 3u);
  EXPECT_EQ(s.records_forwarded, 0u);
  EXPECT_TRUE(s.conserved());
}

TEST(LisConservation, BufferedClosedLinkAttributesLostSend) {
  // The other half of the same fix: a flush into a closed link destroys the
  // batch — that is a lost_send, not a phantom successful flush.
  DataLink link(4);
  link.close();
  BufferedLis lis(0, 2, std::make_unique<FlushOnFill>(), link);
  lis.record(rec(0, 0, 0));
  lis.record(rec(0, 0, 1));  // fills -> flush into the closed link
  const auto s = lis.stats();
  EXPECT_EQ(s.recorded, 2u);
  EXPECT_EQ(s.lost_send, 2u);
  EXPECT_EQ(s.records_forwarded, 0u);
  EXPECT_TRUE(s.conserved());
}

TEST(LisConservation, DaemonDropsStayAccounted) {
  DataLink link(16);
  DaemonLis lis(0, 1, /*pipe_capacity=*/4, /*period=*/500'000'000, link,
                nullptr, /*block=*/false);
  for (std::uint64_t i = 0; i < 10; ++i) lis.record(rec(0, 0, i));
  lis.stop();
  const auto s = lis.stats();
  EXPECT_EQ(s.records_in(), 10u);
  EXPECT_GE(s.dropped, 6u);
  EXPECT_TRUE(s.conserved());
}

}  // namespace
}  // namespace prism::core
