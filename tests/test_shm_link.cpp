// Shared-memory TP backend: framing round trips through SPSC rings,
// bounded-egress backpressure, untrusted-header rejection, EOF handling,
// the in-transit loss ledger, fault-injection parity with the pipe and
// socket links, batch-storage recycling through the BatchArena, and
// end-to-end integration with the ISM and the integrated environment.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/clock.hpp"
#include "core/environment.hpp"
#include "core/io_loop.hpp"
#include "core/ism.hpp"
#include "core/shm_link.hpp"
#include "fault/fault.hpp"
#include "obs/pipeline.hpp"

namespace prism::core {
namespace {

trace::EventRecord ev(std::uint32_t node, std::uint64_t seq) {
  trace::EventRecord r;
  r.timestamp = now_ns();
  r.node = node;
  r.seq = seq;
  return r;
}

DataBatch batch(std::uint32_t node, std::size_t count,
                std::uint64_t seq0 = 0) {
  DataBatch b;
  b.source_node = node;
  b.t_sent_ns = now_ns();
  for (std::size_t i = 0; i < count; ++i)
    b.records.push_back(ev(node, seq0 + i));
  return b;
}

/// Polls `f` for up to two seconds — the reader thread delivers
/// asynchronously, so ring-side counters need a grace period.
bool eventually(const std::function<bool()>& f) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline) {
    if (f()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return f();
}

/// A kShm TransferProtocol with the real backend enabled — the harness
/// most tests push batches into and pop frames out of.
struct ShmHarness {
  explicit ShmHarness(std::size_t links = 1, std::size_t capacity = 256,
                      ShmOptions opts = {})
      : tp(TpFlavor::kShm, links, links, capacity) {
    tp.enable_shm_backend(opts);
  }
  TransferProtocol tp;
};

// ---- Backend selection --------------------------------------------------------

TEST(ShmBackend, RequiresShmFlavor) {
  TransferProtocol tp(TpFlavor::kPipe, 1, 1, 16);
  EXPECT_THROW(tp.enable_shm_backend(), std::logic_error);
  EXPECT_FALSE(tp.shm_backend_enabled());
  EXPECT_EQ(&tp.receive_link(0), &tp.data_link(0));
}

TEST(ShmBackend, EnableIsOnceOnly) {
  TransferProtocol tp(TpFlavor::kShm, 1, 1, 16);
  tp.enable_shm_backend();
  EXPECT_TRUE(tp.shm_backend_enabled());
  EXPECT_THROW(tp.enable_shm_backend(), std::logic_error);
}

TEST(ShmBackend, RejectsUnusableOptions) {
  ShmOptions bad;
  bad.ring_capacity = 100;  // not a power of two
  {
    TransferProtocol tp(TpFlavor::kShm, 1, 1, 16);
    EXPECT_THROW(tp.enable_shm_backend(bad), std::invalid_argument);
  }
  bad.ring_capacity = 64;  // power of two, but < one single-record frame
  {
    TransferProtocol tp(TpFlavor::kShm, 1, 1, 16);
    EXPECT_THROW(tp.enable_shm_backend(bad), std::invalid_argument);
  }
  ShmOptions zero;
  zero.max_frame_records = 0;  // would reject every frame as oversized
  {
    TransferProtocol tp(TpFlavor::kShm, 1, 1, 16);
    EXPECT_THROW(tp.enable_shm_backend(zero), std::invalid_argument);
  }
}

TEST(ShmBackend, ReceiveLinkIsEgressNotIngress) {
  ShmHarness h;
  EXPECT_NE(&h.tp.receive_link(0), &h.tp.data_link(0));
  EXPECT_EQ(&h.tp.receive_link(0), &h.tp.shm_transport()->egress(0));
}

TEST(ShmBackend, FlavorNameRoundTrips) {
  EXPECT_EQ(to_string(TpFlavor::kShm), "shm");
}

// ---- Round trips --------------------------------------------------------------

TEST(ShmLinkTest, RoundTripsOneBatch) {
  ShmHarness h;
  ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(3, 5, 100))));
  auto msg = h.tp.receive_link(0).pop();
  ASSERT_TRUE(msg.has_value());
  auto* b = std::get_if<DataBatch>(&*msg);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->source_node, 3u);
  ASSERT_EQ(b->records.size(), 5u);
  EXPECT_EQ(b->records[0].seq, 100u);
  EXPECT_EQ(b->records[4].seq, 104u);
  EXPECT_TRUE(
      eventually([&] { return h.tp.shm_link(0).frames_delivered() == 1; }));
  EXPECT_EQ(h.tp.shm_link(0).frames_sent(), 1u);
  EXPECT_GT(h.tp.shm_link(0).bytes_sent(), 5 * sizeof(trace::EventRecord));
}

TEST(ShmLinkTest, EmptyBatchAllowed) {
  ShmHarness h;
  ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(1, 0))));
  auto msg = h.tp.receive_link(0).pop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(std::get_if<DataBatch>(&*msg)->records.empty());
}

TEST(ShmLinkTest, ManyBatchesPreserveOrder) {
  ShmHarness h(1, 512);
  for (std::uint64_t i = 0; i < 100; ++i)
    ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(0, 3, i * 10))));
  for (std::uint64_t i = 0; i < 100; ++i) {
    auto msg = h.tp.receive_link(0).pop();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get_if<DataBatch>(&*msg)->records[0].seq, i * 10);
  }
  EXPECT_EQ(h.tp.shm_link(0).frames_delivered(), 100u);
  EXPECT_FALSE(h.tp.shm_link(0).stream_corrupt());
}

TEST(ShmLinkTest, MultiLinkTrafficStaysSegregated) {
  ShmHarness h(3, 64);
  for (std::uint32_t n = 0; n < 3; ++n)
    ASSERT_TRUE(h.tp.data_link(n).push(Message(batch(n, 2, n * 100))));
  for (std::uint32_t n = 0; n < 3; ++n) {
    auto msg = h.tp.receive_link(n).pop();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get_if<DataBatch>(&*msg)->source_node, n);
    EXPECT_EQ(std::get_if<DataBatch>(&*msg)->records[0].seq, n * 100u);
  }
}

TEST(ShmLinkTest, ControlMessagesBypassTheRingInOrder) {
  ShmHarness h;
  ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(0, 2, 0))));
  ControlMessage cm;
  cm.kind = ControlKind::kFlushAll;
  ASSERT_TRUE(h.tp.data_link(0).push(Message(cm)));
  bool saw_batch = false, saw_control = false;
  for (int i = 0; i < 2; ++i) {
    auto msg = h.tp.receive_link(0).pop();
    ASSERT_TRUE(msg.has_value());
    if (auto* b = std::get_if<DataBatch>(&*msg)) {
      EXPECT_EQ(b->records.size(), 2u);
      saw_batch = true;
    } else {
      EXPECT_EQ(std::get_if<ControlMessage>(&*msg)->kind,
                ControlKind::kFlushAll);
      saw_control = true;
    }
  }
  EXPECT_TRUE(saw_batch);
  EXPECT_TRUE(saw_control);
  // Only the batch was framed into the ring; the control message bypassed.
  EXPECT_TRUE(eventually([&] { return h.tp.shm_link(0).frames_sent() == 1; }));
}

// ---- Backpressure -------------------------------------------------------------

TEST(ShmBackpressure, FullRingParksThePumpThenEveryFrameArrives) {
  // A 128-byte ring holds exactly one single-record frame (24 + 48), and
  // the egress holds 4 messages: queue 20 batches with nobody draining and
  // the chain must fill — egress, then ring, then a parked pump — without
  // losing anything once the consumer shows up.
  ShmOptions opts;
  opts.ring_capacity = 128;
  ShmHarness h(1, 4, opts);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < 20; ++i)
      ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(0, 1, i))));
  });
  ASSERT_TRUE(eventually([&] { return h.tp.shm_link(0).ring_full_waits() > 0; }));
  for (std::uint64_t i = 0; i < 20; ++i) {
    auto msg = h.tp.receive_link(0).pop();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get_if<DataBatch>(&*msg)->records[0].seq, i);
  }
  producer.join();
  EXPECT_EQ(h.tp.shm_link(0).records_lost(), 0u);
}

TEST(ShmBackpressure, FrameLargerThanTheRingIsLostNotWedged) {
  // A frame that can never fit must be attributed and dropped cleanly —
  // parking forever would wedge the pump, corrupting would kill the stream.
  ShmOptions opts;
  opts.ring_capacity = 128;
  ShmHarness h(1, 256, opts);
  obs::PipelineObserver obs;
  h.tp.set_observer(&obs);
  auto big = batch(0, 100, 0);  // 24 + 4800 bytes >> 128
  for (const auto& r : big.records)
    obs.lineage.offer(obs::lineage_key(r.node, r.process, r.seq),
                      static_cast<double>(now_ns()));
  ASSERT_TRUE(h.tp.data_link(0).push(Message(std::move(big))));
  ASSERT_TRUE(
      eventually([&] { return h.tp.shm_link(0).records_lost() == 100; }));
  EXPECT_FALSE(h.tp.shm_link(0).stream_corrupt());
  const auto rep = obs.lineage.report();
  EXPECT_EQ(
      rep.lost_at[static_cast<std::size_t>(obs::LossSite::kTpSendFailed)],
      100u);
  // The stream survives: later, sane traffic still flows.
  ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(0, 1, 500))));
  auto msg = h.tp.receive_link(0).pop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::get_if<DataBatch>(&*msg)->records[0].seq, 500u);
}

// ---- EOF and teardown ---------------------------------------------------------

TEST(ShmLinkTest, CloseWriterDeliversThenCleanEof) {
  ShmHarness h;
  for (std::uint64_t i = 0; i < 5; ++i)
    ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(0, 2, i * 2))));
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(h.tp.receive_link(0).pop());
  h.tp.shm_link(0).close_writer();
  // EOF lands at a frame boundary: the egress closes with nothing lost.
  EXPECT_FALSE(h.tp.receive_link(0).pop().has_value());
  EXPECT_FALSE(h.tp.shm_link(0).stream_corrupt());
  EXPECT_EQ(h.tp.shm_link(0).frames_undelivered(), 0u);
  EXPECT_EQ(h.tp.shm_link(0).records_lost(), 0u);
}

TEST(ShmLinkTest, ClosingDataLinksDrainsAndClosesEgress) {
  ShmHarness h;
  for (std::uint64_t i = 0; i < 50; ++i)
    ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(0, 4, i * 4))));
  h.tp.close_data_links();
  std::size_t records = 0;
  while (auto msg = h.tp.receive_link(0).pop())
    records += std::get_if<DataBatch>(&*msg)->records.size();
  EXPECT_EQ(records, 200u);
  EXPECT_EQ(h.tp.shm_link(0).records_lost(), 0u);
  EXPECT_EQ(h.tp.shm_link(0).frames_undelivered(), 0u);
}

TEST(ShmLinkTest, SendAfterWriterCloseIsAccountedLost) {
  ShmHarness h;
  obs::PipelineObserver obs;
  h.tp.set_observer(&obs);
  h.tp.shm_link(0).close_writer();
  EXPECT_FALSE(h.tp.receive_link(0).pop().has_value());  // EOF
  auto b = batch(0, 3, 0);
  for (const auto& r : b.records)
    obs.lineage.offer(obs::lineage_key(r.node, r.process, r.seq),
                      static_cast<double>(now_ns()));
  ASSERT_TRUE(h.tp.data_link(0).push(Message(std::move(b))));
  ASSERT_TRUE(
      eventually([&] { return h.tp.shm_link(0).records_lost() == 3; }));
  const auto rep = obs.lineage.report();
  EXPECT_EQ(
      rep.lost_at[static_cast<std::size_t>(obs::LossSite::kTpSendFailed)], 3u);
  EXPECT_EQ(rep.in_flight, 0u);
}

// ---- Ring corruption ----------------------------------------------------------

/// Byte-level mirror of the wire header for hand-crafting bad frames.
struct WireHeader {
  std::uint32_t magic;
  std::uint32_t source_node;
  std::uint64_t t_sent_ns;
  std::uint64_t record_count;
};
static_assert(sizeof(WireHeader) == 24, "wire format");

TEST(ShmCorruption, BadMagicCorruptsStreamAfterGoodFrames) {
  ShmHarness h;
  ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(0, 2, 0))));
  ASSERT_TRUE(h.tp.receive_link(0).pop());  // good frame delivered first
  WireHeader bad{0xDEADBEEF, 0, 0, 1};
  ASSERT_TRUE(h.tp.shm_link(0).inject_raw(&bad, sizeof bad));
  // The reader rejects the header, latches corruption, and closes egress.
  EXPECT_FALSE(h.tp.receive_link(0).pop().has_value());
  EXPECT_TRUE(h.tp.shm_link(0).stream_corrupt());
  EXPECT_EQ(h.tp.shm_link(0).frames_corrupt(), 1u);
  EXPECT_EQ(h.tp.shm_link(0).frames_delivered(), 1u);
  EXPECT_EQ(h.tp.shm_link(0).frames_undelivered(), 0u);
}

TEST(ShmCorruption, OversizedRecordCountRejectedBeforeAllocation) {
  ShmOptions opts;
  opts.max_frame_records = 64;
  ShmHarness h(1, 256, opts);
  // Header is well-formed but claims an insane payload; the reader must
  // refuse it from the untrusted count alone, not trust-and-allocate.
  WireHeader bomb{kFrameMagic, 0, 0, 1ull << 60};
  ASSERT_TRUE(h.tp.shm_link(0).inject_raw(&bomb, sizeof bomb));
  EXPECT_FALSE(h.tp.receive_link(0).pop().has_value());
  EXPECT_TRUE(h.tp.shm_link(0).stream_corrupt());
  EXPECT_EQ(h.tp.shm_link(0).frames_corrupt(), 1u);
}

TEST(ShmCorruption, TruncatedPayloadIsCorruptNotCleanEof) {
  ShmHarness h;
  WireHeader hdr{kFrameMagic, 0, 0, 10};  // promises 10 records...
  ASSERT_TRUE(h.tp.shm_link(0).inject_raw(&hdr, sizeof hdr));
  h.tp.shm_link(0).close_writer();  // ...then EOF mid-payload
  EXPECT_FALSE(h.tp.receive_link(0).pop().has_value());
  EXPECT_TRUE(h.tp.shm_link(0).stream_corrupt());
  EXPECT_EQ(h.tp.shm_link(0).frames_corrupt(), 1u);
}

TEST(ShmCorruption, ReaderDeathAttributesRingBufferedFrames) {
  // A corrupt stream strands any frame still in the ring.  Write a good
  // frame immediately followed by garbage: the reader may deliver the good
  // frame or die before parsing it, but the ledger must account every
  // record either as delivered or as lost — never silently vanished.
  ShmHarness h;
  obs::PipelineObserver obs;
  h.tp.set_observer(&obs);
  auto b = batch(0, 4, 0);
  for (const auto& r : b.records)
    obs.lineage.offer(obs::lineage_key(r.node, r.process, r.seq),
                      static_cast<double>(now_ns()));
  ASSERT_TRUE(h.tp.data_link(0).push(Message(std::move(b))));
  WireHeader bad{0x0BADF00D, 0, 0, 1};
  ASSERT_TRUE(h.tp.shm_link(0).inject_raw(&bad, sizeof bad));
  std::size_t delivered_records = 0;
  while (auto msg = h.tp.receive_link(0).pop())
    delivered_records += std::get_if<DataBatch>(&*msg)->records.size();
  // Quiesce so the writer-side ledger is final before asserting on it.
  h.tp.close_data_links();
  auto& link = h.tp.shm_link(0);
  EXPECT_TRUE(link.stream_corrupt());
  EXPECT_EQ(delivered_records + link.records_lost(), 4u);
  const auto rep = obs.lineage.report();
  EXPECT_EQ(rep.in_flight, delivered_records);
  EXPECT_EQ(rep.lost, 4u - delivered_records);
}

// ---- Fault injection ----------------------------------------------------------

TEST(ShmFault, TransientPushFailureRetriesAndDelivers) {
  ShmHarness h;
  fault::FaultPlan p;
  fault::FaultSpec s;
  s.site = fault::FaultSite::kShmPush;
  s.kind = fault::FaultKind::kSendFail;
  s.at_op = 1;  // only the first attempt fails
  p.add(s);
  fault::FaultInjector inj(p, 11);
  fault::RetryPolicy rp;
  rp.base_backoff_ns = 100;
  h.tp.set_fault(&inj, rp);

  ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(0, 3, 0))));
  auto msg = h.tp.receive_link(0).pop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::get_if<DataBatch>(&*msg)->records.size(), 3u);
  EXPECT_EQ(h.tp.shm_link(0).send_failures(), 1u);
  EXPECT_EQ(h.tp.shm_link(0).records_lost(), 0u);
}

TEST(ShmFault, RetryExhaustionAttributesTheBatch) {
  ShmHarness h;
  obs::PipelineObserver obs;
  h.tp.set_observer(&obs);
  fault::FaultPlan p;
  fault::FaultSpec s;
  s.site = fault::FaultSite::kShmPush;
  s.kind = fault::FaultKind::kSendFail;
  s.every_n = 1;  // every attempt fails
  p.add(s);
  fault::FaultInjector inj(p, 5);
  fault::RetryPolicy rp;
  rp.max_attempts = 2;
  rp.base_backoff_ns = 100;
  h.tp.set_fault(&inj, rp);

  auto b = batch(0, 2, 0);
  for (const auto& r : b.records)
    obs.lineage.offer(obs::lineage_key(r.node, r.process, r.seq),
                      static_cast<double>(now_ns()));
  ASSERT_TRUE(h.tp.data_link(0).push(Message(std::move(b))));
  ASSERT_TRUE(
      eventually([&] { return h.tp.shm_link(0).records_lost() == 2; }));
  EXPECT_EQ(h.tp.shm_link(0).send_failures(), 2u);
  const auto rep = obs.lineage.report();
  EXPECT_EQ(
      rep.lost_at[static_cast<std::size_t>(obs::LossSite::kRetryExhausted)],
      2u);
  EXPECT_EQ(rep.in_flight, 0u);
  // Exhaustion destroyed the batch but not the stream: detach the fault and
  // later traffic still flows.
  h.tp.set_fault(nullptr);
  ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(0, 1, 10))));
  EXPECT_TRUE(h.tp.receive_link(0).pop().has_value());
}

TEST(ShmFault, InjectedCorruptMagicIsCaughtByTheReader) {
  ShmHarness h;
  obs::PipelineObserver obs;
  h.tp.set_observer(&obs);
  fault::FaultPlan p;
  fault::FaultSpec s;
  s.site = fault::FaultSite::kShmFrame;
  s.kind = fault::FaultKind::kFrameCorrupt;
  s.at_op = 1;
  p.add(s);
  fault::FaultInjector inj(p, 7);
  h.tp.set_fault(&inj);

  auto b = batch(0, 3, 0);
  for (const auto& r : b.records)
    obs.lineage.offer(obs::lineage_key(r.node, r.process, r.seq),
                      static_cast<double>(now_ns()));
  ASSERT_TRUE(h.tp.data_link(0).push(Message(std::move(b))));
  // The corrupted frame ships whole; the reader must detect the flipped
  // magic and latch corruption.
  EXPECT_FALSE(h.tp.receive_link(0).pop().has_value());
  auto& link = h.tp.shm_link(0);
  EXPECT_TRUE(link.stream_corrupt());
  EXPECT_EQ(link.frames_corrupt(), 1u);
  EXPECT_EQ(link.frames_aborted(), 1u);
  EXPECT_EQ(link.records_lost(), 3u);
  const auto rep = obs.lineage.report();
  EXPECT_EQ(
      rep.lost_at[static_cast<std::size_t>(obs::LossSite::kFrameCorrupt)], 3u);
  EXPECT_EQ(rep.in_flight, 0u);
}

TEST(ShmFault, PartialFrameDesynchronizesAndAborts) {
  ShmHarness h;
  obs::PipelineObserver obs;
  h.tp.set_observer(&obs);
  fault::FaultPlan p;
  p.partial_frame(2, fault::kAnyNode, fault::FaultSite::kShmFrame);
  fault::FaultInjector inj(p, 13);
  h.tp.set_fault(&inj);

  for (std::uint64_t i = 0; i < 2; ++i) {
    auto b = batch(0, 2, i * 2);
    for (const auto& r : b.records)
      obs.lineage.offer(obs::lineage_key(r.node, r.process, r.seq),
                        static_cast<double>(now_ns()));
    ASSERT_TRUE(h.tp.data_link(0).push(Message(std::move(b))));
  }
  // Frame 1 was published whole; frame 2 dies halfway into the ring.
  std::size_t delivered_records = 0;
  while (auto msg = h.tp.receive_link(0).pop())
    delivered_records += std::get_if<DataBatch>(&*msg)->records.size();
  auto& link = h.tp.shm_link(0);
  EXPECT_TRUE(link.stream_corrupt());
  EXPECT_EQ(link.frames_aborted(), 1u);
  EXPECT_EQ(delivered_records, 2u);  // frame 1 was in the ring whole
  EXPECT_EQ(link.records_lost(), 2u);
  const auto rep = obs.lineage.report();
  EXPECT_EQ(rep.in_flight, 2u);  // delivered into egress, nothing completes
  EXPECT_EQ(
      rep.lost_at[static_cast<std::size_t>(obs::LossSite::kFrameCorrupt)], 2u);
}

// ---- Batch-storage recycling --------------------------------------------------

TEST(ShmArena, ReceivePathRecyclesBatchStorageThroughTheArena) {
  // Steady state must not malloc per batch: the reader acquires record
  // storage from the BatchArena and the ISM releases it back.  The arena is
  // process-global, so assert on deltas, not absolutes.  Two waves with a
  // consumption barrier between them: reuse requires a release to land
  // before a later acquire, and on a single core a one-shot burst can
  // legitimately run every reader acquire before the ISM's first release.
  // Once the tool has seen all of wave one, its storage is back in the
  // pool, so wave two's acquires must be served from it.
  const auto before = BatchArena::instance().stats();
  TransferProtocol tp(TpFlavor::kShm, 1, 1, 256);
  tp.enable_shm_backend();
  IsmConfig cfg;
  cfg.causal_ordering = false;
  Ism ism(tp, cfg);
  auto tool = std::make_shared<StatsTool>();
  ism.attach_tool(tool);
  ism.start();
  for (std::uint64_t i = 0; i < 25; ++i)
    ASSERT_TRUE(tp.data_link(0).push(Message(batch(0, 4, i * 4))));
  while (tool->total() < 100)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  for (std::uint64_t i = 25; i < 50; ++i)
    ASSERT_TRUE(tp.data_link(0).push(Message(batch(0, 4, i * 4))));
  ism.stop();
  const auto after = BatchArena::instance().stats();
  EXPECT_GE(after.acquires - before.acquires, 50u);
  EXPECT_GT(after.releases, before.releases);
  EXPECT_GT(after.reuses, before.reuses);
}

// ---- ISM / environment integration --------------------------------------------

TEST(ShmIntegration, FeedsIsmEndToEnd) {
  TransferProtocol tp(TpFlavor::kShm, 1, 1, 256);
  tp.enable_shm_backend();
  IsmConfig cfg;
  cfg.causal_ordering = false;
  Ism ism(tp, cfg);
  auto stats_tool = std::make_shared<StatsTool>();
  ism.attach_tool(stats_tool);
  ism.start();
  for (std::uint64_t i = 0; i < 50; ++i)
    ASSERT_TRUE(tp.data_link(0).push(Message(batch(0, 4, i * 4))));
  ism.stop();
  EXPECT_EQ(stats_tool->total(), 200u);
  EXPECT_EQ(tp.shm_link(0).records_lost(), 0u);
}

TEST(ShmIntegration, EnvironmentRunsOverSharedMemory) {
  core::EnvironmentConfig cfg;
  cfg.nodes = 2;
  cfg.lis_style = core::LisStyle::kForwarding;
  cfg.tp_flavor = TpFlavor::kShm;
  cfg.ism.input = core::InputConfig::kSiso;
  cfg.ism.causal_ordering = true;
  IntegratedEnvironment env(cfg);
  ASSERT_TRUE(env.tp().shm_backend_enabled());
  auto tool = std::make_shared<StatsTool>();
  env.attach_tool(tool);
  obs::PipelineObserver obs;
  env.set_observer(&obs);
  env.start();
  for (std::uint64_t i = 0; i < 400; ++i)
    env.record(ev(static_cast<std::uint32_t>(i % 2), i / 2));
  env.stop();

  EXPECT_EQ(tool->total(), 400u);
  EXPECT_FALSE(env.degradation().degraded());
  EXPECT_EQ(env.degradation().records_lost_wire, 0u);
  const auto rep = obs.lineage.report();
  EXPECT_EQ(rep.admitted, 400u);
  EXPECT_EQ(rep.completed, 400u);
  EXPECT_EQ(rep.in_flight, 0u);
}

TEST(ShmIntegration, MisoEnvironmentUsesOneRingPerNode) {
  core::EnvironmentConfig cfg;
  cfg.nodes = 3;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.flush_policy = core::FlushPolicyKind::kFof;
  cfg.local_buffer_capacity = 8;
  cfg.tp_flavor = TpFlavor::kShm;
  cfg.ism.input = core::InputConfig::kMiso;
  cfg.ism.causal_ordering = true;
  IntegratedEnvironment env(cfg);
  ASSERT_EQ(env.tp().shm_transport()->link_count(), 3u);
  auto tool = std::make_shared<StatsTool>();
  env.attach_tool(tool);
  env.start();
  for (std::uint64_t i = 0; i < 300; ++i)
    env.record(ev(static_cast<std::uint32_t>(i % 3), i / 3));
  env.stop();
  EXPECT_EQ(tool->total(), 300u);
  for (std::uint32_t n = 0; n < 3; ++n)
    EXPECT_GT(env.tp().shm_link(n).frames_delivered(), 0u);
}

TEST(ShmIntegration, ConservationIsExactUnderSeededChaos) {
  // The tentpole invariant: under injected push failures and frame
  // corruption, every admitted record is either completed or attributed
  // lost — admitted == completed + lost + in_flight, exactly.
  core::EnvironmentConfig cfg;
  cfg.nodes = 2;
  cfg.lis_style = core::LisStyle::kForwarding;
  cfg.tp_flavor = TpFlavor::kShm;
  cfg.ism.input = core::InputConfig::kMiso;
  cfg.ism.causal_ordering = false;
  IntegratedEnvironment env(cfg);
  auto tool = std::make_shared<StatsTool>();
  env.attach_tool(tool);
  obs::PipelineObserver obs;
  env.set_observer(&obs);
  fault::FaultPlan plan;
  plan.send_failure(fault::FaultSite::kShmPush, 0.05);
  plan.corrupt_frame(0.01, fault::kAnyNode, fault::FaultSite::kShmFrame);
  fault::FaultInjector inj(plan, 0xC0FFEE);
  fault::RetryPolicy rp;
  rp.max_attempts = 2;
  rp.base_backoff_ns = 100;
  env.set_fault(&inj, rp);
  env.start();
  for (std::uint64_t i = 0; i < 600; ++i)
    env.record(ev(static_cast<std::uint32_t>(i % 2), i / 2));
  env.stop();

  const auto rep = obs.lineage.report();
  EXPECT_EQ(rep.admitted, 600u);
  EXPECT_EQ(rep.admitted, rep.completed + rep.lost + rep.in_flight);
  EXPECT_EQ(rep.in_flight, 0u);  // stop() drains or attributes everything
  EXPECT_EQ(rep.completed, tool->total());
  EXPECT_GT(rep.lost, 0u);  // the plan really fired
  EXPECT_EQ(env.degradation().records_lost_wire,
            env.tp().shm_transport()->records_lost_total());
}

}  // namespace
}  // namespace prism::core
