// Model-time observability of the ROCC and Vista models (DESIGN.md §9):
// lineage conservation and telescoping on real simulated pipelines, loss
// attribution under backpressure, bit-identity of hooked vs unhooked runs,
// and thread-count invariance of replicate_observed().
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "obs/pipeline.hpp"
#include "paradyn/rocc_model.hpp"
#include "sim/replication.hpp"
#include "stats/rng.hpp"
#include "vista/ism_model.hpp"

namespace prism {
namespace {

vista::VistaIsmParams small_vista() {
  vista::VistaIsmParams p;
  p.processes = 4;
  p.mean_interarrival_ms = 15.0;
  p.horizon_ms = 5'000;
  return p;
}

TEST(ModelObs, VistaLineageConservedAndTelescopes) {
  const vista::VistaIsmParams p = small_vista();
  obs::PipelineObserver observer(/*lineage_stride=*/1);
  stats::Rng rng(stats::Rng::hash_seed(11, 0, 0));
  const auto m = vista::run_vista_ism(p, rng, &observer);
  const obs::LineageReport rep = observer.lineage.report();

  // Every generated record is offered; the drained engine finishes them all.
  EXPECT_GT(rep.offered, 100u);
  EXPECT_EQ(rep.admitted, rep.offered);
  EXPECT_EQ(rep.completed, rep.offered);
  EXPECT_EQ(rep.completed, m.released);
  EXPECT_EQ(rep.lost, 0u);
  EXPECT_EQ(rep.in_flight, 0u);
  EXPECT_TRUE(rep.conserved());

  // Per-stage transition means telescope to the end-to-end mean (identical
  // record sets, so only float summation order separates them).
  double stage_sum = 0;
  for (const auto& s : rep.stage) stage_sum += s.mean();
  EXPECT_NEAR(stage_sum, rep.end_to_end.mean(),
              1e-9 * std::max(1.0, rep.end_to_end.mean()));
  // The forwarding-LIS stages are zero-width; network / ISM / tool are not.
  EXPECT_DOUBLE_EQ(rep.stage[0].mean(), 0.0);
  EXPECT_DOUBLE_EQ(rep.stage[1].mean(), 0.0);
  EXPECT_GT(rep.stage[2].mean(), 0.0);
  EXPECT_GT(rep.stage[3].mean(), 0.0);
  EXPECT_GT(rep.stage[4].mean(), 0.0);
}

TEST(ModelObs, VistaStrideTracesSubsetOnly) {
  const vista::VistaIsmParams p = small_vista();
  obs::PipelineObserver observer(/*lineage_stride=*/8);
  stats::Rng rng(stats::Rng::hash_seed(11, 0, 0));
  (void)vista::run_vista_ism(p, rng, &observer);
  const obs::LineageReport rep = observer.lineage.report();
  EXPECT_GT(rep.offered, rep.admitted);
  // ceil(offered / 8) records fall on the stride.
  EXPECT_EQ(rep.admitted, (rep.offered + 7) / 8);
  EXPECT_EQ(rep.completed, rep.admitted);
  EXPECT_TRUE(rep.conserved());
}

TEST(ModelObs, VistaTimelineRecordsQueueTrajectories) {
  const vista::VistaIsmParams p = small_vista();
  obs::PipelineObserver observer(/*lineage_stride=*/1);
  observer.timeline_interval = 100.0;
  stats::Rng rng(stats::Rng::hash_seed(12, 0, 0));
  (void)vista::run_vista_ism(p, rng, &observer);
  const auto names = observer.timeline.series_names();
  for (const char* want :
       {"ism.input_len", "ism.output_len", "poll.input_len", "poll.held",
        "poll.output_len"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << want;
  }
  // Fixed-interval poller: one tick per interval up to and including the
  // horizon, none beyond it.
  const auto polls = observer.timeline.series("poll.input_len");
  EXPECT_EQ(polls.size(), std::size_t(p.horizon_ms / 100.0));
  EXPECT_LE(polls.back().t, p.horizon_ms);
}

TEST(ModelObs, RoccAttributesAllLossesUnderBackpressure) {
  paradyn::ParadynRoccParams p;
  p.app_processes = 24;              // heavy CPU contention
  p.horizon_ms = 20'000;
  p.daemon_max_outstanding = 1;      // tick-dropping daemon
  obs::PipelineObserver observer(/*lineage_stride=*/1);
  stats::Rng rng(stats::Rng::hash_seed(0x5EED, 0x0B5, 0));
  (void)paradyn::run_paradyn_rocc(p, rng, &observer);
  const obs::LineageReport rep = observer.lineage.report();
  EXPECT_GT(rep.offered, 0u);
  EXPECT_GT(rep.lost, 0u) << "expected skipped wakeups under contention";
  EXPECT_DOUBLE_EQ(rep.attributed_loss_fraction(), 1.0);
  // Every loss in this scenario is a skipped wakeup (full daemon pipe).
  EXPECT_EQ(rep.lost_at[std::size_t(obs::LossSite::kLisPipe)], rep.lost);
  EXPECT_TRUE(rep.conserved());
  // Survivors telescope: stage means sum to the end-to-end mean.
  double stage_sum = 0;
  for (const auto& s : rep.stage) stage_sum += s.mean();
  EXPECT_NEAR(stage_sum, rep.end_to_end.mean(),
              1e-9 * std::max(1.0, rep.end_to_end.mean()));
}

TEST(ModelObs, RoccMetricsBitIdenticalWithAndWithoutObserver) {
  paradyn::ParadynRoccParams p;
  p.horizon_ms = 20'000;
  const std::uint64_t seed = stats::Rng::hash_seed(7, 3, 1);

  const auto plain = paradyn::run_paradyn_rocc(p, stats::Rng(seed));
  obs::PipelineObserver observer(/*lineage_stride=*/1);
  observer.timeline_interval = 100.0;  // read-only poller events
  const auto hooked =
      paradyn::run_paradyn_rocc(p, stats::Rng(seed), &observer);

  EXPECT_EQ(plain.pd_interference_ms, hooked.pd_interference_ms);
  EXPECT_EQ(plain.pd_cpu_utilization_pct, hooked.pd_cpu_utilization_pct);
  EXPECT_EQ(plain.pd_horizon_utilization_pct,
            hooked.pd_horizon_utilization_pct);
  EXPECT_EQ(plain.app_cpu_ms, hooked.app_cpu_ms);
  EXPECT_EQ(plain.app_requests, hooked.app_requests);
  EXPECT_EQ(plain.mean_cpu_queueing_delay_ms,
            hooked.mean_cpu_queueing_delay_ms);
  EXPECT_EQ(plain.cpu_utilization, hooked.cpu_utilization);
  // And the observer really observed the run.
  EXPECT_GT(observer.lineage.report().offered, 0u);
  EXPECT_FALSE(observer.timeline.empty());
}

TEST(ModelObs, VistaMetricsIdenticalWithNullSink) {
  // A null observer is the disabled sink: no observability code runs, so an
  // explicitly-nulled run is bit-identical to an unhooked one.
  const vista::VistaIsmParams p = small_vista();
  const std::uint64_t seed = stats::Rng::hash_seed(21, 4, 2);
  const auto unhooked = vista::run_vista_ism(p, stats::Rng(seed));
  const auto nulled = vista::run_vista_ism(p, stats::Rng(seed), nullptr);
  EXPECT_EQ(unhooked.mean_processing_latency_ms,
            nulled.mean_processing_latency_ms);
  EXPECT_EQ(unhooked.p95_processing_latency_ms,
            nulled.p95_processing_latency_ms);
  EXPECT_EQ(unhooked.mean_input_buffer_length,
            nulled.mean_input_buffer_length);
  EXPECT_EQ(unhooked.hold_back_ratio, nulled.hold_back_ratio);
  EXPECT_EQ(unhooked.records, nulled.records);
  EXPECT_EQ(unhooked.released, nulled.released);
}

TEST(ModelObs, ReplicateObservedThreadCountInvariant) {
  const vista::VistaIsmParams p = small_vista();
  const auto model = [&p](stats::Rng& rng,
                          obs::PipelineObserver& o) -> sim::Responses {
    const auto m = vista::run_vista_ism(p, rng, &o);
    return {{"latency", m.mean_processing_latency_ms},
            {"buffer", m.mean_input_buffer_length}};
  };
  const auto serial = sim::replicate_observed(
      6, 99, 5, model, sim::ReplicateOptions{1}, /*lineage_stride=*/2,
      /*timeline_interval=*/250.0);
  const auto parallel = sim::replicate_observed(
      6, 99, 5, model, sim::ReplicateOptions{4}, /*lineage_stride=*/2,
      /*timeline_interval=*/250.0);

  for (const auto& metric : serial.result.metrics()) {
    EXPECT_EQ(serial.result.summary(metric).mean(),
              parallel.result.summary(metric).mean())
        << metric;
  }
  EXPECT_EQ(serial.lineage.offered, parallel.lineage.offered);
  EXPECT_EQ(serial.lineage.admitted, parallel.lineage.admitted);
  EXPECT_EQ(serial.lineage.completed, parallel.lineage.completed);
  EXPECT_EQ(serial.lineage.lost, parallel.lineage.lost);
  EXPECT_TRUE(serial.lineage.conserved());
  // Index-order merge makes even the float summaries bit-identical.
  EXPECT_EQ(serial.lineage.end_to_end.mean(),
            parallel.lineage.end_to_end.mean());
  for (std::size_t i = 0; i < serial.lineage.stage.size(); ++i) {
    EXPECT_EQ(serial.lineage.stage[i].mean(),
              parallel.lineage.stage[i].mean())
        << "stage " << i;
  }
  EXPECT_EQ(serial.timeline.series_names(), parallel.timeline.series_names());
  EXPECT_EQ(serial.timeline.total_points(), parallel.timeline.total_points());
}

}  // namespace
}  // namespace prism
