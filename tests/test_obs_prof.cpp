// Self-profiling plane tests (DESIGN.md §13): backend ladder resolution and
// env knobs, counter-scope nesting, pool busy/idle accounting invariants,
// allocation-counter exactness, the Amdahl fit, and — the invariant the
// whole plane hangs off — that profiling never perturbs simulation results.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/prof/alloc.hpp"
#include "obs/prof/amdahl.hpp"
#include "obs/prof/prof.hpp"
#include "sim/replication.hpp"
#include "sim/thread_pool.hpp"

using namespace prism;
using obs::prof::Backend;

namespace {

/// Spins the CPU for roughly `ms` (sleep would accrue no task-clock).
void burn_ms(double ms) {
  const auto t0 = std::chrono::steady_clock::now();
  volatile double sink = 1.0;
  while (std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
             .count() < ms)
    sink = sink * 1.0000001;
}

std::uint64_t registry_counter(const std::string& name) {
  const auto snap = obs::Registry::instance().snapshot();
  for (const auto& c : snap.counters)
    if (c.name == name) return c.value;
  return 0;
}

TEST(ProfBackend, ForceFallbackPinsRungThree) {
  if (!obs::compiled_in()) {
    EXPECT_EQ(obs::prof::resolve_backend(true), Backend::kOff);
    return;
  }
  EXPECT_EQ(obs::prof::resolve_backend(true), Backend::kFallback);
}

TEST(ProfBackend, EnvKnobDisablesThePlane) {
  ASSERT_EQ(::setenv("PRISM_PROF", "off", 1), 0);
  EXPECT_EQ(obs::prof::resolve_backend(false), Backend::kOff);
  EXPECT_EQ(obs::prof::resolve_backend(true), Backend::kOff);
  ASSERT_EQ(::unsetenv("PRISM_PROF"), 0);
  if (obs::compiled_in()) {
    EXPECT_NE(obs::prof::resolve_backend(false), Backend::kOff);
  }
}

TEST(ProfBackend, ResolvedBackendIsStable) {
  EXPECT_EQ(obs::prof::backend(), obs::prof::backend());
  EXPECT_STRNE(obs::prof::backend_name(obs::prof::backend()), "unknown");
}

TEST(ProfCounterScope, FallbackMeasuresWallAndCpu) {
  const obs::prof::CounterScope scope(Backend::kFallback);
  burn_ms(20);
  const auto d = scope.delta();
  EXPECT_GT(d.wall_ns, 10u * 1'000'000u);
  if (!obs::compiled_in()) {
    EXPECT_EQ(d.backend, Backend::kOff);
    return;
  }
  EXPECT_EQ(d.backend, Backend::kFallback);
  ASSERT_TRUE(d.sw_valid);
  EXPECT_GT(d.task_clock_ns, 0u);
  // A thread cannot accrue more CPU than wall time; allow scheduler-tick
  // granularity slack (rusage advances in jiffies).
  EXPECT_LE(d.task_clock_ns, d.wall_ns + 20'000'000u);
  EXPECT_FALSE(d.hw_valid);  // rusage cannot count cycles
}

TEST(ProfCounterScope, ScopesNest) {
  const obs::prof::CounterScope outer;
  burn_ms(5);
  const obs::prof::CounterScope inner;
  burn_ms(10);
  const auto di = inner.delta();
  const auto douter = outer.delta();
  // Counters run continuously per thread; an outer scope's delta always
  // covers an inner one taken on the same thread.
  EXPECT_GE(douter.wall_ns, di.wall_ns);
  EXPECT_GE(douter.task_clock_ns, di.task_clock_ns);
  EXPECT_GE(douter.cycles, di.cycles);
  EXPECT_GE(douter.instructions, di.instructions);
  if (obs::compiled_in()) {
    EXPECT_GT(di.wall_ns, 0u);
  }
}

TEST(ProfCounterScope, DeltaIsRepeatable) {
  const obs::prof::CounterScope scope;
  burn_ms(2);
  const auto d1 = scope.delta();
  burn_ms(2);
  const auto d2 = scope.delta();
  EXPECT_GE(d2.wall_ns, d1.wall_ns);
  EXPECT_GE(d2.task_clock_ns, d1.task_clock_ns);
}

TEST(ProfPool, BusyIdleAccountingSumsToWallTime) {
  if (!obs::compiled_in())
    GTEST_SKIP() << "pool accounting compiled out with PRISM_OBS=OFF";
  constexpr unsigned kWorkers = 2;
  constexpr unsigned kTasks = 8;
  constexpr auto kTaskWork = std::chrono::milliseconds(5);
  const auto t0 = std::chrono::steady_clock::now();
  sim::ThreadPool pool(kWorkers);
  for (unsigned i = 0; i < kTasks; ++i)
    pool.submit([kTaskWork] { std::this_thread::sleep_for(kTaskWork); });
  pool.wait();
  const auto stats = pool.stats();
  const auto wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());

  ASSERT_EQ(stats.workers.size(), kWorkers);
  EXPECT_EQ(stats.tasks, kTasks);
  // Tasks sleep 5 ms each, so summed busy time is at least the scheduled
  // work (sleep_for never returns early).
  const std::uint64_t expected_busy_ns =
      static_cast<std::uint64_t>(kTasks) *
      std::chrono::duration_cast<std::chrono::nanoseconds>(kTaskWork).count();
  EXPECT_GE(stats.busy_ns_total(), expected_busy_ns);
  // Invariant: each worker's busy + idle never exceeds the pool's lifetime
  // so far (small slack for the clock reads bracketing the accounting).
  for (const auto& w : stats.workers)
    EXPECT_LE(w.busy_ns + w.idle_ns, wall_ns + 5'000'000u);
}

TEST(ProfPool, WorkerClockPublishesToRegistry) {
  if (!obs::compiled_in())
    GTEST_SKIP() << "WorkerClock compiled out with PRISM_OBS=OFF";
  const auto threads0 = registry_counter("test.prof.worker.threads");
  const auto busy0 = registry_counter("test.prof.worker.busy_ns");
  const auto idle0 = registry_counter("test.prof.worker.idle_ns");
  std::thread t([] {
    obs::prof::WorkerClock clock("test.prof.worker");
    const auto t_park = obs::prof::prof_now_ns();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    clock.add_idle_ns(obs::prof::prof_now_ns() - t_park);
    burn_ms(2);
  });
  t.join();
  EXPECT_EQ(registry_counter("test.prof.worker.threads"), threads0 + 1);
  const auto busy = registry_counter("test.prof.worker.busy_ns") - busy0;
  const auto idle = registry_counter("test.prof.worker.idle_ns") - idle0;
  EXPECT_GE(idle, 4u * 1'000'000u);  // the 5 ms sleep was marked idle
  EXPECT_GT(busy, 0u);               // the burn was not
}

TEST(ProfAlloc, CounterIsExactOnSyntheticLoop) {
  if (!obs::prof::alloc_tracking_compiled_in())
    GTEST_SKIP() << "allocator interposition compiled out with PRISM_OBS=OFF";
  constexpr std::size_t kN = 100;
  constexpr std::size_t kSize = 32;
  std::vector<char*> blocks;
  blocks.reserve(kN);  // the loop below must do exactly kN allocations
  const obs::prof::AllocScope scope;
  for (std::size_t i = 0; i < kN; ++i) blocks.push_back(new char[kSize]);
  const auto after_news = scope.delta();
  EXPECT_EQ(after_news.allocs, kN);
  EXPECT_EQ(after_news.frees, 0u);
  EXPECT_GE(after_news.bytes, kN * kSize);
  for (char* p : blocks) delete[] p;
  const auto after_frees = scope.delta();
  EXPECT_EQ(after_frees.allocs, kN);
  EXPECT_EQ(after_frees.frees, kN);
}

TEST(ProfAlloc, ProcessScopeSeesThreadAllocations) {
  if (!obs::prof::alloc_tracking_compiled_in())
    GTEST_SKIP() << "allocator interposition compiled out with PRISM_OBS=OFF";
  const obs::prof::ProcessAllocScope scope;
  std::thread t([] {
    std::vector<char*> blocks;
    blocks.reserve(10);
    for (int i = 0; i < 10; ++i) blocks.push_back(new char[64]);
    for (char* p : blocks) delete[] p;
  });
  t.join();
  const auto d = scope.delta();
  EXPECT_GE(d.allocs, 10u);
  EXPECT_GE(d.frees, 10u);
}

TEST(ProfAmdahl, RecoversKnownSerialFraction) {
  // T(n) = T1 * (s + (1-s)/n) with s = 0.3, T1 = 100 ms — exact inputs must
  // recover s exactly (up to fp rounding) with zero residual.
  const auto fit = obs::prof::fit_amdahl(
      {{1, 100.0}, {2, 65.0}, {4, 47.5}, {8, 38.75}});
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.serial_fraction, 0.3, 1e-9);
  EXPECT_DOUBLE_EQ(fit.t1_ms, 100.0);
  EXPECT_NEAR(fit.rmse_ms, 0.0, 1e-9);
  EXPECT_EQ(fit.points, 4u);
  EXPECT_NEAR(obs::prof::amdahl_predict_ms(fit, 4), 47.5, 1e-9);
}

TEST(ProfAmdahl, SlowdownYieldsSerialFractionAboveOne) {
  // Parallel legs *slower* than serial (the regime the ROADMAP flags):
  // T(2) = 1.2 * T(1)  =>  s = (1.2 - 0.5) / 0.5 = 1.4.
  const auto fit = obs::prof::fit_amdahl({{1, 100.0}, {2, 120.0}});
  ASSERT_TRUE(fit.valid);
  EXPECT_GT(fit.serial_fraction, 1.0);
  EXPECT_NEAR(fit.serial_fraction, 1.4, 1e-9);
}

TEST(ProfAmdahl, RejectsDegenerateSweeps) {
  EXPECT_FALSE(obs::prof::fit_amdahl({}).valid);
  EXPECT_FALSE(obs::prof::fit_amdahl({{1, 100.0}}).valid);
  EXPECT_FALSE(obs::prof::fit_amdahl({{2, 60.0}, {4, 40.0}}).valid);  // no T1
}

/// The model used by the determinism tests: enough arithmetic and RNG draws
/// that any profiling-induced perturbation of the random streams would show.
sim::Responses demo_model(stats::Rng& rng) {
  double acc = 0;
  for (int i = 0; i < 500; ++i) acc += rng.next_double();
  return {{"acc", acc}};
}

TEST(ProfDeterminism, ProfiledParallelRunMatchesSerialBitForBit) {
  // Profiling instruments replicate() internally (counter scopes, alloc
  // scopes, pool accounting); none of it may perturb results.  Serial vs
  // 4-thread runs must agree bitwise, profiled or not.
  sim::ReplicateOptions serial;
  serial.threads = 1;
  sim::ReplicateOptions parallel;
  parallel.threads = 4;
  const auto a = sim::replicate(16, 0xD5EED, 42, demo_model, serial);
  const obs::prof::CounterScope scope;
  const obs::prof::AllocScope allocs;
  const auto b = sim::replicate(16, 0xD5EED, 42, demo_model, parallel);
  ASSERT_EQ(a.metrics(), b.metrics());
  for (const auto& m : a.metrics()) {
    EXPECT_EQ(a.summary(m).mean(), b.summary(m).mean()) << m;
    EXPECT_EQ(a.summary(m).sum(), b.summary(m).sum()) << m;
  }
  if (obs::compiled_in()) {
    // The parallel run's pool accounting must be populated...
    EXPECT_GT(b.pool().busy_ns, 0u);
    EXPECT_GT(b.rep_cpu_ms().count(), 0u);
    // ...and the serial run took no pool at all.
    EXPECT_EQ(a.pool().busy_ns, 0u);
  }
  EXPECT_EQ(a.rep_time_ms().count(), 16u);
  EXPECT_EQ(b.rep_time_ms().count(), 16u);
}

TEST(ProfDeterminism, ScopesDoNotPerturbModelResults) {
  stats::Rng rng1(7), rng2(7);
  const auto plain = demo_model(rng1);
  const obs::prof::CounterScope scope(Backend::kFallback);
  const obs::prof::AllocScope allocs;
  const auto profiled = demo_model(rng2);
  EXPECT_EQ(plain, profiled);
}

}  // namespace
