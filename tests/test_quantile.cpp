// P² on-line quantile estimator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/quantile.hpp"
#include "stats/rng.hpp"

namespace prism::stats {
namespace {

TEST(P2Quantile, RejectsBadQuantile) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  P2Quantile q(0.5);
  EXPECT_THROW(q.value(), std::logic_error);
}

TEST(P2Quantile, ExactForSmallSamples) {
  P2Quantile q(0.5);
  q.add(10);
  EXPECT_DOUBLE_EQ(q.value(), 10.0);
  q.add(30);
  q.add(20);
  // n=3, median = element at floor(0.5*3)=1 of sorted {10,20,30} = 20.
  EXPECT_DOUBLE_EQ(q.value(), 20.0);
}

TEST(P2Quantile, MedianOfUniform) {
  P2Quantile q(0.5);
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) q.add(rng.next_double());
  EXPECT_NEAR(q.value(), 0.5, 0.01);
}

TEST(P2Quantile, TailQuantileOfUniform) {
  P2Quantile q(0.95);
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) q.add(rng.next_double());
  EXPECT_NEAR(q.value(), 0.95, 0.01);
}

TEST(P2Quantile, ExponentialQuantiles) {
  // Exponential(1): q-quantile = -ln(1-q).
  for (double p : {0.5, 0.9, 0.99}) {
    P2Quantile q(p);
    Rng rng(static_cast<std::uint64_t>(p * 1000));
    for (int i = 0; i < 200000; ++i)
      q.add(-std::log(rng.next_double_open()));
    const double expected = -std::log(1 - p);
    EXPECT_NEAR(q.value(), expected, 0.05 * expected + 0.02) << "p=" << p;
  }
}

TEST(P2Quantile, AgreesWithExactOnModerateStream) {
  P2Quantile q(0.9);
  Rng rng(7);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.next_double() * rng.next_double();  // skewed
    q.add(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  const double exact = all[static_cast<std::size_t>(0.9 * all.size())];
  EXPECT_NEAR(q.value(), exact, 0.05 * exact + 0.01);
}

TEST(P2Quantile, MonotoneUnderSortedInput) {
  // Degenerate input orders must not break the markers.
  P2Quantile q(0.5);
  for (int i = 0; i < 1000; ++i) q.add(i);
  EXPECT_NEAR(q.value(), 500.0, 30.0);
  P2Quantile qd(0.5);
  for (int i = 1000; i > 0; --i) qd.add(i);
  EXPECT_NEAR(qd.value(), 500.0, 30.0);
}

TEST(P2Quantile, ConstantStream) {
  P2Quantile q(0.9);
  for (int i = 0; i < 100; ++i) q.add(42.0);
  EXPECT_DOUBLE_EQ(q.value(), 42.0);
}

TEST(P2Quantile, ExactBelowFiveSamplesForAnyQuantile) {
  // Before the five P² markers exist the estimator must answer from the
  // sorted sample directly, at every requested quantile.
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    P2Quantile q(p);
    const std::vector<double> xs{7, 1, 5, 3};  // unsorted on purpose
    std::vector<double> sorted;
    for (double x : xs) {
      q.add(x);
      sorted.push_back(x);
      std::sort(sorted.begin(), sorted.end());
      const auto idx = static_cast<std::size_t>(p * sorted.size());
      EXPECT_DOUBLE_EQ(q.value(), sorted[std::min(idx, sorted.size() - 1)])
          << "p=" << p << " n=" << sorted.size();
    }
  }
}

TEST(P2Quantile, MassiveTiesWithFewDistinctValues) {
  // Ties collapse marker heights; the estimate must stay on an observed
  // plateau, not between them.
  P2Quantile q(0.5);
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) q.add(rng.next_double() < 0.5 ? 1.0 : 2.0);
  EXPECT_GE(q.value(), 1.0);
  EXPECT_LE(q.value(), 2.0);
  P2Quantile lo(0.05), hi(0.95);
  for (int i = 0; i < 10000; ++i) {
    const double x = i % 100 == 0 ? 5.0 : 1.0;  // 99% ties at 1.0
    lo.add(x);
    hi.add(x);
  }
  EXPECT_DOUBLE_EQ(lo.value(), 1.0);
  EXPECT_GE(hi.value(), 1.0);
  EXPECT_LE(hi.value(), 5.0);
}

TEST(P2Quantile, EstimateStaysWithinObservedRange) {
  // At every stream length the estimate is bounded by the running min/max.
  P2Quantile q(0.9);
  Rng rng(21);
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i < 5000; ++i) {
    const double x = (rng.next_double() - 0.5) * 1000.0;
    q.add(x);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    ASSERT_GE(q.value(), lo) << "n=" << i + 1;
    ASSERT_LE(q.value(), hi) << "n=" << i + 1;
  }
}

TEST(P2Quantile, EstimatesMonotoneInQuantileLevel) {
  // On the same stream, a higher requested quantile must not estimate lower.
  std::vector<double> levels{0.1, 0.25, 0.5, 0.75, 0.9, 0.99};
  std::vector<P2Quantile> qs;
  for (double p : levels) qs.emplace_back(p);
  Rng rng(34);
  for (int i = 0; i < 50000; ++i) {
    const double x = -std::log(rng.next_double_open());
    for (auto& q : qs) q.add(x);
  }
  for (std::size_t i = 1; i < qs.size(); ++i)
    EXPECT_LE(qs[i - 1].value(), qs[i].value() + 1e-9)
        << levels[i - 1] << " vs " << levels[i];
}

}  // namespace
}  // namespace prism::stats
