// Environment config parsing/serialization: round trips, defaults, errors
// with line numbers, and end-to-end use (parse -> run).
#include <gtest/gtest.h>

#include <memory>

#include "core/config_io.hpp"
#include "core/environment.hpp"

namespace prism::core {
namespace {

TEST(ConfigIo, ParsesFullConfig) {
  const auto cfg = parse_environment_config(R"(
    # a daemon-style deployment
    nodes = 8
    processes_per_node = 2
    lis = daemon
    flush_policy = faof
    buffer_capacity = 256
    flush_threshold = 0.75
    adaptive_target_flush_ns = 5000000
    sampling_period_ns = 2000000
    pipe_capacity = 512
    daemon_blocks_app = false
    tp = socket
    link_capacity = 2048
    ism_input = miso
    causal_ordering = false
    output_capacity = 4096
    storage_path = /tmp/run.trc
  )");
  EXPECT_EQ(cfg.nodes, 8u);
  EXPECT_EQ(cfg.processes_per_node, 2u);
  EXPECT_EQ(cfg.lis_style, LisStyle::kDaemon);
  EXPECT_EQ(cfg.flush_policy, FlushPolicyKind::kFaof);
  EXPECT_EQ(cfg.local_buffer_capacity, 256u);
  EXPECT_DOUBLE_EQ(cfg.flush_threshold_fraction, 0.75);
  EXPECT_EQ(cfg.adaptive_target_flush_ns, 5'000'000u);
  EXPECT_EQ(cfg.sampling_period_ns, 2'000'000u);
  EXPECT_EQ(cfg.pipe_capacity, 512u);
  EXPECT_FALSE(cfg.daemon_blocks_app_on_full_pipe);
  EXPECT_EQ(cfg.tp_flavor, TpFlavor::kSocket);
  EXPECT_EQ(cfg.link_capacity, 2048u);
  EXPECT_EQ(cfg.ism.input, InputConfig::kMiso);
  EXPECT_FALSE(cfg.ism.causal_ordering);
  EXPECT_EQ(cfg.ism.output_capacity, 4096u);
  ASSERT_TRUE(cfg.ism.storage_path.has_value());
  EXPECT_EQ(cfg.ism.storage_path->string(), "/tmp/run.trc");
}

TEST(ConfigIo, UnsetKeysKeepDefaults) {
  const EnvironmentConfig defaults;
  const auto cfg = parse_environment_config("nodes = 2\n");
  EXPECT_EQ(cfg.nodes, 2u);
  EXPECT_EQ(cfg.lis_style, defaults.lis_style);
  EXPECT_EQ(cfg.local_buffer_capacity, defaults.local_buffer_capacity);
  EXPECT_EQ(cfg.ism.causal_ordering, defaults.ism.causal_ordering);
}

TEST(ConfigIo, EmptyAndCommentOnlyConfigs) {
  EXPECT_EQ(parse_environment_config("").nodes, EnvironmentConfig{}.nodes);
  EXPECT_EQ(parse_environment_config("# nothing\n\n  \n").nodes,
            EnvironmentConfig{}.nodes);
}

TEST(ConfigIo, ErrorsCarryLineNumbers) {
  try {
    parse_environment_config("nodes = 4\nbogus_key = 1\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("bogus_key"), std::string::npos);
  }
}

TEST(ConfigIo, RejectsMalformedValues) {
  EXPECT_THROW(parse_environment_config("nodes = four"), ConfigError);
  EXPECT_THROW(parse_environment_config("nodes = -3"), ConfigError);
  EXPECT_THROW(parse_environment_config("lis = hybrid"), ConfigError);
  EXPECT_THROW(parse_environment_config("flush_policy = maybe"), ConfigError);
  EXPECT_THROW(parse_environment_config("causal_ordering = sometimes"),
               ConfigError);
  EXPECT_THROW(parse_environment_config("ism_input = both"), ConfigError);
  EXPECT_THROW(parse_environment_config("tp = telepathy"), ConfigError);
  EXPECT_THROW(parse_environment_config("flush_threshold = high"),
               ConfigError);
  EXPECT_THROW(parse_environment_config("just a line"), ConfigError);
  EXPECT_THROW(parse_environment_config("= 4"), ConfigError);
  EXPECT_THROW(parse_environment_config("nodes ="), ConfigError);
}

TEST(ConfigIo, SocketKeysParseAndRoundTrip) {
  const auto cfg = parse_environment_config(
      "tp = socket\nsocket_domain = tcp\nsocket_coalesce_bytes = 123\n"
      "socket_max_frame_records = 77\n");
  EXPECT_EQ(cfg.tp_flavor, TpFlavor::kSocket);
  EXPECT_EQ(cfg.socket.domain, SocketDomain::kTcpLoopback);
  EXPECT_EQ(cfg.socket.coalesce_byte_budget, 123u);
  EXPECT_EQ(cfg.socket.max_frame_records, 77u);
  const auto back =
      parse_environment_config(serialize_environment_config(cfg));
  EXPECT_EQ(back.socket.domain, cfg.socket.domain);
  EXPECT_EQ(back.socket.coalesce_byte_budget, cfg.socket.coalesce_byte_budget);
  EXPECT_EQ(back.socket.max_frame_records, cfg.socket.max_frame_records);
}

TEST(ConfigIo, RejectsBadSocketValues) {
  EXPECT_THROW(parse_environment_config("socket_domain = carrier_pigeon"),
               ConfigError);
  EXPECT_THROW(parse_environment_config("socket_coalesce_bytes = 0"),
               ConfigError);
  EXPECT_THROW(parse_environment_config("socket_max_frame_records = 0"),
               ConfigError);
}

TEST(ConfigIo, ShmKeysParseAndRoundTrip) {
  const auto cfg = parse_environment_config(
      "tp = shm\nshm_ring_capacity = 4096\nshm_max_frame_records = 99\n");
  EXPECT_EQ(cfg.tp_flavor, TpFlavor::kShm);
  EXPECT_EQ(cfg.shm.ring_capacity, 4096u);
  EXPECT_EQ(cfg.shm.max_frame_records, 99u);
  const auto back =
      parse_environment_config(serialize_environment_config(cfg));
  EXPECT_EQ(back.tp_flavor, TpFlavor::kShm);
  EXPECT_EQ(back.shm.ring_capacity, cfg.shm.ring_capacity);
  EXPECT_EQ(back.shm.max_frame_records, cfg.shm.max_frame_records);
}

TEST(ConfigIo, RejectsBadShmValuesWithLineNumbers) {
  EXPECT_THROW(parse_environment_config("shm_max_frame_records = 0"),
               ConfigError);
  // Zero and non-power-of-two capacities are rejected at parse time, with
  // the offending line, instead of surfacing as a throw from deep inside
  // environment construction.
  for (const char* bad : {"shm_ring_capacity = 0", "shm_ring_capacity = 100",
                          "shm_ring_capacity = 4095"}) {
    try {
      parse_environment_config(std::string("tp = shm\n") + bad + "\n");
      FAIL() << "expected ConfigError for '" << bad << "'";
    } catch (const ConfigError& e) {
      EXPECT_EQ(e.line(), 2u);
      EXPECT_NE(std::string(e.what()).find("power of two"),
                std::string::npos);
    }
  }
}

TEST(ConfigIo, FederationKeysParseAndRoundTrip) {
  const auto cfg = parse_environment_config(
      "nodes = 200\nism_shards = 8\nshard_virtual_nodes = 16\n"
      "shard_assign = modulo\nroot_tp = socket\nagg_batch_records = 128\n");
  EXPECT_EQ(cfg.federation.shards, 8u);
  EXPECT_TRUE(cfg.federation.enabled());
  EXPECT_EQ(cfg.federation.virtual_nodes, 16u);
  EXPECT_EQ(cfg.federation.assign, ShardAssign::kModulo);
  ASSERT_TRUE(cfg.federation.root_tp.has_value());
  EXPECT_EQ(*cfg.federation.root_tp, TpFlavor::kSocket);
  EXPECT_EQ(cfg.federation.agg_batch_records, 128u);
  const auto back =
      parse_environment_config(serialize_environment_config(cfg));
  EXPECT_EQ(back.federation.shards, cfg.federation.shards);
  EXPECT_EQ(back.federation.virtual_nodes, cfg.federation.virtual_nodes);
  EXPECT_EQ(back.federation.assign, cfg.federation.assign);
  EXPECT_EQ(back.federation.root_tp, cfg.federation.root_tp);
  EXPECT_EQ(back.federation.agg_batch_records,
            cfg.federation.agg_batch_records);
}

TEST(ConfigIo, FederationDefaultsToFlatTopology) {
  const auto cfg = parse_environment_config("nodes = 4\n");
  EXPECT_FALSE(cfg.federation.enabled());
  EXPECT_FALSE(cfg.federation.root_tp.has_value());
  // An unset root_tp stays unset through a round trip (it means "inherit
  // the cluster flavor", which is not the same as an explicit value).
  const auto back =
      parse_environment_config(serialize_environment_config(cfg));
  EXPECT_FALSE(back.federation.root_tp.has_value());
  EXPECT_EQ(back.federation.shards, 0u);
}

TEST(ConfigIo, RejectsBadFederationValues) {
  EXPECT_THROW(parse_environment_config("shard_assign = zodiac"),
               ConfigError);
  EXPECT_THROW(parse_environment_config("shard_virtual_nodes = 0"),
               ConfigError);
  EXPECT_THROW(parse_environment_config("agg_batch_records = 0"),
               ConfigError);
  EXPECT_THROW(parse_environment_config("root_tp = telegraph"), ConfigError);
}

TEST(ConfigIo, TpFlavorRoundTripsAllFlavors) {
  // to_string/parse symmetry for every transport flavor, through a full
  // serialize -> parse cycle.
  for (const TpFlavor f : {TpFlavor::kPipe, TpFlavor::kSocket, TpFlavor::kRpc,
                           TpFlavor::kCustom, TpFlavor::kShm}) {
    EnvironmentConfig cfg;
    cfg.tp_flavor = f;
    const auto back =
        parse_environment_config(serialize_environment_config(cfg));
    EXPECT_EQ(back.tp_flavor, f) << to_string(f);
  }
}

TEST(ConfigIo, OverflowingNumberIsAConfigErrorNotACrash) {
  // "1e999" overflows double; std::stod threw a bare std::out_of_range here.
  // The parser must surface an ordinary ConfigError with the line number.
  try {
    parse_environment_config("nodes = 2\nflush_threshold = 1e999\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
}

TEST(ConfigIo, SerializeParseRoundTrip) {
  EnvironmentConfig cfg;
  cfg.nodes = 3;
  cfg.lis_style = LisStyle::kForwarding;
  cfg.flush_policy = FlushPolicyKind::kThreshold;
  cfg.flush_threshold_fraction = 0.5;
  cfg.tp_flavor = TpFlavor::kRpc;
  cfg.ism.input = InputConfig::kMiso;
  cfg.ism.causal_ordering = true;
  cfg.ism.storage_path = "/tmp/rt.trc";
  const auto text = serialize_environment_config(cfg);
  const auto back = parse_environment_config(text);
  EXPECT_EQ(back.nodes, cfg.nodes);
  EXPECT_EQ(back.lis_style, cfg.lis_style);
  EXPECT_EQ(back.flush_policy, cfg.flush_policy);
  EXPECT_DOUBLE_EQ(back.flush_threshold_fraction,
                   cfg.flush_threshold_fraction);
  EXPECT_EQ(back.tp_flavor, cfg.tp_flavor);
  EXPECT_EQ(back.ism.input, cfg.ism.input);
  EXPECT_EQ(back.ism.causal_ordering, cfg.ism.causal_ordering);
  EXPECT_EQ(back.ism.storage_path, cfg.ism.storage_path);
}

TEST(ConfigIo, ParsedConfigRunsEndToEnd) {
  const auto cfg = parse_environment_config(
      "nodes = 2\nlis = buffered\nbuffer_capacity = 8\n"
      "causal_ordering = false\n");
  IntegratedEnvironment env(cfg);
  auto stats = std::make_shared<StatsTool>();
  env.attach_tool(stats);
  env.start();
  for (std::uint64_t s = 0; s < 10; ++s) {
    trace::EventRecord r;
    r.node = static_cast<std::uint32_t>(s % 2);
    r.seq = s / 2;
    env.record(r);
  }
  env.stop();
  EXPECT_EQ(stats->total(), 10u);
}

}  // namespace
}  // namespace prism::core
