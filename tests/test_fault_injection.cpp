// The fault plane (DESIGN.md §10): deterministic seeded injection, retry /
// backoff, graceful degradation, and the chaos soak — admitted ==
// completed + lost + in_flight must hold no matter what the injector does,
// and two runs with the same seed must lose the same records at the same
// sites.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <tuple>
#include <vector>

#include "core/environment.hpp"
#include "core/lis.hpp"
#include "core/socket_link.hpp"
#include "core/tool.hpp"
#include "fault/fault.hpp"
#include "obs/pipeline.hpp"

namespace prism {
namespace {

using core::DataLink;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultSite;
using fault::FaultSpec;
using fault::RetryPolicy;

trace::EventRecord rec(std::uint32_t node, std::uint64_t seq,
                       std::uint32_t process = 0) {
  trace::EventRecord r;
  r.node = node;
  r.process = process;
  r.seq = seq;
  r.timestamp = seq;
  return r;
}

/// Tool that remembers everything it consumed.
class CollectTool final : public core::Tool {
 public:
  std::string_view name() const override { return "collect"; }
  void consume(const trace::EventRecord& r) override {
    std::lock_guard lk(mu_);
    records_.push_back(r);
  }
  std::vector<trace::EventRecord> records() const {
    std::lock_guard lk(mu_);
    return records_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<trace::EventRecord> records_;
};

/// Tool that throws after `fail_after` records.
class FragileTool final : public core::Tool {
 public:
  explicit FragileTool(std::uint64_t fail_after) : fail_after_(fail_after) {}
  std::string_view name() const override { return "fragile"; }
  void consume(const trace::EventRecord&) override {
    if (++seen_ > fail_after_) throw std::runtime_error("tool crashed");
  }
  std::uint64_t seen() const { return seen_.load(); }

 private:
  const std::uint64_t fail_after_;
  std::atomic<std::uint64_t> seen_{0};
};

// ---- FaultPlan validation ----------------------------------------------------

TEST(FaultPlan, RejectsUnusableSpecs) {
  FaultPlan p;
  FaultSpec none;  // kind == kNone
  none.probability = 0.5;
  EXPECT_THROW(p.add(none), std::invalid_argument);

  FaultSpec bad_p;
  bad_p.kind = FaultKind::kSendFail;
  bad_p.probability = 1.5;
  EXPECT_THROW(p.add(bad_p), std::invalid_argument);

  FaultSpec no_trigger;
  no_trigger.kind = FaultKind::kSendFail;  // all triggers disabled
  EXPECT_THROW(p.add(no_trigger), std::invalid_argument);

  FaultSpec zero_stall;
  zero_stall.kind = FaultKind::kStall;
  zero_stall.probability = 0.5;
  zero_stall.stall_ns = 0;
  EXPECT_THROW(p.add(zero_stall), std::invalid_argument);
}

TEST(FaultPlan, NamedBuildersProduceValidSpecs) {
  FaultPlan p;
  p.send_failure(FaultSite::kTpSend, 0.1)
      .stall(FaultSite::kIsmDispatch, 1000, 0.05)
      .crash(FaultSite::kLisTick, 7, 2)
      .corrupt_frame(0.01)
      .partial_frame(3);
  EXPECT_EQ(p.specs().size(), 5u);
  EXPECT_FALSE(p.empty());
  // stall() at a consumer site maps to kSlowConsumer, elsewhere to kStall.
  EXPECT_EQ(p.specs()[1].kind, FaultKind::kSlowConsumer);
  FaultPlan q;
  q.stall(FaultSite::kTpSend, 1000, 0.05);
  EXPECT_EQ(q.specs()[0].kind, FaultKind::kStall);
}

// ---- Injector determinism ----------------------------------------------------

TEST(FaultInjector, SameSeedSamePlanSameDecisions) {
  FaultPlan p;
  p.send_failure(FaultSite::kTpSend, 0.3).corrupt_frame(0.2);
  FaultInjector a(p, 42), b(p, 42);
  for (int i = 0; i < 500; ++i) {
    const auto fa = a.consult(FaultSite::kTpSend, 1);
    const auto fb = b.consult(FaultSite::kTpSend, 1);
    EXPECT_EQ(fa.kind, fb.kind) << "diverged at consult " << i;
  }
  EXPECT_EQ(a.stats().fired, b.stats().fired);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultPlan p;
  p.send_failure(FaultSite::kTpSend, 0.5);
  FaultInjector a(p, 1), b(p, 2);
  int differ = 0;
  for (int i = 0; i < 200; ++i)
    differ += a.consult(FaultSite::kTpSend).kind !=
              b.consult(FaultSite::kTpSend).kind;
  EXPECT_GT(differ, 0);
}

TEST(FaultInjector, LanesAreScheduleIndependent) {
  // The decision sequence of lane (site, node) must not depend on how
  // consults of other lanes interleave with it.
  FaultPlan p;
  p.send_failure(FaultSite::kTpSend, 0.4);
  FaultInjector seq(p, 7), mix(p, 7);

  std::vector<FaultKind> seq0, seq1, mix0, mix1;
  for (int i = 0; i < 100; ++i) seq0.push_back(seq.consult(FaultSite::kTpSend, 0).kind);
  for (int i = 0; i < 100; ++i) seq1.push_back(seq.consult(FaultSite::kTpSend, 1).kind);
  for (int i = 0; i < 100; ++i) {  // interleaved
    mix0.push_back(mix.consult(FaultSite::kTpSend, 0).kind);
    mix1.push_back(mix.consult(FaultSite::kTpSend, 1).kind);
  }
  EXPECT_EQ(seq0, mix0);
  EXPECT_EQ(seq1, mix1);
}

TEST(FaultInjector, AtOpFiresExactlyOnce) {
  FaultPlan p;
  p.crash(FaultSite::kLisTick, 3);
  FaultInjector inj(p, 0);
  for (std::uint64_t op = 1; op <= 10; ++op) {
    const auto f = inj.consult(FaultSite::kLisTick, 5);
    EXPECT_EQ(f.kind == FaultKind::kCrash, op == 3) << "op " << op;
  }
}

TEST(FaultInjector, EveryNFiresPeriodically) {
  FaultPlan p;
  FaultSpec s;
  s.site = FaultSite::kPipeSend;
  s.kind = FaultKind::kSendFail;
  s.every_n = 4;
  p.add(s);
  FaultInjector inj(p, 0);
  int fired = 0;
  for (int op = 1; op <= 12; ++op)
    fired += inj.consult(FaultSite::kPipeSend).kind == FaultKind::kSendFail;
  EXPECT_EQ(fired, 3);
}

TEST(FaultInjector, EmptyPlanNeverFires) {
  FaultInjector inj(FaultPlan{}, 99);
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(static_cast<bool>(inj.consult(FaultSite::kTpSend, i % 3)));
  EXPECT_EQ(inj.stats().fired, 0u);
  EXPECT_EQ(inj.stats().consults, 100u);
}

// ---- RetryPolicy --------------------------------------------------------------

TEST(RetryPolicy, BackoffGrowsGeometricallyWithinJitterBounds) {
  RetryPolicy rp;
  rp.base_backoff_ns = 1000;
  rp.multiplier = 2.0;
  rp.jitter = 0.25;
  stats::Rng rng(123);
  for (std::uint32_t attempt = 1; attempt <= 6; ++attempt) {
    const double nominal = 1000.0 * std::pow(2.0, attempt - 1);
    const auto ns = rp.backoff_ns(attempt, rng);
    EXPECT_GE(static_cast<double>(ns), 0.75 * nominal - 1) << attempt;
    EXPECT_LE(static_cast<double>(ns), 1.25 * nominal + 1) << attempt;
  }
}

TEST(RetryPolicy, ZeroJitterIsExact) {
  RetryPolicy rp;
  rp.base_backoff_ns = 500;
  rp.multiplier = 3.0;
  rp.jitter = 0.0;
  stats::Rng rng(1);
  EXPECT_EQ(rp.backoff_ns(1, rng), 500u);
  EXPECT_EQ(rp.backoff_ns(2, rng), 1500u);
  EXPECT_EQ(rp.backoff_ns(3, rng), 4500u);
}

// ---- LIS-level degradation ----------------------------------------------------

TEST(FaultLis, ForwardingRetriesTransientFailureAndDelivers) {
  DataLink link(16);
  core::ForwardingLis lis(0, link);
  FaultPlan p;
  FaultSpec s;
  s.site = FaultSite::kTpSend;
  s.kind = FaultKind::kSendFail;
  s.at_op = 1;  // only the first attempt fails
  p.add(s);
  FaultInjector inj(p, 11);
  RetryPolicy rp;
  rp.base_backoff_ns = 100;  // keep the test fast
  lis.set_fault(&inj, rp);

  lis.record(rec(0, 0));
  const auto st = lis.stats();
  EXPECT_EQ(st.records_forwarded, 1u);
  EXPECT_EQ(st.lost_send, 0u);
  EXPECT_TRUE(st.conserved());
  EXPECT_EQ(link.size(), 1u);
}

TEST(FaultLis, ForwardingAttributesRetryExhaustion) {
  DataLink link(16);
  core::ForwardingLis lis(0, link);
  obs::PipelineObserver obs;
  lis.set_observer(&obs);
  FaultPlan p;
  FaultSpec s;
  s.site = FaultSite::kTpSend;
  s.kind = FaultKind::kSendFail;
  s.every_n = 1;  // every attempt fails
  p.add(s);
  FaultInjector inj(p, 5);
  RetryPolicy rp;
  rp.max_attempts = 2;
  rp.base_backoff_ns = 100;
  lis.set_fault(&inj, rp);

  lis.record(rec(0, 0));
  const auto st = lis.stats();
  EXPECT_EQ(st.lost_send, 1u);
  EXPECT_EQ(st.records_forwarded, 0u);
  EXPECT_TRUE(st.conserved());
  const auto rep = obs.lineage.report();
  EXPECT_EQ(rep.lost_at[static_cast<std::size_t>(
                obs::LossSite::kRetryExhausted)],
            1u);
  EXPECT_EQ(rep.in_flight, 0u);
}

TEST(FaultLis, ForwardingConservedWhenLinkClosed) {
  // Regression: a closed link used to double-count (recorded AND dropped).
  DataLink link(4);
  link.close();
  core::ForwardingLis lis(0, link);
  for (int i = 0; i < 3; ++i) lis.record(rec(0, i));
  const auto st = lis.stats();
  EXPECT_EQ(st.recorded, 0u);
  EXPECT_EQ(st.dropped, 3u);
  EXPECT_EQ(st.records_forwarded, 0u);
  EXPECT_TRUE(st.conserved());
}

TEST(FaultLis, BufferedCrashLosesBatchThenRefusesRecords) {
  DataLink link(16);
  core::BufferedLis lis(0, 4, std::make_unique<core::FlushOnFill>(), link);
  obs::PipelineObserver obs;
  lis.set_observer(&obs);
  FaultPlan p;
  p.crash(FaultSite::kTpSend, 1);  // die at the very first send
  FaultInjector inj(p, 3);
  lis.set_fault(&inj);

  for (int i = 0; i < 4; ++i) lis.record(rec(0, i));  // fills -> FOF flush
  EXPECT_TRUE(lis.dead());
  lis.record(rec(0, 4));  // refused: the LIS is dead
  const auto st = lis.stats();
  EXPECT_EQ(st.lost_dead, 4u);
  EXPECT_EQ(st.dropped, 1u);
  EXPECT_EQ(st.records_forwarded, 0u);
  EXPECT_TRUE(st.conserved());
  EXPECT_EQ(link.size(), 0u);
  const auto rep = obs.lineage.report();
  EXPECT_EQ(rep.lost_at[static_cast<std::size_t>(obs::LossSite::kLisDead)],
            5u);
  EXPECT_EQ(rep.in_flight, 0u);
}

TEST(FaultLis, DaemonCrashDrainsPipesAndStaysConserved) {
  DataLink link(1024);
  core::DaemonLis lis(0, 2, 64, 200'000, link);  // 0.2 ms ticks
  FaultPlan p;
  p.crash(FaultSite::kLisTick, 3);  // die on the third tick
  FaultInjector inj(p, 17);
  lis.set_fault(&inj);

  std::uint64_t seq = 0;
  while (!lis.dead() && seq < 200'000) {
    lis.record(rec(0, seq, static_cast<std::uint32_t>(seq % 2)));
    ++seq;
  }
  ASSERT_TRUE(lis.dead());
  for (int i = 0; i < 5; ++i)  // post-mortem records are refused
    lis.record(rec(0, seq + i));
  lis.stop();  // must not hang or double-account
  const auto st = lis.stats();
  EXPECT_TRUE(st.conserved()) << "recorded=" << st.recorded
                              << " fwd=" << st.records_forwarded
                              << " dropped=" << st.dropped
                              << " lost_dead=" << st.lost_dead
                              << " buffered=" << st.buffered;
  EXPECT_EQ(st.buffered, 0u);
  EXPECT_GE(st.dropped, 5u);
}

// ---- ISM-level degradation -----------------------------------------------------

TEST(FaultIsm, DeadSourceExpiryReleasesStrandedRecords) {
  // Node 1 loses its seq-1 batch (send failure, no retry), then crashes on
  // the 4th send.  The seq-2 record reached the ISM but is held back behind
  // the gap; marking the source dead at shutdown must release it instead of
  // stranding it as residue.
  core::EnvironmentConfig cfg;
  cfg.nodes = 2;
  cfg.lis_style = core::LisStyle::kForwarding;
  cfg.ism.input = core::InputConfig::kSiso;
  cfg.ism.causal_ordering = true;
  core::IntegratedEnvironment env(cfg);
  auto tool = std::make_shared<CollectTool>();
  env.attach_tool(tool);
  obs::PipelineObserver obs;
  env.set_observer(&obs);

  FaultPlan p;
  FaultSpec fail;
  fail.site = FaultSite::kTpSend;
  fail.kind = FaultKind::kSendFail;
  fail.at_op = 2;
  fail.node = 1;
  p.add(fail);
  p.crash(FaultSite::kTpSend, 4, /*node=*/1);
  FaultInjector inj(p, 21);
  RetryPolicy rp;
  rp.max_attempts = 1;  // no retry: op numbers stay 1:1 with records
  env.set_fault(&inj, rp);
  env.start();

  env.record(rec(0, 0));
  env.record(rec(1, 0));  // op1: delivered
  env.record(rec(1, 1));  // op2: send fails, no retry -> lost, seq gap
  env.record(rec(1, 2));  // op3: delivered, held back behind the gap
  env.record(rec(1, 3));  // op4: crash -> node 1 dead
  EXPECT_TRUE(env.lis(1).dead());
  env.stop();

  const auto ism = env.ism().stats();
  EXPECT_EQ(ism.sources_dead, 1u);
  EXPECT_EQ(ism.expired_released, 1u);
  EXPECT_EQ(ism.still_held, 0u);
  EXPECT_TRUE(ism.conserved());

  bool seq2_dispatched = false;
  for (const auto& r : tool->records())
    if (r.node == 1 && r.seq == 2) seq2_dispatched = true;
  EXPECT_TRUE(seq2_dispatched);

  const auto deg = env.degradation();
  EXPECT_EQ(deg.lises_dead, 1u);
  EXPECT_EQ(deg.holdback_expired, 1u);
  EXPECT_TRUE(deg.degraded());

  const auto rep = obs.lineage.report();
  EXPECT_EQ(rep.in_flight, 0u);
  EXPECT_EQ(rep.admitted, rep.completed + rep.lost);
}

TEST(FaultIsm, InjectedToolCrashIsolatesOnlyThatTool) {
  core::EnvironmentConfig cfg;
  cfg.nodes = 1;
  cfg.lis_style = core::LisStyle::kForwarding;
  cfg.ism.input = core::InputConfig::kSiso;
  cfg.ism.causal_ordering = false;
  core::IntegratedEnvironment env(cfg);
  auto survivor = std::make_shared<CollectTool>();
  auto victim = std::make_shared<CollectTool>();
  env.attach_tool(survivor);  // tool index 0
  env.attach_tool(victim);    // tool index 1
  FaultPlan p;
  p.crash(FaultSite::kToolCallback, 3, /*tool index=*/1);
  FaultInjector inj(p, 9);
  env.set_fault(&inj);
  env.start();
  for (int i = 0; i < 10; ++i) env.record(rec(0, i));
  env.stop();

  EXPECT_EQ(survivor->records().size(), 10u);
  EXPECT_EQ(victim->records().size(), 2u);  // died at its 3rd callback
  EXPECT_EQ(env.ism().stats().tools_failed, 1u);
  EXPECT_EQ(env.degradation().tools_failed, 1u);
}

TEST(FaultIsm, ThrowingToolIsIsolatedOrganically) {
  core::EnvironmentConfig cfg;
  cfg.nodes = 1;
  cfg.lis_style = core::LisStyle::kForwarding;
  cfg.ism.input = core::InputConfig::kSiso;
  cfg.ism.causal_ordering = false;
  core::IntegratedEnvironment env(cfg);
  auto fragile = std::make_shared<FragileTool>(4);
  auto survivor = std::make_shared<CollectTool>();
  env.attach_tool(fragile);
  env.attach_tool(survivor);
  env.start();
  for (int i = 0; i < 12; ++i) env.record(rec(0, i));
  env.stop();

  EXPECT_EQ(survivor->records().size(), 12u);
  EXPECT_EQ(fragile->seen(), 5u);  // 4 ok + the one that threw
  EXPECT_EQ(env.ism().stats().tools_failed, 1u);
}

// ---- Chaos soak ---------------------------------------------------------------

struct ChaosCounts {
  std::uint64_t admitted = 0, completed = 0, lost = 0;
  std::array<std::uint64_t, obs::kLossSiteCount> lost_at{};
  std::uint64_t recorded = 0, forwarded = 0, lost_send = 0, lost_dead = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t lost_wire = 0;
  std::uint32_t lises_dead = 0;

  bool operator==(const ChaosCounts& o) const {
    return admitted == o.admitted && completed == o.completed &&
           lost == o.lost && lost_at == o.lost_at && recorded == o.recorded &&
           forwarded == o.forwarded && lost_send == o.lost_send &&
           lost_dead == o.lost_dead && dispatched == o.dispatched &&
           lost_wire == o.lost_wire && lises_dead == o.lises_dead;
  }
};

ChaosCounts run_chaos(std::uint64_t seed,
                      core::TpFlavor flavor = core::TpFlavor::kPipe) {
  FaultPlan plan;
  // The crash goes first: the first matching spec wins a consult, and the
  // at_op trigger is one-shot — a Bernoulli send-failure landing on the same
  // consult would otherwise mask the crash forever.
  plan.crash(FaultSite::kTpSend, 40, /*node=*/2);
  plan.send_failure(FaultSite::kTpSend, 0.05);
  FaultInjector inj(plan, seed);

  core::EnvironmentConfig cfg;
  cfg.nodes = 4;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.flush_policy = core::FlushPolicyKind::kFof;
  cfg.local_buffer_capacity = 8;
  cfg.link_capacity = 4096;
  cfg.tp_flavor = flavor;
  cfg.ism.input = core::InputConfig::kSiso;
  cfg.ism.causal_ordering = true;
  core::IntegratedEnvironment env(cfg);
  obs::PipelineObserver obs;
  env.set_observer(&obs);
  RetryPolicy rp;
  rp.base_backoff_ns = 100;
  env.set_fault(&inj, rp);
  env.start();
  for (std::uint64_t i = 0; i < 2000; ++i)
    env.record(rec(static_cast<std::uint32_t>(i % 4), i / 4));
  env.stop();

  const auto rep = obs.lineage.report();
  // The conservation identity must close exactly: every admitted record is
  // either delivered to the tools or attributed to a named loss site.
  EXPECT_EQ(rep.in_flight, 0u);
  EXPECT_EQ(rep.admitted, rep.completed + rep.lost);
  EXPECT_DOUBLE_EQ(rep.attributed_loss_fraction(), 1.0);
  const auto lis = env.total_lis_stats();
  EXPECT_TRUE(lis.conserved());
  const auto ism = env.ism().stats();
  EXPECT_TRUE(ism.conserved());
  EXPECT_TRUE(env.degradation().degraded());
  EXPECT_GE(env.degradation().lises_dead, 1u);

  ChaosCounts c;
  c.admitted = rep.admitted;
  c.completed = rep.completed;
  c.lost = rep.lost;
  c.lost_at = rep.lost_at;
  c.recorded = lis.recorded;
  c.forwarded = lis.records_forwarded;
  c.lost_send = lis.lost_send;
  c.lost_dead = lis.lost_dead;
  c.dispatched = ism.records_dispatched;
  c.lost_wire = env.degradation().records_lost_wire;
  c.lises_dead = env.degradation().lises_dead;
  return c;
}

TEST(ChaosSoak, SeededRunConservesAndRepeatsExactly) {
  const auto first = run_chaos(1234);
  const auto second = run_chaos(1234);
  EXPECT_TRUE(first == second)
      << "same-seed chaos runs diverged: admitted " << first.admitted << "/"
      << second.admitted << " completed " << first.completed << "/"
      << second.completed << " lost " << first.lost << "/" << second.lost;
  // The fault plan actually did something: node 2 died and records were
  // attributed to the new loss sites.
  EXPECT_EQ(first.lises_dead, 1u);
  EXPECT_GT(first.lost_dead, 0u);
  EXPECT_GT(first.lost, 0u);
  EXPECT_GT(first.completed, 0u);
}

TEST(ChaosSoak, DifferentSeedsStillConserve) {
  const auto a = run_chaos(7);
  const auto b = run_chaos(8);
  // Conservation asserted inside run_chaos for both; the seeds should
  // plausibly produce different fault sequences.
  EXPECT_EQ(a.admitted, b.admitted);  // offered load is seed-independent
}

TEST(ChaosSoak, PipeAndSocketLedgersMatchForTheSameSeed) {
  // The fault plan only consults LIS-side lanes (kTpSend), and lanes are
  // schedule-independent, so routing the data plane over real sockets must
  // not change a single ledger entry: same records admitted, same records
  // lost at the same sites, nothing extra destroyed on the wire.
  const auto pipe = run_chaos(4242, core::TpFlavor::kPipe);
  const auto socket = run_chaos(4242, core::TpFlavor::kSocket);
  EXPECT_TRUE(pipe == socket)
      << "transport changed the ledger: admitted " << pipe.admitted << "/"
      << socket.admitted << " completed " << pipe.completed << "/"
      << socket.completed << " lost " << pipe.lost << "/" << socket.lost
      << " lost_wire " << pipe.lost_wire << "/" << socket.lost_wire;
  EXPECT_EQ(socket.lost_wire, 0u);  // no socket-site faults in the plan
  EXPECT_GT(socket.completed, 0u);
}

/// Socket-path chaos: LIS faults plus retryable wire-send failures.  Only
/// synchronous fault sites (kTpSend, kSocketSend) — asynchronous wire
/// corruption splits losses between sites by reader/writer timing and is
/// exercised by the conservation-only test below.
ChaosCounts run_socket_chaos(std::uint64_t seed) {
  FaultPlan plan;
  plan.crash(FaultSite::kTpSend, 40, /*node=*/2);
  plan.send_failure(FaultSite::kTpSend, 0.05);
  plan.send_failure(FaultSite::kSocketSend, 0.3);
  FaultInjector inj(plan, seed);

  core::EnvironmentConfig cfg;
  cfg.nodes = 4;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.flush_policy = core::FlushPolicyKind::kFof;
  cfg.local_buffer_capacity = 8;
  cfg.link_capacity = 4096;
  cfg.tp_flavor = core::TpFlavor::kSocket;
  cfg.ism.input = core::InputConfig::kSiso;
  cfg.ism.causal_ordering = true;
  core::IntegratedEnvironment env(cfg);
  obs::PipelineObserver obs;
  env.set_observer(&obs);
  RetryPolicy rp;
  rp.base_backoff_ns = 100;
  env.set_fault(&inj, rp);
  env.start();
  for (std::uint64_t i = 0; i < 2000; ++i)
    env.record(rec(static_cast<std::uint32_t>(i % 4), i / 4));
  env.stop();

  const auto rep = obs.lineage.report();
  EXPECT_EQ(rep.in_flight, 0u);
  EXPECT_EQ(rep.admitted, rep.completed + rep.lost);
  EXPECT_DOUBLE_EQ(rep.attributed_loss_fraction(), 1.0);
  EXPECT_TRUE(env.total_lis_stats().conserved());
  EXPECT_TRUE(env.ism().stats().conserved());

  ChaosCounts c;
  c.admitted = rep.admitted;
  c.completed = rep.completed;
  c.lost = rep.lost;
  c.lost_at = rep.lost_at;
  c.recorded = env.total_lis_stats().recorded;
  c.forwarded = env.total_lis_stats().records_forwarded;
  c.lost_send = env.total_lis_stats().lost_send;
  c.lost_dead = env.total_lis_stats().lost_dead;
  c.dispatched = env.ism().stats().records_dispatched;
  c.lost_wire = env.degradation().records_lost_wire;
  c.lises_dead = env.degradation().lises_dead;
  return c;
}

TEST(SocketChaos, SeededSocketRunRepeatsExactly) {
  const auto first = run_socket_chaos(99);
  const auto second = run_socket_chaos(99);
  EXPECT_TRUE(first == second)
      << "same-seed socket chaos runs diverged: admitted " << first.admitted
      << "/" << second.admitted << " lost " << first.lost << "/"
      << second.lost << " lost_wire " << first.lost_wire << "/"
      << second.lost_wire;
  EXPECT_EQ(first.lises_dead, 1u);
  EXPECT_GT(first.completed, 0u);
  EXPECT_GT(first.lost, 0u);
}

TEST(SocketChaos, WireCorruptionStillConserves) {
  // Asynchronous corruption: where exactly each record dies (aborted frame,
  // stranded in the kernel buffer, EPIPE after the reader quit) depends on
  // reader/writer timing — but the identity admitted == completed + lost +
  // in_flight must close exactly, with every loss attributed.
  FaultPlan plan;
  plan.corrupt_frame(0.02, fault::kAnyNode, FaultSite::kSocketFrame);
  plan.partial_frame(30, fault::kAnyNode, FaultSite::kSocketFrame);
  FaultInjector inj(plan, 31337);

  core::EnvironmentConfig cfg;
  cfg.nodes = 2;
  cfg.lis_style = core::LisStyle::kForwarding;
  cfg.tp_flavor = core::TpFlavor::kSocket;
  cfg.ism.input = core::InputConfig::kSiso;
  cfg.ism.causal_ordering = false;
  core::IntegratedEnvironment env(cfg);
  obs::PipelineObserver obs;
  env.set_observer(&obs);
  env.set_fault(&inj);
  env.start();
  for (std::uint64_t i = 0; i < 1000; ++i)
    env.record(rec(static_cast<std::uint32_t>(i % 2), i / 2));
  env.stop();

  const auto rep = obs.lineage.report();
  EXPECT_EQ(rep.in_flight, 0u);
  EXPECT_EQ(rep.admitted, rep.completed + rep.lost);
  EXPECT_DOUBLE_EQ(rep.attributed_loss_fraction(), 1.0);
  EXPECT_TRUE(env.total_lis_stats().conserved());
  // The stream died mid-run: wire losses were recorded and surfaced in the
  // degradation report.
  EXPECT_GT(env.degradation().records_lost_wire, 0u);
  EXPECT_TRUE(env.degradation().degraded());
  EXPECT_TRUE(env.tp().socket_link(0).stream_corrupt());
  EXPECT_EQ(env.degradation().records_lost_wire,
            env.tp().socket_transport()->records_lost_total());
}

TEST(ChaosSoak, NullInjectorIsBitIdenticalToDetachedRun) {
  auto run = [](bool attach_null_fault) {
    core::EnvironmentConfig cfg;
    cfg.nodes = 2;
    cfg.lis_style = core::LisStyle::kBuffered;
    cfg.flush_policy = core::FlushPolicyKind::kFof;
    cfg.local_buffer_capacity = 8;
    cfg.ism.input = core::InputConfig::kSiso;
    cfg.ism.causal_ordering = true;
    core::IntegratedEnvironment env(cfg);
    obs::PipelineObserver obs;
    env.set_observer(&obs);
    if (attach_null_fault) env.set_fault(nullptr);
    env.start();
    for (std::uint64_t i = 0; i < 400; ++i)
      env.record(rec(static_cast<std::uint32_t>(i % 2), i / 2));
    env.stop();
    EXPECT_FALSE(env.degradation().degraded());
    const auto rep = obs.lineage.report();
    return std::tuple{rep.admitted, rep.completed, rep.lost,
                      env.total_lis_stats().records_forwarded};
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace prism
