// ROCC model: round-robin CPU semantics, FIFO network, process request
// cycles, and node-level conservation properties.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rocc/model.hpp"
#include "rocc/process.hpp"
#include "rocc/resource.hpp"
#include "sim/engine.hpp"
#include "stats/distributions.hpp"

namespace prism::rocc {
namespace {

Request make_request(double demand, std::uint32_t pid = 0,
                     ProcessClass cls = ProcessClass::kApplication,
                     ResourceKind kind = ResourceKind::kCpu) {
  Request r;
  r.process_id = pid;
  r.cls = cls;
  r.resource = kind;
  r.demand = demand;
  return r;
}

TEST(CpuResource, SingleRequestRunsToCompletion) {
  sim::Engine eng;
  CpuResource cpu(eng, "cpu", 10.0);
  double completed_at = -1;
  cpu.submit(make_request(25.0), [&](Request&& r) {
    completed_at = r.t_completed;
  });
  eng.run();
  EXPECT_DOUBLE_EQ(completed_at, 25.0);
  cpu.finalize(eng.now());
  EXPECT_DOUBLE_EQ(cpu.busy_time(), 25.0);
  // 25 with quantum 10: two forced preemptions (after 10 and 20).
  EXPECT_EQ(cpu.preemptions(), 2u);
}

TEST(CpuResource, RoundRobinInterleavesProcessesFairly) {
  sim::Engine eng;
  CpuResource cpu(eng, "cpu", 1.0);
  std::vector<int> completion_order;
  // Two equal 3-unit jobs from distinct processes: RR alternates slices, so
  // they finish at times 5 and 6 (not 3 and 6 as FIFO would).
  double done1 = -1, done2 = -1;
  cpu.submit(make_request(3.0, 1), [&](Request&& r) {
    completion_order.push_back(1);
    done1 = r.t_completed;
  });
  cpu.submit(make_request(3.0, 2), [&](Request&& r) {
    completion_order.push_back(2);
    done2 = r.t_completed;
  });
  eng.run();
  EXPECT_DOUBLE_EQ(done1, 5.0);
  EXPECT_DOUBLE_EQ(done2, 6.0);
  EXPECT_EQ(completion_order, (std::vector<int>{1, 2}));
  cpu.finalize(eng.now());
  EXPECT_DOUBLE_EQ(cpu.busy_time(), 6.0);
}

TEST(CpuResource, SameProcessRequestsServeFifo) {
  // Two requests from ONE process do not double its scheduler share: they
  // run back-to-back within the process's slot.
  sim::Engine eng;
  CpuResource cpu(eng, "cpu", 1.0);
  double first = -1, second = -1;
  cpu.submit(make_request(3.0, 7), [&](Request&& r) { first = r.t_completed; });
  cpu.submit(make_request(3.0, 7), [&](Request&& r) { second = r.t_completed; });
  eng.run();
  EXPECT_DOUBLE_EQ(first, 3.0);
  EXPECT_DOUBLE_EQ(second, 6.0);
}

TEST(CpuResource, BackloggedProcessGetsFairShareOnly) {
  // One process with a deep backlog vs one with a single long job: over the
  // contention window each gets ~half the CPU (the Fig. 9b mechanism).
  sim::Engine eng;
  CpuResource cpu(eng, "cpu", 1.0);
  for (int i = 0; i < 10; ++i)
    cpu.submit(make_request(2.0, 1), [](Request&&) {});  // 20 units backlog
  double long_done = -1;
  cpu.submit(make_request(10.0, 2),
             [&](Request&& r) { long_done = r.t_completed; });
  eng.run();
  // Fair share: the 10-unit job finishes around t = 20, far earlier than
  // the t = 30 it would see if the backlog held 10 ready slots.
  EXPECT_LE(long_done, 21.0);
  EXPECT_GE(long_done, 19.0);
}

TEST(CpuResource, ShortJobNotStarvedByLongJob) {
  sim::Engine eng;
  CpuResource cpu(eng, "cpu", 1.0);
  double short_done = -1, long_done = -1;
  cpu.submit(make_request(100.0, 1),
             [&](Request&& r) { long_done = r.t_completed; });
  cpu.submit(make_request(2.0, 2),
             [&](Request&& r) { short_done = r.t_completed; });
  eng.run();
  // With RR the 2-unit job finishes by t=4 despite the 100-unit job ahead.
  EXPECT_LE(short_done, 4.0 + 1e-9);
  EXPECT_DOUBLE_EQ(long_done, 102.0);
}

TEST(CpuResource, PerClassAccounting) {
  sim::Engine eng;
  CpuResource cpu(eng, "cpu", 5.0);
  cpu.submit(make_request(10.0, 1, ProcessClass::kApplication),
             [](Request&&) {});
  cpu.submit(make_request(4.0, 2, ProcessClass::kInstrumentation),
             [](Request&&) {});
  eng.run();
  cpu.finalize(eng.now());
  EXPECT_DOUBLE_EQ(cpu.busy_time(ProcessClass::kApplication), 10.0);
  EXPECT_DOUBLE_EQ(cpu.busy_time(ProcessClass::kInstrumentation), 4.0);
  EXPECT_DOUBLE_EQ(cpu.utilization(), 1.0);  // never idle until done
}

TEST(CpuResource, QuantumLongerThanDemandNoPreemption) {
  sim::Engine eng;
  CpuResource cpu(eng, "cpu", 50.0);
  cpu.submit(make_request(10.0), [](Request&&) {});
  eng.run();
  EXPECT_EQ(cpu.preemptions(), 0u);
}

TEST(CpuResource, RejectsInvalid) {
  sim::Engine eng;
  EXPECT_THROW(CpuResource(eng, "cpu", 0.0), std::invalid_argument);
  CpuResource cpu(eng, "cpu", 1.0);
  EXPECT_THROW(cpu.submit(make_request(0.0), [](Request&&) {}),
               std::invalid_argument);
  EXPECT_THROW(cpu.submit(make_request(1.0), nullptr), std::invalid_argument);
}

TEST(FifoResource, ServesInOrderWithoutPreemption) {
  sim::Engine eng;
  FifoResource net(eng, "net");
  std::vector<double> completions;
  net.submit(make_request(5.0, 1, ProcessClass::kApplication,
                          ResourceKind::kNetwork),
             [&](Request&& r) { completions.push_back(r.t_completed); });
  net.submit(make_request(3.0, 2, ProcessClass::kApplication,
                          ResourceKind::kNetwork),
             [&](Request&& r) { completions.push_back(r.t_completed); });
  eng.run();
  EXPECT_EQ(completions, (std::vector<double>{5.0, 8.0}));
}

TEST(FifoResource, QueueingDelayMeasured) {
  sim::Engine eng;
  FifoResource net(eng, "net");
  net.submit(make_request(4.0), [](Request&&) {});
  net.submit(make_request(1.0), [](Request&&) {});
  eng.run();
  // Second request waited 4.
  EXPECT_DOUBLE_EQ(net.queueing_delays().max(), 4.0);
  EXPECT_EQ(net.completions(), 2u);
}

// ---- RoccProcess ---------------------------------------------------------------

TEST(RoccProcess, ExecutesStepsSequentially) {
  sim::Engine eng;
  CpuResource cpu(eng, "cpu", 10.0);
  FifoResource net(eng, "net");
  ResourceSet rs{&cpu, &net, nullptr};
  int steps = 0;
  Behavior b = [&steps](stats::Rng&) -> std::optional<Step> {
    if (steps >= 4) return std::nullopt;
    ++steps;
    return Step{1.0, steps % 2 ? ResourceKind::kCpu : ResourceKind::kNetwork,
                2.0};
  };
  RoccProcess proc(eng, 0, ProcessClass::kApplication, rs, b, stats::Rng(1));
  proc.start();
  eng.run();
  EXPECT_TRUE(proc.terminated());
  EXPECT_EQ(proc.requests_completed(), 4u);
  EXPECT_DOUBLE_EQ(proc.demand_completed(ResourceKind::kCpu), 4.0);
  EXPECT_DOUBLE_EQ(proc.demand_completed(ResourceKind::kNetwork), 4.0);
  // 4 steps of (1 delay + 2 service), strictly sequential.
  EXPECT_DOUBLE_EQ(eng.now(), 12.0);
}

TEST(RoccProcess, StartIsIdempotent) {
  sim::Engine eng;
  CpuResource cpu(eng, "cpu", 10.0);
  ResourceSet rs{&cpu, nullptr, nullptr};
  int calls = 0;
  Behavior b = [&calls](stats::Rng&) -> std::optional<Step> {
    if (calls >= 1) return std::nullopt;
    ++calls;
    return Step{0.0, ResourceKind::kCpu, 1.0};
  };
  RoccProcess proc(eng, 0, ProcessClass::kApplication, rs, b, stats::Rng(1));
  proc.start();
  proc.start();
  eng.run();
  EXPECT_EQ(proc.requests_completed(), 1u);
}

// ---- Behaviors -----------------------------------------------------------------

TEST(Behaviors, ComputeCommunicateAlternates) {
  stats::Rng rng(2);
  auto b = compute_communicate_behavior(
      std::make_shared<stats::Deterministic>(3.0),
      std::make_shared<stats::Deterministic>(1.0), 1.0);
  auto s1 = b(rng);
  auto s2 = b(rng);
  ASSERT_TRUE(s1 && s2);
  EXPECT_EQ(s1->resource, ResourceKind::kCpu);
  EXPECT_EQ(s2->resource, ResourceKind::kNetwork);
  EXPECT_DOUBLE_EQ(s1->demand, 3.0);
  EXPECT_DOUBLE_EQ(s2->demand, 1.0);
}

TEST(Behaviors, InstrumentationCostAddsToCpuBurst) {
  stats::Rng rng(3);
  auto plain = compute_communicate_behavior(
      std::make_shared<stats::Deterministic>(3.0),
      std::make_shared<stats::Deterministic>(1.0), 1.0, 0.0, 0);
  auto instrumented = compute_communicate_behavior(
      std::make_shared<stats::Deterministic>(3.0),
      std::make_shared<stats::Deterministic>(1.0), 1.0, 0.5, 1);
  EXPECT_DOUBLE_EQ(plain(rng)->demand, 3.0);
  EXPECT_DOUBLE_EQ(instrumented(rng)->demand, 3.5);
}

TEST(Behaviors, SamplingDaemonPeriodAndDemand) {
  stats::Rng rng(4);
  auto b = sampling_daemon_behavior(100.0, 0.5, 2.0, 8);
  auto s1 = b(rng);
  ASSERT_TRUE(s1);
  EXPECT_DOUBLE_EQ(s1->delay_before, 100.0);
  EXPECT_EQ(s1->resource, ResourceKind::kCpu);
  EXPECT_DOUBLE_EQ(s1->demand, 4.0);  // 0.5 * 8
  auto s2 = b(rng);
  EXPECT_EQ(s2->resource, ResourceKind::kNetwork);
  EXPECT_DOUBLE_EQ(s2->demand, 2.0);
}

TEST(Behaviors, RejectBadArguments) {
  auto d = std::make_shared<stats::Deterministic>(1.0);
  EXPECT_THROW(compute_communicate_behavior(nullptr, d), std::invalid_argument);
  EXPECT_THROW(compute_communicate_behavior(d, d, 1.5), std::invalid_argument);
  EXPECT_THROW(sampling_daemon_behavior(0.0, 1.0, 1.0, 2),
               std::invalid_argument);
  EXPECT_THROW(sampling_daemon_behavior(1.0, 1.0, 1.0, 0),
               std::invalid_argument);
  EXPECT_THROW(background_load_behavior(nullptr, d), std::invalid_argument);
}

// ---- NodeModel ---------------------------------------------------------------

TEST(NodeModel, DaemonInterferenceMatchesDemand) {
  // Unloaded node: the daemon's CPU busy time equals its issued demand.
  NodeModel node(10.0, stats::Rng(5));
  node.add_process(ProcessClass::kInstrumentation,
                   sampling_daemon_behavior(100.0, 1.0, 0.0, 4));
  const auto m = node.run(10000.0);
  // ~96 wakeups of 4ms each (cycle = 100 wait + 4 service).
  EXPECT_NEAR(m.cpu_time_instrumentation, 4.0 * 96, 4.0 * 10);
  EXPECT_DOUBLE_EQ(m.cpu_time_application, 0.0);
}

TEST(NodeModel, CpuConservation) {
  // Total CPU busy time never exceeds the horizon.
  NodeModel node(5.0, stats::Rng(6));
  auto cpu = std::make_shared<stats::Exponential>(0.5);
  auto net = std::make_shared<stats::Exponential>(1.0);
  for (int i = 0; i < 8; ++i)
    node.add_process(ProcessClass::kApplication,
                     compute_communicate_behavior(cpu, net));
  const auto m = node.run(5000.0);
  const double total =
      m.cpu_time_application + m.cpu_time_instrumentation + m.cpu_time_other;
  EXPECT_LE(total, m.span + 1e-6);
  EXPECT_GT(m.app_requests_completed, 0u);
}

TEST(NodeModel, SaturationShrinksDaemonShare) {
  // More app processes -> smaller daemon share of consumed CPU.
  auto run_share = [](unsigned n_app) {
    NodeModel node(10.0, stats::Rng(7));
    auto cpu = std::make_shared<stats::Exponential>(1.0 / 8.0);
    auto net = std::make_shared<stats::Exponential>(1.0 / 2.0);
    for (unsigned i = 0; i < n_app; ++i)
      node.add_process(ProcessClass::kApplication,
                       compute_communicate_behavior(cpu, net));
    // Fixed daemon workload (4 sampled pipes) regardless of app count:
    // growing n adds contention, not daemon work.
    node.add_process(ProcessClass::kInstrumentation,
                     sampling_daemon_behavior(100.0, 0.5, 0.5, 4));
    const auto m = node.run(20000.0);
    const double total = m.cpu_time_application + m.cpu_time_instrumentation +
                         m.cpu_time_other;
    return m.cpu_time_instrumentation / total;
  };
  EXPECT_GT(run_share(1), run_share(16));
}

TEST(NodeModel, RejectsBadHorizon) {
  NodeModel node(1.0, stats::Rng(8));
  EXPECT_THROW(node.run(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace prism::rocc
