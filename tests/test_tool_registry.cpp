// The Table 8 registry: the paper's rows are present with the published
// classifications, and the query/render API behaves.
#include <gtest/gtest.h>

#include "core/tool_registry.hpp"

namespace prism::core {
namespace {

TEST(ToolRegistry, Table8HasAllEightRows) {
  const auto r = ToolRegistry::paper_table8();
  EXPECT_EQ(r.entries().size(), 8u);
  for (const char* name : {"PICL", "AIMS", "Pablo", "Paradyn", "Falcon/Issos",
                           "ParAide(TAM)", "SPI", "VIZIR"})
    EXPECT_TRUE(r.find(name).has_value()) << name;
}

TEST(ToolRegistry, PiclRowMatchesPaper) {
  const auto e = ToolRegistry::paper_table8().find("PICL");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->analysis, AnalysisSupport::kOffline);
  EXPECT_EQ(e->synthesis, SynthesisApproach::kHardCoded);
  EXPECT_EQ(e->management, ManagementApproach::kStatic);
  EXPECT_EQ(e->evaluation, EvaluationApproach::kNone);
}

TEST(ToolRegistry, ParadynRowMatchesPaper) {
  const auto e = ToolRegistry::paper_table8().find("Paradyn");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->analysis, AnalysisSupport::kOnline);
  EXPECT_EQ(e->synthesis, SynthesisApproach::kApplicationSpecific);
  EXPECT_EQ(e->management, ManagementApproach::kAdaptive);
  EXPECT_EQ(e->evaluation, EvaluationApproach::kAdaptiveCostModel);
  EXPECT_EQ(e->lis, "Local daemon");
  EXPECT_EQ(e->ism, "Main Paradyn process");
}

TEST(ToolRegistry, PabloIsOfflineYetAdaptive) {
  // The distinguishing Pablo feature in Table 8.
  const auto e = ToolRegistry::paper_table8().find("Pablo");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->analysis, AnalysisSupport::kOffline);
  EXPECT_EQ(e->management, ManagementApproach::kAdaptive);
}

TEST(ToolRegistry, QueriesByDimension) {
  const auto r = ToolRegistry::paper_table8();
  // Off-line only: PICL, AIMS, Pablo.
  EXPECT_EQ(r.with_analysis(AnalysisSupport::kOffline).size(), 3u);
  // Static management: PICL, AIMS, ParAide, VIZIR.
  EXPECT_EQ(r.with_management(ManagementApproach::kStatic).size(), 4u);
  // No integral evaluation: PICL, AIMS, Pablo, VIZIR.
  EXPECT_EQ(r.with_evaluation(EvaluationApproach::kNone).size(), 4u);
}

TEST(ToolRegistry, FindMissingReturnsNullopt) {
  EXPECT_FALSE(ToolRegistry::paper_table8().find("TAU").has_value());
}

TEST(ToolRegistry, RenderContainsEveryToolName) {
  const auto r = ToolRegistry::paper_table8();
  const std::string table = r.render();
  for (const auto& e : r.entries())
    EXPECT_NE(table.find(e.name.substr(0, 10)), std::string::npos) << e.name;
  EXPECT_NE(table.find("Tool"), std::string::npos);
  EXPECT_NE(table.find("Management"), std::string::npos);
}

TEST(ToolRegistry, UserExtension) {
  ToolRegistry r;
  r.add({"MyTool", AnalysisSupport::kOnline, "lib", "server",
         SynthesisApproach::kHardCoded, ManagementApproach::kAdaptive,
         EvaluationApproach::kStructuredModeling, ""});
  EXPECT_EQ(r.entries().size(), 1u);
  EXPECT_TRUE(r.find("MyTool").has_value());
}

TEST(Classification, NamesRenderForAllValues) {
  EXPECT_EQ(to_string(AnalysisSupport::kOnOffline), "On-/Off-line");
  EXPECT_EQ(to_string(SynthesisApproach::kApplicationSpecific),
            "Application-specific");
  EXPECT_EQ(to_string(ManagementApproach::kAdaptive), "Adaptive");
  EXPECT_EQ(to_string(EvaluationApproach::kAccountableInvasiveness),
            "Accountable invasiveness");
}

}  // namespace
}  // namespace prism::core
