// Metrics registry: sharded counters (including concurrent increments —
// run under TSan via `ctest -L sanitize`), gauges, fixed-bucket histograms,
// registry snapshot/reset, the text/JSON reporter, and the stability of
// histogram bucket boundaries across a JSON export/import round trip.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/json_check.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"

namespace prism::obs {
namespace {

TEST(ObsCounter, CountsAcrossThreads) {
  Counter c;
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, AddN) {
  Counter c;
  c.add(5);
  c.add(7);
  EXPECT_EQ(c.value(), 12u);
}

TEST(ObsGauge, SetAddValue) {
  Gauge g;
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsHistogram, BucketsSamplesByUpperBound) {
  Histogram h({1.0, 10.0, 100.0});
  h.record(0.5);     // <= 1
  h.record(1.0);     // <= 1 (bounds are inclusive upper limits)
  h.record(5.0);     // <= 10
  h.record(1000.0);  // > 100: overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // bounds + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(ObsHistogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({3.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(ObsHistogram, ConcurrentRecordsConserveCount) {
  Histogram h(Histogram::exponential_bounds(1, 10, 6));
  constexpr unsigned kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t)
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record(static_cast<double>((i + t) % 1000));
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), kThreads * static_cast<std::uint64_t>(kPerThread));
  std::uint64_t bucket_total = 0;
  for (auto b : h.bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(ObsRegistry, IdempotentRegistrationStableReferences) {
  auto& reg = Registry::instance();
  Counter& a = reg.counter("test.registry.counter");
  Counter& b = reg.counter("test.registry.counter");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = reg.histogram("test.registry.hist", {1.0, 2.0});
  Histogram& h2 = reg.histogram("test.registry.hist", {9.0});  // ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(ObsRegistry, SnapshotFindsRegisteredMetrics) {
  auto& reg = Registry::instance();
  reg.counter("test.snap.counter").add(3);
  reg.gauge("test.snap.gauge").set(-7);
  reg.histogram("test.snap.hist", {10.0, 20.0}).record(15.0);
  const auto snap = reg.snapshot();
  ASSERT_NE(snap.counter("test.snap.counter"), nullptr);
  EXPECT_GE(snap.counter("test.snap.counter")->value, 3u);
  ASSERT_NE(snap.gauge("test.snap.gauge"), nullptr);
  EXPECT_EQ(snap.gauge("test.snap.gauge")->value, -7);
  const auto* h = snap.histogram("test.snap.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->count, 1u);
  ASSERT_EQ(h->buckets.size(), h->bounds.size() + 1);
  EXPECT_EQ(snap.counter("test.snap.no_such_metric"), nullptr);
}

TEST(ObsReporter, TextReportListsEveryMetric) {
  auto& reg = Registry::instance();
  reg.counter("test.report.hits").add(11);
  reg.gauge("test.report.depth").set(4);
  reg.histogram("test.report.lat", {5.0, 50.0}).record(7.0);
  const std::string text = text_report(reg.snapshot());
  EXPECT_NE(text.find("test.report.hits"), std::string::npos);
  EXPECT_NE(text.find("test.report.depth"), std::string::npos);
  EXPECT_NE(text.find("test.report.lat"), std::string::npos);
  EXPECT_NE(text.find("counters:"), std::string::npos);
}

TEST(ObsReporter, JsonReportIsValidJson) {
  auto& reg = Registry::instance();
  reg.counter("test.json.count").add(2);
  reg.histogram("test.json.hist", {1.5, 2.5}).record(2.0);
  const std::string json = json_report(reg.snapshot());
  const auto doc = jsonlite::parse(json);
  ASSERT_TRUE(doc.has_value()) << json;
  ASSERT_TRUE(doc->is_object());
  const auto* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("test.json.count"), nullptr);
  EXPECT_GE(counters->find("test.json.count")->num, 2.0);
}

TEST(ObsReporter, HistogramBoundsStableAcrossExportImport) {
  // The round trip the bench files depend on: bounds serialized to JSON and
  // parsed back must be exactly the registered bounds, sample conservation
  // included.
  auto& reg = Registry::instance();
  const std::vector<double> bounds{0.001, 0.25, 3.0, 1e6, 2.5e9};
  auto& h = reg.histogram("test.roundtrip.hist", bounds);
  h.record(0.0005);
  h.record(2.0);
  h.record(1e12);  // overflow bucket
  const auto doc = jsonlite::parse(json_report(reg.snapshot()));
  ASSERT_TRUE(doc.has_value());
  const auto* hist = doc->find("histograms");
  ASSERT_NE(hist, nullptr);
  const auto* rt = hist->find("test.roundtrip.hist");
  ASSERT_NE(rt, nullptr);
  const auto* rt_bounds = rt->find("bounds");
  const auto* rt_buckets = rt->find("buckets");
  const auto* rt_count = rt->find("count");
  ASSERT_NE(rt_bounds, nullptr);
  ASSERT_NE(rt_buckets, nullptr);
  ASSERT_NE(rt_count, nullptr);
  ASSERT_EQ(rt_bounds->arr.size(), bounds.size());
  for (std::size_t i = 0; i < bounds.size(); ++i)
    EXPECT_EQ(rt_bounds->arr[i].num, bounds[i]);  // exact: round-trip format
  ASSERT_EQ(rt_buckets->arr.size(), bounds.size() + 1);
  double bucket_sum = 0;
  for (const auto& b : rt_buckets->arr) bucket_sum += b.num;
  EXPECT_EQ(bucket_sum, rt_count->num);
  EXPECT_GE(rt_buckets->arr.back().num, 1.0);  // the overflow sample
}

TEST(ObsPeriodicReporter, PublishesAndStops) {
  std::atomic<int> seen{0};
  {
    PeriodicReporter rep(5, [&seen](const MetricsSnapshot&) { ++seen; });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    rep.stop();
  }
  EXPECT_GE(seen.load(), 1);
}

TEST(ObsKillSwitch, MacroHitsRegisterOnlyWhenCompiledIn) {
  const auto before = Registry::instance().snapshot();
  const auto* c0 = before.counter("test.killswitch.count");
  const std::uint64_t v0 = c0 ? c0->value : 0;
  PRISM_OBS_COUNT("test.killswitch.count");
  PRISM_OBS_COUNT_N("test.killswitch.count", 4);
  const auto after = Registry::instance().snapshot();
  const auto* c1 = after.counter("test.killswitch.count");
  if (compiled_in()) {
    ASSERT_NE(c1, nullptr);
    EXPECT_EQ(c1->value, v0 + 5);
  } else {
    EXPECT_EQ(c1, nullptr);
  }
}

}  // namespace
}  // namespace prism::obs
