// P'RISM live testbed: both ISM configurations run real traffic end-to-end
// with causally ordered output.
#include <gtest/gtest.h>

#include "vista/testbed.hpp"

namespace prism::vista {
namespace {

TEST(PrismTestbed, SisoEndToEnd) {
  TestbedParams p;
  p.input = core::InputConfig::kSiso;
  p.nodes = 3;
  p.rounds = 20;
  const auto rep = run_prism_testbed(p);
  EXPECT_GT(rep.events_recorded, 0u);
  EXPECT_EQ(rep.records_dispatched, rep.events_recorded);
  EXPECT_TRUE(rep.causally_ordered_output);
  EXPECT_GT(rep.mean_processing_latency_us, 0.0);
}

TEST(PrismTestbed, MisoEndToEnd) {
  TestbedParams p;
  p.input = core::InputConfig::kMiso;
  p.nodes = 3;
  p.rounds = 20;
  const auto rep = run_prism_testbed(p);
  EXPECT_EQ(rep.records_dispatched, rep.events_recorded);
  EXPECT_TRUE(rep.causally_ordered_output);
}

TEST(PrismTestbed, OrderingOffStillDeliversEverything) {
  TestbedParams p;
  p.causal_ordering = false;
  p.nodes = 2;
  p.rounds = 10;
  const auto rep = run_prism_testbed(p);
  EXPECT_EQ(rep.records_dispatched, rep.events_recorded);
}

TEST(PrismTestbed, ConfigurationsComparable) {
  // The testbed's purpose: run both configs and compare measurements.
  TestbedParams p;
  p.nodes = 2;
  p.rounds = 15;
  p.input = core::InputConfig::kSiso;
  const auto siso = run_prism_testbed(p);
  p.input = core::InputConfig::kMiso;
  const auto miso = run_prism_testbed(p);
  EXPECT_EQ(siso.events_recorded, miso.events_recorded);
  EXPECT_GT(siso.mean_dispatch_latency_us, 0.0);
  EXPECT_GT(miso.mean_dispatch_latency_us, 0.0);
}

}  // namespace
}  // namespace prism::vista
