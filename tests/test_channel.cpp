// Bounded blocking channel: FIFO, capacity/blocking semantics, close/EOF,
// statistics, and multi-threaded conservation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/channel.hpp"

namespace prism::core {
namespace {

TEST(Channel, FifoSingleThread) {
  Channel<int> ch(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ch.push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ch.pop(), i);
}

TEST(Channel, TryPushRespectsCapacity) {
  Channel<int> ch(2);
  EXPECT_TRUE(ch.try_push(1));
  EXPECT_TRUE(ch.try_push(2));
  EXPECT_FALSE(ch.try_push(3));
  EXPECT_EQ(ch.stats().rejected, 1u);
  EXPECT_EQ(ch.size(), 2u);
}

TEST(Channel, TryPopEmptyReturnsNullopt) {
  Channel<int> ch(2);
  EXPECT_FALSE(ch.try_pop().has_value());
}

TEST(Channel, CloseUnblocksConsumerWithEof) {
  Channel<int> ch(2);
  std::optional<int> got = 42;
  std::thread consumer([&] { got = ch.pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close();
  consumer.join();
  EXPECT_FALSE(got.has_value());
}

TEST(Channel, CloseDrainsBeforeEof) {
  Channel<int> ch(4);
  ch.push(1);
  ch.push(2);
  ch.close();
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_EQ(ch.pop(), 2);
  EXPECT_FALSE(ch.pop().has_value());
}

TEST(Channel, PushAfterCloseFails) {
  Channel<int> ch(4);
  ch.close();
  EXPECT_FALSE(ch.push(1));
  EXPECT_FALSE(ch.try_push(1));
}

TEST(Channel, RejectedCountsEveryFailedPushFlavor) {
  // The conservation audit reads attempts == enqueued + rejected; that only
  // holds if every failing path counts, including blocking push() on a
  // closed channel (the path that used to return false silently).
  Channel<int> ch(1);
  EXPECT_TRUE(ch.push(1));                                      // accepted
  EXPECT_FALSE(ch.try_push(2));                                 // full
  ch.close();
  EXPECT_FALSE(ch.push(3));                                     // closed
  EXPECT_FALSE(ch.try_push(4));                                 // closed
  EXPECT_FALSE(ch.push_for(5, std::chrono::milliseconds(1)));   // closed
  const auto s = ch.stats();
  EXPECT_EQ(s.enqueued, 1u);
  EXPECT_EQ(s.rejected, 4u);  // 5 attempts == 1 enqueued + 4 rejected
}

TEST(Channel, FullChannelBlocksProducerUntilPop) {
  Channel<int> ch(1);
  ch.push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ch.push(2);  // blocks until the consumer pops
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(ch.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_GT(ch.stats().producer_block_ns, 0u);  // the §3.2.3 stall, measured
}

TEST(Channel, PopForTimesOut) {
  Channel<int> ch(1);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(ch.pop_for(std::chrono::milliseconds(30)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(25));
}

TEST(Channel, PopForReturnsValueQuickly) {
  Channel<int> ch(1);
  ch.push(9);
  EXPECT_EQ(ch.pop_for(std::chrono::seconds(5)), 9);
}

TEST(Channel, StatsTrackHighWaterMark) {
  Channel<int> ch(10);
  for (int i = 0; i < 7; ++i) ch.push(i);
  for (int i = 0; i < 3; ++i) ch.pop();
  ch.push(1);
  const auto s = ch.stats();
  EXPECT_EQ(s.enqueued, 8u);
  EXPECT_EQ(s.dequeued, 3u);
  EXPECT_EQ(s.max_occupancy, 7u);
  EXPECT_TRUE(ch.conserved());
}

TEST(Channel, MpmcConservationStress) {
  Channel<std::uint64_t> ch(64);
  constexpr int kProducers = 3, kConsumers = 3, kPerProducer = 2000;
  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<std::uint64_t> consumed_count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ch.push(static_cast<std::uint64_t>(p * kPerProducer + i));
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = ch.pop()) {
        consumed_sum.fetch_add(*v);
        consumed_count.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  ch.close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  const std::uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(consumed_count.load(), n);
  EXPECT_EQ(consumed_sum.load(), n * (n - 1) / 2);
  EXPECT_TRUE(ch.conserved());
}

TEST(Channel, MoveOnlyPayload) {
  Channel<std::unique_ptr<int>> ch(2);
  ch.push(std::make_unique<int>(5));
  auto v = ch.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

TEST(Channel, RejectsZeroCapacity) {
  EXPECT_THROW(Channel<int>(0), std::invalid_argument);
}

}  // namespace
}  // namespace prism::core
