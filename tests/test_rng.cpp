// Tests for stats::Rng: determinism, stream independence, uniformity, and
// the bounded-integer and seed-hashing helpers.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace prism::stats {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 100000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, OpenDoubleNeverZero) {
  Rng r(9);
  for (int i = 0; i < 100000; ++i) {
    const double x = r.next_double_open();
    EXPECT_GT(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng r(11);
  Summary s;
  for (int i = 0; i < 200000; ++i) s.add(r.next_double());
  EXPECT_NEAR(s.mean(), 0.5, 0.005);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(13);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng r(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextBelowApproximatelyUniform) {
  Rng r(19);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[r.next_below(8)];
  for (int c : counts) EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
}

TEST(Rng, BernoulliProbability) {
  Rng r(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.next_bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliEdges) {
  Rng r(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.next_bernoulli(0.0));
    EXPECT_TRUE(r.next_bernoulli(1.0));
  }
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(31);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  // Children differ from each other and from the parent's further output.
  int same12 = 0;
  for (int i = 0; i < 1000; ++i)
    if (c1.next_u64() == c2.next_u64()) ++same12;
  EXPECT_EQ(same12, 0);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(37), b(37);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, HashSeedOrderSensitive) {
  const auto s1 = Rng::hash_seed(5, 1, 2);
  const auto s2 = Rng::hash_seed(5, 2, 1);
  EXPECT_NE(s1, s2);
}

TEST(Rng, HashSeedDeterministic) {
  EXPECT_EQ(Rng::hash_seed(99, 7, 8, 9), Rng::hash_seed(99, 7, 8, 9));
}

TEST(Rng, HashSeedSensitiveToEveryTag) {
  const auto base = Rng::hash_seed(1, 10, 20, 30);
  EXPECT_NE(base, Rng::hash_seed(2, 10, 20, 30));
  EXPECT_NE(base, Rng::hash_seed(1, 11, 20, 30));
  EXPECT_NE(base, Rng::hash_seed(1, 10, 21, 30));
  EXPECT_NE(base, Rng::hash_seed(1, 10, 20, 31));
}

}  // namespace
}  // namespace prism::stats
