// Simulated message-passing applications: completion, message counts, and
// the causal validity of the instrumentation they emit.
#include <gtest/gtest.h>

#include <map>

#include "stats/distributions.hpp"
#include "stats/summary.hpp"
#include "trace/causal.hpp"
#include "workload/apps.hpp"

namespace prism::workload {
namespace {

TEST(RingApp, CompletesWithExpectedMessageCount) {
  sim::Engine eng;
  Multicomputer mc(eng, 4, 0.5, 0.0);
  stats::Exponential compute(1.0);
  const auto rep = run_ring_app(mc, /*rounds=*/5, compute, stats::Rng(1));
  // rounds * P hops total (the launch send counts as the first hop).
  EXPECT_EQ(rep.messages, 5u * 4u);
  EXPECT_GT(rep.makespan, 0.0);
}

TEST(RingApp, TwoNodeRing) {
  sim::Engine eng;
  Multicomputer mc(eng, 2, 0.1, 0.0);
  stats::Deterministic compute(1.0);
  const auto rep = run_ring_app(mc, 3, compute, stats::Rng(2));
  EXPECT_EQ(rep.messages, 6u);
}

TEST(RingApp, InstrumentationIsCausallyValid) {
  sim::Engine eng;
  Multicomputer mc(eng, 4, 0.5, 0.001);
  std::vector<trace::EventRecord> events;
  mc.set_instrumentation([&](const trace::EventRecord& r) {
    events.push_back(r);
  });
  stats::Exponential compute(0.5);
  run_ring_app(mc, 10, compute, stats::Rng(3));
  EXPECT_FALSE(events.empty());
  // Hook order is simulation order == causal order.
  EXPECT_LT(trace::first_causal_violation(events), 0);
}

TEST(StencilApp, AllIterationsComputedOnAllNodes) {
  sim::Engine eng;
  Multicomputer mc(eng, 6, 0.2, 0.0001);
  stats::Exponential compute(0.5);
  const auto rep = run_stencil_app(mc, /*iterations=*/8, compute,
                                   stats::Rng(4));
  EXPECT_EQ(rep.user_events, 8u * 6u);  // one compute event per node-iter
  // Each iteration except the last sends 2 halos per node... all iterations
  // send (iteration `iterations-1` doesn't re-send): total = 2*P*iters.
  EXPECT_EQ(rep.messages, 2u * 6u * 8u);
}

TEST(StencilApp, NeighborSynchronizationLimitsSkew) {
  // With deterministic compute, all nodes proceed in lock step; makespan is
  // close to iterations * (latency + compute).
  sim::Engine eng;
  Multicomputer mc(eng, 4, 1.0, 0.0);
  stats::Deterministic compute(2.0);
  const auto rep = run_stencil_app(mc, 10, compute, stats::Rng(5));
  EXPECT_NEAR(rep.makespan, 10 * 3.0, 3.0 + 1e-9);
}

TEST(StencilApp, RequiresTwoNodes) {
  sim::Engine eng;
  Multicomputer mc(eng, 1, 1.0, 0.0);
  stats::Deterministic compute(1.0);
  EXPECT_THROW(run_stencil_app(mc, 2, compute, stats::Rng(6)),
               std::invalid_argument);
}

TEST(MasterWorker, AllTasksCompleted) {
  sim::Engine eng;
  Multicomputer mc(eng, 5, 0.3, 0.0001);
  stats::Exponential task_time(0.2);
  const auto rep = run_master_worker_app(mc, /*tasks=*/40, task_time,
                                         stats::Rng(7));
  EXPECT_EQ(rep.user_events, 40u);  // one completion event per task
  // Each task: 1 task msg + 1 result msg.
  EXPECT_EQ(rep.messages, 80u);
}

TEST(MasterWorker, FewerTasksThanWorkers) {
  sim::Engine eng;
  Multicomputer mc(eng, 8, 0.3, 0.0);
  stats::Deterministic task_time(1.0);
  const auto rep = run_master_worker_app(mc, 3, task_time, stats::Rng(8));
  EXPECT_EQ(rep.user_events, 3u);
  EXPECT_EQ(rep.messages, 6u);
}

TEST(MasterWorker, LoadSkewsTowardMaster) {
  // The master sees every result: node 0 participates in every exchange.
  sim::Engine eng;
  Multicomputer mc(eng, 4, 0.3, 0.0);
  std::map<std::uint32_t, int> events_per_node;
  mc.set_instrumentation([&](const trace::EventRecord& r) {
    ++events_per_node[r.node];
  });
  stats::Exponential task_time(0.5);
  run_master_worker_app(mc, 30, task_time, stats::Rng(9));
  // Master's event count (send+recv per task) exceeds any single worker's.
  EXPECT_GT(events_per_node[0], events_per_node[1]);
  EXPECT_GT(events_per_node[0], events_per_node[2]);
}

TEST(AllToAll, CompletesAllRounds) {
  sim::Engine eng;
  Multicomputer mc(eng, 5, 0.2, 0.0001);
  stats::Exponential compute(0.5);
  const auto rep = run_alltoall_app(mc, 6, compute, stats::Rng(10));
  // Each node sends P-1 messages per round.
  EXPECT_EQ(rep.messages, 6u * 5u * 4u);
  EXPECT_EQ(rep.user_events, 6u * 5u);
}

TEST(AllToAll, ArrivalsAreBursty) {
  // All-to-all generates synchronized bursts: the per-node inter-arrival CV
  // of instrumentation events should be well above Poisson's 1.
  sim::Engine eng;
  Multicomputer mc(eng, 6, 0.3, 0.0);
  std::vector<trace::EventRecord> events;
  mc.set_instrumentation([&](const trace::EventRecord& r) {
    events.push_back(r);
  });
  stats::Exponential compute(5.0);
  run_alltoall_app(mc, 10, compute, stats::Rng(11));
  // Gaps within a burst are 0; between bursts ~compute time: high CV.
  std::map<std::uint32_t, std::uint64_t> last;
  stats::Summary gaps;
  for (const auto& r : events) {
    auto it = last.find(r.node);
    if (it != last.end()) gaps.add(static_cast<double>(r.timestamp - it->second));
    last[r.node] = r.timestamp;
  }
  EXPECT_GT(gaps.cov(), 1.5);
}

TEST(Wavefront, AllItemsRetireAtLastStage) {
  sim::Engine eng;
  Multicomputer mc(eng, 4, 0.2, 0.0001);
  stats::Exponential stage(1.0);
  const auto rep = run_wavefront_app(mc, 25, stage, stats::Rng(12));
  EXPECT_EQ(rep.user_events, 25u);
  // Each item crosses P-1 links.
  EXPECT_EQ(rep.messages, 25u * 3u);
}

TEST(Wavefront, PipelineBeatsSerialMakespan) {
  // With deterministic stages, makespan ~ (items + P - 1) * stage, far
  // below the serial items * P * stage.
  sim::Engine eng;
  Multicomputer mc(eng, 4, 0.0001, 0.0);
  stats::Deterministic stage(1.0);
  const auto rep = run_wavefront_app(mc, 40, stage, stats::Rng(13));
  EXPECT_LT(rep.makespan, 40.0 * 4.0 * 0.5);   // well under serial
  EXPECT_GT(rep.makespan, 40.0);               // at least the source stage
}

TEST(Apps, RejectDegenerateParameters) {
  sim::Engine eng;
  Multicomputer mc(eng, 3, 0.1, 0.0);
  stats::Deterministic d(1.0);
  EXPECT_THROW(run_ring_app(mc, 0, d, stats::Rng(1)), std::invalid_argument);
  EXPECT_THROW(run_stencil_app(mc, 0, d, stats::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(run_master_worker_app(mc, 0, d, stats::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(run_alltoall_app(mc, 0, d, stats::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(run_wavefront_app(mc, 0, d, stats::Rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace prism::workload
