// W3 bottleneck search: correct diagnosis, minimal instrumentation, and the
// dynamic enable/disable contract.
#include <gtest/gtest.h>

#include "paradyn/providers.hpp"
#include "paradyn/w3_search.hpp"

namespace prism::paradyn {
namespace {

SyntheticMetricProvider healthy(std::uint32_t nodes, std::uint64_t seed) {
  SyntheticMetricProvider p(nodes, stats::Rng(seed));
  for (std::uint32_t n = 0; n < nodes; ++n) {
    p.set_level(n, MetricId::kCpuUtilization, 0.4);
    p.set_level(n, MetricId::kSyncWaitFraction, 0.05);
    p.set_level(n, MetricId::kCommFraction, 0.05);
  }
  return p;
}

TEST(W3Search, HealthyProgramYieldsNoHypothesis) {
  auto provider = healthy(4, 1);
  W3Search search(W3Config{});
  const auto d = search.run(provider);
  EXPECT_FALSE(d.why.has_value());
  EXPECT_FALSE(d.where.has_value());
}

TEST(W3Search, DiagnosesGlobalCpuBottleneck) {
  auto provider = healthy(4, 2);
  for (std::uint32_t n = 0; n < 4; ++n)
    provider.set_level(n, MetricId::kCpuUtilization, 0.95);
  W3Search search(W3Config{});
  const auto d = search.run(provider);
  ASSERT_TRUE(d.why.has_value());
  EXPECT_EQ(*d.why, Hypothesis::kCpuBound);
}

TEST(W3Search, LocalizesSyncBottleneckToNode) {
  auto provider = healthy(6, 3);
  // Whole-program sync fraction: (0.05*5 + 0.9)/6 = 0.19 < threshold...
  // raise the program-wide level enough to trip "why", with node 2 worst.
  for (std::uint32_t n = 0; n < 6; ++n)
    provider.set_level(n, MetricId::kSyncWaitFraction, 0.35);
  provider.set_level(2, MetricId::kSyncWaitFraction, 0.9);
  W3Search search(W3Config{});
  const auto d = search.run(provider);
  ASSERT_TRUE(d.why.has_value());
  EXPECT_EQ(*d.why, Hypothesis::kSyncBound);
  ASSERT_TRUE(d.where.has_value());
  EXPECT_EQ(*d.where, 2u);
  EXPECT_GT(d.evidence, 0.8);
}

TEST(W3Search, PicksStrongestHypothesisWhenSeveralHold) {
  auto provider = healthy(2, 4);
  for (std::uint32_t n = 0; n < 2; ++n) {
    provider.set_level(n, MetricId::kCpuUtilization, 0.75);   // +0.05 excess
    provider.set_level(n, MetricId::kCommFraction, 0.80);     // +0.50 excess
  }
  W3Search search(W3Config{});
  const auto d = search.run(provider);
  ASSERT_TRUE(d.why.has_value());
  EXPECT_EQ(*d.why, Hypothesis::kCommBound);
}

TEST(W3Search, NeverEnablesTwoProbesConcurrently) {
  // The minimal-instrumentation contract: one (node, metric) at a time.
  auto provider = healthy(8, 5);
  provider.set_level(3, MetricId::kCommFraction, 0.9);
  for (std::uint32_t n = 0; n < 8; ++n)
    provider.set_level(n, MetricId::kCommFraction, 0.5);
  W3Search search(W3Config{});
  search.run(provider);
  EXPECT_EQ(provider.max_concurrent_enabled(), 1u);
  EXPECT_EQ(provider.currently_enabled(), 0u);  // everything removed
}

TEST(W3Search, InstrumentationCostAccounted) {
  auto provider = healthy(4, 6);
  provider.set_level(0, MetricId::kCpuUtilization, 0.9);
  for (std::uint32_t n = 0; n < 4; ++n)
    provider.set_level(n, MetricId::kCpuUtilization, 0.85);
  W3Config cfg;
  cfg.samples_per_test = 10;
  W3Search search(cfg);
  const auto d = search.run(provider);
  // 3 root tests + 4 node tests = 7 insertions, 70 samples.
  EXPECT_EQ(d.insertions, 7u);
  EXPECT_EQ(d.samples_used, 70u);
  EXPECT_EQ(provider.total_enables(), 7u);
}

TEST(W3Search, HealthyProgramUsesOnlyRootTests) {
  auto provider = healthy(16, 7);
  W3Config cfg;
  cfg.samples_per_test = 4;
  W3Search search(cfg);
  const auto d = search.run(provider);
  EXPECT_EQ(d.insertions, 3u);  // no "where" refinement when nothing held
  EXPECT_EQ(d.samples_used, 12u);
}

TEST(SyntheticProvider, EnforcesEnableContract) {
  SyntheticMetricProvider p(2, stats::Rng(8));
  EXPECT_THROW(p.sample(0, MetricId::kCpuUtilization), std::logic_error);
  p.enable(0, MetricId::kCpuUtilization);
  EXPECT_THROW(p.enable(0, MetricId::kCpuUtilization), std::logic_error);
  p.disable(0, MetricId::kCpuUtilization);
  EXPECT_THROW(p.disable(0, MetricId::kCpuUtilization), std::logic_error);
}

TEST(SyntheticProvider, WholeProgramAveragesNodes) {
  SyntheticMetricProvider p(2, stats::Rng(9), /*noise=*/0.0);
  p.set_level(0, MetricId::kCpuUtilization, 0.2);
  p.set_level(1, MetricId::kCpuUtilization, 0.8);
  p.enable(MetricProvider::kWholeProgram, MetricId::kCpuUtilization);
  EXPECT_NEAR(p.sample(MetricProvider::kWholeProgram,
                       MetricId::kCpuUtilization),
              0.5, 1e-12);
}

TEST(W3Names, Render) {
  EXPECT_EQ(to_string(Hypothesis::kCpuBound), "CPUBound");
  EXPECT_EQ(to_string(MetricId::kSyncWaitFraction), "sync_wait_fraction");
  EXPECT_EQ(metric_for(Hypothesis::kCommBound), MetricId::kCommFraction);
}

}  // namespace
}  // namespace prism::paradyn
