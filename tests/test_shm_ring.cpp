// SPSC shared-memory ring: layout validation, all-or-nothing read/write,
// wraparound, full-ring backpressure, lifecycle flags, and torture tests
// both threaded (same address space, TSan-visible) and forked (genuinely
// separate address spaces over one MAP_SHARED segment).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/shm_link.hpp"
#include "core/shm_ring.hpp"

namespace prism::core {
namespace {

/// Heap-backed segment for the single-process tests (the ring only needs
/// bytes, not an actual mapping).
struct LocalSegment {
  explicit LocalSegment(std::size_t capacity)
      : bytes(ShmRing::segment_bytes(capacity), 0) {}
  void* data() { return bytes.data(); }
  std::vector<char> bytes;
};

TEST(ShmRing, CreateRejectsBadCapacity) {
  LocalSegment seg(128);
  EXPECT_THROW(ShmRing::create(seg.data(), 0), std::invalid_argument);
  EXPECT_THROW(ShmRing::create(seg.data(), 3), std::invalid_argument);
  EXPECT_THROW(ShmRing::create(seg.data(), 100), std::invalid_argument);
  EXPECT_NO_THROW(ShmRing::create(seg.data(), 128));
}

TEST(ShmRing, AttachValidatesUntrustedControlBlock) {
  LocalSegment seg(128);
  // Never create()d: the magic is zero.
  EXPECT_THROW(ShmRing::attach(seg.data()), std::invalid_argument);
  ShmRing::create(seg.data(), 128);
  EXPECT_NO_THROW(ShmRing::attach(seg.data()));
  // Valid magic over a corrupted capacity must still be refused: the
  // control block is shared state and cannot be trusted field-by-field.
  static_cast<ShmRing::Control*>(seg.data())->capacity = 100;
  EXPECT_THROW(ShmRing::attach(seg.data()), std::invalid_argument);
}

TEST(ShmRing, WriteThenReadRoundTrips) {
  LocalSegment seg(64);
  ShmRing prod = ShmRing::create(seg.data(), 64);
  ShmRing cons = ShmRing::attach(seg.data());
  const char msg[] = "hello ring";
  ASSERT_TRUE(prod.try_write(msg, sizeof msg));
  EXPECT_EQ(cons.readable(), sizeof msg);
  char out[sizeof msg] = {};
  ASSERT_TRUE(cons.try_read(out, sizeof out));
  EXPECT_STREQ(out, msg);
  EXPECT_EQ(cons.readable(), 0u);
  EXPECT_EQ(prod.free_bytes(), 64u);
}

TEST(ShmRing, WritesAndReadsAreAllOrNothing) {
  LocalSegment seg(64);
  ShmRing prod = ShmRing::create(seg.data(), 64);
  ShmRing cons = ShmRing::attach(seg.data());
  std::vector<char> buf(64, 'x');
  ASSERT_TRUE(prod.try_write(buf.data(), 40));
  // 24 bytes free: a 30-byte write must write *nothing*, not a prefix.
  EXPECT_FALSE(prod.try_write(buf.data(), 30));
  EXPECT_EQ(cons.readable(), 40u);
  // 40 bytes readable: a 50-byte read must consume nothing.
  EXPECT_FALSE(cons.try_read(buf.data(), 50));
  EXPECT_EQ(cons.readable(), 40u);
  ASSERT_TRUE(cons.try_read(buf.data(), 40));
  // Space reclaimed; the deferred write now fits (and wraps).
  EXPECT_TRUE(prod.try_write(buf.data(), 30));
}

TEST(ShmRing, TwoSpanWritePublishesWholeFrameOrNothing) {
  LocalSegment seg(128);
  ShmRing prod = ShmRing::create(seg.data(), 128);
  ShmRing cons = ShmRing::attach(seg.data());
  char hdr[24], payload[48];
  std::memset(hdr, 0xAA, sizeof hdr);
  std::memset(payload, 0xBB, sizeof payload);
  ASSERT_TRUE(prod.try_write2(hdr, sizeof hdr, payload, sizeof payload));
  EXPECT_EQ(cons.readable(), 72u);
  // 56 bytes free < 72: the second frame is refused atomically.
  EXPECT_FALSE(prod.try_write2(hdr, sizeof hdr, payload, sizeof payload));
  EXPECT_EQ(cons.readable(), 72u);
  char out[72];
  ASSERT_TRUE(cons.try_read(out, sizeof out));
  EXPECT_EQ(out[0], static_cast<char>(0xAA));
  EXPECT_EQ(out[24], static_cast<char>(0xBB));
  EXPECT_EQ(out[71], static_cast<char>(0xBB));
}

TEST(ShmRing, WraparoundPreservesTheByteStream) {
  // Chunks of 24 over a 64-byte ring wrap constantly; every byte must come
  // out exactly once, in order, across thousands of wrap points.
  LocalSegment seg(64);
  ShmRing prod = ShmRing::create(seg.data(), 64);
  ShmRing cons = ShmRing::attach(seg.data());
  std::uint8_t next_in = 0, next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    std::uint8_t chunk[24];
    for (auto& b : chunk) b = next_in++;
    ASSERT_TRUE(prod.try_write(chunk, sizeof chunk));
    std::uint8_t out[24];
    ASSERT_TRUE(cons.try_read(out, sizeof out));
    for (const auto b : out) ASSERT_EQ(b, next_out++);
  }
}

TEST(ShmRing, FlagsAccumulateAndCrossViews) {
  LocalSegment seg(64);
  ShmRing prod = ShmRing::create(seg.data(), 64);
  ShmRing cons = ShmRing::attach(seg.data());
  EXPECT_EQ(cons.flags(), 0u);
  prod.set_flags(ShmRing::kProducerDone);
  EXPECT_EQ(cons.flags(), ShmRing::kProducerDone);
  cons.set_flags(ShmRing::kConsumerGone);
  // fetch_or semantics: flags accumulate, visible from both views.
  EXPECT_EQ(prod.flags(), ShmRing::kProducerDone | ShmRing::kConsumerGone);
}

TEST(ShmRing, ThreadedTortureDeliversEveryByteInOrder) {
  // A small ring under concurrent variable-size traffic: forces constant
  // wraparound and full-ring backpressure, and gives TSan real producer/
  // consumer overlap to check the acquire/release protocol against.
  constexpr std::size_t kCap = 1 << 10;
  constexpr std::uint64_t kTotal = 1 << 18;
  LocalSegment seg(kCap);
  ShmRing prod = ShmRing::create(seg.data(), kCap);
  ShmRing cons = ShmRing::attach(seg.data());

  std::thread producer([&] {
    std::uint64_t lcg = 0x9E3779B97F4A7C15ull;
    std::uint8_t counter = 0;
    std::uint64_t sent = 0;
    while (sent < kTotal) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      const std::size_t len =
          std::min<std::uint64_t>(1 + (lcg >> 33) % 96, kTotal - sent);
      std::uint8_t chunk[96];
      for (std::size_t i = 0; i < len; ++i) chunk[i] = counter++;
      while (!prod.try_write(chunk, len)) std::this_thread::yield();
      sent += len;
    }
    prod.set_flags(ShmRing::kProducerDone);
  });

  std::uint64_t lcg = 0xC2B2AE3D27D4EB4Full;
  std::uint8_t expected = 0;
  std::uint64_t got = 0;
  while (got < kTotal) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const std::size_t len =
        std::min<std::uint64_t>(1 + (lcg >> 33) % 96, kTotal - got);
    std::uint8_t chunk[96];
    while (!cons.try_read(chunk, len)) std::this_thread::yield();
    for (std::size_t i = 0; i < len; ++i) ASSERT_EQ(chunk[i], expected++);
    got += len;
  }
  producer.join();
  EXPECT_EQ(cons.readable(), 0u);
  EXPECT_TRUE(cons.flags() & ShmRing::kProducerDone);
}

TEST(ShmRing, ForkedProducerStreamsThroughSharedMapping) {
  // The cross-address-space case the MAP_SHARED segment exists for: the
  // producer is another *process*, attach()ing its own view of the ring.
  constexpr std::uint64_t kCount = 20'000;
  MappedSegment seg(ShmRing::segment_bytes(4096));
  ShmRing cons = ShmRing::create(seg.data(), 4096);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: no gtest, no atexit — write, flag done, _exit.
    ShmRing prod = ShmRing::attach(seg.data());
    for (std::uint64_t v = 0; v < kCount; ++v)
      while (!prod.try_write(&v, sizeof v)) sched_yield();
    prod.set_flags(ShmRing::kProducerDone);
    ::_exit(0);
  }
  std::uint64_t expected = 0;
  for (;;) {
    std::uint64_t v = 0;
    if (cons.try_read(&v, sizeof v)) {
      ASSERT_EQ(v, expected++);
      continue;
    }
    if (!(cons.flags() & ShmRing::kProducerDone)) continue;
    // Flags release-follow the final write: one more conclusive read.
    if (!cons.try_read(&v, sizeof v)) break;
    ASSERT_EQ(v, expected++);
  }
  EXPECT_EQ(expected, kCount);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

TEST(ShmRing, ConsumerGoneUnblocksForkedProducer) {
  // Teardown race: the consumer walks away mid-stream.  A producer parked
  // on a full ring must observe kConsumerGone and stop, not spin forever.
  MappedSegment seg(ShmRing::segment_bytes(1024));
  ShmRing cons = ShmRing::create(seg.data(), 1024);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ShmRing prod = ShmRing::attach(seg.data());
    for (std::uint64_t v = 0;; ++v) {  // unbounded: only the flag ends this
      if (prod.flags() & ShmRing::kConsumerGone) ::_exit(0);
      if (!prod.try_write(&v, sizeof v)) sched_yield();
    }
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 10; ++i)
    while (!cons.try_read(&v, sizeof v)) sched_yield();
  cons.set_flags(ShmRing::kConsumerGone);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

}  // namespace
}  // namespace prism::core
