// PICL analytic model (Table 3): formulas, monotonicity, policy ordering,
// and the Figure 5 shape assertions.
#include <gtest/gtest.h>

#include <cmath>

#include "picl/analytic_model.hpp"

namespace prism::picl {
namespace {

PiclModelParams params(unsigned l, double alpha, unsigned P = 8) {
  PiclModelParams p;
  p.buffer_capacity = l;
  p.arrival_rate = alpha;
  p.nodes = P;
  return p;  // default f(l) = 100 + 10 l
}

TEST(PiclAnalytic, ExpectedStoppingTimeIsLOverAlpha) {
  EXPECT_DOUBLE_EQ(fof_expected_stopping_time(params(50, 0.007)), 50 / 0.007);
  EXPECT_DOUBLE_EQ(fof_expected_stopping_time(params(10, 2.0)), 5.0);
}

TEST(PiclAnalytic, StoppingTimeCdfIsErlang) {
  const auto p = params(10, 0.5);
  EXPECT_NEAR(fof_stopping_time_cdf(p, 20.0), 0.5420703, 1e-5);
  EXPECT_DOUBLE_EQ(fof_stopping_time_cdf(p, 0.0), 0.0);
}

TEST(PiclAnalytic, FaofTailIsMinTail) {
  const auto p = params(10, 0.5, 4);
  const double single = 1.0 - fof_stopping_time_cdf(p, 20.0);
  EXPECT_NEAR(faof_stopping_time_tail(p, 20.0), std::pow(single, 4), 1e-10);
}

TEST(PiclAnalytic, FaofStoppingTimeBetweenBoundAndFof) {
  const auto p = params(50, 0.007, 8);
  const double exact = faof_expected_stopping_time(p);
  EXPECT_GE(exact, faof_stopping_time_lower_bound(p));
  EXPECT_LE(exact, fof_expected_stopping_time(p));
}

TEST(PiclAnalytic, FofFrequencyFormula) {
  // omega_o = 1 / (l + alpha f(l)).
  const auto p = params(50, 0.007);
  const double f = 100 + 10 * 50;
  EXPECT_DOUBLE_EQ(fof_flushing_frequency(p), 1.0 / (50 + 0.007 * f));
}

TEST(PiclAnalytic, FaofBoundFormula) {
  const auto p = params(50, 0.007, 8);
  const double f = 100 + 10 * 50;
  EXPECT_DOUBLE_EQ(faof_flushing_frequency_bound(p),
                   1.0 / (50 + 8 * 0.007 * f));
}

// --- Figure 5 shape targets -------------------------------------------------

class Fig5Shape : public ::testing::TestWithParam<double> {};

TEST_P(Fig5Shape, FrequencyDecreasesWithBufferCapacity) {
  const double alpha = GetParam();
  double prev_fof = 1e9, prev_faof = 1e9;
  for (unsigned l = 10; l <= 100; l += 10) {
    const auto p = params(l, alpha);
    const double fof = fof_flushing_frequency(p);
    const double faof = faof_flushing_frequency_bound(p);
    EXPECT_LT(fof, prev_fof);
    EXPECT_LT(faof, prev_faof);
    prev_fof = fof;
    prev_faof = faof;
  }
}

TEST_P(Fig5Shape, FaofNeverAboveFof) {
  const double alpha = GetParam();
  for (unsigned l = 10; l <= 100; l += 10) {
    const auto p = params(l, alpha);
    EXPECT_LE(faof_flushing_frequency_bound(p), fof_flushing_frequency(p));
  }
}

INSTANTIATE_TEST_SUITE_P(PaperArrivalRates, Fig5Shape,
                         ::testing::Values(0.0008, 0.007, 2.0));

TEST(Fig5Shape, GapGrowsWithArrivalRate) {
  // Relative FOF/FAOF gap at l = 50 must grow across the paper's rates.
  double prev_ratio = 1.0;
  for (double alpha : {0.0008, 0.007, 2.0}) {
    const auto p = params(50, alpha);
    const double ratio =
        fof_flushing_frequency(p) / faof_flushing_frequency_bound(p);
    EXPECT_GT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
  // At the lowest rate the two are nearly indistinguishable (Fig. 5a)...
  const auto lo = params(50, 0.0008);
  EXPECT_NEAR(
      fof_flushing_frequency(lo) / faof_flushing_frequency_bound(lo), 1.0,
      0.1);
  // ...and clearly separated at the highest (Fig. 5c).
  const auto hi = params(50, 2.0);
  EXPECT_GT(fof_flushing_frequency(hi) / faof_flushing_frequency_bound(hi),
            3.0);
}

TEST(Fig5Shape, PublishedAxisRangesReproduced) {
  // The default flush-cost model puts the curves in the published ranges.
  EXPECT_NEAR(fof_flushing_frequency(params(10, 0.0008)), 0.1, 0.01);
  EXPECT_NEAR(fof_flushing_frequency(params(10, 0.007)), 0.085, 0.01);
  EXPECT_NEAR(fof_flushing_frequency(params(10, 2.0)), 2.4e-3, 0.5e-3);
}

// --- Extension metrics --------------------------------------------------------

TEST(PiclAnalytic, FaofInterruptsProgramLessOften) {
  // The real FAOF win: one gang interruption replaces P scattered ones.
  for (double alpha : {0.0008, 0.007, 2.0}) {
    const auto p = params(50, alpha);
    EXPECT_LT(faof_interruption_rate(p), fof_interruption_rate(p));
  }
}

TEST(PiclAnalytic, FlushTimeFractionsInUnitInterval) {
  for (unsigned l : {10u, 50u, 100u}) {
    const auto p = params(l, 0.007);
    EXPECT_GT(fof_flush_time_fraction(p), 0.0);
    EXPECT_LT(fof_flush_time_fraction(p), 1.0);
    EXPECT_GT(faof_flush_time_fraction(p), 0.0);
    EXPECT_LT(faof_flush_time_fraction(p), 1.0);
  }
}

TEST(PiclAnalytic, ValidationRejectsBadParams) {
  PiclModelParams p;
  p.buffer_capacity = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = PiclModelParams{};
  p.arrival_rate = 0;
  EXPECT_THROW(fof_flushing_frequency(p), std::invalid_argument);
  p = PiclModelParams{};
  p.nodes = 0;
  EXPECT_THROW(faof_flushing_frequency_bound(p), std::invalid_argument);
  p = PiclModelParams{};
  p.flush_cost_base = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace prism::picl
