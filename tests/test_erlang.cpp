// Erlang fill-time analytics (Table 3 substrate): CDF/tail identities,
// exact minimum-of-P expectation vs Monte Carlo, and the paper's bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "stats/distributions.hpp"
#include "stats/erlang.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace prism::stats {
namespace {

TEST(ErlangAnalytic, CdfPlusTailIsOne) {
  for (unsigned l : {1u, 5u, 50u, 100u})
    for (double t : {0.1, 1.0, 10.0, 100.0, 1000.0})
      EXPECT_NEAR(erlang_cdf(l, 0.1, t) + erlang_tail(l, 0.1, t), 1.0, 1e-10);
}

TEST(ErlangAnalytic, TailClosedFormSmallL) {
  // l = 1: tail = e^{-rate t}.  l = 2: tail = e^{-rt}(1 + rt).
  const double r = 0.4, t = 3.0;
  EXPECT_NEAR(erlang_tail(1, r, t), std::exp(-r * t), 1e-10);
  EXPECT_NEAR(erlang_tail(2, r, t), std::exp(-r * t) * (1 + r * t), 1e-10);
}

TEST(ErlangAnalytic, MeanFormula) {
  EXPECT_DOUBLE_EQ(erlang_mean(10, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(erlang_mean(100, 0.0008), 125000.0);
}

TEST(ErlangAnalytic, CdfMatchesMonteCarlo) {
  Rng rng(404);
  Erlang d(8, 0.5);
  const double t = 14.0;
  int below = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i)
    if (d.sample(rng) <= t) ++below;
  EXPECT_NEAR(static_cast<double>(below) / n, erlang_cdf(8, 0.5, t), 0.005);
}

TEST(ErlangAnalytic, EdgeCases) {
  EXPECT_DOUBLE_EQ(erlang_cdf(5, 1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(erlang_cdf(5, 1.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(erlang_tail(5, 1.0, 0.0), 1.0);
  EXPECT_THROW(erlang_cdf(0, 1.0, 1.0), std::domain_error);
  EXPECT_THROW(erlang_cdf(5, 0.0, 1.0), std::domain_error);
  EXPECT_THROW(erlang_min_tail(5, 1.0, 0, 1.0), std::domain_error);
}

TEST(ErlangMin, TailIsPowerOfSingleTail) {
  const double single = erlang_tail(10, 0.2, 30.0);
  EXPECT_NEAR(erlang_min_tail(10, 0.2, 4, 30.0), std::pow(single, 4), 1e-12);
}

TEST(ErlangMin, MeanOfOneEqualsErlangMean) {
  EXPECT_NEAR(erlang_min_mean(10, 0.5, 1), erlang_mean(10, 0.5), 1e-6);
}

TEST(ErlangMin, MeanDecreasesWithP) {
  double prev = erlang_min_mean(20, 0.1, 1);
  for (unsigned p : {2u, 4u, 8u, 16u}) {
    const double m = erlang_min_mean(20, 0.1, p);
    EXPECT_LT(m, prev);
    prev = m;
  }
}

TEST(ErlangMin, RespectsPaperLowerBound) {
  // E[min of P Erlang(l)] >= l / (P alpha) — the Table 3 bound.
  for (unsigned l : {5u, 20u, 100u})
    for (unsigned p : {2u, 8u, 32u}) {
      const double exact = erlang_min_mean(l, 0.7, p);
      const double bound = erlang_min_mean_lower_bound(l, 0.7, p);
      EXPECT_GE(exact, bound) << "l=" << l << " p=" << p;
    }
}

TEST(ErlangMin, BoundTightensAsCvGrows) {
  // Relative gap between the exact min and the pooled bound shrinks as l
  // falls (higher CV -> min closer to pooled behaviour)... and in all cases
  // the exact value stays below the single-buffer mean.
  for (unsigned l : {2u, 10u, 50u}) {
    const double exact = erlang_min_mean(l, 1.0, 8);
    EXPECT_LT(exact, erlang_mean(l, 1.0));
  }
}

TEST(ErlangMin, MatchesMonteCarlo) {
  Rng rng(808);
  Erlang d(15, 0.3);
  Summary mins;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    double m = d.sample(rng);
    for (int p = 1; p < 6; ++p) m = std::min(m, d.sample(rng));
    mins.add(m);
  }
  const double exact = erlang_min_mean(15, 0.3, 6);
  EXPECT_NEAR(mins.mean(), exact, 4 * mins.std_error());
}

TEST(ErlangMin, MinTailMatchesMonteCarlo) {
  Rng rng(909);
  Erlang d(10, 1.0);
  const double t = 6.0;
  int above = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    double m = d.sample(rng);
    for (int p = 1; p < 4; ++p) m = std::min(m, d.sample(rng));
    if (m > t) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / trials,
              erlang_min_tail(10, 1.0, 4, t), 0.006);
}

// Property sweep: the exact min mean is monotone in l and 1/rate.
class ErlangMinSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ErlangMinSweep, MonotoneInCapacity) {
  const unsigned p = GetParam();
  double prev = 0;
  for (unsigned l = 5; l <= 100; l += 5) {
    const double m = erlang_min_mean(l, 0.05, p);
    EXPECT_GT(m, prev);
    prev = m;
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, ErlangMinSweep,
                         ::testing::Values(1u, 2u, 8u, 32u));

}  // namespace
}  // namespace prism::stats
