// Sampled record lineage tracing (obs/lineage.hpp, DESIGN.md §9).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/lineage.hpp"

namespace prism::obs {
namespace {

TEST(Lineage, KeyPackingSeparatesFields) {
  // Distinct (node, process, seq) triples must not collide for the small
  // values the models use.
  EXPECT_NE(lineage_key(0, 0, 1), lineage_key(0, 1, 0));
  EXPECT_NE(lineage_key(1, 0, 0), lineage_key(0, 1, 0));
  EXPECT_NE(lineage_key(2, 7, 41), lineage_key(2, 7, 42));
  EXPECT_EQ(lineage_key(3, 9, 5), lineage_key(3, 9, 5));
}

TEST(Lineage, StrideSamplesEveryNth) {
  LineageTracer tr(/*stride=*/4);
  int admitted = 0;
  for (std::uint64_t i = 0; i < 100; ++i)
    admitted += tr.offer(lineage_key(0, 0, i), double(i)) ? 1 : 0;
  EXPECT_EQ(admitted, 25);
  EXPECT_EQ(tr.offered(), 100u);
  EXPECT_EQ(tr.admitted(), 25u);
  const LineageReport rep = tr.report();
  EXPECT_EQ(rep.offered, 100u);
  EXPECT_EQ(rep.admitted, 25u);
  EXPECT_EQ(rep.in_flight, 25u);
  EXPECT_TRUE(rep.conserved());
}

TEST(Lineage, StageDeltasTelescopeToEndToEnd) {
  LineageTracer tr;
  const LineageKey k = lineage_key(1, 2, 3);
  ASSERT_TRUE(tr.offer(k, 10.0));
  tr.stamp(k, PipelineStage::kLisEnqueue, 12.0);
  tr.stamp(k, PipelineStage::kLisForward, 17.0);
  tr.stamp(k, PipelineStage::kIsmInput, 18.5);
  tr.stamp(k, PipelineStage::kIsmProcessed, 25.0);
  tr.complete(k, 30.0);
  const LineageReport rep = tr.report();
  ASSERT_EQ(rep.completed, 1u);
  EXPECT_DOUBLE_EQ(rep.stage[0].mean(), 2.0);   // capture -> enqueue
  EXPECT_DOUBLE_EQ(rep.stage[1].mean(), 5.0);   // enqueue -> forward
  EXPECT_DOUBLE_EQ(rep.stage[2].mean(), 1.5);   // forward -> ism input
  EXPECT_DOUBLE_EQ(rep.stage[3].mean(), 6.5);   // input -> processed
  EXPECT_DOUBLE_EQ(rep.stage[4].mean(), 5.0);   // processed -> dispatch
  EXPECT_DOUBLE_EQ(rep.end_to_end.mean(), 20.0);
  double sum = 0;
  for (const auto& s : rep.stage) sum += s.mean();
  EXPECT_DOUBLE_EQ(sum, rep.end_to_end.mean());
}

TEST(Lineage, SkippedStagesAreZeroWidthNotGaps) {
  // A record that jumps from capture straight to completion inherits the
  // previous stamp for every unstamped stage, so the telescoping identity
  // holds with zero-width intermediate transitions.
  LineageTracer tr;
  const LineageKey k = lineage_key(0, 0, 0);
  ASSERT_TRUE(tr.offer(k, 100.0));
  tr.stamp(k, PipelineStage::kIsmInput, 106.0);  // skips enqueue/forward
  tr.complete(k, 109.0);
  const LineageReport rep = tr.report();
  ASSERT_EQ(rep.completed, 1u);
  EXPECT_DOUBLE_EQ(rep.stage[0].mean(), 0.0);
  EXPECT_DOUBLE_EQ(rep.stage[1].mean(), 0.0);
  EXPECT_DOUBLE_EQ(rep.stage[2].mean(), 6.0);  // forward(=capture) -> input
  EXPECT_DOUBLE_EQ(rep.stage[3].mean(), 0.0);
  EXPECT_DOUBLE_EQ(rep.stage[4].mean(), 3.0);  // processed(=input) -> dispatch
  EXPECT_DOUBLE_EQ(rep.end_to_end.mean(), 9.0);
}

TEST(Lineage, LossAttributionBySiteWithAge) {
  LineageTracer tr;
  for (std::uint64_t i = 0; i < 6; ++i)
    ASSERT_TRUE(tr.offer(lineage_key(0, 0, i), 0.0));
  tr.lose(lineage_key(0, 0, 0), LossSite::kThrottle, 1.0);
  tr.lose(lineage_key(0, 0, 1), LossSite::kThrottle, 3.0);
  tr.lose(lineage_key(0, 0, 2), LossSite::kLisPipe, 10.0);
  tr.lose(lineage_key(0, 0, 3), LossSite::kTpBackpressure, 4.0);
  tr.complete(lineage_key(0, 0, 4), 2.0);
  // key 5 stays in flight.
  const LineageReport rep = tr.report();
  EXPECT_EQ(rep.lost, 4u);
  EXPECT_EQ(rep.completed, 1u);
  EXPECT_EQ(rep.in_flight, 1u);
  EXPECT_TRUE(rep.conserved());
  EXPECT_DOUBLE_EQ(rep.attributed_loss_fraction(), 1.0);
  EXPECT_EQ(rep.lost_at[std::size_t(LossSite::kThrottle)], 2u);
  EXPECT_EQ(rep.lost_at[std::size_t(LossSite::kLisPipe)], 1u);
  EXPECT_EQ(rep.lost_at[std::size_t(LossSite::kTpBackpressure)], 1u);
  EXPECT_EQ(rep.lost_at[std::size_t(LossSite::kLisBuffer)], 0u);
  EXPECT_DOUBLE_EQ(rep.loss_age[std::size_t(LossSite::kThrottle)].mean(), 2.0);
  EXPECT_DOUBLE_EQ(rep.loss_age[std::size_t(LossSite::kLisPipe)].mean(), 10.0);
}

TEST(Lineage, UntrackedKeysAreNoOps) {
  LineageTracer tr(/*stride=*/2);
  ASSERT_TRUE(tr.offer(lineage_key(0, 0, 0), 0.0));   // admitted
  ASSERT_FALSE(tr.offer(lineage_key(0, 0, 1), 0.0));  // stride-suppressed
  // Downstream stamps/terminals for the suppressed record must not count.
  tr.stamp(lineage_key(0, 0, 1), PipelineStage::kIsmInput, 5.0);
  tr.complete(lineage_key(0, 0, 1), 6.0);
  tr.lose(lineage_key(0, 0, 9), LossSite::kIsmQueue, 1.0);  // never offered
  const LineageReport rep = tr.report();
  EXPECT_EQ(rep.admitted, 1u);
  EXPECT_EQ(rep.completed, 0u);
  EXPECT_EQ(rep.lost, 0u);
  EXPECT_EQ(rep.in_flight, 1u);
  EXPECT_TRUE(rep.conserved());
}

TEST(Lineage, RemapCarriesLineageToNewKey) {
  // The throttle renumbers forwarded records' sequence numbers; remap moves
  // the accumulated stamps so downstream stages keep stamping blindly.
  LineageTracer tr;
  const LineageKey a = lineage_key(0, 1, 10);
  const LineageKey b = lineage_key(0, 1, 2);  // renumbered
  ASSERT_TRUE(tr.offer(a, 0.0));
  tr.stamp(a, PipelineStage::kLisEnqueue, 1.0);
  tr.remap(a, b);
  EXPECT_FALSE(tr.tracked(a));
  EXPECT_TRUE(tr.tracked(b));
  tr.stamp(b, PipelineStage::kIsmInput, 4.0);
  tr.complete(b, 5.0);
  const LineageReport rep = tr.report();
  ASSERT_EQ(rep.completed, 1u);
  EXPECT_DOUBLE_EQ(rep.stage[0].mean(), 1.0);
  EXPECT_DOUBLE_EQ(rep.end_to_end.mean(), 5.0);
  // Remap of an untracked key, or onto itself, is a no-op.
  tr.remap(lineage_key(9, 9, 9), lineage_key(8, 8, 8));
  tr.remap(b, b);
  EXPECT_TRUE(rep.conserved());
}

TEST(Lineage, ReofferRestartsLineage) {
  LineageTracer tr;
  const LineageKey k = lineage_key(0, 0, 7);
  ASSERT_TRUE(tr.offer(k, 0.0));
  tr.stamp(k, PipelineStage::kLisEnqueue, 50.0);
  ASSERT_TRUE(tr.offer(k, 100.0));  // key reused: lineage restarts
  tr.complete(k, 103.0);
  const LineageReport rep = tr.report();
  ASSERT_EQ(rep.completed, 1u);
  EXPECT_DOUBLE_EQ(rep.end_to_end.mean(), 3.0);  // from the re-offer, not 0.0
  EXPECT_EQ(rep.offered, 2u);
  EXPECT_EQ(rep.admitted, 2u);
}

TEST(Lineage, MergeSumsCountsAndPoolsSummaries) {
  LineageTracer a, b;
  ASSERT_TRUE(a.offer(lineage_key(0, 0, 0), 0.0));
  a.complete(lineage_key(0, 0, 0), 4.0);
  ASSERT_TRUE(b.offer(lineage_key(0, 0, 0), 0.0));
  b.complete(lineage_key(0, 0, 0), 8.0);
  ASSERT_TRUE(b.offer(lineage_key(0, 0, 1), 0.0));
  b.lose(lineage_key(0, 0, 1), LossSite::kLisBuffer, 2.0);
  LineageReport merged = a.report();
  merged.merge(b.report());
  EXPECT_EQ(merged.offered, 3u);
  EXPECT_EQ(merged.admitted, 3u);
  EXPECT_EQ(merged.completed, 2u);
  EXPECT_EQ(merged.lost, 1u);
  EXPECT_TRUE(merged.conserved());
  EXPECT_EQ(merged.end_to_end.count(), 2u);
  EXPECT_DOUBLE_EQ(merged.end_to_end.mean(), 6.0);
  EXPECT_EQ(merged.lost_at[std::size_t(LossSite::kLisBuffer)], 1u);
}

TEST(Lineage, ReportRenderings) {
  LineageTracer tr;
  ASSERT_TRUE(tr.offer(lineage_key(0, 0, 0), 0.0));
  tr.complete(lineage_key(0, 0, 0), 1.0);
  ASSERT_TRUE(tr.offer(lineage_key(0, 0, 1), 0.0));
  tr.lose(lineage_key(0, 0, 1), LossSite::kThrottle, 0.5);
  const LineageReport rep = tr.report();
  const std::string text = rep.to_string();
  EXPECT_NE(text.find("end_to_end"), std::string::npos);
  EXPECT_NE(text.find("throttle"), std::string::npos);
  const std::string csv = rep.csv();
  EXPECT_NE(csv.find("transition,count,mean,min,max"), std::string::npos);
  EXPECT_NE(csv.find("capture->lis_enqueue"), std::string::npos);
  // Attribution with zero losses is vacuously complete.
  EXPECT_DOUBLE_EQ(LineageReport{}.attributed_loss_fraction(), 1.0);
}

}  // namespace
}  // namespace prism::obs
