// The integrated environment: full lifecycle across LIS styles, FAOF gang
// flush, conservation from record() to tool dispatch, classification.
#include <gtest/gtest.h>

#include <memory>

#include "core/clock.hpp"
#include "core/environment.hpp"

namespace prism::core {
namespace {

trace::EventRecord rec(std::uint32_t node, std::uint64_t seq) {
  trace::EventRecord r;
  r.timestamp = now_ns();
  r.node = node;
  r.seq = seq;
  return r;
}

TEST(Environment, BufferedLifecycleConserves) {
  EnvironmentConfig cfg;
  cfg.nodes = 3;
  cfg.lis_style = LisStyle::kBuffered;
  cfg.local_buffer_capacity = 8;
  cfg.ism.causal_ordering = false;
  IntegratedEnvironment env(cfg);
  auto stats = std::make_shared<StatsTool>();
  env.attach_tool(stats);
  env.start();
  for (std::uint32_t n = 0; n < 3; ++n)
    for (std::uint64_t s = 0; s < 20; ++s) env.record(n, rec(n, s));
  env.stop();
  EXPECT_EQ(stats->total(), 60u);
  const auto lis = env.total_lis_stats();
  EXPECT_EQ(lis.recorded, 60u);
  EXPECT_EQ(lis.records_forwarded, 60u);
  EXPECT_EQ(lis.dropped, 0u);
  EXPECT_EQ(env.ism().stats().records_dispatched, 60u);
}

TEST(Environment, FaofGangFlushAcrossNodes) {
  EnvironmentConfig cfg;
  cfg.nodes = 4;
  cfg.lis_style = LisStyle::kBuffered;
  cfg.flush_policy = FlushPolicyKind::kFaof;
  cfg.local_buffer_capacity = 10;
  cfg.ism.causal_ordering = false;
  IntegratedEnvironment env(cfg);
  auto stats = std::make_shared<StatsTool>();
  env.attach_tool(stats);
  env.start();
  // Nodes 1-3 hold partial buffers; node 0 fills -> everyone flushes.
  for (std::uint32_t n = 1; n < 4; ++n) env.record(n, rec(n, 0));
  for (std::uint64_t s = 0; s < 10; ++s) env.record(0, rec(0, s));
  // Give the ISM a moment is not needed: stop() drains deterministically.
  env.stop();
  EXPECT_EQ(stats->total(), 13u);
  // Every node flushed at least once (the gang flush).
  for (std::uint32_t n = 1; n < 4; ++n)
    EXPECT_GE(env.lis(n).stats().flushes, 1u) << "node " << n;
}

TEST(Environment, ForwardingStyleImmediateDelivery) {
  EnvironmentConfig cfg;
  cfg.nodes = 2;
  cfg.lis_style = LisStyle::kForwarding;
  cfg.ism.causal_ordering = false;
  IntegratedEnvironment env(cfg);
  auto stats = std::make_shared<StatsTool>();
  env.attach_tool(stats);
  env.start();
  env.record(0, rec(0, 0));
  env.record(1, rec(1, 0));
  env.stop();
  EXPECT_EQ(stats->total(), 2u);
  EXPECT_EQ(env.lis(0).kind(), "forwarding");
}

TEST(Environment, DaemonStyleEndToEnd) {
  EnvironmentConfig cfg;
  cfg.nodes = 2;
  cfg.processes_per_node = 2;
  cfg.lis_style = LisStyle::kDaemon;
  cfg.sampling_period_ns = 1'000'000;
  cfg.ism.causal_ordering = false;
  IntegratedEnvironment env(cfg);
  auto stats = std::make_shared<StatsTool>();
  env.attach_tool(stats);
  env.start();
  for (std::uint32_t n = 0; n < 2; ++n)
    for (std::uint32_t p = 0; p < 2; ++p)
      for (std::uint64_t s = 0; s < 5; ++s) {
        auto r = rec(n, s);
        r.process = p;
        env.record(n, r);
      }
  env.stop();
  EXPECT_EQ(stats->total(), 20u);
  EXPECT_EQ(env.lis(0).kind(), "daemon");
}

TEST(Environment, MisoInputConfigWorksEndToEnd) {
  EnvironmentConfig cfg;
  cfg.nodes = 3;
  cfg.lis_style = LisStyle::kForwarding;
  cfg.ism.input = InputConfig::kMiso;
  cfg.ism.causal_ordering = false;
  IntegratedEnvironment env(cfg);
  auto stats = std::make_shared<StatsTool>();
  env.attach_tool(stats);
  env.start();
  for (std::uint32_t n = 0; n < 3; ++n)
    for (std::uint64_t s = 0; s < 10; ++s) env.record(n, rec(n, s));
  env.stop();
  EXPECT_EQ(stats->total(), 30u);
  EXPECT_EQ(env.tp().data_link_count(), 3u);
}

TEST(Environment, FlushAllShipsPartialBuffers) {
  EnvironmentConfig cfg;
  cfg.nodes = 2;
  cfg.lis_style = LisStyle::kBuffered;
  cfg.local_buffer_capacity = 1000;
  cfg.ism.causal_ordering = false;
  IntegratedEnvironment env(cfg);
  auto stats = std::make_shared<StatsTool>();
  env.attach_tool(stats);
  env.start();
  env.record(0, rec(0, 0));
  env.record(1, rec(1, 0));
  env.flush_all();
  env.stop();
  EXPECT_EQ(stats->total(), 2u);
}

TEST(Environment, AdaptivePolicyClassifiesAdaptive) {
  EnvironmentConfig cfg;
  cfg.flush_policy = FlushPolicyKind::kAdaptive;
  IntegratedEnvironment env(cfg);
  EXPECT_EQ(env.classification().management, ManagementApproach::kAdaptive);
  EXPECT_EQ(env.classification().evaluation,
            EvaluationApproach::kStructuredModeling);
}

TEST(Environment, StorageConfigClassifiesOnOffline) {
  EnvironmentConfig cfg;
  cfg.ism.storage_path = std::filesystem::temp_directory_path() /
                         "prism_env_class.trc";
  {
    IntegratedEnvironment env(cfg);
    EXPECT_EQ(env.classification().analysis, AnalysisSupport::kOnOffline);
    env.start();
    env.stop();
  }
  std::filesystem::remove(*cfg.ism.storage_path);
}

TEST(Environment, BadNodeAccessThrows) {
  EnvironmentConfig cfg;
  cfg.nodes = 2;
  IntegratedEnvironment env(cfg);
  EXPECT_THROW(env.lis(2), std::out_of_range);
  EnvironmentConfig zero;
  zero.nodes = 0;
  EXPECT_THROW(IntegratedEnvironment{zero}, std::invalid_argument);
}

TEST(Environment, DoubleStartStopSafe) {
  EnvironmentConfig cfg;
  IntegratedEnvironment env(cfg);
  env.start();
  env.start();
  env.stop();
  env.stop();
  SUCCEED();
}

TEST(Environment, LisStyleNames) {
  EXPECT_EQ(to_string(LisStyle::kBuffered), "buffered");
  EXPECT_EQ(to_string(LisStyle::kForwarding), "forwarding");
  EXPECT_EQ(to_string(LisStyle::kDaemon), "daemon");
}

}  // namespace
}  // namespace prism::core
