// Sharded hierarchical ISM federation (DESIGN.md §16): shard routing,
// scoped causal pre-reduction, group expiry, the two-level conservation
// identity, and determinism of chaos ledgers under aggregator crashes.
//
// The federation-wide exactness invariant under test everywhere:
//
//   recorded == root_dispatched + root_still_held + root_in_output
//             + lis_lost_send + lis_lost_dead
//             + sum_shards(lost_uplink + lost_dead + still_held + staged)
//             + wire losses (both levels)
//
// i.e. admitted == completed + lost + in_flight, telescoped across both
// federation levels, with every loss attributed to exactly one site.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/federation.hpp"
#include "core/tool.hpp"
#include "fault/fault.hpp"
#include "trace/causal.hpp"

namespace prism {
namespace {

using core::AggregatorStats;
using core::EnvironmentConfig;
using core::FederatedEnvironment;
using core::ShardAssign;
using core::ShardRouter;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultSite;
using fault::RetryPolicy;
using trace::CausalReorderer;
using trace::EventKind;
using trace::EventRecord;

EventRecord ev(std::uint32_t node, std::uint64_t seq,
               EventKind kind = EventKind::kUserEvent, std::uint32_t peer = 0,
               std::uint16_t tag = 0) {
  EventRecord r;
  r.node = node;
  r.process = 0;
  r.seq = seq;
  r.timestamp = seq;
  r.kind = kind;
  r.peer = peer;
  r.tag = tag;
  return r;
}

class CollectTool final : public core::Tool {
 public:
  std::string_view name() const override { return "collect"; }
  void consume(const EventRecord& r) override {
    std::lock_guard lk(mu_);
    records_.push_back(r);
  }
  std::vector<EventRecord> records() const {
    std::lock_guard lk(mu_);
    return records_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<EventRecord> records_;
};

/// The conservation ledger of a chaos run, for bit-identical same-seed
/// comparisons: admissions, level boundaries, and every loss site.  The
/// root's dispatched/still_held split is deliberately NOT part of the
/// ledger — after an uplink batch is destroyed, which streams gap at the
/// root depends on the pre-reducer's arrival interleaving (uplink batches
/// mix member nodes), so the stranded count is schedule-dependent even
/// though every loss counter and boundary total is not (DESIGN.md §16).
struct FederationLedger {
  std::uint64_t recorded = 0, lis_forwarded = 0, lis_lost_send = 0,
                lis_lost_dead = 0, lis_dropped = 0;
  std::vector<std::uint64_t> agg_received, agg_forwarded, agg_lost_uplink,
      agg_lost_dead;
  std::uint64_t root_received = 0;
  std::uint64_t lost_uplink = 0, lost_agg = 0;
  std::uint32_t lises_dead = 0, shards_dead = 0;

  bool operator==(const FederationLedger& o) const {
    return recorded == o.recorded && lis_forwarded == o.lis_forwarded &&
           lis_lost_send == o.lis_lost_send &&
           lis_lost_dead == o.lis_lost_dead && lis_dropped == o.lis_dropped &&
           agg_received == o.agg_received &&
           agg_forwarded == o.agg_forwarded &&
           agg_lost_uplink == o.agg_lost_uplink &&
           agg_lost_dead == o.agg_lost_dead &&
           root_received == o.root_received &&
           lost_uplink == o.lost_uplink && lost_agg == o.lost_agg &&
           lises_dead == o.lises_dead && shards_dead == o.shards_dead;
  }
};

FederationLedger ledger_of(FederatedEnvironment& env) {
  FederationLedger led;
  const core::LisStats lis = env.total_lis_stats();
  led.recorded = lis.recorded;
  led.lis_forwarded = lis.records_forwarded;
  led.lis_lost_send = lis.lost_send;
  led.lis_lost_dead = lis.lost_dead;
  led.lis_dropped = lis.dropped;
  for (std::uint32_t s = 0; s < env.shards(); ++s) {
    const AggregatorStats as = env.aggregator_stats(s);
    led.agg_received.push_back(as.records_received);
    led.agg_forwarded.push_back(as.records_forwarded);
    led.agg_lost_uplink.push_back(as.lost_uplink);
    led.agg_lost_dead.push_back(as.lost_dead);
  }
  led.root_received = env.root_ism().stats().records_received;
  const core::DegradationReport d = env.degradation();
  led.lost_uplink = d.records_lost_uplink;
  led.lost_agg = d.records_lost_agg;
  led.lises_dead = d.lises_dead;
  led.shards_dead = d.shards_dead;
  return led;
}

/// Asserts the two-level exactness chain on a stopped environment, link by
/// link, so a violation names the level that leaked.
void expect_exact_conservation(FederatedEnvironment& env) {
  const core::LisStats lis = env.total_lis_stats();
  const std::uint64_t wire_lost = env.degradation().records_lost_wire;
  std::uint64_t agg_received = 0, agg_sunk = 0, agg_forwarded = 0;
  for (std::uint32_t s = 0; s < env.shards(); ++s) {
    const AggregatorStats as = env.aggregator_stats(s);
    EXPECT_TRUE(as.conserved())
        << "shard " << s << ": received=" << as.records_received
        << " forwarded=" << as.records_forwarded
        << " lost_uplink=" << as.lost_uplink << " lost_dead=" << as.lost_dead
        << " still_held=" << as.still_held << " staged=" << as.staged;
    agg_received += as.records_received;
    agg_forwarded += as.records_forwarded;
    agg_sunk += as.lost_uplink + as.lost_dead + as.still_held + as.staged;
    for (const std::uint32_t n : env.shard_members(s))
      EXPECT_TRUE(env.lis(n).stats().conserved()) << "LIS node " << n;
  }
  const core::IsmStats root = env.root_ism().stats();
  EXPECT_TRUE(root.conserved());
  // Level-to-level delivery, exact on in-process transports (wire_lost == 0
  // otherwise the wire losses sit somewhere along these two links and only
  // the end-to-end identity below is exact).
  if (wire_lost == 0) {
    EXPECT_EQ(lis.records_forwarded, agg_received) << "cluster-level leak";
    EXPECT_EQ(agg_forwarded, root.records_received)
        << "federation boundary double-count: aggregator forwarded and root "
           "received disagree";
  }
  // The federation-wide pipeline identity: every accepted record is
  // dispatched, in flight at a named stage, or lost at exactly one site.
  EXPECT_EQ(lis.recorded,
            root.records_dispatched + root.still_held + root.in_output +
                lis.buffered + lis.lost_send + lis.lost_dead + agg_sunk +
                wire_lost)
      << "pipeline identity leak: recorded=" << lis.recorded;
}

EnvironmentConfig base_config(std::uint32_t nodes, std::uint32_t shards) {
  EnvironmentConfig cfg;
  cfg.nodes = nodes;
  cfg.federation.shards = shards;
  cfg.federation.agg_batch_records = 16;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.local_buffer_capacity = 32;
  cfg.link_capacity = 256;
  return cfg;
}

// ---------------------------------------------------------------- ShardRouter

TEST(ShardRouter, ModuloAssignsRoundRobin) {
  ShardRouter r(4, 64, ShardAssign::kModulo);
  for (std::uint32_t n = 0; n < 100; ++n) EXPECT_EQ(r.shard_for(n), n % 4);
}

TEST(ShardRouter, HashIsDeterministic) {
  ShardRouter a(8, 64, ShardAssign::kHash);
  ShardRouter b(8, 64, ShardAssign::kHash);
  for (std::uint32_t n = 0; n < 1000; ++n)
    EXPECT_EQ(a.shard_for(n), b.shard_for(n));
}

TEST(ShardRouter, HashCoversAllShardsReasonablyEvenly) {
  const std::uint32_t shards = 8, nodes = 1024;
  ShardRouter r(shards, 64, ShardAssign::kHash);
  std::vector<std::uint32_t> count(shards, 0);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const std::uint32_t s = r.shard_for(n);
    ASSERT_LT(s, shards);
    ++count[s];
  }
  const std::uint32_t mean = nodes / shards;
  for (std::uint32_t s = 0; s < shards; ++s) {
    EXPECT_GT(count[s], 0u) << "shard " << s << " owns no keys";
    EXPECT_LT(count[s], 4 * mean) << "shard " << s << " grossly overloaded";
  }
}

TEST(ShardRouter, ConsistentHashingIsStableUnderGrowth) {
  // Growing S -> S+1 only adds shard S's ring points, so a key either moves
  // to the new shard or keeps its old assignment — never shuffles between
  // the survivors.  (Modulo, by contrast, remaps nearly everything.)
  const std::uint32_t nodes = 2000;
  ShardRouter small(4, 64, ShardAssign::kHash);
  ShardRouter big(5, 64, ShardAssign::kHash);
  std::uint32_t moved = 0;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const std::uint32_t to = big.shard_for(n);
    if (to == 4) {
      ++moved;
      continue;
    }
    EXPECT_EQ(to, small.shard_for(n))
        << "node " << n << " shuffled between surviving shards";
  }
  // Roughly 1/5th of the keys should land on the new shard.
  EXPECT_GT(moved, nodes / 10);
  EXPECT_LT(moved, nodes / 2);
}

TEST(ShardRouter, RejectsDegenerateArguments) {
  EXPECT_THROW(ShardRouter(0), std::invalid_argument);
  EXPECT_THROW(ShardRouter(4, 0, ShardAssign::kHash), std::invalid_argument);
}

// ------------------------------------------------- scoped causal pre-reduction

TEST(ScopedReorderer, OutOfScopePeerRecvReleasesWithoutSend) {
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  r.restrict_scope({0, 1});
  // A recv at node 0 from node 5 — another shard's traffic.  The matching
  // send will never be offered here; the recv must not be held.
  r.offer(ev(0, 0, EventKind::kRecv, /*peer=*/5, /*tag=*/1));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(r.held(), 0u);
}

TEST(ScopedReorderer, InScopePeerStillEnforcesMessageOrder) {
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  r.restrict_scope({0, 1});
  r.offer(ev(0, 0, EventKind::kRecv, /*peer=*/1, /*tag=*/1));
  EXPECT_EQ(out.size(), 0u);  // held: node 1 is in scope, send not released
  EXPECT_EQ(r.held(), 1u);
  r.offer(ev(1, 0, EventKind::kSend, /*peer=*/0, /*tag=*/1));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].kind, EventKind::kSend);
  EXPECT_EQ(out[1].kind, EventKind::kRecv);
}

TEST(ScopedReorderer, ProgramOrderEnforcedRegardlessOfScope) {
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  r.restrict_scope({0});
  r.offer(ev(0, 1));  // seq 1 before seq 0: held on program order
  EXPECT_EQ(out.size(), 0u);
  r.offer(ev(0, 0));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_EQ(out[1].seq, 1u);
}

// ------------------------------------------------------- expire_node edge cases

TEST(ExpireNode, EmptyPendingQueueReleasesNothing) {
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  r.offer(ev(0, 0));
  EXPECT_EQ(r.expire_node(7), 0u);  // node 7 never offered anything
  EXPECT_EQ(out.size(), 1u);
  // The reorderer keeps working afterwards.
  r.offer(ev(0, 1));
  EXPECT_EQ(out.size(), 2u);
}

TEST(ExpireNode, ExpiringSameNodeTwiceIsIdempotent) {
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  r.offer(ev(1, 1));  // gap at seq 0: held
  r.offer(ev(1, 2));
  EXPECT_EQ(r.held(), 2u);
  EXPECT_EQ(r.expire_node(1), 2u);
  EXPECT_EQ(r.held(), 0u);
  EXPECT_EQ(r.expire_node(1), 0u) << "second expiry must be a no-op";
  EXPECT_EQ(out.size(), 2u);
}

TEST(ExpireNode, GapTolerantReleaseInterleavedWithLivePeerArrivals) {
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  // Dead-to-be node 1 has a seq gap (0 missing) and an unmatched recv
  // upstream of live node 0's send.
  r.offer(ev(1, 1));
  r.offer(ev(1, 3));  // two gaps: seq 0 and seq 2
  // Live node 0 is itself mid-stream: seq 1 held on program order.
  r.offer(ev(0, 1, EventKind::kRecv, /*peer=*/1, /*tag=*/3));
  EXPECT_EQ(out.size(), 0u);
  EXPECT_EQ(r.held(), 3u);
  // Expire node 1: its held records force-release past both gaps.  Node 0
  // is NOT expired — its recv stays held only for program order now.
  EXPECT_EQ(r.expire_node(1), 2u);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[1].seq, 3u);
  // Late arrival from the live peer: seq 0 unblocks seq 1, whose recv names
  // the dead node — message order is waived for dead peers.
  r.offer(ev(0, 0));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[2].node, 0u);
  EXPECT_EQ(out[2].seq, 0u);
  EXPECT_EQ(out[3].seq, 1u);
  EXPECT_EQ(r.held(), 0u);
}

TEST(ExpireNodes, GroupExpiryResolvesHoldsBetweenDyingNodes) {
  // A recv at node 2 waits on a send from node 3; both die together (they
  // are one aggregator shard).  Group expiry must resolve the pair in one
  // pass — per-node expiry of 2 alone would strand the recv until 3's turn.
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  r.offer(ev(2, 1, EventKind::kRecv, /*peer=*/3, /*tag=*/9));  // held twice over
  r.offer(ev(3, 1));                                           // gap at seq 0
  EXPECT_EQ(r.held(), 2u);
  EXPECT_EQ(r.expire_nodes({2, 3}), 2u);
  EXPECT_EQ(r.held(), 0u);
  EXPECT_EQ(out.size(), 2u);
}

// ------------------------------------------------------- federated environment

TEST(FederatedEnvironment, RejectsFlatAndDegenerateConfigs) {
  EnvironmentConfig cfg = base_config(4, 0);
  EXPECT_THROW(FederatedEnvironment{cfg}, std::invalid_argument);
  cfg = base_config(4, 2);
  cfg.federation.agg_batch_records = 0;
  EXPECT_THROW(FederatedEnvironment{cfg}, std::invalid_argument);
  cfg = base_config(0, 2);
  EXPECT_THROW(FederatedEnvironment{cfg}, std::invalid_argument);
}

TEST(FederatedEnvironment, PartitionsNodesConsistentlyWithRouter) {
  EnvironmentConfig cfg = base_config(40, 4);
  FederatedEnvironment env(cfg);
  std::set<std::uint32_t> seen;
  for (std::uint32_t s = 0; s < env.shards(); ++s) {
    for (const std::uint32_t n : env.shard_members(s)) {
      EXPECT_EQ(env.shard_of(n), s);
      EXPECT_EQ(env.router().shard_for(n), s);
      EXPECT_TRUE(seen.insert(n).second) << "node " << n << " in two shards";
    }
  }
  EXPECT_EQ(seen.size(), 40u);
}

TEST(FederatedEnvironment, DeliversEverythingFaultFree) {
  EnvironmentConfig cfg = base_config(24, 4);
  FederatedEnvironment env(cfg);
  auto tool = std::make_shared<CollectTool>();
  env.attach_tool(tool);
  env.start();
  const std::uint64_t per_node = 50;
  for (std::uint64_t i = 0; i < per_node; ++i)
    for (std::uint32_t n = 0; n < cfg.nodes; ++n) env.record(ev(n, i));
  env.stop();

  EXPECT_EQ(tool->records().size(), per_node * cfg.nodes);
  EXPECT_EQ(env.root_ism().stats().records_dispatched, per_node * cfg.nodes);
  expect_exact_conservation(env);
  EXPECT_FALSE(env.degradation().degraded());
  // Program order survives the two-level merge.
  EXPECT_EQ(trace::first_causal_violation(tool->records()), -1);
}

TEST(FederatedEnvironment, SingleShardDegenerateFederationWorks) {
  EnvironmentConfig cfg = base_config(8, 1);
  FederatedEnvironment env(cfg);
  auto tool = std::make_shared<CollectTool>();
  env.attach_tool(tool);
  env.start();
  for (std::uint64_t i = 0; i < 40; ++i)
    for (std::uint32_t n = 0; n < cfg.nodes; ++n) env.record(ev(n, i));
  env.stop();
  EXPECT_EQ(tool->records().size(), 320u);
  expect_exact_conservation(env);
}

TEST(FederatedEnvironment, CrossShardMessageOrderEnforcedAtRoot) {
  // Even nodes (shard 0 under modulo-2) send; odd nodes (shard 1) receive.
  // The recvs are recorded BEFORE the matching sends, so shard 1's
  // aggregator must waive them (out-of-scope peer) and the root must hold
  // them until shard 0's sends arrive.
  EnvironmentConfig cfg = base_config(6, 2);
  cfg.federation.assign = ShardAssign::kModulo;
  cfg.lis_style = core::LisStyle::kForwarding;
  cfg.federation.agg_batch_records = 4;
  FederatedEnvironment env(cfg);
  auto tool = std::make_shared<CollectTool>();
  env.attach_tool(tool);
  env.start();
  const std::uint64_t per_pair = 20;
  for (std::uint64_t i = 0; i < per_pair; ++i) {
    for (std::uint32_t p = 0; p < 3; ++p) {
      const std::uint32_t sender = 2 * p, receiver = 2 * p + 1;
      env.record(ev(receiver, i, EventKind::kRecv, sender,
                    static_cast<std::uint16_t>(p)));
      env.record(ev(sender, i, EventKind::kSend, receiver,
                    static_cast<std::uint16_t>(p)));
    }
  }
  env.stop();

  const auto out = tool->records();
  EXPECT_EQ(out.size(), per_pair * 6);
  // The dispatch order must satisfy program order AND cross-shard message
  // order — the property the aggregators waived locally and delegated to
  // the root.
  EXPECT_EQ(trace::first_causal_violation(out), -1);
  expect_exact_conservation(env);
}

TEST(FederatedEnvironment, ScalesToHundredsOfLisNodes) {
  EnvironmentConfig cfg = base_config(256, 8);
  cfg.ism.input = core::InputConfig::kMiso;
  FederatedEnvironment env(cfg);
  auto tool = std::make_shared<CollectTool>();
  env.attach_tool(tool);
  env.start();
  const std::uint64_t per_node = 40;
  for (std::uint64_t i = 0; i < per_node; ++i)
    for (std::uint32_t n = 0; n < cfg.nodes; ++n) env.record(ev(n, i));
  env.stop();
  EXPECT_EQ(tool->records().size(), per_node * cfg.nodes);
  expect_exact_conservation(env);
  // Pre-reduction actually happened: every live record crossed an uplink in
  // a fixed-size batch.
  std::uint64_t uplink_batches = 0;
  for (std::uint32_t s = 0; s < env.shards(); ++s)
    uplink_batches += env.aggregator_stats(s).batches_forwarded;
  EXPECT_GE(uplink_batches,
            per_node * cfg.nodes / cfg.federation.agg_batch_records);
}

TEST(FederatedEnvironment, RootTransportCanDifferFromClusterTransport) {
  // Clusters on in-process pipes, root level over real sockets.
  EnvironmentConfig cfg = base_config(12, 3);
  cfg.federation.root_tp = core::TpFlavor::kSocket;
  FederatedEnvironment env(cfg);
  auto tool = std::make_shared<CollectTool>();
  env.attach_tool(tool);
  env.start();
  for (std::uint64_t i = 0; i < 64; ++i)
    for (std::uint32_t n = 0; n < cfg.nodes; ++n) env.record(ev(n, i));
  env.stop();
  EXPECT_EQ(tool->records().size(), 64u * 12u);
  expect_exact_conservation(env);
}

TEST(FederatedEnvironment, BothLevelsOverSharedMemory) {
  EnvironmentConfig cfg = base_config(8, 2);
  cfg.tp_flavor = core::TpFlavor::kShm;
  cfg.shm.ring_capacity = 1 << 16;
  FederatedEnvironment env(cfg);
  auto tool = std::make_shared<CollectTool>();
  env.attach_tool(tool);
  env.start();
  for (std::uint64_t i = 0; i < 64; ++i)
    for (std::uint32_t n = 0; n < cfg.nodes; ++n) env.record(ev(n, i));
  env.stop();
  EXPECT_EQ(tool->records().size(), 64u * 8u);
  expect_exact_conservation(env);
}

// --------------------------------------------- conservation under chaos

TEST(FederationChaos, UplinkLossAttributedExactlyOnce) {
  // The satellite regression: a record forwarded by its aggregator and then
  // destroyed on the root-bound uplink must appear exactly once, as that
  // shard's lost_uplink — never as root input, never double-counted with
  // the LIS-level kTpSend losses racing underneath.
  for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
    EnvironmentConfig cfg = base_config(16, 4);
    cfg.federation.assign = ShardAssign::kModulo;
    FaultPlan plan;
    plan.send_failure(FaultSite::kTpSend, 0.3);
    plan.send_failure(FaultSite::kAggForward, 0.5);
    FaultInjector inj(plan, seed);
    RetryPolicy retry;
    retry.max_attempts = 2;
    retry.base_backoff_ns = 100;

    FederatedEnvironment env(cfg);
    env.set_fault(&inj, retry);
    env.start();
    for (std::uint64_t i = 0; i < 200; ++i)
      for (std::uint32_t n = 0; n < cfg.nodes; ++n) env.record(ev(n, i));
    env.stop();

    expect_exact_conservation(env);
    std::uint64_t lost_uplink = 0, agg_forwarded = 0;
    for (std::uint32_t s = 0; s < env.shards(); ++s) {
      lost_uplink += env.aggregator_stats(s).lost_uplink;
      agg_forwarded += env.aggregator_stats(s).records_forwarded;
    }
    EXPECT_EQ(agg_forwarded, env.root_ism().stats().records_received)
        << "seed " << seed << ": uplink loss leaked into the root ledger";
    EXPECT_EQ(env.degradation().records_lost_uplink, lost_uplink);
    if (seed == 7) {
      EXPECT_GT(lost_uplink, 0u) << "site never fired";
    }
  }
}

TEST(FederationChaos, AggregatorCrashKeepsEveryLevelExact) {
  EnvironmentConfig cfg = base_config(16, 4);
  cfg.federation.assign = ShardAssign::kModulo;  // shard 1 surely has members
  FaultPlan plan;
  plan.crash(FaultSite::kAggForward, /*at_op=*/3, /*node=*/1);
  FaultInjector inj(plan, 42);
  FederatedEnvironment env(cfg);
  env.set_fault(&inj, RetryPolicy{});
  env.start();
  for (std::uint64_t i = 0; i < 300; ++i)
    for (std::uint32_t n = 0; n < cfg.nodes; ++n) env.record(ev(n, i));
  env.stop();

  EXPECT_TRUE(env.aggregator(1).dead());
  const auto d = env.degradation();
  EXPECT_EQ(d.shards_dead, 1u);
  EXPECT_GT(d.records_lost_agg, 0u);
  EXPECT_NE(d.to_string().find("shards_dead=1"), std::string::npos);
  // The dead shard forwarded exactly its first two uplink batches.
  const AggregatorStats dead_stats = env.aggregator_stats(1);
  EXPECT_EQ(dead_stats.records_forwarded,
            2 * cfg.federation.agg_batch_records);
  EXPECT_EQ(dead_stats.lost_dead,
            dead_stats.records_received - dead_stats.records_forwarded);
  // Member LIS ledgers are untouched by the aggregator's death: the
  // tombstone drain keeps consuming their sends.
  const core::LisStats shard_lis = env.shard_lis_stats(1);
  EXPECT_EQ(shard_lis.lost_send, 0u);
  EXPECT_EQ(shard_lis.lost_dead, 0u);
  EXPECT_EQ(shard_lis.records_forwarded, dead_stats.records_received);
  expect_exact_conservation(env);
  // Per-shard slices: only shard 1 degraded.
  EXPECT_EQ(env.shard_degradation(1).shards_dead, 1u);
  EXPECT_EQ(env.shard_degradation(0).shards_dead, 0u);
  EXPECT_FALSE(env.shard_degradation(0).degraded());
}

TEST(FederationChaos, SameSeedProducesBitIdenticalLedgers) {
  auto run = [](std::uint64_t seed) {
    EnvironmentConfig cfg = base_config(16, 4);
    cfg.federation.assign = ShardAssign::kModulo;
    FaultPlan plan;
    plan.send_failure(FaultSite::kTpSend, 0.15);
    plan.send_failure(FaultSite::kAggForward, 0.25);
    plan.crash(FaultSite::kAggForward, /*at_op=*/4, /*node=*/2);
    FaultInjector inj(plan, seed);
    RetryPolicy retry;
    retry.max_attempts = 2;
    retry.base_backoff_ns = 100;
    FederatedEnvironment env(cfg);
    env.set_fault(&inj, retry);
    env.start();
    for (std::uint64_t i = 0; i < 250; ++i)
      for (std::uint32_t n = 0; n < cfg.nodes; ++n) env.record(ev(n, i));
    env.stop();
    expect_exact_conservation(env);
    return ledger_of(env);
  };
  const FederationLedger a = run(99), b = run(99), c = run(100);
  EXPECT_TRUE(a == b) << "same seed produced different conservation ledgers";
  EXPECT_FALSE(a == c) << "different seeds produced identical chaos";
}

TEST(FederationChaos, DeadLisRollsUpThroughBothLevels) {
  EnvironmentConfig cfg = base_config(12, 3);
  FaultPlan plan;
  plan.crash(FaultSite::kTpSend, /*at_op=*/2, /*node=*/5);
  FaultInjector inj(plan, 7);
  FederatedEnvironment env(cfg);
  env.set_fault(&inj, RetryPolicy{});
  env.start();
  for (std::uint64_t i = 0; i < 200; ++i)
    for (std::uint32_t n = 0; n < cfg.nodes; ++n) env.record(ev(n, i));
  env.stop();

  EXPECT_TRUE(env.lis(5).dead());
  const auto d = env.degradation();
  EXPECT_EQ(d.lises_dead, 1u);
  EXPECT_GT(d.records_lost_dead + d.records_lost_send, 0u);
  EXPECT_EQ(d.shards_dead, 0u);
  expect_exact_conservation(env);
  // Only node 5's shard saw degradation.
  const std::uint32_t s5 = env.shard_of(5);
  for (std::uint32_t s = 0; s < env.shards(); ++s) {
    if (s == s5) continue;
    EXPECT_FALSE(env.shard_degradation(s).degraded()) << "shard " << s;
  }
  EXPECT_EQ(env.shard_degradation(s5).lises_dead, 1u);
}

}  // namespace
}  // namespace prism
