// Trace files (round trip, corruption detection) and k-way merging.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "stats/rng.hpp"
#include "trace/file.hpp"
#include "trace/merge.hpp"

namespace prism::trace {
namespace {

namespace fs = std::filesystem;

EventRecord rec(std::uint64_t ts, std::uint32_t node = 0,
                std::uint64_t seq = 0) {
  EventRecord r;
  r.timestamp = ts;
  r.node = node;
  r.seq = seq;
  return r;
}

class TraceFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = fs::temp_directory_path() /
            ("prism_trace_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name() +
             ".trc");
  }
  void TearDown() override { std::error_code ec; fs::remove(path_, ec); }
  fs::path path_;
};

TEST_F(TraceFileTest, RoundTrip) {
  {
    TraceFileWriter w(path_);
    for (std::uint64_t i = 0; i < 100; ++i) w.write(rec(i * 10, i % 4, i));
    w.close();
    EXPECT_EQ(w.records_written(), 100u);
  }
  TraceFileReader r(path_);
  ASSERT_EQ(r.record_count(), 100u);
  EXPECT_EQ(r.records()[42].timestamp, 420u);
  EXPECT_EQ(r.records()[42].node, 42u % 4);
}

TEST_F(TraceFileTest, BatchWrite) {
  std::vector<EventRecord> batch;
  for (int i = 0; i < 50; ++i) batch.push_back(rec(i));
  {
    TraceFileWriter w(path_);
    w.write(batch);
    w.close();
  }
  TraceFileReader r(path_);
  EXPECT_EQ(r.record_count(), 50u);
}

TEST_F(TraceFileTest, DestructorCloses) {
  { TraceFileWriter w(path_); w.write(rec(7)); }
  TraceFileReader r(path_);
  EXPECT_EQ(r.record_count(), 1u);
}

TEST_F(TraceFileTest, EmptyFileValid) {
  { TraceFileWriter w(path_); w.close(); }
  TraceFileReader r(path_);
  EXPECT_EQ(r.record_count(), 0u);
}

TEST_F(TraceFileTest, BadMagicRejected) {
  { std::ofstream out(path_, std::ios::binary); out << "not a trace file at all........."; }
  EXPECT_THROW(TraceFileReader r(path_), std::runtime_error);
}

TEST_F(TraceFileTest, TruncatedFileRejected) {
  {
    TraceFileWriter w(path_);
    for (int i = 0; i < 10; ++i) w.write(rec(i));
    w.close();
  }
  fs::resize_file(path_, fs::file_size(path_) - 13);
  EXPECT_THROW(TraceFileReader r(path_), std::runtime_error);
}

TEST_F(TraceFileTest, MissingFileRejected) {
  EXPECT_THROW(TraceFileReader r(path_), std::runtime_error);
}

TEST_F(TraceFileTest, CsvDumpContainsHeaderAndRows) {
  std::vector<EventRecord> recs{rec(1, 0, 0), rec(2, 1, 0)};
  recs[0].kind = EventKind::kSend;
  write_csv(path_, recs);
  std::ifstream in(path_);
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("timestamp,node"), std::string::npos);
  std::getline(in, line);
  EXPECT_NE(line.find("send"), std::string::npos);
}

// ---- merging ------------------------------------------------------------------

TEST(Merge, SortedStreamsMergeSorted) {
  std::vector<std::vector<EventRecord>> streams(3);
  for (std::uint64_t i = 0; i < 30; ++i)
    streams[i % 3].push_back(rec(i, i % 3, i / 3));
  auto merged = merge_sorted(streams);
  ASSERT_EQ(merged.size(), 30u);
  EXPECT_TRUE(is_time_ordered(merged));
  for (std::uint64_t i = 0; i < 30; ++i)
    EXPECT_EQ(merged[i].timestamp, i);
}

TEST(Merge, EmptyStreamsHandled) {
  EXPECT_TRUE(merge_sorted({}).empty());
  EXPECT_TRUE(merge_sorted({{}, {}, {}}).empty());
  std::vector<std::vector<EventRecord>> one{{rec(1)}, {}};
  EXPECT_EQ(merge_sorted(one).size(), 1u);
}

TEST(Merge, RejectsUnsortedInput) {
  std::vector<std::vector<EventRecord>> bad{{rec(5), rec(1)}};
  EXPECT_THROW(merge_sorted(bad), std::invalid_argument);
}

TEST(Merge, TieBreakIsDeterministic) {
  // Same timestamp on two streams: lower node id first (RecordOrder).
  std::vector<std::vector<EventRecord>> streams{{rec(10, 1)}, {rec(10, 0)}};
  auto merged = merge_sorted(streams);
  EXPECT_EQ(merged[0].node, 0u);
  EXPECT_EQ(merged[1].node, 1u);
}

TEST(Merge, MergeAnySortsArbitraryInput) {
  stats::Rng rng(99);
  std::vector<std::vector<EventRecord>> streams(4);
  for (int i = 0; i < 400; ++i)
    streams[rng.next_below(4)].push_back(
        rec(rng.next_below(1000), static_cast<std::uint32_t>(rng.next_below(4))));
  auto merged = merge_any(streams);
  EXPECT_EQ(merged.size(), 400u);
  EXPECT_TRUE(is_time_ordered(merged));
}

TEST(Merge, LargeKWayStress) {
  std::vector<std::vector<EventRecord>> streams(32);
  std::uint64_t ts = 0;
  for (int round = 0; round < 100; ++round)
    for (std::size_t s = 0; s < 32; ++s)
      streams[s].push_back(rec(ts++, static_cast<std::uint32_t>(s)));
  auto merged = merge_sorted(streams);
  EXPECT_EQ(merged.size(), 3200u);
  EXPECT_TRUE(is_time_ordered(merged));
}

TEST(Merge, IsTimeOrderedDetectsViolation) {
  std::vector<EventRecord> bad{rec(2), rec(1)};
  EXPECT_FALSE(is_time_ordered(bad));
  std::vector<EventRecord> good{rec(1), rec(2)};
  EXPECT_TRUE(is_time_ordered(good));
}

}  // namespace
}  // namespace prism::trace
