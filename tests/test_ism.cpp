// The ISM: SISO and MISO input handling, causal ordering on/off, storage
// tier, latency accounting, and clean shutdown draining.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "core/clock.hpp"
#include "core/ism.hpp"
#include "trace/causal.hpp"

namespace prism::core {
namespace {

namespace fs = std::filesystem;

trace::EventRecord rec(std::uint32_t node, std::uint64_t seq,
                       trace::EventKind kind = trace::EventKind::kUserEvent,
                       std::uint32_t peer = 0, std::uint16_t tag = 0) {
  trace::EventRecord r;
  r.timestamp = now_ns();
  r.node = node;
  r.seq = seq;
  r.kind = kind;
  r.peer = peer;
  r.tag = tag;
  return r;
}

class RecordingTool final : public Tool {
 public:
  std::string_view name() const override { return "recording"; }
  void consume(const trace::EventRecord& r) override {
    std::lock_guard lk(mu_);
    records_.push_back(r);
  }
  std::vector<trace::EventRecord> records() const {
    std::lock_guard lk(mu_);
    return records_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<trace::EventRecord> records_;
};

DataBatch batch_of(std::uint32_t node,
                   std::vector<trace::EventRecord> records) {
  DataBatch b;
  b.source_node = node;
  b.t_sent_ns = now_ns();
  b.records = std::move(records);
  return b;
}

TEST(Ism, SisoDispatchesEverythingInOrder) {
  TransferProtocol tp(TpFlavor::kPipe, 2, 1, 64);
  IsmConfig cfg;
  cfg.input = InputConfig::kSiso;
  Ism ism(tp, cfg);
  auto tool = std::make_shared<RecordingTool>();
  ism.attach_tool(tool);
  ism.start();
  tp.data_link(0).push(batch_of(0, {rec(0, 0), rec(0, 1)}));
  tp.data_link(0).push(batch_of(1, {rec(1, 0)}));
  ism.stop();
  const auto out = tool->records();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_LT(trace::first_causal_violation(out), 0);
  const auto s = ism.stats();
  EXPECT_EQ(s.batches_received, 2u);
  EXPECT_EQ(s.records_received, 3u);
  EXPECT_EQ(s.records_dispatched, 3u);
  EXPECT_EQ(s.processing_latency_ns.count(), 3u);
  EXPECT_TRUE(s.conserved());
}

TEST(Ism, MisoConsumesAllLinks) {
  TransferProtocol tp(TpFlavor::kPipe, 3, 3, 64);
  IsmConfig cfg;
  cfg.input = InputConfig::kMiso;
  Ism ism(tp, cfg);
  auto tool = std::make_shared<RecordingTool>();
  ism.attach_tool(tool);
  ism.start();
  for (std::uint32_t n = 0; n < 3; ++n)
    tp.data_link_for(n).push(batch_of(n, {rec(n, 0), rec(n, 1)}));
  ism.stop();
  EXPECT_EQ(tool->records().size(), 6u);
}

TEST(Ism, CausalOrderingReordersAcrossBatches) {
  TransferProtocol tp(TpFlavor::kPipe, 2, 1, 64);
  IsmConfig cfg;
  cfg.causal_ordering = true;
  Ism ism(tp, cfg);
  auto tool = std::make_shared<RecordingTool>();
  ism.attach_tool(tool);
  ism.start();
  // The recv arrives before its matching send (different batches).
  tp.data_link(0).push(
      batch_of(1, {rec(1, 0, trace::EventKind::kRecv, 0, 5)}));
  tp.data_link(0).push(
      batch_of(0, {rec(0, 0, trace::EventKind::kSend, 1, 5)}));
  ism.stop();
  const auto out = tool->records();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].kind, trace::EventKind::kSend);
  EXPECT_EQ(out[1].kind, trace::EventKind::kRecv);
  EXPECT_GT(ism.stats().held_back, 0u);
  EXPECT_GT(ism.stats().hold_back_ratio, 0.0);
  EXPECT_TRUE(ism.stats().conserved());
  // Lamport stamps assigned in release order.
  EXPECT_LT(out[0].lamport, out[1].lamport);
}

TEST(Ism, OrderingDisabledPreservesArrivalOrder) {
  TransferProtocol tp(TpFlavor::kPipe, 2, 1, 64);
  IsmConfig cfg;
  cfg.causal_ordering = false;
  Ism ism(tp, cfg);
  auto tool = std::make_shared<RecordingTool>();
  ism.attach_tool(tool);
  ism.start();
  tp.data_link(0).push(
      batch_of(1, {rec(1, 5, trace::EventKind::kRecv, 0, 5)}));
  ism.stop();
  ASSERT_EQ(tool->records().size(), 1u);  // dispatched despite no send
  EXPECT_EQ(tool->records()[0].lamport, 1u);
}

TEST(Ism, StorageTierWritesTraceFile) {
  const auto path = fs::temp_directory_path() / "prism_ism_storage.trc";
  {
    TransferProtocol tp(TpFlavor::kPipe, 1, 1, 64);
    IsmConfig cfg;
    cfg.storage_path = path;
    Ism ism(tp, cfg);
    ism.start();
    tp.data_link(0).push(batch_of(0, {rec(0, 0), rec(0, 1), rec(0, 2)}));
    ism.stop();
    EXPECT_EQ(ism.stats().records_stored, 3u);
  }
  trace::TraceFileReader r(path);
  EXPECT_EQ(r.record_count(), 3u);
  fs::remove(path);
}

TEST(Ism, ControlMessagesIgnoredOnDataPlane) {
  TransferProtocol tp(TpFlavor::kPipe, 1, 1, 64);
  Ism ism(tp, IsmConfig{});
  auto tool = std::make_shared<RecordingTool>();
  ism.attach_tool(tool);
  ism.start();
  tp.data_link(0).push(Message(ControlMessage{ControlKind::kStart, 0, 0}));
  tp.data_link(0).push(batch_of(0, {rec(0, 0)}));
  ism.stop();
  EXPECT_EQ(tool->records().size(), 1u);
}

TEST(Ism, BroadcastControlReachesLinks) {
  TransferProtocol tp(TpFlavor::kPipe, 2, 1, 64);
  Ism ism(tp, IsmConfig{});
  ism.broadcast_control(ControlMessage{ControlKind::kStop, 0, 0});
  EXPECT_TRUE(tp.control_link(0).try_pop().has_value());
  EXPECT_TRUE(tp.control_link(1).try_pop().has_value());
}

TEST(Ism, MismatchedConfigRejected) {
  TransferProtocol siso_tp(TpFlavor::kPipe, 3, 1, 64);
  IsmConfig miso_cfg;
  miso_cfg.input = InputConfig::kMiso;
  EXPECT_THROW(Ism(siso_tp, miso_cfg), std::invalid_argument);

  TransferProtocol miso_tp(TpFlavor::kPipe, 3, 3, 64);
  IsmConfig siso_cfg;
  siso_cfg.input = InputConfig::kSiso;
  EXPECT_THROW(Ism(miso_tp, siso_cfg), std::invalid_argument);
}

TEST(Ism, AttachToolAfterStartRejected) {
  TransferProtocol tp(TpFlavor::kPipe, 1, 1, 64);
  Ism ism(tp, IsmConfig{});
  ism.start();
  EXPECT_THROW(ism.attach_tool(std::make_shared<RecordingTool>()),
               std::logic_error);
  ism.stop();
}

TEST(Ism, StopIsIdempotentAndDestructorSafe) {
  TransferProtocol tp(TpFlavor::kPipe, 1, 1, 64);
  auto ism = std::make_unique<Ism>(tp, IsmConfig{});
  ism->start();
  ism->stop();
  ism->stop();
  ism.reset();  // destructor after stop
  SUCCEED();
}

TEST(Ism, TinyOutputBufferBackpressureStillConserves) {
  // Output capacity 1: the dispatcher is the bottleneck; the processor
  // blocks pushing into the output buffer, but nothing is lost.
  TransferProtocol tp(TpFlavor::kPipe, 1, 1, 64);
  IsmConfig cfg;
  cfg.causal_ordering = false;
  cfg.output_capacity = 1;
  Ism ism(tp, cfg);
  auto tool = std::make_shared<RecordingTool>();
  ism.attach_tool(tool);
  ism.start();
  for (int b = 0; b < 20; ++b) {
    std::vector<trace::EventRecord> recs;
    for (int i = 0; i < 10; ++i)
      recs.push_back(rec(0, static_cast<std::uint64_t>(b * 10 + i)));
    tp.data_link(0).push(batch_of(0, std::move(recs)));
  }
  ism.stop();
  EXPECT_EQ(tool->records().size(), 200u);
  EXPECT_EQ(ism.stats().records_dispatched, 200u);
  EXPECT_TRUE(ism.stats().conserved());
}

TEST(Ism, P95LatencyReported) {
  TransferProtocol tp(TpFlavor::kPipe, 1, 1, 64);
  IsmConfig cfg;
  cfg.causal_ordering = false;
  Ism ism(tp, cfg);
  ism.attach_tool(std::make_shared<RecordingTool>());
  ism.start();
  std::vector<trace::EventRecord> recs;
  for (int i = 0; i < 50; ++i) recs.push_back(rec(0, i));
  tp.data_link(0).push(batch_of(0, std::move(recs)));
  ism.stop();
  const auto s = ism.stats();
  EXPECT_GT(s.processing_latency_p95_ns, 0.0);
  EXPECT_GE(s.processing_latency_p95_ns,
            s.processing_latency_ns.mean() * 0.5);
}

TEST(Ism, HighVolumeThroughSisoConserved) {
  TransferProtocol tp(TpFlavor::kPipe, 4, 1, 256);
  IsmConfig cfg;
  cfg.causal_ordering = false;
  Ism ism(tp, cfg);
  auto tool = std::make_shared<RecordingTool>();
  ism.attach_tool(tool);
  ism.start();
  std::uint64_t total = 0;
  for (std::uint32_t n = 0; n < 4; ++n) {
    for (int b = 0; b < 50; ++b) {
      std::vector<trace::EventRecord> recs;
      for (int i = 0; i < 20; ++i)
        recs.push_back(rec(n, static_cast<std::uint64_t>(b * 20 + i)));
      total += recs.size();
      tp.data_link_for(n).push(batch_of(n, std::move(recs)));
    }
  }
  ism.stop();
  EXPECT_EQ(tool->records().size(), total);
  EXPECT_EQ(ism.stats().records_dispatched, total);
  EXPECT_TRUE(ism.stats().conserved());
}

TEST(Ism, UnresolvableHoldBackResidueStaysAccounted) {
  // A recv whose matching send never arrives is causally unresolvable: it
  // stays held at stop, and conservation counts it via still_held —
  // records_received == dispatched + still_held + in_output.
  TransferProtocol tp(TpFlavor::kPipe, 2, 1, 64);
  IsmConfig cfg;
  cfg.causal_ordering = true;
  Ism ism(tp, cfg);
  auto tool = std::make_shared<RecordingTool>();
  ism.attach_tool(tool);
  ism.start();
  tp.data_link(0).push(
      batch_of(1, {rec(1, 0, trace::EventKind::kRecv, 0, 9)}));
  tp.data_link(0).push(batch_of(0, {rec(0, 0)}));
  ism.stop();
  const auto s = ism.stats();
  EXPECT_EQ(s.records_received, 2u);
  EXPECT_EQ(s.records_dispatched, 1u);  // the plain record
  EXPECT_EQ(s.still_held, 1u);          // the orphaned recv
  EXPECT_TRUE(s.conserved());
}

}  // namespace
}  // namespace prism::core
