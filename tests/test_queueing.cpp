// Queueing layer: queues (conservation, disciplines), single-server station
// validated against M/M/1 and M/G/1 theory, and the analytic formulas.
#include <gtest/gtest.h>

#include <memory>

#include "queueing/analytic.hpp"
#include "queueing/job.hpp"
#include "queueing/queue.hpp"
#include "queueing/server.hpp"
#include "queueing/source.hpp"
#include "sim/engine.hpp"

namespace prism::queueing {
namespace {

Job make_job(std::uint64_t id, std::int32_t prio = 0) {
  Job j;
  j.id = id;
  j.priority = prio;
  return j;
}

// ---- Queue -------------------------------------------------------------------

TEST(Queue, FifoOrder) {
  Queue q;
  q.push(0.0, make_job(1));
  q.push(1.0, make_job(2));
  q.push(2.0, make_job(3));
  EXPECT_EQ(q.pop(3.0)->id, 1u);
  EXPECT_EQ(q.pop(3.0)->id, 2u);
  EXPECT_EQ(q.pop(3.0)->id, 3u);
  EXPECT_FALSE(q.pop(3.0).has_value());
}

TEST(Queue, PriorityOrderStable) {
  Queue q(Discipline::kPriority);
  q.push(0.0, make_job(1, 5));
  q.push(0.0, make_job(2, 1));
  q.push(0.0, make_job(3, 5));
  q.push(0.0, make_job(4, 0));
  EXPECT_EQ(q.pop(1.0)->id, 4u);
  EXPECT_EQ(q.pop(1.0)->id, 2u);
  EXPECT_EQ(q.pop(1.0)->id, 1u);  // same priority: insertion order
  EXPECT_EQ(q.pop(1.0)->id, 3u);
}

TEST(Queue, CapacityDrops) {
  Queue q(Discipline::kFifo, 2);
  EXPECT_TRUE(q.push(0.0, make_job(1)));
  EXPECT_TRUE(q.push(0.0, make_job(2)));
  EXPECT_FALSE(q.push(0.0, make_job(3)));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_TRUE(q.full());
  EXPECT_TRUE(q.conserved());
}

TEST(Queue, ConservationInvariantUnderChurn) {
  Queue q(Discipline::kFifo, 8);
  std::uint64_t id = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 5; ++i) q.push(round, make_job(++id));
    for (int i = 0; i < 3; ++i) q.pop(round + 0.5);
    EXPECT_TRUE(q.conserved());
  }
}

TEST(Queue, MeanLengthTimeWeighted) {
  Queue q;
  q.push(0.0, make_job(1));   // len 1 from t=0
  q.push(10.0, make_job(2));  // len 2 from t=10
  q.pop(20.0);                // len 1 from t=20
  q.pop(30.0);                // len 0 from t=30
  // integral = 1*10 + 2*10 + 1*10 = 40 over 30.
  EXPECT_NEAR(q.mean_length_until(30.0), 40.0 / 30.0, 1e-12);
  EXPECT_DOUBLE_EQ(q.max_length(), 2.0);
}

TEST(Queue, WaitingTimesRecorded) {
  Queue q;
  q.push(0.0, make_job(1));
  q.push(0.0, make_job(2));
  q.pop(4.0);
  q.pop(6.0);
  EXPECT_DOUBLE_EQ(q.waiting_times().mean(), 5.0);
}

TEST(Queue, RejectsZeroCapacity) {
  EXPECT_THROW(Queue(Discipline::kFifo, 0), std::invalid_argument);
}

// ---- Analytic formulas ---------------------------------------------------------

TEST(Analytic, Mm1KnownValues) {
  // rho = 0.5: L = 1, W_total = 2*E[S].
  EXPECT_DOUBLE_EQ(mm1_mean_number(0.5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(mm1_mean_sojourn(0.5, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(mm1_mean_wait(0.5, 1.0), 1.0);
}

TEST(Analytic, Mg1ReducesToMm1ForExponentialService) {
  // Exponential service: Var = E[S]^2; P-K must equal the M/M/1 wait.
  const double lambda = 0.7, es = 1.0;
  EXPECT_NEAR(mg1_mean_wait(lambda, es, es * es), mm1_mean_wait(lambda, es),
              1e-12);
}

TEST(Analytic, DeterministicServiceHalvesWait) {
  // M/D/1 wait is half the M/M/1 wait.
  const double lambda = 0.8, es = 1.0;
  EXPECT_NEAR(mg1_mean_wait(lambda, es, 0.0),
              0.5 * mm1_mean_wait(lambda, es), 1e-12);
}

TEST(Analytic, RejectsUnstable) {
  EXPECT_THROW(mm1_mean_number(1.0, 1.0), std::domain_error);
  EXPECT_THROW(mm1_mean_number(2.0, 1.0), std::domain_error);
  EXPECT_THROW(mg1_mean_wait(1.5, 1.0, 1.0), std::domain_error);
  EXPECT_THROW(mg1_mean_wait(0.5, 1.0, -1.0), std::domain_error);
}

// ---- Source + Server simulation vs theory ---------------------------------------

struct SimulatedStation {
  double mean_sojourn;
  double mean_queue_len;
  double utilization;
  std::uint64_t completions;
};

SimulatedStation run_station(double lambda, std::shared_ptr<stats::Distribution> svc,
                             double horizon, std::uint64_t seed) {
  sim::Engine eng;
  stats::Rng rng(seed);
  auto sink_count = std::make_shared<std::uint64_t>(0);
  auto server = std::make_shared<Server>(
      eng, svc, rng.split(), [sink_count](Job&&) { ++*sink_count; });
  Source src(eng, std::make_shared<stats::Exponential>(lambda), rng.split(),
             0, [server](Job&& j) { server->submit(std::move(j)); });
  src.start();
  eng.run_until(horizon);
  server->finalize(eng.now());
  SimulatedStation out;
  out.mean_sojourn = server->sojourn_times().mean();
  out.mean_queue_len = server->queue().mean_length_until(eng.now());
  out.utilization = server->utilization();
  out.completions = server->completions();
  return out;
}

TEST(ServerSim, Mm1SojournMatchesTheory) {
  const double lambda = 0.5, es = 1.0;
  auto st = run_station(
      lambda, std::make_shared<stats::Exponential>(1.0 / es), 200000, 42);
  EXPECT_NEAR(st.mean_sojourn, mm1_mean_sojourn(lambda, es), 0.1);
  EXPECT_NEAR(st.utilization, 0.5, 0.02);
}

TEST(ServerSim, Mm1QueueLengthMatchesLittle) {
  // Mean number waiting = lambda * W_q.
  const double lambda = 0.6, es = 1.0;
  auto st = run_station(
      lambda, std::make_shared<stats::Exponential>(1.0 / es), 200000, 77);
  EXPECT_NEAR(st.mean_queue_len, lambda * mm1_mean_wait(lambda, es), 0.1);
}

TEST(ServerSim, Md1WaitBelowMm1) {
  const double lambda = 0.8, es = 1.0;
  auto stD = run_station(lambda, std::make_shared<stats::Deterministic>(es),
                         100000, 5);
  auto stM = run_station(
      lambda, std::make_shared<stats::Exponential>(1.0 / es), 100000, 5);
  EXPECT_LT(stD.mean_sojourn, stM.mean_sojourn);
  EXPECT_NEAR(stD.mean_sojourn,
              mg1_mean_sojourn(lambda, es, 0.0), 0.3);
}

TEST(ServerSim, ThroughputEqualsArrivalRateWhenStable) {
  const double lambda = 0.4;
  auto st = run_station(lambda, std::make_shared<stats::Exponential>(1.0),
                        50000, 9);
  EXPECT_NEAR(static_cast<double>(st.completions) / 50000.0, lambda, 0.02);
}

TEST(Source, RespectsLimit) {
  sim::Engine eng;
  stats::Rng rng(3);
  int received = 0;
  Source src(eng, std::make_shared<stats::Deterministic>(1.0), rng, 0,
             [&](Job&&) { ++received; });
  src.set_limit(25);
  src.start();
  eng.run();
  EXPECT_EQ(received, 25);
  EXPECT_EQ(src.generated(), 25u);
}

TEST(Source, StopHaltsGeneration) {
  sim::Engine eng;
  stats::Rng rng(4);
  int received = 0;
  Source src(eng, std::make_shared<stats::Deterministic>(1.0), rng, 0,
             [&](Job&& j) {
               ++received;
               if (j.seq == 9) eng.stop();
             });
  src.start();
  eng.run();
  EXPECT_EQ(received, 10);
}

TEST(Source, DecorateHookApplied) {
  sim::Engine eng;
  stats::Rng rng(5);
  std::vector<JobClass> classes;
  Source src(
      eng, std::make_shared<stats::Deterministic>(1.0), rng, 7,
      [&](Job&& j) { classes.push_back(j.cls); },
      [](Job& j) { j.cls = JobClass::kInstrumentation; });
  src.set_limit(3);
  src.start();
  eng.run();
  ASSERT_EQ(classes.size(), 3u);
  for (auto c : classes) EXPECT_EQ(c, JobClass::kInstrumentation);
}

TEST(Server, DropsWhenQueueFull) {
  sim::Engine eng;
  stats::Rng rng(6);
  auto server = std::make_shared<Server>(
      eng, std::make_shared<stats::Deterministic>(100.0), rng, [](Job&&) {},
      Discipline::kFifo, 2);
  // One in service + two queued; the fourth drops.
  EXPECT_TRUE(server->submit(make_job(1)));
  EXPECT_TRUE(server->submit(make_job(2)));
  EXPECT_TRUE(server->submit(make_job(3)));
  EXPECT_FALSE(server->submit(make_job(4)));
  EXPECT_EQ(server->queue().drops(), 1u);
}

}  // namespace
}  // namespace prism::queueing
