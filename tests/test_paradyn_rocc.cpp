// Paradyn ROCC scenario: Figure 9 shape targets and the factorial design.
#include <gtest/gtest.h>

#include "paradyn/rocc_model.hpp"

namespace prism::paradyn {
namespace {

ParadynRoccParams fast_params() {
  ParadynRoccParams p;
  p.horizon_ms = 10'000;  // short horizon keeps tests quick
  return p;
}

TEST(ParadynRocc, SingleRunProducesSaneMetrics) {
  const auto m = run_paradyn_rocc(fast_params(), stats::Rng(1));
  EXPECT_GT(m.pd_interference_ms, 0.0);
  EXPECT_LT(m.pd_interference_ms, 10'000.0);
  EXPECT_GT(m.pd_cpu_utilization_pct, 0.0);
  EXPECT_LT(m.pd_cpu_utilization_pct, 100.0);
  EXPECT_GT(m.app_requests, 0u);
  EXPECT_LE(m.cpu_utilization, 1.0 + 1e-9);
}

TEST(ParadynRocc, DeterministicGivenSeed) {
  const auto a = run_paradyn_rocc(fast_params(), stats::Rng(7));
  const auto b = run_paradyn_rocc(fast_params(), stats::Rng(7));
  EXPECT_DOUBLE_EQ(a.pd_interference_ms, b.pd_interference_ms);
  EXPECT_EQ(a.app_requests, b.app_requests);
}

TEST(ParadynRocc, Fig9aInterferenceDecreasesWithPeriod) {
  // "direct perturbation to local application processes decreases as the
  // sampling rate decreases, that is, as the period increases."
  const auto pts = sweep_sampling_period(
      fast_params(), {50, 150, 300, 500}, /*replications=*/5, /*seed=*/42);
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_LT(pts[i].interference.mean, pts[i - 1].interference.mean)
        << "period " << pts[i].x;
}

TEST(ParadynRocc, Fig9aSuperlinearThenLevelsOff) {
  // The drop from 50->150 ms dwarfs the drop from 300->500 ms.
  const auto pts = sweep_sampling_period(
      fast_params(), {50, 150, 300, 500}, 5, 43);
  const double early_drop = pts[0].interference.mean - pts[1].interference.mean;
  const double late_drop = pts[2].interference.mean - pts[3].interference.mean;
  EXPECT_GT(early_drop, 2.0 * late_drop);
}

TEST(ParadynRocc, Fig9bUtilizationDecreasesWithProcesses) {
  // "CPU utilization by the daemon decreases as the number of application
  // processes becomes large."
  const auto pts =
      sweep_app_processes(fast_params(), {1, 8, 24}, 5, 44);
  EXPECT_GT(pts[0].utilization_pct.mean, pts[1].utilization_pct.mean);
  EXPECT_GT(pts[1].utilization_pct.mean, pts[2].utilization_pct.mean);
}

TEST(ParadynRocc, SaturationRaisesQueueingDelay) {
  // The §3.2.3 bottleneck: contention grows daemon servicing latency.
  const auto pts = sweep_app_processes(fast_params(), {1, 24}, 5, 45);
  EXPECT_GT(pts[1].queueing_delay.mean, pts[0].queueing_delay.mean);
}

TEST(ParadynRocc, InterferenceScalesWithHorizon) {
  auto p = fast_params();
  const auto short_run = run_paradyn_rocc(p, stats::Rng(9));
  p.horizon_ms *= 2;
  const auto long_run = run_paradyn_rocc(p, stats::Rng(9));
  EXPECT_NEAR(long_run.pd_interference_ms / short_run.pd_interference_ms, 2.0,
              0.4);
}

TEST(ParadynRocc, FactorialFindsPeriodDominantForInterference) {
  // Over the paper's factor ranges, the sampling period drives the daemon's
  // absolute CPU time far more than the process count does.
  const auto res = paradyn_factorial(fast_params(), 50, 500, 2, 16,
                                     /*r=*/8, "interference", 46);
  EXPECT_EQ(res.effect_names[res.dominant_effect()], "period");
  EXPECT_LT(res.error_fraction, 0.5);
}

TEST(ParadynRocc, FactorialUtilizationRespondsToProcs) {
  const auto res = paradyn_factorial(fast_params(), 50, 500, 2, 16, 8,
                                     "utilization_pct", 47);
  // More processes -> lower daemon share: negative procs effect.
  std::size_t procs_idx = 0;
  for (std::size_t i = 0; i < res.effect_names.size(); ++i)
    if (res.effect_names[i] == "procs") procs_idx = i;
  ASSERT_GT(procs_idx, 0u);
  EXPECT_LT(res.effects[procs_idx], 0.0);
}

TEST(ParadynRocc, FactorialRejectsUnknownResponse) {
  EXPECT_THROW(
      paradyn_factorial(fast_params(), 50, 500, 2, 16, 2, "bogus", 1),
      std::invalid_argument);
}

TEST(ParadynRocc, ValidatesParameters) {
  ParadynRoccParams p;
  p.sampling_period_ms = 0;
  EXPECT_THROW(run_paradyn_rocc(p, stats::Rng(1)), std::invalid_argument);
  p = ParadynRoccParams{};
  p.app_processes = 0;
  EXPECT_THROW(run_paradyn_rocc(p, stats::Rng(1)), std::invalid_argument);
  p = ParadynRoccParams{};
  p.quantum_ms = 0;
  EXPECT_THROW(run_paradyn_rocc(p, stats::Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace prism::paradyn
