// EventRecord layout and TraceBuffer semantics (drop / overwrite policies,
// conservation).
#include <gtest/gtest.h>

#include "trace/buffer.hpp"
#include "trace/record.hpp"

namespace prism::trace {
namespace {

EventRecord rec(std::uint64_t ts, std::uint64_t seq = 0) {
  EventRecord r;
  r.timestamp = ts;
  r.seq = seq;
  return r;
}

TEST(EventRecord, PackUnpackDoubleRoundTrips) {
  for (double v : {0.0, 1.5, -3.25, 1e-300, 1e300}) {
    EXPECT_DOUBLE_EQ(unpack_double(pack_double(v)), v);
  }
}

TEST(EventRecord, KindNamesAreDistinct) {
  EXPECT_EQ(to_string(EventKind::kSend), "send");
  EXPECT_EQ(to_string(EventKind::kRecv), "recv");
  EXPECT_EQ(to_string(EventKind::kFlushBegin), "flush_begin");
  EXPECT_NE(to_string(EventKind::kSample), to_string(EventKind::kUserEvent));
}

TEST(RecordOrder, OrdersByTimestampThenIds) {
  RecordOrder lt;
  EventRecord a = rec(1), b = rec(2);
  EXPECT_TRUE(lt(a, b));
  EXPECT_FALSE(lt(b, a));
  EventRecord c = rec(5), d = rec(5);
  c.node = 0;
  d.node = 1;
  EXPECT_TRUE(lt(c, d));
  d.node = 0;
  c.seq = 1;
  d.seq = 2;
  EXPECT_TRUE(lt(c, d));
}

TEST(TraceBuffer, FillsToCapacityThenDrops) {
  TraceBuffer b(3);
  EXPECT_TRUE(b.append(rec(1)));
  EXPECT_TRUE(b.append(rec(2)));
  EXPECT_TRUE(b.append(rec(3)));
  EXPECT_TRUE(b.full());
  EXPECT_FALSE(b.append(rec(4)));
  EXPECT_EQ(b.dropped(), 1u);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.offered(), 4u);
}

TEST(TraceBuffer, DrainResetsAndCounts) {
  TraceBuffer b(2);
  b.append(rec(1));
  b.append(rec(2));
  auto drained = b.drain();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.flushes(), 1u);
  EXPECT_TRUE(b.append(rec(3)));
  EXPECT_TRUE(b.conserved(drained.size()));
}

TEST(TraceBuffer, OverwritePolicyKeepsNewest) {
  TraceBuffer b(3, OverflowPolicy::kOverwrite);
  for (std::uint64_t i = 1; i <= 5; ++i) EXPECT_TRUE(b.append(rec(i)));
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.overwritten(), 2u);
  // Storage contains 4, 5, 3 (circular); verify 1 and 2 gone, 4 and 5 kept.
  bool has4 = false, has5 = false, has1 = false;
  for (const auto& r : b.contents()) {
    if (r.timestamp == 4) has4 = true;
    if (r.timestamp == 5) has5 = true;
    if (r.timestamp == 1) has1 = true;
  }
  EXPECT_TRUE(has4);
  EXPECT_TRUE(has5);
  EXPECT_FALSE(has1);
}

TEST(TraceBuffer, ConservationWithDropsAndOverwrites) {
  TraceBuffer drop(4, OverflowPolicy::kDrop);
  TraceBuffer wrap(4, OverflowPolicy::kOverwrite);
  std::uint64_t drained_drop = 0, drained_wrap = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    drop.append(rec(i));
    wrap.append(rec(i));
    if (i % 7 == 6) {
      drained_drop += drop.drain().size();
      drained_wrap += wrap.drain().size();
    }
  }
  EXPECT_TRUE(drop.conserved(drained_drop));
  EXPECT_TRUE(wrap.conserved(drained_wrap));
}

TEST(TraceBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(TraceBuffer(0), std::invalid_argument);
}

TEST(TraceBuffer, ContentsPreserveInsertionOrder) {
  TraceBuffer b(10);
  for (std::uint64_t i = 0; i < 5; ++i) b.append(rec(100 + i, i));
  auto view = b.contents();
  ASSERT_EQ(view.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(view[i].seq, i);
}

}  // namespace
}  // namespace prism::trace
