// Real OS-socket TP backend: framing round trips over AF_UNIX / TCP
// loopback, write coalescing, corrupt- and oversized-header rejection,
// EOF handling, the in-transit loss ledger, fault injection parity with
// the pipe link, cross-process delivery, and end-to-end integration with
// the ISM and the integrated environment.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/clock.hpp"
#include "core/environment.hpp"
#include "core/io_loop.hpp"
#include "core/ism.hpp"
#include "core/socket_link.hpp"
#include "fault/fault.hpp"
#include "obs/pipeline.hpp"

namespace prism::core {
namespace {

trace::EventRecord ev(std::uint32_t node, std::uint64_t seq) {
  trace::EventRecord r;
  r.timestamp = now_ns();
  r.node = node;
  r.seq = seq;
  return r;
}

DataBatch batch(std::uint32_t node, std::size_t count,
                std::uint64_t seq0 = 0) {
  DataBatch b;
  b.source_node = node;
  b.t_sent_ns = now_ns();
  for (std::size_t i = 0; i < count; ++i)
    b.records.push_back(ev(node, seq0 + i));
  return b;
}

/// Polls `f` for up to two seconds — the reader thread delivers
/// asynchronously, so wire-side counters need a grace period.
bool eventually(const std::function<bool()>& f) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline) {
    if (f()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return f();
}

/// A kSocket TransferProtocol with the real backend enabled — the harness
/// most tests push batches into and pop frames out of.
struct SocketHarness {
  explicit SocketHarness(std::size_t links = 1, std::size_t capacity = 256,
                         SocketOptions opts = {})
      : tp(TpFlavor::kSocket, links, links, capacity) {
    tp.enable_socket_backend(opts);
  }
  TransferProtocol tp;
};

// ---- Backend selection --------------------------------------------------------

TEST(SocketBackend, RequiresSocketFlavor) {
  TransferProtocol tp(TpFlavor::kPipe, 1, 1, 16);
  EXPECT_THROW(tp.enable_socket_backend(), std::logic_error);
  EXPECT_FALSE(tp.socket_backend_enabled());
  // Without the backend the receive link IS the data link.
  EXPECT_EQ(&tp.receive_link(0), &tp.data_link(0));
}

TEST(SocketBackend, EnableIsOnceOnly) {
  TransferProtocol tp(TpFlavor::kSocket, 1, 1, 16);
  tp.enable_socket_backend();
  EXPECT_TRUE(tp.socket_backend_enabled());
  EXPECT_THROW(tp.enable_socket_backend(), std::logic_error);
}

TEST(SocketBackend, RejectsUnusableOptions) {
  TransferProtocol tp(TpFlavor::kSocket, 1, 1, 16);
  SocketOptions bad;
  bad.coalesce_byte_budget = 0;
  EXPECT_THROW(tp.enable_socket_backend(bad), std::invalid_argument);
}

TEST(SocketBackend, ReceiveLinkIsEgressNotIngress) {
  SocketHarness h;
  EXPECT_NE(&h.tp.receive_link(0), &h.tp.data_link(0));
  EXPECT_EQ(&h.tp.receive_link(0), &h.tp.socket_transport()->egress(0));
}

// ---- Round trips --------------------------------------------------------------

TEST(SocketLinkTest, RoundTripsOneBatch) {
  SocketHarness h;
  ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(3, 5, 100))));
  auto msg = h.tp.receive_link(0).pop();
  ASSERT_TRUE(msg.has_value());
  auto* b = std::get_if<DataBatch>(&*msg);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->source_node, 3u);
  ASSERT_EQ(b->records.size(), 5u);
  EXPECT_EQ(b->records[0].seq, 100u);
  EXPECT_EQ(b->records[4].seq, 104u);
  EXPECT_TRUE(
      eventually([&] { return h.tp.socket_link(0).frames_delivered() == 1; }));
  // Writer counters update after write(2); the reader can deliver first.
  EXPECT_TRUE(
      eventually([&] { return h.tp.socket_link(0).frames_sent() == 1; }));
  EXPECT_GT(h.tp.socket_link(0).bytes_sent(), 5 * sizeof(trace::EventRecord));
}

TEST(SocketLinkTest, EmptyBatchAllowed) {
  SocketHarness h;
  ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(1, 0))));
  auto msg = h.tp.receive_link(0).pop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(std::get_if<DataBatch>(&*msg)->records.empty());
}

TEST(SocketLinkTest, ManyBatchesPreserveOrder) {
  SocketHarness h(1, 512);
  for (std::uint64_t i = 0; i < 100; ++i)
    ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(0, 3, i * 10))));
  for (std::uint64_t i = 0; i < 100; ++i) {
    auto msg = h.tp.receive_link(0).pop();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get_if<DataBatch>(&*msg)->records[0].seq, i * 10);
  }
  EXPECT_EQ(h.tp.socket_link(0).frames_delivered(), 100u);
  EXPECT_FALSE(h.tp.socket_link(0).stream_corrupt());
}

TEST(SocketLinkTest, TcpLoopbackRoundTrips) {
  SocketOptions opts;
  opts.domain = SocketDomain::kTcpLoopback;
  SocketHarness h(1, 256, opts);
  for (std::uint64_t i = 0; i < 20; ++i)
    ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(1, 4, i * 4))));
  std::size_t records = 0;
  for (int i = 0; i < 20; ++i) {
    auto msg = h.tp.receive_link(0).pop();
    ASSERT_TRUE(msg.has_value());
    records += std::get_if<DataBatch>(&*msg)->records.size();
  }
  EXPECT_EQ(records, 80u);
}

TEST(SocketLinkTest, MultiLinkTrafficStaysSegregated) {
  SocketHarness h(3, 64);
  for (std::uint32_t n = 0; n < 3; ++n)
    ASSERT_TRUE(h.tp.data_link(n).push(Message(batch(n, 2, n * 100))));
  for (std::uint32_t n = 0; n < 3; ++n) {
    auto msg = h.tp.receive_link(n).pop();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get_if<DataBatch>(&*msg)->source_node, n);
    EXPECT_EQ(std::get_if<DataBatch>(&*msg)->records[0].seq, n * 100u);
  }
}

TEST(SocketLinkTest, ControlMessagesBypassTheWireInOrder) {
  SocketHarness h;
  ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(0, 2, 0))));
  ControlMessage cm;
  cm.kind = ControlKind::kFlushAll;
  ASSERT_TRUE(h.tp.data_link(0).push(Message(cm)));
  // The data frame was flushed before the control bypass, but wire delivery
  // is asynchronous: the control message may surface first.  Both must
  // arrive, and the control message must never have crossed the socket.
  bool saw_batch = false, saw_control = false;
  for (int i = 0; i < 2; ++i) {
    auto msg = h.tp.receive_link(0).pop();
    ASSERT_TRUE(msg.has_value());
    if (auto* b = std::get_if<DataBatch>(&*msg)) {
      EXPECT_EQ(b->records.size(), 2u);
      saw_batch = true;
    } else {
      EXPECT_EQ(std::get_if<ControlMessage>(&*msg)->kind,
                ControlKind::kFlushAll);
      saw_control = true;
    }
  }
  EXPECT_TRUE(saw_batch);
  EXPECT_TRUE(saw_control);
  EXPECT_TRUE(eventually(  // only the batch framed (writer counters lag)
      [&] { return h.tp.socket_link(0).frames_sent() == 1; }));
}

// ---- Coalescing ---------------------------------------------------------------

TEST(SocketCoalescing, QueuedFramesShareOneWrite) {
  // Pre-queue the batches, then enable the backend: the pump finds them all
  // waiting and must coalesce them into a single write(2).
  TransferProtocol tp(TpFlavor::kSocket, 1, 1, 256);
  for (std::uint64_t i = 0; i < 10; ++i)
    ASSERT_TRUE(tp.data_link(0).push(Message(batch(0, 1, i))));
  tp.enable_socket_backend();  // default 64 KiB budget >> 10 tiny frames
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(tp.receive_link(0).pop());
  // frames_sent updates after write(2): wait for it, then writes() is final
  // too (it is incremented before frames_sent in the same flush).
  EXPECT_TRUE(
      eventually([&] { return tp.socket_link(0).frames_sent() == 10u; }));
  EXPECT_LT(tp.socket_link(0).writes(), 10u);
}

TEST(SocketCoalescing, TinyBudgetFlushesEveryFrame) {
  TransferProtocol tp(TpFlavor::kSocket, 1, 1, 256);
  for (std::uint64_t i = 0; i < 10; ++i)
    ASSERT_TRUE(tp.data_link(0).push(Message(batch(0, 1, i))));
  SocketOptions opts;
  opts.coalesce_byte_budget = 1;  // every serialized frame exceeds this
  tp.enable_socket_backend(opts);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(tp.receive_link(0).pop());
  EXPECT_TRUE(
      eventually([&] { return tp.socket_link(0).frames_sent() == 10u; }));
  EXPECT_EQ(tp.socket_link(0).writes(), 10u);
}

// ---- EOF and teardown ---------------------------------------------------------

TEST(SocketLinkTest, CloseWriterDeliversThenCleanEof) {
  SocketHarness h;
  for (std::uint64_t i = 0; i < 5; ++i)
    ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(0, 2, i * 2))));
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(h.tp.receive_link(0).pop());
  h.tp.socket_link(0).close_writer();
  // EOF lands at a frame boundary: the egress closes with nothing lost.
  EXPECT_FALSE(h.tp.receive_link(0).pop().has_value());
  EXPECT_FALSE(h.tp.socket_link(0).stream_corrupt());
  EXPECT_EQ(h.tp.socket_link(0).frames_undelivered(), 0u);
  EXPECT_EQ(h.tp.socket_link(0).records_lost(), 0u);
}

TEST(SocketLinkTest, ClosingDataLinksDrainsAndClosesEgress) {
  // The normal shutdown path: close_data_links() lets the pump drain,
  // flush, and EOF the wire; every in-flight frame must still arrive.
  SocketHarness h;
  for (std::uint64_t i = 0; i < 50; ++i)
    ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(0, 4, i * 4))));
  h.tp.close_data_links();
  std::size_t records = 0;
  while (auto msg = h.tp.receive_link(0).pop())
    records += std::get_if<DataBatch>(&*msg)->records.size();
  EXPECT_EQ(records, 200u);
  EXPECT_EQ(h.tp.socket_link(0).records_lost(), 0u);
  EXPECT_EQ(h.tp.socket_link(0).frames_undelivered(), 0u);
}

TEST(SocketLinkTest, SendAfterWriterCloseIsAccountedLost) {
  SocketHarness h;
  obs::PipelineObserver obs;
  h.tp.set_observer(&obs);
  h.tp.socket_link(0).close_writer();
  EXPECT_FALSE(h.tp.receive_link(0).pop().has_value());  // EOF
  // The ingress link is still open; the pump keeps draining it and must
  // attribute each post-close batch instead of silently eating it.
  auto b = batch(0, 3, 0);
  for (const auto& r : b.records)
    obs.lineage.offer(obs::lineage_key(r.node, r.process, r.seq),
                      static_cast<double>(now_ns()));
  ASSERT_TRUE(h.tp.data_link(0).push(Message(std::move(b))));
  ASSERT_TRUE(
      eventually([&] { return h.tp.socket_link(0).records_lost() == 3; }));
  const auto rep = obs.lineage.report();
  EXPECT_EQ(
      rep.lost_at[static_cast<std::size_t>(obs::LossSite::kTpSendFailed)], 3u);
  EXPECT_EQ(rep.in_flight, 0u);
}

// ---- Wire corruption ----------------------------------------------------------

/// Byte-level mirror of the wire header for hand-crafting bad frames.
struct WireHeader {
  std::uint32_t magic;
  std::uint32_t source_node;
  std::uint64_t t_sent_ns;
  std::uint64_t record_count;
};
static_assert(sizeof(WireHeader) == 24, "wire format");

TEST(SocketCorruption, BadMagicCorruptsStreamAfterGoodFrames) {
  SocketHarness h;
  ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(0, 2, 0))));
  ASSERT_TRUE(h.tp.receive_link(0).pop());  // good frame delivered first
  WireHeader bad{0xDEADBEEF, 0, 0, 1};
  ASSERT_TRUE(h.tp.socket_link(0).inject_raw(&bad, sizeof bad));
  // The reader rejects the header, latches corruption, and closes egress.
  EXPECT_FALSE(h.tp.receive_link(0).pop().has_value());
  EXPECT_TRUE(h.tp.socket_link(0).stream_corrupt());
  EXPECT_EQ(h.tp.socket_link(0).frames_corrupt(), 1u);
  EXPECT_EQ(h.tp.socket_link(0).frames_delivered(), 1u);
  EXPECT_EQ(h.tp.socket_link(0).frames_undelivered(), 0u);
}

TEST(SocketCorruption, OversizedRecordCountRejectedBeforeAllocation) {
  SocketOptions opts;
  opts.max_frame_records = 64;
  SocketHarness h(1, 256, opts);
  // Header is well-formed but claims an insane payload; the reader must
  // refuse it from the untrusted count alone, not trust-and-allocate.
  WireHeader bomb{kFrameMagic, 0, 0, 1ull << 60};
  ASSERT_TRUE(h.tp.socket_link(0).inject_raw(&bomb, sizeof bomb));
  EXPECT_FALSE(h.tp.receive_link(0).pop().has_value());
  EXPECT_TRUE(h.tp.socket_link(0).stream_corrupt());
  EXPECT_EQ(h.tp.socket_link(0).frames_corrupt(), 1u);
}

TEST(SocketCorruption, TruncatedPayloadIsCorruptNotCleanEof) {
  SocketHarness h;
  WireHeader hdr{kFrameMagic, 0, 0, 10};  // promises 10 records...
  ASSERT_TRUE(h.tp.socket_link(0).inject_raw(&hdr, sizeof hdr));
  h.tp.socket_link(0).close_writer();  // ...then EOF mid-payload
  EXPECT_FALSE(h.tp.receive_link(0).pop().has_value());
  EXPECT_TRUE(h.tp.socket_link(0).stream_corrupt());
  EXPECT_EQ(h.tp.socket_link(0).frames_corrupt(), 1u);
}

TEST(SocketCorruption, ReaderDeathAttributesKernelBufferedFrames) {
  // A corrupt stream strands any frame still in the kernel buffer.  Write a
  // good frame immediately followed by garbage: the reader may deliver the
  // good frame or die before parsing it, but the ledger must account every
  // record either as delivered or as lost — never silently vanished.
  SocketHarness h;
  obs::PipelineObserver obs;
  h.tp.set_observer(&obs);
  auto b = batch(0, 4, 0);
  for (const auto& r : b.records)
    obs.lineage.offer(obs::lineage_key(r.node, r.process, r.seq),
                      static_cast<double>(now_ns()));
  ASSERT_TRUE(h.tp.data_link(0).push(Message(std::move(b))));
  WireHeader bad{0x0BADF00D, 0, 0, 1};
  ASSERT_TRUE(h.tp.socket_link(0).inject_raw(&bad, sizeof bad));
  std::size_t delivered_records = 0;
  while (auto msg = h.tp.receive_link(0).pop())
    delivered_records += std::get_if<DataBatch>(&*msg)->records.size();
  // The egress closing proves the *reader* is done, not the pump: when the
  // injected garbage outruns the queued batch, the pump is still attributing
  // its EPIPE-failed flush.  Quiesce so the writer ledger is final too.
  h.tp.close_data_links();
  auto& link = h.tp.socket_link(0);
  EXPECT_TRUE(link.stream_corrupt());
  EXPECT_EQ(delivered_records + link.records_lost(), 4u);
  // Lineage closes the same identity: records that crossed sit in-flight in
  // the egress (nothing completes them here), the rest are attributed lost.
  const auto rep = obs.lineage.report();
  EXPECT_EQ(rep.in_flight, delivered_records);
  EXPECT_EQ(rep.lost, 4u - delivered_records);
}

// ---- Fault injection ----------------------------------------------------------

TEST(SocketFault, TransientSendFailureRetriesAndDelivers) {
  SocketHarness h;
  fault::FaultPlan p;
  fault::FaultSpec s;
  s.site = fault::FaultSite::kSocketSend;
  s.kind = fault::FaultKind::kSendFail;
  s.at_op = 1;  // only the first attempt fails
  p.add(s);
  fault::FaultInjector inj(p, 11);
  fault::RetryPolicy rp;
  rp.base_backoff_ns = 100;
  h.tp.set_fault(&inj, rp);

  ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(0, 3, 0))));
  auto msg = h.tp.receive_link(0).pop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::get_if<DataBatch>(&*msg)->records.size(), 3u);
  EXPECT_EQ(h.tp.socket_link(0).send_failures(), 1u);
  EXPECT_EQ(h.tp.socket_link(0).records_lost(), 0u);
}

TEST(SocketFault, RetryExhaustionAttributesTheBatch) {
  SocketHarness h;
  obs::PipelineObserver obs;
  h.tp.set_observer(&obs);
  fault::FaultPlan p;
  fault::FaultSpec s;
  s.site = fault::FaultSite::kSocketSend;
  s.kind = fault::FaultKind::kSendFail;
  s.every_n = 1;  // every attempt fails
  p.add(s);
  fault::FaultInjector inj(p, 5);
  fault::RetryPolicy rp;
  rp.max_attempts = 2;
  rp.base_backoff_ns = 100;
  h.tp.set_fault(&inj, rp);

  auto b = batch(0, 2, 0);
  for (const auto& r : b.records)
    obs.lineage.offer(obs::lineage_key(r.node, r.process, r.seq),
                      static_cast<double>(now_ns()));
  ASSERT_TRUE(h.tp.data_link(0).push(Message(std::move(b))));
  ASSERT_TRUE(
      eventually([&] { return h.tp.socket_link(0).records_lost() == 2; }));
  EXPECT_EQ(h.tp.socket_link(0).send_failures(), 2u);
  const auto rep = obs.lineage.report();
  EXPECT_EQ(
      rep.lost_at[static_cast<std::size_t>(obs::LossSite::kRetryExhausted)],
      2u);
  EXPECT_EQ(rep.in_flight, 0u);
  // Exhaustion destroyed the batch but not the stream: detach the fault and
  // later traffic still flows.
  h.tp.set_fault(nullptr);
  ASSERT_TRUE(h.tp.data_link(0).push(Message(batch(0, 1, 10))));
  EXPECT_TRUE(h.tp.receive_link(0).pop().has_value());
}

TEST(SocketFault, InjectedCorruptMagicIsCaughtByTheReader) {
  SocketHarness h;
  obs::PipelineObserver obs;
  h.tp.set_observer(&obs);
  fault::FaultPlan p;
  fault::FaultSpec s;
  s.site = fault::FaultSite::kSocketFrame;
  s.kind = fault::FaultKind::kFrameCorrupt;
  s.at_op = 1;
  p.add(s);
  fault::FaultInjector inj(p, 7);
  h.tp.set_fault(&inj);

  auto b = batch(0, 3, 0);
  for (const auto& r : b.records)
    obs.lineage.offer(obs::lineage_key(r.node, r.process, r.seq),
                      static_cast<double>(now_ns()));
  ASSERT_TRUE(h.tp.data_link(0).push(Message(std::move(b))));
  // The corrupted frame ships whole; the reader must detect the flipped
  // magic and latch corruption.
  EXPECT_FALSE(h.tp.receive_link(0).pop().has_value());
  auto& link = h.tp.socket_link(0);
  EXPECT_TRUE(link.stream_corrupt());
  EXPECT_EQ(link.frames_corrupt(), 1u);
  EXPECT_EQ(link.frames_aborted(), 1u);
  EXPECT_EQ(link.records_lost(), 3u);
  const auto rep = obs.lineage.report();
  EXPECT_EQ(
      rep.lost_at[static_cast<std::size_t>(obs::LossSite::kFrameCorrupt)], 3u);
  EXPECT_EQ(rep.in_flight, 0u);
}

TEST(SocketFault, PartialFrameDesynchronizesAndAborts) {
  SocketHarness h;
  obs::PipelineObserver obs;
  h.tp.set_observer(&obs);
  fault::FaultPlan p;
  p.partial_frame(2, fault::kAnyNode, fault::FaultSite::kSocketFrame);
  fault::FaultInjector inj(p, 13);
  h.tp.set_fault(&inj);

  for (std::uint64_t i = 0; i < 2; ++i) {
    auto b = batch(0, 2, i * 2);
    for (const auto& r : b.records)
      obs.lineage.offer(obs::lineage_key(r.node, r.process, r.seq),
                        static_cast<double>(now_ns()));
    ASSERT_TRUE(h.tp.data_link(0).push(Message(std::move(b))));
  }
  // Frame 1 is delivered (flushed before the injected mid-frame death);
  // frame 2 dies halfway onto the wire.
  std::size_t delivered_records = 0;
  while (auto msg = h.tp.receive_link(0).pop())
    delivered_records += std::get_if<DataBatch>(&*msg)->records.size();
  auto& link = h.tp.socket_link(0);
  EXPECT_TRUE(link.stream_corrupt());
  EXPECT_EQ(link.frames_aborted(), 1u);
  EXPECT_EQ(delivered_records, 2u);  // frame 1 was on the wire whole
  EXPECT_EQ(link.records_lost(), 2u);
  const auto rep = obs.lineage.report();
  EXPECT_EQ(rep.in_flight, 2u);  // delivered into egress, nothing completes
  EXPECT_EQ(
      rep.lost_at[static_cast<std::size_t>(obs::LossSite::kFrameCorrupt)], 2u);
}

// ---- Cross-process ------------------------------------------------------------

TEST(SocketCrossProcess, ForkedChildFramesArriveIntact) {
  // The whole point of a real socket TP: the producer can live in another
  // process.  The child serializes frames with the shared wire helpers and
  // exits; the parent parses them off its end of the AF_UNIX pair.
  auto [read_fd, write_fd] = make_socket_pair(SocketDomain::kUnix);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: no gtest assertions, no atexit — write and _exit.
    ::close(read_fd);
    std::vector<char> wire;
    for (std::uint64_t i = 0; i < 8; ++i) {
      DataBatch b;
      b.source_node = 42;
      b.t_sent_ns = i;
      for (std::uint64_t j = 0; j < 3; ++j) {
        trace::EventRecord r;
        r.node = 42;
        r.seq = i * 3 + j;
        b.records.push_back(r);
      }
      append_frame(wire, b);
    }
    const bool ok =
        io_write_all(write_fd, wire.data(), wire.size()) == wire.size();
    ::close(write_fd);
    ::_exit(ok ? 0 : 1);
  }
  ::close(write_fd);
  std::uint64_t next_seq = 0;
  for (int i = 0; i < 8; ++i) {
    FrameHeader hdr;
    ASSERT_EQ(io_read_full(read_fd, &hdr, sizeof hdr), sizeof hdr);
    ASSERT_EQ(hdr.magic, kFrameMagic);
    ASSERT_EQ(hdr.source_node, 42u);
    ASSERT_EQ(hdr.record_count, 3u);
    std::vector<trace::EventRecord> recs(hdr.record_count);
    const std::size_t want = recs.size() * sizeof(trace::EventRecord);
    ASSERT_EQ(io_read_full(read_fd, recs.data(), want), want);
    for (const auto& r : recs) EXPECT_EQ(r.seq, next_seq++);
  }
  char extra;
  EXPECT_EQ(io_read_full(read_fd, &extra, 1), 0u);  // clean EOF
  ::close(read_fd);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

// ---- ISM / environment integration --------------------------------------------

TEST(SocketIntegration, FeedsIsmEndToEnd) {
  TransferProtocol tp(TpFlavor::kSocket, 1, 1, 256);
  tp.enable_socket_backend();
  IsmConfig cfg;
  cfg.causal_ordering = false;
  Ism ism(tp, cfg);
  auto stats_tool = std::make_shared<StatsTool>();
  ism.attach_tool(stats_tool);
  ism.start();
  for (std::uint64_t i = 0; i < 50; ++i)
    ASSERT_TRUE(tp.data_link(0).push(Message(batch(0, 4, i * 4))));
  ism.stop();
  EXPECT_EQ(stats_tool->total(), 200u);
  EXPECT_EQ(tp.socket_link(0).records_lost(), 0u);
}

TEST(SocketIntegration, EnvironmentRunsOverRealSockets) {
  core::EnvironmentConfig cfg;
  cfg.nodes = 2;
  cfg.lis_style = core::LisStyle::kForwarding;
  cfg.tp_flavor = TpFlavor::kSocket;
  cfg.ism.input = core::InputConfig::kSiso;
  cfg.ism.causal_ordering = true;
  IntegratedEnvironment env(cfg);
  ASSERT_TRUE(env.tp().socket_backend_enabled());
  auto tool = std::make_shared<StatsTool>();
  env.attach_tool(tool);
  obs::PipelineObserver obs;
  env.set_observer(&obs);
  env.start();
  for (std::uint64_t i = 0; i < 400; ++i)
    env.record(ev(static_cast<std::uint32_t>(i % 2), i / 2));
  env.stop();

  EXPECT_EQ(tool->total(), 400u);
  EXPECT_FALSE(env.degradation().degraded());
  EXPECT_EQ(env.degradation().records_lost_wire, 0u);
  const auto rep = obs.lineage.report();
  EXPECT_EQ(rep.admitted, 400u);
  EXPECT_EQ(rep.completed, 400u);
  EXPECT_EQ(rep.in_flight, 0u);
}

TEST(SocketIntegration, MisoEnvironmentUsesOneSocketPerNode) {
  core::EnvironmentConfig cfg;
  cfg.nodes = 3;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.flush_policy = core::FlushPolicyKind::kFof;
  cfg.local_buffer_capacity = 8;
  cfg.tp_flavor = TpFlavor::kSocket;
  cfg.ism.input = core::InputConfig::kMiso;
  cfg.ism.causal_ordering = true;
  IntegratedEnvironment env(cfg);
  ASSERT_EQ(env.tp().socket_transport()->link_count(), 3u);
  auto tool = std::make_shared<StatsTool>();
  env.attach_tool(tool);
  env.start();
  for (std::uint64_t i = 0; i < 300; ++i)
    env.record(ev(static_cast<std::uint32_t>(i % 3), i / 3));
  env.stop();
  EXPECT_EQ(tool->total(), 300u);
  for (std::uint32_t n = 0; n < 3; ++n)
    EXPECT_GT(env.tp().socket_link(n).frames_delivered(), 0u);
}

TEST(SocketIntegration, CoalescedShutdownLosesNothing) {
  // Shutdown while frames sit in the coalescing buffer and kernel buffer:
  // stop() must drain everything through the wire, not strand it.
  core::EnvironmentConfig cfg;
  cfg.nodes = 1;
  cfg.lis_style = core::LisStyle::kForwarding;
  cfg.tp_flavor = TpFlavor::kSocket;
  cfg.socket.coalesce_byte_budget = 1 << 20;  // effectively never auto-flush
  cfg.ism.input = core::InputConfig::kSiso;
  cfg.ism.causal_ordering = false;
  IntegratedEnvironment env(cfg);
  auto tool = std::make_shared<StatsTool>();
  env.attach_tool(tool);
  env.start();
  for (std::uint64_t i = 0; i < 250; ++i) env.record(ev(0, i));
  env.stop();
  EXPECT_EQ(tool->total(), 250u);
  EXPECT_EQ(env.tp().socket_link(0).records_lost(), 0u);
}

}  // namespace
}  // namespace prism::core
