// Falcon-style metric views: windowed aggregates, rates, filtering,
// composition with thresholds.
#include <gtest/gtest.h>

#include <vector>

#include "core/views.hpp"

namespace prism::core {
namespace {

trace::EventRecord sample(std::uint64_t ts, std::uint16_t tag, double value,
                          std::uint32_t node = 0) {
  trace::EventRecord r;
  r.timestamp = ts;
  r.node = node;
  r.kind = trace::EventKind::kSample;
  r.tag = tag;
  r.payload = trace::pack_double(value);
  return r;
}

ViewDef mean_view(std::uint16_t in, std::uint16_t out,
                  std::uint64_t window = 1000) {
  ViewDef v;
  v.name = "v";
  v.source_tag = in;
  v.aggregate = ViewAggregate::kMean;
  v.window_ns = window;
  v.output_tag = out;
  return v;
}

TEST(MetricViews, WindowedMean) {
  std::vector<trace::EventRecord> out;
  MetricViewTool t({mean_view(1, 100)},
                   [&](const trace::EventRecord& r) { out.push_back(r); });
  t.consume(sample(0, 1, 2.0));
  t.consume(sample(500, 1, 4.0));
  t.consume(sample(1200, 1, 9.0));  // closes the first window
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tag, 100u);
  EXPECT_DOUBLE_EQ(trace::unpack_double(out[0].payload), 3.0);
  EXPECT_EQ(out[0].timestamp, 1000u);  // window boundary
  EXPECT_EQ(out[0].kind, trace::EventKind::kSample);
}

TEST(MetricViews, FinishFlushesOpenWindow) {
  std::vector<trace::EventRecord> out;
  MetricViewTool t({mean_view(1, 100)},
                   [&](const trace::EventRecord& r) { out.push_back(r); });
  t.consume(sample(0, 1, 7.0));
  t.finish();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(trace::unpack_double(out[0].payload), 7.0);
  EXPECT_EQ(t.windows_emitted("v"), 1u);
}

TEST(MetricViews, MinMaxSumAggregates) {
  std::vector<trace::EventRecord> out;
  auto mk = [&](ViewAggregate a, const char* name) {
    ViewDef v = mean_view(1, 100);
    v.name = name;
    v.aggregate = a;
    return v;
  };
  MetricViewTool t({mk(ViewAggregate::kMin, "min"),
                    mk(ViewAggregate::kMax, "max"),
                    mk(ViewAggregate::kSum, "sum")},
                   [&](const trace::EventRecord& r) { out.push_back(r); });
  for (double v : {3.0, 1.0, 5.0}) t.consume(sample(10, 1, v));
  t.finish();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(trace::unpack_double(out[0].payload), 1.0);
  EXPECT_DOUBLE_EQ(trace::unpack_double(out[1].payload), 5.0);
  EXPECT_DOUBLE_EQ(trace::unpack_double(out[2].payload), 9.0);
}

TEST(MetricViews, RateCountsAnyKindPerSecond) {
  ViewDef v;
  v.name = "rate";
  v.source_tag = 3;
  v.aggregate = ViewAggregate::kRate;
  v.window_ns = 1'000'000'000;  // 1 s
  v.output_tag = 101;
  std::vector<trace::EventRecord> out;
  MetricViewTool t({v}, [&](const trace::EventRecord& r) { out.push_back(r); });
  for (int i = 0; i < 50; ++i) {
    trace::EventRecord r;
    r.timestamp = static_cast<std::uint64_t>(i) * 10'000'000;
    r.kind = trace::EventKind::kUserEvent;  // non-sample records count too
    r.tag = 3;
    t.consume(r);
  }
  t.finish();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(trace::unpack_double(out[0].payload), 50.0);  // 50/s
}

TEST(MetricViews, NodeFilterRestricts) {
  ViewDef v = mean_view(1, 100);
  v.node_filter = 2;
  std::vector<trace::EventRecord> out;
  MetricViewTool t({v}, [&](const trace::EventRecord& r) { out.push_back(r); });
  t.consume(sample(0, 1, 10.0, /*node=*/1));  // filtered out
  t.consume(sample(0, 1, 20.0, /*node=*/2));
  t.finish();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(trace::unpack_double(out[0].payload), 20.0);
  EXPECT_EQ(out[0].node, 2u);
}

TEST(MetricViews, ValueViewsIgnoreNonSamples) {
  std::vector<trace::EventRecord> out;
  MetricViewTool t({mean_view(1, 100)},
                   [&](const trace::EventRecord& r) { out.push_back(r); });
  trace::EventRecord user;
  user.timestamp = 10;
  user.tag = 1;
  user.kind = trace::EventKind::kUserEvent;
  t.consume(user);
  t.finish();
  EXPECT_TRUE(out.empty());
}

TEST(MetricViews, MultipleWindowsGridAligned) {
  std::vector<trace::EventRecord> out;
  MetricViewTool t({mean_view(1, 100, 1000)},
                   [&](const trace::EventRecord& r) { out.push_back(r); });
  t.consume(sample(100, 1, 1.0));
  t.consume(sample(3500, 1, 2.0));  // skips two empty windows
  t.consume(sample(4100, 1, 4.0));  // closes the 3xxx window
  t.finish();
  ASSERT_EQ(out.size(), 3u);
  // First window [100, 1100): mean 1.0.  Second [3100, 4100): 2.0.
  EXPECT_DOUBLE_EQ(trace::unpack_double(out[0].payload), 1.0);
  EXPECT_DOUBLE_EQ(trace::unpack_double(out[1].payload), 2.0);
  EXPECT_DOUBLE_EQ(trace::unpack_double(out[2].payload), 4.0);
  // Derived seq numbers are contiguous (a valid stream for re-injection).
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_EQ(out[1].seq, 1u);
  EXPECT_EQ(out[2].seq, 2u);
}

TEST(MetricViews, EmittedSummaryTracked) {
  MetricViewTool t({mean_view(1, 100)}, [](const trace::EventRecord&) {});
  t.consume(sample(0, 1, 2.0));
  t.consume(sample(1500, 1, 6.0));
  t.finish();
  const auto s = t.emitted_values("v");
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_THROW(t.emitted_values("nope"), std::out_of_range);
}

TEST(MetricViews, RejectsBadDefinitions) {
  auto sink = [](const trace::EventRecord&) {};
  EXPECT_THROW(MetricViewTool({}, sink), std::invalid_argument);
  EXPECT_THROW(MetricViewTool({mean_view(1, 2)}, nullptr),
               std::invalid_argument);
  ViewDef unnamed = mean_view(1, 2);
  unnamed.name = "";
  EXPECT_THROW(MetricViewTool({unnamed}, sink), std::invalid_argument);
  ViewDef zero = mean_view(1, 2);
  zero.window_ns = 0;
  EXPECT_THROW(MetricViewTool({zero}, sink), std::invalid_argument);
}

}  // namespace
}  // namespace prism::core
