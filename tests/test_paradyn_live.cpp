// Live daemon experiment: the real DaemonLis under a sampling workload.
// Timing-sensitive assertions are kept loose — these validate *trends*.
#include <gtest/gtest.h>

#include "paradyn/live.hpp"

namespace prism::paradyn {
namespace {

TEST(LiveDaemon, CollectsAndDispatchesSamples) {
  LiveDaemonParams p;
  p.app_threads = 2;
  p.duration_ms = 80;
  p.samples_per_sec_per_thread = 500;
  const auto rep = run_live_daemon_experiment(p);
  EXPECT_GT(rep.events_recorded, 0u);
  EXPECT_EQ(rep.events_dispatched, rep.events_recorded);
  EXPECT_GT(rep.wall_ns, 0u);
  EXPECT_GT(rep.daemon_busy_ns, 0u);
}

TEST(LiveDaemon, UtilizationIsBounded) {
  LiveDaemonParams p;
  p.app_threads = 2;
  p.duration_ms = 60;
  const auto rep = run_live_daemon_experiment(p);
  EXPECT_GE(rep.daemon_utilization_pct, 0.0);
  EXPECT_LE(rep.daemon_utilization_pct, 100.0);
}

TEST(LiveDaemon, TinyPipesProduceBackpressure) {
  // With one-slot pipes and a slow daemon, application threads must block
  // (the §3.2.3 stall) — measurable as nonzero producer block time.
  LiveDaemonParams p;
  p.app_threads = 2;
  p.duration_ms = 60;
  p.samples_per_sec_per_thread = 5000;
  p.pipe_capacity = 1;
  p.sampling_period_ns = 20'000'000;  // 20 ms: deliberately sluggish
  const auto rep = run_live_daemon_experiment(p);
  EXPECT_GT(rep.app_block_ns, 0u);
}

}  // namespace
}  // namespace prism::paradyn
