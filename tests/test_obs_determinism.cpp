// Telemetry must be observation-only: simulation results are bit-identical
// whether the tracer is recording, metrics are accumulating, or (in a
// PRISM_OBS=OFF build) no probe code exists at all.  These tests run the
// same instrumented workloads twice in-process — telemetry fully active vs
// tracer off and registry reset — and demand exact equality, so they hold
// in both ON and OFF builds and catch any probe that leaks into model state.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "picl/flush_sim.hpp"
#include "sim/engine.hpp"
#include "sim/replication.hpp"
#include "stats/rng.hpp"

#if PRISM_OBS_ENABLED
#include "obs/metrics.hpp"
#endif

namespace prism::obs {
namespace {

/// Runs a schedule/cancel/reschedule-heavy engine workload and fingerprints
/// the execution: (executed count, final clock, order-sensitive checksum of
/// callback ids and times).
struct EngineFingerprint {
  std::uint64_t executed = 0;
  double final_now = 0;
  std::uint64_t checksum = 0;

  bool operator==(const EngineFingerprint& o) const {
    return executed == o.executed && final_now == o.final_now &&
           checksum == o.checksum;
  }
};

EngineFingerprint run_engine_workload() {
  sim::Engine eng;
  EngineFingerprint fp;
  stats::Rng rng(stats::Rng::hash_seed(42, 0, 0));
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 2'000; ++i) {
    const double t = rng.next_double() * 1'000.0;
    const int tag = i;
    handles.push_back(eng.schedule_at(t, [&fp, &eng, tag] {
      fp.checksum = fp.checksum * 1099511628211ULL ^
                    static_cast<std::uint64_t>(tag);
      fp.checksum ^= static_cast<std::uint64_t>(eng.now() * 1e6);
    }));
  }
  // Churn: cancel a third, reschedule a third (tombstones + compaction).
  for (std::size_t i = 0; i < handles.size(); i += 3) eng.cancel(handles[i]);
  for (std::size_t i = 1; i < handles.size(); i += 3)
    eng.reschedule(handles[i], 2'000.0 + static_cast<double>(i));
  fp.executed = eng.run();
  fp.final_now = eng.now();
  return fp;
}

sim::ReplicationResult run_picl_sweep() {
  picl::PiclModelParams p;
  p.buffer_capacity = 20;
  p.nodes = 4;
  p.arrival_rate = 0.007;
  return sim::replicate(
      6, 77, 1,
      [&p](stats::Rng& rng) -> sim::Responses {
        const auto r = picl::simulate_fof(p, 100, rng);
        return {{"freq", r.flushing_frequency},
                {"stop", r.stopping_time.mean()},
                {"interrupt", r.interruption_rate}};
      },
      sim::ReplicateOptions{2});
}

void expect_identical(const sim::ReplicationResult& a,
                      const sim::ReplicationResult& b) {
  ASSERT_EQ(a.metrics(), b.metrics());
  for (const auto& m : a.metrics()) {
    EXPECT_EQ(a.summary(m).mean(), b.summary(m).mean()) << m;
    EXPECT_EQ(a.summary(m).variance(), b.summary(m).variance()) << m;
    EXPECT_EQ(a.summary(m).min(), b.summary(m).min()) << m;
    EXPECT_EQ(a.summary(m).max(), b.summary(m).max()) << m;
  }
}

TEST(ObsDeterminism, EngineExecutionIdenticalWithTracerOnAndOff) {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  const EngineFingerprint instrumented = run_engine_workload();
  tracer.set_enabled(false);
  tracer.clear();
#if PRISM_OBS_ENABLED
  Registry::instance().reset();
#endif
  const EngineFingerprint quiet = run_engine_workload();
  EXPECT_TRUE(instrumented == quiet)
      << "executed " << instrumented.executed << " vs " << quiet.executed
      << ", now " << instrumented.final_now << " vs " << quiet.final_now;
}

TEST(ObsDeterminism, ReplicationSweepIdenticalWithTelemetryActive) {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  const auto instrumented = run_picl_sweep();
  tracer.set_enabled(false);
  tracer.clear();
#if PRISM_OBS_ENABLED
  Registry::instance().reset();
#endif
  const auto quiet = run_picl_sweep();
  expect_identical(instrumented, quiet);
}

TEST(ObsDeterminism, KillSwitchStateIsConsistent) {
  // compiled_in() must agree with the preprocessor flag the build set; the
  // OFF build additionally proves model results need no probe code at all,
  // because the two tests above still pass there.
#if PRISM_OBS_ENABLED
  EXPECT_TRUE(compiled_in());
#else
  EXPECT_FALSE(compiled_in());
#endif
}

}  // namespace
}  // namespace prism::obs
