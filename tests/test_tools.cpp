// Bundled tools: stats aggregation, timeline rendering, trace-file sink,
// threshold watcher.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/tool.hpp"

namespace prism::core {
namespace {

namespace fs = std::filesystem;

trace::EventRecord rec(std::uint32_t node, trace::EventKind kind,
                       std::uint64_t ts = 0, std::uint16_t tag = 0,
                       std::uint64_t payload = 0) {
  trace::EventRecord r;
  r.node = node;
  r.kind = kind;
  r.timestamp = ts;
  r.tag = tag;
  r.payload = payload;
  return r;
}

TEST(StatsTool, CountsByKindAndNode) {
  StatsTool t;
  t.consume(rec(0, trace::EventKind::kSend));
  t.consume(rec(0, trace::EventKind::kRecv));
  t.consume(rec(1, trace::EventKind::kSend));
  EXPECT_EQ(t.total(), 3u);
  EXPECT_EQ(t.count(trace::EventKind::kSend), 2u);
  EXPECT_EQ(t.count(trace::EventKind::kRecv), 1u);
  EXPECT_EQ(t.count(trace::EventKind::kBarrier), 0u);
  EXPECT_EQ(t.count_for_node(0), 2u);
  EXPECT_EQ(t.count_for_node(7), 0u);
}

TEST(StatsTool, AggregatesMetricSamples) {
  StatsTool t;
  for (double v : {1.0, 2.0, 3.0})
    t.consume(rec(0, trace::EventKind::kSample, 0, 5, trace::pack_double(v)));
  const auto m = t.metric(5);
  EXPECT_EQ(m.count(), 3u);
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
  EXPECT_EQ(t.metric(6).count(), 0u);
}

TEST(StatsTool, ReportMentionsCountsAndMetrics) {
  StatsTool t;
  t.consume(rec(2, trace::EventKind::kSample, 0, 9, trace::pack_double(4.0)));
  std::ostringstream os;
  t.report(os);
  EXPECT_NE(os.str().find("sample"), std::string::npos);
  EXPECT_NE(os.str().find("node 2"), std::string::npos);
  EXPECT_NE(os.str().find("metric 9"), std::string::npos);
}

TEST(TimelineTool, RendersLanePerNode) {
  TimelineTool t(100);
  t.consume(rec(0, trace::EventKind::kSend, 100));
  t.consume(rec(1, trace::EventKind::kRecv, 200));
  t.consume(rec(2, trace::EventKind::kSample, 300));
  const std::string viz = t.render(40);
  EXPECT_NE(viz.find("node 0"), std::string::npos);
  EXPECT_NE(viz.find("node 2"), std::string::npos);
  EXPECT_NE(viz.find('s'), std::string::npos);
  EXPECT_NE(viz.find('r'), std::string::npos);
  EXPECT_NE(viz.find('^'), std::string::npos);
}

TEST(TimelineTool, EmptyRenders) {
  TimelineTool t;
  EXPECT_NE(t.render().find("empty"), std::string::npos);
}

TEST(TimelineTool, RetainsAtMostMax) {
  TimelineTool t(5);
  for (int i = 0; i < 20; ++i)
    t.consume(rec(0, trace::EventKind::kUserEvent, i));
  EXPECT_EQ(t.records().size(), 5u);
}

TEST(TraceFileTool, WritesRecordsOnFinish) {
  const auto path = fs::temp_directory_path() / "prism_tool_sink.trc";
  {
    TraceFileTool t(path);
    t.consume(rec(0, trace::EventKind::kUserEvent, 1));
    t.consume(rec(0, trace::EventKind::kUserEvent, 2));
    EXPECT_EQ(t.written(), 2u);
    t.finish();
  }
  trace::TraceFileReader r(path);
  EXPECT_EQ(r.record_count(), 2u);
  fs::remove(path);
}

TEST(ThresholdWatchTool, TriggersAboveThreshold) {
  int fired = 0;
  double seen = 0;
  ThresholdWatchTool t(3, 10.0, [&](const trace::EventRecord&, double v) {
    ++fired;
    seen = v;
  });
  t.consume(rec(0, trace::EventKind::kSample, 0, 3, trace::pack_double(9.0)));
  EXPECT_EQ(fired, 0);
  t.consume(rec(0, trace::EventKind::kSample, 0, 3, trace::pack_double(11.5)));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(seen, 11.5);
  // Wrong tag or kind: ignored.
  t.consume(rec(0, trace::EventKind::kSample, 0, 4, trace::pack_double(99.0)));
  t.consume(rec(0, trace::EventKind::kUserEvent, 0, 3, 12345));
  EXPECT_EQ(t.triggers(), 1u);
}

TEST(ThresholdWatchTool, RejectsNullTrigger) {
  EXPECT_THROW(ThresholdWatchTool(1, 1.0, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace prism::core
