// Probe registry + live dynamic-instrumentation loop over the control plane.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/environment.hpp"
#include "core/probe_registry.hpp"

namespace prism::core {
namespace {

TEST(ProbeRegistry, AddEnableDisable) {
  ProbeRegistry reg;
  std::vector<trace::EventRecord> sink;
  Probe a("a", 1, 0, 0, [&](trace::EventRecord r) { sink.push_back(r); });
  Probe b("b", 2, 0, 0, [&](trace::EventRecord r) { sink.push_back(r); });
  reg.add(&a);
  reg.add(&b);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.enabled_count(), 2u);
  EXPECT_EQ(reg.disable(1), 1u);
  EXPECT_FALSE(a.enabled());
  EXPECT_TRUE(b.enabled());
  EXPECT_EQ(reg.enabled_count(), 1u);
  EXPECT_EQ(reg.enable(1), 1u);
  EXPECT_TRUE(a.enabled());
}

TEST(ProbeRegistry, SharedIdTogglesAllInstances) {
  // The same metric instrumented on several processes: one id, many probes.
  ProbeRegistry reg;
  auto sink = [](trace::EventRecord) {};
  Probe p0("m", 7, 0, 0, sink), p1("m", 7, 0, 1, sink), p2("m", 7, 1, 0, sink);
  reg.add(&p0);
  reg.add(&p1);
  reg.add(&p2);
  EXPECT_EQ(reg.disable(7), 3u);
  EXPECT_EQ(reg.enabled_count(), 0u);
  EXPECT_EQ(reg.enable(7), 3u);
  EXPECT_EQ(reg.enabled_count(), 3u);
}

TEST(ProbeRegistry, RemoveDetaches) {
  ProbeRegistry reg;
  auto sink = [](trace::EventRecord) {};
  Probe a("a", 1, 0, 0, sink), b("a2", 1, 0, 1, sink);
  reg.add(&a);
  reg.add(&b);
  reg.remove(&a);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.disable(1), 1u);
  EXPECT_TRUE(a.enabled());   // removed: untouched
  EXPECT_FALSE(b.enabled());
}

TEST(ProbeRegistry, ApplyControlMessages) {
  ProbeRegistry reg;
  auto sink = [](trace::EventRecord) {};
  Probe p("p", 4, 0, 0, sink);
  reg.add(&p);
  reg.apply({ControlKind::kDisableInstrumentation, 0, 4.0});
  EXPECT_FALSE(p.enabled());
  reg.apply({ControlKind::kEnableInstrumentation, 0, 4.0});
  EXPECT_TRUE(p.enabled());
  reg.apply({ControlKind::kStart, 0, 4.0});  // ignored
  EXPECT_TRUE(p.enabled());
}

TEST(ProbeRegistry, UnknownIdIsNoop) {
  ProbeRegistry reg;
  EXPECT_EQ(reg.enable(99), 0u);
  EXPECT_EQ(reg.disable(99), 0u);
  EXPECT_THROW(reg.add(nullptr), std::invalid_argument);
}

TEST(ProbeRegistry, IdsAreUniqueSorted) {
  ProbeRegistry reg;
  auto sink = [](trace::EventRecord) {};
  Probe a("a", 3, 0, 0, sink), b("b", 1, 0, 0, sink), c("c", 3, 0, 1, sink);
  reg.add(&a);
  reg.add(&b);
  reg.add(&c);
  EXPECT_EQ(reg.ids(), (std::vector<std::uint16_t>{1, 3}));
}

TEST(ProbeRegistry, LiveDynamicInstrumentationLoop) {
  // The Paradyn pattern end-to-end: a probe registered in the environment,
  // disabled via a broadcast control message, handled by the daemon LIS.
  EnvironmentConfig cfg;
  cfg.nodes = 1;
  cfg.processes_per_node = 1;
  cfg.lis_style = LisStyle::kDaemon;
  cfg.sampling_period_ns = 1'000'000;
  cfg.ism.causal_ordering = false;
  IntegratedEnvironment env(cfg);
  env.start();

  Probe probe("metric", 5, 0, 0,
              [&env](trace::EventRecord r) { env.record(r); });
  env.probes().add(&probe);
  probe.sample(1.0);
  EXPECT_EQ(probe.emitted(), 1u);

  env.ism().broadcast_control(
      {ControlKind::kDisableInstrumentation, 0, 5.0});
  for (int spin = 0; spin < 200 && probe.enabled(); ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_FALSE(probe.enabled());
  probe.sample(2.0);  // dynamically removed: no event
  EXPECT_EQ(probe.emitted(), 1u);

  env.ism().broadcast_control({ControlKind::kEnableInstrumentation, 0, 5.0});
  for (int spin = 0; spin < 200 && !probe.enabled(); ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(probe.enabled());
  env.probes().remove(&probe);
  env.stop();
}

}  // namespace
}  // namespace prism::core
