// Logical clocks and the causal reorderer: program order, message order,
// hold-back accounting, and the property that any interleaving of valid
// per-process streams is released in a causally consistent order.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stats/rng.hpp"
#include "trace/causal.hpp"
#include "trace/clock.hpp"

namespace prism::trace {
namespace {

EventRecord ev(std::uint32_t node, std::uint64_t seq,
               EventKind kind = EventKind::kUserEvent, std::uint32_t peer = 0,
               std::uint16_t tag = 0) {
  EventRecord r;
  r.node = node;
  r.process = 0;
  r.seq = seq;
  r.kind = kind;
  r.peer = peer;
  r.tag = tag;
  return r;
}

// ---- Lamport / vector clocks ----------------------------------------------------

TEST(LamportClock, TickMonotone) {
  LamportClock c;
  EXPECT_EQ(c.tick(), 1u);
  EXPECT_EQ(c.tick(), 2u);
  EXPECT_EQ(c.now(), 2u);
}

TEST(LamportClock, MergeJumpsPastRemote) {
  LamportClock c;
  c.tick();
  EXPECT_EQ(c.merge(10), 11u);
  EXPECT_EQ(c.merge(5), 12u);  // remote behind: still advances locally
}

TEST(VectorClock, HappensBeforeViaMessage) {
  VectorClock a(2, 0), b(2, 1);
  a.tick();                 // a: [1,0]
  const auto send = a.value();
  b.merge(send);            // b: [1,1]
  EXPECT_TRUE(VectorClock::happens_before(send, b.value()));
  EXPECT_FALSE(VectorClock::happens_before(b.value(), send));
}

TEST(VectorClock, ConcurrentEventsDetected) {
  VectorClock a(2, 0), b(2, 1);
  a.tick();
  b.tick();
  EXPECT_TRUE(VectorClock::concurrent(a.value(), b.value()));
}

TEST(VectorClock, SizeMismatchRejected) {
  VectorClock a(2, 0);
  EXPECT_THROW(VectorClock::happens_before(a.value(), {1, 2, 3}),
               std::invalid_argument);
  EXPECT_THROW(VectorClock(3, 3), std::invalid_argument);
}

// ---- CausalReorderer -------------------------------------------------------------

TEST(CausalReorderer, InOrderStreamPassesThrough) {
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  for (std::uint64_t s = 0; s < 5; ++s) r.offer(ev(0, s));
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(r.held(), 0u);
  EXPECT_EQ(r.hold_back_ratio(), 0.0);
  // Lamport stamps strictly increasing.
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_GT(out[i].lamport, out[i - 1].lamport);
}

TEST(CausalReorderer, OutOfOrderHeldThenReleased) {
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  r.offer(ev(0, 1));  // arrives before seq 0
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(r.held(), 1u);
  r.offer(ev(0, 0));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_EQ(out[1].seq, 1u);
  EXPECT_EQ(r.held_back_total(), 1u);
  EXPECT_NEAR(r.hold_back_ratio(), 0.5, 1e-12);
}

TEST(CausalReorderer, RecvWaitsForSend) {
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  // Node 1's recv (from node 0) arrives before node 0's send.
  r.offer(ev(1, 0, EventKind::kRecv, /*peer=*/0, /*tag=*/7));
  EXPECT_TRUE(out.empty());
  r.offer(ev(0, 0, EventKind::kSend, /*peer=*/1, /*tag=*/7));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].kind, EventKind::kSend);
  EXPECT_EQ(out[1].kind, EventKind::kRecv);
  EXPECT_LT(out[0].lamport, out[1].lamport);
}

TEST(CausalReorderer, MultipleMessagesSameChannelFifo) {
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  // Two sends, then two recvs offered in order: all release.
  r.offer(ev(0, 0, EventKind::kSend, 1, 3));
  r.offer(ev(0, 1, EventKind::kSend, 1, 3));
  r.offer(ev(1, 0, EventKind::kRecv, 0, 3));
  r.offer(ev(1, 1, EventKind::kRecv, 0, 3));
  EXPECT_EQ(out.size(), 4u);
  EXPECT_LT(first_causal_violation(out), 0);
}

TEST(CausalReorderer, ChainedUnblocking) {
  // recv at node 1 unblocks only after node 0's send, which itself waits on
  // node 0's earlier event.
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  r.offer(ev(1, 0, EventKind::kRecv, 0, 1));   // held: no send yet
  r.offer(ev(0, 1, EventKind::kSend, 1, 1));   // held: seq 0 missing
  EXPECT_EQ(out.size(), 0u);
  r.offer(ev(0, 0));                            // releases everything
  ASSERT_EQ(out.size(), 3u);
  EXPECT_LT(first_causal_violation(out), 0);
}

TEST(CausalReorderer, IndependentStreamsDontBlockEachOther) {
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  r.offer(ev(0, 1));  // held
  r.offer(ev(1, 0));  // independent stream: releases immediately
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].node, 1u);
}

TEST(CausalReorderer, ProcessesAreDistinctStreams) {
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  EventRecord a = ev(0, 0);
  a.process = 1;
  r.offer(a);  // (node 0, process 1) seq 0: releases
  EXPECT_EQ(out.size(), 1u);
  r.offer(ev(0, 0));  // (node 0, process 0) seq 0: also releases
  EXPECT_EQ(out.size(), 2u);
}

// Property: shuffled valid multi-process traffic is always released in
// causally consistent order, completely, with correct Lamport monotonicity
// per release order.
class CausalShuffle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CausalShuffle, RandomInterleavingsReleaseConsistently) {
  // Build a valid global history: 4 nodes, ring messages + local events.
  std::vector<EventRecord> history;
  std::vector<std::uint64_t> seq(4, 0);
  for (int round = 0; round < 10; ++round) {
    for (std::uint32_t n = 0; n < 4; ++n) {
      history.push_back(ev(n, seq[n]++));
      history.push_back(
          ev(n, seq[n]++, EventKind::kSend, (n + 1) % 4, 1));
    }
    for (std::uint32_t n = 0; n < 4; ++n) {
      history.push_back(
          ev(n, seq[n]++, EventKind::kRecv, (n + 3) % 4, 1));
    }
  }
  // Shuffle with a bounded displacement so per-stream seq remains a valid
  // arrival pattern (any permutation is fine for the reorderer; full shuffle
  // is the stress case).
  stats::Rng rng(GetParam());
  for (std::size_t i = history.size(); i > 1; --i)
    std::swap(history[i - 1], history[rng.next_below(i)]);

  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  for (const auto& e : history) r.offer(e);

  EXPECT_EQ(out.size(), history.size());
  EXPECT_EQ(r.held(), 0u);
  EXPECT_LT(first_causal_violation(out), 0);
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_EQ(out[i].lamport, out[i - 1].lamport + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CausalShuffle,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u, 9001u));

// ---- first_causal_violation -------------------------------------------------------

// ---- Dead-node expiry (graceful degradation) ------------------------------------

TEST(CausalExpiry, RecvWaitingOnDeadPeerReleasedAfterExpire) {
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  // Node 1 receives from node 0, but node 0's send was lost with node 0.
  r.offer(ev(1, 0, EventKind::kRecv, /*peer=*/0, /*tag=*/7));
  EXPECT_EQ(r.held(), 1u);
  const std::size_t released = r.expire_node(0);
  EXPECT_EQ(released, 1u);
  EXPECT_EQ(r.held(), 0u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, EventKind::kRecv);
  EXPECT_TRUE(r.dead_nodes().count(0));
}

TEST(CausalExpiry, LaterRecvsFromDeadPeerPassWithoutHolding) {
  // Once a peer is dead, message order is waived for its channels: new
  // receives naming it must not strand waiting for sends that cannot come.
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  r.expire_node(3);
  r.offer(ev(1, 0, EventKind::kRecv, /*peer=*/3, /*tag=*/1));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(r.held(), 0u);
}

TEST(CausalExpiry, DeadNodesOwnStreamReleasedToleratingSeqGaps) {
  // The dead node's held records are released in seq order even across the
  // gaps its death created (seq 1 is lost forever; 0, 2, 3 must come out).
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  r.offer(ev(2, 2));  // held: waiting for seq 0 and 1
  r.offer(ev(2, 3));
  r.offer(ev(2, 0));  // released immediately; 2 and 3 still gapped on seq 1
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(r.held(), 2u);
  EXPECT_EQ(r.expire_node(2), 2u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1].seq, 2u);
  EXPECT_EQ(out[2].seq, 3u);
  // Lamport stamps stay monotone through the forced release.
  EXPECT_LT(out[0].lamport, out[1].lamport);
  EXPECT_LT(out[1].lamport, out[2].lamport);
}

TEST(CausalExpiry, ExpireUnblocksChainedLiveStreams) {
  // A live node's recv was waiting on the dead node; expiring the dead node
  // must cascade: the recv releases, then the live node's later records.
  std::vector<EventRecord> out;
  CausalReorderer r([&](const EventRecord& e) { out.push_back(e); });
  r.offer(ev(1, 0, EventKind::kRecv, /*peer=*/0, /*tag=*/2));
  r.offer(ev(1, 1));  // program order: behind the held recv
  EXPECT_EQ(out.size(), 0u);
  EXPECT_EQ(r.expire_node(0), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].kind, EventKind::kRecv);
  EXPECT_EQ(out[1].seq, 1u);
  EXPECT_EQ(r.held(), 0u);
}

TEST(CausalChecker, DetectsProgramOrderViolation) {
  std::vector<EventRecord> recs{ev(0, 1), ev(0, 0)};
  EXPECT_EQ(first_causal_violation(recs), 0);
}

TEST(CausalChecker, DetectsRecvBeforeSend) {
  std::vector<EventRecord> recs{ev(1, 0, EventKind::kRecv, 0, 2),
                                ev(0, 0, EventKind::kSend, 1, 2)};
  EXPECT_EQ(first_causal_violation(recs), 0);
}

TEST(CausalChecker, AcceptsValidTrace) {
  std::vector<EventRecord> recs{ev(0, 0, EventKind::kSend, 1, 2),
                                ev(1, 0, EventKind::kRecv, 0, 2),
                                ev(0, 1), ev(1, 1)};
  EXPECT_LT(first_causal_violation(recs), 0);
}

}  // namespace
}  // namespace prism::trace
