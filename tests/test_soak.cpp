// Soak/stress tests: sustained high-volume traffic through the live IS and
// long simulation runs, asserting the conservation and ordering invariants
// hold at scale (bounded to stay ctest-friendly).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "core/clock.hpp"
#include "core/environment.hpp"
#include "picl/flush_sim.hpp"
#include "trace/causal.hpp"
#include "vista/ism_model.hpp"

namespace prism {
namespace {

TEST(Soak, HighVolumeLiveIsConservesEverything) {
  core::EnvironmentConfig cfg;
  cfg.nodes = 4;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.local_buffer_capacity = 128;
  cfg.link_capacity = 256;  // small links: exercise backpressure
  cfg.ism.causal_ordering = false;
  core::IntegratedEnvironment env(cfg);
  auto stats_tool = std::make_shared<core::StatsTool>();
  env.attach_tool(stats_tool);
  env.start();

  constexpr std::uint64_t kPerNode = 50'000;
  std::vector<std::thread> producers;
  for (std::uint32_t n = 0; n < 4; ++n) {
    producers.emplace_back([&env, n] {
      for (std::uint64_t s = 0; s < kPerNode; ++s) {
        trace::EventRecord r;
        r.timestamp = core::now_ns();
        r.node = n;
        r.seq = s;
        r.payload = s;
        env.record(r);
      }
    });
  }
  for (auto& t : producers) t.join();
  env.stop();

  EXPECT_EQ(stats_tool->total(), 4 * kPerNode);
  const auto lis = env.total_lis_stats();
  EXPECT_EQ(lis.recorded, 4 * kPerNode);
  EXPECT_EQ(lis.dropped, 0u);
  EXPECT_EQ(env.ism().stats().records_dispatched, 4 * kPerNode);
}

TEST(Soak, OrderedHighVolumeStaysCausal) {
  core::EnvironmentConfig cfg;
  cfg.nodes = 2;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.local_buffer_capacity = 64;
  cfg.ism.causal_ordering = true;
  core::IntegratedEnvironment env(cfg);

  struct OrderCheck final : core::Tool {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> last_lamport{0};
    std::atomic<bool> monotone{true};
    std::string_view name() const override { return "order_check"; }
    void consume(const trace::EventRecord& r) override {
      ++count;
      const auto prev = last_lamport.exchange(r.lamport);
      if (r.lamport <= prev) monotone = false;
    }
  };
  auto check = std::make_shared<OrderCheck>();
  env.attach_tool(check);
  env.start();

  constexpr std::uint64_t kPerNode = 20'000;
  std::vector<std::thread> producers;
  for (std::uint32_t n = 0; n < 2; ++n) {
    producers.emplace_back([&env, n] {
      for (std::uint64_t s = 0; s < kPerNode; ++s) {
        trace::EventRecord r;
        r.timestamp = core::now_ns();
        r.node = n;
        r.seq = s;
        env.record(r);
      }
    });
  }
  for (auto& t : producers) t.join();
  env.stop();
  EXPECT_EQ(check->count.load(), 2 * kPerNode);
  EXPECT_TRUE(check->monotone.load());
}

TEST(Soak, LongFlushSimulationStaysConsistent) {
  picl::PiclModelParams p;
  p.buffer_capacity = 60;
  p.arrival_rate = 0.02;
  p.nodes = 16;
  const auto r = picl::simulate_faof(p, 5000, stats::Rng(9));
  EXPECT_EQ(r.total_flushes, 5000u * 16u);
  // Frequency estimator CI must be tight after 5000 cycles.
  const auto ci = r.frequency_estimator.ratio_ci(0.95);
  EXPECT_LT(ci.half_width, 0.02 * ci.mean);
  EXPECT_GE(r.stopping_time.mean(),
            picl::faof_stopping_time_lower_bound(p));
}

TEST(Soak, LongVistaRunReleasesBoundedResidue) {
  vista::VistaIsmParams p;
  p.horizon_ms = 120'000;
  p.mean_interarrival_ms = 15.0;
  const auto m = vista::run_vista_ism(p, stats::Rng(10));
  // Residue held at the end (stragglers cut by the horizon) must be a tiny
  // fraction of the traffic.
  EXPECT_GT(m.records, 50'000u);
  EXPECT_GT(static_cast<double>(m.released),
            0.99 * static_cast<double>(m.records));
}

}  // namespace
}  // namespace prism
