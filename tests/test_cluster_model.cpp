// The Figure 7 cluster model: conservation, utilization scaling, the
// centralized-ISM bottleneck.
#include <gtest/gtest.h>

#include "paradyn/cluster_model.hpp"

namespace prism::paradyn {
namespace {

ClusterModelParams quick() {
  ClusterModelParams p;
  p.horizon_ms = 30'000;
  return p;
}

TEST(ClusterModel, SingleRunSane) {
  const auto m = run_cluster_model(quick(), stats::Rng(1));
  EXPECT_GT(m.samples_analyzed, 0u);
  EXPECT_GT(m.batches, 0u);
  EXPECT_GT(m.mean_sample_latency_ms, 0.0);
  EXPECT_GE(m.p95_sample_latency_ms, m.mean_sample_latency_ms);
  EXPECT_GT(m.ism_utilization, 0.0);
  EXPECT_LE(m.ism_utilization, 1.0);
  EXPECT_TRUE(m.stable);
}

TEST(ClusterModel, DeterministicGivenSeed) {
  const auto a = run_cluster_model(quick(), stats::Rng(2));
  const auto b = run_cluster_model(quick(), stats::Rng(2));
  EXPECT_EQ(a.samples_analyzed, b.samples_analyzed);
  EXPECT_DOUBLE_EQ(a.mean_sample_latency_ms, b.mean_sample_latency_ms);
}

TEST(ClusterModel, SampleConservation) {
  // Every generated sample is analyzed when the system is stable: expected
  // generation = nodes * procs * rate * horizon.
  auto p = quick();
  const auto m = run_cluster_model(p, stats::Rng(3));
  const double expected = p.nodes * p.app_processes_per_node *
                          p.sample_rate_per_process * p.horizon_ms;
  EXPECT_TRUE(m.stable);
  EXPECT_NEAR(static_cast<double>(m.samples_analyzed), expected,
              0.05 * expected);
}

TEST(ClusterModel, IsmUtilizationGrowsWithNodes) {
  const auto pts = sweep_cluster_size(quick(), {2, 8, 24}, 4, 99);
  EXPECT_LT(pts[0].ism_utilization.mean, pts[1].ism_utilization.mean);
  EXPECT_LT(pts[1].ism_utilization.mean, pts[2].ism_utilization.mean);
}

TEST(ClusterModel, LatencyExplodesPastSaturation) {
  // Find the bottleneck regime: ISM demand/node = procs*rate*per_sample.
  // Defaults: 4 * 0.02 * 0.08 = 0.0064 per ms per node -> saturation around
  // 1 / 0.0064 ~ 156 nodes for the ISM; the network saturates earlier:
  // per node, batches every 200 ms cost 0.5 + 0.02*16 = 0.82 ms -> ~244
  // nodes.  Crank the per-sample cost to bring saturation into reach.
  auto p = quick();
  p.ism_per_sample_ms = 0.8;  // saturation at ~15.6 nodes
  const auto below = run_cluster_model([&] { auto q = p; q.nodes = 8; return q; }(),
                                       stats::Rng(5));
  const auto above = run_cluster_model([&] { auto q = p; q.nodes = 32; return q; }(),
                                       stats::Rng(5));
  EXPECT_LT(below.mean_sample_latency_ms * 3, above.mean_sample_latency_ms);
  EXPECT_GT(above.ism_utilization, 0.95);
  EXPECT_FALSE(above.stable);
}

TEST(ClusterModel, LongerPeriodLargerBatchesFewerTransfers) {
  auto p = quick();
  p.sampling_period_ms = 100;
  const auto fast = run_cluster_model(p, stats::Rng(6));
  p.sampling_period_ms = 800;
  const auto slow = run_cluster_model(p, stats::Rng(6));
  EXPECT_GT(fast.batches, slow.batches);
  // Batching delays samples: longer period -> higher latency.
  EXPECT_LT(fast.mean_sample_latency_ms, slow.mean_sample_latency_ms);
}

TEST(ClusterModel, TreeAggregationReducesIsmBatchLoad) {
  auto p = quick();
  p.nodes = 24;
  p.ism_per_batch_ms = 1.0;  // make per-batch overhead matter
  const auto flat = run_cluster_model(p, stats::Rng(7));
  p.aggregator_fanout = 8;
  const auto tree = run_cluster_model(p, stats::Rng(7));
  // The tree delivers ~1/8 the batches and analyzes the same samples.
  EXPECT_LT(tree.batches * 4, flat.batches);
  EXPECT_NEAR(static_cast<double>(tree.samples_analyzed),
              static_cast<double>(flat.samples_analyzed),
              0.1 * static_cast<double>(flat.samples_analyzed));
  EXPECT_LT(tree.ism_utilization, flat.ism_utilization);
}

TEST(ClusterModel, TreeRecoversStabilityPastFlatKnee) {
  auto p = quick();
  p.nodes = 40;
  p.ism_per_batch_ms = 2.0;  // flat ISM demand: 40 nodes / 200 ms * 2 ms
  p.ism_per_sample_ms = 0.02;
  const auto flat = run_cluster_model(p, stats::Rng(8));
  p.aggregator_fanout = 8;
  const auto tree = run_cluster_model(p, stats::Rng(8));
  EXPECT_GT(flat.ism_utilization, 0.35);
  EXPECT_LT(tree.ism_utilization, flat.ism_utilization * 0.5);
  EXPECT_LT(tree.mean_ism_queue, flat.mean_ism_queue + 1.0);
}

TEST(ClusterModel, RejectsFanoutOfOne) {
  auto p = quick();
  p.aggregator_fanout = 1;
  EXPECT_THROW(run_cluster_model(p, stats::Rng(1)), std::invalid_argument);
}

TEST(ClusterModel, ValidatesParameters) {
  auto p = quick();
  p.nodes = 0;
  EXPECT_THROW(run_cluster_model(p, stats::Rng(1)), std::invalid_argument);
  p = quick();
  p.sampling_period_ms = 0;
  EXPECT_THROW(run_cluster_model(p, stats::Rng(1)), std::invalid_argument);
  p = quick();
  p.ism_per_sample_ms = -1;
  EXPECT_THROW(run_cluster_model(p, stats::Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace prism::paradyn
