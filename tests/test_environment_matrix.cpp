// Configuration-matrix property test: EVERY combination of LIS style, ISM
// input configuration, and causal ordering must deliver the identical ring
// workload end-to-end without loss, and produce causally consistent output
// whenever ordering is enabled.  This is the paper's configurability claim
// ("the IS is configurable, so different management policies can be
// instituted dynamically") held to a uniform correctness bar.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/environment.hpp"
#include "trace/causal.hpp"
#include "workload/thread_apps.hpp"

namespace prism::core {
namespace {

class CollectAllTool final : public Tool {
 public:
  std::string_view name() const override { return "collect"; }
  void consume(const trace::EventRecord& r) override {
    std::lock_guard lk(mu_);
    records_.push_back(r);
  }
  std::vector<trace::EventRecord> records() const {
    std::lock_guard lk(mu_);
    return records_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<trace::EventRecord> records_;
};

using MatrixParam = std::tuple<LisStyle, InputConfig, bool>;

class EnvironmentMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(EnvironmentMatrix, RingWorkloadConservedAndOrdered) {
  const auto [style, input, ordering] = GetParam();
  EnvironmentConfig cfg;
  cfg.nodes = 3;
  cfg.processes_per_node = 1;
  cfg.lis_style = style;
  cfg.local_buffer_capacity = 16;
  cfg.sampling_period_ns = 1'000'000;
  cfg.ism.input = input;
  cfg.ism.causal_ordering = ordering;
  IntegratedEnvironment env(cfg);
  auto collector = std::make_shared<CollectAllTool>();
  env.attach_tool(collector);
  env.start();
  const auto app = workload::run_ring_threads(env, /*rounds=*/15,
                                              /*work_iters=*/300);
  env.stop();

  const auto out = collector->records();
  EXPECT_EQ(out.size(), app.events_recorded)
      << "lost records with style=" << to_string(style)
      << " input=" << to_string(input) << " ordering=" << ordering;
  EXPECT_EQ(env.total_lis_stats().dropped, 0u);
  if (ordering) {
    EXPECT_LT(trace::first_causal_violation(out), 0);
    // Lamport stamps strictly increase in dispatch order.
    for (std::size_t i = 1; i < out.size(); ++i)
      EXPECT_GT(out[i].lamport, out[i - 1].lamport);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, EnvironmentMatrix,
    ::testing::Combine(::testing::Values(LisStyle::kBuffered,
                                         LisStyle::kForwarding,
                                         LisStyle::kDaemon),
                       ::testing::Values(InputConfig::kSiso,
                                         InputConfig::kMiso),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      // NOTE: no structured bindings here — their commas would split the
      // INSTANTIATE_TEST_SUITE_P macro arguments.
      std::string name(to_string(std::get<0>(info.param)));
      name += "_";
      name += std::get<1>(info.param) == InputConfig::kSiso ? "siso" : "miso";
      name += std::get<2>(info.param) ? "_ordered" : "_raw";
      return name;
    });

}  // namespace
}  // namespace prism::core
