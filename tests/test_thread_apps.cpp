// Live thread workloads driving the real IS stack end-to-end.
#include <gtest/gtest.h>

#include <memory>

#include "core/environment.hpp"
#include "workload/thread_apps.hpp"

namespace prism::workload {
namespace {

TEST(BurnCpu, ReturnsConsumableValueAndScales) {
  const double a = burn_cpu(1000);
  EXPECT_GT(a, 0.0);
}

TEST(RingThreads, EventsFlowThroughBufferedIs) {
  core::EnvironmentConfig cfg;
  cfg.nodes = 3;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.local_buffer_capacity = 16;
  cfg.ism.causal_ordering = false;
  core::IntegratedEnvironment env(cfg);
  auto stats = std::make_shared<core::StatsTool>();
  env.attach_tool(stats);
  env.start();
  const auto rep = run_ring_threads(env, /*rounds=*/10, /*work_iters=*/500);
  env.stop();
  EXPECT_GT(rep.messages, 0u);
  EXPECT_EQ(stats->total(), rep.events_recorded);
  EXPECT_GT(rep.checksum, 0.0);
}

TEST(RingThreads, CausalOrderingHoldsOnLiveTraffic) {
  core::EnvironmentConfig cfg;
  cfg.nodes = 4;
  cfg.lis_style = core::LisStyle::kForwarding;
  cfg.ism.causal_ordering = true;
  core::IntegratedEnvironment env(cfg);
  auto stats = std::make_shared<core::StatsTool>();
  env.attach_tool(stats);
  env.start();
  const auto rep = run_ring_threads(env, 20, 200);
  env.stop();
  // Ring traffic has matched sends/recvs: everything must be released.
  EXPECT_EQ(env.ism().stats().records_dispatched, rep.events_recorded);
  EXPECT_EQ(stats->count(trace::EventKind::kRecv),
            stats->count(trace::EventKind::kSend));
}

TEST(RingThreads, DegenerateConfigsReturnEmpty) {
  core::EnvironmentConfig cfg;
  cfg.nodes = 1;
  core::IntegratedEnvironment env(cfg);
  env.start();
  EXPECT_EQ(run_ring_threads(env, 5, 10).messages, 0u);
  EXPECT_EQ(run_ring_threads(env, 0, 10).messages, 0u);
  env.stop();
}

TEST(PhasesThreads, BarrierPhasesEmitStructuredEvents) {
  core::EnvironmentConfig cfg;
  cfg.nodes = 3;
  cfg.lis_style = core::LisStyle::kBuffered;
  cfg.local_buffer_capacity = 64;
  cfg.ism.causal_ordering = false;
  core::IntegratedEnvironment env(cfg);
  auto stats = std::make_shared<core::StatsTool>();
  env.attach_tool(stats);
  env.start();
  const auto rep = run_phases_threads(env, /*phases=*/5, /*work_iters=*/300);
  env.stop();
  // 3 nodes * 5 phases * 3 events (begin/end/barrier).
  EXPECT_EQ(rep.events_recorded, 45u);
  EXPECT_EQ(stats->count(trace::EventKind::kBlockBegin), 15u);
  EXPECT_EQ(stats->count(trace::EventKind::kBlockEnd), 15u);
  EXPECT_EQ(stats->count(trace::EventKind::kBarrier), 15u);
}

TEST(SamplingThreads, DaemonIsCollectsSamples) {
  core::EnvironmentConfig cfg;
  cfg.nodes = 2;
  cfg.processes_per_node = 2;
  cfg.lis_style = core::LisStyle::kDaemon;
  cfg.sampling_period_ns = 1'000'000;
  cfg.ism.causal_ordering = false;
  core::IntegratedEnvironment env(cfg);
  auto stats = std::make_shared<core::StatsTool>();
  env.attach_tool(stats);
  env.start();
  const auto rep = run_sampling_threads(env, /*metric_count=*/2,
                                        /*rate=*/1000.0, /*duration_ms=*/50);
  env.stop();
  EXPECT_GT(rep.events_recorded, 0u);
  EXPECT_EQ(stats->count(trace::EventKind::kSample), rep.events_recorded);
  // Metric values land in [10, 90] by construction.
  const auto m = stats->metric(0);
  EXPECT_GT(m.count(), 0u);
  EXPECT_GE(m.min(), 9.9);
  EXPECT_LE(m.max(), 90.1);
}

}  // namespace
}  // namespace prism::workload
