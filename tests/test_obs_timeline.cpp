// Model-time time-series probes (obs/timeline.hpp, DESIGN.md §9).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "obs/json_check.hpp"
#include "obs/timeline.hpp"

namespace prism::obs {
namespace {

TEST(Timeline, SampleAppendsUnconditionally) {
  Timeline tl;
  tl.sample("q", 0.0, 1.0);
  tl.sample("q", 1.0, 1.0);  // duplicate value still recorded
  tl.sample("q", 2.0, 3.0);
  const auto pts = tl.series("q");
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[1].t, 1.0);
  EXPECT_DOUBLE_EQ(pts[1].value, 1.0);
  EXPECT_EQ(tl.total_points(), 3u);
  EXPECT_FALSE(tl.empty());
}

TEST(Timeline, SampleChangedDedupesRuns) {
  Timeline tl;
  tl.sample_changed("level", 0.0, 0.0);
  tl.sample_changed("level", 1.0, 0.0);  // unchanged: skipped
  tl.sample_changed("level", 2.0, 1.0);
  tl.sample_changed("level", 3.0, 1.0);  // unchanged: skipped
  tl.sample_changed("level", 4.0, 0.0);
  const auto pts = tl.series("level");
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].t, 0.0);
  EXPECT_DOUBLE_EQ(pts[1].t, 2.0);
  EXPECT_DOUBLE_EQ(pts[2].t, 4.0);
}

TEST(Timeline, SeriesNamesSortedAndUnknownEmpty) {
  Timeline tl;
  tl.sample("zeta", 0, 1);
  tl.sample("alpha", 0, 1);
  tl.sample("mid", 0, 1);
  const std::vector<std::string> expect{"alpha", "mid", "zeta"};
  EXPECT_EQ(tl.series_names(), expect);
  EXPECT_TRUE(tl.series("nope").empty());
}

TEST(Timeline, CsvIsDeterministic) {
  Timeline tl;
  tl.sample("b", 1.5, 2.0);
  tl.sample("a", 0.5, 1.0);
  tl.sample("a", 1.0, 3.0);
  const std::string csv = tl.csv();
  EXPECT_EQ(csv.find("series,time,value"), 0u);
  // Series in name order, points in insertion order.
  const auto a0 = csv.find("a,0.5,1");
  const auto a1 = csv.find("a,1,3");
  const auto b0 = csv.find("b,1.5,2");
  ASSERT_NE(a0, std::string::npos);
  ASSERT_NE(a1, std::string::npos);
  ASSERT_NE(b0, std::string::npos);
  EXPECT_LT(a0, a1);
  EXPECT_LT(a1, b0);
  EXPECT_EQ(csv, tl.csv());  // stable across calls
}

TEST(Timeline, ChromeCounterJsonValidates) {
  Timeline tl;
  tl.sample("node0/cpu.ready", 0.0, 2.0);
  tl.sample("node0/cpu.ready", 100.0, 5.0);
  tl.sample("weird \"name\"\\path", 50.0, 1.0);  // must be escaped
  const std::string json = tl.chrome_counter_json();
  EXPECT_TRUE(jsonlite::valid(json)) << json;
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // ms -> µs scaling: t=100 ms becomes ts=100000.
  EXPECT_NE(json.find("100000"), std::string::npos);
  // An empty timeline still renders a valid (empty) trace document.
  EXPECT_TRUE(jsonlite::valid(Timeline{}.chrome_counter_json()));
}

TEST(Timeline, MergePrefixedKeepsReplicationsSideBySide) {
  Timeline a, b;
  a.sample("q", 0, 1);
  b.sample("q", 0, 2);
  b.sample("r", 1, 3);
  Timeline merged;
  merged.merge_prefixed(a, "rep0/");
  merged.merge_prefixed(b, "rep1/");
  const std::vector<std::string> expect{"rep0/q", "rep1/q", "rep1/r"};
  EXPECT_EQ(merged.series_names(), expect);
  EXPECT_EQ(merged.total_points(), 3u);
  ASSERT_EQ(merged.series("rep1/q").size(), 1u);
  EXPECT_DOUBLE_EQ(merged.series("rep1/q")[0].value, 2.0);
}

TEST(Timeline, MoveTransfersSeries) {
  Timeline src;
  src.sample("q", 0, 1);
  src.sample("q", 1, 2);
  Timeline dst(std::move(src));
  EXPECT_EQ(dst.total_points(), 2u);
  Timeline assigned;
  assigned.sample("old", 0, 9);
  assigned = std::move(dst);
  EXPECT_EQ(assigned.total_points(), 2u);
  EXPECT_TRUE(assigned.series("old").empty());
}

TEST(Timeline, ClearEmpties) {
  Timeline tl;
  tl.sample("q", 0, 1);
  tl.clear();
  EXPECT_TRUE(tl.empty());
  EXPECT_TRUE(tl.series_names().empty());
}

}  // namespace
}  // namespace prism::obs
