// Flush policies: FOF/FAOF trigger conditions, threshold and adaptive
// variants.
#include <gtest/gtest.h>

#include "core/flush_policy.hpp"

namespace prism::core {
namespace {

trace::EventRecord rec() { return trace::EventRecord{}; }

TEST(FlushOnFill, TriggersOnlyWhenFull) {
  FlushOnFill p;
  trace::TraceBuffer b(3);
  b.append(rec());
  EXPECT_FALSE(p.should_flush(b));
  b.append(rec());
  b.append(rec());
  EXPECT_TRUE(p.should_flush(b));
  EXPECT_FALSE(p.global());
  EXPECT_EQ(p.name(), "FOF");
}

TEST(FlushAllOnFill, IsGlobal) {
  FlushAllOnFill p;
  trace::TraceBuffer b(2);
  EXPECT_TRUE(p.global());
  b.append(rec());
  EXPECT_FALSE(p.should_flush(b));
  b.append(rec());
  EXPECT_TRUE(p.should_flush(b));
  EXPECT_EQ(p.name(), "FAOF");
}

TEST(ThresholdFlush, TriggersAtFraction) {
  ThresholdFlush p(0.5);
  trace::TraceBuffer b(10);
  for (int i = 0; i < 4; ++i) b.append(rec());
  EXPECT_FALSE(p.should_flush(b));
  b.append(rec());
  EXPECT_TRUE(p.should_flush(b));  // 5 of 10
}

TEST(ThresholdFlush, FullFractionEqualsFof) {
  ThresholdFlush p(1.0);
  trace::TraceBuffer b(4);
  for (int i = 0; i < 3; ++i) b.append(rec());
  EXPECT_FALSE(p.should_flush(b));
  b.append(rec());
  EXPECT_TRUE(p.should_flush(b));
}

TEST(ThresholdFlush, RejectsBadFraction) {
  EXPECT_THROW(ThresholdFlush(0.0), std::invalid_argument);
  EXPECT_THROW(ThresholdFlush(1.5), std::invalid_argument);
}

TEST(AdaptiveThresholdFlush, EstimatesArrivalRate) {
  AdaptiveThresholdFlush p(1'000'000);  // 1 ms target between flushes
  // Arrivals every 1000 ns => ~1e6 events/s.
  std::uint64_t t = 0;
  for (int i = 0; i < 200; ++i) {
    t += 1000;
    p.observe_arrival(t);
  }
  EXPECT_NEAR(p.estimated_rate_per_sec(), 1e6, 1e5);
}

TEST(AdaptiveThresholdFlush, FlushesEarlyUnderHighRate) {
  // With 1000 ns gaps and a 10 us target, ~10 records' worth should trigger
  // a flush well before a 1000-record buffer fills.
  AdaptiveThresholdFlush p(10'000);
  trace::TraceBuffer b(1000);
  std::uint64_t t = 0;
  bool flushed = false;
  for (int i = 0; i < 1000 && !flushed; ++i) {
    t += 1000;
    p.observe_arrival(t);
    b.append(rec());
    flushed = p.should_flush(b);
  }
  EXPECT_TRUE(flushed);
  EXPECT_LT(b.size(), 100u);
}

TEST(AdaptiveThresholdFlush, LazyUnderLowRate) {
  // Arrivals every 1 ms with a 1 s target: should not flush a small buffer
  // until it genuinely fills.
  AdaptiveThresholdFlush p(1'000'000'000);
  trace::TraceBuffer b(50);
  std::uint64_t t = 0;
  for (int i = 0; i < 49; ++i) {
    t += 1'000'000;
    p.observe_arrival(t);
    b.append(rec());
    EXPECT_FALSE(p.should_flush(b)) << "at record " << i;
  }
  b.append(rec());
  EXPECT_TRUE(p.should_flush(b));  // full always flushes
}

TEST(AdaptiveThresholdFlush, NoArrivalsNoFlush) {
  AdaptiveThresholdFlush p(1000);
  trace::TraceBuffer b(10);
  b.append(rec());
  EXPECT_FALSE(p.should_flush(b));
}

TEST(AdaptiveThresholdFlush, RejectsBadConfig) {
  EXPECT_THROW(AdaptiveThresholdFlush(0), std::invalid_argument);
  EXPECT_THROW(AdaptiveThresholdFlush(1000, 0.0), std::invalid_argument);
  EXPECT_THROW(AdaptiveThresholdFlush(1000, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace prism::core
