// 2^k r factorial design: sign table, effect recovery on synthetic response
// surfaces, allocation of variation, and CIs.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/factorial.hpp"
#include "stats/rng.hpp"

namespace prism::stats {
namespace {

TEST(Design2kr, LevelsEnumerateAllCorners) {
  Design2kr d({"A", "B"}, 3);
  EXPECT_EQ(d.points(), 4u);
  EXPECT_EQ(d.levels(0), (std::vector<int>{-1, -1}));
  EXPECT_EQ(d.levels(1), (std::vector<int>{+1, -1}));
  EXPECT_EQ(d.levels(2), (std::vector<int>{-1, +1}));
  EXPECT_EQ(d.levels(3), (std::vector<int>{+1, +1}));
}

TEST(Design2kr, RecoversExactLinearModel) {
  // y = 10 + 3*A - 2*B + 0.5*A*B, no noise.
  Design2kr d({"A", "B"}, 2);
  auto res = d.run([](const std::vector<int>& lv, unsigned) {
    return 10.0 + 3.0 * lv[0] - 2.0 * lv[1] + 0.5 * lv[0] * lv[1];
  });
  ASSERT_EQ(res.effects.size(), 4u);
  EXPECT_NEAR(res.effects[0], 10.0, 1e-12);  // mean
  EXPECT_NEAR(res.effects[1], 3.0, 1e-12);   // A
  EXPECT_NEAR(res.effects[2], -2.0, 1e-12);  // B
  EXPECT_NEAR(res.effects[3], 0.5, 1e-12);   // AxB
  EXPECT_NEAR(res.error_fraction, 0.0, 1e-12);
}

TEST(Design2kr, EffectNames) {
  Design2kr d({"A", "B", "C"}, 1);
  auto res = d.run([](const std::vector<int>&, unsigned) { return 0.0; });
  EXPECT_EQ(res.effect_names[0], "mean");
  EXPECT_EQ(res.effect_names[1], "A");
  EXPECT_EQ(res.effect_names[2], "B");
  EXPECT_EQ(res.effect_names[3], "AxB");
  EXPECT_EQ(res.effect_names[4], "C");
  EXPECT_EQ(res.effect_names[7], "AxBxC");
}

TEST(Design2kr, AllocationOfVariationIdentifiesDominantFactor) {
  // Jain-style example: B dominates.
  Design2kr d({"A", "B"}, 5);
  Rng rng(42);
  auto res = d.run([&rng](const std::vector<int>& lv, unsigned) {
    return 100.0 + 1.0 * lv[0] + 20.0 * lv[1] +
           0.5 * (rng.next_double() - 0.5);
  });
  EXPECT_EQ(res.effect_names[res.dominant_effect()], "B");
  EXPECT_GT(res.variation_fraction[2], 0.95);
  EXPECT_LT(res.error_fraction, 0.05);
}

TEST(Design2kr, VariationFractionsSumToOne) {
  Design2kr d({"A", "B"}, 10);
  Rng rng(7);
  auto res = d.run([&rng](const std::vector<int>& lv, unsigned) {
    return 5.0 * lv[0] + 2.0 * lv[1] + rng.next_double();
  });
  double total = res.error_fraction;
  for (double f : res.variation_fraction) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Design2kr, PureNoiseAllocatesToError) {
  Design2kr d({"A", "B"}, 30);
  Rng rng(99);
  auto res = d.run([&rng](const std::vector<int>&, unsigned) {
    return rng.next_double();
  });
  EXPECT_GT(res.error_fraction, 0.85);
}

TEST(Design2kr, CiCoversTrueEffect) {
  // With noise sigma = 1 and r = 50, the effect CI should be tight around
  // the true value 4.0.
  Design2kr d({"A"}, 50);
  Rng rng(1234);
  auto res = d.run([&rng](const std::vector<int>& lv, unsigned) {
    const double u1 = rng.next_double_open();
    const double u2 = rng.next_double();
    const double z = std::sqrt(-2 * std::log(u1)) *
                     std::cos(2 * 3.14159265358979323846 * u2);
    return 10.0 + 4.0 * lv[0] + z;
  });
  ASSERT_EQ(res.effect_ci.size(), 2u);
  EXPECT_TRUE(res.effect_ci[1].contains(4.0));
  EXPECT_LT(res.effect_ci[1].half_width, 0.5);
}

TEST(Design2kr, ThreeFactorInteractionRecovery) {
  Design2kr d({"A", "B", "C"}, 2);
  auto res = d.run([](const std::vector<int>& lv, unsigned) {
    return 1.0 + 2.0 * lv[0] * lv[1] * lv[2];
  });
  EXPECT_NEAR(res.effects[7], 2.0, 1e-12);  // AxBxC
  for (unsigned e = 1; e < 7; ++e) EXPECT_NEAR(res.effects[e], 0.0, 1e-12);
}

TEST(Design2kr, AnalyzeRejectsWrongShape) {
  Design2kr d({"A"}, 2);
  EXPECT_THROW(d.analyze({{1.0, 2.0}}), std::invalid_argument);     // 1 point
  EXPECT_THROW(d.analyze({{1.0}, {2.0}}), std::invalid_argument);   // 1 rep
}

TEST(Design2kr, RejectsBadConstruction) {
  EXPECT_THROW(Design2kr({}, 2), std::invalid_argument);
  EXPECT_THROW(Design2kr({"A"}, 0), std::invalid_argument);
}

TEST(Design2kr, ToStringContainsEffects) {
  Design2kr d({"A", "B"}, 2);
  auto res = d.run([](const std::vector<int>& lv, unsigned) {
    return static_cast<double>(lv[0]);
  });
  const std::string s = res.to_string();
  EXPECT_NE(s.find("mean"), std::string::npos);
  EXPECT_NE(s.find("AxB"), std::string::npos);
  EXPECT_NE(s.find("error"), std::string::npos);
}

}  // namespace
}  // namespace prism::stats
