// Probes and scoped blocks: enable/disable, event contents, sequence
// numbering, RAII block events.
#include <gtest/gtest.h>

#include <vector>

#include "core/sensor.hpp"

namespace prism::core {
namespace {

class ProbeFixture : public ::testing::Test {
 protected:
  std::vector<trace::EventRecord> events_;
  EventSink sink() {
    return [this](trace::EventRecord r) { events_.push_back(r); };
  }
};

TEST_F(ProbeFixture, EventCarriesIdentity) {
  Probe p("loop", 7, /*node=*/2, /*process=*/3, sink());
  p.event(99);
  ASSERT_EQ(events_.size(), 1u);
  EXPECT_EQ(events_[0].node, 2u);
  EXPECT_EQ(events_[0].process, 3u);
  EXPECT_EQ(events_[0].tag, 7u);
  EXPECT_EQ(events_[0].payload, 99u);
  EXPECT_EQ(events_[0].kind, trace::EventKind::kUserEvent);
  EXPECT_EQ(p.name(), "loop");
}

TEST_F(ProbeFixture, DisabledProbeEmitsNothing) {
  Probe p("x", 1, 0, 0, sink(), /*enabled=*/false);
  p.event();
  p.sample(1.0);
  EXPECT_TRUE(events_.empty());
  EXPECT_EQ(p.emitted(), 0u);
}

TEST_F(ProbeFixture, DynamicEnableDisable) {
  Probe p("x", 1, 0, 0, sink());
  p.event();
  p.disable();
  p.event();
  p.enable();
  p.event();
  EXPECT_EQ(events_.size(), 2u);
  EXPECT_EQ(p.emitted(), 2u);
}

TEST_F(ProbeFixture, SampleRoundTripsValue) {
  Probe p("metric", 4, 0, 0, sink());
  p.sample(3.75);
  ASSERT_EQ(events_.size(), 1u);
  EXPECT_EQ(events_[0].kind, trace::EventKind::kSample);
  EXPECT_DOUBLE_EQ(trace::unpack_double(events_[0].payload), 3.75);
}

TEST_F(ProbeFixture, SequenceNumbersContiguous) {
  Probe p("x", 1, 0, 0, sink());
  for (int i = 0; i < 10; ++i) p.event();
  for (std::size_t i = 0; i < events_.size(); ++i)
    EXPECT_EQ(events_[i].seq, i);
}

TEST_F(ProbeFixture, CountIncrements) {
  Probe p("count", 2, 0, 0, sink());
  p.count();
  p.count();
  ASSERT_EQ(events_.size(), 2u);
  EXPECT_EQ(events_[0].payload, 1u);
  EXPECT_EQ(events_[1].payload, 2u);
}

TEST_F(ProbeFixture, TimestampsMonotone) {
  Probe p("x", 1, 0, 0, sink());
  for (int i = 0; i < 100; ++i) p.event();
  for (std::size_t i = 1; i < events_.size(); ++i)
    EXPECT_GE(events_[i].timestamp, events_[i - 1].timestamp);
}

TEST_F(ProbeFixture, ScopedBlockEmitsBeginEnd) {
  Probe p("region", 9, 0, 0, sink());
  {
    ScopedBlock block(p, 1234);
    p.event();
  }
  ASSERT_EQ(events_.size(), 3u);
  EXPECT_EQ(events_[0].kind, trace::EventKind::kBlockBegin);
  EXPECT_EQ(events_[0].payload, 1234u);
  EXPECT_EQ(events_[2].kind, trace::EventKind::kBlockEnd);
  // End payload = duration, must be >= 0 and plausible.
  EXPECT_GE(events_[2].timestamp, events_[0].timestamp);
}

TEST_F(ProbeFixture, ScopedBlockRespectsDisable) {
  Probe p("region", 9, 0, 0, sink(), false);
  { ScopedBlock block(p, 1); }
  EXPECT_TRUE(events_.empty());
}

}  // namespace
}  // namespace prism::core
