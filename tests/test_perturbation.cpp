// Perturbation model and compensation: applying modeled overhead then
// compensating must recover the clean trace (up to message constraints), and
// compensation must never break per-stream monotonicity or send/recv order.
#include <gtest/gtest.h>

#include <vector>

#include "trace/perturbation.hpp"

namespace prism::trace {
namespace {

EventRecord ev(std::uint32_t node, std::uint64_t seq, std::uint64_t ts,
               EventKind kind = EventKind::kUserEvent, std::uint32_t peer = 0,
               std::uint16_t tag = 0) {
  EventRecord r;
  r.node = node;
  r.seq = seq;
  r.timestamp = ts;
  r.kind = kind;
  r.peer = peer;
  r.tag = tag;
  return r;
}

std::vector<EventRecord> simple_two_node_trace() {
  // node 0: e0 @100, send @200; node 1: recv @260, e1 @400.
  return {ev(0, 0, 100), ev(0, 1, 200, EventKind::kSend, 1, 1),
          ev(1, 0, 260, EventKind::kRecv, 0, 1), ev(1, 1, 400)};
}

TEST(ApplyPerturbation, ShiftsByCumulativeOverhead) {
  PerturbationModel m;
  m.per_event_overhead = 10;
  auto clean = std::vector<EventRecord>{ev(0, 0, 100), ev(0, 1, 200),
                                        ev(0, 2, 300)};
  auto perturbed = apply_perturbation(clean, m);
  EXPECT_EQ(perturbed[0].timestamp, 100u);  // zero prior events
  EXPECT_EQ(perturbed[1].timestamp, 210u);  // one prior event
  EXPECT_EQ(perturbed[2].timestamp, 320u);  // two prior events
}

TEST(ApplyPerturbation, DelayedSendDelaysRecv) {
  PerturbationModel m;
  m.per_event_overhead = 100;
  m.min_message_latency = 60;
  auto perturbed = apply_perturbation(simple_two_node_trace(), m);
  // send moved 200 -> 300; recv must be >= 300 + 60.
  EXPECT_EQ(perturbed[1].timestamp, 300u);
  EXPECT_GE(perturbed[2].timestamp, 360u);
  // node 1's later event keeps program order.
  EXPECT_GE(perturbed[3].timestamp, perturbed[2].timestamp);
}

TEST(Compensate, InvertsApplyOnSingleStream) {
  PerturbationModel m;
  m.per_event_overhead = 25;
  std::vector<EventRecord> clean{ev(0, 0, 1000), ev(0, 1, 2000),
                                 ev(0, 2, 3000), ev(0, 3, 4000)};
  auto perturbed = apply_perturbation(clean, m);
  auto rep = compensate(perturbed, m);
  for (std::size_t i = 0; i < clean.size(); ++i)
    EXPECT_EQ(perturbed[i].timestamp, clean[i].timestamp);
  EXPECT_EQ(rep.adjusted, 3u);  // all but the first record moved
  EXPECT_GT(rep.total_overhead_removed, 0u);
}

TEST(Compensate, RecoverMultiNodeTraceWithMessages) {
  PerturbationModel m;
  m.per_event_overhead = 30;
  m.min_message_latency = 60;
  auto clean = simple_two_node_trace();
  auto perturbed = apply_perturbation(clean, m);
  auto rep = compensate(perturbed, m);
  (void)rep;
  for (std::size_t i = 0; i < clean.size(); ++i)
    EXPECT_EQ(perturbed[i].timestamp, clean[i].timestamp) << "record " << i;
}

TEST(Compensate, FlushIntervalsRemoved) {
  PerturbationModel m;
  m.per_event_overhead = 0;
  m.remove_flush_intervals = true;
  // e0 @100, flush [200, 700], e1 @800: e1's true time is 300.
  std::vector<EventRecord> t{
      ev(0, 0, 100), ev(0, 1, 200, EventKind::kFlushBegin),
      ev(0, 2, 700, EventKind::kFlushEnd), ev(0, 3, 800)};
  compensate(t, m);
  EXPECT_EQ(t[0].timestamp, 100u);
  EXPECT_EQ(t[3].timestamp, 300u);
}

TEST(Compensate, FlushRemovalDisabled) {
  PerturbationModel m;
  m.remove_flush_intervals = false;
  std::vector<EventRecord> t{
      ev(0, 0, 100), ev(0, 1, 200, EventKind::kFlushBegin),
      ev(0, 2, 700, EventKind::kFlushEnd), ev(0, 3, 800)};
  compensate(t, m);
  EXPECT_EQ(t[3].timestamp, 800u);
}

TEST(Compensate, NeverProducesNegativeTimeOrBreaksMonotonicity) {
  PerturbationModel m;
  m.per_event_overhead = 1000;  // over-aggressive model
  std::vector<EventRecord> t{ev(0, 0, 10), ev(0, 1, 20), ev(0, 2, 30)};
  compensate(t, m);
  std::uint64_t prev = 0;
  for (const auto& r : t) {
    EXPECT_GE(r.timestamp, prev);
    prev = r.timestamp;
  }
}

TEST(Compensate, RecvConstraintCounted) {
  PerturbationModel m;
  m.per_event_overhead = 50;
  m.min_message_latency = 10;
  // The receiver accumulated lots of local overhead; its recv fired the
  // moment the (delayed) message arrived (perturbed recv == perturbed send
  // + latency), so compensation must pin it to the send's true time plus
  // the latency rather than trusting the local estimate.
  std::vector<EventRecord> t;
  t.push_back(ev(0, 0, 100, EventKind::kSend, 1, 1));
  for (std::uint64_t s = 0; s < 10; ++s) t.push_back(ev(1, s, 20 + s));
  t.push_back(ev(1, 10, 110, EventKind::kRecv, 0, 1));
  auto rep = compensate(t, m);
  // send (first record) keeps true time 100; recv lands at exactly 110.
  EXPECT_EQ(t.front().timestamp, 100u);
  EXPECT_EQ(t.back().timestamp, 110u);
  EXPECT_GE(rep.recv_constraints_applied, 1u);
}

TEST(Compensate, ZeroModelIsIdentity) {
  PerturbationModel m;  // all zeros, flush removal on but no flush events
  auto t = simple_two_node_trace();
  auto orig = t;
  auto rep = compensate(t, m);
  EXPECT_EQ(rep.adjusted, 0u);
  for (std::size_t i = 0; i < t.size(); ++i)
    EXPECT_EQ(t[i].timestamp, orig[i].timestamp);
}

}  // namespace
}  // namespace prism::trace
