// Utilization tracking, regenerative estimation (Smith's theorem), batch
// means.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/collectors.hpp"
#include "stats/rng.hpp"

namespace prism::sim {
namespace {

TEST(UtilizationTracker, BasicBusyAccounting) {
  UtilizationTracker u(0.0);
  u.begin_busy(1.0, 0);
  u.end_busy(3.0);
  u.begin_busy(5.0, 1);
  u.end_busy(6.0);
  u.flush(10.0);
  EXPECT_DOUBLE_EQ(u.busy_time(), 3.0);
  EXPECT_DOUBLE_EQ(u.busy_time(0), 2.0);
  EXPECT_DOUBLE_EQ(u.busy_time(1), 1.0);
  EXPECT_DOUBLE_EQ(u.utilization(), 0.3);
  EXPECT_DOUBLE_EQ(u.utilization(0), 0.2);
  EXPECT_DOUBLE_EQ(u.observed_span(), 10.0);
}

TEST(UtilizationTracker, UnknownClassIsZero) {
  UtilizationTracker u;
  EXPECT_DOUBLE_EQ(u.busy_time(42), 0.0);
}

TEST(UtilizationTracker, RejectsTimeTravel) {
  UtilizationTracker u(0.0);
  u.begin_busy(5.0, 0);
  EXPECT_THROW(u.end_busy(4.0), std::invalid_argument);
}

TEST(UtilizationTracker, ClassSwitchMidBusy) {
  UtilizationTracker u(0.0);
  u.begin_busy(0.0, 0);
  u.begin_busy(2.0, 1);  // switches the attributed class
  u.end_busy(5.0);
  EXPECT_DOUBLE_EQ(u.busy_time(0), 2.0);
  EXPECT_DOUBLE_EQ(u.busy_time(1), 3.0);
}

// ---- RegenerativeEstimator --------------------------------------------------

TEST(Regenerative, DeterministicRatio) {
  RegenerativeEstimator r;
  for (int i = 0; i < 10; ++i) r.add_cycle(2.0, 8.0);
  EXPECT_DOUBLE_EQ(r.ratio(), 0.25);
  const auto ci = r.ratio_ci(0.90);
  EXPECT_NEAR(ci.half_width, 0.0, 1e-12);  // no variance
}

TEST(Regenerative, SmithsTheoremOnTwoStateProcess) {
  // Cycle: busy ~ Exp(mean 2), idle ~ Exp(mean 6).  Long-run busy fraction
  // must be 2 / (2 + 6) = 0.25.
  stats::Rng rng(31337);
  RegenerativeEstimator r;
  for (int i = 0; i < 20000; ++i) {
    const double busy = -2.0 * std::log(rng.next_double_open());
    const double idle = -6.0 * std::log(rng.next_double_open());
    r.add_cycle(busy, busy + idle);
  }
  EXPECT_NEAR(r.ratio(), 0.25, 0.01);
  EXPECT_TRUE(r.ratio_ci(0.95).contains(0.25));
}

TEST(Regenerative, CiShrinksWithCycles) {
  stats::Rng rng(5);
  RegenerativeEstimator small, big;
  auto feed = [&](RegenerativeEstimator& r, int n) {
    for (int i = 0; i < n; ++i) {
      const double y = rng.next_double() + 0.5;
      const double t = rng.next_double() + 2.0;
      r.add_cycle(y, t);
    }
  };
  feed(small, 50);
  feed(big, 5000);
  EXPECT_GT(small.ratio_ci(0.9).half_width, big.ratio_ci(0.9).half_width);
}

TEST(Regenerative, RejectsDegenerate) {
  RegenerativeEstimator r;
  EXPECT_THROW(r.ratio(), std::logic_error);
  EXPECT_THROW(r.add_cycle(1.0, 0.0), std::invalid_argument);
  r.add_cycle(1.0, 2.0);
  EXPECT_THROW(r.ratio_ci(0.9), std::logic_error);
}

TEST(Regenerative, MeansExposed) {
  RegenerativeEstimator r;
  r.add_cycle(1.0, 4.0);
  r.add_cycle(3.0, 6.0);
  EXPECT_DOUBLE_EQ(r.mean_reward(), 2.0);
  EXPECT_DOUBLE_EQ(r.mean_length(), 5.0);
  EXPECT_EQ(r.cycles(), 2u);
}

// ---- BatchMeans ---------------------------------------------------------------

TEST(BatchMeans, FormsCompleteBatches) {
  BatchMeans bm(10);
  for (int i = 0; i < 95; ++i) bm.add(1.0);
  EXPECT_EQ(bm.complete_batches(), 9u);
  EXPECT_DOUBLE_EQ(bm.mean(), 1.0);
}

TEST(BatchMeans, WarmupDiscarded) {
  BatchMeans bm(5, 10);
  for (int i = 0; i < 10; ++i) bm.add(1000.0);  // warm-up junk
  for (int i = 0; i < 25; ++i) bm.add(2.0);
  EXPECT_EQ(bm.complete_batches(), 5u);
  EXPECT_DOUBLE_EQ(bm.mean(), 2.0);
}

TEST(BatchMeans, CiCoversSteadyMean) {
  stats::Rng rng(777);
  BatchMeans bm(100, 500);
  for (int i = 0; i < 20000; ++i) bm.add(rng.next_double() * 2.0);
  EXPECT_TRUE(bm.ci(0.95).contains(1.0));
}

TEST(BatchMeans, RejectsZeroBatch) {
  EXPECT_THROW(BatchMeans(0), std::invalid_argument);
}

}  // namespace
}  // namespace prism::sim
