
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/vista_online.cpp" "examples/CMakeFiles/vista_online.dir/vista_online.cpp.o" "gcc" "examples/CMakeFiles/vista_online.dir/vista_online.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prism_picl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_paradyn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_rocc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_vista.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_spi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
