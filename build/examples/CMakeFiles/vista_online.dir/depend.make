# Empty dependencies file for vista_online.
# This may be replaced when dependencies are built.
