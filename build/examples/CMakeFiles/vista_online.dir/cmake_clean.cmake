file(REMOVE_RECURSE
  "CMakeFiles/vista_online.dir/vista_online.cpp.o"
  "CMakeFiles/vista_online.dir/vista_online.cpp.o.d"
  "vista_online"
  "vista_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vista_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
