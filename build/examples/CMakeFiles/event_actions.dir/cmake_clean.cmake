file(REMOVE_RECURSE
  "CMakeFiles/event_actions.dir/event_actions.cpp.o"
  "CMakeFiles/event_actions.dir/event_actions.cpp.o.d"
  "event_actions"
  "event_actions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_actions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
