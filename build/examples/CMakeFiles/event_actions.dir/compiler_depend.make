# Empty compiler generated dependencies file for event_actions.
# This may be replaced when dependencies are built.
