# Empty compiler generated dependencies file for picl_trace_demo.
# This may be replaced when dependencies are built.
