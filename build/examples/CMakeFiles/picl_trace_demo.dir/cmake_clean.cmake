file(REMOVE_RECURSE
  "CMakeFiles/picl_trace_demo.dir/picl_trace_demo.cpp.o"
  "CMakeFiles/picl_trace_demo.dir/picl_trace_demo.cpp.o.d"
  "picl_trace_demo"
  "picl_trace_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picl_trace_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
