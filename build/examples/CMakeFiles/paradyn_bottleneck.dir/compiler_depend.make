# Empty compiler generated dependencies file for paradyn_bottleneck.
# This may be replaced when dependencies are built.
