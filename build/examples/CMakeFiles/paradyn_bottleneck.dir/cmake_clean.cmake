file(REMOVE_RECURSE
  "CMakeFiles/paradyn_bottleneck.dir/paradyn_bottleneck.cpp.o"
  "CMakeFiles/paradyn_bottleneck.dir/paradyn_bottleneck.cpp.o.d"
  "paradyn_bottleneck"
  "paradyn_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradyn_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
