# Empty compiler generated dependencies file for prism_test_paradyn.
# This may be replaced when dependencies are built.
