file(REMOVE_RECURSE
  "CMakeFiles/prism_test_paradyn.dir/test_cluster_model.cpp.o"
  "CMakeFiles/prism_test_paradyn.dir/test_cluster_model.cpp.o.d"
  "CMakeFiles/prism_test_paradyn.dir/test_cost_model.cpp.o"
  "CMakeFiles/prism_test_paradyn.dir/test_cost_model.cpp.o.d"
  "CMakeFiles/prism_test_paradyn.dir/test_paradyn_live.cpp.o"
  "CMakeFiles/prism_test_paradyn.dir/test_paradyn_live.cpp.o.d"
  "CMakeFiles/prism_test_paradyn.dir/test_paradyn_rocc.cpp.o"
  "CMakeFiles/prism_test_paradyn.dir/test_paradyn_rocc.cpp.o.d"
  "CMakeFiles/prism_test_paradyn.dir/test_w3.cpp.o"
  "CMakeFiles/prism_test_paradyn.dir/test_w3.cpp.o.d"
  "prism_test_paradyn"
  "prism_test_paradyn.pdb"
  "prism_test_paradyn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_test_paradyn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
