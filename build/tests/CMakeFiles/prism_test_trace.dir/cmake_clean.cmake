file(REMOVE_RECURSE
  "CMakeFiles/prism_test_trace.dir/test_causal.cpp.o"
  "CMakeFiles/prism_test_trace.dir/test_causal.cpp.o.d"
  "CMakeFiles/prism_test_trace.dir/test_perturbation.cpp.o"
  "CMakeFiles/prism_test_trace.dir/test_perturbation.cpp.o.d"
  "CMakeFiles/prism_test_trace.dir/test_trace_analysis.cpp.o"
  "CMakeFiles/prism_test_trace.dir/test_trace_analysis.cpp.o.d"
  "CMakeFiles/prism_test_trace.dir/test_trace_buffer.cpp.o"
  "CMakeFiles/prism_test_trace.dir/test_trace_buffer.cpp.o.d"
  "CMakeFiles/prism_test_trace.dir/test_trace_file_merge.cpp.o"
  "CMakeFiles/prism_test_trace.dir/test_trace_file_merge.cpp.o.d"
  "prism_test_trace"
  "prism_test_trace.pdb"
  "prism_test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
