# Empty dependencies file for prism_test_trace.
# This may be replaced when dependencies are built.
