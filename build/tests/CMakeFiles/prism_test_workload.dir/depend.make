# Empty dependencies file for prism_test_workload.
# This may be replaced when dependencies are built.
