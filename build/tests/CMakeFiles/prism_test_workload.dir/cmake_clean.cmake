file(REMOVE_RECURSE
  "CMakeFiles/prism_test_workload.dir/test_apps.cpp.o"
  "CMakeFiles/prism_test_workload.dir/test_apps.cpp.o.d"
  "CMakeFiles/prism_test_workload.dir/test_multicomputer.cpp.o"
  "CMakeFiles/prism_test_workload.dir/test_multicomputer.cpp.o.d"
  "CMakeFiles/prism_test_workload.dir/test_thread_apps.cpp.o"
  "CMakeFiles/prism_test_workload.dir/test_thread_apps.cpp.o.d"
  "prism_test_workload"
  "prism_test_workload.pdb"
  "prism_test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
