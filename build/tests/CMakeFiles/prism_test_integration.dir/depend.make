# Empty dependencies file for prism_test_integration.
# This may be replaced when dependencies are built.
