file(REMOVE_RECURSE
  "CMakeFiles/prism_test_integration.dir/test_integration.cpp.o"
  "CMakeFiles/prism_test_integration.dir/test_integration.cpp.o.d"
  "CMakeFiles/prism_test_integration.dir/test_soak.cpp.o"
  "CMakeFiles/prism_test_integration.dir/test_soak.cpp.o.d"
  "prism_test_integration"
  "prism_test_integration.pdb"
  "prism_test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
