file(REMOVE_RECURSE
  "CMakeFiles/prism_test_vista.dir/test_vista_analytic.cpp.o"
  "CMakeFiles/prism_test_vista.dir/test_vista_analytic.cpp.o.d"
  "CMakeFiles/prism_test_vista.dir/test_vista_model.cpp.o"
  "CMakeFiles/prism_test_vista.dir/test_vista_model.cpp.o.d"
  "CMakeFiles/prism_test_vista.dir/test_vista_testbed.cpp.o"
  "CMakeFiles/prism_test_vista.dir/test_vista_testbed.cpp.o.d"
  "prism_test_vista"
  "prism_test_vista.pdb"
  "prism_test_vista[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_test_vista.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
