# Empty dependencies file for prism_test_vista.
# This may be replaced when dependencies are built.
