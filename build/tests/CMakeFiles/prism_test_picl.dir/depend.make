# Empty dependencies file for prism_test_picl.
# This may be replaced when dependencies are built.
