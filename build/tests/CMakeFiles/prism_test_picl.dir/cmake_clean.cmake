file(REMOVE_RECURSE
  "CMakeFiles/prism_test_picl.dir/test_picl_analytic.cpp.o"
  "CMakeFiles/prism_test_picl.dir/test_picl_analytic.cpp.o.d"
  "CMakeFiles/prism_test_picl.dir/test_picl_library.cpp.o"
  "CMakeFiles/prism_test_picl.dir/test_picl_library.cpp.o.d"
  "CMakeFiles/prism_test_picl.dir/test_picl_sim.cpp.o"
  "CMakeFiles/prism_test_picl.dir/test_picl_sim.cpp.o.d"
  "prism_test_picl"
  "prism_test_picl.pdb"
  "prism_test_picl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_test_picl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
