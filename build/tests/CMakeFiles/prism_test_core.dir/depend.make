# Empty dependencies file for prism_test_core.
# This may be replaced when dependencies are built.
