
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_channel.cpp" "tests/CMakeFiles/prism_test_core.dir/test_channel.cpp.o" "gcc" "tests/CMakeFiles/prism_test_core.dir/test_channel.cpp.o.d"
  "/root/repo/tests/test_config_io.cpp" "tests/CMakeFiles/prism_test_core.dir/test_config_io.cpp.o" "gcc" "tests/CMakeFiles/prism_test_core.dir/test_config_io.cpp.o.d"
  "/root/repo/tests/test_environment.cpp" "tests/CMakeFiles/prism_test_core.dir/test_environment.cpp.o" "gcc" "tests/CMakeFiles/prism_test_core.dir/test_environment.cpp.o.d"
  "/root/repo/tests/test_environment_matrix.cpp" "tests/CMakeFiles/prism_test_core.dir/test_environment_matrix.cpp.o" "gcc" "tests/CMakeFiles/prism_test_core.dir/test_environment_matrix.cpp.o.d"
  "/root/repo/tests/test_flush_policy.cpp" "tests/CMakeFiles/prism_test_core.dir/test_flush_policy.cpp.o" "gcc" "tests/CMakeFiles/prism_test_core.dir/test_flush_policy.cpp.o.d"
  "/root/repo/tests/test_ism.cpp" "tests/CMakeFiles/prism_test_core.dir/test_ism.cpp.o" "gcc" "tests/CMakeFiles/prism_test_core.dir/test_ism.cpp.o.d"
  "/root/repo/tests/test_lis.cpp" "tests/CMakeFiles/prism_test_core.dir/test_lis.cpp.o" "gcc" "tests/CMakeFiles/prism_test_core.dir/test_lis.cpp.o.d"
  "/root/repo/tests/test_posix_pipe.cpp" "tests/CMakeFiles/prism_test_core.dir/test_posix_pipe.cpp.o" "gcc" "tests/CMakeFiles/prism_test_core.dir/test_posix_pipe.cpp.o.d"
  "/root/repo/tests/test_probe_registry.cpp" "tests/CMakeFiles/prism_test_core.dir/test_probe_registry.cpp.o" "gcc" "tests/CMakeFiles/prism_test_core.dir/test_probe_registry.cpp.o.d"
  "/root/repo/tests/test_sensor.cpp" "tests/CMakeFiles/prism_test_core.dir/test_sensor.cpp.o" "gcc" "tests/CMakeFiles/prism_test_core.dir/test_sensor.cpp.o.d"
  "/root/repo/tests/test_throttle.cpp" "tests/CMakeFiles/prism_test_core.dir/test_throttle.cpp.o" "gcc" "tests/CMakeFiles/prism_test_core.dir/test_throttle.cpp.o.d"
  "/root/repo/tests/test_tool_registry.cpp" "tests/CMakeFiles/prism_test_core.dir/test_tool_registry.cpp.o" "gcc" "tests/CMakeFiles/prism_test_core.dir/test_tool_registry.cpp.o.d"
  "/root/repo/tests/test_tools.cpp" "tests/CMakeFiles/prism_test_core.dir/test_tools.cpp.o" "gcc" "tests/CMakeFiles/prism_test_core.dir/test_tools.cpp.o.d"
  "/root/repo/tests/test_transfer_protocol.cpp" "tests/CMakeFiles/prism_test_core.dir/test_transfer_protocol.cpp.o" "gcc" "tests/CMakeFiles/prism_test_core.dir/test_transfer_protocol.cpp.o.d"
  "/root/repo/tests/test_views.cpp" "tests/CMakeFiles/prism_test_core.dir/test_views.cpp.o" "gcc" "tests/CMakeFiles/prism_test_core.dir/test_views.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prism_picl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_paradyn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_rocc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_vista.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_spi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
