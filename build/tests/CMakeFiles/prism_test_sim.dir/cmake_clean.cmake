file(REMOVE_RECURSE
  "CMakeFiles/prism_test_sim.dir/test_collectors.cpp.o"
  "CMakeFiles/prism_test_sim.dir/test_collectors.cpp.o.d"
  "CMakeFiles/prism_test_sim.dir/test_mser.cpp.o"
  "CMakeFiles/prism_test_sim.dir/test_mser.cpp.o.d"
  "CMakeFiles/prism_test_sim.dir/test_replication.cpp.o"
  "CMakeFiles/prism_test_sim.dir/test_replication.cpp.o.d"
  "CMakeFiles/prism_test_sim.dir/test_sim_engine.cpp.o"
  "CMakeFiles/prism_test_sim.dir/test_sim_engine.cpp.o.d"
  "prism_test_sim"
  "prism_test_sim.pdb"
  "prism_test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
