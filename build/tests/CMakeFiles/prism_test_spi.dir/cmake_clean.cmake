file(REMOVE_RECURSE
  "CMakeFiles/prism_test_spi.dir/test_spi.cpp.o"
  "CMakeFiles/prism_test_spi.dir/test_spi.cpp.o.d"
  "prism_test_spi"
  "prism_test_spi.pdb"
  "prism_test_spi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_test_spi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
