# Empty dependencies file for prism_test_spi.
# This may be replaced when dependencies are built.
