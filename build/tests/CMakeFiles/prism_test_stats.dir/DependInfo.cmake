
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_distributions.cpp" "tests/CMakeFiles/prism_test_stats.dir/test_distributions.cpp.o" "gcc" "tests/CMakeFiles/prism_test_stats.dir/test_distributions.cpp.o.d"
  "/root/repo/tests/test_erlang.cpp" "tests/CMakeFiles/prism_test_stats.dir/test_erlang.cpp.o" "gcc" "tests/CMakeFiles/prism_test_stats.dir/test_erlang.cpp.o.d"
  "/root/repo/tests/test_factorial.cpp" "tests/CMakeFiles/prism_test_stats.dir/test_factorial.cpp.o" "gcc" "tests/CMakeFiles/prism_test_stats.dir/test_factorial.cpp.o.d"
  "/root/repo/tests/test_histogram.cpp" "tests/CMakeFiles/prism_test_stats.dir/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/prism_test_stats.dir/test_histogram.cpp.o.d"
  "/root/repo/tests/test_quantile.cpp" "tests/CMakeFiles/prism_test_stats.dir/test_quantile.cpp.o" "gcc" "tests/CMakeFiles/prism_test_stats.dir/test_quantile.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/prism_test_stats.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/prism_test_stats.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_special.cpp" "tests/CMakeFiles/prism_test_stats.dir/test_special.cpp.o" "gcc" "tests/CMakeFiles/prism_test_stats.dir/test_special.cpp.o.d"
  "/root/repo/tests/test_summary.cpp" "tests/CMakeFiles/prism_test_stats.dir/test_summary.cpp.o" "gcc" "tests/CMakeFiles/prism_test_stats.dir/test_summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prism_picl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_paradyn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_rocc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_vista.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_spi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
