file(REMOVE_RECURSE
  "CMakeFiles/prism_test_stats.dir/test_distributions.cpp.o"
  "CMakeFiles/prism_test_stats.dir/test_distributions.cpp.o.d"
  "CMakeFiles/prism_test_stats.dir/test_erlang.cpp.o"
  "CMakeFiles/prism_test_stats.dir/test_erlang.cpp.o.d"
  "CMakeFiles/prism_test_stats.dir/test_factorial.cpp.o"
  "CMakeFiles/prism_test_stats.dir/test_factorial.cpp.o.d"
  "CMakeFiles/prism_test_stats.dir/test_histogram.cpp.o"
  "CMakeFiles/prism_test_stats.dir/test_histogram.cpp.o.d"
  "CMakeFiles/prism_test_stats.dir/test_quantile.cpp.o"
  "CMakeFiles/prism_test_stats.dir/test_quantile.cpp.o.d"
  "CMakeFiles/prism_test_stats.dir/test_rng.cpp.o"
  "CMakeFiles/prism_test_stats.dir/test_rng.cpp.o.d"
  "CMakeFiles/prism_test_stats.dir/test_special.cpp.o"
  "CMakeFiles/prism_test_stats.dir/test_special.cpp.o.d"
  "CMakeFiles/prism_test_stats.dir/test_summary.cpp.o"
  "CMakeFiles/prism_test_stats.dir/test_summary.cpp.o.d"
  "prism_test_stats"
  "prism_test_stats.pdb"
  "prism_test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
