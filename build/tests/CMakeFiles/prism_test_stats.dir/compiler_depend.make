# Empty compiler generated dependencies file for prism_test_stats.
# This may be replaced when dependencies are built.
