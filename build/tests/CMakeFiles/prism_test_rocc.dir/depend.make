# Empty dependencies file for prism_test_rocc.
# This may be replaced when dependencies are built.
