file(REMOVE_RECURSE
  "CMakeFiles/prism_test_rocc.dir/test_rocc.cpp.o"
  "CMakeFiles/prism_test_rocc.dir/test_rocc.cpp.o.d"
  "prism_test_rocc"
  "prism_test_rocc.pdb"
  "prism_test_rocc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_test_rocc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
