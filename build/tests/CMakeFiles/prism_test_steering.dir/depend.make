# Empty dependencies file for prism_test_steering.
# This may be replaced when dependencies are built.
