file(REMOVE_RECURSE
  "CMakeFiles/prism_test_steering.dir/test_steering_calibrate.cpp.o"
  "CMakeFiles/prism_test_steering.dir/test_steering_calibrate.cpp.o.d"
  "prism_test_steering"
  "prism_test_steering.pdb"
  "prism_test_steering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_test_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
