file(REMOVE_RECURSE
  "CMakeFiles/prism_test_queueing.dir/test_queueing.cpp.o"
  "CMakeFiles/prism_test_queueing.dir/test_queueing.cpp.o.d"
  "prism_test_queueing"
  "prism_test_queueing.pdb"
  "prism_test_queueing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_test_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
