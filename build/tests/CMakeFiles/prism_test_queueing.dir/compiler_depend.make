# Empty compiler generated dependencies file for prism_test_queueing.
# This may be replaced when dependencies are built.
