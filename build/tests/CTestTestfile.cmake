# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/prism_test_stats[1]_include.cmake")
include("/root/repo/build/tests/prism_test_sim[1]_include.cmake")
include("/root/repo/build/tests/prism_test_queueing[1]_include.cmake")
include("/root/repo/build/tests/prism_test_rocc[1]_include.cmake")
include("/root/repo/build/tests/prism_test_trace[1]_include.cmake")
include("/root/repo/build/tests/prism_test_core[1]_include.cmake")
include("/root/repo/build/tests/prism_test_workload[1]_include.cmake")
include("/root/repo/build/tests/prism_test_picl[1]_include.cmake")
include("/root/repo/build/tests/prism_test_paradyn[1]_include.cmake")
include("/root/repo/build/tests/prism_test_vista[1]_include.cmake")
include("/root/repo/build/tests/prism_test_spi[1]_include.cmake")
include("/root/repo/build/tests/prism_test_steering[1]_include.cmake")
include("/root/repo/build/tests/prism_test_integration[1]_include.cmake")
