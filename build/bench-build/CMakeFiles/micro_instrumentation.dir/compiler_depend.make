# Empty compiler generated dependencies file for micro_instrumentation.
# This may be replaced when dependencies are built.
