file(REMOVE_RECURSE
  "../bench/micro_instrumentation"
  "../bench/micro_instrumentation.pdb"
  "CMakeFiles/micro_instrumentation.dir/micro_instrumentation.cpp.o"
  "CMakeFiles/micro_instrumentation.dir/micro_instrumentation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_instrumentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
