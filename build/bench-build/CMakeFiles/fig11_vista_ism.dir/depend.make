# Empty dependencies file for fig11_vista_ism.
# This may be replaced when dependencies are built.
