file(REMOVE_RECURSE
  "../bench/fig11_vista_ism"
  "../bench/fig11_vista_ism.pdb"
  "CMakeFiles/fig11_vista_ism.dir/fig11_vista_ism.cpp.o"
  "CMakeFiles/fig11_vista_ism.dir/fig11_vista_ism.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_vista_ism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
