# Empty compiler generated dependencies file for fig09_paradyn_rocc.
# This may be replaced when dependencies are built.
