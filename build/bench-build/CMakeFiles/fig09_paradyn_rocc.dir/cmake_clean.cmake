file(REMOVE_RECURSE
  "../bench/fig09_paradyn_rocc"
  "../bench/fig09_paradyn_rocc.pdb"
  "CMakeFiles/fig09_paradyn_rocc.dir/fig09_paradyn_rocc.cpp.o"
  "CMakeFiles/fig09_paradyn_rocc.dir/fig09_paradyn_rocc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_paradyn_rocc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
