# Empty compiler generated dependencies file for fig05_picl_flushing.
# This may be replaced when dependencies are built.
