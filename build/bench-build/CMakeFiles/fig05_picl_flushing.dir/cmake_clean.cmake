file(REMOVE_RECURSE
  "../bench/fig05_picl_flushing"
  "../bench/fig05_picl_flushing.pdb"
  "CMakeFiles/fig05_picl_flushing.dir/fig05_picl_flushing.cpp.o"
  "CMakeFiles/fig05_picl_flushing.dir/fig05_picl_flushing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_picl_flushing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
