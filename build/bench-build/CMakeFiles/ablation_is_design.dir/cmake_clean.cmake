file(REMOVE_RECURSE
  "../bench/ablation_is_design"
  "../bench/ablation_is_design.pdb"
  "CMakeFiles/ablation_is_design.dir/ablation_is_design.cpp.o"
  "CMakeFiles/ablation_is_design.dir/ablation_is_design.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_is_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
