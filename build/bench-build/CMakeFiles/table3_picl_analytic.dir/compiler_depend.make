# Empty compiler generated dependencies file for table3_picl_analytic.
# This may be replaced when dependencies are built.
