file(REMOVE_RECURSE
  "../bench/table3_picl_analytic"
  "../bench/table3_picl_analytic.pdb"
  "CMakeFiles/table3_picl_analytic.dir/table3_picl_analytic.cpp.o"
  "CMakeFiles/table3_picl_analytic.dir/table3_picl_analytic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_picl_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
