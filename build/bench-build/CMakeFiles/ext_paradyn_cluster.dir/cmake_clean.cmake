file(REMOVE_RECURSE
  "../bench/ext_paradyn_cluster"
  "../bench/ext_paradyn_cluster.pdb"
  "CMakeFiles/ext_paradyn_cluster.dir/ext_paradyn_cluster.cpp.o"
  "CMakeFiles/ext_paradyn_cluster.dir/ext_paradyn_cluster.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_paradyn_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
