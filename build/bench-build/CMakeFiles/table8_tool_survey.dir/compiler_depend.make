# Empty compiler generated dependencies file for table8_tool_survey.
# This may be replaced when dependencies are built.
