file(REMOVE_RECURSE
  "../bench/table8_tool_survey"
  "../bench/table8_tool_survey.pdb"
  "CMakeFiles/table8_tool_survey.dir/table8_tool_survey.cpp.o"
  "CMakeFiles/table8_tool_survey.dir/table8_tool_survey.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_tool_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
