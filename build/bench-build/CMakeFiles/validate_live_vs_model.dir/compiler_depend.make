# Empty compiler generated dependencies file for validate_live_vs_model.
# This may be replaced when dependencies are built.
