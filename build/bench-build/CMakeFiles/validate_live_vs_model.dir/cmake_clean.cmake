file(REMOVE_RECURSE
  "../bench/validate_live_vs_model"
  "../bench/validate_live_vs_model.pdb"
  "CMakeFiles/validate_live_vs_model.dir/validate_live_vs_model.cpp.o"
  "CMakeFiles/validate_live_vs_model.dir/validate_live_vs_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_live_vs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
