# Empty compiler generated dependencies file for prism_paradyn.
# This may be replaced when dependencies are built.
