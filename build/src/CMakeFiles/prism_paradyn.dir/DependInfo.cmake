
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paradyn/cluster_model.cpp" "src/CMakeFiles/prism_paradyn.dir/paradyn/cluster_model.cpp.o" "gcc" "src/CMakeFiles/prism_paradyn.dir/paradyn/cluster_model.cpp.o.d"
  "/root/repo/src/paradyn/cost_model.cpp" "src/CMakeFiles/prism_paradyn.dir/paradyn/cost_model.cpp.o" "gcc" "src/CMakeFiles/prism_paradyn.dir/paradyn/cost_model.cpp.o.d"
  "/root/repo/src/paradyn/live.cpp" "src/CMakeFiles/prism_paradyn.dir/paradyn/live.cpp.o" "gcc" "src/CMakeFiles/prism_paradyn.dir/paradyn/live.cpp.o.d"
  "/root/repo/src/paradyn/rocc_model.cpp" "src/CMakeFiles/prism_paradyn.dir/paradyn/rocc_model.cpp.o" "gcc" "src/CMakeFiles/prism_paradyn.dir/paradyn/rocc_model.cpp.o.d"
  "/root/repo/src/paradyn/w3_search.cpp" "src/CMakeFiles/prism_paradyn.dir/paradyn/w3_search.cpp.o" "gcc" "src/CMakeFiles/prism_paradyn.dir/paradyn/w3_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prism_rocc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
