file(REMOVE_RECURSE
  "CMakeFiles/prism_paradyn.dir/paradyn/cluster_model.cpp.o"
  "CMakeFiles/prism_paradyn.dir/paradyn/cluster_model.cpp.o.d"
  "CMakeFiles/prism_paradyn.dir/paradyn/cost_model.cpp.o"
  "CMakeFiles/prism_paradyn.dir/paradyn/cost_model.cpp.o.d"
  "CMakeFiles/prism_paradyn.dir/paradyn/live.cpp.o"
  "CMakeFiles/prism_paradyn.dir/paradyn/live.cpp.o.d"
  "CMakeFiles/prism_paradyn.dir/paradyn/rocc_model.cpp.o"
  "CMakeFiles/prism_paradyn.dir/paradyn/rocc_model.cpp.o.d"
  "CMakeFiles/prism_paradyn.dir/paradyn/w3_search.cpp.o"
  "CMakeFiles/prism_paradyn.dir/paradyn/w3_search.cpp.o.d"
  "libprism_paradyn.a"
  "libprism_paradyn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_paradyn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
