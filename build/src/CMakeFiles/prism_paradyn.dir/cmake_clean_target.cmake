file(REMOVE_RECURSE
  "libprism_paradyn.a"
)
