file(REMOVE_RECURSE
  "CMakeFiles/prism_trace.dir/trace/analysis.cpp.o"
  "CMakeFiles/prism_trace.dir/trace/analysis.cpp.o.d"
  "CMakeFiles/prism_trace.dir/trace/causal.cpp.o"
  "CMakeFiles/prism_trace.dir/trace/causal.cpp.o.d"
  "CMakeFiles/prism_trace.dir/trace/file.cpp.o"
  "CMakeFiles/prism_trace.dir/trace/file.cpp.o.d"
  "CMakeFiles/prism_trace.dir/trace/merge.cpp.o"
  "CMakeFiles/prism_trace.dir/trace/merge.cpp.o.d"
  "CMakeFiles/prism_trace.dir/trace/perturbation.cpp.o"
  "CMakeFiles/prism_trace.dir/trace/perturbation.cpp.o.d"
  "CMakeFiles/prism_trace.dir/trace/record.cpp.o"
  "CMakeFiles/prism_trace.dir/trace/record.cpp.o.d"
  "libprism_trace.a"
  "libprism_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
