file(REMOVE_RECURSE
  "libprism_trace.a"
)
