
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analysis.cpp" "src/CMakeFiles/prism_trace.dir/trace/analysis.cpp.o" "gcc" "src/CMakeFiles/prism_trace.dir/trace/analysis.cpp.o.d"
  "/root/repo/src/trace/causal.cpp" "src/CMakeFiles/prism_trace.dir/trace/causal.cpp.o" "gcc" "src/CMakeFiles/prism_trace.dir/trace/causal.cpp.o.d"
  "/root/repo/src/trace/file.cpp" "src/CMakeFiles/prism_trace.dir/trace/file.cpp.o" "gcc" "src/CMakeFiles/prism_trace.dir/trace/file.cpp.o.d"
  "/root/repo/src/trace/merge.cpp" "src/CMakeFiles/prism_trace.dir/trace/merge.cpp.o" "gcc" "src/CMakeFiles/prism_trace.dir/trace/merge.cpp.o.d"
  "/root/repo/src/trace/perturbation.cpp" "src/CMakeFiles/prism_trace.dir/trace/perturbation.cpp.o" "gcc" "src/CMakeFiles/prism_trace.dir/trace/perturbation.cpp.o.d"
  "/root/repo/src/trace/record.cpp" "src/CMakeFiles/prism_trace.dir/trace/record.cpp.o" "gcc" "src/CMakeFiles/prism_trace.dir/trace/record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prism_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
