# Empty compiler generated dependencies file for prism_trace.
# This may be replaced when dependencies are built.
