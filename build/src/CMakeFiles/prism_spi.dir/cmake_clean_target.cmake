file(REMOVE_RECURSE
  "libprism_spi.a"
)
