file(REMOVE_RECURSE
  "CMakeFiles/prism_spi.dir/spi/machine.cpp.o"
  "CMakeFiles/prism_spi.dir/spi/machine.cpp.o.d"
  "CMakeFiles/prism_spi.dir/spi/spec.cpp.o"
  "CMakeFiles/prism_spi.dir/spi/spec.cpp.o.d"
  "libprism_spi.a"
  "libprism_spi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_spi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
