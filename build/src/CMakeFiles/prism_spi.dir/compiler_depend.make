# Empty compiler generated dependencies file for prism_spi.
# This may be replaced when dependencies are built.
