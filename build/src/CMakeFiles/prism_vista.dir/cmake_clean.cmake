file(REMOVE_RECURSE
  "CMakeFiles/prism_vista.dir/vista/analytic.cpp.o"
  "CMakeFiles/prism_vista.dir/vista/analytic.cpp.o.d"
  "CMakeFiles/prism_vista.dir/vista/ism_model.cpp.o"
  "CMakeFiles/prism_vista.dir/vista/ism_model.cpp.o.d"
  "CMakeFiles/prism_vista.dir/vista/testbed.cpp.o"
  "CMakeFiles/prism_vista.dir/vista/testbed.cpp.o.d"
  "libprism_vista.a"
  "libprism_vista.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_vista.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
