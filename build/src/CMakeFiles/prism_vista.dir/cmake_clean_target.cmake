file(REMOVE_RECURSE
  "libprism_vista.a"
)
