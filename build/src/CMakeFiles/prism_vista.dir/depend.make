# Empty dependencies file for prism_vista.
# This may be replaced when dependencies are built.
