# Empty dependencies file for prism_queueing.
# This may be replaced when dependencies are built.
