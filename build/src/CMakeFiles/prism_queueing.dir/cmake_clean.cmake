file(REMOVE_RECURSE
  "CMakeFiles/prism_queueing.dir/queueing/analytic.cpp.o"
  "CMakeFiles/prism_queueing.dir/queueing/analytic.cpp.o.d"
  "libprism_queueing.a"
  "libprism_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
