file(REMOVE_RECURSE
  "libprism_queueing.a"
)
