file(REMOVE_RECURSE
  "libprism_stats.a"
)
