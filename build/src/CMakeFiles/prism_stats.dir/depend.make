# Empty dependencies file for prism_stats.
# This may be replaced when dependencies are built.
