
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/distributions.cpp" "src/CMakeFiles/prism_stats.dir/stats/distributions.cpp.o" "gcc" "src/CMakeFiles/prism_stats.dir/stats/distributions.cpp.o.d"
  "/root/repo/src/stats/erlang.cpp" "src/CMakeFiles/prism_stats.dir/stats/erlang.cpp.o" "gcc" "src/CMakeFiles/prism_stats.dir/stats/erlang.cpp.o.d"
  "/root/repo/src/stats/factorial.cpp" "src/CMakeFiles/prism_stats.dir/stats/factorial.cpp.o" "gcc" "src/CMakeFiles/prism_stats.dir/stats/factorial.cpp.o.d"
  "/root/repo/src/stats/quantile.cpp" "src/CMakeFiles/prism_stats.dir/stats/quantile.cpp.o" "gcc" "src/CMakeFiles/prism_stats.dir/stats/quantile.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/CMakeFiles/prism_stats.dir/stats/special.cpp.o" "gcc" "src/CMakeFiles/prism_stats.dir/stats/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
