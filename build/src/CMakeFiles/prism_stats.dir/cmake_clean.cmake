file(REMOVE_RECURSE
  "CMakeFiles/prism_stats.dir/stats/distributions.cpp.o"
  "CMakeFiles/prism_stats.dir/stats/distributions.cpp.o.d"
  "CMakeFiles/prism_stats.dir/stats/erlang.cpp.o"
  "CMakeFiles/prism_stats.dir/stats/erlang.cpp.o.d"
  "CMakeFiles/prism_stats.dir/stats/factorial.cpp.o"
  "CMakeFiles/prism_stats.dir/stats/factorial.cpp.o.d"
  "CMakeFiles/prism_stats.dir/stats/quantile.cpp.o"
  "CMakeFiles/prism_stats.dir/stats/quantile.cpp.o.d"
  "CMakeFiles/prism_stats.dir/stats/special.cpp.o"
  "CMakeFiles/prism_stats.dir/stats/special.cpp.o.d"
  "libprism_stats.a"
  "libprism_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
