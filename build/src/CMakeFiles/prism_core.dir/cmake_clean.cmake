file(REMOVE_RECURSE
  "CMakeFiles/prism_core.dir/core/config_io.cpp.o"
  "CMakeFiles/prism_core.dir/core/config_io.cpp.o.d"
  "CMakeFiles/prism_core.dir/core/environment.cpp.o"
  "CMakeFiles/prism_core.dir/core/environment.cpp.o.d"
  "CMakeFiles/prism_core.dir/core/ism.cpp.o"
  "CMakeFiles/prism_core.dir/core/ism.cpp.o.d"
  "CMakeFiles/prism_core.dir/core/lis.cpp.o"
  "CMakeFiles/prism_core.dir/core/lis.cpp.o.d"
  "CMakeFiles/prism_core.dir/core/posix_pipe.cpp.o"
  "CMakeFiles/prism_core.dir/core/posix_pipe.cpp.o.d"
  "CMakeFiles/prism_core.dir/core/probe_registry.cpp.o"
  "CMakeFiles/prism_core.dir/core/probe_registry.cpp.o.d"
  "CMakeFiles/prism_core.dir/core/steering.cpp.o"
  "CMakeFiles/prism_core.dir/core/steering.cpp.o.d"
  "CMakeFiles/prism_core.dir/core/throttle.cpp.o"
  "CMakeFiles/prism_core.dir/core/throttle.cpp.o.d"
  "CMakeFiles/prism_core.dir/core/tool.cpp.o"
  "CMakeFiles/prism_core.dir/core/tool.cpp.o.d"
  "CMakeFiles/prism_core.dir/core/tool_registry.cpp.o"
  "CMakeFiles/prism_core.dir/core/tool_registry.cpp.o.d"
  "CMakeFiles/prism_core.dir/core/transfer_protocol.cpp.o"
  "CMakeFiles/prism_core.dir/core/transfer_protocol.cpp.o.d"
  "CMakeFiles/prism_core.dir/core/views.cpp.o"
  "CMakeFiles/prism_core.dir/core/views.cpp.o.d"
  "libprism_core.a"
  "libprism_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
