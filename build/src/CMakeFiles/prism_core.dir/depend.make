# Empty dependencies file for prism_core.
# This may be replaced when dependencies are built.
