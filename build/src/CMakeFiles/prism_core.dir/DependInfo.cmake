
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config_io.cpp" "src/CMakeFiles/prism_core.dir/core/config_io.cpp.o" "gcc" "src/CMakeFiles/prism_core.dir/core/config_io.cpp.o.d"
  "/root/repo/src/core/environment.cpp" "src/CMakeFiles/prism_core.dir/core/environment.cpp.o" "gcc" "src/CMakeFiles/prism_core.dir/core/environment.cpp.o.d"
  "/root/repo/src/core/ism.cpp" "src/CMakeFiles/prism_core.dir/core/ism.cpp.o" "gcc" "src/CMakeFiles/prism_core.dir/core/ism.cpp.o.d"
  "/root/repo/src/core/lis.cpp" "src/CMakeFiles/prism_core.dir/core/lis.cpp.o" "gcc" "src/CMakeFiles/prism_core.dir/core/lis.cpp.o.d"
  "/root/repo/src/core/posix_pipe.cpp" "src/CMakeFiles/prism_core.dir/core/posix_pipe.cpp.o" "gcc" "src/CMakeFiles/prism_core.dir/core/posix_pipe.cpp.o.d"
  "/root/repo/src/core/probe_registry.cpp" "src/CMakeFiles/prism_core.dir/core/probe_registry.cpp.o" "gcc" "src/CMakeFiles/prism_core.dir/core/probe_registry.cpp.o.d"
  "/root/repo/src/core/steering.cpp" "src/CMakeFiles/prism_core.dir/core/steering.cpp.o" "gcc" "src/CMakeFiles/prism_core.dir/core/steering.cpp.o.d"
  "/root/repo/src/core/throttle.cpp" "src/CMakeFiles/prism_core.dir/core/throttle.cpp.o" "gcc" "src/CMakeFiles/prism_core.dir/core/throttle.cpp.o.d"
  "/root/repo/src/core/tool.cpp" "src/CMakeFiles/prism_core.dir/core/tool.cpp.o" "gcc" "src/CMakeFiles/prism_core.dir/core/tool.cpp.o.d"
  "/root/repo/src/core/tool_registry.cpp" "src/CMakeFiles/prism_core.dir/core/tool_registry.cpp.o" "gcc" "src/CMakeFiles/prism_core.dir/core/tool_registry.cpp.o.d"
  "/root/repo/src/core/transfer_protocol.cpp" "src/CMakeFiles/prism_core.dir/core/transfer_protocol.cpp.o" "gcc" "src/CMakeFiles/prism_core.dir/core/transfer_protocol.cpp.o.d"
  "/root/repo/src/core/views.cpp" "src/CMakeFiles/prism_core.dir/core/views.cpp.o" "gcc" "src/CMakeFiles/prism_core.dir/core/views.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prism_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
