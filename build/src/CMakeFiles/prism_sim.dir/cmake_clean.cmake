file(REMOVE_RECURSE
  "CMakeFiles/prism_sim.dir/sim/collectors.cpp.o"
  "CMakeFiles/prism_sim.dir/sim/collectors.cpp.o.d"
  "CMakeFiles/prism_sim.dir/sim/replication.cpp.o"
  "CMakeFiles/prism_sim.dir/sim/replication.cpp.o.d"
  "libprism_sim.a"
  "libprism_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
