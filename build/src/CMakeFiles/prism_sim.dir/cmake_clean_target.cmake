file(REMOVE_RECURSE
  "libprism_sim.a"
)
