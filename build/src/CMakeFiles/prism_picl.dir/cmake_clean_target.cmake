file(REMOVE_RECURSE
  "libprism_picl.a"
)
