# Empty dependencies file for prism_picl.
# This may be replaced when dependencies are built.
