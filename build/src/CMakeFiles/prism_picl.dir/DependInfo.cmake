
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/picl/analytic_model.cpp" "src/CMakeFiles/prism_picl.dir/picl/analytic_model.cpp.o" "gcc" "src/CMakeFiles/prism_picl.dir/picl/analytic_model.cpp.o.d"
  "/root/repo/src/picl/calibrate.cpp" "src/CMakeFiles/prism_picl.dir/picl/calibrate.cpp.o" "gcc" "src/CMakeFiles/prism_picl.dir/picl/calibrate.cpp.o.d"
  "/root/repo/src/picl/flush_sim.cpp" "src/CMakeFiles/prism_picl.dir/picl/flush_sim.cpp.o" "gcc" "src/CMakeFiles/prism_picl.dir/picl/flush_sim.cpp.o.d"
  "/root/repo/src/picl/library.cpp" "src/CMakeFiles/prism_picl.dir/picl/library.cpp.o" "gcc" "src/CMakeFiles/prism_picl.dir/picl/library.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prism_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
