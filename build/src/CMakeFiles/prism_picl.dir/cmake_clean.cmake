file(REMOVE_RECURSE
  "CMakeFiles/prism_picl.dir/picl/analytic_model.cpp.o"
  "CMakeFiles/prism_picl.dir/picl/analytic_model.cpp.o.d"
  "CMakeFiles/prism_picl.dir/picl/calibrate.cpp.o"
  "CMakeFiles/prism_picl.dir/picl/calibrate.cpp.o.d"
  "CMakeFiles/prism_picl.dir/picl/flush_sim.cpp.o"
  "CMakeFiles/prism_picl.dir/picl/flush_sim.cpp.o.d"
  "CMakeFiles/prism_picl.dir/picl/library.cpp.o"
  "CMakeFiles/prism_picl.dir/picl/library.cpp.o.d"
  "libprism_picl.a"
  "libprism_picl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_picl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
