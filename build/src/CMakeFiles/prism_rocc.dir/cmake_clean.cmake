file(REMOVE_RECURSE
  "CMakeFiles/prism_rocc.dir/rocc/model.cpp.o"
  "CMakeFiles/prism_rocc.dir/rocc/model.cpp.o.d"
  "CMakeFiles/prism_rocc.dir/rocc/process.cpp.o"
  "CMakeFiles/prism_rocc.dir/rocc/process.cpp.o.d"
  "CMakeFiles/prism_rocc.dir/rocc/resource.cpp.o"
  "CMakeFiles/prism_rocc.dir/rocc/resource.cpp.o.d"
  "libprism_rocc.a"
  "libprism_rocc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_rocc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
