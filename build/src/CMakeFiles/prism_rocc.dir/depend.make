# Empty dependencies file for prism_rocc.
# This may be replaced when dependencies are built.
