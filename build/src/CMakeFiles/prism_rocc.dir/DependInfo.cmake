
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rocc/model.cpp" "src/CMakeFiles/prism_rocc.dir/rocc/model.cpp.o" "gcc" "src/CMakeFiles/prism_rocc.dir/rocc/model.cpp.o.d"
  "/root/repo/src/rocc/process.cpp" "src/CMakeFiles/prism_rocc.dir/rocc/process.cpp.o" "gcc" "src/CMakeFiles/prism_rocc.dir/rocc/process.cpp.o.d"
  "/root/repo/src/rocc/resource.cpp" "src/CMakeFiles/prism_rocc.dir/rocc/resource.cpp.o" "gcc" "src/CMakeFiles/prism_rocc.dir/rocc/resource.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prism_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
