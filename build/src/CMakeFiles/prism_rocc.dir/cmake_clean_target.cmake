file(REMOVE_RECURSE
  "libprism_rocc.a"
)
