file(REMOVE_RECURSE
  "CMakeFiles/prism_workload.dir/workload/apps.cpp.o"
  "CMakeFiles/prism_workload.dir/workload/apps.cpp.o.d"
  "CMakeFiles/prism_workload.dir/workload/multicomputer.cpp.o"
  "CMakeFiles/prism_workload.dir/workload/multicomputer.cpp.o.d"
  "CMakeFiles/prism_workload.dir/workload/thread_apps.cpp.o"
  "CMakeFiles/prism_workload.dir/workload/thread_apps.cpp.o.d"
  "libprism_workload.a"
  "libprism_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
