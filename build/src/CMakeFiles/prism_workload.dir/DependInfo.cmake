
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/apps.cpp" "src/CMakeFiles/prism_workload.dir/workload/apps.cpp.o" "gcc" "src/CMakeFiles/prism_workload.dir/workload/apps.cpp.o.d"
  "/root/repo/src/workload/multicomputer.cpp" "src/CMakeFiles/prism_workload.dir/workload/multicomputer.cpp.o" "gcc" "src/CMakeFiles/prism_workload.dir/workload/multicomputer.cpp.o.d"
  "/root/repo/src/workload/thread_apps.cpp" "src/CMakeFiles/prism_workload.dir/workload/thread_apps.cpp.o" "gcc" "src/CMakeFiles/prism_workload.dir/workload/thread_apps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prism_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prism_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
