# Empty dependencies file for prism_workload.
# This may be replaced when dependencies are built.
