// Monte-Carlo simulation of the PICL buffer fill/flush regenerative process.
//
// "These results were compared and validated with simulation and measurement
// results" (§3.1.3) — this is that simulation.  The simulator tracks P
// Poisson arrival streams event-by-event (exact, no approximation of the
// minimum fill time), applies either policy including record carry-over
// accumulated during flush intervals, and estimates:
//   * trace stopping time per cycle,
//   * flushing frequency (flushes per arrival at a buffer),
//   * program-interruption rate (flush operations per unit time),
//   * fraction of time in the flushing state (Smith's theorem check).
// Both policies can be driven with common random numbers (same seed) for a
// sharp comparison.
#pragma once

#include <cstdint>

#include "picl/analytic_model.hpp"
#include "sim/collectors.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace prism::picl {

struct FlushSimResult {
  /// Per-cycle trace stopping times (FOF: the per-buffer fill time of a
  /// tagged buffer; FAOF: time until the first buffer fills).
  stats::Summary stopping_time;
  /// Flushes per arrival, averaged over buffers (the Fig. 5 metric).
  double flushing_frequency = 0;
  /// Delta-method CI-capable regenerative estimate of the same.
  sim::RegenerativeEstimator frequency_estimator;
  /// Flush interruptions per unit time, system-wide.
  double interruption_rate = 0;
  /// Fraction of simulated time spent flushing.
  double flush_time_fraction = 0;
  std::uint64_t total_flushes = 0;
  std::uint64_t total_arrivals = 0;
  double simulated_time = 0;
};

/// Simulates `cycles` regenerative cycles of the FOF policy.  FOF cycles
/// are per-buffer and iid, so a single tagged buffer is simulated.
FlushSimResult simulate_fof(const PiclModelParams& p, unsigned cycles,
                            stats::Rng rng);

/// Simulates `cycles` gang-flush cycles of the FAOF policy across all P
/// buffers (exact minimum fill times via per-stream event simulation).
FlushSimResult simulate_faof(const PiclModelParams& p, unsigned cycles,
                             stats::Rng rng);

/// Robustness variants: the paper's model assumes Poisson arrivals; these
/// run the same regenerative simulations with an arbitrary renewal
/// inter-arrival distribution (e.g. bursty hyperexponential), so the
/// FOF-vs-FAOF conclusion can be stress-tested beyond the model's
/// assumptions.  `gap` must have the mean 1/p.arrival_rate semantics the
/// caller intends; p.arrival_rate is ignored for fill times (still used for
/// the analytic f(l) cost).
FlushSimResult simulate_fof_renewal(const PiclModelParams& p, unsigned cycles,
                                    const stats::Distribution& gap,
                                    stats::Rng rng);
FlushSimResult simulate_faof_renewal(const PiclModelParams& p,
                                     unsigned cycles,
                                     const stats::Distribution& gap,
                                     stats::Rng rng);

}  // namespace prism::picl
