#include "picl/analytic_model.hpp"

#include <stdexcept>

#include "stats/erlang.hpp"

namespace prism::picl {

void PiclModelParams::validate() const {
  if (buffer_capacity == 0)
    throw std::invalid_argument("PiclModelParams: buffer_capacity == 0");
  if (!(arrival_rate > 0))
    throw std::invalid_argument("PiclModelParams: arrival_rate <= 0");
  if (nodes == 0) throw std::invalid_argument("PiclModelParams: nodes == 0");
  if (flush_cost_base < 0 || flush_cost_per_record < 0)
    throw std::invalid_argument("PiclModelParams: negative flush cost");
}

double fof_stopping_time_cdf(const PiclModelParams& p, double t) {
  p.validate();
  return stats::erlang_cdf(p.buffer_capacity, p.arrival_rate, t);
}

double fof_expected_stopping_time(const PiclModelParams& p) {
  p.validate();
  return stats::erlang_mean(p.buffer_capacity, p.arrival_rate);
}

double faof_stopping_time_tail(const PiclModelParams& p, double t) {
  p.validate();
  return stats::erlang_min_tail(p.buffer_capacity, p.arrival_rate, p.nodes, t);
}

double faof_expected_stopping_time(const PiclModelParams& p) {
  p.validate();
  return stats::erlang_min_mean(p.buffer_capacity, p.arrival_rate, p.nodes);
}

double faof_stopping_time_lower_bound(const PiclModelParams& p) {
  p.validate();
  return stats::erlang_min_mean_lower_bound(p.buffer_capacity, p.arrival_rate,
                                            p.nodes);
}

double fof_flushing_frequency(const PiclModelParams& p) {
  p.validate();
  return 1.0 /
         (p.buffer_capacity + p.arrival_rate * p.flush_cost());
}

double faof_flushing_frequency_bound(const PiclModelParams& p) {
  p.validate();
  return 1.0 / (p.buffer_capacity +
                p.nodes * p.arrival_rate * p.flush_cost());
}

double faof_flushing_frequency_exact(const PiclModelParams& p) {
  p.validate();
  const double fill_arrivals =
      p.arrival_rate * faof_expected_stopping_time(p);
  const double flush_arrivals =
      p.arrival_rate * p.nodes * p.flush_cost();
  return 1.0 / (fill_arrivals + flush_arrivals);
}

double fof_interruption_rate(const PiclModelParams& p) {
  p.validate();
  const double cycle = fof_expected_stopping_time(p) + p.flush_cost();
  return p.nodes / cycle;
}

double faof_interruption_rate(const PiclModelParams& p) {
  p.validate();
  const double cycle =
      faof_expected_stopping_time(p) + p.nodes * p.flush_cost();
  return 1.0 / cycle;
}

double fof_flush_time_fraction(const PiclModelParams& p) {
  p.validate();
  const double cycle = fof_expected_stopping_time(p) + p.flush_cost();
  return p.flush_cost() / cycle;
}

double faof_flush_time_fraction(const PiclModelParams& p) {
  p.validate();
  const double flush = p.nodes * p.flush_cost();
  const double cycle = faof_expected_stopping_time(p) + flush;
  return flush / cycle;
}

}  // namespace prism::picl
