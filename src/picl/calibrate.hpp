// Trace-driven model calibration (§5 item 3: "appropriately characterizing
// IS workload to enhance the power and accuracy of the models").
//
// Given a trace captured from a real or simulated run, fit the PICL model's
// arrival rate from the measured per-stream inter-arrival process, so the
// Figure-1 loop can be driven by observed workloads instead of guesses.
#pragma once

#include <vector>

#include "picl/analytic_model.hpp"
#include "trace/analysis.hpp"
#include "trace/record.hpp"

namespace prism::picl {

struct CalibrationReport {
  PiclModelParams params;
  trace::ArrivalCharacterization workload;
  /// True when the Poisson-arrivals assumption looks tenable
  /// (inter-arrival CV within [0.5, 1.5]).
  bool poisson_plausible = false;
};

/// Fits arrival_rate (events per timestamp unit, per node) from `records`;
/// buffer capacity, node count, and flush-cost coefficients come from the
/// deployment configuration being evaluated.
CalibrationReport calibrate_picl_model(
    const std::vector<trace::EventRecord>& records, unsigned buffer_capacity,
    unsigned nodes, double flush_cost_base, double flush_cost_per_record);

}  // namespace prism::picl
