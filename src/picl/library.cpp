#include "picl/library.hpp"

#include <stdexcept>

#include "trace/file.hpp"
#include "trace/merge.hpp"

namespace prism::picl {

namespace {
/// Process id used for IS self-events (flush markers) so they never collide
/// with application process streams.
constexpr std::uint32_t kIsProcess = 0xFFFFFFFFu;
}  // namespace

PiclInstrumentation::PiclInstrumentation(workload::Multicomputer& mc,
                                         PiclConfig config)
    : mc_(mc), config_(config) {
  if (config_.buffer_capacity == 0)
    throw std::invalid_argument("PiclInstrumentation: buffer capacity 0");
  const std::uint32_t P = mc.nodes();
  buffers_.reserve(P);
  for (std::uint32_t n = 0; n < P; ++n)
    buffers_.emplace_back(config_.buffer_capacity,
                          trace::OverflowPolicy::kDrop);
  host_segments_.resize(P);
  reports_.resize(P);
  flush_seq_.resize(P, 0);
  mc_.set_instrumentation([this](const trace::EventRecord& r) { on_event(r); });
}

void PiclInstrumentation::on_event(const trace::EventRecord& r) {
  if (finalized_) return;
  auto& buf = buffers_.at(r.node);
  if (buf.append(r)) {
    ++reports_[r.node].records;
  } else {
    ++reports_[r.node].dropped;
  }
  if (buf.full()) {
    if (config_.flush_all_on_fill) {
      flush_all();
    } else {
      flush_node(r.node);
    }
  }
}

void PiclInstrumentation::flush_node(std::uint32_t n) {
  auto& buf = buffers_.at(n);
  if (buf.empty()) return;
  auto drained = buf.drain();
  ++reports_[n].flushes;
  auto& seg = host_segments_[n];
  if (config_.flush_cost_base > 0 || config_.flush_cost_per_record > 0) {
    const std::uint64_t t0 = mc_.timestamp_now();
    const auto cost_ns = static_cast<std::uint64_t>(
        flush_cost(drained.size()) * mc_.time_scale_ns());
    trace::EventRecord begin;
    begin.timestamp = t0;
    begin.node = n;
    begin.process = kIsProcess;
    begin.kind = trace::EventKind::kFlushBegin;
    begin.payload = drained.size();
    begin.seq = flush_seq_[n]++;
    trace::EventRecord end = begin;
    end.timestamp = t0 + cost_ns;
    end.kind = trace::EventKind::kFlushEnd;
    end.seq = flush_seq_[n]++;
    seg.push_back(begin);
    seg.insert(seg.end(), drained.begin(), drained.end());
    seg.push_back(end);
  } else {
    seg.insert(seg.end(), drained.begin(), drained.end());
  }
}

void PiclInstrumentation::flush_all() {
  for (std::uint32_t n = 0; n < buffers_.size(); ++n) flush_node(n);
}

std::vector<trace::EventRecord> PiclInstrumentation::finalize() {
  flush_all();
  finalized_ = true;
  // Per-node segments are nearly time-ordered, but modeled kFlushEnd
  // markers carry future timestamps, so do the general merge (sorts).
  return trace::merge_any(host_segments_);
}

std::uint64_t PiclInstrumentation::write_trace(
    const std::filesystem::path& path) {
  auto merged = finalize();
  trace::TraceFileWriter w(path);
  w.write(merged);
  w.close();
  return merged.size();
}

PiclNodeReport PiclInstrumentation::node_report(std::uint32_t n) const {
  return reports_.at(n);
}

std::uint64_t PiclInstrumentation::total_flushes() const {
  std::uint64_t t = 0;
  for (const auto& r : reports_) t += r.flushes;
  return t;
}

std::uint64_t PiclInstrumentation::total_records_captured() const {
  std::uint64_t t = 0;
  for (const auto& r : reports_) t += r.records;
  return t;
}

}  // namespace prism::picl
