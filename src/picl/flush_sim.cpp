#include "picl/flush_sim.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "stats/distributions.hpp"

namespace prism::picl {

namespace {

double exp_sample(stats::Rng& rng, double rate) {
  return -std::log(rng.next_double_open()) / rate;
}

}  // namespace

FlushSimResult simulate_fof(const PiclModelParams& p, unsigned cycles,
                            stats::Rng rng) {
  p.validate();
  if (cycles == 0) throw std::invalid_argument("simulate_fof: 0 cycles");
  const unsigned l = p.buffer_capacity;
  const double alpha = p.arrival_rate;
  const double f = p.flush_cost();

  FlushSimResult res;
  double total_time = 0;
  double flush_time = 0;
  std::uint64_t arrivals = 0;

  // PICL semantics: while a buffer is being flushed, data collection stops;
  // events of interest still occur in the program (they count as arrivals)
  // but are lost, so every cycle starts from an empty buffer.
  for (unsigned c = 0; c < cycles; ++c) {
    double fill = 0;
    for (unsigned k = 0; k < l; ++k) fill += exp_sample(rng, alpha);
    const std::uint64_t lost = stats::poisson_sample(rng, alpha * f);
    res.stopping_time.add(fill);
    const std::uint64_t cycle_arrivals = l + lost;
    arrivals += cycle_arrivals;
    total_time += fill + f;
    flush_time += f;
    ++res.total_flushes;
    res.frequency_estimator.add_cycle(1.0,
                                      static_cast<double>(cycle_arrivals));
  }
  res.total_arrivals = arrivals;
  res.simulated_time = total_time;
  res.flushing_frequency =
      static_cast<double>(res.total_flushes) / static_cast<double>(arrivals);
  // One tagged buffer was simulated; the system has P independent ones.
  res.interruption_rate =
      static_cast<double>(cycles) / total_time * p.nodes;
  res.flush_time_fraction = flush_time / total_time;
  return res;
}

FlushSimResult simulate_faof(const PiclModelParams& p, unsigned cycles,
                             stats::Rng rng) {
  p.validate();
  if (cycles == 0) throw std::invalid_argument("simulate_faof: 0 cycles");
  const unsigned l = p.buffer_capacity;
  const unsigned P = p.nodes;
  const double alpha = p.arrival_rate;
  const double gang_flush = p.nodes * p.flush_cost();

  FlushSimResult res;
  double total_time = 0;
  double flush_time = 0;
  std::uint64_t arrivals = 0;

  std::vector<double> next_arrival(P);
  std::vector<unsigned> count(P);

  for (unsigned c = 0; c < cycles; ++c) {
    // Exact event-by-event race to the first full buffer.
    for (unsigned i = 0; i < P; ++i) {
      next_arrival[i] = exp_sample(rng, alpha);
      count[i] = 0;
    }
    double now = 0;
    std::uint64_t fill_arrivals = 0;
    for (;;) {
      unsigned argmin = 0;
      for (unsigned i = 1; i < P; ++i)
        if (next_arrival[i] < next_arrival[argmin]) argmin = i;
      now = next_arrival[argmin];
      ++count[argmin];
      ++fill_arrivals;
      if (count[argmin] >= l) break;
      next_arrival[argmin] = now + exp_sample(rng, alpha);
    }
    res.stopping_time.add(now);
    // Gang flush: all P buffers drain; events during it are lost but occur.
    std::uint64_t lost = 0;
    for (unsigned i = 0; i < P; ++i)
      lost += stats::poisson_sample(rng, alpha * gang_flush);
    const std::uint64_t cycle_arrivals = fill_arrivals + lost;
    arrivals += cycle_arrivals;
    total_time += now + gang_flush;
    flush_time += gang_flush;
    res.total_flushes += P;  // every buffer flushed once
    // Per-buffer view: 1 flush per (cycle arrivals / P) arrivals.
    res.frequency_estimator.add_cycle(
        1.0, static_cast<double>(cycle_arrivals) / P);
  }
  res.total_arrivals = arrivals;
  res.simulated_time = total_time;
  res.flushing_frequency =
      static_cast<double>(res.total_flushes) / static_cast<double>(arrivals);
  // One gang interruption per cycle.
  res.interruption_rate = static_cast<double>(cycles) / total_time;
  res.flush_time_fraction = flush_time / total_time;
  return res;
}

namespace {

/// Renewal count: how many whole gaps fit into `duration`.
std::uint64_t renewal_count(stats::Rng& rng, const stats::Distribution& gap,
                            double duration) {
  std::uint64_t n = 0;
  double t = gap.sample(rng);
  while (t <= duration) {
    ++n;
    t += gap.sample(rng);
  }
  return n;
}

}  // namespace

FlushSimResult simulate_fof_renewal(const PiclModelParams& p, unsigned cycles,
                                    const stats::Distribution& gap,
                                    stats::Rng rng) {
  p.validate();
  if (cycles == 0) throw std::invalid_argument("simulate_fof_renewal: 0 cycles");
  const unsigned l = p.buffer_capacity;
  const double f = p.flush_cost();

  FlushSimResult res;
  double total_time = 0, flush_time = 0;
  std::uint64_t arrivals = 0;
  for (unsigned c = 0; c < cycles; ++c) {
    double fill = 0;
    for (unsigned k = 0; k < l; ++k) fill += gap.sample(rng);
    const std::uint64_t lost = renewal_count(rng, gap, f);
    res.stopping_time.add(fill);
    const std::uint64_t cycle_arrivals = l + lost;
    arrivals += cycle_arrivals;
    total_time += fill + f;
    flush_time += f;
    ++res.total_flushes;
    res.frequency_estimator.add_cycle(1.0,
                                      static_cast<double>(cycle_arrivals));
  }
  res.total_arrivals = arrivals;
  res.simulated_time = total_time;
  res.flushing_frequency =
      static_cast<double>(res.total_flushes) / static_cast<double>(arrivals);
  res.interruption_rate = static_cast<double>(cycles) / total_time * p.nodes;
  res.flush_time_fraction = flush_time / total_time;
  return res;
}

FlushSimResult simulate_faof_renewal(const PiclModelParams& p,
                                     unsigned cycles,
                                     const stats::Distribution& gap,
                                     stats::Rng rng) {
  p.validate();
  if (cycles == 0)
    throw std::invalid_argument("simulate_faof_renewal: 0 cycles");
  const unsigned l = p.buffer_capacity;
  const unsigned P = p.nodes;
  const double gang_flush = p.nodes * p.flush_cost();

  FlushSimResult res;
  double total_time = 0, flush_time = 0;
  std::uint64_t arrivals = 0;
  std::vector<double> next_arrival(P);
  std::vector<unsigned> count(P);
  for (unsigned c = 0; c < cycles; ++c) {
    for (unsigned i = 0; i < P; ++i) {
      next_arrival[i] = gap.sample(rng);
      count[i] = 0;
    }
    double now = 0;
    std::uint64_t fill_arrivals = 0;
    for (;;) {
      unsigned argmin = 0;
      for (unsigned i = 1; i < P; ++i)
        if (next_arrival[i] < next_arrival[argmin]) argmin = i;
      now = next_arrival[argmin];
      ++count[argmin];
      ++fill_arrivals;
      if (count[argmin] >= l) break;
      next_arrival[argmin] = now + gap.sample(rng);
    }
    res.stopping_time.add(now);
    std::uint64_t lost = 0;
    for (unsigned i = 0; i < P; ++i)
      lost += renewal_count(rng, gap, gang_flush);
    const std::uint64_t cycle_arrivals = fill_arrivals + lost;
    arrivals += cycle_arrivals;
    total_time += now + gang_flush;
    flush_time += gang_flush;
    res.total_flushes += P;
    res.frequency_estimator.add_cycle(
        1.0, static_cast<double>(cycle_arrivals) / P);
  }
  res.total_arrivals = arrivals;
  res.simulated_time = total_time;
  res.flushing_frequency =
      static_cast<double>(res.total_flushes) / static_cast<double>(arrivals);
  res.interruption_rate = static_cast<double>(cycles) / total_time;
  res.flush_time_fraction = flush_time / total_time;
  return res;
}

}  // namespace prism::picl
