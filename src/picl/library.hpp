// A working PICL-style instrumentation library for the simulated
// multicomputer (§3.1, Table 1: off-line IS, library LIS, trace-file ISM,
// parallel-I/O TP, static management).
//
// "During program execution, calls to these functions generate
// instrumentation data in a particular event record format and log the data
// in a local buffer of each node.  The user specifies the size of the
// buffer.  These buffers are typically flushed at the end of program
// execution and merged into a single trace file at the host system."
//
// PiclInstrumentation taps the Multicomputer's instrumentation hook (the
// library-call insertion point), maintains one TraceBuffer per node, applies
// FOF or FAOF on overflow, models the flush cost f(l) by bracketing each
// flush with kFlushBegin/kFlushEnd records, keeps flushed segments in a
// host-side main instrumentation data buffer (Fig. 4's storage hierarchy),
// and merges everything into a single time-ordered trace at finalize().
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "trace/buffer.hpp"
#include "trace/record.hpp"
#include "workload/multicomputer.hpp"

namespace prism::picl {

struct PiclConfig {
  std::size_t buffer_capacity = 1024;  ///< l, records per node buffer
  bool flush_all_on_fill = false;      ///< FAOF when true, else FOF
  /// Modeled flush cost f(l) = base + per_record * records_flushed,
  /// in engine time units; 0 disables the marker records.
  double flush_cost_base = 0.0;
  double flush_cost_per_record = 0.0;
};

struct PiclNodeReport {
  std::uint64_t records = 0;  ///< application records captured
  std::uint64_t flushes = 0;
  std::uint64_t dropped = 0;
};

class PiclInstrumentation {
 public:
  /// Installs itself as `mc`'s instrumentation hook; `mc` must outlive this.
  PiclInstrumentation(workload::Multicomputer& mc, PiclConfig config);

  /// Flushes node `n`'s buffer into the host main buffer.
  void flush_node(std::uint32_t n);
  /// Gang flush (FAOF action, also the end-of-run path).
  void flush_all();

  /// Flushes everything and returns the single merged, time-ordered trace.
  std::vector<trace::EventRecord> finalize();

  /// Writes the merged trace to a binary trace file; returns record count.
  std::uint64_t write_trace(const std::filesystem::path& path);

  PiclNodeReport node_report(std::uint32_t n) const;
  std::uint64_t total_flushes() const;
  std::uint64_t total_records_captured() const;
  const PiclConfig& config() const { return config_; }

 private:
  void on_event(const trace::EventRecord& r);
  double flush_cost(std::size_t records) const {
    return config_.flush_cost_base +
           config_.flush_cost_per_record * static_cast<double>(records);
  }

  workload::Multicomputer& mc_;
  PiclConfig config_;
  std::vector<trace::TraceBuffer> buffers_;       ///< one per node
  std::vector<std::vector<trace::EventRecord>> host_segments_;  ///< per node
  std::vector<PiclNodeReport> reports_;
  std::vector<std::uint64_t> flush_seq_;  ///< per-node IS-event seq counters
  bool finalized_ = false;
};

}  // namespace prism::picl
