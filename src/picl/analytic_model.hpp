// Analytic model of the PICL IS local-buffer management policies
// (§3.1, Tables 1-3, Figure 5).
//
// Model: P nodes, each with a local trace buffer of capacity l records.
// Instrumentation events arrive at each buffer as independent Poisson
// processes of rate alpha, so the *trace stopping time* (time for a buffer
// to fill) is Erlang(l, alpha).  Flushing a buffer to the host costs
// f(l) = base + per_record * l (message-passing time, "a linear function of
// l" — Table 3 note).
//
// Policies:
//   FOF  — Flush One buffer when it Fills.  Regenerative cycle per buffer:
//          fill (l arrivals) + flush (alpha*f(l) arrivals keep coming while
//          the flush runs).  Long-term flushing frequency, in flushes per
//          arrival at a buffer (Table 2's metric):
//              omega_o = 1 / (l + alpha * f(l)).
//   FAOF — Flush All buffers when One Fills.  The gang flush drains P
//          buffers through the host link, costing P * f(l); the triggering
//          buffer saw l fill arrivals plus alpha * P * f(l) during the gang
//          flush, giving the paper's curve (an upper bound for the
//          non-triggering buffers, which flushed with fewer arrivals):
//              omega_a <= 1 / (l + P * alpha * f(l)).
//          The FAOF trace stopping time is the minimum of P iid Erlang fill
//          times, with the paper's pooled-arrival lower bound
//          E[tau] >= l / (P * alpha).
//
// The default flush-cost coefficients (base 100, per_record 10 time units)
// reproduce the published Figure 5 axis ranges: ~0-0.1 at alpha=0.0008,
// ~0-0.09 at alpha=0.007, ~0-2.5e-3 at alpha=2.
#pragma once

#include <cstdint>

namespace prism::picl {

struct PiclModelParams {
  unsigned buffer_capacity = 50;   ///< l, records
  double arrival_rate = 0.007;     ///< alpha, records per time unit
  unsigned nodes = 8;              ///< P
  double flush_cost_base = 100.0;  ///< f(l) intercept
  double flush_cost_per_record = 10.0;  ///< f(l) slope

  /// Message-passing time to flush one buffer of capacity l.
  double flush_cost() const {
    return flush_cost_base + flush_cost_per_record * buffer_capacity;
  }
  void validate() const;
};

// --- Trace stopping time (Table 3, rows 1-2) ------------------------------

/// FOF: P[tau_l <= t] — Erlang(l, alpha) CDF.
double fof_stopping_time_cdf(const PiclModelParams& p, double t);

/// FOF: E[tau_l] = l / alpha.
double fof_expected_stopping_time(const PiclModelParams& p);

/// FAOF: P[tau_l > t] = (Erlang tail)^P — survival of the minimum.
double faof_stopping_time_tail(const PiclModelParams& p, double t);

/// FAOF: exact E[min of P Erlang fill times] (numeric integration).
double faof_expected_stopping_time(const PiclModelParams& p);

/// FAOF: the paper's lower bound l / (P * alpha).
double faof_stopping_time_lower_bound(const PiclModelParams& p);

// --- Long-term flushing frequency (Table 3, row 3; Figure 5) --------------

/// FOF: omega_o = 1 / (l + alpha f(l)), flushes per arrival.
double fof_flushing_frequency(const PiclModelParams& p);

/// FAOF: the paper's curve/upper bound 1 / (l + P alpha f(l)).
double faof_flushing_frequency_bound(const PiclModelParams& p);

/// FAOF: frequency computed with the exact expected stopping time:
/// 1 / (alpha E[tau_min] + P alpha f(l)) — flushes per arrival at the
/// average buffer, counting fill-phase plus gang-flush-phase arrivals.
double faof_flushing_frequency_exact(const PiclModelParams& p);

// --- Program-interruption view (extension) --------------------------------

/// Flush interruptions of the program per unit time, system-wide.
/// FOF: P independent buffers, each interrupting at 1/(l/alpha + f(l)).
double fof_interruption_rate(const PiclModelParams& p);

/// FAOF: one gang interruption per cycle: 1/(E[tau_min] + P f(l)).
double faof_interruption_rate(const PiclModelParams& p);

/// Long-run fraction of time the IS spends in the flushing state
/// (Smith's theorem applied to the regenerative cycle, §3.1.3).
double fof_flush_time_fraction(const PiclModelParams& p);
double faof_flush_time_fraction(const PiclModelParams& p);

}  // namespace prism::picl
