#include "picl/calibrate.hpp"

#include <stdexcept>

namespace prism::picl {

CalibrationReport calibrate_picl_model(
    const std::vector<trace::EventRecord>& records, unsigned buffer_capacity,
    unsigned nodes, double flush_cost_base, double flush_cost_per_record) {
  if (records.empty())
    throw std::invalid_argument("calibrate_picl_model: empty trace");
  CalibrationReport rep;
  rep.workload = trace::characterize_arrivals(records);
  if (rep.workload.inter_arrival.count() == 0)
    throw std::invalid_argument(
        "calibrate_picl_model: trace has no per-stream gaps");
  rep.params.buffer_capacity = buffer_capacity;
  rep.params.nodes = nodes;
  rep.params.flush_cost_base = flush_cost_base;
  rep.params.flush_cost_per_record = flush_cost_per_record;
  // Per-buffer arrival rate = 1 / mean per-stream inter-arrival gap.
  rep.params.arrival_rate = 1.0 / rep.workload.inter_arrival.mean();
  rep.params.validate();
  rep.poisson_plausible =
      rep.workload.cv >= 0.5 && rep.workload.cv <= 1.5;
  return rep;
}

}  // namespace prism::picl
