// Independent-replication experiment harness.
//
// Runs R independent replications of a stochastic model, each with a seed
// derived deterministically from (base_seed, scenario tag, replication
// index), and summarizes each response metric with a t-based confidence
// interval — the method both simulation case studies in the paper use
// (r = 50 replications, 90% confidence).
//
// Replications are independent by construction (per-replication seeds), so
// they can execute on a worker pool.  Parallel execution is bit-identical to
// serial: replication `rep` always seeds from hash_seed(base_seed, tag, rep)
// regardless of which worker runs it, and responses are merged in
// replication-index order, never completion order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/pipeline.hpp"
#include "obs/prof/alloc.hpp"
#include "stats/confidence.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace prism::sim {

/// One replication's responses: metric name -> value.
using Responses = std::map<std::string, double>;

/// Aggregated replication results.
class ReplicationResult {
 public:
  void add(const Responses& r);

  /// Metric names seen (sorted).
  std::vector<std::string> metrics() const;
  const stats::Summary& summary(const std::string& metric) const;
  stats::ConfidenceInterval ci(const std::string& metric,
                               double confidence = 0.90) const;
  unsigned replications() const { return n_; }

  // ---- execution telemetry (filled by replicate(); the reporter and the
  // perf benches read these instead of re-timing the harness) -------------

  /// Per-replication wall time (ms), merged in replication-index order.
  const stats::Summary& rep_time_ms() const { return rep_time_ms_; }
  /// Per-replication thread-CPU time (ms; CLOCK_THREAD_CPUTIME_ID around
  /// the model call).  wall >> cpu for a replication means it spent its
  /// life descheduled — the oversubscription signature.  Empty with
  /// PRISM_OBS=OFF.
  const stats::Summary& rep_cpu_ms() const { return rep_cpu_ms_; }
  /// Per-replication allocation counts (operator-new interposition; see
  /// obs/prof/alloc.hpp).  Empty with PRISM_OBS=OFF.
  const stats::Summary& rep_allocs() const { return rep_allocs_; }
  const stats::Summary& rep_alloc_bytes() const { return rep_alloc_bytes_; }
  /// Wall time (ms) of the whole replicate() call.
  double wall_ms() const { return wall_ms_; }
  /// Worker threads the run actually used (1 = serial path).
  unsigned threads_used() const { return threads_used_; }
  /// Fraction of `threads_used * wall_ms` spent inside model replications —
  /// ~1.0 means the pool stayed busy; low values mean stragglers or an
  /// undersized replication count.  0 until replicate() fills it.
  double worker_utilization() const;

  /// Scheduler contention accounting copied off the worker pool after the
  /// run (DESIGN.md §13).  All-zero on the serial path (threads == 1 runs
  /// in the caller, no pool) and with PRISM_OBS=OFF.
  struct PoolAccounting {
    std::uint64_t busy_ns = 0;        ///< workers inside replications
    std::uint64_t idle_ns = 0;        ///< workers parked on the queue
    std::uint64_t queue_wait_ns = 0;  ///< sum of submission-to-start lag
  };
  const PoolAccounting& pool() const { return pool_; }

  /// Harness bookkeeping (public so replicate() and custom harnesses can
  /// fill it; not meant for model code).
  void record_rep_time_ms(double ms) { rep_time_ms_.add(ms); }
  void record_rep_cpu_ms(double ms) { rep_cpu_ms_.add(ms); }
  void record_rep_alloc(const obs::prof::AllocStats& a) {
    rep_allocs_.add(static_cast<double>(a.allocs));
    rep_alloc_bytes_.add(static_cast<double>(a.bytes));
  }
  void set_execution(unsigned threads, double wall_ms) {
    threads_used_ = threads;
    wall_ms_ = wall_ms;
  }
  void set_pool_accounting(const PoolAccounting& p) { pool_ = p; }

  /// Process-wide allocation delta spanning the whole replicate() call,
  /// snapshotted from the sharded process tallies *after* the worker pool
  /// has joined — so allocations made on pool workers land in this
  /// workload's row, not just work done on the submitting thread.  Inexact
  /// only if unrelated threads allocate concurrently.  Zero with
  /// PRISM_OBS=OFF.
  const obs::prof::AllocStats& workload_alloc() const {
    return workload_alloc_;
  }
  void set_workload_alloc(const obs::prof::AllocStats& a) {
    workload_alloc_ = a;
  }

 private:
  std::map<std::string, stats::Summary> by_metric_;
  stats::Summary rep_time_ms_;
  stats::Summary rep_cpu_ms_;
  stats::Summary rep_allocs_;
  stats::Summary rep_alloc_bytes_;
  obs::prof::AllocStats workload_alloc_;
  PoolAccounting pool_;
  double wall_ms_ = 0;
  unsigned threads_used_ = 0;
  unsigned n_ = 0;
};

/// Execution options for replicate().
struct ReplicateOptions {
  /// Worker threads running replications concurrently.  0 = one per
  /// hardware thread; 1 = serial in the calling thread (no pool is
  /// created).  Any value yields bit-identical results, but threads > 1
  /// requires the model functor to be safe to invoke concurrently (models
  /// that mutate shared captured state must use threads <= 1).
  unsigned threads = 0;
};

/// Runs `r` replications of `model`.  The functor receives a fresh Rng for
/// the replication and returns its responses.  `scenario_tag` isolates the
/// random streams of different experimental scenarios sharing a base seed;
/// two scenarios with the same tag and base seed see *identical* random
/// inputs (common random numbers), which is exactly what the FOF-vs-FAOF
/// comparison wants.  This overload runs serially in the calling thread and
/// so accepts functors with shared mutable state.
ReplicationResult replicate(
    unsigned r, std::uint64_t base_seed, std::uint64_t scenario_tag,
    const std::function<Responses(stats::Rng&)>& model);

/// As above, with explicit execution options.  With opts.threads != 1 the
/// model functor must be concurrency-safe; results are bit-identical to the
/// serial overload for any thread count.  A replication that throws
/// propagates the (first, by completion) exception to the caller after the
/// pool drains.
ReplicationResult replicate(
    unsigned r, std::uint64_t base_seed, std::uint64_t scenario_tag,
    const std::function<Responses(stats::Rng&)>& model,
    const ReplicateOptions& opts);

/// Replication result plus the merged model-time observability of all
/// replications: lineage reports summed across replications and per-rep
/// timelines kept side by side under "rep<k>/" series prefixes.
struct ObservedResult {
  ReplicationResult result;
  obs::LineageReport lineage;
  obs::Timeline timeline;
};

/// Like replicate(), but hands each replication a private PipelineObserver
/// (lineage stride `lineage_stride`, timeline interval `timeline_interval`)
/// and merges the observers in replication-index order afterwards — so the
/// merged lineage/timeline, like the responses, are bit-identical for any
/// thread count.
ObservedResult replicate_observed(
    unsigned r, std::uint64_t base_seed, std::uint64_t scenario_tag,
    const std::function<Responses(stats::Rng&, obs::PipelineObserver&)>& model,
    const ReplicateOptions& opts = {}, std::uint32_t lineage_stride = 1,
    double timeline_interval = 0);

}  // namespace prism::sim
