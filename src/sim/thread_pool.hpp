// Fixed-size worker pool for CPU-bound experiment execution.
//
// The pool exists to run *independent replications* concurrently (see
// sim/replication.hpp): tasks are closures that own all of their mutable
// state, so the pool needs no work stealing, futures, or task graphs — just
// a FIFO queue, a fixed set of workers, and strict exception propagation.
// Determinism is the caller's job (replication results are merged in
// replication-index order, not completion order); the pool only promises
// that every submitted task runs exactly once and that wait() observes all
// side effects of completed tasks (release/acquire via the queue mutex).
//
// Scheduler contention accounting (DESIGN.md §13): with PRISM_OBS on, every
// worker splits its lifetime into busy (inside a task) and idle (parked on
// the queue condvar) nanoseconds, and every task records its
// submission-to-start lag.  stats() exposes the per-worker split — the
// replication harness folds it into ReplicationResult so worker utilization
// and queue-wait dominance are first-class bench outputs — and the same
// numbers feed the obs metrics registry (sim.pool.worker.busy_ns /
// idle_ns / threads counters, queue-wait and task-run histograms).  With
// PRISM_OBS=OFF all accounting compiles to nothing and stats() reads zero.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_fn.hpp"

namespace prism::sim {

/// One worker's busy/idle split (ns since the pool started it).
struct WorkerStats {
  std::uint64_t busy_ns = 0;   ///< executing tasks
  std::uint64_t idle_ns = 0;   ///< parked waiting for work
  std::uint64_t tasks = 0;     ///< tasks executed
};

/// Accounting snapshot for a pool (all-zero with PRISM_OBS=OFF).
struct PoolStats {
  std::vector<WorkerStats> workers;   ///< one entry per worker thread
  std::uint64_t queue_wait_ns = 0;    ///< sum of submission-to-start lag
  std::uint64_t tasks = 0;            ///< tasks executed, all workers

  std::uint64_t busy_ns_total() const {
    std::uint64_t t = 0;
    for (const auto& w : workers) t += w.busy_ns;
    return t;
  }
  std::uint64_t idle_ns_total() const {
    std::uint64_t t = 0;
    for (const auto& w : workers) t += w.idle_ns;
    return t;
  }
};

class ThreadPool {
 public:
  /// Creates `threads` workers.  `threads == 0` means one worker per
  /// hardware thread (at least one).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains the queue (runs or discards nothing — blocks until every
  /// submitted task has finished), then joins the workers.  Exceptions held
  /// for wait() are dropped if wait() was never called.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Throws std::runtime_error after shutdown began.
  /// Tasks are EventFn (small-buffer callables), so submitting the
  /// replication harness's closures allocates nothing per task.
  void submit(EventFn task);

  /// Blocks until all tasks submitted so far have finished, then rethrows
  /// the *first* exception any of them threw (if any).  The pool remains
  /// usable after wait(), whether or not an exception was rethrown.
  void wait();

  /// Number of worker threads.
  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Scheduler accounting snapshot.  Consistent when the pool is quiescent
  /// (after wait()); racy-but-monotonic while tasks run.  All-zero in a
  /// PRISM_OBS=OFF build.
  PoolStats stats() const;

  /// The worker count `threads == 0` resolves to on this machine.
  static unsigned default_threads() noexcept;

 private:
  struct Task {
    EventFn fn;
    std::uint64_t t_submit_ns = 0;  ///< obs only; 0 in PRISM_OBS=OFF builds
  };

  /// Per-worker accounting slot, padded so workers never share a line.
  struct alignas(64) WorkerSlot {
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> idle_ns{0};
    std::atomic<std::uint64_t> tasks{0};
  };

  void worker_loop(unsigned index);

  std::mutex mu_;
  std::condition_variable work_ready_;   // workers wait here for tasks
  std::condition_variable all_done_;     // wait() waits here for drain
  std::deque<Task> queue_;
  std::exception_ptr first_error_;       // first task exception, for wait()
  std::size_t in_flight_ = 0;            // queued + currently-executing tasks
  bool shutdown_ = false;
  std::vector<WorkerSlot> slots_;        // one per worker, fixed at ctor
  std::atomic<std::uint64_t> queue_wait_ns_{0};
  std::vector<std::thread> workers_;
};

}  // namespace prism::sim
