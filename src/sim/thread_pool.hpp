// Fixed-size worker pool for CPU-bound experiment execution.
//
// The pool exists to run *independent replications* concurrently (see
// sim/replication.hpp): tasks are closures that own all of their mutable
// state, so the pool needs no work stealing, futures, or task graphs — just
// a FIFO queue, a fixed set of workers, and strict exception propagation.
// Determinism is the caller's job (replication results are merged in
// replication-index order, not completion order); the pool only promises
// that every submitted task runs exactly once and that wait() observes all
// side effects of completed tasks (release/acquire via the queue mutex).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace prism::sim {

class ThreadPool {
 public:
  /// Creates `threads` workers.  `threads == 0` means one worker per
  /// hardware thread (at least one).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains the queue (runs or discards nothing — blocks until every
  /// submitted task has finished), then joins the workers.  Exceptions held
  /// for wait() are dropped if wait() was never called.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Throws std::runtime_error after shutdown began.
  void submit(std::function<void()> task);

  /// Blocks until all tasks submitted so far have finished, then rethrows
  /// the *first* exception any of them threw (if any).  The pool remains
  /// usable after wait(), whether or not an exception was rethrown.
  void wait();

  /// Number of worker threads.
  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// The worker count `threads == 0` resolves to on this machine.
  static unsigned default_threads() noexcept;

 private:
  struct Task {
    std::function<void()> fn;
    std::uint64_t t_submit_ns = 0;  ///< obs only; 0 in PRISM_OBS=OFF builds
  };

  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_ready_;   // workers wait here for tasks
  std::condition_variable all_done_;     // wait() waits here for drain
  std::deque<Task> queue_;
  std::exception_ptr first_error_;       // first task exception, for wait()
  std::size_t in_flight_ = 0;            // queued + currently-executing tasks
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace prism::sim
