// Small-buffer callable for the engine calendar and the worker pool.
//
// The per-event hot path used to store each scheduled callback in a
// std::function<void()>.  libstdc++'s std::function inlines targets only up
// to 16 bytes, and nearly every model closure in this codebase captures
// 20-40 bytes ([this, pid, slice], [this, proc, seq], ...), so each
// scheduled event paid one operator-new — the ~1.0 allocations/event the
// replication bench attributed to the calendar (DESIGN.md §13, §15).
//
// EventFn is a move-only callable with kInlineSize bytes of inline storage:
// every closure the simulator schedules fits inline, so scheduling an event
// touches no allocator at all.  Oversized or throwing-move targets fall back
// to the heap (correct, just not free), keeping the type fully general.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace prism::sim {

class EventFn {
 public:
  /// Inline capacity.  40 bytes holds five pointers — enough for every
  /// per-event closure the models schedule (the largest, Vista's
  /// [this, proc, Arrival], is exactly 40), and it sizes the whole EventFn
  /// at 48 bytes so the engine's Slot {fn, id, next_free} packs into one
  /// 64-byte cache line.  200k-slot calendars are walked in random event
  /// order, so slot width is the schedule/step throughput lever.
  static constexpr std::size_t kInlineSize = 40;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using T = std::decay_t<F>;
    if constexpr (fits_inline<T>()) {
      ::new (static_cast<void*>(buf_)) T(std::forward<F>(f));
      ops_ = &inline_ops<T>;
    } else {
      ::new (static_cast<void*>(buf_)) T*(new T(std::forward<F>(f)));
      ops_ = &heap_ops<T>;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  /// Invokes the target.  Precondition: non-empty (the engine only invokes
  /// slots it just verified live).
  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the target from `src` into `dst`, then destroys the
    /// source — one virtual hop for the whole move, noexcept by the inline
    /// eligibility rule below.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename T>
  static constexpr bool fits_inline() {
    return sizeof(T) <= kInlineSize && alignof(T) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<T>;
  }

  template <typename T>
  static constexpr Ops inline_ops = {
      [](void* p) { (*std::launder(reinterpret_cast<T*>(p)))(); },
      [](void* dst, void* src) noexcept {
        T* s = std::launder(reinterpret_cast<T*>(src));
        ::new (dst) T(std::move(*s));
        s->~T();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<T*>(p))->~T(); }};

  template <typename T>
  static constexpr Ops heap_ops = {
      [](void* p) { (**std::launder(reinterpret_cast<T**>(p)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) T*(*std::launder(reinterpret_cast<T**>(src)));
      },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<T**>(p)); }};

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace prism::sim
