// Output-analysis collectors for simulations.
//
// * UtilizationTracker — fraction of simulated time a resource is busy,
//   optionally split by customer class (the ROCC model's per-class CPU
//   occupancy comes from this).
// * RegenerativeEstimator — ratio estimation over regenerative cycles.  The
//   PICL analysis rests on exactly this: "the process of filling and flushing
//   a buffer is a regenerative process ... the proportion of time spent by
//   the instrumentation system in the flushing state throughout program
//   execution is the same as the proportion of time spent in this state
//   during one cycle (Smith's theorem)" (§3.1.3).
// * BatchMeans — CI on a steady-state mean from one long run, via batching.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "stats/confidence.hpp"
#include "stats/summary.hpp"

namespace prism::sim {

/// Tracks busy time of a single resource, by integer customer class.
class UtilizationTracker {
 public:
  explicit UtilizationTracker(double t0 = 0.0) : start_(t0), last_(t0) {}

  /// Marks the resource busy serving class `cls` from time `t`.
  void begin_busy(double t, int cls) {
    account(t);
    busy_ = true;
    cls_ = cls;
  }

  /// Marks the resource idle from time `t`.
  void end_busy(double t) {
    account(t);
    busy_ = false;
  }

  /// Finalizes accounting up to time `t` without changing state.
  void flush(double t) { account(t); }

  double busy_time() const {
    double total = 0;
    for (auto& [c, bt] : by_class_) total += bt;
    return total;
  }
  double busy_time(int cls) const {
    auto it = by_class_.find(cls);
    return it == by_class_.end() ? 0.0 : it->second;
  }
  /// Busy time as it would read after accounting up to `t`, WITHOUT mutating
  /// the accumulator (mid-run probes must not perturb the float accounting
  /// order, which would break bit-identical instrumented runs).
  double busy_time_at(double t) const {
    return busy_time() + (busy_ && t > last_ ? t - last_ : 0.0);
  }
  double busy_time_at(double t, int cls) const {
    return busy_time(cls) +
           (busy_ && cls_ == cls && t > last_ ? t - last_ : 0.0);
  }
  /// Utilization over [t0, last accounted time].
  double utilization() const {
    const double span = last_ - start_;
    return span > 0 ? busy_time() / span : 0.0;
  }
  double utilization(int cls) const {
    const double span = last_ - start_;
    return span > 0 ? busy_time(cls) / span : 0.0;
  }
  double observed_span() const { return last_ - start_; }

 private:
  void account(double t) {
    if (t < last_) throw std::invalid_argument("UtilizationTracker: time ran backwards");
    if (busy_) by_class_[cls_] += t - last_;
    last_ = t;
  }

  double start_, last_;
  bool busy_ = false;
  int cls_ = 0;
  std::unordered_map<int, double> by_class_;
};

/// Classical regenerative ratio estimator.  Each cycle i contributes a
/// "reward" Y_i (e.g. time spent flushing, or number of flushes) and a
/// length T_i.  The long-run rate is R = E[Y]/E[T], estimated by
/// sum(Y)/sum(T) with a delta-method CI.
class RegenerativeEstimator {
 public:
  void add_cycle(double reward, double length) {
    if (!(length > 0))
      throw std::invalid_argument("RegenerativeEstimator: length <= 0");
    y_.add(reward);
    t_.add(length);
    ++n_;
    sum_yy_ += reward * reward;
    sum_tt_ += length * length;
    sum_yt_ += reward * length;
  }

  std::uint64_t cycles() const { return n_; }
  double mean_reward() const { return y_.mean(); }
  double mean_length() const { return t_.mean(); }

  /// Point estimate of the long-run ratio E[Y]/E[T].
  double ratio() const {
    if (n_ == 0) throw std::logic_error("RegenerativeEstimator: no cycles");
    return y_.sum() / t_.sum();
  }

  /// Delta-method CI on the ratio.  Requires >= 2 cycles.
  stats::ConfidenceInterval ratio_ci(double confidence) const {
    if (n_ < 2) throw std::logic_error("RegenerativeEstimator: need >= 2 cycles");
    const double r = ratio();
    const auto n = static_cast<double>(n_);
    const double ybar = y_.mean(), tbar = t_.mean();
    // s^2 of Z_i = Y_i - r T_i.
    const double szz = (sum_yy_ - 2 * r * sum_yt_ + r * r * sum_tt_ -
                        n * (ybar - r * tbar) * (ybar - r * tbar)) /
                       (n - 1);
    const double half =
        stats::t_critical(confidence, static_cast<unsigned>(n_ - 1)) *
        std::sqrt(szz > 0 ? szz : 0.0) / (tbar * std::sqrt(n));
    return stats::ConfidenceInterval{r, half, confidence, n_};
  }

 private:
  stats::Summary y_, t_;
  std::uint64_t n_ = 0;
  double sum_yy_ = 0, sum_tt_ = 0, sum_yt_ = 0;
};

/// Batch-means estimator: feeds observations into fixed-size batches and
/// builds a CI from the batch means, discarding an initial warm-up prefix.
class BatchMeans {
 public:
  BatchMeans(std::size_t batch_size, std::size_t warmup_observations = 0)
      : batch_size_(batch_size), warmup_(warmup_observations) {
    if (batch_size == 0) throw std::invalid_argument("BatchMeans: batch 0");
  }

  void add(double x) {
    if (warmup_ > 0) {
      --warmup_;
      return;
    }
    cur_.add(x);
    if (cur_.count() == batch_size_) {
      batches_.add(cur_.mean());
      cur_.reset();
    }
  }

  std::uint64_t complete_batches() const { return batches_.count(); }
  double mean() const { return batches_.mean(); }
  stats::ConfidenceInterval ci(double confidence) const {
    return stats::confidence_interval(batches_, confidence);
  }

 private:
  std::size_t batch_size_;
  std::size_t warmup_;
  stats::Summary cur_;
  stats::Summary batches_;
};

/// MSER-5 warm-up truncation (White 1997): batches the observation sequence
/// into groups of 5, then picks the truncation point minimizing the MSER
/// statistic (half-width proxy) over the retained suffix.  Returns the
/// index of the first observation to KEEP.  Standard practice for deleting
/// initialization bias before steady-state estimation.
std::size_t mser5_truncation_index(const std::vector<double>& observations);

}  // namespace prism::sim
