#include "sim/replication.hpp"

#include <stdexcept>

#include "sim/thread_pool.hpp"

namespace prism::sim {

void ReplicationResult::add(const Responses& r) {
  for (auto& [name, value] : r) by_metric_[name].add(value);
  ++n_;
}

std::vector<std::string> ReplicationResult::metrics() const {
  std::vector<std::string> out;
  out.reserve(by_metric_.size());
  for (auto& [name, s] : by_metric_) out.push_back(name);
  return out;
}

const stats::Summary& ReplicationResult::summary(
    const std::string& metric) const {
  auto it = by_metric_.find(metric);
  if (it == by_metric_.end())
    throw std::out_of_range("ReplicationResult: unknown metric " + metric);
  return it->second;
}

stats::ConfidenceInterval ReplicationResult::ci(const std::string& metric,
                                                double confidence) const {
  return stats::confidence_interval(summary(metric), confidence);
}

ReplicationResult replicate(
    unsigned r, std::uint64_t base_seed, std::uint64_t scenario_tag,
    const std::function<Responses(stats::Rng&)>& model) {
  return replicate(r, base_seed, scenario_tag, model, ReplicateOptions{1});
}

ReplicationResult replicate(
    unsigned r, std::uint64_t base_seed, std::uint64_t scenario_tag,
    const std::function<Responses(stats::Rng&)>& model,
    const ReplicateOptions& opts) {
  if (r == 0) throw std::invalid_argument("replicate: r == 0");
  const unsigned threads =
      opts.threads == 0 ? ThreadPool::default_threads() : opts.threads;

  ReplicationResult out;
  if (threads <= 1 || r == 1) {
    for (unsigned rep = 0; rep < r; ++rep) {
      stats::Rng rng(stats::Rng::hash_seed(base_seed, scenario_tag,
                                           static_cast<std::uint64_t>(rep)));
      out.add(model(rng));
    }
    return out;
  }

  // Parallel path: each worker writes its replication's responses into a
  // pre-sized slot, so the merge below runs in replication-index order and
  // the summed metrics are bit-identical to the serial path.  A throwing
  // replication surfaces via ThreadPool::wait() after the pool drains.
  std::vector<Responses> slots(r);
  {
    ThreadPool pool(threads < r ? threads : r);
    for (unsigned rep = 0; rep < r; ++rep) {
      pool.submit([&slots, &model, base_seed, scenario_tag, rep] {
        stats::Rng rng(stats::Rng::hash_seed(base_seed, scenario_tag,
                                             static_cast<std::uint64_t>(rep)));
        slots[rep] = model(rng);
      });
    }
    pool.wait();
  }
  for (const Responses& resp : slots) out.add(resp);
  return out;
}

}  // namespace prism::sim
