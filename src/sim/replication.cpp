#include "sim/replication.hpp"

#include <chrono>
#include <memory>
#include <stdexcept>

#include "obs/obs.hpp"
#include "obs/prof/alloc.hpp"
#include "sim/arena.hpp"
#include "sim/thread_pool.hpp"

#if PRISM_OBS_ENABLED && defined(__unix__)
#include <time.h>
#define PRISM_REP_CPU_CLOCK 1
#else
#define PRISM_REP_CPU_CLOCK 0
#endif

namespace prism::sim {

namespace {

using clock = std::chrono::steady_clock;

double ms_between(clock::time_point t0, clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Calling thread's CPU time (ms); 0 when unavailable or PRISM_OBS=OFF.
double thread_cpu_ms() {
#if PRISM_REP_CPU_CLOCK
  timespec ts;
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
#else
  return 0;
#endif
}

/// Per-replication execution telemetry, filled by whichever thread ran the
/// replication and merged into the result in replication-index order.
struct RepTelemetry {
  double wall_ms = 0;
  double cpu_ms = 0;
  obs::prof::AllocStats alloc;
};

/// Runs one replication of `model` with full telemetry.  The alloc scope is
/// exact because one task occupies one worker thread at a time.
template <typename ModelCall>
Responses run_one_rep(RepTelemetry& t, const ModelCall& call) {
  // Rewind this thread's replication arena so the model's frame-structured
  // bookkeeping reuses the chunks the previous replication faulted in
  // (DESIGN.md §15).  Only the first replication on a thread pays the
  // chunk operator-new calls; later ones allocate nothing from the arena.
  rep_arena().reset();
  const auto t0 = clock::now();
  const double cpu0 = thread_cpu_ms();
  const obs::prof::AllocScope allocs;
  Responses resp;
  {
    PRISM_OBS_SPAN("replicate.rep", "sim");
    resp = call();
  }
  t.cpu_ms = thread_cpu_ms() - cpu0;
  t.alloc = allocs.delta();
  t.wall_ms = ms_between(t0, clock::now());
  return resp;
}

void merge_telemetry(ReplicationResult& out, const RepTelemetry& t) {
  out.record_rep_time_ms(t.wall_ms);
#if PRISM_OBS_ENABLED
  out.record_rep_cpu_ms(t.cpu_ms);
  out.record_rep_alloc(t.alloc);
#endif
  PRISM_OBS_HIST_B("sim.replicate.rep_ms",
                   ::prism::obs::Histogram::exponential_bounds(0.01, 4, 16),
                   t.wall_ms);
}

ReplicationResult::PoolAccounting pool_accounting(const PoolStats& ps) {
  ReplicationResult::PoolAccounting acc;
  acc.busy_ns = ps.busy_ns_total();
  acc.idle_ns = ps.idle_ns_total();
  acc.queue_wait_ns = ps.queue_wait_ns;
  return acc;
}

}  // namespace

void ReplicationResult::add(const Responses& r) {
  for (auto& [name, value] : r) by_metric_[name].add(value);
  ++n_;
}

std::vector<std::string> ReplicationResult::metrics() const {
  std::vector<std::string> out;
  out.reserve(by_metric_.size());
  for (auto& [name, s] : by_metric_) out.push_back(name);
  return out;
}

const stats::Summary& ReplicationResult::summary(
    const std::string& metric) const {
  auto it = by_metric_.find(metric);
  if (it == by_metric_.end())
    throw std::out_of_range("ReplicationResult: unknown metric " + metric);
  return it->second;
}

stats::ConfidenceInterval ReplicationResult::ci(const std::string& metric,
                                                double confidence) const {
  return stats::confidence_interval(summary(metric), confidence);
}

double ReplicationResult::worker_utilization() const {
  if (threads_used_ == 0 || wall_ms_ <= 0) return 0;
  return rep_time_ms_.sum() / (static_cast<double>(threads_used_) * wall_ms_);
}

ReplicationResult replicate(
    unsigned r, std::uint64_t base_seed, std::uint64_t scenario_tag,
    const std::function<Responses(stats::Rng&)>& model) {
  return replicate(r, base_seed, scenario_tag, model, ReplicateOptions{1});
}

ReplicationResult replicate(
    unsigned r, std::uint64_t base_seed, std::uint64_t scenario_tag,
    const std::function<Responses(stats::Rng&)>& model,
    const ReplicateOptions& opts) {
  if (r == 0) throw std::invalid_argument("replicate: r == 0");
  const unsigned threads =
      opts.threads == 0 ? ThreadPool::default_threads() : opts.threads;
  PRISM_OBS_SPAN("replicate", "sim");
  PRISM_OBS_COUNT_N("sim.replicate.replications", r);

  // Process-wide scope so allocations made by pool workers are attributed
  // to this workload; the delta is read only after the pool has joined.
  const obs::prof::ProcessAllocScope workload_allocs;
  const auto t_begin = clock::now();
  ReplicationResult out;
  if (threads <= 1 || r == 1) {
    for (unsigned rep = 0; rep < r; ++rep) {
      RepTelemetry t;
      stats::Rng rng(stats::Rng::hash_seed(base_seed, scenario_tag,
                                           static_cast<std::uint64_t>(rep)));
      const Responses resp = run_one_rep(t, [&] { return model(rng); });
      out.add(resp);
      merge_telemetry(out, t);
    }
    out.set_execution(1, ms_between(t_begin, clock::now()));
    out.set_workload_alloc(workload_allocs.delta());
    return out;
  }

  // Parallel path: each worker writes its replication's responses into a
  // pre-sized slot, so the merge below runs in replication-index order and
  // the summed metrics are bit-identical to the serial path.  A throwing
  // replication surfaces via ThreadPool::wait() after the pool drains.
  std::vector<Responses> slots(r);
  std::vector<RepTelemetry> telemetry(r);
  const unsigned workers = threads < r ? threads : r;
  {
    ThreadPool pool(workers);
    for (unsigned rep = 0; rep < r; ++rep) {
      pool.submit([&slots, &telemetry, &model, base_seed, scenario_tag, rep] {
        stats::Rng rng(stats::Rng::hash_seed(base_seed, scenario_tag,
                                             static_cast<std::uint64_t>(rep)));
        slots[rep] =
            run_one_rep(telemetry[rep], [&] { return model(rng); });
      });
    }
    pool.wait();
    out.set_pool_accounting(pool_accounting(pool.stats()));
  }
  for (unsigned rep = 0; rep < r; ++rep) {
    out.add(slots[rep]);
    merge_telemetry(out, telemetry[rep]);
  }
  out.set_execution(workers, ms_between(t_begin, clock::now()));
  // The pool destructor above joined every worker, so the sharded tallies
  // now include all worker-side allocations.
  out.set_workload_alloc(workload_allocs.delta());
  return out;
}

ObservedResult replicate_observed(
    unsigned r, std::uint64_t base_seed, std::uint64_t scenario_tag,
    const std::function<Responses(stats::Rng&, obs::PipelineObserver&)>& model,
    const ReplicateOptions& opts, std::uint32_t lineage_stride,
    double timeline_interval) {
  if (r == 0) throw std::invalid_argument("replicate_observed: r == 0");
  // Each replication writes into its own observer slot; the merge below
  // runs in replication-index order, so lineage sums and timeline prefixes
  // are bit-identical to a serial run for any thread count.
  std::vector<std::unique_ptr<obs::PipelineObserver>> observers(r);
  for (unsigned rep = 0; rep < r; ++rep) {
    observers[rep] = std::make_unique<obs::PipelineObserver>(lineage_stride);
    observers[rep]->timeline_interval = timeline_interval;
  }
  const unsigned threads =
      opts.threads == 0 ? ThreadPool::default_threads() : opts.threads;

  const obs::prof::ProcessAllocScope workload_allocs;
  const auto t_begin = clock::now();
  ObservedResult out;
  if (threads <= 1 || r == 1) {
    for (unsigned rep = 0; rep < r; ++rep) {
      RepTelemetry t;
      stats::Rng rng(stats::Rng::hash_seed(base_seed, scenario_tag,
                                           static_cast<std::uint64_t>(rep)));
      const Responses resp =
          run_one_rep(t, [&] { return model(rng, *observers[rep]); });
      out.result.add(resp);
      merge_telemetry(out.result, t);
    }
    out.result.set_execution(1, ms_between(t_begin, clock::now()));
  } else {
    std::vector<Responses> slots(r);
    std::vector<RepTelemetry> telemetry(r);
    const unsigned workers = threads < r ? threads : r;
    {
      ThreadPool pool(workers);
      for (unsigned rep = 0; rep < r; ++rep) {
        pool.submit([&slots, &telemetry, &model, &observers, base_seed,
                     scenario_tag, rep] {
          stats::Rng rng(stats::Rng::hash_seed(
              base_seed, scenario_tag, static_cast<std::uint64_t>(rep)));
          slots[rep] = run_one_rep(
              telemetry[rep], [&] { return model(rng, *observers[rep]); });
        });
      }
      pool.wait();
      out.result.set_pool_accounting(pool_accounting(pool.stats()));
    }
    for (unsigned rep = 0; rep < r; ++rep) {
      out.result.add(slots[rep]);
      merge_telemetry(out.result, telemetry[rep]);
    }
    out.result.set_execution(workers, ms_between(t_begin, clock::now()));
  }
  // Pool workers (if any) are joined by this point, so the process-wide
  // delta captures their allocations too.
  out.result.set_workload_alloc(workload_allocs.delta());
  for (unsigned rep = 0; rep < r; ++rep) {
    out.lineage.merge(observers[rep]->lineage.report());
    out.timeline.merge_prefixed(observers[rep]->timeline,
                                "rep" + std::to_string(rep) + "/");
  }
  return out;
}

}  // namespace prism::sim
