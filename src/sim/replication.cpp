#include "sim/replication.hpp"

#include <stdexcept>

namespace prism::sim {

void ReplicationResult::add(const Responses& r) {
  for (auto& [name, value] : r) by_metric_[name].add(value);
  ++n_;
}

std::vector<std::string> ReplicationResult::metrics() const {
  std::vector<std::string> out;
  out.reserve(by_metric_.size());
  for (auto& [name, s] : by_metric_) out.push_back(name);
  return out;
}

const stats::Summary& ReplicationResult::summary(
    const std::string& metric) const {
  auto it = by_metric_.find(metric);
  if (it == by_metric_.end())
    throw std::out_of_range("ReplicationResult: unknown metric " + metric);
  return it->second;
}

stats::ConfidenceInterval ReplicationResult::ci(const std::string& metric,
                                                double confidence) const {
  return stats::confidence_interval(summary(metric), confidence);
}

ReplicationResult replicate(
    unsigned r, std::uint64_t base_seed, std::uint64_t scenario_tag,
    const std::function<Responses(stats::Rng&)>& model) {
  if (r == 0) throw std::invalid_argument("replicate: r == 0");
  ReplicationResult out;
  for (unsigned rep = 0; rep < r; ++rep) {
    stats::Rng rng(stats::Rng::hash_seed(base_seed, scenario_tag,
                                         static_cast<std::uint64_t>(rep)));
    out.add(model(rng));
  }
  return out;
}

}  // namespace prism::sim
