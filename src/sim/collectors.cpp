#include "sim/collectors.hpp"

#include <cmath>
#include <limits>
#include <vector>

namespace prism::sim {

std::size_t mser5_truncation_index(const std::vector<double>& observations) {
  constexpr std::size_t kBatch = 5;
  const std::size_t n_batches = observations.size() / kBatch;
  if (n_batches < 2) return 0;

  std::vector<double> batch_means(n_batches);
  for (std::size_t b = 0; b < n_batches; ++b) {
    double acc = 0;
    for (std::size_t i = 0; i < kBatch; ++i)
      acc += observations[b * kBatch + i];
    batch_means[b] = acc / kBatch;
  }

  // Suffix sums for O(n) evaluation of the MSER statistic
  // MSER(d) = s^2(d) / (n - d)   over retained batches d..n-1.
  std::vector<double> suffix_sum(n_batches + 1, 0),
      suffix_sq(n_batches + 1, 0);
  for (std::size_t b = n_batches; b > 0; --b) {
    suffix_sum[b - 1] = suffix_sum[b] + batch_means[b - 1];
    suffix_sq[b - 1] = suffix_sq[b] + batch_means[b - 1] * batch_means[b - 1];
  }

  double best = std::numeric_limits<double>::infinity();
  std::size_t best_d = 0;
  // Convention: never delete more than half the run.
  for (std::size_t d = 0; d <= n_batches / 2; ++d) {
    const double m = static_cast<double>(n_batches - d);
    const double mean = suffix_sum[d] / m;
    const double var = suffix_sq[d] / m - mean * mean;
    const double mser = var / m;
    if (mser < best) {
      best = mser;
      best_d = d;
    }
  }
  return best_d * kBatch;
}

}  // namespace prism::sim
