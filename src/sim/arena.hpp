// Per-replication monotonic arena allocator (DESIGN.md §15).
//
// A replication allocates bookkeeping that lives exactly as long as the
// replication: sequence counters, hold-back maps, latency samples, the
// distributions a scenario hands its behaviors.  Paying operator-new for
// each of those — and operator-delete when the model unwinds — is pure
// overhead the paper's own evaluation discipline says to measure and then
// remove.  A MonotonicArena bump-allocates out of coarse chunks that are
// *kept* across reset(), so the first replication on a thread faults the
// chunks in (visible to the operator-new interposition in obs/prof/alloc)
// and every later replication reuses them: identical allocation sequences
// return identical pointers and the interposition counters read zero.
//
// Deallocation is a no-op; lifetime is frame-structured.  reset() rewinds
// the whole arena; a Frame rewinds to its construction point on scope exit,
// which is what model entry points use so direct (non-replicate) callers in
// a loop reuse memory instead of growing the thread's arena without bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace prism::sim {

class MonotonicArena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit MonotonicArena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes ? chunk_bytes : kDefaultChunkBytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (which must be a power of
  /// two <= alignof(std::max_align_t) for chunk-start alignment to hold).
  /// Never returns null; an exhausted chunk advances to the next kept chunk
  /// or allocates a fresh one (the only path that touches operator new).
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    for (;;) {
      if (current_ < chunks_.size()) {
        Chunk& c = chunks_[current_];
        const std::size_t at = (c.used + (align - 1)) & ~(align - 1);
        if (at + bytes <= c.size) {
          c.used = at + bytes;
          high_water_ = std::max(high_water_, used_bytes());
          return c.data.get() + at;
        }
        ++current_;
        continue;
      }
      // Oversized requests get a dedicated exact-fit chunk so one huge
      // allocation cannot poison the steady-state chunk ladder.
      const std::size_t size = std::max(bytes + align, chunk_bytes_);
      chunks_.push_back(Chunk{std::make_unique<unsigned char[]>(size), size, 0});
      ++chunk_allocations_;
    }
  }

  /// Constructs a T in the arena.  No destructor will run: only use for
  /// trivially-destructible types or objects whose destructor is a no-op
  /// worth skipping (frame-structured lifetime).
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    return ::new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Rewinds every chunk, keeping their storage — the between-replications
  /// reset.  The next identical allocation sequence returns identical
  /// pointers and performs zero operator-new calls.
  void reset() noexcept {
    for (Chunk& c : chunks_) c.used = 0;
    current_ = 0;
    ++resets_;
  }

  /// A saved cursor position (see Frame).
  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };

  Mark mark() const noexcept {
    if (current_ >= chunks_.size()) return Mark{chunks_.size(), 0};
    return Mark{current_, chunks_[current_].used};
  }

  void rewind(Mark m) noexcept {
    for (std::size_t i = m.chunk + 1; i < chunks_.size(); ++i)
      chunks_[i].used = 0;
    if (m.chunk < chunks_.size()) chunks_[m.chunk].used = m.used;
    current_ = m.chunk;
  }

  /// RAII frame: everything allocated after construction is reclaimed (for
  /// reuse, not freed) when the frame dies.  Model entry points open one so
  /// repeated direct calls on a thread recycle instead of accumulate.
  class Frame {
   public:
    explicit Frame(MonotonicArena& a) noexcept : arena_(a), mark_(a.mark()) {}
    ~Frame() { arena_.rewind(mark_); }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    MonotonicArena& arena_;
    Mark mark_;
  };

  struct Stats {
    std::size_t chunks = 0;            ///< chunks currently owned
    std::size_t reserved_bytes = 0;    ///< sum of chunk sizes
    std::size_t high_water_bytes = 0;  ///< max bytes live at once
    std::uint64_t resets = 0;
    std::uint64_t chunk_allocations = 0;  ///< operator-new events, ever
  };

  Stats stats() const {
    Stats s;
    s.chunks = chunks_.size();
    for (const Chunk& c : chunks_) s.reserved_bytes += c.size;
    s.high_water_bytes = high_water_;
    s.resets = resets_;
    s.chunk_allocations = chunk_allocations_;
    return s;
  }

  std::size_t used_bytes() const noexcept {
    std::size_t n = 0;
    for (std::size_t i = 0; i < chunks_.size() && i <= current_; ++i)
      n += chunks_[i].used;
    return n;
  }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t chunk_allocations_ = 0;
};

/// Minimal STL allocator over a MonotonicArena: allocate bumps, deallocate
/// is a no-op (the arena frame reclaims).  Lets per-replication containers
/// (hold-back maps, latency vectors) draw from the arena unchanged.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(MonotonicArena* a) noexcept : arena_(a) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& o) noexcept  // NOLINT
      : arena_(o.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}

  MonotonicArena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const noexcept {
    return arena_ == o.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& o) const noexcept {
    return arena_ != o.arena();
  }

 private:
  MonotonicArena* arena_;
};

/// The calling thread's replication arena.  replicate() resets it before
/// each replication it runs on the thread; model entry points open a Frame
/// on it.  Thread-local, so worker threads never contend, and parallel
/// replications stay bit-identical (arena placement never feeds back into
/// model state).
inline MonotonicArena& rep_arena() {
  static thread_local MonotonicArena arena;
  return arena;
}

}  // namespace prism::sim
