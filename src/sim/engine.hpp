// Discrete-event simulation engine.
//
// A single-threaded event calendar: callbacks scheduled at future simulated
// times execute in (time, insertion-order) order.  All of the paper's models
// — the PICL buffer fill/flush process, the Paradyn ROCC resource model, and
// the Vista ISM queueing network — run on this engine.  The engine is
// deterministic: identical schedules of identical callbacks produce identical
// executions, so experiments are reproducible given their RNG seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace prism::sim {

/// Simulated time, in model-defined units (the case studies use
/// milliseconds; the PICL analytic model is unit-agnostic).
using Time = double;

/// Opaque handle identifying a scheduled event, used for cancellation.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  Time now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `t` (>= now).  Events scheduled
  /// for the same instant run in scheduling order (FIFO tie-break).
  EventHandle schedule_at(Time t, std::function<void()> fn) {
    if (t < now_) throw std::invalid_argument("schedule_at: time in the past");
    const std::uint64_t id = ++next_id_;
    heap_.push(Scheduled{t, id, std::move(fn)});
    return EventHandle{id};
  }

  /// Schedules `fn` to run `delay` (>= 0) after the current time.
  EventHandle schedule_after(Time delay, std::function<void()> fn) {
    if (delay < 0) throw std::invalid_argument("schedule_after: delay < 0");
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event.  Returns false if the event already ran, was
  /// already cancelled, or the handle is invalid.
  bool cancel(EventHandle h) {
    if (!h.valid() || h.id > next_id_) return false;
    return cancelled_.insert(h.id).second && pending_contains_hint();
  }

  /// Executes the next pending event, if any.  Returns false when the
  /// calendar is empty or the engine has been stopped.
  bool step() {
    while (!heap_.empty()) {
      if (stopped_) return false;
      Scheduled ev = heap_.top();
      heap_.pop();
      if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      now_ = ev.at;
      ++executed_;
      ev.fn();
      return true;
    }
    return false;
  }

  /// Runs until the calendar drains, `stop()` is called, or `max_events`
  /// events have executed.  Returns the number of events executed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX) {
    std::uint64_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  /// Runs events with time <= t, then advances the clock to exactly t.
  void run_until(Time t) {
    if (t < now_) throw std::invalid_argument("run_until: time in the past");
    while (!stopped_ && !heap_.empty() && heap_.top().at <= t) {
      if (!step()) break;
    }
    if (!stopped_ && t > now_) now_ = t;
  }

  /// Requests that run()/run_until() return before the next event.
  void stop() noexcept { stopped_ = true; }
  bool stopped() const noexcept { return stopped_; }
  /// Re-arms a stopped engine (the clock is preserved).
  void resume() noexcept { stopped_ = false; }

  /// Number of events currently pending (including not-yet-skipped
  /// cancellations, which is an upper bound).
  std::size_t pending() const noexcept { return heap_.size(); }
  std::uint64_t events_executed() const noexcept { return executed_; }
  bool empty() const noexcept { return heap_.empty(); }

 private:
  struct Scheduled {
    Time at;
    std::uint64_t id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  // cancel() bookkeeping note: we cannot cheaply verify membership in a
  // std::priority_queue, so cancellation optimistically records the id and
  // step() discards it when (if) it surfaces.  This hint always returns true;
  // it exists to document the contract.
  bool pending_contains_hint() const { return true; }

  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  Time now_ = 0.0;
  std::uint64_t next_id_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace prism::sim
