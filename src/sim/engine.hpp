// Discrete-event simulation engine.
//
// A single-threaded event calendar: callbacks scheduled at future simulated
// times execute in (time, insertion-order) order.  All of the paper's models
// — the PICL buffer fill/flush process, the Paradyn ROCC resource model, and
// the Vista ISM queueing network — run on this engine.  The engine is
// deterministic: identical schedules of identical callbacks produce identical
// executions, so experiments are reproducible given their RNG seeds.
//
// Calendar layout: the heap orders lightweight (time, id, slot) entries; the
// callback itself lives in a slot vector addressed by the entry.  A handle is
// (id, slot); a slot's current id doubles as a generation counter, so
// cancel() is an O(1) id comparison plus a free-list push — no cancelled-id
// set to grow without bound — and cancelled/rescheduled events leave lazy
// tombstone entries in the heap that are discarded when they surface (or
// compacted wholesale when tombstones outnumber live events).
//
// Callbacks are stored as EventFn (small-buffer callables), not
// std::function: every model closure fits inline, so the steady-state
// schedule/step loop performs zero allocations (DESIGN.md §15).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "sim/event_fn.hpp"

namespace prism::sim {

/// Simulated time, in model-defined units (the case studies use
/// milliseconds; the PICL analytic model is unit-agnostic).
using Time = double;

/// Opaque handle identifying a scheduled event, used for cancellation and
/// rescheduling.  A handle is invalidated when its event executes, is
/// cancelled, or is rescheduled (reschedule returns the replacement handle).
struct EventHandle {
  std::uint64_t id = 0;
  std::uint32_t slot = 0;
  bool valid() const { return id != 0; }
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  Time now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `t` (>= now).  Events scheduled
  /// for the same instant run in scheduling order (FIFO tie-break).
  EventHandle schedule_at(Time t, EventFn fn) {
    if (t < now_) throw std::invalid_argument("schedule_at: time in the past");
    const std::uint32_t s = acquire_slot();
    const std::uint64_t id = ++next_id_;
    slots_[s].fn = std::move(fn);
    slots_[s].id = id;
    ++live_;
    push_entry(Entry{t, id, s});
    PRISM_OBS_COUNT("sim.engine.events_scheduled");
    return EventHandle{id, s};
  }

  /// Schedules `fn` to run `delay` (>= 0) after the current time.
  EventHandle schedule_after(Time delay, EventFn fn) {
    if (delay < 0) throw std::invalid_argument("schedule_after: delay < 0");
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Moves a pending event to time `t` without touching its callback — the
  /// fast path for periodic events, which would otherwise destroy and
  /// re-allocate identical std::function state every period.  Also valid on
  /// the currently-executing event (from inside its own callback), which
  /// re-arms the same callback after it returns.  Returns the replacement
  /// handle (`h` itself is invalidated), or an invalid handle if `h` no
  /// longer refers to a pending or currently-executing event.
  EventHandle reschedule(EventHandle h, Time t) {
    if (t < now_) throw std::invalid_argument("reschedule: time in the past");
    if (!h.valid() || h.slot >= slots_.size()) return EventHandle{};
    if (h.id == running_id_) {
      // Re-arm the executing event: reserve a slot now; step() moves the
      // callback back into it after the callback returns.  The slot is
      // re-acquired if an earlier re-arm of this same event was cancelled.
      if (rearm_id_ == 0 || slots_[rearm_slot_].id != rearm_id_) {
        rearm_slot_ = acquire_slot();
        ++live_;
      }
      const std::uint64_t id = ++next_id_;
      slots_[rearm_slot_].id = id;
      rearm_id_ = id;
      push_entry(Entry{t, id, rearm_slot_});
      PRISM_OBS_COUNT("sim.engine.events_rescheduled");
      return EventHandle{id, rearm_slot_};
    }
    if (slots_[h.slot].id != h.id) return EventHandle{};
    // A fresh id turns the old heap entry into a tombstone; the callback
    // stays in place.
    const std::uint64_t id = ++next_id_;
    slots_[h.slot].id = id;
    push_entry(Entry{t, id, h.slot});
    PRISM_OBS_COUNT("sim.engine.events_rescheduled");
    return EventHandle{id, h.slot};
  }

  /// Cancels a pending event in O(1).  Returns false if the event already
  /// ran, was already cancelled or rescheduled, or the handle is invalid —
  /// and records nothing for such ids, so repeated stale cancels cannot
  /// accumulate state.
  bool cancel(EventHandle h) {
    if (!h.valid() || h.slot >= slots_.size()) return false;
    if (slots_[h.slot].id != h.id) return false;
    release_slot(h.slot);
    --live_;
    PRISM_OBS_COUNT("sim.engine.events_cancelled");
    return true;
  }

  /// Executes the next pending event, if any.  Returns false when the
  /// calendar is empty or the engine has been stopped.
  bool step() {
    while (!heap_.empty()) {
      if (stopped_) return false;
      const Entry top = heap_.front();
      pop_entry();
      if (slots_[top.slot].id != top.id) continue;  // tombstone
      now_ = top.at;
      ++executed_;
      --live_;
      PRISM_OBS_COUNT("sim.engine.events_executed");
      PRISM_OBS_GAUGE_SET("sim.engine.calendar_entries", heap_.size());
      EventFn fn = std::move(slots_[top.slot].fn);
      release_slot(top.slot);
      // Save re-arm state so callbacks that recursively step the engine
      // cannot clobber an enclosing event's bookkeeping.
      const std::uint64_t saved_running = running_id_;
      const std::uint64_t saved_rearm_id = rearm_id_;
      const std::uint32_t saved_rearm_slot = rearm_slot_;
      running_id_ = top.id;
      rearm_id_ = 0;
      fn();
      // A cancelled re-arm leaves the slot freed (or reused under a newer
      // id), which the generation check detects — the callback is dropped.
      if (rearm_id_ != 0 && slots_[rearm_slot_].id == rearm_id_)
        slots_[rearm_slot_].fn = std::move(fn);
      running_id_ = saved_running;
      rearm_id_ = saved_rearm_id;
      rearm_slot_ = saved_rearm_slot;
      return true;
    }
    return false;
  }

  /// Runs until the calendar drains, `stop()` is called, or `max_events`
  /// events have executed.  Returns the number of events executed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX) {
    std::uint64_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  /// Runs events with time <= t, then advances the clock to exactly t.  On
  /// an engine stopped before the call this is a no-op: the clock must not
  /// silently jump to t past events that never executed — resume() first.
  void run_until(Time t) {
    if (t < now_) throw std::invalid_argument("run_until: time in the past");
    while (!stopped_) {
      prune_top();
      if (heap_.empty() || heap_.front().at > t) break;
      if (!step()) break;
    }
    if (!stopped_ && t > now_) now_ = t;
  }

  /// Requests that run()/run_until() return before the next event.
  void stop() noexcept { stopped_ = true; }
  bool stopped() const noexcept { return stopped_; }
  /// Re-arms a stopped engine (the clock is preserved).
  void resume() noexcept { stopped_ = false; }

  /// Number of live pending events (cancelled events are excluded).
  std::size_t pending() const noexcept { return live_; }
  std::uint64_t events_executed() const noexcept { return executed_; }
  bool empty() const noexcept { return live_ == 0; }
  /// Heap entries, live *and* tombstoned — the quantity the lazy-deletion
  /// compaction bounds (tests assert it stays O(pending())).
  std::size_t calendar_entries() const noexcept { return heap_.size(); }

 private:
  static constexpr std::uint32_t kNoSlot =
      std::numeric_limits<std::uint32_t>::max();

  struct Slot {
    EventFn fn;
    std::uint64_t id = 0;  // generation: 0 = free, else the live event's id
    std::uint32_t next_free = kNoSlot;
  };
  // step() visits slots in event-time order, which is random with respect
  // to slot index: slot width is memory traffic on the core loop.
  static_assert(sizeof(Slot) <= 64, "Slot must stay within one cache line");
  struct Entry {
    Time at;
    std::uint64_t id;
    std::uint32_t slot;
  };
  // std::*_heap builds a max-heap, so the comparator is "later": the
  // earliest (time, id) event surfaces at front().  FIFO among simultaneous
  // events falls out of the id tie-break.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  std::uint32_t acquire_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t s = free_head_;
      free_head_ = slots_[s].next_free;
      return s;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void release_slot(std::uint32_t s) noexcept {
    slots_[s].fn = nullptr;
    slots_[s].id = 0;
    slots_[s].next_free = free_head_;
    free_head_ = s;
  }

  void push_entry(Entry e) {
    // Compact when tombstones dominate, so schedule/cancel churn cannot grow
    // the heap without bound.
    if (heap_.size() >= 64 && heap_.size() > 2 * live_) compact();
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  void pop_entry() noexcept {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }

  /// Discards tombstone entries sitting at the top of the heap, so the
  /// surviving front (if any) is the next live event.
  void prune_top() noexcept {
    while (!heap_.empty() && slots_[heap_.front().slot].id != heap_.front().id)
      pop_entry();
  }

  void compact() {
    PRISM_OBS_COUNT("sim.engine.tombstone_compactions");
    PRISM_OBS_COUNT_N("sim.engine.tombstones_compacted", heap_.size() - live_);
    std::size_t kept = 0;
    for (const Entry& e : heap_)
      if (slots_[e.slot].id == e.id) heap_[kept++] = e;
    heap_.resize(kept);
    std::make_heap(heap_.begin(), heap_.end(), Later{});
  }

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;
  Time now_ = 0.0;
  std::uint64_t next_id_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t running_id_ = 0;  // id of the event being executed, else 0
  std::uint64_t rearm_id_ = 0;    // pending re-arm of the running event
  std::uint32_t rearm_slot_ = kNoSlot;
  bool stopped_ = false;
};

}  // namespace prism::sim
