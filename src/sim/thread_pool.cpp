#include "sim/thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace prism::sim {

unsigned ThreadPool::default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace prism::sim
