#include "sim/thread_pool.hpp"

#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"
#include "obs/prof/prof.hpp"

namespace prism::sim {

unsigned ThreadPool::default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_threads();
  slots_ = std::vector<WorkerSlot>(threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(EventFn task) {
  Task t{std::move(task), 0};
#if PRISM_OBS_ENABLED
  t.t_submit_ns = obs::now_ns();
#endif
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(t));
    ++in_flight_;
    PRISM_OBS_GAUGE_SET("sim.pool.queue_depth", queue_.size());
  }
  work_ready_.notify_one();
  PRISM_OBS_COUNT("sim.pool.tasks_submitted");
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

PoolStats ThreadPool::stats() const {
  PoolStats out;
  out.workers.resize(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    out.workers[i].busy_ns = slots_[i].busy_ns.load(std::memory_order_relaxed);
    out.workers[i].idle_ns = slots_[i].idle_ns.load(std::memory_order_relaxed);
    out.workers[i].tasks = slots_[i].tasks.load(std::memory_order_relaxed);
    out.tasks += out.workers[i].tasks;
  }
  out.queue_wait_ns = queue_wait_ns_.load(std::memory_order_relaxed);
  return out;
}

void ThreadPool::worker_loop(unsigned index) {
#if PRISM_OBS_ENABLED
  // Publishes this worker's busy/idle split to the registry at thread exit;
  // the per-pool slots below stay live for ThreadPool::stats().
  obs::prof::WorkerClock clock("sim.pool.worker");
#endif
  WorkerSlot& slot = slots_[index];
  (void)slot;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
#if PRISM_OBS_ENABLED
      if (!shutdown_ && queue_.empty()) {
        const std::uint64_t t_park = obs::now_ns();
        work_ready_.wait(lock,
                         [this] { return shutdown_ || !queue_.empty(); });
        const std::uint64_t idled = obs::now_ns() - t_park;
        slot.idle_ns.fetch_add(idled, std::memory_order_relaxed);
        clock.add_idle_ns(idled);
      }
#else
      work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
#endif
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      PRISM_OBS_GAUGE_SET("sim.pool.queue_depth", queue_.size());
    }
#if PRISM_OBS_ENABLED
    const std::uint64_t t_start = obs::now_ns();
    const std::uint64_t waited =
        t_start >= task.t_submit_ns ? t_start - task.t_submit_ns : 0;
    queue_wait_ns_.fetch_add(waited, std::memory_order_relaxed);
    PRISM_OBS_HIST("sim.pool.queue_wait_ns", waited);
#endif
    std::exception_ptr err;
    try {
      PRISM_OBS_SPAN("pool.task", "sim");
      task.fn();
    } catch (...) {
      err = std::current_exception();
    }
#if PRISM_OBS_ENABLED
    const std::uint64_t ran = obs::now_ns() - t_start;
    slot.busy_ns.fetch_add(ran, std::memory_order_relaxed);
    slot.tasks.fetch_add(1, std::memory_order_relaxed);
    PRISM_OBS_HIST("sim.pool.task_run_ns", ran);
    PRISM_OBS_COUNT("sim.pool.tasks_executed");
#endif
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace prism::sim
