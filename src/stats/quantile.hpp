// On-line quantile estimation with the P² algorithm (Jain & Chlamtac 1985 —
// the same Raj Jain whose methodology text the paper builds its evaluation
// discipline on).  O(1) memory, no stored samples: the live ISM uses it to
// report tail latencies without retaining per-record data.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>

namespace prism::stats {

/// Estimates a single quantile q of a stream.  Exact until 5 observations,
/// then the classic 5-marker parabolic interpolation.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);
  /// Current estimate (exact for n <= 5).  Requires at least 1 observation.
  double value() const;
  std::uint64_t count() const { return n_; }
  double quantile() const { return q_; }

 private:
  double q_;
  std::uint64_t n_ = 0;
  std::array<double, 5> heights_{};   // marker heights
  std::array<double, 5> positions_{}; // actual marker positions (1-based)
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> increment_{}; // desired position increments
};

}  // namespace prism::stats
