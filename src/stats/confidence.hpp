// Confidence intervals on sample means.
//
// The paper derives "mean values of the two metrics ... within 90% confidence
// intervals" from r = 50 replications (§3.2.2, §3.3.2).  ConfidenceInterval
// packages a mean with its t-based half-width; overlap() implements the
// standard visual test the paper applies when it declares SISO and MISO
// "less distinguishable" at low arrival rates.
#pragma once

#include <stdexcept>

#include "stats/special.hpp"
#include "stats/summary.hpp"

namespace prism::stats {

struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  double confidence = 0.0;
  unsigned long long n = 0;

  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
  bool contains(double x) const { return x >= lo() && x <= hi(); }
  /// True when the two intervals overlap — the replications do not
  /// distinguish the two alternatives at this confidence level.
  bool overlaps(const ConfidenceInterval& other) const {
    return lo() <= other.hi() && other.lo() <= hi();
  }
};

/// t-based CI on the mean of `s` at the given confidence level
/// (e.g. 0.90 for the paper's experiments).  Requires >= 2 observations.
inline ConfidenceInterval confidence_interval(const Summary& s,
                                              double confidence) {
  if (s.count() < 2)
    throw std::invalid_argument("confidence_interval: need >= 2 observations");
  const double t = t_critical(confidence, static_cast<unsigned>(s.count() - 1));
  return ConfidenceInterval{s.mean(), t * s.std_error(), confidence,
                            s.count()};
}

}  // namespace prism::stats
