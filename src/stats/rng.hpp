// Deterministic, splittable random-number streams.
//
// Every stochastic component in PRISM owns its own Rng stream so that adding
// or removing one component never perturbs the draws seen by another — a
// prerequisite for the common-random-numbers variance-reduction used in the
// policy-comparison experiments (e.g. FOF vs FAOF on identical sample paths)
// and for reproducible 2^k·r factorial designs.
//
// The generator is SplitMix64 (Steele, Lea, Flood; public domain algorithm):
// a counter-based generator with a 64-bit state that passes BigCrush when
// used as a stream cipher on a Weyl sequence.  It is allocation-free, has a
// trivially copyable state, and supports O(1) stream splitting.
#pragma once

#include <cstdint>
#include <limits>

namespace prism::stats {

/// A splittable 64-bit pseudo-random stream (SplitMix64 core).
class Rng {
 public:
  /// Constructs a stream from a seed.  Two streams with different seeds are
  /// statistically independent for all practical purposes.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept
      : state_(seed) {}

  /// Returns the next raw 64-bit value.
  std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Returns a double uniformly distributed in [0, 1).
  double next_double() noexcept {
    // 53 high-quality bits -> [0,1) with full double precision.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Returns a double uniformly distributed in (0, 1]; never returns 0.0,
  /// which makes it safe as the argument of a logarithm.
  double next_double_open() noexcept {
    return (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Returns an integer uniformly distributed in [0, bound).  bound must be
  /// nonzero.  Uses Lemire's multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Debiased multiply-high; the rejection loop terminates quickly because
    // the acceptance probability is >= 1 - bound / 2^64.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Returns true with probability p (clamped to [0,1]).
  bool next_bernoulli(double p) noexcept { return next_double() < p; }

  /// Derives an independent child stream.  The child's seed mixes this
  /// stream's next raw output, so repeated split() calls yield distinct,
  /// decorrelated streams and the parent advances deterministically.
  Rng split() noexcept { return Rng(next_u64() ^ 0xd1b54a32d192ed03ull); }

  /// Deterministically combines a base seed with a set of tags (factor
  /// levels, replication index, component id, ...) into a stream seed.
  /// Order-sensitive: hash_seed(s, a, b) != hash_seed(s, b, a) in general.
  template <typename... Tags>
  static std::uint64_t hash_seed(std::uint64_t base, Tags... tags) noexcept {
    std::uint64_t h = base ^ 0x2545f4914f6cdd1dull;
    ((h = mix(h ^ static_cast<std::uint64_t>(tags))), ...);
    return h;
  }

 private:
  static std::uint64_t mix(std::uint64_t z) noexcept {
    z = (z ^ (z >> 33)) * 0xff51afd7ed558ccdull;
    z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53ull;
    return z ^ (z >> 33);
  }

  std::uint64_t state_;
};

}  // namespace prism::stats
