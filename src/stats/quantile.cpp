#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>

namespace prism::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0 && q < 1)) throw std::invalid_argument("P2Quantile: q in (0,1)");
  desired_ = {1, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5};
  increment_ = {0, q / 2, q, (1 + q) / 2, 1};
  positions_ = {1, 2, 3, 4, 5};
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    heights_[n_++] = x;
    if (n_ == 5) std::sort(heights_.begin(), heights_.end());
    return;
  }
  // Find the cell k containing x; clamp the extremes.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  ++n_;
  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increment_[i];

  // Adjust the three interior markers.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1 && above > 1) || (d <= -1 && below > 1)) {
      const double s = d >= 1 ? 1.0 : -1.0;
      // Parabolic (P²) estimate.
      const double hp =
          heights_[i] +
          s / (positions_[i + 1] - positions_[i - 1]) *
              ((below + s) * (heights_[i + 1] - heights_[i]) / above +
               (above - s) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < hp && hp < heights_[i + 1]) {
        heights_[i] = hp;
      } else {
        // Linear fallback.
        const std::size_t j = s > 0 ? i + 1 : i - 1;
        heights_[i] += s * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) throw std::logic_error("P2Quantile: no observations");
  if (n_ < 5) {
    // Exact small-sample quantile (nearest-rank on the sorted prefix).
    std::array<double, 5> tmp = heights_;
    std::sort(tmp.begin(), tmp.begin() + n_);
    const auto idx = static_cast<std::size_t>(
        std::min<double>(n_ - 1.0, std::floor(q_ * static_cast<double>(n_))));
    return tmp[idx];
  }
  return heights_[2];
}

}  // namespace prism::stats
