// Fixed-bin histogram with under/overflow accounting.  Used to validate
// sampled distributions against analytic CDFs (Table 3 validation) and to
// characterize latency distributions from the live IS.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace prism::stats {

class Histogram {
 public:
  /// `bins` equal-width bins over [lo, hi).
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    if (!(hi > lo)) throw std::invalid_argument("Histogram: hi <= lo");
    if (bins == 0) throw std::invalid_argument("Histogram: bins == 0");
    width_ = (hi - lo) / static_cast<double>(bins);
  }

  void add(double x) noexcept {
    ++total_;
    if (x < lo_) {
      ++underflow_;
    } else if (x >= hi_) {
      ++overflow_;
    } else {
      auto idx = static_cast<std::size_t>((x - lo_) / width_);
      if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
      ++counts_[idx];
    }
  }

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  double bin_lo(std::size_t bin) const { return lo_ + width_ * bin; }
  double bin_hi(std::size_t bin) const { return lo_ + width_ * (bin + 1); }

  /// Empirical CDF evaluated at the right edge of `bin`.
  double cdf_at_bin(std::size_t bin) const {
    if (total_ == 0) return 0.0;
    std::uint64_t acc = underflow_;
    for (std::size_t i = 0; i <= bin && i < counts_.size(); ++i)
      acc += counts_[i];
    return static_cast<double>(acc) / static_cast<double>(total_);
  }

  /// Approximate quantile by scanning bins (midpoint interpolation).
  double quantile(double q) const {
    if (!(q >= 0 && q <= 1)) throw std::invalid_argument("quantile: q");
    if (total_ == 0) return lo_;
    const double target = q * static_cast<double>(total_);
    double acc = static_cast<double>(underflow_);
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      const double next = acc + static_cast<double>(counts_[i]);
      if (next >= target && counts_[i] > 0) {
        const double frac = (target - acc) / static_cast<double>(counts_[i]);
        return bin_lo(i) + frac * width_;
      }
      acc = next;
    }
    return hi_;
  }

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace prism::stats
