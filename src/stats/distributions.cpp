#include "stats/distributions.hpp"

#include <cmath>

namespace prism::stats {

std::uint64_t poisson_sample(Rng& rng, double mean) {
  if (!(mean >= 0)) throw std::invalid_argument("poisson_sample: mean < 0");
  if (mean == 0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    const double u1 = rng.next_double_open();
    const double u2 = rng.next_double();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
    const double x = mean + std::sqrt(mean) * z + 0.5;
    return x < 0 ? 0 : static_cast<std::uint64_t>(x);
  }
  // Knuth: count exponential gaps fitting in `mean`.
  const double limit = std::exp(-mean);
  double prod = rng.next_double_open();
  std::uint64_t k = 0;
  while (prod > limit) {
    prod *= rng.next_double_open();
    ++k;
  }
  return k;
}

}  // namespace prism::stats
