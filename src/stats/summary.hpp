// Running summary statistics.
//
// Welford's online algorithm for mean/variance (numerically stable, single
// pass, O(1) memory) plus a time-weighted variant for quantities integrated
// over simulated time (queue lengths, resource occupancy).  Both are used by
// every model in the suite and by the live instrumentation system's own
// self-accounting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace prism::stats {

/// Online mean / variance / extrema over a stream of observations.
class Summary {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Merges another summary into this one (parallel Welford combination).
  void merge(const Summary& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double nt = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    mean_ = (na * mean_ + nb * other.mean_) / nt;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
  }

  std::uint64_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two observations).
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  /// Standard error of the mean.
  double std_error() const noexcept {
    return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }
  double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  /// Coefficient of variation (stddev / mean); NaN when mean == 0.
  double cov() const noexcept { return stddev() / mean(); }

  void reset() noexcept { *this = Summary{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average of a piecewise-constant signal, e.g. the
/// instantaneous length of an ISM input buffer.  Call set(t, value) at each
/// change; the integral is maintained between updates.
class TimeWeighted {
 public:
  explicit TimeWeighted(double t0 = 0.0, double initial = 0.0) noexcept
      : last_time_(t0), start_time_(t0), value_(initial) {}

  /// Records that the signal changed to `value` at time `t` (t must be
  /// monotonically nondecreasing).
  void set(double t, double value) noexcept {
    advance(t);
    value_ = value;
    max_ = std::max(max_, value);
  }

  /// Adds `delta` to the current value at time `t`.
  void add(double t, double delta) noexcept { set(t, value_ + delta); }

  /// Integrates up to time `t` without changing the value.
  void advance(double t) noexcept {
    if (t > last_time_) {
      integral_ += value_ * (t - last_time_);
      last_time_ = t;
    }
  }

  double value() const noexcept { return value_; }
  double max() const noexcept { return max_; }
  double integral() const noexcept { return integral_; }

  /// Time average over [start, last update].
  double time_average() const noexcept {
    const double span = last_time_ - start_time_;
    return span > 0 ? integral_ / span : value_;
  }

  /// Time average over [start, t] after integrating up to t.
  double time_average_until(double t) noexcept {
    advance(t);
    return time_average();
  }

 private:
  double last_time_;
  double start_time_;
  double value_;
  double integral_ = 0.0;
  double max_ = 0.0;
};

}  // namespace prism::stats
