// Analytic facts about Erlang fill times and their order statistics.
//
// Under Poisson instrumentation-event arrivals at rate alpha, the time for a
// local trace buffer of capacity l to fill is Erlang(l, alpha) — this is the
// "trace stopping time" of the PICL model (Table 3).  The FAOF policy flushes
// when the FIRST of P buffers fills, so its stopping time is the minimum of P
// iid Erlang variates; the paper uses the pooled-arrival lower bound
// E[min] >= l / (P alpha).  We provide the exact distribution functions, the
// expected minimum by numeric integration of the product tail, and the bound.
#pragma once

namespace prism::stats {

/// CDF of an Erlang(l, rate) variate at t: P[tau <= t].
double erlang_cdf(unsigned l, double rate, double t);

/// Tail of an Erlang(l, rate) variate at t: P[tau > t]
/// = e^{-rate t} * sum_{k=0}^{l-1} (rate t)^k / k!.
double erlang_tail(unsigned l, double rate, double t);

/// Mean of Erlang(l, rate): l / rate.
double erlang_mean(unsigned l, double rate);

/// Tail of the minimum of p iid Erlang(l, rate) variates:
/// P[min > t] = P[tau > t]^p.  This is the FAOF trace-stopping-time tail
/// of Table 3.
double erlang_min_tail(unsigned l, double rate, unsigned p, double t);

/// Expected minimum of p iid Erlang(l, rate) variates, computed as
/// integral_0^inf P[min > t] dt with adaptive Simpson quadrature
/// (absolute tolerance ~1e-9 relative to the mean).
double erlang_min_mean(unsigned l, double rate, unsigned p);

/// The paper's lower bound on the FAOF expected stopping time:
/// l / (p * rate) (time for the pooled arrival process to deposit l records).
double erlang_min_mean_lower_bound(unsigned l, double rate, unsigned p);

}  // namespace prism::stats
