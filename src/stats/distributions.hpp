// Sampling distributions used by the simulation models.
//
// The paper's models draw inter-arrival times from exponential distributions
// (PICL local buffers, Vista ISM arrivals), service times from normal
// distributions (Vista data processor), and resource demands from empirical /
// uniform mixtures (Paradyn ROCC workload characterization).  Each class here
// is a small value type: analytic moments are available where they exist so
// tests can check sample statistics against theory.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "stats/rng.hpp"

namespace prism::stats {

/// Abstract sampling distribution over the nonnegative reals (durations).
class Distribution {
 public:
  virtual ~Distribution() = default;
  /// Draws one variate using the caller's stream.
  virtual double sample(Rng& rng) const = 0;
  /// Analytic mean.
  virtual double mean() const = 0;
  /// Analytic variance.
  virtual double variance() const = 0;
  /// Human-readable description (for experiment logs).
  virtual std::string describe() const = 0;
};

/// Degenerate distribution: always returns `value`.
class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value) : value_(value) {
    if (value < 0) throw std::invalid_argument("Deterministic: value < 0");
  }
  double sample(Rng&) const override { return value_; }
  double mean() const override { return value_; }
  double variance() const override { return 0.0; }
  std::string describe() const override {
    return "Deterministic(" + std::to_string(value_) + ")";
  }

 private:
  double value_;
};

/// Exponential distribution with rate lambda (mean 1/lambda).
class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate) : rate_(rate) {
    if (!(rate > 0)) throw std::invalid_argument("Exponential: rate <= 0");
  }
  static Exponential from_mean(double mean) { return Exponential(1.0 / mean); }
  double sample(Rng& rng) const override {
    return -std::log(rng.next_double_open()) / rate_;
  }
  double mean() const override { return 1.0 / rate_; }
  double variance() const override { return 1.0 / (rate_ * rate_); }
  double rate() const { return rate_; }
  std::string describe() const override {
    return "Exponential(rate=" + std::to_string(rate_) + ")";
  }

 private:
  double rate_;
};

/// Uniform distribution on [lo, hi].
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
    if (lo < 0 || hi < lo) throw std::invalid_argument("Uniform: bad range");
  }
  double sample(Rng& rng) const override {
    return lo_ + (hi_ - lo_) * rng.next_double();
  }
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double variance() const override {
    const double w = hi_ - lo_;
    return w * w / 12.0;
  }
  std::string describe() const override {
    return "Uniform[" + std::to_string(lo_) + "," + std::to_string(hi_) + "]";
  }

 private:
  double lo_, hi_;
};

/// Normal distribution truncated at zero (durations cannot be negative).
/// For the parameter ranges used in the paper's models (mean >> sigma) the
/// truncation mass is negligible, so the analytic moments below are reported
/// for the untruncated normal; tests allow for the tiny truncation bias.
class TruncatedNormal final : public Distribution {
 public:
  TruncatedNormal(double mean, double stddev) : mean_(mean), sigma_(stddev) {
    if (!(stddev >= 0)) throw std::invalid_argument("Normal: stddev < 0");
  }
  double sample(Rng& rng) const override {
    // Box-Muller; draw until nonnegative (cheap when mean >> sigma).
    for (;;) {
      const double u1 = rng.next_double_open();
      const double u2 = rng.next_double();
      const double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
      const double x = mean_ + sigma_ * z;
      if (x >= 0) return x;
    }
  }
  double mean() const override { return mean_; }
  double variance() const override { return sigma_ * sigma_; }
  std::string describe() const override {
    return "Normal(mu=" + std::to_string(mean_) +
           ",sigma=" + std::to_string(sigma_) + ")";
  }

 private:
  static constexpr double kPi = 3.14159265358979323846;
  double mean_, sigma_;
};

/// Erlang-k distribution: sum of k iid Exponential(rate) variates.
/// This is exactly the distribution of the time for a local trace buffer of
/// capacity k to fill under Poisson event arrivals at `rate` (Table 3).
class Erlang final : public Distribution {
 public:
  Erlang(unsigned k, double rate) : k_(k), rate_(rate) {
    if (k == 0) throw std::invalid_argument("Erlang: k == 0");
    if (!(rate > 0)) throw std::invalid_argument("Erlang: rate <= 0");
  }
  double sample(Rng& rng) const override {
    // Product-of-uniforms method: -log(prod u_i)/rate.
    double acc = 0.0;
    for (unsigned i = 0; i < k_; ++i) acc += -std::log(rng.next_double_open());
    return acc / rate_;
  }
  double mean() const override { return k_ / rate_; }
  double variance() const override { return k_ / (rate_ * rate_); }
  unsigned k() const { return k_; }
  double rate() const { return rate_; }
  std::string describe() const override {
    return "Erlang(k=" + std::to_string(k_) +
           ",rate=" + std::to_string(rate_) + ")";
  }

 private:
  unsigned k_;
  double rate_;
};

/// Two-phase hyperexponential distribution: with probability p the variate is
/// Exponential(rate1), otherwise Exponential(rate2).  Coefficient of
/// variation > 1 — used to model bursty instrumentation-data arrivals
/// ("it is not uncommon for the rate of arrivals to surge", §3.3.3).
class Hyperexponential final : public Distribution {
 public:
  Hyperexponential(double p, double rate1, double rate2)
      : p_(p), r1_(rate1), r2_(rate2) {
    if (!(p >= 0 && p <= 1)) throw std::invalid_argument("Hyperexp: bad p");
    if (!(rate1 > 0) || !(rate2 > 0))
      throw std::invalid_argument("Hyperexp: rate <= 0");
  }
  double sample(Rng& rng) const override {
    const double rate = rng.next_bernoulli(p_) ? r1_ : r2_;
    return -std::log(rng.next_double_open()) / rate;
  }
  double mean() const override { return p_ / r1_ + (1 - p_) / r2_; }
  double variance() const override {
    const double m = mean();
    const double m2 = 2 * (p_ / (r1_ * r1_) + (1 - p_) / (r2_ * r2_));
    return m2 - m * m;
  }
  std::string describe() const override {
    return "Hyperexp(p=" + std::to_string(p_) + ")";
  }

 private:
  double p_, r1_, r2_;
};

/// Discrete empirical distribution over a fixed set of (value, weight) pairs.
/// Used for workload-characterization-style demand models (§3.2.2 cites
/// Kleinrock-style workstation workload studies).
class Empirical final : public Distribution {
 public:
  explicit Empirical(std::vector<std::pair<double, double>> value_weight)
      : points_(std::move(value_weight)) {
    if (points_.empty()) throw std::invalid_argument("Empirical: empty");
    double total = 0;
    for (auto& [v, w] : points_) {
      if (v < 0 || w < 0) throw std::invalid_argument("Empirical: negative");
      total += w;
    }
    if (!(total > 0)) throw std::invalid_argument("Empirical: zero mass");
    cdf_.reserve(points_.size());
    double acc = 0;
    for (auto& [v, w] : points_) {
      acc += w / total;
      cdf_.push_back(acc);
    }
    cdf_.back() = 1.0;  // guard against rounding
  }
  double sample(Rng& rng) const override {
    const double u = rng.next_double();
    for (std::size_t i = 0; i < cdf_.size(); ++i)
      if (u < cdf_[i]) return points_[i].first;
    return points_.back().first;
  }
  double mean() const override {
    double m = 0;
    for (std::size_t i = 0; i < points_.size(); ++i)
      m += points_[i].first * prob(i);
    return m;
  }
  double variance() const override {
    const double m = mean();
    double v = 0;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      const double d = points_[i].first - m;
      v += d * d * prob(i);
    }
    return v;
  }
  std::string describe() const override {
    return "Empirical(" + std::to_string(points_.size()) + " points)";
  }

 private:
  double prob(std::size_t i) const {
    return cdf_[i] - (i == 0 ? 0.0 : cdf_[i - 1]);
  }
  std::vector<std::pair<double, double>> points_;
  std::vector<double> cdf_;
};

/// Shifted distribution: base sample plus a constant offset (e.g. a fixed
/// per-message software overhead plus a variable transmission time).
class Shifted final : public Distribution {
 public:
  Shifted(std::shared_ptr<const Distribution> base, double shift)
      : base_(std::move(base)), shift_(shift) {
    if (!base_) throw std::invalid_argument("Shifted: null base");
    if (shift < 0) throw std::invalid_argument("Shifted: shift < 0");
  }
  double sample(Rng& rng) const override {
    return shift_ + base_->sample(rng);
  }
  double mean() const override { return shift_ + base_->mean(); }
  double variance() const override { return base_->variance(); }
  std::string describe() const override {
    return "Shifted(+" + std::to_string(shift_) + "," + base_->describe() +
           ")";
  }

 private:
  std::shared_ptr<const Distribution> base_;
  double shift_;
};

/// Samples a Poisson(mean) count.  Knuth's product method for small means,
/// normal approximation (rounded, clamped at 0) for mean > 64 where the
/// relative error of the approximation is far below sampling noise.
std::uint64_t poisson_sample(Rng& rng, double mean);

}  // namespace prism::stats
