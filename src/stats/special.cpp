#include "stats/special.hpp"

#include <cmath>
#include <stdexcept>

namespace prism::stats {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Series representation of P(a,x), good for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Continued-fraction representation of Q(a,x), good for x >= a + 1
// (modified Lentz's method).
double gamma_q_cf(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

}  // namespace

double log_gamma(double x) {
  if (!(x > 0)) throw std::domain_error("log_gamma: x <= 0");
  // Lanczos, g = 7, n = 9.
  static const double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,   12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(kPi / std::sin(kPi * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double a = kCoef[0];
  const double t = z + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoef[i] / (z + i);
  return 0.5 * std::log(2.0 * kPi) + (z + 0.5) * std::log(t) - t + std::log(a);
}

double gamma_p(double a, double x) {
  if (!(a > 0)) throw std::domain_error("gamma_p: a <= 0");
  if (x < 0) throw std::domain_error("gamma_p: x < 0");
  if (x == 0) return 0.0;
  return x < a + 1.0 ? gamma_p_series(a, x) : 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  if (!(a > 0)) throw std::domain_error("gamma_q: a <= 0");
  if (x < 0) throw std::domain_error("gamma_q: x < 0");
  if (x == 0) return 1.0;
  return x < a + 1.0 ? 1.0 - gamma_p_series(a, x) : gamma_q_cf(a, x);
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  if (!(p > 0 && p < 1)) throw std::domain_error("normal_quantile: p in (0,1)");
  // Acklam's algorithm.
  static const double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                              -2.759285104469687e+02, 1.383577518672690e+02,
                              -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                              -1.556989798598866e+02, 6.680131188771972e+01,
                              -1.328068155288572e+01};
  static const double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                              -2.400758277161838e+00, -2.549732539343734e+00,
                              4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                              2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q, r, x;
  if (p < p_low) {
    q = std::sqrt(-2 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  } else if (p <= 1 - p_low) {
    q = p - 0.5;
    r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  } else {
    q = std::sqrt(-2 * std::log(1 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  // One Halley refinement step using the normal CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2 * kPi) * std::exp(x * x / 2);
  return x - u / (1 + x * u / 2);
}

double t_critical(double confidence, unsigned dof) {
  if (!(confidence > 0 && confidence < 1))
    throw std::domain_error("t_critical: confidence in (0,1)");
  if (dof == 0) throw std::domain_error("t_critical: dof == 0");
  const double p = 0.5 + confidence / 2.0;  // upper-tail quantile point
  const double z = normal_quantile(p);
  if (dof > 200) return z;
  // Cornish-Fisher expansion of the t quantile in powers of 1/dof.
  const double n = dof;
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  const double g1 = (z3 + z) / 4.0;
  const double g2 = (5 * z5 + 16 * z3 + 3 * z) / 96.0;
  const double g3 = (3 * z7 + 19 * z5 + 17 * z3 - 15 * z) / 384.0;
  return z + g1 / n + g2 / (n * n) + g3 / (n * n * n);
}

}  // namespace prism::stats
