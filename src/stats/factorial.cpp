#include "stats/factorial.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace prism::stats {

std::size_t FactorialResult::dominant_effect() const {
  std::size_t best = 1;
  for (std::size_t i = 1; i < variation_fraction.size(); ++i)
    if (variation_fraction[i] > variation_fraction[best]) best = i;
  return best;
}

std::string FactorialResult::to_string() const {
  std::ostringstream os;
  os << "2^" << k << " * " << r << " factorial analysis\n";
  os << "  effect            estimate      var%";
  if (!effect_ci.empty()) os << "      CI half-width";
  os << "\n";
  for (std::size_t i = 0; i < effects.size(); ++i) {
    os << "  " << effect_names[i];
    for (std::size_t pad = effect_names[i].size(); pad < 16; ++pad) os << ' ';
    os << " " << effects[i];
    os << "  " << 100.0 * variation_fraction[i] << "%";
    if (i < effect_ci.size()) os << "  +/- " << effect_ci[i].half_width;
    os << "\n";
  }
  os << "  error";
  for (std::size_t pad = 5; pad < 16; ++pad) os << ' ';
  os << "             " << 100.0 * error_fraction << "%\n";
  return os.str();
}

Design2kr::Design2kr(std::vector<std::string> factor_names, unsigned r)
    : names_(std::move(factor_names)), r_(r) {
  if (names_.empty()) throw std::invalid_argument("Design2kr: no factors");
  if (names_.size() > 16) throw std::invalid_argument("Design2kr: k > 16");
  if (r == 0) throw std::invalid_argument("Design2kr: r == 0");
}

std::vector<int> Design2kr::levels(unsigned point) const {
  if (point >= points()) throw std::out_of_range("Design2kr::levels");
  std::vector<int> out(k());
  for (unsigned f = 0; f < k(); ++f)
    out[f] = (point >> f) & 1u ? +1 : -1;
  return out;
}

FactorialResult Design2kr::run(
    const std::function<double(const std::vector<int>&, unsigned)>& fn) const {
  std::vector<std::vector<double>> responses(points());
  for (unsigned pt = 0; pt < points(); ++pt) {
    responses[pt].reserve(r_);
    const auto lv = levels(pt);
    for (unsigned rep = 0; rep < r_; ++rep)
      responses[pt].push_back(fn(lv, rep));
  }
  return analyze(responses);
}

FactorialResult Design2kr::analyze(
    const std::vector<std::vector<double>>& responses) const {
  const unsigned n = points();
  if (responses.size() != n)
    throw std::invalid_argument("Design2kr::analyze: wrong #points");
  for (auto& row : responses)
    if (row.size() != r_)
      throw std::invalid_argument("Design2kr::analyze: wrong #reps");

  // Cell means.
  std::vector<double> ybar(n, 0.0);
  for (unsigned pt = 0; pt < n; ++pt) {
    for (double y : responses[pt]) ybar[pt] += y;
    ybar[pt] /= static_cast<double>(r_);
  }

  FactorialResult res;
  res.k = k();
  res.r = r_;

  // Sign table: effect subset `e` (bitmask over factors) has sign
  // prod_{f in e} level_f at design point pt.  Effect estimate
  // q_e = (1/2^k) sum_pt sign(e, pt) * ybar_pt.
  res.effects.resize(n, 0.0);
  for (unsigned e = 0; e < n; ++e) {
    double acc = 0.0;
    for (unsigned pt = 0; pt < n; ++pt) {
      // sign = (-1)^{popcount(e & ~pt & mask)} — a factor contributes -1
      // when it is in the effect subset and at its low level (bit 0).
      const unsigned low_bits = e & ~pt;
      const int sign = (__builtin_popcount(low_bits) & 1) ? -1 : +1;
      acc += sign * ybar[pt];
    }
    res.effects[e] = acc / static_cast<double>(n);
  }

  // Effect names.
  res.effect_names.resize(n);
  for (unsigned e = 0; e < n; ++e) {
    if (e == 0) {
      res.effect_names[e] = "mean";
      continue;
    }
    std::string nm;
    for (unsigned f = 0; f < k(); ++f) {
      if ((e >> f) & 1u) {
        if (!nm.empty()) nm += "x";
        nm += names_[f];
      }
    }
    res.effect_names[e] = nm;
  }

  // Sums of squares.  SSE = sum over cells and reps of (y - ybar_cell)^2;
  // SS(effect e) = 2^k * r * q_e^2; SST = SSE + sum of effect SS.
  double sse = 0.0;
  for (unsigned pt = 0; pt < n; ++pt)
    for (double y : responses[pt]) {
      const double d = y - ybar[pt];
      sse += d * d;
    }
  double ss_effects_total = 0.0;
  std::vector<double> ss_effect(n, 0.0);
  for (unsigned e = 1; e < n; ++e) {
    ss_effect[e] =
        static_cast<double>(n) * static_cast<double>(r_) * res.effects[e] *
        res.effects[e];
    ss_effects_total += ss_effect[e];
  }
  const double sst = sse + ss_effects_total;
  res.variation_fraction.assign(n, 0.0);
  if (sst > 0) {
    for (unsigned e = 1; e < n; ++e)
      res.variation_fraction[e] = ss_effect[e] / sst;
    res.error_fraction = sse / sst;
  }

  // Confidence intervals on effects: s_e^2 = SSE / (2^k (r-1)); each effect
  // estimate has standard deviation s_e / sqrt(2^k r), dof = 2^k (r - 1).
  if (r_ >= 2) {
    const double dof = static_cast<double>(n) * (r_ - 1);
    const double se2 = sse / dof;
    const double sq = std::sqrt(se2 / (static_cast<double>(n) * r_));
    const double t = t_critical(0.90, static_cast<unsigned>(dof));
    res.effect_ci.resize(n);
    for (unsigned e = 0; e < n; ++e)
      res.effect_ci[e] = ConfidenceInterval{res.effects[e], t * sq, 0.90,
                                            static_cast<std::uint64_t>(r_)};
  }
  return res;
}

}  // namespace prism::stats
