// 2^k·r factorial experiment design (Jain, "The Art of Computer Systems
// Performance Analysis", ch. 17-18 — the paper's reference [11]).
//
// Both simulation case studies in the paper use this design: "We used a 2kr
// factorial design technique for these experiments, where k is the number of
// factors of interest and r is the number of repetitions ... k=2 factors and
// r=50 repetitions, and the mean values of the two metrics are derived within
// 90% confidence intervals" (§3.2.2, §3.3.2).  The paper then uses the
// allocation of variation to conclude that "the inter-arrival rate is the
// dominant factor" (§3.3.2).
//
// Design2kr estimates all 2^k effects (mean, main effects, and every
// interaction) by the sign-table method, computes the allocation of variation
// (fraction of total sum of squares explained by each effect vs experimental
// error), and produces t-based confidence intervals on each effect.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stats/confidence.hpp"

namespace prism::stats {

/// Result of a 2^k·r factorial analysis.
struct FactorialResult {
  /// Effect names: "mean", then factor names, then interactions joined
  /// with "x" in subset order ("AxB", "AxC", "BxC", "AxBxC", ...).
  std::vector<std::string> effect_names;
  /// Estimated effects q_i (q_0 is the grand mean).
  std::vector<double> effects;
  /// Fraction of total variation allocated to each effect (same order as
  /// `effects`, mean excluded => entry 0 is 0), plus `error_fraction`.
  std::vector<double> variation_fraction;
  double error_fraction = 0.0;
  /// Confidence intervals on each effect (valid when r >= 2).
  std::vector<ConfidenceInterval> effect_ci;
  unsigned k = 0;
  unsigned r = 0;

  /// Index of the non-mean effect explaining the most variation.
  std::size_t dominant_effect() const;
  /// Formats a compact report table.
  std::string to_string() const;
};

/// A 2^k·r design.  Factor levels are abstract (-1 / +1); the caller's
/// `run` functor receives the level vector and the replication index and
/// returns the measured response.  Replication index `rep` should be used to
/// derive the RNG seed so replications are independent.
class Design2kr {
 public:
  explicit Design2kr(std::vector<std::string> factor_names, unsigned r);

  unsigned k() const { return static_cast<unsigned>(names_.size()); }
  unsigned r() const { return r_; }
  /// Number of design points (2^k).
  unsigned points() const { return 1u << k(); }

  /// Level vector (each -1 or +1) for design point `point` in [0, 2^k).
  std::vector<int> levels(unsigned point) const;

  /// Runs the full design and analyzes it.
  FactorialResult run(
      const std::function<double(const std::vector<int>& levels,
                                 unsigned rep)>& run) const;

  /// Analyzes externally collected responses: responses[point][rep].
  FactorialResult analyze(
      const std::vector<std::vector<double>>& responses) const;

 private:
  std::vector<std::string> names_;
  unsigned r_;
};

}  // namespace prism::stats
