// Special functions needed by the analytic models: log-gamma, the regularized
// incomplete gamma function P(a, x) and its complement Q(a, x), and the
// Student-t quantiles used for confidence intervals.
#pragma once

namespace prism::stats {

/// Natural log of the gamma function (Lanczos approximation; |err| < 2e-10
/// over the parameter ranges used here).
double log_gamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a).
/// P(l, rate*t) is the CDF of an Erlang(l, rate) variate at t.
double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

/// Standard normal CDF.
double normal_cdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative err| < 1.15e-9).
double normal_quantile(double p);

/// Two-sided Student-t critical value t_{alpha/2, dof}: the value c such
/// that P(|T| <= c) = confidence for a t distribution with `dof` degrees of
/// freedom.  Exact for dof -> infinity (normal); uses the Cornish-Fisher
/// expansion otherwise (error < 1e-4 for dof >= 3, ample for 90%/95% CIs).
double t_critical(double confidence, unsigned dof);

}  // namespace prism::stats
