#include "stats/erlang.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/special.hpp"

namespace prism::stats {

namespace {

void check_args(unsigned l, double rate) {
  if (l == 0) throw std::domain_error("erlang: l == 0");
  if (!(rate > 0)) throw std::domain_error("erlang: rate <= 0");
}

}  // namespace

double erlang_cdf(unsigned l, double rate, double t) {
  check_args(l, rate);
  if (t <= 0) return 0.0;
  return gamma_p(static_cast<double>(l), rate * t);
}

double erlang_tail(unsigned l, double rate, double t) {
  check_args(l, rate);
  if (t <= 0) return 1.0;
  return gamma_q(static_cast<double>(l), rate * t);
}

double erlang_mean(unsigned l, double rate) {
  check_args(l, rate);
  return static_cast<double>(l) / rate;
}

double erlang_min_tail(unsigned l, double rate, unsigned p, double t) {
  if (p == 0) throw std::domain_error("erlang_min_tail: p == 0");
  return std::pow(erlang_tail(l, rate, t), static_cast<double>(p));
}

namespace {

// Adaptive Simpson on [a, b] for the min tail.
double simpson(unsigned l, double rate, unsigned p, double a, double fa,
               double b, double fb, double fm, double whole, double tol,
               int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = erlang_min_tail(l, rate, p, lm);
  const double frm = erlang_min_tail(l, rate, p, rm);
  const double left = (m - a) / 6.0 * (fa + 4 * flm + fm);
  const double right = (b - m) / 6.0 * (fm + 4 * frm + fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15 * tol)
    return left + right + delta / 15.0;
  return simpson(l, rate, p, a, fa, m, fm, flm, left, tol / 2, depth - 1) +
         simpson(l, rate, p, m, fm, b, fb, frm, right, tol / 2, depth - 1);
}

}  // namespace

double erlang_min_mean(unsigned l, double rate, unsigned p) {
  check_args(l, rate);
  if (p == 0) throw std::domain_error("erlang_min_mean: p == 0");
  // Integrate P[min > t] from 0 until the tail is negligible.  The single
  // Erlang mean l/rate dominates the scale; the min tail decays at least as
  // fast, so 8 single-buffer means plus slack is a safe upper limit —
  // verified by checking the tail there.
  const double scale = erlang_mean(l, rate);
  double hi = 8.0 * scale;
  while (erlang_min_tail(l, rate, p, hi) > 1e-12) hi *= 2.0;
  const double fa = 1.0;
  const double fb = erlang_min_tail(l, rate, p, hi);
  const double fm = erlang_min_tail(l, rate, p, 0.5 * hi);
  const double whole = hi / 6.0 * (fa + 4 * fm + fb);
  return simpson(l, rate, p, 0.0, fa, hi, fb, fm, whole, 1e-9 * scale, 40);
}

double erlang_min_mean_lower_bound(unsigned l, double rate, unsigned p) {
  check_args(l, rate);
  if (p == 0) throw std::domain_error("erlang_min_mean_lower_bound: p == 0");
  return static_cast<double>(l) / (static_cast<double>(p) * rate);
}

}  // namespace prism::stats
