// Miniature W3 bottleneck search (§3.2).
//
// "It provides data collection support for Paradyn's W3 search model, which
// analyzes program performance bottlenecks by measuring system resource
// utilization with appropriate metrics.  When the search algorithm needs to
// analyze a particular metric, instrumentation is inserted dynamically in
// the program during runtime to generate samples of that metric value.
// Therefore, the W3 search methodology uses a minimal amount of
// instrumentation."
//
// This implementation answers two of the three W's: *why* (which hypothesis
// — CPU-, synchronization-, or communication-bound) and *where* (which
// node).  It drives a MetricProvider, the dynamic-instrumentation interface:
// the search enables exactly one (node, metric) pair at a time, draws a
// fixed number of samples, tests the mean against the hypothesis threshold,
// and disables the instrumentation before moving on — tests assert this
// minimality invariant.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace prism::paradyn {

/// Metrics the search can request.
enum class MetricId : std::uint16_t {
  kCpuUtilization = 0,    ///< fraction of time on the CPU
  kSyncWaitFraction = 1,  ///< fraction of time blocked on synchronization
  kCommFraction = 2,      ///< fraction of time in communication
};

std::string_view to_string(MetricId m);

/// Root hypotheses ("why").
enum class Hypothesis : std::uint8_t {
  kCpuBound = 0,
  kSyncBound = 1,
  kCommBound = 2,
};

std::string_view to_string(Hypothesis h);

/// The metric each hypothesis tests.
MetricId metric_for(Hypothesis h);

/// Dynamic-instrumentation interface the search drives.  `kWholeProgram`
/// aggregates over all nodes (the root of the "where" axis).
class MetricProvider {
 public:
  static constexpr std::uint32_t kWholeProgram = 0xFFFFFFFFu;

  virtual ~MetricProvider() = default;
  virtual std::uint32_t nodes() const = 0;
  /// Inserts instrumentation for (node, metric).
  virtual void enable(std::uint32_t node, MetricId metric) = 0;
  /// Removes it.
  virtual void disable(std::uint32_t node, MetricId metric) = 0;
  /// Draws one sample; only valid while enabled.
  virtual double sample(std::uint32_t node, MetricId metric) = 0;
};

struct W3Config {
  unsigned samples_per_test = 16;
  /// A hypothesis holds when the sampled mean exceeds its threshold.
  double cpu_threshold = 0.7;
  double sync_threshold = 0.3;
  double comm_threshold = 0.3;

  double threshold_for(Hypothesis h) const {
    switch (h) {
      case Hypothesis::kCpuBound: return cpu_threshold;
      case Hypothesis::kSyncBound: return sync_threshold;
      case Hypothesis::kCommBound: return comm_threshold;
    }
    return 1.0;
  }
};

struct Diagnosis {
  std::optional<Hypothesis> why;      ///< nullopt: no hypothesis held
  std::optional<std::uint32_t> where; ///< refined node, when localizable
  double evidence = 0;                ///< sampled mean behind the verdict
  /// Total samples drawn — the search's instrumentation cost.
  std::uint64_t samples_used = 0;
  /// Distinct (node, metric) instrumentation insertions performed.
  std::uint64_t insertions = 0;
};

class W3Search {
 public:
  explicit W3Search(W3Config config) : config_(config) {}

  /// Runs the why -> where refinement against `provider`.
  Diagnosis run(MetricProvider& provider) const;

 private:
  /// Tests one hypothesis at one locus; returns the sampled mean.
  double test(MetricProvider& provider, std::uint32_t node, MetricId metric,
              Diagnosis& accounting) const;

  W3Config config_;
};

}  // namespace prism::paradyn
