#include "paradyn/rocc_model.hpp"

#include <memory>
#include <stdexcept>

#include "rocc/model.hpp"
#include "sim/arena.hpp"
#include "stats/distributions.hpp"

namespace prism::paradyn {

using rocc::Behavior;
using rocc::ProcessClass;
using rocc::ResourceKind;
using rocc::Step;

void ParadynRoccParams::validate() const {
  if (!(sampling_period_ms > 0))
    throw std::invalid_argument("ParadynRoccParams: period <= 0");
  if (app_processes == 0)
    throw std::invalid_argument("ParadynRoccParams: no app processes");
  if (!(horizon_ms > 0))
    throw std::invalid_argument("ParadynRoccParams: horizon <= 0");
  if (!(quantum_ms > 0))
    throw std::invalid_argument("ParadynRoccParams: quantum <= 0");
  if (!(sample_rate_per_metric >= 0) || !(per_sample_cpu_ms >= 0) ||
      !(daemon_wakeup_overhead_ms >= 0))
    throw std::invalid_argument("ParadynRoccParams: negative daemon cost");
}

namespace {

/// Per-wakeup daemon demands: a fixed wakeup overhead plus a per-sample cost
/// for the samples accumulated over one period, then a network forward.
struct DaemonDemand {
  double cpu = 0;
  double net = 0;
};

DaemonDemand daemon_demand(const ParadynRoccParams& p) {
  const double samples_per_wakeup =
      p.sample_rate_per_metric * p.sampling_period_ms * p.daemon_metrics;
  return {p.daemon_wakeup_overhead_ms + p.per_sample_cpu_ms * samples_per_wakeup,
          p.per_sample_network_ms * samples_per_wakeup};
}

/// A shared Exponential whose control block and payload live in the
/// replication arena — per-replication scenario setup then touches the heap
/// only on the first replication per thread (DESIGN.md §15).
std::shared_ptr<stats::Exponential> arena_exponential(double mean_ms) {
  return std::allocate_shared<stats::Exponential>(
      sim::ArenaAllocator<stats::Exponential>(&sim::rep_arena()),
      stats::Exponential::from_mean(mean_ms));
}

}  // namespace

ParadynRoccMetrics run_paradyn_rocc(const ParadynRoccParams& p,
                                    stats::Rng rng,
                                    obs::PipelineObserver* obs) {
  p.validate();
  // Frame-structured arena use: everything this scenario arena-allocates is
  // reclaimed (for reuse, not freed) when the model returns, so direct
  // callers in a loop — sweeps, factorials, tests — recycle instead of
  // growing the thread's arena.
  const sim::MonotonicArena::Frame arena_frame(sim::rep_arena());
  rocc::NodeModel node(p.quantum_ms, rng);

  // Application processes: compute/communicate cycles; the inserted
  // instrumentation costs one sample's CPU per generated sample, folded
  // into the burst (events_per_sample = 1 cycle per sample on average).
  auto app_cpu = arena_exponential(p.app_cpu_burst_mean_ms);
  auto app_net = arena_exponential(p.app_network_mean_ms);
  for (unsigned i = 0; i < p.app_processes; ++i) {
    node.add_process(
        ProcessClass::kApplication,
        rocc::compute_communicate_behavior(app_cpu, app_net,
                                           p.app_comm_probability,
                                           /*instr_cpu_cost=*/
                                           p.per_sample_cpu_ms,
                                           /*events_per_sample=*/1));
  }

  // The daemon: timer-locked on the sampling period (a real daemon sits on
  // an interval timer — contention delays its work, not its wakeups).  Its
  // backlog queues without bound: samples pile up in the pipes and the
  // daemon works them off whenever the scheduler lets it, so under
  // saturation round-robin throttles it to its fair CPU share — the Fig. 9b
  // starvation mechanism of §3.2.3.
  const DaemonDemand dd = daemon_demand(p);
  node.add_timer_process(ProcessClass::kInstrumentation, p.sampling_period_ms,
                         dd.cpu, dd.net, p.daemon_max_outstanding);

  // Other-user background load.
  if (p.other_user_processes > 0) {
    auto other_cpu = arena_exponential(p.other_cpu_burst_mean_ms);
    auto other_think = arena_exponential(p.other_think_mean_ms);
    for (unsigned i = 0; i < p.other_user_processes; ++i)
      node.add_process(ProcessClass::kOtherUser,
                       rocc::background_load_behavior(other_cpu, other_think));
  }

  node.set_observer(obs);
  const rocc::NodeMetrics m = node.run(p.horizon_ms);

  ParadynRoccMetrics out;
  out.pd_interference_ms = m.cpu_time_instrumentation;
  const double total_cpu =
      m.cpu_time_application + m.cpu_time_instrumentation + m.cpu_time_other;
  out.pd_cpu_utilization_pct =
      total_cpu > 0 ? 100.0 * m.cpu_time_instrumentation / total_cpu : 0.0;
  out.pd_horizon_utilization_pct =
      100.0 * m.cpu_time_instrumentation / m.span;
  out.app_cpu_ms = m.cpu_time_application;
  out.app_requests = m.app_requests_completed;
  out.mean_cpu_queueing_delay_ms = m.mean_cpu_queueing_delay;
  out.cpu_utilization = total_cpu / m.span;
  return out;
}

namespace {

SweepPoint summarize(double x, const sim::ReplicationResult& rr) {
  SweepPoint pt;
  pt.x = x;
  pt.interference = rr.ci("interference", 0.90);
  pt.utilization_pct = rr.ci("utilization_pct", 0.90);
  pt.queueing_delay = rr.ci("queueing_delay", 0.90);
  return pt;
}

sim::Responses to_responses(const ParadynRoccMetrics& m) {
  return {{"interference", m.pd_interference_ms},
          {"utilization_pct", m.pd_cpu_utilization_pct},
          {"queueing_delay", m.mean_cpu_queueing_delay_ms},
          {"app_requests", static_cast<double>(m.app_requests)}};
}

}  // namespace

std::vector<SweepPoint> sweep_sampling_period(
    const ParadynRoccParams& base, const std::vector<double>& periods_ms,
    unsigned replications, std::uint64_t seed,
    const sim::ReplicateOptions& opts) {
  std::vector<SweepPoint> out;
  out.reserve(periods_ms.size());
  for (double period : periods_ms) {
    ParadynRoccParams p = base;
    p.sampling_period_ms = period;
    auto rr = sim::replicate(
        replications, seed, static_cast<std::uint64_t>(period * 1000),
        [&p](stats::Rng& rng) { return to_responses(run_paradyn_rocc(p, rng)); },
        opts);
    out.push_back(summarize(period, rr));
  }
  return out;
}

std::vector<SweepPoint> sweep_app_processes(
    const ParadynRoccParams& base, const std::vector<unsigned>& counts,
    unsigned replications, std::uint64_t seed,
    const sim::ReplicateOptions& opts) {
  std::vector<SweepPoint> out;
  out.reserve(counts.size());
  for (unsigned n : counts) {
    ParadynRoccParams p = base;
    p.app_processes = n;
    auto rr = sim::replicate(
        replications, seed, 1'000'000ull + n,
        [&p](stats::Rng& rng) { return to_responses(run_paradyn_rocc(p, rng)); },
        opts);
    out.push_back(summarize(static_cast<double>(n), rr));
  }
  return out;
}

stats::FactorialResult paradyn_factorial(const ParadynRoccParams& base,
                                         double period_lo, double period_hi,
                                         unsigned procs_lo, unsigned procs_hi,
                                         unsigned replications,
                                         const std::string& response,
                                         std::uint64_t seed) {
  if (response != "interference" && response != "utilization_pct")
    throw std::invalid_argument("paradyn_factorial: unknown response " +
                                response);
  stats::Design2kr design({"period", "procs"}, replications);
  return design.run([&](const std::vector<int>& levels, unsigned rep) {
    ParadynRoccParams p = base;
    p.sampling_period_ms = levels[0] < 0 ? period_lo : period_hi;
    p.app_processes = levels[1] < 0 ? procs_lo : procs_hi;
    stats::Rng rng(stats::Rng::hash_seed(
        seed, static_cast<std::uint64_t>(levels[0] + 1),
        static_cast<std::uint64_t>(levels[1] + 1),
        static_cast<std::uint64_t>(rep)));
    const auto m = run_paradyn_rocc(p, rng);
    return response == "interference" ? m.pd_interference_ms
                                      : m.pd_cpu_utilization_pct;
  });
}

}  // namespace prism::paradyn
