#include "paradyn/live.hpp"

#include "core/environment.hpp"
#include "workload/thread_apps.hpp"

namespace prism::paradyn {

LiveDaemonReport run_live_daemon_experiment(const LiveDaemonParams& params) {
  core::EnvironmentConfig cfg;
  cfg.nodes = 1;
  cfg.processes_per_node = params.app_threads;
  cfg.lis_style = core::LisStyle::kDaemon;
  cfg.sampling_period_ns = params.sampling_period_ns;
  cfg.pipe_capacity = params.pipe_capacity;
  cfg.ism.input = core::InputConfig::kSiso;
  cfg.ism.causal_ordering = false;  // samples only; no message pairing

  core::IntegratedEnvironment env(cfg);
  auto stats_tool = std::make_shared<core::StatsTool>();
  env.attach_tool(stats_tool);
  env.start();

  const auto app = workload::run_sampling_threads(
      env, /*metric_count=*/2, params.samples_per_sec_per_thread,
      params.duration_ms);

  auto* daemon = dynamic_cast<core::DaemonLis*>(&env.lis(0));
  LiveDaemonReport rep;
  rep.app_block_ns = daemon ? daemon->app_block_time_ns() : 0;
  rep.daemon_busy_ns = daemon ? daemon->daemon_busy_ns() : 0;
  env.stop();

  rep.events_recorded = app.events_recorded;
  rep.events_dispatched = env.ism().stats().records_dispatched;
  rep.wall_ns = app.wall_ns;
  rep.daemon_utilization_pct =
      app.wall_ns > 0
          ? 100.0 * static_cast<double>(rep.daemon_busy_ns) /
                static_cast<double>(app.wall_ns)
          : 0.0;
  return rep;
}

}  // namespace prism::paradyn
