// The Paradyn IS ROCC scenario (§3.2.2, Figs. 8-9, Tables 4-5).
//
// One node of the workstation cluster: a round-robin CPU and a network,
// shared by
//   * n instrumented application processes (compute/communicate cycles, plus
//     the inserted instrumentation's CPU cost),
//   * the Paradyn daemon (Pd): wakes every sampling period, spends a fixed
//     wakeup overhead plus a per-sample cost for the samples its local pipes
//     accumulated since the last wakeup, then forwards the batch, and
//   * other-user background load.
//
// Metrics (Table 5):
//   * Pd interference — absolute CPU time consumed by the daemon over the
//     run (Fig. 9a plots this in ms against the sampling period).  The
//     wakeup overhead term makes it fall superlinearly as the period grows
//     and level off at the fixed per-sample work — the published shape.
//   * utilizationPd — the daemon's share of consumed CPU time (in %,
//     relative to all processes).  As the application process count grows
//     the application's share grows and round-robin starves the daemon, so
//     the share falls toward zero (Fig. 9b) and daemon queueing delay rises
//     (the pipe-blocking bottleneck of §3.2.3).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/pipeline.hpp"
#include "sim/replication.hpp"
#include "stats/factorial.hpp"
#include "stats/rng.hpp"

namespace prism::paradyn {

struct ParadynRoccParams {
  // Factors of interest (the paper's 2^k design uses these two).
  double sampling_period_ms = 200.0;
  unsigned app_processes = 8;

  // Daemon workload characterization.  W3 keeps the instrumented metric set
  // bounded ("a minimal amount of instrumentation"), so the daemon's sample
  // volume scales with the enabled metric count, not the process count —
  // adding application processes adds CPU *contention*, not daemon work.
  double daemon_wakeup_overhead_ms = 2.0;  ///< fixed CPU cost per wakeup
  double per_sample_cpu_ms = 0.15;         ///< CPU cost to collect one sample
  double per_sample_network_ms = 0.02;     ///< network cost to forward one
  double sample_rate_per_metric = 0.05;    ///< samples/ms per enabled metric
  unsigned daemon_metrics = 8;             ///< enabled metrics (W3-bounded)

  // Application workload characterization ("local nodes have more
  // computation than communication capacity as in the case of high
  // performance workstations", §3.2.3 — CPU-bound apps).
  double app_cpu_burst_mean_ms = 10.0;
  double app_network_mean_ms = 2.0;
  double app_comm_probability = 0.25;

  // Background load.
  unsigned other_user_processes = 1;
  double other_cpu_burst_mean_ms = 5.0;
  double other_think_mean_ms = 40.0;

  // System.
  double quantum_ms = 5.0;    ///< Unix round-robin quantum
  double horizon_ms = 60'000; ///< simulated run length

  /// In-flight request bound before the daemon skips (coalesces) a wakeup.
  /// The default is effectively unbounded — backlog piles up in the pipes,
  /// the §3.2.3 starvation mechanism.  Small values model a daemon that
  /// drops ticks instead; every skipped tick becomes attributable sample
  /// loss under lineage tracing.
  unsigned daemon_max_outstanding = 1'000'000'000;

  void validate() const;
};

struct ParadynRoccMetrics {
  /// Absolute daemon CPU time over the horizon (ms) — Pd interference.
  double pd_interference_ms = 0;
  /// Daemon share of all consumed CPU time, percent — utilizationPd.
  double pd_cpu_utilization_pct = 0;
  /// Daemon share of wall horizon, percent.
  double pd_horizon_utilization_pct = 0;
  /// Application CPU time (ms) and completed requests (throughput proxy).
  double app_cpu_ms = 0;
  std::uint64_t app_requests = 0;
  /// Mean CPU ready-queue delay (ms) — rises when the node saturates.
  double mean_cpu_queueing_delay_ms = 0;
  /// Total CPU utilization (all classes), fraction of horizon.
  double cpu_utilization = 0;
};

/// Runs one replication of the scenario.  When `obs` is non-null the
/// daemon's wakeups are lineage-traced (capture -> CPU grant -> collection
/// done -> batch forwarded; skipped wakeups are losses) and the node's
/// resources stream occupancy onto the timeline (fixed-interval polling when
/// obs->timeline_interval > 0).  The returned metrics are bit-identical
/// with or without `obs`.
ParadynRoccMetrics run_paradyn_rocc(const ParadynRoccParams& params,
                                    stats::Rng rng,
                                    obs::PipelineObserver* obs = nullptr);

/// Fig. 9(a) sweep: Pd interference (with 90% CI) vs sampling period.
/// `opts` controls replication execution (parallel by default; results are
/// bit-identical for any thread count).
struct SweepPoint {
  double x = 0;
  stats::ConfidenceInterval interference;
  stats::ConfidenceInterval utilization_pct;
  stats::ConfidenceInterval queueing_delay;
};
std::vector<SweepPoint> sweep_sampling_period(
    const ParadynRoccParams& base, const std::vector<double>& periods_ms,
    unsigned replications, std::uint64_t seed,
    const sim::ReplicateOptions& opts = {});

/// Fig. 9(b) sweep: utilizationPd (with 90% CI) vs #application processes.
std::vector<SweepPoint> sweep_app_processes(
    const ParadynRoccParams& base, const std::vector<unsigned>& counts,
    unsigned replications, std::uint64_t seed,
    const sim::ReplicateOptions& opts = {});

/// The paper's 2^k r factorial design over {sampling period, #app processes}
/// for a chosen response ("interference" or "utilization").
stats::FactorialResult paradyn_factorial(const ParadynRoccParams& base,
                                         double period_lo, double period_hi,
                                         unsigned procs_lo, unsigned procs_hi,
                                         unsigned replications,
                                         const std::string& response,
                                         std::uint64_t seed);

}  // namespace prism::paradyn
