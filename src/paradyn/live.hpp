// Live-vs-model validation: runs the *real* daemon LIS (core::DaemonLis)
// under a thread-based sampling workload and reports the same metrics the
// ROCC model predicts, so the Fig. 9 trends can be checked against an
// actual implementation (the "benchmarking of ISs to validate that
// requirements are met" future-work item of §5).
#pragma once

#include <cstdint>

namespace prism::paradyn {

struct LiveDaemonParams {
  unsigned app_threads = 4;
  unsigned duration_ms = 200;
  double samples_per_sec_per_thread = 2000;
  std::uint64_t sampling_period_ns = 2'000'000;  // 2 ms
  std::size_t pipe_capacity = 1024;
};

struct LiveDaemonReport {
  std::uint64_t events_recorded = 0;
  std::uint64_t events_dispatched = 0;
  std::uint64_t daemon_busy_ns = 0;
  /// Daemon busy time as a percentage of wall time — the live analogue of
  /// utilizationPd.
  double daemon_utilization_pct = 0;
  /// Application time lost blocking on full pipes (ns) — the §3.2.3 stall.
  std::uint64_t app_block_ns = 0;
  std::uint64_t wall_ns = 0;
};

/// Runs the live experiment.
LiveDaemonReport run_live_daemon_experiment(const LiveDaemonParams& params);

}  // namespace prism::paradyn
