// MetricProvider implementations for the W3 search.
//
// SyntheticMetricProvider serves configurable per-node metric levels with
// noise — the unit-test and example harness for the search.  It also
// enforces (and counts violations of) the minimal-instrumentation contract:
// sampling a metric that is not currently enabled is an error.
#pragma once

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "paradyn/w3_search.hpp"
#include "stats/rng.hpp"

namespace prism::paradyn {

class SyntheticMetricProvider final : public MetricProvider {
 public:
  SyntheticMetricProvider(std::uint32_t nodes, stats::Rng rng,
                          double noise = 0.02)
      : n_(nodes), rng_(rng), noise_(noise) {
    if (nodes == 0) throw std::invalid_argument("SyntheticMetricProvider: 0");
    for (int m = 0; m < 3; ++m)
      levels_[static_cast<MetricId>(m)].assign(nodes, 0.0);
  }

  /// Sets the true level of `metric` at `node`.
  void set_level(std::uint32_t node, MetricId metric, double level) {
    levels_.at(metric).at(node) = level;
  }

  std::uint32_t nodes() const override { return n_; }

  void enable(std::uint32_t node, MetricId metric) override {
    if (!enabled_.insert(key(node, metric)).second)
      throw std::logic_error("SyntheticMetricProvider: double enable");
    ++total_enables_;
    max_concurrent_ = std::max(max_concurrent_, enabled_.size());
  }

  void disable(std::uint32_t node, MetricId metric) override {
    if (enabled_.erase(key(node, metric)) == 0)
      throw std::logic_error("SyntheticMetricProvider: disable while off");
  }

  double sample(std::uint32_t node, MetricId metric) override {
    if (enabled_.find(key(node, metric)) == enabled_.end())
      throw std::logic_error(
          "SyntheticMetricProvider: sample of disabled metric");
    double base;
    if (node == kWholeProgram) {
      // Whole-program view: average over nodes.
      const auto& v = levels_.at(metric);
      double sum = 0;
      for (double x : v) sum += x;
      base = sum / static_cast<double>(n_);
    } else {
      base = levels_.at(metric).at(node);
    }
    const double eps = noise_ * (2.0 * rng_.next_double() - 1.0);
    double v = base + eps;
    if (v < 0) v = 0;
    if (v > 1) v = 1;
    return v;
  }

  std::size_t currently_enabled() const { return enabled_.size(); }
  std::size_t max_concurrent_enabled() const { return max_concurrent_; }
  std::uint64_t total_enables() const { return total_enables_; }

 private:
  static std::uint64_t key(std::uint32_t node, MetricId metric) {
    return (static_cast<std::uint64_t>(node) << 16) |
           static_cast<std::uint64_t>(metric);
  }

  std::uint32_t n_;
  stats::Rng rng_;
  double noise_;
  std::map<MetricId, std::vector<double>> levels_;
  std::set<std::uint64_t> enabled_;
  std::size_t max_concurrent_ = 0;
  std::uint64_t total_enables_ = 0;
};

}  // namespace prism::paradyn
