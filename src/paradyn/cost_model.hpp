// Adaptive instrumentation cost model (§4: "its IS is equipped with the
// capability to estimate its cost to the application program.  This cost
// model is continuously updated in response to actual measurements as an
// instrumented program starts executing, and the model attempts to regulate
// the amount of IS overhead to the application program" — Paradyn row of
// Table 8, after Hollingsworth & Miller [10]).
//
// The model keeps an EWMA of the observed per-sample CPU cost, predicts the
// overhead fraction a given sampling period would impose, and recommends the
// shortest period that keeps predicted overhead under a target.  It also
// implements the rate decay the paper mentions ("the rate of sampling of
// data progressively decreases over time during an interval when
// instrumentation is present", §3.2).
#pragma once

#include <cstdint>
#include <stdexcept>

namespace prism::paradyn {

class AdaptiveCostModel {
 public:
  /// `initial_per_sample_cost_ms`: prior for the per-sample CPU cost;
  /// `smoothing` in (0,1]: EWMA weight of new observations.
  explicit AdaptiveCostModel(double initial_per_sample_cost_ms = 0.05,
                             double smoothing = 0.2);

  /// Feeds a measurement: a collection pass took `cpu_ms` for `samples`
  /// samples while `wall_ms` of application time elapsed.
  void observe(double cpu_ms, std::uint64_t samples, double wall_ms);

  /// Current estimate of the per-sample CPU cost (ms).
  double per_sample_cost_ms() const { return per_sample_cost_ms_; }

  /// Observed overhead fraction, EWMA over observation windows.
  double observed_overhead() const { return observed_overhead_; }

  /// Predicted overhead fraction for a candidate configuration.
  double predicted_overhead(double sampling_period_ms,
                            double samples_per_period) const;

  /// Shortest sampling period (ms) whose predicted overhead stays under
  /// `target_overhead` given `sample_rate_per_ms` sample production.
  /// (Overhead = rate * cost, independent of batching period; the knob that
  /// matters is how many samples are taken, so this solves for the period
  /// at which one sample per process per period meets the target.)
  double recommended_period_ms(double target_overhead,
                               unsigned processes) const;

  std::uint64_t observations() const { return observations_; }

 private:
  double per_sample_cost_ms_;
  double alpha_;
  double observed_overhead_ = 0;
  std::uint64_t observations_ = 0;
};

/// Sampling-rate decay schedule: "the rate of sampling of data progressively
/// decreases over time during an interval when instrumentation is present"
/// (§3.2).  The period grows geometrically from `initial` toward `max`.
class SamplingRateDecay {
 public:
  SamplingRateDecay(double initial_period_ms, double max_period_ms,
                    double growth = 1.25);

  /// Period to use for the k-th consecutive interval with instrumentation
  /// present (k = 0 is the first).
  double period_ms(unsigned k) const;

  /// Resets when instrumentation is re-inserted.
  void reset() {}

 private:
  double initial_, max_, growth_;
};

}  // namespace prism::paradyn
