#include "paradyn/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace prism::paradyn {

AdaptiveCostModel::AdaptiveCostModel(double initial_per_sample_cost_ms,
                                     double smoothing)
    : per_sample_cost_ms_(initial_per_sample_cost_ms), alpha_(smoothing) {
  if (!(initial_per_sample_cost_ms >= 0))
    throw std::invalid_argument("AdaptiveCostModel: negative prior");
  if (!(smoothing > 0 && smoothing <= 1))
    throw std::invalid_argument("AdaptiveCostModel: bad smoothing");
}

void AdaptiveCostModel::observe(double cpu_ms, std::uint64_t samples,
                                double wall_ms) {
  if (!(cpu_ms >= 0) || !(wall_ms > 0))
    throw std::invalid_argument("AdaptiveCostModel::observe: bad inputs");
  if (samples > 0) {
    const double per_sample = cpu_ms / static_cast<double>(samples);
    per_sample_cost_ms_ =
        observations_ == 0
            ? per_sample
            : alpha_ * per_sample + (1 - alpha_) * per_sample_cost_ms_;
  }
  const double frac = cpu_ms / wall_ms;
  observed_overhead_ = observations_ == 0
                           ? frac
                           : alpha_ * frac + (1 - alpha_) * observed_overhead_;
  ++observations_;
}

double AdaptiveCostModel::predicted_overhead(double sampling_period_ms,
                                             double samples_per_period) const {
  if (!(sampling_period_ms > 0))
    throw std::invalid_argument("predicted_overhead: period <= 0");
  if (!(samples_per_period >= 0))
    throw std::invalid_argument("predicted_overhead: samples < 0");
  return per_sample_cost_ms_ * samples_per_period / sampling_period_ms;
}

double AdaptiveCostModel::recommended_period_ms(double target_overhead,
                                                unsigned processes) const {
  if (!(target_overhead > 0))
    throw std::invalid_argument("recommended_period_ms: target <= 0");
  if (processes == 0)
    throw std::invalid_argument("recommended_period_ms: 0 processes");
  // One sample per process per period: overhead = cost * procs / period.
  return per_sample_cost_ms_ * processes / target_overhead;
}

SamplingRateDecay::SamplingRateDecay(double initial_period_ms,
                                     double max_period_ms, double growth)
    : initial_(initial_period_ms), max_(max_period_ms), growth_(growth) {
  if (!(initial_period_ms > 0) || !(max_period_ms >= initial_period_ms))
    throw std::invalid_argument("SamplingRateDecay: bad periods");
  if (!(growth >= 1))
    throw std::invalid_argument("SamplingRateDecay: growth < 1");
}

double SamplingRateDecay::period_ms(unsigned k) const {
  return std::min(max_, initial_ * std::pow(growth_, k));
}

}  // namespace prism::paradyn
