#include "paradyn/cluster_model.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <vector>

#include "sim/collectors.hpp"
#include "sim/engine.hpp"
#include "sim/replication.hpp"
#include "stats/quantile.hpp"
#include "stats/summary.hpp"

namespace prism::paradyn {

void ClusterModelParams::validate() const {
  if (nodes == 0) throw std::invalid_argument("ClusterModelParams: 0 nodes");
  if (app_processes_per_node == 0)
    throw std::invalid_argument("ClusterModelParams: 0 processes");
  if (!(sampling_period_ms > 0) || !(horizon_ms > 0))
    throw std::invalid_argument("ClusterModelParams: bad times");
  if (!(sample_rate_per_process >= 0) || !(ism_per_sample_ms >= 0) ||
      !(net_base_ms >= 0) || !(net_per_sample_ms >= 0) ||
      !(ism_per_batch_ms >= 0) || !(aggregator_per_batch_ms >= 0))
    throw std::invalid_argument("ClusterModelParams: negative cost");
  if (aggregator_fanout == 1)
    throw std::invalid_argument(
        "ClusterModelParams: aggregator_fanout must be 0 (flat) or >= 2");
}

namespace {

struct Batch {
  double oldest_sample_t = 0;  ///< generation time of the oldest sample
  double mean_sample_t = 0;    ///< average generation time in the batch
  std::uint64_t samples = 0;
  std::uint64_t merged_from = 1;  ///< daemon batches folded in (tree mode)
};

struct Cluster {
  const ClusterModelParams& p;
  sim::Engine eng;
  stats::Rng rng;

  // Shared network: FIFO single server over batches.
  std::deque<Batch> net_queue;
  bool net_busy = false;
  sim::UtilizationTracker net_util;

  // ISM: single server over batches (sample-proportional service).
  std::deque<Batch> ism_queue;
  bool ism_busy = false;
  sim::UtilizationTracker ism_util;
  stats::TimeWeighted ism_qlen;

  stats::Summary sample_latency;
  stats::P2Quantile sample_p95{0.95};
  std::uint64_t samples_done = 0;
  std::uint64_t batches = 0;

  // Per-node accumulation since the last daemon wakeup.
  std::vector<double> pending_samples;
  std::vector<double> pending_time_sum;  ///< sum of generation times

  // Tree mode: per-aggregator batches awaiting the periodic merge flush.
  struct AggState {
    std::vector<Batch> inbox;
  };
  std::vector<AggState> aggs;

  Cluster(const ClusterModelParams& params, stats::Rng r)
      : p(params), rng(r), pending_samples(params.nodes, 0),
        pending_time_sum(params.nodes, 0) {
    if (p.aggregator_fanout >= 2)
      aggs.resize((p.nodes + p.aggregator_fanout - 1) / p.aggregator_fanout);
  }

  double exp_draw(double mean) {
    return mean <= 0 ? 0.0 : -std::log(rng.next_double_open()) * mean;
  }

  void start() {
    // Sample generation per node: aggregated Poisson over its processes.
    for (unsigned n = 0; n < p.nodes; ++n) {
      schedule_generation(n);
      schedule_wakeup(n);
    }
    // Tree mode: aggregators flush every period, offset by half a period so
    // daemon batches have arrived.
    for (unsigned a = 0; a < aggs.size(); ++a) {
      eng.schedule_after(1.5 * p.sampling_period_ms,
                         [this, a] { aggregator_flush(a); });
    }
  }

  void aggregator_flush(unsigned a) {
    if (eng.now() <= p.horizon_ms + 2 * p.sampling_period_ms)
      eng.schedule_after(p.sampling_period_ms,
                         [this, a] { aggregator_flush(a); });
    auto& inbox = aggs[a].inbox;
    if (inbox.empty()) return;
    Batch merged;
    merged.samples = 0;
    merged.merged_from = inbox.size();
    merged.oldest_sample_t = inbox.front().oldest_sample_t;
    double weighted_t = 0;
    for (const Batch& b : inbox) {
      merged.samples += b.samples;
      weighted_t += b.mean_sample_t * static_cast<double>(b.samples);
      merged.oldest_sample_t =
          std::min(merged.oldest_sample_t, b.oldest_sample_t);
    }
    merged.mean_sample_t =
        merged.samples > 0 ? weighted_t / static_cast<double>(merged.samples)
                           : eng.now();
    const double merge_cost =
        p.aggregator_per_batch_ms * static_cast<double>(inbox.size());
    inbox.clear();
    eng.schedule_after(merge_cost, [this, merged] { enqueue_network(merged); });
  }

  void schedule_generation(unsigned node) {
    const double rate =
        p.sample_rate_per_process * p.app_processes_per_node;  // per ms
    if (rate <= 0) return;
    eng.schedule_after(exp_draw(1.0 / rate), [this, node] {
      if (eng.now() <= p.horizon_ms) {
        pending_samples[node] += 1;
        pending_time_sum[node] += eng.now();
        schedule_generation(node);
      }
    });
  }

  void schedule_wakeup(unsigned node) {
    eng.schedule_after(p.sampling_period_ms, [this, node] {
      if (eng.now() > p.horizon_ms + p.sampling_period_ms) return;
      if (pending_samples[node] > 0) {
        Batch b;
        b.samples = static_cast<std::uint64_t>(pending_samples[node]);
        b.mean_sample_t = pending_time_sum[node] / pending_samples[node];
        b.oldest_sample_t = eng.now() - p.sampling_period_ms;
        pending_samples[node] = 0;
        pending_time_sum[node] = 0;
        if (aggs.empty()) {
          // Flat: daemon collection cost delays the network hand-off.
          eng.schedule_after(p.daemon_batch_cpu_ms,
                             [this, b] { enqueue_network(b); });
        } else {
          // Tree: ship to this node's aggregator over its local link
          // (parallel links within a group; no shared-net contention).
          const unsigned a = node / p.aggregator_fanout;
          const double local_transfer =
              p.daemon_batch_cpu_ms + p.net_base_ms +
              p.net_per_sample_ms * static_cast<double>(b.samples);
          eng.schedule_after(local_transfer,
                             [this, a, b] { aggs[a].inbox.push_back(b); });
        }
      }
      schedule_wakeup(node);
    });
  }

  void enqueue_network(const Batch& b) {
    net_queue.push_back(b);
    maybe_start_network();
  }

  void maybe_start_network() {
    if (net_busy || net_queue.empty()) return;
    net_busy = true;
    const Batch b = net_queue.front();
    net_queue.pop_front();
    net_util.begin_busy(eng.now(), 0);
    const double transfer =
        p.net_base_ms + p.net_per_sample_ms * static_cast<double>(b.samples);
    eng.schedule_after(transfer, [this, b] {
      net_util.end_busy(eng.now());
      net_busy = false;
      enqueue_ism(b);
      maybe_start_network();
    });
  }

  void enqueue_ism(const Batch& b) {
    ism_queue.push_back(b);
    ism_qlen.set(eng.now(), static_cast<double>(ism_queue.size()));
    maybe_start_ism();
  }

  void maybe_start_ism() {
    if (ism_busy || ism_queue.empty()) return;
    ism_busy = true;
    const Batch b = ism_queue.front();
    ism_queue.pop_front();
    ism_qlen.set(eng.now(), static_cast<double>(ism_queue.size()));
    ism_util.begin_busy(eng.now(), 0);
    const double service =
        p.ism_per_batch_ms +
        exp_draw(p.ism_per_sample_ms) * static_cast<double>(b.samples);
    eng.schedule_after(service, [this, b] {
      ism_util.end_busy(eng.now());
      ism_busy = false;
      ++batches;
      samples_done += b.samples;
      const double latency = eng.now() - b.mean_sample_t;
      for (std::uint64_t i = 0; i < b.samples; ++i) {
        sample_latency.add(latency);
        sample_p95.add(latency);
      }
      maybe_start_ism();
    });
  }
};

}  // namespace

ClusterModelMetrics run_cluster_model(const ClusterModelParams& params,
                                      stats::Rng rng) {
  params.validate();
  Cluster c(params, rng);
  c.start();
  // Drain bound: a saturated ISM never empties; cap at 2x horizon.
  c.eng.run_until(params.horizon_ms);
  const std::uint64_t drain_budget = 4'000'000;
  std::uint64_t steps = 0;
  while (!c.eng.empty() && c.eng.now() < 2 * params.horizon_ms &&
         steps++ < drain_budget)
    c.eng.step();

  ClusterModelMetrics m;
  c.net_util.flush(c.eng.now());
  c.ism_util.flush(c.eng.now());
  // Utilizations over the measurement horizon, not the drain tail.
  m.network_utilization =
      std::min(1.0, c.net_util.busy_time() / params.horizon_ms);
  m.ism_utilization =
      std::min(1.0, c.ism_util.busy_time() / params.horizon_ms);
  m.mean_sample_latency_ms = c.sample_latency.mean();
  if (c.sample_p95.count() > 0) m.p95_sample_latency_ms = c.sample_p95.value();
  m.mean_ism_queue = c.ism_qlen.time_average_until(c.eng.now());
  m.samples_analyzed = c.samples_done;
  m.batches = c.batches;
  m.stable = c.ism_queue.empty() && c.net_queue.empty();
  return m;
}

std::vector<ClusterSweepPoint> sweep_cluster_size(
    const ClusterModelParams& base, const std::vector<unsigned>& node_counts,
    unsigned replications, std::uint64_t seed,
    const sim::ReplicateOptions& opts) {
  std::vector<ClusterSweepPoint> out;
  out.reserve(node_counts.size());
  for (unsigned n : node_counts) {
    ClusterModelParams p = base;
    p.nodes = n;
    auto rr = sim::replicate(
        replications, seed, 7'000'000ull + n,
        [&p](stats::Rng& rng) -> sim::Responses {
          const auto m = run_cluster_model(p, rng);
          return {{"latency", m.mean_sample_latency_ms},
                  {"ism_util", m.ism_utilization},
                  {"net_util", m.network_utilization}};
        },
        opts);
    ClusterSweepPoint pt;
    pt.nodes = n;
    pt.latency = rr.ci("latency", 0.90);
    pt.ism_utilization = rr.ci("ism_util", 0.90);
    pt.network_utilization = rr.ci("net_util", 0.90);
    out.push_back(pt);
  }
  return out;
}

}  // namespace prism::paradyn
