#include "paradyn/w3_search.hpp"

#include <array>

namespace prism::paradyn {

std::string_view to_string(MetricId m) {
  switch (m) {
    case MetricId::kCpuUtilization: return "cpu_utilization";
    case MetricId::kSyncWaitFraction: return "sync_wait_fraction";
    case MetricId::kCommFraction: return "comm_fraction";
  }
  return "unknown";
}

std::string_view to_string(Hypothesis h) {
  switch (h) {
    case Hypothesis::kCpuBound: return "CPUBound";
    case Hypothesis::kSyncBound: return "SyncBound";
    case Hypothesis::kCommBound: return "CommBound";
  }
  return "unknown";
}

MetricId metric_for(Hypothesis h) {
  switch (h) {
    case Hypothesis::kCpuBound: return MetricId::kCpuUtilization;
    case Hypothesis::kSyncBound: return MetricId::kSyncWaitFraction;
    case Hypothesis::kCommBound: return MetricId::kCommFraction;
  }
  return MetricId::kCpuUtilization;
}

double W3Search::test(MetricProvider& provider, std::uint32_t node,
                      MetricId metric, Diagnosis& accounting) const {
  provider.enable(node, metric);
  ++accounting.insertions;
  double sum = 0;
  for (unsigned i = 0; i < config_.samples_per_test; ++i) {
    sum += provider.sample(node, metric);
    ++accounting.samples_used;
  }
  provider.disable(node, metric);
  return sum / config_.samples_per_test;
}

Diagnosis W3Search::run(MetricProvider& provider) const {
  Diagnosis d;

  // "Why": test the root hypotheses at whole-program scope, one at a time
  // (minimal instrumentation: never two metrics enabled concurrently).
  static constexpr std::array<Hypothesis, 3> kAll = {
      Hypothesis::kCpuBound, Hypothesis::kSyncBound, Hypothesis::kCommBound};
  Hypothesis best = Hypothesis::kCpuBound;
  double best_excess = 0;
  bool any = false;
  for (Hypothesis h : kAll) {
    const double mean =
        test(provider, MetricProvider::kWholeProgram, metric_for(h), d);
    const double excess = mean - config_.threshold_for(h);
    if (excess > 0 && (!any || excess > best_excess)) {
      any = true;
      best = h;
      best_excess = excess;
      d.evidence = mean;
    }
  }
  if (!any) return d;  // program looks healthy: no hypothesis held
  d.why = best;

  // "Where": refine the confirmed hypothesis to the node with the strongest
  // evidence above threshold, again one node at a time.
  const MetricId metric = metric_for(best);
  std::optional<std::uint32_t> where;
  double where_mean = 0;
  for (std::uint32_t n = 0; n < provider.nodes(); ++n) {
    const double mean = test(provider, n, metric, d);
    if (mean > config_.threshold_for(best) &&
        (!where || mean > where_mean)) {
      where = n;
      where_mean = mean;
    }
  }
  if (where) {
    d.where = where;
    d.evidence = where_mean;
  }
  return d;
}

}  // namespace prism::paradyn
