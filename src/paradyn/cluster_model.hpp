// The full Figure 7 queueing model of the Paradyn IS: P nodes, each with a
// local daemon (LIS) collecting samples from its application processes'
// pipes, forwarding batches over a shared network to the main Paradyn
// process (ISM), modeled as a single-server queue that analyzes arriving
// samples.
//
// "On each node, the LIS acts as a server to collect data from the local
// application processes.  It forwards that data to the ISM over the
// network.  The ISM is another server that accepts the instrumentation data
// from all the distributed LISs and analyzes the data ...  These samples
// compete for network resources to reach the ISM and undergo random delays
// before arriving.  The ISM receives the samples, one at a time, and is
// modeled as a single server queuing system." (§3.2.2)
//
// This answers the cluster-scale what-if the single-node ROCC model cannot:
// at what node count does the *central* ISM (or the shared network) become
// the bottleneck, and how does end-to-end sample latency grow?
#pragma once

#include <cstdint>
#include <vector>

#include "sim/replication.hpp"
#include "stats/confidence.hpp"
#include "stats/rng.hpp"

namespace prism::paradyn {

struct ClusterModelParams {
  unsigned nodes = 8;                    ///< P daemons
  unsigned app_processes_per_node = 4;   ///< pipes per daemon
  double sampling_period_ms = 200.0;     ///< daemon wakeup period
  double sample_rate_per_process = 0.02; ///< samples/ms each process emits
  /// Daemon per-batch collection cost (local CPU, not modeled as shared —
  /// the single-node ROCC model covers that contention).
  double daemon_batch_cpu_ms = 0.5;
  /// Shared-network transfer time per batch: base + per-sample.
  double net_base_ms = 0.5;
  double net_per_sample_ms = 0.02;
  /// ISM analysis time per sample (exponential service) plus a fixed
  /// per-batch overhead (message handling, ordering bookkeeping).
  double ism_per_sample_ms = 0.08;
  double ism_per_batch_ms = 0.2;
  /// Hierarchical aggregation (TAM-style spanning tree, §4): 0 = flat
  /// (every daemon sends straight to the ISM); k >= 2 = one aggregator per
  /// k nodes merges their batches before forwarding, paying
  /// `aggregator_per_batch_ms` per merged input and amortizing the ISM's
  /// per-batch overhead.
  unsigned aggregator_fanout = 0;
  double aggregator_per_batch_ms = 0.05;
  double horizon_ms = 120'000;

  void validate() const;
};

struct ClusterModelMetrics {
  /// Utilization of the shared network and of the ISM server.
  double network_utilization = 0;
  double ism_utilization = 0;
  /// End-to-end sample latency: generation -> ISM analysis done (ms).
  double mean_sample_latency_ms = 0;
  double p95_sample_latency_ms = 0;
  /// Mean ISM input-queue length (batches) — Fig. 7's single-server queue.
  double mean_ism_queue = 0;
  std::uint64_t samples_analyzed = 0;
  std::uint64_t batches = 0;
  /// Whether the ISM kept up (queue drained within 2x horizon).
  bool stable = true;
};

ClusterModelMetrics run_cluster_model(const ClusterModelParams& params,
                                      stats::Rng rng);

struct ClusterSweepPoint {
  unsigned nodes = 0;
  stats::ConfidenceInterval latency;
  stats::ConfidenceInterval ism_utilization;
  stats::ConfidenceInterval network_utilization;
};

/// Sweeps the node count: where does the centralized ISM saturate?
/// `opts` controls replication execution (parallel by default; results are
/// bit-identical for any thread count).
std::vector<ClusterSweepPoint> sweep_cluster_size(
    const ClusterModelParams& base, const std::vector<unsigned>& node_counts,
    unsigned replications, std::uint64_t seed,
    const sim::ReplicateOptions& opts = {});

}  // namespace prism::paradyn
