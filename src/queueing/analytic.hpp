// Closed-form queueing results used to validate the simulation layer.
//
// The paper's methodology leans on "appropriate results from multiple,
// related disciplines such as ... queuing theory" (§5).  These formulas give
// the simulation layer an independent oracle: tests drive an M/M/1 or M/G/1
// station and compare measured means against theory.
#pragma once

namespace prism::queueing {

/// Offered load rho = lambda * E[S].  Stable iff rho < 1.
double utilization(double lambda, double mean_service);

/// M/M/1 mean number in system: rho / (1 - rho).
double mm1_mean_number(double lambda, double mean_service);

/// M/M/1 mean time in system: E[S] / (1 - rho).
double mm1_mean_sojourn(double lambda, double mean_service);

/// M/M/1 mean waiting time (excluding service): rho * E[S] / (1 - rho).
double mm1_mean_wait(double lambda, double mean_service);

/// M/G/1 Pollaczek-Khinchine mean waiting time:
/// W = lambda * E[S^2] / (2 (1 - rho)).
double mg1_mean_wait(double lambda, double mean_service,
                     double service_variance);

/// M/G/1 mean number in queue (waiting, excluding in service), via Little.
double mg1_mean_queue_length(double lambda, double mean_service,
                             double service_variance);

/// M/G/1 mean sojourn time: W + E[S].
double mg1_mean_sojourn(double lambda, double mean_service,
                        double service_variance);

}  // namespace prism::queueing
