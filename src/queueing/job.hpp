// Jobs (customers) flowing through queueing networks.
//
// A Job is what the paper's models call an "instrumentation data" unit: a
// trace record, a metric sample, or a batch thereof.  Timestamps are filled
// in by the network elements so latency decompositions (waiting vs service
// vs total sojourn) fall out for free.
#pragma once

#include <cstdint>

#include "sim/engine.hpp"

namespace prism::queueing {

/// Customer classes, used for per-class statistics and priorities.
enum class JobClass : std::uint8_t {
  kApplication = 0,  ///< instrumented application data
  kInstrumentation,  ///< IS-internal traffic (daemon forwarding, control)
  kOtherUser,        ///< background load sharing the resources
  kControl,          ///< ISM<->tool / ISM<->LIS control messages
};

struct Job {
  std::uint64_t id = 0;
  JobClass cls = JobClass::kApplication;
  /// Identifier of the producing entity (node / process index).
  std::uint32_t source = 0;
  /// Smaller value = higher priority (only PriorityQueue inspects this).
  std::int32_t priority = 0;
  /// Sequence number within the source (used for causal-order modeling).
  std::uint64_t seq = 0;
  /// Model-specific payload (e.g. record count in a batch).
  std::uint64_t payload = 0;
  /// True when the job models an out-of-causal-order arrival that the ISM
  /// must hold back until its predecessors arrive (§3.3.2).
  bool out_of_order = false;

  sim::Time t_created = 0;
  sim::Time t_enqueued = 0;
  sim::Time t_service_begin = 0;
  sim::Time t_departed = 0;

  sim::Time waiting_time() const { return t_service_begin - t_enqueued; }
  sim::Time service_time() const { return t_departed - t_service_begin; }
  sim::Time sojourn_time() const { return t_departed - t_created; }
};

}  // namespace prism::queueing
