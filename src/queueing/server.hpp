// Single-server station: a Queue drained by one server with a stochastic
// service-time distribution, delivering completed jobs to a downstream sink.
//
// With an Exponential arrival source and a general service distribution this
// is the M/G/1 station of the paper's models (PICL local buffers, Vista ISM
// input side); with exponential service it is the G/M/1 / M/M/1 used on the
// Vista output side.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "queueing/job.hpp"
#include "queueing/queue.hpp"
#include "sim/collectors.hpp"
#include "sim/engine.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace prism::queueing {

/// Downstream consumer of completed jobs.
using Sink = std::function<void(Job&&)>;

class Server {
 public:
  /// The server owns its queue; `service` must outlive the server.
  Server(sim::Engine& eng, std::shared_ptr<const stats::Distribution> service,
         stats::Rng rng, Sink sink,
         Discipline discipline = Discipline::kFifo,
         std::size_t queue_capacity =
             std::numeric_limits<std::size_t>::max())
      : eng_(eng),
        service_(std::move(service)),
        rng_(rng),
        sink_(std::move(sink)),
        queue_(discipline, queue_capacity, eng.now()),
        util_(eng.now()) {
    if (!service_) throw std::invalid_argument("Server: null service dist");
    if (!sink_) throw std::invalid_argument("Server: null sink");
  }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Offers a job to the station.  Returns false if the queue dropped it.
  bool submit(Job job) {
    job.t_created = job.t_created == 0 ? eng_.now() : job.t_created;
    const bool ok = queue_.push(eng_.now(), std::move(job));
    if (ok && !busy_) begin_service();
    return ok;
  }

  Queue& queue() { return queue_; }
  const Queue& queue() const { return queue_; }
  bool busy() const { return busy_; }
  std::uint64_t completions() const { return completions_; }
  const stats::Summary& sojourn_times() const { return sojourn_; }
  const stats::Summary& service_samples() const { return service_stats_; }

  /// Server busy fraction up to the last state change; call
  /// finalize(now) before reading at the end of a run.
  double utilization() const { return util_.utilization(); }
  void finalize(sim::Time t) { util_.flush(t); }

 private:
  void begin_service() {
    auto job = queue_.pop(eng_.now());
    if (!job) return;
    busy_ = true;
    util_.begin_busy(eng_.now(), static_cast<int>(job->cls));
    job->t_service_begin = eng_.now();
    const double s = service_->sample(rng_);
    service_stats_.add(s);
    // Move the job into the completion closure; the engine owns it until
    // service ends.
    eng_.schedule_after(s, [this, j = std::move(*job)]() mutable {
      complete(std::move(j));
    });
  }

  void complete(Job&& job) {
    job.t_departed = eng_.now();
    sojourn_.add(job.sojourn_time());
    ++completions_;
    busy_ = false;
    util_.end_busy(eng_.now());
    sink_(std::move(job));
    if (!queue_.empty()) begin_service();
  }

  sim::Engine& eng_;
  std::shared_ptr<const stats::Distribution> service_;
  stats::Rng rng_;
  Sink sink_;
  Queue queue_;
  sim::UtilizationTracker util_;
  bool busy_ = false;
  std::uint64_t completions_ = 0;
  stats::Summary sojourn_;
  stats::Summary service_stats_;
};

}  // namespace prism::queueing
