#include "queueing/analytic.hpp"

#include <stdexcept>

namespace prism::queueing {

namespace {
void check(double lambda, double mean_service) {
  if (!(lambda > 0)) throw std::domain_error("queueing: lambda <= 0");
  if (!(mean_service > 0)) throw std::domain_error("queueing: E[S] <= 0");
}
void check_stable(double rho) {
  if (!(rho < 1)) throw std::domain_error("queueing: unstable (rho >= 1)");
}
}  // namespace

double utilization(double lambda, double mean_service) {
  check(lambda, mean_service);
  return lambda * mean_service;
}

double mm1_mean_number(double lambda, double mean_service) {
  const double rho = utilization(lambda, mean_service);
  check_stable(rho);
  return rho / (1.0 - rho);
}

double mm1_mean_sojourn(double lambda, double mean_service) {
  const double rho = utilization(lambda, mean_service);
  check_stable(rho);
  return mean_service / (1.0 - rho);
}

double mm1_mean_wait(double lambda, double mean_service) {
  return mm1_mean_sojourn(lambda, mean_service) - mean_service;
}

double mg1_mean_wait(double lambda, double mean_service,
                     double service_variance) {
  const double rho = utilization(lambda, mean_service);
  check_stable(rho);
  if (service_variance < 0)
    throw std::domain_error("queueing: Var[S] < 0");
  const double second_moment =
      service_variance + mean_service * mean_service;
  return lambda * second_moment / (2.0 * (1.0 - rho));
}

double mg1_mean_queue_length(double lambda, double mean_service,
                             double service_variance) {
  return lambda * mg1_mean_wait(lambda, mean_service, service_variance);
}

double mg1_mean_sojourn(double lambda, double mean_service,
                        double service_variance) {
  return mg1_mean_wait(lambda, mean_service, service_variance) + mean_service;
}

}  // namespace prism::queueing
