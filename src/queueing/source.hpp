// Renewal arrival source: emits jobs with iid inter-arrival times drawn from
// a Distribution, into a caller-supplied target.  All the paper's models
// assume "inter-arrival times ... independent and exponentially distributed"
// (§3.1.2, §3.3.2); other distributions (bursty hyperexponential) are used in
// the extension experiments.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "queueing/job.hpp"
#include "sim/engine.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace prism::queueing {

class Source {
 public:
  /// `decorate` (optional) fills in job fields beyond id/source/seq/t_created.
  Source(sim::Engine& eng,
         std::shared_ptr<const stats::Distribution> inter_arrival,
         stats::Rng rng, std::uint32_t source_id, Sink target,
         std::function<void(Job&)> decorate = nullptr)
      : eng_(eng),
        inter_(std::move(inter_arrival)),
        rng_(rng),
        source_id_(source_id),
        target_(std::move(target)),
        decorate_(std::move(decorate)) {
    if (!inter_) throw std::invalid_argument("Source: null distribution");
    if (!target_) throw std::invalid_argument("Source: null target");
  }

  Source(const Source&) = delete;
  Source& operator=(const Source&) = delete;

  /// Schedules the first arrival one inter-arrival time from now.
  void start() {
    if (running_) return;
    running_ = true;
    schedule_next();
  }

  /// Stops generating after any already-scheduled arrival fires.
  void stop() { running_ = false; }

  /// Caps the total number of jobs generated (0 = unlimited).
  void set_limit(std::uint64_t limit) { limit_ = limit; }

  std::uint64_t generated() const { return generated_; }

 private:
  void schedule_next() {
    if (!running_) return;
    if (limit_ != 0 && generated_ >= limit_) return;
    eng_.schedule_after(inter_->sample(rng_), [this] { emit(); });
  }

  void emit() {
    if (!running_) return;
    Job j;
    j.id = ++next_id_;
    j.source = source_id_;
    j.seq = generated_;
    j.t_created = eng_.now();
    if (decorate_) decorate_(j);
    ++generated_;
    target_(std::move(j));
    schedule_next();
  }

  sim::Engine& eng_;
  std::shared_ptr<const stats::Distribution> inter_;
  stats::Rng rng_;
  std::uint32_t source_id_;
  Sink target_;
  std::function<void(Job&)> decorate_;
  bool running_ = false;
  std::uint64_t limit_ = 0;
  std::uint64_t generated_ = 0;
  std::uint64_t next_id_ = 0;
};

}  // namespace prism::queueing
