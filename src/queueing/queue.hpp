// Waiting lines with FIFO or priority discipline, optional finite capacity,
// and built-in time-weighted length statistics.
//
// The Vista ISM model (Fig. 10) uses "input (priority) queues" in front of
// the data processor and a FIFO output queue; the PICL model uses finite
// local buffers whose fill level drives the flush policies.
#pragma once

#include <cstddef>
#include <deque>
#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

#include "queueing/job.hpp"
#include "stats/summary.hpp"

namespace prism::queueing {

enum class Discipline { kFifo, kPriority };

/// A waiting line.  Not a concurrent container — it lives inside the
/// single-threaded simulation.
class Queue {
 public:
  explicit Queue(Discipline d = Discipline::kFifo,
                 std::size_t capacity = std::numeric_limits<std::size_t>::max(),
                 double t0 = 0.0)
      : discipline_(d), capacity_(capacity), length_(t0, 0.0) {
    if (capacity == 0) throw std::invalid_argument("Queue: capacity == 0");
  }

  /// Attempts to enqueue at time `t`.  Returns false (and counts a drop)
  /// when the queue is at capacity.
  bool push(sim::Time t, Job job) {
    ++arrivals_;
    if (items_.size() >= capacity_) {
      ++drops_;
      return false;
    }
    job.t_enqueued = t;
    if (discipline_ == Discipline::kFifo) {
      items_.push_back(std::move(job));
    } else {
      // Stable insertion: after all jobs with priority <= job.priority.
      auto it = items_.end();
      while (it != items_.begin() && (it - 1)->priority > job.priority) --it;
      items_.insert(it, std::move(job));
    }
    length_.set(t, static_cast<double>(items_.size()));
    return true;
  }

  /// Removes and returns the head-of-line job, or nullopt when empty.
  std::optional<Job> pop(sim::Time t) {
    if (items_.empty()) return std::nullopt;
    Job j = std::move(items_.front());
    items_.pop_front();
    ++departures_;
    length_.set(t, static_cast<double>(items_.size()));
    waiting_.add(t - j.t_enqueued);
    return j;
  }

  /// Peeks at the head-of-line job.
  const Job* front() const { return items_.empty() ? nullptr : &items_.front(); }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return items_.size() >= capacity_; }

  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t departures() const { return departures_; }
  std::uint64_t drops() const { return drops_; }

  /// Time-averaged queue length up to the last push/pop.
  double mean_length() const { return length_.time_average(); }
  /// Time-averaged length after integrating up to `t`.
  double mean_length_until(sim::Time t) { return length_.time_average_until(t); }
  double max_length() const { return length_.max(); }
  /// Summary of waiting times of departed jobs.
  const stats::Summary& waiting_times() const { return waiting_; }

  /// Conservation check: arrivals == departures + drops + resident.
  bool conserved() const {
    return arrivals_ == departures_ + drops_ + items_.size();
  }

 private:
  Discipline discipline_;
  std::size_t capacity_;
  std::deque<Job> items_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t departures_ = 0;
  std::uint64_t drops_ = 0;
  stats::TimeWeighted length_;
  stats::Summary waiting_;
};

}  // namespace prism::queueing
