// Telemetry reporter: renders a MetricsSnapshot as an aligned text table or
// a JSON object, and optionally publishes snapshots on a fixed period
// (ISAAC-style in-situ reporting).  Benches embed the JSON form in their
// BENCH_*.json output; the text form is the end-of-run console snapshot.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace prism::obs {

/// Human-readable table: one line per counter/gauge, histograms with count,
/// mean, and the occupied buckets.  Zero-valued metrics are included — a
/// zero drop counter is information.
std::string text_report(const MetricsSnapshot& snap);

/// Compact JSON object:
///   {"counters":{name:value,...},
///    "gauges":{name:value,...},
///    "histograms":{name:{"count":..,"sum":..,"bounds":[..],"buckets":[..]}}}
/// Keys appear in name-sorted order; numbers use round-trip formatting, so
/// the output is byte-stable for identical snapshots.
std::string json_report(const MetricsSnapshot& snap);

/// Calls `publish` with a fresh Registry snapshot every `period_ms` until
/// stopped or destroyed.  The callback runs on the reporter's thread.
class PeriodicReporter {
 public:
  PeriodicReporter(std::uint64_t period_ms,
                   std::function<void(const MetricsSnapshot&)> publish);
  ~PeriodicReporter();
  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  /// Stops the thread after at most one more period; idempotent.  A final
  /// snapshot is published on stop so short runs still report.
  void stop();

  std::uint64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }

 private:
  void loop(std::uint64_t period_ms);

  std::function<void(const MetricsSnapshot&)> publish_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> publishes_{0};
  std::thread thread_;
};

}  // namespace prism::obs
