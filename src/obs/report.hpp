// Telemetry reporter: renders a MetricsSnapshot as an aligned text table or
// a JSON object, and optionally publishes snapshots on a fixed period
// (ISAAC-style in-situ reporting).  Benches embed the JSON form in their
// BENCH_*.json output; the text form is the end-of-run console snapshot.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace prism::obs {

/// Human-readable table: one line per counter/gauge, histograms with count,
/// mean, and the occupied buckets.  Zero-valued metrics are included — a
/// zero drop counter is information.
std::string text_report(const MetricsSnapshot& snap);

/// Compact JSON object:
///   {"counters":{name:value,...},
///    "gauges":{name:value,...},
///    "histograms":{name:{"count":..,"sum":..,"bounds":[..],"buckets":[..]}}}
/// Keys appear in name-sorted order; numbers use round-trip formatting, so
/// the output is byte-stable for identical snapshots.
std::string json_report(const MetricsSnapshot& snap);

/// Extra obs planes folded into the report, so one reporter covers the whole
/// stack (registry + prof + flight recorder).
struct ReportOptions {
  /// Append the profiling plane's process-wide allocator tallies.
  bool include_prof = false;
  /// Append the last `flight_tail` flight-recorder events (0 = omit the
  /// section entirely).  No-op in a PRISM_OBS=OFF build.
  std::size_t flight_tail = 0;
};

/// text_report plus a "prof:" block (alloc/free/bytes tallies) and a
/// "flight:" tail (most recent events, oldest first) per `opts`.
std::string text_report(const MetricsSnapshot& snap, const ReportOptions& opts);

/// json_report with two extra top-level keys per `opts`:
///   "prof":{"allocs":..,"frees":..,"bytes":..}
///   "flight":{"recorded":..,"capacity":..,"events":[...]}
std::string json_report(const MetricsSnapshot& snap, const ReportOptions& opts);

/// Calls `publish` with a fresh Registry snapshot every `period_ms` until
/// stopped or destroyed.  The callback runs on the reporter's thread.
class PeriodicReporter {
 public:
  PeriodicReporter(std::uint64_t period_ms,
                   std::function<void(const MetricsSnapshot&)> publish);
  ~PeriodicReporter();
  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  /// Stops the thread after at most one more period; idempotent.  A final
  /// snapshot is published on stop so short runs still report.
  void stop();

  std::uint64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }

 private:
  void loop(std::uint64_t period_ms);

  std::function<void(const MetricsSnapshot&)> publish_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> publishes_{0};
  std::thread thread_;
};

}  // namespace prism::obs
