// Self-telemetry metrics registry (DESIGN.md §8).
//
// The paper's central claim is that an instrumentation system must itself be
// measured (§2.3: intrusion, throughput, buffer occupancy).  This module
// turns that lens on our own engine and live IS pipeline: named counters,
// gauges, and fixed-bucket histograms registered in a process-wide registry
// and scraped into immutable snapshots for the reporter.
//
// Hot-path cost model:
//   * Counter::add is one relaxed atomic fetch_add on a per-thread shard
//     (cache-line padded), so concurrent writers never contend on a line.
//   * Gauge::set is one relaxed atomic store.
//   * Histogram::record is a branchless-ish bucket search plus two relaxed
//     atomics (bucket count and total count) and a CAS loop for the sum.
//   * Registry lookups happen once per call site (the PRISM_OBS_* macros in
//     obs/obs.hpp cache the reference in a function-local static).
//
// Values are monotonic between reset() calls; scraping never blocks writers.
// The compile-time kill switch lives in obs/obs.hpp: with PRISM_OBS=OFF the
// hook macros vanish, and these classes merely sit unused in the library.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace prism::obs {

/// Monotonic event counter, sharded per thread.  Each thread gets a stable
/// shard index on first use; add() touches only that thread's cache line.
/// value() sums the shards — a racy-but-consistent-enough scrape (each shard
/// read is atomic; the sum is a moment-in-time approximation, exact once
/// writers are quiescent).  Torn-read audit: each cell is individually
/// monotone and read atomically, so a value() sum is bounded by the true
/// totals at the first and last cell read — successive scrapes are monotone
/// non-decreasing, and no sum can double- or under-count a single add().
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cell().fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr unsigned kShards = 16;  // power of two, indexed by & mask

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };

  std::atomic<std::uint64_t>& cell() noexcept {
    return cells_[thread_shard() & (kShards - 1)].v;
  }

  /// Stable per-thread shard index, shared by every Counter in the process.
  static unsigned thread_shard() noexcept {
    static std::atomic<unsigned> next{0};
    thread_local const unsigned idx =
        next.fetch_add(1, std::memory_order_relaxed);
    return idx;
  }

  std::array<Cell, kShards> cells_;
};

/// Last-write-wins instantaneous value (queue depth, calendar size, current
/// tracing level).  set/add are single relaxed atomics.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram.  Bucket i counts samples v <= bounds[i] (first
/// matching bound); the final implicit bucket counts overflows.  Bounds are
/// fixed at registration, so exported bucket boundaries are stable across a
/// process's lifetime and across export/import round trips.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  /// Default bounds for nanosecond-scale latencies: 1us..10s, decades with
  /// 1/2/5 subdivision.
  static std::vector<double> latency_bounds_ns();
  /// Default bounds for percentages: 10, 20, ..., 90, 100.
  static std::vector<double> percent_bounds();
  /// `n` exponential bounds: start, start*factor, start*factor^2, ...
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t n);

  void record(double v) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Acquire-loads the sample total.  Pairs with record()'s release
  /// increment: a reader that loads count() and *then* bucket_counts() sees
  /// every counted sample in some bucket (count <= sum of buckets), so a
  /// snapshot taken concurrently with record() is never torn the other way.
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_acquire);
  }
  double sum() const noexcept;
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double stored via bit_cast CAS
};

// ---------------------------------------------------------------- snapshots

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
  double mean() const { return count ? sum / static_cast<double>(count) : 0; }
};

/// Point-in-time scrape of every registered metric, sorted by name within
/// each kind.  Immutable: safe to hand to reporters and bench writers.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  const CounterSample* counter(std::string_view name) const;
  const GaugeSample* gauge(std::string_view name) const;
  const HistogramSample* histogram(std::string_view name) const;
};

/// Process-wide metric registry.  Registration is idempotent by name:
/// the first call creates the metric, later calls return the same object
/// (histogram bounds from later calls are ignored).  Returned references
/// are stable for the process lifetime.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  /// Histogram with latency_bounds_ns() defaults.
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;
  /// Zeroes every value (registrations survive).  For per-run reporting.
  void reset();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace prism::obs
