// Instrumentation hook macros and the PRISM_OBS compile-time kill switch.
//
// Hook sites throughout the engine and IS core use these macros, never the
// obs classes directly, so a -DPRISM_OBS=OFF build compiles every probe to
// nothing: zero instructions, zero data, bit-identical simulation results
// (the probes never touch model state either way — see
// tests/test_obs_determinism.cpp).
//
// Each macro caches its Registry lookup in a function-local static, so a hot
// call site pays the name lookup once and then one relaxed atomic per hit.
// Span macros additionally gate on the tracer's runtime enable flag.
//
// PRISM_OBS_ENABLED is defined globally by CMake (option PRISM_OBS, default
// ON); the fallback below covers out-of-tree inclusion.
#pragma once

#ifndef PRISM_OBS_ENABLED
#define PRISM_OBS_ENABLED 1
#endif

namespace prism::obs {
/// True when this build carries the observability layer.
constexpr bool compiled_in() { return PRISM_OBS_ENABLED != 0; }
}  // namespace prism::obs

#if PRISM_OBS_ENABLED

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#define PRISM_OBS_CONCAT_(a, b) a##b
#define PRISM_OBS_CONCAT(a, b) PRISM_OBS_CONCAT_(a, b)

/// Increments counter `name` by 1.
#define PRISM_OBS_COUNT(name) PRISM_OBS_COUNT_N(name, 1)

/// Increments counter `name` by `n`.
#define PRISM_OBS_COUNT_N(name, n)                                     \
  do {                                                                 \
    static ::prism::obs::Counter& prism_obs_c_ =                       \
        ::prism::obs::Registry::instance().counter(name);              \
    prism_obs_c_.add(static_cast<std::uint64_t>(n));                   \
  } while (0)

/// Sets gauge `name` to `v`.
#define PRISM_OBS_GAUGE_SET(name, v)                                   \
  do {                                                                 \
    static ::prism::obs::Gauge& prism_obs_g_ =                         \
        ::prism::obs::Registry::instance().gauge(name);                \
    prism_obs_g_.set(static_cast<std::int64_t>(v));                    \
  } while (0)

/// Adds `d` (may be negative) to gauge `name`.
#define PRISM_OBS_GAUGE_ADD(name, d)                                   \
  do {                                                                 \
    static ::prism::obs::Gauge& prism_obs_g_ =                         \
        ::prism::obs::Registry::instance().gauge(name);                \
    prism_obs_g_.add(static_cast<std::int64_t>(d));                    \
  } while (0)

/// Records `v` into histogram `name` (default latency-ns bounds).
#define PRISM_OBS_HIST(name, v)                                        \
  do {                                                                 \
    static ::prism::obs::Histogram& prism_obs_h_ =                     \
        ::prism::obs::Registry::instance().histogram(name);            \
    prism_obs_h_.record(static_cast<double>(v));                       \
  } while (0)

/// Records `v` into histogram `name` with explicit `bounds` (a
/// std::vector<double> expression, evaluated once at registration).
#define PRISM_OBS_HIST_B(name, bounds, v)                              \
  do {                                                                 \
    static ::prism::obs::Histogram& prism_obs_h_ =                     \
        ::prism::obs::Registry::instance().histogram(name, bounds);    \
    prism_obs_h_.record(static_cast<double>(v));                       \
  } while (0)

/// RAII span covering the rest of the enclosing scope.
#define PRISM_OBS_SPAN(name, cat)                                      \
  ::prism::obs::SpanScope PRISM_OBS_CONCAT(prism_obs_span_, __LINE__)( \
      name, cat)

/// Explicit span begin/end and instant marks.
#define PRISM_OBS_BEGIN(name, cat) ::prism::obs::Tracer::instance().begin(name, cat)
#define PRISM_OBS_END(name, cat) ::prism::obs::Tracer::instance().end(name, cat)
#define PRISM_OBS_INSTANT(name, cat) \
  ::prism::obs::Tracer::instance().instant(name, cat)

#else  // !PRISM_OBS_ENABLED — every probe vanishes.

#define PRISM_OBS_COUNT(name) ((void)0)
#define PRISM_OBS_COUNT_N(name, n) ((void)0)
#define PRISM_OBS_GAUGE_SET(name, v) ((void)0)
#define PRISM_OBS_GAUGE_ADD(name, d) ((void)0)
#define PRISM_OBS_HIST(name, v) ((void)0)
#define PRISM_OBS_HIST_B(name, bounds, v) ((void)0)
#define PRISM_OBS_SPAN(name, cat) ((void)0)
#define PRISM_OBS_BEGIN(name, cat) ((void)0)
#define PRISM_OBS_END(name, cat) ((void)0)
#define PRISM_OBS_INSTANT(name, cat) ((void)0)

#endif  // PRISM_OBS_ENABLED
