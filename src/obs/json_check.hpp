// Minimal JSON reader for validating this repo's own exports (trace-event
// files, metrics blocks) in tests — a deliberately small recursive-descent
// parser over the full JSON grammar, building a lightweight DOM.  It is a
// checker, not a production parser: no streaming, no surrogate-pair
// decoding (escapes are verified and kept verbatim), inputs are the files
// we ourselves write.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace prism::obs::jsonlite {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;  // insertion order

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// First member with `key`, or nullptr.
  const Value* find(std::string_view key) const {
    for (const auto& [k, v] : obj)
      if (k == key) return &v;
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  /// Parses a complete JSON document; std::nullopt on any syntax error or
  /// trailing garbage.
  std::optional<Value> parse() {
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;
    return v;
  }

 private:
  bool parse_value(Value& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.kind = Value::Kind::kString; return parse_string(out.str);
      case 't': out.kind = Value::Kind::kBool; out.b = true;
                return literal("true");
      case 'f': out.kind = Value::Kind::kBool; out.b = false;
                return literal("false");
      case 'n': out.kind = Value::Kind::kNull; return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.kind = Value::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      std::string key;
      if (peek() != '"' || !parse_string(key)) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      Value v;
      if (!parse_value(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool parse_array(Value& out) {
    out.kind = Value::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      Value v;
      if (!parse_value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        const char esc = s_[pos_ + 1];
        if (esc == 'u') {
          if (pos_ + 5 >= s_.size()) return false;
          for (int i = 2; i <= 5; ++i)
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])))
              return false;
          out.append(s_.substr(pos_, 6));
          pos_ += 6;
          continue;
        }
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
            esc != 'f' && esc != 'n' && esc != 'r' && esc != 't')
          return false;
        out += esc;  // escape kept verbatim; checker, not decoder
        pos_ += 2;
        continue;
      }
      out += c;
      ++pos_;
    }
    return false;  // unterminated
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    out.kind = Value::Kind::kNumber;
    out.num = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                          nullptr);
    return true;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  std::string_view s_;
  std::size_t pos_ = 0;
};

inline std::optional<Value> parse(std::string_view text) {
  return Parser(text).parse();
}

inline bool valid(std::string_view text) { return parse(text).has_value(); }

}  // namespace prism::obs::jsonlite
