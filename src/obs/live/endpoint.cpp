#include "obs/live/endpoint.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace prism::obs::live {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("TelemetryServer: ") + what + ": " +
                           std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    default: return "Error";
  }
}

}  // namespace

TelemetryServer::TelemetryServer(EndpointOptions options, ScrapeHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  if (!handler_)
    throw std::invalid_argument("TelemetryServer: null handler");

  if (options_.kind == EndpointKind::kUnix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.address.empty() ||
        options_.address.size() >= sizeof addr.sun_path)
      throw std::invalid_argument("TelemetryServer: bad unix path");
    std::memcpy(addr.sun_path, options_.address.c_str(),
                options_.address.size() + 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket(AF_UNIX)");
    ::unlink(options_.address.c_str());  // stale socket from a dead run
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) < 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw_errno("bind(unix)");
    }
    address_ = options_.address;
  } else {
    std::uint16_t port = 0;
    if (!options_.address.empty()) {
      const auto res =
          std::from_chars(options_.address.data(),
                          options_.address.data() + options_.address.size(),
                          port);
      if (res.ec != std::errc{} ||
          res.ptr != options_.address.data() + options_.address.size())
        throw std::invalid_argument("TelemetryServer: bad tcp port");
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, always
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) < 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw_errno("bind(tcp)");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
        0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw_errno("getsockname");
    }
    address_ = "127.0.0.1:" + std::to_string(ntohs(bound.sin_port));
  }

  if (::listen(listen_fd_, 8) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("listen");
  }
  set_nonblocking(listen_fd_);
  thread_ = std::thread([this] { pump(); });
}

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (options_.kind == EndpointKind::kUnix)
    ::unlink(options_.address.c_str());
}

void TelemetryServer::pump() {
  std::vector<Conn> conns;
  std::vector<pollfd> fds;

  while (!stopping_.load(std::memory_order_relaxed)) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const Conn& c : conns)
      fds.push_back({c.fd,
                     static_cast<short>(c.responding ? POLLOUT : POLLIN), 0});

    // Bounded wait so stop() is honored even with no traffic.
    const int rc = ::poll(fds.data(), fds.size(), 50);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // poll itself failed: shut the pump down
    }
    if (rc == 0) continue;

    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;  // EAGAIN / transient: retry next pass
        if (conns.size() >= kMaxConnections) {
          ::close(fd);  // over cap: shed load instead of queueing
          continue;
        }
        set_nonblocking(fd);
        Conn c;
        c.fd = fd;
        conns.push_back(std::move(c));
      }
    }

    // accept() above can grow `conns` past the set this pass polled; a
    // fresh connection has no fds entry yet, so it gets revents 0 here
    // and is serviced on the next pass.
    std::size_t polled = fds.size() - 1;

    for (std::size_t i = 0; i < conns.size(); ++i) {
      Conn& c = conns[i];
      const short revents = i < polled ? fds[i + 1].revents : 0;
      bool close_conn = false;

      if (!c.responding && (revents & (POLLIN | POLLHUP | POLLERR))) {
        char buf[1024];
        for (;;) {
          const ssize_t n = ::read(c.fd, buf, sizeof buf);
          if (n > 0) {
            c.in.append(buf, static_cast<std::size_t>(n));
            if (c.in.size() > kMaxRequestBytes) {
              build_response(c, 400, "text/plain", "request too large\n");
              break;
            }
            if (c.in.find("\r\n\r\n") != std::string::npos ||
                c.in.find("\n\n") != std::string::npos ||
                (c.in.find('\n') != std::string::npos &&
                 c.in.rfind("HTTP/", 0) == std::string::npos &&
                 c.in.find(" HTTP/") == std::string::npos)) {
              // Full header block, or a bare "GET /path\n" probe.
              handle_request(c);
              break;
            }
            continue;
          }
          if (n == 0) {  // client closed before completing a request
            if (c.in.find('\n') != std::string::npos)
              handle_request(c);
            else
              close_conn = true;
            break;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          close_conn = true;  // hard read error
          break;
        }
      }

      if (c.responding && (revents & (POLLOUT | POLLHUP | POLLERR))) {
        while (c.sent < c.out.size()) {
          const ssize_t n = ::send(c.fd, c.out.data() + c.sent,
                                   c.out.size() - c.sent, MSG_NOSIGNAL);
          if (n > 0) {
            c.sent += static_cast<std::size_t>(n);
            continue;
          }
          if (n < 0 && errno == EINTR) continue;
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          close_conn = true;  // peer went away mid-response
          break;
        }
        if (c.sent == c.out.size()) close_conn = true;  // HTTP/1.0: done
      }

      if (close_conn) {
        ::close(c.fd);
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
        if (i < polled) {
          fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(i) + 1);
          --polled;
        }
        --i;
      }
    }
  }

  for (Conn& c : conns) ::close(c.fd);
}

void TelemetryServer::handle_request(Conn& c) {
  requests_.fetch_add(1, std::memory_order_relaxed);

  // First line only: "GET <path>[ HTTP/x.y]".  Everything else is 400.
  const std::size_t eol = c.in.find_first_of("\r\n");
  const std::string_view line(c.in.data(),
                              eol == std::string::npos ? c.in.size() : eol);
  if (line.rfind("GET ", 0) != 0) {
    build_response(c, 400, "text/plain", "only GET is supported\n");
    return;
  }
  std::string_view path = line.substr(4);
  const std::size_t sp = path.find(' ');
  if (sp != std::string_view::npos) path = path.substr(0, sp);
  if (path.empty() || path.front() != '/') {
    build_response(c, 400, "text/plain", "bad request path\n");
    return;
  }

  std::string content_type;
  std::string body;
  if (handler_(path, content_type, body))
    build_response(c, 200, content_type, std::move(body));
  else
    build_response(c, 404, "text/plain", "unknown path\n");
}

void TelemetryServer::build_response(Conn& c, int status,
                                     std::string_view content_type,
                                     std::string body) {
  c.out = "HTTP/1.0 " + std::to_string(status) + " " + status_text(status) +
          "\r\nContent-Type: " + std::string(content_type) +
          "\r\nContent-Length: " + std::to_string(body.size()) +
          "\r\nConnection: close\r\n\r\n";
  c.out += body;
  c.sent = 0;
  c.responding = true;
}

}  // namespace prism::obs::live
