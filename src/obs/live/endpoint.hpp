// Scrape endpoint (DESIGN.md §14): a tiny HTTP/1.0 server on its own thread
// serving telemetry over AF_UNIX or TCP loopback, so `curl --unix-socket`
// and any Prometheus-style scraper can read a live run without linking
// against us.
//
// Discipline (same as socket_link's wire handling — this port faces
// untrusted input):
//   * the listen and connection sockets are non-blocking; one poll() pump
//     multiplexes accept, request reads, and response writes, so a stalled
//     or malicious client can never wedge the thread;
//   * requests are capped at kMaxRequestBytes — longer input gets 400 and a
//     close, never an unbounded buffer;
//   * only `GET <path>` is understood; anything else is 400, an unknown
//     path is 404.  Responses are HTTP/1.0 with Content-Length and
//     Connection: close, which is the minimum curl and prometheus accept;
//   * connection count is capped; excess accepts are closed immediately.
//
// The server knows nothing about telemetry: a ScrapeHandler callback maps a
// path to (content type, body).  Wiring in IntegratedEnvironment points it
// at the sampler/exposition/flight surfaces.  TCP binds 127.0.0.1 only —
// this is an operator loopback port, not a network service.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace prism::obs::live {

/// Maps a request path to a response.  Returns true and fills content_type +
/// body when the path is known; false yields 404.  Called on the server
/// thread; must be thread-safe against the rest of the process.
using ScrapeHandler = std::function<bool(
    std::string_view path, std::string& content_type, std::string& body)>;

enum class EndpointKind { kUnix, kTcp };

struct EndpointOptions {
  EndpointKind kind = EndpointKind::kUnix;
  /// kUnix: filesystem socket path (unlinked on bind and on stop).
  /// kTcp: port number as text ("0" = ephemeral); always bound to 127.0.0.1.
  std::string address;
};

class TelemetryServer {
 public:
  static constexpr std::size_t kMaxRequestBytes = 4096;
  static constexpr std::size_t kMaxConnections = 16;

  /// Binds, listens, and starts the pump thread.  Throws std::runtime_error
  /// with errno detail when the socket can't be set up.
  TelemetryServer(EndpointOptions options, ScrapeHandler handler);
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Stops the pump, closes every socket, unlinks the unix path.  Idempotent.
  void stop();

  /// The bound address: the unix path, or "127.0.0.1:<port>" with the real
  /// port after ephemeral bind.
  const std::string& address() const noexcept { return address_; }

  EndpointKind kind() const noexcept { return options_.kind; }

  /// Requests answered (any status).  For tests and the overhead gate.
  std::uint64_t requests() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    std::string in;        // request bytes, capped at kMaxRequestBytes
    std::string out;       // response bytes
    std::size_t sent = 0;  // of out
    bool responding = false;
  };

  void pump();
  void handle_request(Conn& c);
  void build_response(Conn& c, int status, std::string_view content_type,
                      std::string body);

  EndpointOptions options_;
  ScrapeHandler handler_;
  std::string address_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace prism::obs::live
