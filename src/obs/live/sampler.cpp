#include "obs/live/sampler.hpp"

#include <chrono>
#include <stdexcept>

#include "obs/live/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/prof/alloc.hpp"

namespace prism::obs::live {

namespace {

std::uint64_t sampler_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TelemetrySampler::TelemetrySampler(SamplerOptions options, Collector collector)
    : options_(options), collector_(std::move(collector)) {
  if (options_.period_ms == 0)
    throw std::invalid_argument("TelemetrySampler: period 0");
  thread_ = std::thread([this] { loop(); });
}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::stop() {
  {
    std::lock_guard lk(mu_);
    if (stopping_) {
      if (thread_.joinable()) thread_.join();
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TelemetrySampler::sample_now() {
  std::lock_guard lk(mu_);
  take_sample();
}

void TelemetrySampler::loop() {
  std::unique_lock lk(mu_);
  for (;;) {
    const bool stopping =
        cv_.wait_for(lk, std::chrono::milliseconds(options_.period_ms),
                     [this] { return stopping_; });
    take_sample();  // under mu_; the final sample below covers stop()
    if (stopping) return;
  }
}

// Called with mu_ held.  Assembly order matters only inside the collector
// (completed → lost → admitted, see StageHealth); everything here is either
// sampler-local or monotone.
void TelemetrySampler::take_sample() {
  HealthSnapshot snap;
  snap.seq = next_seq_++;
  snap.t_wall_ns = sampler_now_ns();

  if (collector_) collector_(snap);
  snap.degraded = (snap.lises_dead || snap.tools_failed ||
                   snap.records_lost_send || snap.records_lost_dead ||
                   snap.records_lost_wire || snap.control_dropped ||
                   snap.holdback_expired)
                      ? 1
                      : 0;

  const auto alloc = prof::process_alloc_stats();
  snap.alloc_count = alloc.allocs;
  snap.alloc_bytes = alloc.bytes;
  snap.free_count = alloc.frees;
#if PRISM_OBS_ENABLED
  snap.flight_events = FlightRecorder::instance().recorded();
#endif

  if (options_.include_registry) {
    const MetricsSnapshot ms = Registry::instance().snapshot();
    for (const auto& c : ms.counters) {
      if (snap.counter_count >= HealthSnapshot::kMaxCounters) {
        ++snap.counters_truncated;
        continue;
      }
      CounterHealth& row = snap.counters[snap.counter_count++];
      HealthSnapshot::copy_name(row.name, sizeof row.name, c.name);
      row.value = c.value;
      const auto it = prev_counters_.find(c.name);
      row.delta = it == prev_counters_.end() ? c.value : c.value - it->second;
      prev_counters_[c.name] = c.value;
    }
  }

  board_.publish(snap);
}

}  // namespace prism::obs::live
