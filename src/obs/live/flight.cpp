#include "obs/live/flight.hpp"

#if PRISM_OBS_ENABLED

#include <bit>
#include <chrono>
#include <stdexcept>

namespace prism::obs::live {

namespace {

std::uint64_t flight_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void append_escaped(std::string& out, const char* s, std::size_t cap) {
  out += '"';
  for (std::size_t i = 0; i < cap && s[i]; ++i) {
    const char c = s[i];
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }  // control characters cannot enter (copy_name strips nothing below
       // 0x20 but producers only pass identifier-like literals); drop them.
  }
  out += '"';
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : mask_(capacity - 1), slots_(new Slot[capacity]) {
  if (capacity == 0 || !std::has_single_bit(capacity))
    throw std::invalid_argument(
        "FlightRecorder: capacity must be a nonzero power of two");
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder r;
  return r;
}

void FlightRecorder::record(std::string_view category, std::string_view detail,
                            std::uint32_t node, std::uint64_t count) noexcept {
  FlightEvent ev;
  ev.t_ns = flight_now_ns();
  ev.count = count;
  ev.node = node;
  const auto copy = [](char* dst, std::size_t cap, std::string_view src) {
    const std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
  };
  copy(ev.category, sizeof ev.category, category);
  copy(ev.detail, sizeof ev.detail, detail);

  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  slot.seq.store(0, std::memory_order_release);  // invalidate for readers
  std::uint64_t words[kEventWords];
  std::memcpy(words, &ev, sizeof ev);
  for (std::size_t i = 0; i < kEventWords; ++i)
    slot.words[i].store(words[i], std::memory_order_relaxed);
  slot.seq.store(ticket + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::tail(std::size_t max) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t base = base_.load(std::memory_order_acquire);
  const std::uint64_t cap = mask_ + 1;
  std::uint64_t first = head > cap ? head - cap : 0;
  if (first < base) first = base;
  if (max < head - first) first = head - max;

  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(head - first));
  for (std::uint64_t t = first; t < head; ++t) {
    const Slot& slot = slots_[t & mask_];
    if (slot.seq.load(std::memory_order_acquire) != t + 1)
      continue;  // overwritten (or mid-write) by a newer ticket: skip
    std::uint64_t words[kEventWords];
    for (std::size_t i = 0; i < kEventWords; ++i)
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != t + 1) continue;
    FlightEvent ev;
    std::memcpy(&ev, words, sizeof ev);
    out.push_back(ev);
  }
  return out;
}

std::uint64_t FlightRecorder::count_in_category(std::string_view c) const {
  std::uint64_t total = 0;
  for (const auto& ev : tail())
    if (c == ev.category) total += ev.count;
  return total;
}

std::uint64_t FlightRecorder::events_in_category(std::string_view c) const {
  std::uint64_t n = 0;
  for (const auto& ev : tail())
    if (c == ev.category) ++n;
  return n;
}

std::string FlightRecorder::dump_json(std::size_t max) const {
  const auto events = tail(max);
  std::string out;
  out += "{\"recorded\":";
  out += std::to_string(recorded());
  out += ",\"capacity\":";
  out += std::to_string(capacity());
  out += ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& ev = events[i];
    if (i) out += ',';
    out += "{\"t_ns\":";
    out += std::to_string(ev.t_ns);
    out += ",\"category\":";
    append_escaped(out, ev.category, sizeof ev.category);
    out += ",\"detail\":";
    append_escaped(out, ev.detail, sizeof ev.detail);
    out += ",\"node\":";
    out += std::to_string(ev.node);
    out += ",\"count\":";
    out += std::to_string(ev.count);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace prism::obs::live

#endif  // PRISM_OBS_ENABLED
