// TelemetrySampler (DESIGN.md §14): a background thread that assembles one
// HealthSnapshot per period and publishes it through a HealthBoard seqlock.
//
// The sampler owns everything generic — sample numbering, timestamps,
// metrics-registry counters with deltas against the previous sample, alloc
// tallies, the flight-recorder ticker.  Pipeline-specific state (stage
// conservation rows, degradation mirror) comes from an injected Collector
// callback, which is how the obs module stays free of core types: core's
// IntegratedEnvironment supplies a collector that reads Lis/Ism/TP stats in
// the completed → lost → admitted order StageHealth requires, and obs never
// links against it.
//
// Lifecycle: construction starts the thread; stop() (idempotent, run by the
// destructor) takes one final sample so short runs — shorter than a period —
// still publish a terminal snapshot.  Readers call read() at any time from
// any thread; sample_now() forces an immediate out-of-band sample (scrape
// endpoints use it when freshness matters more than cadence).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/live/health.hpp"

namespace prism::obs::live {

/// Fills the pipeline-specific parts of a snapshot (stage rows via
/// add_stage(), degradation mirror fields).  Called on the sampler thread
/// with a zeroed-then-header-filled snapshot; must be safe to call
/// concurrently with the pipeline running.
using Collector = std::function<void(HealthSnapshot&)>;

struct SamplerOptions {
  std::uint64_t period_ms = 100;
  /// When true (default) each sample scrapes the metrics registry into the
  /// snapshot's counter table (values + deltas).  Off for tests that want
  /// deterministic counter tables.
  bool include_registry = true;
};

class TelemetrySampler {
 public:
  /// Starts the sampling thread.  `collector` may be null (generic-only
  /// snapshots).  Throws std::invalid_argument if period_ms is 0.
  TelemetrySampler(SamplerOptions options, Collector collector);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Joins the thread after one final sample.  Idempotent.
  void stop();

  /// Copies the latest published snapshot; false if none published yet.
  bool read(HealthSnapshot& out) const { return board_.read(out); }

  /// Takes a sample on the calling thread, right now, and publishes it.
  /// Serialized against the periodic thread by the sampler mutex.
  void sample_now();

  /// Samples published so far.
  std::uint64_t samples() const noexcept { return board_.published(); }

  const HealthBoard& board() const noexcept { return board_; }

 private:
  void loop();
  void take_sample();

  SamplerOptions options_;
  Collector collector_;
  HealthBoard board_;

  std::mutex mu_;  // serializes take_sample(); guards stop flag + prev map
  std::condition_variable cv_;
  bool stopping_ = false;
  std::uint64_t next_seq_ = 1;
  std::map<std::string, std::uint64_t, std::less<>> prev_counters_;
  std::thread thread_;
};

}  // namespace prism::obs::live
